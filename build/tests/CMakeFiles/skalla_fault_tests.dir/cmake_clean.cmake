file(REMOVE_RECURSE
  "CMakeFiles/skalla_fault_tests.dir/fault_injection_test.cc.o"
  "CMakeFiles/skalla_fault_tests.dir/fault_injection_test.cc.o.d"
  "CMakeFiles/skalla_fault_tests.dir/test_util.cc.o"
  "CMakeFiles/skalla_fault_tests.dir/test_util.cc.o.d"
  "skalla_fault_tests"
  "skalla_fault_tests.pdb"
  "skalla_fault_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skalla_fault_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for skalla_sql.
# This may be replaced when dependencies are built.

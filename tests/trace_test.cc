// Observability suite (ctest label "obs"): span tracer, event journal,
// exporters, and the straggler diagnostic. Key properties: disabled-mode
// instrumentation allocates nothing, spans keep parent links across
// ParallelFor thread hops, journal kMessage bytes reproduce
// ExecutionMetrics::TotalBytes() exactly, and the Chrome exporter emits
// valid trace-event JSON with one named track per site plus the
// coordinator.

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_pool.h"
#include "obs/diagnostics.h"
#include "obs/export.h"
#include "obs/journal.h"
#include "obs/trace.h"
#include "skalla/queries.h"
#include "skalla/report.h"
#include "skalla/warehouse.h"
#include "net/fault_injector.h"
#include "test_util.h"
#include "tpc/dbgen.h"

// ---------------------------------------------------------------------------
// Counting global allocator: proves the disabled-mode hot path is
// allocation-free. Counts every operator new in the process, so tests
// sample the counter tightly around the region under scrutiny.
// ---------------------------------------------------------------------------

namespace {
std::atomic<size_t> g_alloc_count{0};
}  // namespace

// GCC pairs the library's operator new with our malloc-backed delete and
// warns; the pairing is in fact consistent (all overloads below, including
// the nothrow ones — std::stable_sort's temporary buffer allocates through
// operator new(nothrow), and leaving that to the default allocator while
// delete goes through free() is an alloc/dealloc mismatch under ASan).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace skalla {
namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON syntax validator (no values retained).
// ---------------------------------------------------------------------------

class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : text_(text) {}

  bool Valid() {
    SkipWs();
    if (!ParseValue()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWs() {
    while (!AtEnd() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\n' ||
                        Peek() == '\r')) {
      ++pos_;
    }
  }

  bool ParseLiteral(const char* lit) {
    const size_t n = std::strlen(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  bool ParseString() {
    if (AtEnd() || Peek() != '"') return false;
    ++pos_;
    while (!AtEnd()) {
      const char c = Peek();
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (AtEnd()) return false;
        const char esc = Peek();
        if (esc == 'u') {
          if (pos_ + 4 >= text_.size()) return false;
          for (int i = 1; i <= 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (std::strchr("\"\\/bfnrt", esc) == nullptr) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool ParseNumber() {
    const size_t start = pos_;
    if (!AtEnd() && Peek() == '-') ++pos_;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
    if (!AtEnd() && Peek() == '.') {
      ++pos_;
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    return pos_ > start;
  }

  bool ParseObject() {
    ++pos_;  // '{'
    SkipWs();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!ParseString()) return false;
      SkipWs();
      if (AtEnd() || Peek() != ':') return false;
      ++pos_;
      if (!ParseValue()) return false;
      SkipWs();
      if (AtEnd()) return false;
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseArray() {
    ++pos_;  // '['
    SkipWs();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      if (!ParseValue()) return false;
      SkipWs();
      if (AtEnd()) return false;
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseValue() {
    SkipWs();
    if (AtEnd()) return false;
    switch (Peek()) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
        return ParseLiteral("true");
      case 'f':
        return ParseLiteral("false");
      case 'n':
        return ParseLiteral("null");
      default:
        return ParseNumber();
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

Table SmallTpcr(uint64_t seed = 31) {
  TpcConfig config;
  config.num_rows = 1500;
  config.num_customers = 120;
  config.seed = seed;
  return GenerateTpcr(config);
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::ConfigureTracing(obs::TraceConfig{});  // off
    obs::ResetTracing();
  }

  void TearDown() override {
    obs::ConfigureTracing(obs::TraceConfig{});
    obs::ResetTracing();
  }

  void EnableTracing(int morsel_sample = 1) {
    obs::TraceConfig config;
    config.enabled = true;
    config.morsel_sample = morsel_sample;
    obs::ConfigureTracing(config);
  }
};

// ---------------------------------------------------------------------------
// Disabled mode: zero allocations, zero recorded state.
// ---------------------------------------------------------------------------

TEST_F(TraceTest, DisabledInstrumentationAllocatesNothing) {
  ASSERT_FALSE(obs::TraceEnabled());
  // No gtest assertions inside the measured region: they may allocate.
  bool any_armed = false;
  const size_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    obs::ScopedSpan span("disabled.span", obs::TrackForSite(2));
    obs::TrackScope track(obs::TrackForSite(1));
    obs::ParentScope parent(42);
    any_armed |= span.armed();
  }
  const size_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_FALSE(any_armed);
  EXPECT_EQ(after, before);
  EXPECT_TRUE(obs::SpanSnapshot().empty());
}

TEST_F(TraceTest, DisabledJournalRecordsNothing) {
  obs::JournalRecord record;
  record.event = obs::JournalEvent::kMessage;
  record.bytes = 128;
  obs::JournalAppend(record);
  EXPECT_EQ(obs::JournalSize(), 0u);
}

// ---------------------------------------------------------------------------
// Span recording, nesting, and cross-thread parent links.
// ---------------------------------------------------------------------------

TEST_F(TraceTest, SpansRecordNestingOnOneThread) {
  EnableTracing();
  uint64_t outer_id = 0;
  {
    obs::ScopedSpan outer("outer");
    ASSERT_TRUE(outer.armed());
    outer_id = outer.id();
    EXPECT_EQ(obs::CurrentSpanId(), outer_id);
    obs::ScopedSpan inner("inner");
    EXPECT_EQ(obs::CurrentSpanId(), inner.id());
  }
  EXPECT_EQ(obs::CurrentSpanId(), 0u);
  const std::vector<obs::TraceSpan> spans = obs::SpanSnapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Spans are recorded on completion: inner first.
  EXPECT_STREQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].parent, outer_id);
  EXPECT_STREQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].parent, 0u);
  EXPECT_LE(spans[1].start_ns, spans[0].start_ns);
  EXPECT_GE(spans[1].end_ns, spans[0].end_ns);
}

TEST_F(TraceTest, ParallelForSpansNestUnderCallerAcrossThreads) {
  EnableTracing();
  // The shared pool may have zero workers on a small container; a private
  // pool guarantees real cross-thread execution.
  ThreadPool pool(3);
  constexpr int64_t kItems = 16;
  uint64_t outer_id = 0;
  {
    obs::ScopedSpan outer("outer");
    outer_id = outer.id();
    pool.ParallelFor(
        kItems, [](int64_t) { obs::ScopedSpan inner("inner"); }, 4);
  }
  int inner_count = 0;
  for (const obs::TraceSpan& span : obs::SpanSnapshot()) {
    if (std::string_view(span.name) != "inner") continue;
    ++inner_count;
    // The parent link survives the thread hop: every lane re-establishes
    // the caller's span before claiming items.
    EXPECT_EQ(span.parent, outer_id);
  }
  EXPECT_EQ(inner_count, kItems);
}

TEST_F(TraceTest, TrackScopeReHomesSpans) {
  EnableTracing();
  EXPECT_EQ(obs::CurrentTrack(), obs::kTrackCoordinator);
  {
    obs::TrackScope track(obs::TrackForSite(3));
    EXPECT_EQ(obs::CurrentTrack(), obs::TrackForSite(3));
    obs::ScopedSpan span("on.site");
  }
  EXPECT_EQ(obs::CurrentTrack(), obs::kTrackCoordinator);
  const std::vector<obs::TraceSpan> spans = obs::SpanSnapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].track, obs::TrackForSite(3));
}

TEST_F(TraceTest, MaxSpansCapDropsInsteadOfGrowing) {
  obs::TraceConfig config;
  config.enabled = true;
  config.max_spans = 4;
  obs::ConfigureTracing(config);
  for (int i = 0; i < 10; ++i) {
    obs::ScopedSpan span("capped");
  }
  EXPECT_EQ(obs::SpanSnapshot().size(), 4u);
  EXPECT_EQ(obs::DroppedSpanCount(), 6u);
}

// ---------------------------------------------------------------------------
// Track model.
// ---------------------------------------------------------------------------

TEST_F(TraceTest, TrackModelMapsEndpoints) {
  EXPECT_EQ(obs::TrackForSite(-1), obs::kTrackCoordinator);
  EXPECT_EQ(obs::TrackForSite(0), 1);
  EXPECT_EQ(obs::TrackForSite(3), 4);
  EXPECT_EQ(obs::TrackName(obs::kTrackCoordinator), "coordinator");
  EXPECT_EQ(obs::TrackName(obs::TrackForSite(2)), "site 2");
  EXPECT_EQ(obs::TrackName(obs::TrackForLane(1)), "pool lane 1");
  // Aggregator endpoints are encoded as -2 - node (net/sim_network.h).
  EXPECT_EQ(obs::TrackName(obs::TrackForSite(-2)), "aggregator 0");
  EXPECT_EQ(obs::TrackName(obs::TrackForSite(-4)), "aggregator 2");
}

// ---------------------------------------------------------------------------
// SKALLA_TRACE grammar.
// ---------------------------------------------------------------------------

TEST_F(TraceTest, TraceConfigFromEnvGrammar) {
  EXPECT_FALSE(obs::TraceConfigFromEnv(nullptr).enabled);
  EXPECT_FALSE(obs::TraceConfigFromEnv("").enabled);
  EXPECT_FALSE(obs::TraceConfigFromEnv("0").enabled);
  EXPECT_FALSE(obs::TraceConfigFromEnv("off").enabled);

  EXPECT_TRUE(obs::TraceConfigFromEnv("on").enabled);
  EXPECT_TRUE(obs::TraceConfigFromEnv("1").enabled);

  obs::TraceConfig chrome = obs::TraceConfigFromEnv("chrome");
  EXPECT_TRUE(chrome.enabled);
  EXPECT_EQ(chrome.chrome_path, "skalla_trace.json");

  obs::TraceConfig full =
      obs::TraceConfigFromEnv("chrome:/tmp/t.json,journal:j.jsonl,sample:4");
  EXPECT_TRUE(full.enabled);
  EXPECT_EQ(full.chrome_path, "/tmp/t.json");
  EXPECT_EQ(full.journal_path, "j.jsonl");
  EXPECT_EQ(full.morsel_sample, 4);

  obs::TraceConfig text = obs::TraceConfigFromEnv("text");
  EXPECT_TRUE(text.enabled);
  EXPECT_EQ(text.text_path, "-");
}

// ---------------------------------------------------------------------------
// Journal <-> ExecutionMetrics consistency on a real distributed run.
// ---------------------------------------------------------------------------

size_t JournalMessageBytes() {
  size_t total = 0;
  for (const obs::JournalRecord& r : obs::JournalSnapshot()) {
    if (r.event == obs::JournalEvent::kMessage) total += r.bytes;
  }
  return total;
}

TEST_F(TraceTest, JournalBytesMatchMetricsFlatCoordinator) {
  EnableTracing();
  Warehouse wh(4);
  ASSERT_OK(wh.LoadByRange("TPCR", SmallTpcr(), "NationKey", 0, 24,
                           {"CustKey"}));
  const GmdjExpr query = queries::GroupReductionQuery("CustKey");
  ASSERT_OK_AND_ASSIGN(DistributedPlan plan,
                       wh.Plan(query, OptimizerOptions::All()));
  obs::ResetTracing();
  ASSERT_OK_AND_ASSIGN(QueryResult result, wh.ExecutePlan(plan));
  // Every byte ExecutionMetrics accounts for flows through
  // SimNetwork::Transfer exactly once, where the kMessage record is cut.
  EXPECT_EQ(JournalMessageBytes(), result.metrics.TotalBytes());
  EXPECT_GT(obs::JournalSize(), 0u);
}

TEST_F(TraceTest, JournalBytesMatchMetricsTreeCoordinator) {
  EnableTracing();
  Warehouse wh(6);
  ASSERT_OK(wh.LoadByRange("TPCR", SmallTpcr(), "NationKey", 0, 24,
                           {"CustKey"}));
  const GmdjExpr query = queries::GroupReductionQuery("CustKey");
  ASSERT_OK_AND_ASSIGN(DistributedPlan plan,
                       wh.Plan(query, OptimizerOptions::All()));
  obs::ResetTracing();
  ASSERT_OK_AND_ASSIGN(QueryResult result, wh.ExecutePlanTree(plan, 2));
  EXPECT_EQ(JournalMessageBytes(), result.metrics.TotalBytes());
}

TEST_F(TraceTest, JournalRetriesMatchMetricsUnderFaults) {
  EnableTracing();
  Warehouse wh(4);
  ASSERT_OK(wh.LoadByRange("TPCR", SmallTpcr(), "NationKey", 0, 24,
                           {"CustKey"}));
  const GmdjExpr query = queries::GroupReductionQuery("CustKey");
  ASSERT_OK_AND_ASSIGN(DistributedPlan plan,
                       wh.Plan(query, OptimizerOptions::None()));
  FaultInjector injector(/*seed=*/5);
  injector.DropOnce(/*site=*/1, /*round=*/2,
                    TransferDirection::kToCoordinator);
  wh.set_fault_injector(&injector);
  obs::ResetTracing();
  ASSERT_OK_AND_ASSIGN(QueryResult result, wh.ExecutePlan(plan));
  wh.set_fault_injector(nullptr);

  int retries = 0, undelivered = 0;
  for (const obs::JournalRecord& r : obs::JournalSnapshot()) {
    if (r.event == obs::JournalEvent::kRetry) ++retries;
    if (r.event == obs::JournalEvent::kMessage && !r.delivered) ++undelivered;
  }
  EXPECT_EQ(retries, result.metrics.Retries());
  EXPECT_EQ(undelivered, result.metrics.Drops());
  EXPECT_EQ(JournalMessageBytes(), result.metrics.TotalBytes());
  EXPECT_EQ(result.metrics.Retries(), 1);
}

// ---------------------------------------------------------------------------
// Exporters.
// ---------------------------------------------------------------------------

TEST_F(TraceTest, ChromeTraceExportIsValidJsonWithNamedTracks) {
  EnableTracing();
  Warehouse wh(4);
  ASSERT_OK(wh.LoadByRange("TPCR", SmallTpcr(), "NationKey", 0, 24,
                           {"CustKey"}));
  const GmdjExpr query = queries::GroupReductionQuery("CustKey");
  ASSERT_OK_AND_ASSIGN(DistributedPlan plan,
                       wh.Plan(query, OptimizerOptions::All()));
  obs::ResetTracing();
  ASSERT_OK_AND_ASSIGN(QueryResult result, wh.ExecutePlan(plan));
  (void)result;

  std::ostringstream out;
  obs::ExportChromeTrace(obs::SpanSnapshot(), obs::JournalSnapshot(), out);
  const std::string json = out.str();

  EXPECT_TRUE(JsonValidator(json).Valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // One named track per site plus the coordinator.
  EXPECT_NE(json.find("\"name\":\"coordinator\""), std::string::npos);
  for (int s = 0; s < 4; ++s) {
    EXPECT_NE(json.find("\"name\":\"site " + std::to_string(s) + "\""),
              std::string::npos)
        << "missing site track " << s;
  }
  // Complete events carry the schema Perfetto expects.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
}

TEST_F(TraceTest, ChromeTraceMarksRetriesAsInstants) {
  EnableTracing();
  std::vector<obs::JournalRecord> journal;
  obs::JournalRecord retry;
  retry.event = obs::JournalEvent::kRetry;
  retry.site = 2;
  retry.attempt = 1;
  retry.ts_ns = 1500;
  journal.push_back(retry);
  std::ostringstream out;
  obs::ExportChromeTrace({}, journal, out);
  const std::string json = out.str();
  ASSERT_TRUE(JsonValidator(json).Valid()) << json;
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"retry\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"site 2\""), std::string::npos);
}

TEST_F(TraceTest, JournalJsonlOneValidObjectPerLine) {
  EnableTracing();
  obs::JournalRecord msg;
  msg.event = obs::JournalEvent::kMessage;
  msg.round = 1;
  msg.from = -1;
  msg.to = 2;
  msg.bytes = 256;
  msg.rows = 10;
  msg.label = "X \"fragment\"";  // exercises escaping
  obs::JournalAppend(msg);
  obs::JournalRecord reduction;
  reduction.event = obs::JournalEvent::kReduction;
  reduction.round = 1;
  reduction.site = 2;
  reduction.rows_before = 100;
  reduction.rows = 40;
  obs::JournalAppend(reduction);

  std::ostringstream out;
  obs::ExportJournalJsonl(obs::JournalSnapshot(), out);
  std::istringstream lines(out.str());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    ++count;
    EXPECT_TRUE(JsonValidator(line).Valid()) << line;
  }
  EXPECT_EQ(count, 2);
  EXPECT_NE(out.str().find("\"event\":\"message\""), std::string::npos);
  EXPECT_NE(out.str().find("\"event\":\"reduction\""), std::string::npos);
  EXPECT_NE(out.str().find("\"rows_before\":100"), std::string::npos);
}

TEST_F(TraceTest, TextTimelineListsTracks) {
  EnableTracing();
  {
    obs::ScopedSpan outer("round.gmdj");
    obs::ScopedSpan inner("round.sync");
  }
  std::ostringstream out;
  obs::ExportTextTimeline(obs::SpanSnapshot(), out);
  const std::string text = out.str();
  EXPECT_NE(text.find("== coordinator =="), std::string::npos);
  EXPECT_NE(text.find("round.gmdj"), std::string::npos);
  EXPECT_NE(text.find("round.sync"), std::string::npos);
}

TEST_F(TraceTest, WriteConfiguredTraceOutputsWritesFiles) {
  const std::string dir = ::testing::TempDir();
  obs::TraceConfig config;
  config.enabled = true;
  config.chrome_path = dir + "/skalla_trace_test.json";
  config.journal_path = dir + "/skalla_journal_test.jsonl";
  obs::ConfigureTracing(config);
  obs::ResetTracing();
  {
    obs::ScopedSpan span("configured.span");
  }
  obs::JournalRecord msg;
  msg.event = obs::JournalEvent::kMessage;
  msg.bytes = 1;
  obs::JournalAppend(msg);

  ASSERT_TRUE(obs::WriteConfiguredTraceOutputs());
  std::ifstream chrome(config.chrome_path);
  ASSERT_TRUE(chrome.good());
  std::stringstream contents;
  contents << chrome.rdbuf();
  EXPECT_TRUE(JsonValidator(contents.str()).Valid());
  EXPECT_NE(contents.str().find("configured.span"), std::string::npos);
  std::ifstream journal(config.journal_path);
  ASSERT_TRUE(journal.good());
  std::remove(config.chrome_path.c_str());
  std::remove(config.journal_path.c_str());
}

// ---------------------------------------------------------------------------
// Straggler diagnostic.
// ---------------------------------------------------------------------------

TEST_F(TraceTest, StragglerReportMath) {
  std::vector<obs::JournalRecord> journal;
  auto finish = [&](int site, double sec) {
    obs::JournalRecord r;
    r.event = obs::JournalEvent::kAttemptFinish;
    r.site = site;
    r.seconds = sec;
    r.label = "ok";
    journal.push_back(r);
  };
  auto message = [&](int from, int to, size_t bytes, int64_t rows) {
    obs::JournalRecord r;
    r.event = obs::JournalEvent::kMessage;
    r.from = from;
    r.to = to;
    r.bytes = bytes;
    r.rows = rows;
    journal.push_back(r);
  };
  finish(0, 1.0);
  finish(1, 3.0);
  message(/*from=*/-1, /*to=*/0, 100, 10);
  message(/*from=*/-1, /*to=*/1, 300, 30);
  obs::JournalRecord retry;
  retry.event = obs::JournalEvent::kRetry;
  retry.site = 1;
  journal.push_back(retry);

  const obs::StragglerReport report = obs::ComputeStragglerReport(journal);
  ASSERT_EQ(report.sites.size(), 2u);
  EXPECT_EQ(report.slowest_site, 1);
  // max 3.0 over mean 2.0.
  EXPECT_DOUBLE_EQ(report.cpu_skew, 1.5);
  // max 300 over mean 200.
  EXPECT_DOUBLE_EQ(report.bytes_skew, 1.5);
  EXPECT_EQ(report.sites[0].site, 0);
  EXPECT_EQ(report.sites[0].bytes_in, 100u);
  EXPECT_EQ(report.sites[0].groups_in, 10);
  EXPECT_EQ(report.sites[1].retries, 1);
  const std::string text = report.ToString();
  EXPECT_NE(text.find("cpu skew"), std::string::npos);
  EXPECT_NE(text.find("slowest site 1"), std::string::npos);
}

TEST_F(TraceTest, StragglerReportEmptyJournal) {
  const obs::StragglerReport report = obs::ComputeStragglerReport({});
  EXPECT_TRUE(report.sites.empty());
  EXPECT_DOUBLE_EQ(report.cpu_skew, 1.0);
  EXPECT_DOUBLE_EQ(report.bytes_skew, 1.0);
  EXPECT_EQ(report.slowest_site, -1);
}

TEST_F(TraceTest, ExecutionReportSurfacesStragglerDiagnostic) {
  EnableTracing();
  Warehouse wh(4);
  ASSERT_OK(wh.LoadByRange("TPCR", SmallTpcr(), "NationKey", 0, 24,
                           {"CustKey"}));
  const GmdjExpr query = queries::GroupReductionQuery("CustKey");
  ASSERT_OK_AND_ASSIGN(DistributedPlan plan,
                       wh.Plan(query, OptimizerOptions::All()));
  obs::ResetTracing();
  ASSERT_OK_AND_ASSIGN(QueryResult result, wh.ExecutePlan(plan));
  const std::string report = FormatExecutionReport(result);
  EXPECT_NE(report.find("straggler diagnostic"), std::string::npos);
  EXPECT_NE(report.find("cpu skew"), std::string::npos);

  // With tracing off the section disappears.
  obs::ConfigureTracing(obs::TraceConfig{});
  const std::string quiet = FormatExecutionReport(result);
  EXPECT_EQ(quiet.find("straggler diagnostic"), std::string::npos);
}

}  // namespace
}  // namespace skalla

#ifndef SKALLA_EXPR_REWRITER_H_
#define SKALLA_EXPR_REWRITER_H_

#include "expr/expr.h"

namespace skalla {

/// \brief Boolean constant folding.
///
/// Simplifies TRUE/FALSE literals out of AND/OR/NOT trees:
///   TRUE  && e → e      FALSE && e → FALSE
///   TRUE  || e → TRUE   FALSE || e → e
///   !TRUE → FALSE, !FALSE → TRUE
/// Used to tidy derived ship predicates (expr/interval.h) so that a
/// predicate that relaxed to TRUE is recognizable as "no reduction".
ExprPtr SimplifyConstants(const ExprPtr& expr);

/// True if the expression is literally TRUE (after folding, a non-zero,
/// non-null literal).
bool IsLiteralTrue(const ExprPtr& expr);

/// True if the expression is literally FALSE (a zero or NULL literal).
bool IsLiteralFalse(const ExprPtr& expr);

}  // namespace skalla

#endif  // SKALLA_EXPR_REWRITER_H_

# Empty dependencies file for skalla_tests.
# This may be replaced when dependencies are built.

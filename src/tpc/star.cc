#include "tpc/star.h"

#include "common/random.h"
#include "common/string_util.h"
#include "engine/operators.h"

namespace skalla {

namespace {

const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD",
                           "MACHINERY"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};
const char* kShipModes[] = {"AIR", "FOB", "MAIL", "RAIL",
                            "REG AIR", "SHIP", "TRUCK"};
const char* kNationNames[] = {
    "ALGERIA", "ARGENTINA", "BRAZIL",  "CANADA",  "EGYPT",
    "ETHIOPIA", "FRANCE",   "GERMANY", "INDIA",   "INDONESIA",
    "IRAN",     "IRAQ",     "JAPAN",   "JORDAN",  "KENYA",
    "MOROCCO",  "MOZAMBIQUE", "PERU",  "CHINA",   "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
    "UNITED STATES"};

}  // namespace

StarSchema GenerateTpcrStar(const TpcConfig& config) {
  Rng rng(config.seed ^ 0x5741aULL);
  StarSchema star;

  star.nation = Table(MakeSchema({{"NationKey", ValueType::kInt64},
                                  {"RegionKey", ValueType::kInt64},
                                  {"NationName", ValueType::kString}}));
  for (int64_t n = 0; n < config.num_nations; ++n) {
    star.nation.AddRow(
        {Value(n), Value(n % 5),
         Value(std::string(kNationNames[n % 25]) +
               (n >= 25 ? StrFormat("-%lld", static_cast<long long>(n / 25))
                        : ""))});
  }

  star.customer = Table(MakeSchema({{"CustKey", ValueType::kInt64},
                                    {"CustName", ValueType::kString},
                                    {"NationKey", ValueType::kInt64},
                                    {"MktSegment", ValueType::kString}}));
  for (int64_t c = 0; c < config.num_customers; ++c) {
    star.customer.AddRow({Value(c), Value(CustomerName(c)),
                          Value(NationOfCustomer(c, config)),
                          Value(std::string(kSegments[rng.Uniform(0, 4)]))});
  }

  star.orders = Table(MakeSchema({{"OrderKey", ValueType::kInt64},
                                  {"CustKey", ValueType::kInt64},
                                  {"OrderDate", ValueType::kInt64},
                                  {"OrderPriority", ValueType::kString},
                                  {"Clerk", ValueType::kString},
                                  {"ClerkKey", ValueType::kInt64}}));
  star.lineitem = Table(MakeSchema({{"OrderKey", ValueType::kInt64},
                                    {"LineNumber", ValueType::kInt64},
                                    {"PartKey", ValueType::kInt64},
                                    {"SuppKey", ValueType::kInt64},
                                    {"Quantity", ValueType::kInt64},
                                    {"ExtendedPrice", ValueType::kDouble},
                                    {"Discount", ValueType::kDouble},
                                    {"Tax", ValueType::kDouble},
                                    {"ShipDate", ValueType::kInt64},
                                    {"ShipMode", ValueType::kString}}));

  int64_t rows_left = config.num_rows;
  int64_t order_key = 0;
  while (rows_left > 0) {
    ++order_key;
    const int64_t cust_key =
        config.cust_zipf_s > 0
            ? rng.Zipf(config.num_customers, config.cust_zipf_s)
            : rng.Uniform(0, config.num_customers - 1);
    const int64_t order_date = rng.Uniform(0, 2404);
    const int64_t clerk_key = rng.Uniform(0, config.num_clerks - 1);
    star.orders.AddRow(
        {Value(order_key), Value(cust_key), Value(order_date),
         Value(std::string(kPriorities[rng.Uniform(0, 4)])),
         Value(StrFormat("Clerk#%06lld", static_cast<long long>(clerk_key))),
         Value(clerk_key)});
    const int64_t lines = std::min<int64_t>(rows_left, rng.Uniform(1, 7));
    for (int64_t l = 1; l <= lines; ++l) {
      const int64_t quantity = rng.Uniform(1, 50);
      star.lineitem.AddRow(
          {Value(order_key), Value(l),
           Value(rng.Uniform(0, config.num_parts - 1)),
           Value(rng.Uniform(0, config.num_suppliers - 1)), Value(quantity),
           Value(static_cast<double>(quantity * rng.Uniform(900, 2100))),
           Value(static_cast<double>(rng.Uniform(0, 10))),
           Value(static_cast<double>(rng.Uniform(0, 8))),
           Value(order_date + rng.Uniform(1, 121)),
           Value(std::string(kShipModes[rng.Uniform(0, 6)]))});
    }
    rows_left -= lines;
  }
  return star;
}

Result<Table> DenormalizeStar(const StarSchema& star) {
  SKALLA_ASSIGN_OR_RETURN(
      Table with_orders,
      HashJoin(star.lineitem, star.orders, {"OrderKey"}, {"OrderKey"}));
  SKALLA_ASSIGN_OR_RETURN(
      Table with_customer,
      HashJoin(with_orders, star.customer, {"CustKey"}, {"CustKey"}));
  return HashJoin(with_customer, star.nation, {"NationKey"}, {"NationKey"});
}

}  // namespace skalla

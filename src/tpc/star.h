#ifndef SKALLA_TPC_STAR_H_
#define SKALLA_TPC_STAR_H_

#include "common/result.h"
#include "storage/table.h"
#include "tpc/dbgen.h"

namespace skalla {

/// \brief The TPC-R-like star schema behind the denormalized fact table.
///
/// The paper derives its test database by denormalizing the TPC(R) dbgen
/// output into one flat relation (Sect. 5.1). This module provides the
/// same pipeline: normalized dimension/fact tables plus the join-based
/// denormalizer, so the warehouse can be loaded either from pre-flattened
/// data (tpc/dbgen.h) or from a realistic star schema.
struct StarSchema {
  /// Nation(NationKey, RegionKey, NationName)
  Table nation;
  /// Customer(CustKey, CustName, NationKey, MktSegment)
  Table customer;
  /// Orders(OrderKey, CustKey, OrderDate, OrderPriority, Clerk, ClerkKey)
  Table orders;
  /// LineItem(OrderKey, LineNumber, PartKey, SuppKey, Quantity,
  ///          ExtendedPrice, Discount, Tax, ShipDate, ShipMode)
  Table lineitem;
};

/// Generates the normalized tables; deterministic in `config.seed`. The
/// same distributional properties hold as for GenerateTpcr: customers are
/// block-mapped onto nations, prices/discounts/taxes are integral doubles.
StarSchema GenerateTpcrStar(const TpcConfig& config);

/// Flattens the star by inner joins
/// (LineItem ⋈ Orders ⋈ Customer ⋈ Nation); one output row per line item.
Result<Table> DenormalizeStar(const StarSchema& star);

}  // namespace skalla

#endif  // SKALLA_TPC_STAR_H_

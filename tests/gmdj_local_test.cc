#include "gmdj/local_eval.h"

#include <gtest/gtest.h>

#include "engine/operators.h"
#include "expr/parser.h"
#include "gmdj/central_eval.h"
#include "gmdj/gmdj.h"
#include "storage/catalog.h"
#include "test_util.h"

namespace skalla {
namespace {

ExprPtr MustParse(const std::string& text) {
  auto result = ParseExpr(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return *result;
}

GmdjOp SimpleCountOp(const std::string& theta) {
  GmdjOp op;
  op.detail_table = "T";
  GmdjBlock block;
  block.aggs = {AggSpec::Count("cnt")};
  block.theta = MustParse(theta);
  op.blocks.push_back(std::move(block));
  return op;
}

TEST(GmdjLocalTest, KeyEqualityEquivalentToGroupBy) {
  const Table detail = MakeTinyTable();
  ASSERT_OK_AND_ASSIGN(Table base, DistinctProject(detail, {"g"}));

  GmdjOp op;
  op.detail_table = "T";
  GmdjBlock block;
  block.aggs = {AggSpec::Count("cnt"), AggSpec::Sum("v", "sv"),
                AggSpec::Avg("v", "av"), AggSpec::Min("v", "lo"),
                AggSpec::Max("v", "hi")};
  block.theta = MustParse("B.g = R.g");
  op.blocks.push_back(std::move(block));

  LocalGmdjOptions options;
  ASSERT_OK_AND_ASSIGN(Table gmdj, EvalGmdjOp(base, detail, op, options));

  ASSERT_OK_AND_ASSIGN(
      Table group_by,
      HashGroupBy(detail, {"g"},
                  {AggSpec::Count("cnt"), AggSpec::Sum("v", "sv"),
                   AggSpec::Avg("v", "av"), AggSpec::Min("v", "lo"),
                   AggSpec::Max("v", "hi")}));
  ExpectSameRows(gmdj, group_by);
}

TEST(GmdjLocalTest, OverlappingRangesNeedNestedLoop) {
  // θ without equi-conjuncts: count of detail tuples with v <= b.v — RNG
  // sets overlap, which GROUP BY cannot express.
  Table base(MakeSchema({{"v", ValueType::kInt64}}));
  base.AddRow({Value(2)});
  base.AddRow({Value(5)});
  base.AddRow({Value(9)});

  const Table detail = MakeTinyTable();
  const GmdjOp op = SimpleCountOp("R.v <= B.v");
  LocalGmdjOptions options;
  ASSERT_OK_AND_ASSIGN(Table result, EvalGmdjOp(base, detail, op, options));

  // detail v values: 5,7,9,4,6,8,2,1,3,5,7,9 → ≤2:2  ≤5:6  ≤9:12.
  ASSERT_OK_AND_ASSIGN(Table sorted, SortedBy(result, {"v"}));
  EXPECT_EQ(sorted.Get(0, 1), Value(2));
  EXPECT_EQ(sorted.Get(1, 1), Value(6));
  EXPECT_EQ(sorted.Get(2, 1), Value(12));
}

TEST(GmdjLocalTest, HashAndNestedLoopPathsAgree) {
  // The same θ evaluated via the hash path (equi + residual) and as an
  // opaque residual-only predicate must agree.
  const Table detail = MakeTinyTable();
  ASSERT_OK_AND_ASSIGN(Table base, DistinctProject(detail, {"g"}));

  const GmdjOp hash_op = SimpleCountOp("B.g = R.g && R.v >= 5");
  // Arithmetic identity hides the equi-conjunct from the decomposer.
  const GmdjOp loop_op = SimpleCountOp("B.g = R.g + 0 && R.v >= 5");

  LocalGmdjOptions options;
  ASSERT_OK_AND_ASSIGN(Table via_hash,
                       EvalGmdjOp(base, detail, hash_op, options));
  ASSERT_OK_AND_ASSIGN(Table via_loop,
                       EvalGmdjOp(base, detail, loop_op, options));
  ExpectSameRows(via_hash, via_loop);
}

TEST(GmdjLocalTest, MultipleBlocksEvaluateIndependently) {
  const Table detail = MakeTinyTable();
  ASSERT_OK_AND_ASSIGN(Table base, DistinctProject(detail, {"g"}));

  GmdjOp op;
  op.detail_table = "T";
  GmdjBlock b1;
  b1.aggs = {AggSpec::Count("cnt_all")};
  b1.theta = MustParse("B.g = R.g");
  GmdjBlock b2;
  b2.aggs = {AggSpec::Count("cnt_big")};
  b2.theta = MustParse("B.g = R.g && R.v >= 7");
  op.blocks = {b1, b2};

  LocalGmdjOptions options;
  ASSERT_OK_AND_ASSIGN(Table result, EvalGmdjOp(base, detail, op, options));
  ASSERT_OK_AND_ASSIGN(Table sorted, SortedBy(result, {"g"}));
  // group 1: all 3, big {7,9} = 2; group 2: all 4, big {8} = 1;
  // group 3: all 5, big {7,9} = 2.
  EXPECT_EQ(sorted.Get(0, 1), Value(3));
  EXPECT_EQ(sorted.Get(0, 2), Value(2));
  EXPECT_EQ(sorted.Get(1, 1), Value(4));
  EXPECT_EQ(sorted.Get(1, 2), Value(1));
  EXPECT_EQ(sorted.Get(2, 1), Value(5));
  EXPECT_EQ(sorted.Get(2, 2), Value(2));
}

TEST(GmdjLocalTest, UntouchedGroupsGetIdentityAggregates) {
  Table base(MakeSchema({{"g", ValueType::kInt64}}));
  base.AddRow({Value(1)});
  base.AddRow({Value(999)});  // matches nothing

  const Table detail = MakeTinyTable();
  GmdjOp op;
  op.detail_table = "T";
  GmdjBlock block;
  block.aggs = {AggSpec::Count("cnt"), AggSpec::Sum("v", "sv"),
                AggSpec::Avg("v", "av")};
  block.theta = MustParse("B.g = R.g");
  op.blocks.push_back(std::move(block));

  LocalGmdjOptions options;
  ASSERT_OK_AND_ASSIGN(Table result, EvalGmdjOp(base, detail, op, options));
  ASSERT_OK_AND_ASSIGN(Table sorted, SortedBy(result, {"g"}));
  EXPECT_EQ(sorted.Get(1, 0), Value(999));
  EXPECT_EQ(sorted.Get(1, 1), Value(int64_t{0}));  // COUNT → 0
  EXPECT_TRUE(sorted.Get(1, 2).is_null());         // SUM → NULL
  EXPECT_TRUE(sorted.Get(1, 3).is_null());         // AVG → NULL
}

TEST(GmdjLocalTest, TouchedOnlyDropsUntouchedGroups) {
  Table base(MakeSchema({{"g", ValueType::kInt64}}));
  base.AddRow({Value(1)});
  base.AddRow({Value(999)});

  const Table detail = MakeTinyTable();
  const GmdjOp op = SimpleCountOp("B.g = R.g");
  LocalGmdjOptions options;
  options.touched_only = true;
  ASSERT_OK_AND_ASSIGN(Table result, EvalGmdjOp(base, detail, op, options));
  ASSERT_EQ(result.num_rows(), 1);
  EXPECT_EQ(result.Get(0, 0), Value(1));
}

TEST(GmdjLocalTest, TouchedIsUnionAcrossBlocks) {
  // Group 999 untouched by block 1 but touched by block 2's looser θ must
  // be kept (|RNG| over θ₁ ∨ θ₂ is what matters — Prop. 1).
  Table base(MakeSchema({{"g", ValueType::kInt64}}));
  base.AddRow({Value(999)});

  const Table detail = MakeTinyTable();
  GmdjOp op;
  op.detail_table = "T";
  GmdjBlock strict;
  strict.aggs = {AggSpec::Count("c1")};
  strict.theta = MustParse("B.g = R.g");
  GmdjBlock loose;
  loose.aggs = {AggSpec::Count("c2")};
  loose.theta = MustParse("R.v > B.g - 1000");
  op.blocks = {strict, loose};

  LocalGmdjOptions options;
  options.touched_only = true;
  ASSERT_OK_AND_ASSIGN(Table result, EvalGmdjOp(base, detail, op, options));
  ASSERT_EQ(result.num_rows(), 1);
  EXPECT_EQ(result.Get(0, 1), Value(int64_t{0}));
  EXPECT_EQ(result.Get(0, 2), Value(12));
}

TEST(GmdjLocalTest, SubModeEmitsAvgAsSumAndCount) {
  const Table detail = MakeTinyTable();
  ASSERT_OK_AND_ASSIGN(Table base, DistinctProject(detail, {"g"}));

  GmdjOp op;
  op.detail_table = "T";
  GmdjBlock block;
  block.aggs = {AggSpec::Avg("v", "av")};
  block.theta = MustParse("B.g = R.g");
  op.blocks.push_back(std::move(block));

  LocalGmdjOptions options;
  options.mode = AggMode::kSub;
  ASSERT_OK_AND_ASSIGN(Table result, EvalGmdjOp(base, detail, op, options));
  EXPECT_EQ(result.schema().ToString(), "g:int64, av__sum:int64, av__cnt:int64");
  ASSERT_OK_AND_ASSIGN(Table sorted, SortedBy(result, {"g"}));
  EXPECT_EQ(sorted.Get(0, 1), Value(21));
  EXPECT_EQ(sorted.Get(0, 2), Value(3));
}

TEST(GmdjLocalTest, CarryColsControlOutputPrefix) {
  const Table detail = MakeTinyTable();
  ASSERT_OK_AND_ASSIGN(Table base, DistinctProject(detail, {"g", "h"}));

  const GmdjOp op = SimpleCountOp("B.g = R.g && B.h = R.h");
  LocalGmdjOptions options;
  options.carry_cols = {"h"};
  ASSERT_OK_AND_ASSIGN(Table result, EvalGmdjOp(base, detail, op, options));
  EXPECT_EQ(result.schema().ToString(), "h:int64, cnt:int64");
}

TEST(GmdjLocalTest, CountColumnSkipsNulls) {
  Table detail(MakeSchema({{"g", ValueType::kInt64}, {"v", ValueType::kInt64}}));
  detail.AddRow({Value(1), Value(10)});
  detail.AddRow({Value(1), Value::Null()});
  detail.AddRow({Value(1), Value(20)});
  Table base(MakeSchema({{"g", ValueType::kInt64}}));
  base.AddRow({Value(1)});

  GmdjOp op;
  op.detail_table = "T";
  GmdjBlock block;
  block.aggs = {AggSpec::Count("stars"), AggSpec::CountCol("v", "vals")};
  block.theta = MustParse("B.g = R.g");
  op.blocks.push_back(std::move(block));

  LocalGmdjOptions options;
  ASSERT_OK_AND_ASSIGN(Table result, EvalGmdjOp(base, detail, op, options));
  EXPECT_EQ(result.Get(0, 1), Value(3));
  EXPECT_EQ(result.Get(0, 2), Value(2));
}

TEST(GmdjLocalTest, EmptyDetailRelation) {
  Table detail(MakeTinyTable().schema_ptr());
  Table base(MakeSchema({{"g", ValueType::kInt64}}));
  base.AddRow({Value(1)});
  const GmdjOp op = SimpleCountOp("B.g = R.g");
  LocalGmdjOptions options;
  ASSERT_OK_AND_ASSIGN(Table result, EvalGmdjOp(base, detail, op, options));
  ASSERT_EQ(result.num_rows(), 1);
  EXPECT_EQ(result.Get(0, 1), Value(int64_t{0}));
}

TEST(GmdjLocalTest, EmptyBaseRelation) {
  const Table detail = MakeTinyTable();
  Table base(MakeSchema({{"g", ValueType::kInt64}}));
  const GmdjOp op = SimpleCountOp("B.g = R.g");
  LocalGmdjOptions options;
  ASSERT_OK_AND_ASSIGN(Table result, EvalGmdjOp(base, detail, op, options));
  EXPECT_EQ(result.num_rows(), 0);
}

// ---------------------------------------------------------------------------
// Centralized chain evaluation (the oracle itself).
// ---------------------------------------------------------------------------

TEST(CentralEvalTest, Example1ShapeOnTinyData) {
  Catalog catalog;
  catalog.PutTable("T", std::make_shared<const Table>(MakeTinyTable()));

  GmdjExpr expr;
  expr.base.source_table = "T";
  expr.base.project_cols = {"g"};
  GmdjOp md1;
  md1.detail_table = "T";
  GmdjBlock b1;
  b1.aggs = {AggSpec::Count("cnt1"), AggSpec::Sum("v", "sum1")};
  b1.theta = MustParse("B.g = R.g");
  md1.blocks.push_back(b1);
  expr.ops.push_back(md1);
  GmdjOp md2;
  md2.detail_table = "T";
  GmdjBlock b2;
  b2.aggs = {AggSpec::Count("cnt2")};
  b2.theta = MustParse("B.g = R.g && R.v >= B.sum1 / B.cnt1");
  md2.blocks.push_back(b2);
  expr.ops.push_back(md2);

  ASSERT_OK_AND_ASSIGN(Table result, EvalGmdjExprCentralized(expr, catalog));
  ASSERT_OK_AND_ASSIGN(Table sorted, SortedBy(result, {"g"}));
  ASSERT_EQ(sorted.num_rows(), 3);
  // g=1: v {5,7,9} avg 7 → above-or-equal {7,9} = 2.
  EXPECT_EQ(sorted.Get(0, 1), Value(3));
  EXPECT_EQ(sorted.Get(0, 2), Value(21));
  EXPECT_EQ(sorted.Get(0, 3), Value(2));
  // g=2: v {4,6,8,2} avg 5 → {6,8} = 2.
  EXPECT_EQ(sorted.Get(1, 3), Value(2));
  // g=3: v {1,3,5,7,9} avg 5 → {5,7,9} = 3.
  EXPECT_EQ(sorted.Get(2, 3), Value(3));
}

TEST(CentralEvalTest, BaseQueryWithFilter) {
  Catalog catalog;
  catalog.PutTable("T", std::make_shared<const Table>(MakeTinyTable()));

  GmdjExpr expr;
  expr.base.source_table = "T";
  expr.base.project_cols = {"g"};
  expr.base.filter = MustParse("v >= 7");
  GmdjOp op;
  op.detail_table = "T";
  GmdjBlock block;
  block.aggs = {AggSpec::Count("cnt")};
  block.theta = MustParse("B.g = R.g");
  op.blocks.push_back(block);
  expr.ops.push_back(op);

  ASSERT_OK_AND_ASSIGN(Table result, EvalGmdjExprCentralized(expr, catalog));
  // Only groups with some v >= 7 appear (g=1 has 7,9; g=2 has 8; g=3 has
  // 7,9) — all three survive here, but counts cover ALL tuples per group.
  ASSERT_OK_AND_ASSIGN(Table sorted, SortedBy(result, {"g"}));
  ASSERT_EQ(sorted.num_rows(), 3);
  EXPECT_EQ(sorted.Get(0, 1), Value(3));
}

// ---------------------------------------------------------------------------
// Validation.
// ---------------------------------------------------------------------------

class ValidationTest : public ::testing::Test {
 protected:
  ValidationTest() {
    schemas_["T"] = MakeTinyTable().schema_ptr();
    expr_.base.source_table = "T";
    expr_.base.project_cols = {"g"};
    GmdjOp op;
    op.detail_table = "T";
    GmdjBlock block;
    block.aggs = {AggSpec::Count("cnt")};
    block.theta = MustParse("B.g = R.g");
    op.blocks.push_back(block);
    expr_.ops.push_back(op);
  }

  SchemaMap schemas_;
  GmdjExpr expr_;
};

TEST_F(ValidationTest, ValidExpressionPasses) {
  EXPECT_OK(ValidateGmdjExpr(expr_, schemas_));
}

TEST_F(ValidationTest, UnknownDetailTable) {
  expr_.ops[0].detail_table = "missing";
  EXPECT_FALSE(ValidateGmdjExpr(expr_, schemas_).ok());
}

TEST_F(ValidationTest, UnknownProjectionColumn) {
  expr_.base.project_cols = {"nope"};
  EXPECT_FALSE(ValidateGmdjExpr(expr_, schemas_).ok());
}

TEST_F(ValidationTest, DuplicateOutputName) {
  expr_.ops[0].blocks[0].aggs.push_back(AggSpec::Sum("v", "cnt"));
  auto status = ValidateGmdjExpr(expr_, schemas_);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kAlreadyExists);
}

TEST_F(ValidationTest, OutputCollidingWithKeyRejected) {
  expr_.ops[0].blocks[0].aggs[0].output = "g";
  EXPECT_FALSE(ValidateGmdjExpr(expr_, schemas_).ok());
}

TEST_F(ValidationTest, ThetaReferencingFutureOutputRejected) {
  expr_.ops[0].blocks[0].theta = MustParse("B.g = R.g && B.cnt > 0");
  EXPECT_FALSE(ValidateGmdjExpr(expr_, schemas_).ok());
}

TEST_F(ValidationTest, ThetaReferencingPastOutputAccepted) {
  GmdjOp op2;
  op2.detail_table = "T";
  GmdjBlock block;
  block.aggs = {AggSpec::Count("cnt2")};
  block.theta = MustParse("B.g = R.g && R.v > B.cnt");
  op2.blocks.push_back(block);
  expr_.ops.push_back(op2);
  EXPECT_OK(ValidateGmdjExpr(expr_, schemas_));
}

TEST_F(ValidationTest, SumOverStringRejected) {
  expr_.ops[0].blocks[0].aggs.push_back(AggSpec::Sum("s", "bad"));
  EXPECT_FALSE(ValidateGmdjExpr(expr_, schemas_).ok());
}

TEST_F(ValidationTest, EmptyBlocksRejected) {
  expr_.ops[0].blocks.clear();
  EXPECT_FALSE(ValidateGmdjExpr(expr_, schemas_).ok());
}

TEST_F(ValidationTest, BaseResultSchemaGrowsPerRound) {
  ASSERT_OK_AND_ASSIGN(SchemaPtr s0, BaseResultSchema(expr_, schemas_, 0));
  EXPECT_EQ(s0->num_fields(), 1);
  ASSERT_OK_AND_ASSIGN(SchemaPtr s1, BaseResultSchema(expr_, schemas_, 1));
  EXPECT_EQ(s1->num_fields(), 2);
  EXPECT_FALSE(BaseResultSchema(expr_, schemas_, 2).ok());
}

TEST_F(ValidationTest, PrinterMentionsStructure) {
  const std::string s = GmdjExprToString(expr_);
  EXPECT_NE(s.find("MD("), std::string::npos);
  EXPECT_NE(s.find("pi_{g}"), std::string::npos);
  EXPECT_NE(s.find("count(*) -> cnt"), std::string::npos);
}

}  // namespace
}  // namespace skalla

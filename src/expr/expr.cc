#include "expr/expr.h"

namespace skalla {

const char* SideToString(Side side) {
  return side == Side::kBase ? "B" : "R";
}

const char* BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "!=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "&&";
    case BinaryOp::kOr:
      return "||";
  }
  return "?";
}

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

bool IsArithmetic(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod:
      return true;
    default:
      return false;
  }
}

std::string ColumnExpr::ToString() const {
  return std::string(SideToString(side_)) + "." + name_;
}

bool ColumnExpr::Equals(const Expr& other) const {
  if (other.kind() != ExprKind::kColumn) return false;
  const auto& o = static_cast<const ColumnExpr&>(other);
  return side_ == o.side_ && name_ == o.name_;
}

std::string LiteralExpr::ToString() const {
  if (value_.is_string()) return "'" + value_.AsString() + "'";
  return value_.ToString();
}

bool LiteralExpr::Equals(const Expr& other) const {
  if (other.kind() != ExprKind::kLiteral) return false;
  const auto& o = static_cast<const LiteralExpr&>(other);
  if (value_.is_null() || o.value_.is_null()) {
    return value_.is_null() && o.value_.is_null();
  }
  return value_ == o.value_;
}

std::string UnaryExpr::ToString() const {
  if (op_ == UnaryOp::kIsNull) {
    return "(" + operand_->ToString() + " IS NULL)";
  }
  const char* op = op_ == UnaryOp::kNeg ? "-" : "!";
  return std::string(op) + "(" + operand_->ToString() + ")";
}

bool UnaryExpr::Equals(const Expr& other) const {
  if (other.kind() != ExprKind::kUnary) return false;
  const auto& o = static_cast<const UnaryExpr&>(other);
  return op_ == o.op_ && operand_->Equals(*o.operand_);
}

std::string BinaryExpr::ToString() const {
  return "(" + left_->ToString() + " " + BinaryOpToString(op_) + " " +
         right_->ToString() + ")";
}

bool BinaryExpr::Equals(const Expr& other) const {
  if (other.kind() != ExprKind::kBinary) return false;
  const auto& o = static_cast<const BinaryExpr&>(other);
  return op_ == o.op_ && left_->Equals(*o.left_) && right_->Equals(*o.right_);
}

ExprPtr BCol(std::string name) {
  return std::make_shared<ColumnExpr>(Side::kBase, std::move(name));
}

ExprPtr RCol(std::string name) {
  return std::make_shared<ColumnExpr>(Side::kDetail, std::move(name));
}

ExprPtr Col(Side side, std::string name) {
  return std::make_shared<ColumnExpr>(side, std::move(name));
}

ExprPtr Lit(Value value) {
  return std::make_shared<LiteralExpr>(std::move(value));
}

ExprPtr Neg(ExprPtr operand) {
  return std::make_shared<UnaryExpr>(UnaryOp::kNeg, std::move(operand));
}

ExprPtr Not(ExprPtr operand) {
  return std::make_shared<UnaryExpr>(UnaryOp::kNot, std::move(operand));
}

ExprPtr IsNull(ExprPtr operand) {
  return std::make_shared<UnaryExpr>(UnaryOp::kIsNull, std::move(operand));
}

namespace {
ExprPtr MakeBinary(BinaryOp op, ExprPtr l, ExprPtr r) {
  return std::make_shared<BinaryExpr>(op, std::move(l), std::move(r));
}
}  // namespace

ExprPtr Add(ExprPtr l, ExprPtr r) {
  return MakeBinary(BinaryOp::kAdd, std::move(l), std::move(r));
}
ExprPtr Sub(ExprPtr l, ExprPtr r) {
  return MakeBinary(BinaryOp::kSub, std::move(l), std::move(r));
}
ExprPtr Mul(ExprPtr l, ExprPtr r) {
  return MakeBinary(BinaryOp::kMul, std::move(l), std::move(r));
}
ExprPtr Div(ExprPtr l, ExprPtr r) {
  return MakeBinary(BinaryOp::kDiv, std::move(l), std::move(r));
}
ExprPtr Mod(ExprPtr l, ExprPtr r) {
  return MakeBinary(BinaryOp::kMod, std::move(l), std::move(r));
}
ExprPtr Eq(ExprPtr l, ExprPtr r) {
  return MakeBinary(BinaryOp::kEq, std::move(l), std::move(r));
}
ExprPtr Ne(ExprPtr l, ExprPtr r) {
  return MakeBinary(BinaryOp::kNe, std::move(l), std::move(r));
}
ExprPtr Lt(ExprPtr l, ExprPtr r) {
  return MakeBinary(BinaryOp::kLt, std::move(l), std::move(r));
}
ExprPtr Le(ExprPtr l, ExprPtr r) {
  return MakeBinary(BinaryOp::kLe, std::move(l), std::move(r));
}
ExprPtr Gt(ExprPtr l, ExprPtr r) {
  return MakeBinary(BinaryOp::kGt, std::move(l), std::move(r));
}
ExprPtr Ge(ExprPtr l, ExprPtr r) {
  return MakeBinary(BinaryOp::kGe, std::move(l), std::move(r));
}
ExprPtr And(ExprPtr l, ExprPtr r) {
  return MakeBinary(BinaryOp::kAnd, std::move(l), std::move(r));
}
ExprPtr Or(ExprPtr l, ExprPtr r) {
  return MakeBinary(BinaryOp::kOr, std::move(l), std::move(r));
}

ExprPtr True() { return Lit(Value(int64_t{1})); }
ExprPtr False() { return Lit(Value(int64_t{0})); }

ExprPtr AndAll(const std::vector<ExprPtr>& conjuncts) {
  if (conjuncts.empty()) return True();
  ExprPtr acc = conjuncts[0];
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    acc = And(acc, conjuncts[i]);
  }
  return acc;
}

ExprPtr OrAll(const std::vector<ExprPtr>& disjuncts) {
  if (disjuncts.empty()) return False();
  ExprPtr acc = disjuncts[0];
  for (size_t i = 1; i < disjuncts.size(); ++i) {
    acc = Or(acc, disjuncts[i]);
  }
  return acc;
}

}  // namespace skalla

#ifndef SKALLA_STORAGE_COLUMNAR_H_
#define SKALLA_STORAGE_COLUMNAR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/schema.h"

namespace skalla {

class Table;

/// \brief An immutable columnar snapshot of a row-store Table.
///
/// The vectorized GMDJ scan (docs/vectorized-execution.md) reads detail
/// relations column-at-a-time through this view instead of boxing every
/// cell through Value: int64/double columns become typed arrays plus an
/// LSB-first validity bitmap, string columns become first-appearance
/// dictionary codes. The view is built lazily once per Table
/// (Table::columnar()) and shared across blocks, morsels, and rounds —
/// detail partitions persist in the site Catalog, so later rounds reuse
/// the snapshot for free.
///
/// A column is only `usable` when every non-NULL cell matches the declared
/// schema type; a type-deviant column keeps the row-store path (the batch
/// evaluator and the typed aggregate kernels fall back per column, never
/// per cell — see the fallback rules in docs/vectorized-execution.md).
class ColumnarTable {
 public:
  struct Column {
    ValueType type = ValueType::kNull;  ///< declared schema type
    /// Every non-NULL cell matches `type`; false disables the typed arrays
    /// for this column (they are left empty).
    bool usable = false;
    bool has_nulls = false;
    /// LSB-first validity bitmap (bit i set = row i non-NULL); empty when
    /// the column has no NULLs.
    std::vector<uint64_t> valid;
    std::vector<int64_t> ints;     ///< kInt64 payload
    std::vector<double> doubles;   ///< kDouble payload
    /// kString payload: dictionary code per row, -1 for NULL.
    std::vector<int32_t> codes;
    std::vector<std::string> dict;  ///< first-appearance order
    std::unordered_map<std::string, int32_t> dict_index;
    /// Order index over `dict`: order_rank[code] is the rank of dict[code]
    /// under lexicographic (Value::Compare) string order, so ordering
    /// comparisons between two values of this column — and against a
    /// constant, via LowerBoundRank — become integer compares on ranks.
    std::vector<int32_t> order_rank;
    /// Dictionary codes sorted by their strings (the inverse permutation
    /// of order_rank); used to binary-search constants not in the dict.
    std::vector<int32_t> sorted_codes;

    bool IsValid(int64_t i) const {
      if (!has_nulls) return true;
      return (valid[static_cast<size_t>(i) >> 6] >> (i & 63)) & 1;
    }
    /// Bitmap for the batch kernels: nullptr means "no NULLs".
    const uint64_t* valid_words() const {
      return has_nulls ? valid.data() : nullptr;
    }
    /// Dictionary code of `s`, or -1 when the column never contains it.
    int32_t CodeOf(const std::string& s) const {
      auto it = dict_index.find(s);
      return it == dict_index.end() ? -1 : it->second;
    }
    /// Number of dictionary strings lexicographically < `s` — the rank a
    /// constant would occupy. With CodeOf, every ordering comparison of a
    /// column value against `s` reduces to an integer compare on ranks:
    /// value < s  ⟺  order_rank[code] < LowerBoundRank(s).
    int32_t LowerBoundRank(const std::string& s) const;
  };

  /// Materializes the snapshot; O(rows × columns), one pass.
  static std::shared_ptr<const ColumnarTable> Build(const Table& table);

  int64_t num_rows() const { return num_rows_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }
  const Column& column(int i) const {
    return columns_[static_cast<size_t>(i)];
  }

 private:
  ColumnarTable() = default;

  int64_t num_rows_ = 0;
  std::vector<Column> columns_;
};

}  // namespace skalla

#endif  // SKALLA_STORAGE_COLUMNAR_H_

#include "sql/olap_parser.h"

#include <cctype>
#include <cstdlib>
#include <set>

#include "common/string_util.h"
#include "expr/analyzer.h"
#include "expr/parser.h"

namespace skalla {

namespace {

enum class TokKind { kWord, kPunct, kNumber, kString, kEnd };

struct Tok {
  TokKind kind = TokKind::kEnd;
  std::string text;   // upper-cased for kWord comparisons
  std::string raw;    // original spelling
  size_t begin = 0;
  size_t end = 0;
};

/// A light tokenizer that only needs to recognize clause structure; the
/// expression fragments between clauses are re-parsed by expr/parser.h.
Result<std::vector<Tok>> Tokenize(std::string_view text) {
  std::vector<Tok> tokens;
  size_t pos = 0;
  while (pos < text.size()) {
    const char c = text[pos];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
      continue;
    }
    Tok tok;
    tok.begin = pos;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (pos < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[pos])) ||
              text[pos] == '_')) {
        ++pos;
      }
      tok.kind = TokKind::kWord;
      tok.raw = std::string(text.substr(tok.begin, pos - tok.begin));
      tok.text = tok.raw;
      for (char& ch : tok.text) {
        ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      }
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      while (pos < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[pos])) ||
              text[pos] == '.')) {
        ++pos;
      }
      tok.kind = TokKind::kNumber;
      tok.raw = std::string(text.substr(tok.begin, pos - tok.begin));
    } else if (c == '\'') {
      ++pos;
      while (pos < text.size()) {
        if (text[pos] == '\'') {
          if (pos + 1 < text.size() && text[pos + 1] == '\'') {
            pos += 2;
            continue;
          }
          ++pos;
          break;
        }
        ++pos;
      }
      if (pos > text.size() ||
          (pos <= text.size() && text[pos - 1] != '\'')) {
        return Status::InvalidArgument("unterminated string literal");
      }
      tok.kind = TokKind::kString;
      tok.raw = std::string(text.substr(tok.begin, pos - tok.begin));
    } else {
      // Multi-character comparison operators stay one token so that the
      // expression slicing below never splits them.
      static constexpr std::string_view kTwoChar[] = {"==", "!=", "<>",
                                                      "<=", ">=", "&&",
                                                      "||"};
      tok.kind = TokKind::kPunct;
      tok.raw = std::string(1, c);
      if (pos + 1 < text.size()) {
        const std::string_view two = text.substr(pos, 2);
        for (std::string_view op : kTwoChar) {
          if (two == op) {
            tok.raw = std::string(op);
            break;
          }
        }
      }
      pos += tok.raw.size();
      tok.text = tok.raw;
    }
    tok.end = pos;
    tokens.push_back(std::move(tok));
  }
  Tok end_tok;
  end_tok.begin = end_tok.end = text.size();
  tokens.push_back(end_tok);
  return tokens;
}

class QueryParser {
 public:
  QueryParser(std::string_view text, std::vector<Tok> tokens)
      : text_(text), tokens_(std::move(tokens)) {}

  Result<GmdjExpr> Parse() {
    GmdjExpr expr;
    SKALLA_RETURN_NOT_OK(Expect("SELECT"));

    std::vector<std::string> select_cols;
    std::vector<AggSpec> select_aggs;
    SKALLA_RETURN_NOT_OK(ParseItems(&select_cols, &select_aggs));

    SKALLA_RETURN_NOT_OK(Expect("FROM"));
    if (Peek().kind != TokKind::kWord) {
      return Status::InvalidArgument("expected relation name after FROM");
    }
    expr.base.source_table = Advance().raw;

    if (PeekIs("WHERE")) {
      Advance();
      SKALLA_ASSIGN_OR_RETURN(std::string_view span,
                              SliceUntil({"GROUP"}));
      ParserOptions options;
      options.default_side = Side::kDetail;
      SKALLA_ASSIGN_OR_RETURN(expr.base.filter, ParseExpr(span, options));
    }

    SKALLA_RETURN_NOT_OK(Expect("GROUP"));
    SKALLA_RETURN_NOT_OK(Expect("BY"));
    while (true) {
      if (Peek().kind != TokKind::kWord) {
        return Status::InvalidArgument("expected column name in GROUP BY");
      }
      expr.base.project_cols.push_back(Advance().raw);
      if (PeekIsPunct(",")) {
        Advance();
        continue;
      }
      break;
    }

    // Every bare SELECT item must be a grouping column.
    for (const std::string& col : select_cols) {
      bool found = false;
      for (const std::string& g : expr.base.project_cols) {
        if (g == col) found = true;
      }
      if (!found) {
        return Status::InvalidArgument(
            "selected column '" + col + "' is not in GROUP BY");
      }
    }
    if (select_aggs.empty()) {
      return Status::InvalidArgument(
          "query computes no aggregates (nothing for GMDJ to do)");
    }

    // Names visible on the base side in later conditions.
    std::set<std::string> base_names(expr.base.project_cols.begin(),
                                     expr.base.project_cols.end());

    // Key-equality condition shared by every operator.
    std::vector<ExprPtr> key_eqs;
    for (const std::string& col : expr.base.project_cols) {
      key_eqs.push_back(Eq(BCol(col), RCol(col)));
    }

    GmdjOp first;
    first.detail_table = expr.base.source_table;
    first.blocks.push_back(GmdjBlock{select_aggs, AndAll(key_eqs)});
    for (const AggSpec& spec : select_aggs) base_names.insert(spec.output);
    expr.ops.push_back(std::move(first));

    while (PeekIs("EXTEND")) {
      Advance();
      std::vector<std::string> cols;
      std::vector<AggSpec> aggs;
      SKALLA_RETURN_NOT_OK(ParseItems(&cols, &aggs));
      if (!cols.empty()) {
        return Status::InvalidArgument(
            "EXTEND items must all be aggregates");
      }
      if (aggs.empty()) {
        return Status::InvalidArgument("EXTEND clause has no aggregates");
      }
      ExprPtr theta = AndAll(key_eqs);
      if (PeekIs("WHERE")) {
        Advance();
        SKALLA_ASSIGN_OR_RETURN(std::string_view span,
                                SliceUntil({"EXTEND", "HAVING"}));
        ParserOptions options;
        options.default_side = Side::kDetail;
        SKALLA_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr(span, options));
        theta = And(theta, RebindToBase(cond, base_names));
      }
      GmdjOp op;
      op.detail_table = expr.base.source_table;
      op.blocks.push_back(GmdjBlock{aggs, theta});
      for (const AggSpec& spec : aggs) base_names.insert(spec.output);
      expr.ops.push_back(std::move(op));
    }

    if (PeekIs("HAVING")) {
      Advance();
      SKALLA_ASSIGN_OR_RETURN(std::string_view span,
                              SliceUntil({"ORDER", "LIMIT"}));
      ParserOptions options;
      options.default_side = Side::kDetail;
      SKALLA_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr(span, options));
      expr.having = RebindToBase(cond, base_names);
      // Every identifier must have bound to a key or an output.
      const auto leftover = CollectColumns(expr.having, Side::kDetail);
      if (!leftover.empty()) {
        return Status::InvalidArgument(
            "HAVING references unknown column '" + *leftover.begin() + "'");
      }
    }

    if (PeekIs("ORDER")) {
      Advance();
      SKALLA_RETURN_NOT_OK(Expect("BY"));
      while (true) {
        if (Peek().kind != TokKind::kWord) {
          return Status::InvalidArgument("expected column in ORDER BY");
        }
        SortKey key;
        key.column = Advance().raw;
        if (!base_names.count(key.column)) {
          return Status::InvalidArgument("ORDER BY references unknown "
                                         "column '" + key.column + "'");
        }
        if (PeekIs("DESC")) {
          Advance();
          key.descending = true;
        } else if (PeekIs("ASC")) {
          Advance();
        }
        expr.order_by.push_back(std::move(key));
        if (PeekIsPunct(",")) {
          Advance();
          continue;
        }
        break;
      }
    }
    if (PeekIs("LIMIT")) {
      Advance();
      if (Peek().kind != TokKind::kNumber) {
        return Status::InvalidArgument("expected row count after LIMIT");
      }
      char* end = nullptr;
      const long long n = std::strtoll(Advance().raw.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || n < 0) {
        return Status::InvalidArgument("bad LIMIT value");
      }
      expr.limit = static_cast<int64_t>(n);
    }

    if (Peek().kind != TokKind::kEnd) {
      return Status::InvalidArgument("trailing input at '" + Peek().raw +
                                     "'");
    }
    return expr;
  }

 private:
  const Tok& Peek() const { return tokens_[pos_]; }
  const Tok& Advance() { return tokens_[pos_++]; }

  bool PeekIs(std::string_view keyword) const {
    return Peek().kind == TokKind::kWord && Peek().text == keyword;
  }
  bool PeekIsPunct(std::string_view p) const {
    return Peek().kind == TokKind::kPunct && Peek().raw == p;
  }

  Status Expect(std::string_view keyword) {
    if (!PeekIs(keyword)) {
      return Status::InvalidArgument("expected " + std::string(keyword) +
                                     " at '" + Peek().raw + "'");
    }
    Advance();
    return Status::OK();
  }

  /// Consumes tokens up to (not including) the first top-level occurrence
  /// of any stop keyword (or end of input) and returns the covered source
  /// span, for re-parsing with the expression parser.
  Result<std::string_view> SliceUntil(
      const std::vector<std::string_view>& stops) {
    const size_t begin = Peek().begin;
    int depth = 0;
    size_t end = begin;
    while (Peek().kind != TokKind::kEnd) {
      if (Peek().kind == TokKind::kPunct) {
        if (Peek().raw == "(") ++depth;
        if (Peek().raw == ")") --depth;
      }
      if (depth == 0 && Peek().kind == TokKind::kWord) {
        for (std::string_view stop : stops) {
          if (Peek().text == stop) {
            if (end == begin) {
              return Status::InvalidArgument("empty expression before " +
                                             std::string(stop));
            }
            return text_.substr(begin, end - begin);
          }
        }
      }
      end = Advance().end;
    }
    if (end == begin) {
      return Status::InvalidArgument("empty expression at end of query");
    }
    return text_.substr(begin, end - begin);
  }

  /// Parses a comma-separated list of items: bare columns into `cols`,
  /// `FUNC(arg) AS name` into `aggs`. Stops before FROM/WHERE/EXTEND/end.
  Status ParseItems(std::vector<std::string>* cols,
                    std::vector<AggSpec>* aggs) {
    while (true) {
      if (Peek().kind != TokKind::kWord) {
        return Status::InvalidArgument("expected item at '" + Peek().raw +
                                       "'");
      }
      const Tok word = Advance();
      if (PeekIsPunct("(")) {
        SKALLA_ASSIGN_OR_RETURN(AggFunc func, AggFuncFromString(word.raw));
        Advance();  // (
        std::string input;
        if (PeekIsPunct("*")) {
          Advance();
          input = "*";
        } else if (Peek().kind == TokKind::kWord) {
          input = Advance().raw;
        } else {
          return Status::InvalidArgument(
              "expected aggregate argument after '" + word.raw + "('");
        }
        if (!PeekIsPunct(")")) {
          return Status::InvalidArgument("expected ')' in aggregate");
        }
        Advance();
        SKALLA_RETURN_NOT_OK(Expect("AS"));
        if (Peek().kind != TokKind::kWord) {
          return Status::InvalidArgument("expected alias after AS");
        }
        aggs->push_back(AggSpec{func, input, Advance().raw});
      } else {
        cols->push_back(word.raw);
      }
      if (PeekIsPunct(",")) {
        Advance();
        continue;
      }
      return Status::OK();
    }
  }

  std::string_view text_;
  std::vector<Tok> tokens_;
  size_t pos_ = 0;
};

}  // namespace

ExprPtr RebindToBase(const ExprPtr& expr,
                     const std::set<std::string>& base_names) {
  switch (expr->kind()) {
    case ExprKind::kColumn: {
      const auto& col = static_cast<const ColumnExpr&>(*expr);
      if (col.side() == Side::kDetail && base_names.count(col.name())) {
        return BCol(col.name());
      }
      return expr;
    }
    case ExprKind::kLiteral:
      return expr;
    case ExprKind::kUnary: {
      const auto& un = static_cast<const UnaryExpr&>(*expr);
      ExprPtr operand = RebindToBase(un.operand(), base_names);
      if (operand == un.operand()) return expr;
      return std::make_shared<UnaryExpr>(un.op(), std::move(operand));
    }
    case ExprKind::kBinary: {
      const auto& bin = static_cast<const BinaryExpr&>(*expr);
      ExprPtr left = RebindToBase(bin.left(), base_names);
      ExprPtr right = RebindToBase(bin.right(), base_names);
      if (left == bin.left() && right == bin.right()) return expr;
      return std::make_shared<BinaryExpr>(bin.op(), std::move(left),
                                          std::move(right));
    }
  }
  return expr;
}

Result<GmdjExpr> ParseOlapQuery(std::string_view text) {
  SKALLA_ASSIGN_OR_RETURN(std::vector<Tok> tokens, Tokenize(text));
  QueryParser parser(text, std::move(tokens));
  return parser.Parse();
}

}  // namespace skalla

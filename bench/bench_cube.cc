// Ablation: distributed data-cube strategies (cube/cube.h).
//
// kPerGroupingSet pays one distributed query per subset of the dimensions;
// kRollupFromFinest ships decomposed sub-aggregates once and rolls the
// lattice up at the coordinator. The gap widens exponentially with the
// number of dimensions.
//
//   ./bench_cube

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "cube/cube.h"

namespace {

using namespace skalla;
using bench::GetWarehouse;
using bench::WarehouseSpec;

const std::vector<std::string>& AllDims() {
  static const std::vector<std::string> dims = {
      "RegionKey", "MktSegment", "OrderPriority", "ShipMode"};
  return dims;
}

CubeSpec SpecForDims(int num_dims) {
  CubeSpec spec;
  spec.table = "TPCR";
  spec.dims.assign(AllDims().begin(), AllDims().begin() + num_dims);
  spec.aggs = {AggSpec::Count("cnt"), AggSpec::Sum("Quantity", "qty"),
               AggSpec::Avg("ExtendedPrice", "avg_price")};
  return spec;
}

Warehouse& CubeWarehouse() {
  WarehouseSpec spec;
  spec.sites = 8;
  spec.rows_per_site = 8000;
  spec.groups_per_site = 400;
  return GetWarehouse(spec);
}

void BM_Cube(benchmark::State& state) {
  const int num_dims = static_cast<int>(state.range(0));
  const CubeStrategy strategy = state.range(1) != 0
                                    ? CubeStrategy::kRollupFromFinest
                                    : CubeStrategy::kPerGroupingSet;
  Warehouse& warehouse = CubeWarehouse();
  const CubeSpec spec = SpecForDims(num_dims);
  for (auto _ : state) {
    auto result =
        CubeDistributed(warehouse, spec, strategy, OptimizerOptions::All());
    if (!result.ok()) std::abort();
    state.SetIterationTime(result->response_seconds);
    state.counters["bytes"] = static_cast<double>(result->total_bytes);
    state.counters["queries"] = result->distributed_queries;
    state.counters["cube_rows"] =
        static_cast<double>(result->table.num_rows());
  }
  state.SetLabel(strategy == CubeStrategy::kRollupFromFinest
                     ? "rollup-from-finest"
                     : "per-grouping-set");
}
BENCHMARK(BM_Cube)
    ->ArgsProduct({{1, 2, 3, 4}, {0, 1}})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void PrintTable() {
  Warehouse& warehouse = CubeWarehouse();
  std::printf("\n=== Distributed cube: per-grouping-set vs rollup ===\n");
  std::printf("%-6s %-12s | %10s %12s | %10s %12s | %8s\n", "dims",
              "cube rows", "queries", "bytes(set)", "queries",
              "bytes(rollup)", "traffic");
  for (int d = 1; d <= 4; ++d) {
    const CubeSpec spec = SpecForDims(d);
    auto per_set = CubeDistributed(warehouse, spec,
                                   CubeStrategy::kPerGroupingSet,
                                   OptimizerOptions::All());
    auto rollup = CubeDistributed(warehouse, spec,
                                  CubeStrategy::kRollupFromFinest,
                                  OptimizerOptions::All());
    if (!per_set.ok() || !rollup.ok()) std::abort();
    std::printf("%-6d %-12lld | %10d %12zu | %10d %12zu | %7.2fx\n", d,
                static_cast<long long>(rollup->table.num_rows()),
                per_set->distributed_queries, per_set->total_bytes,
                rollup->distributed_queries, rollup->total_bytes,
                static_cast<double>(per_set->total_bytes) /
                    static_cast<double>(rollup->total_bytes));
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintTable();
  return 0;
}

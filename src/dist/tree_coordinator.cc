#include "dist/tree_coordinator.h"

#include <algorithm>
#include <functional>
#include <future>
#include <numeric>
#include <sstream>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "dist/coordinator.h"
#include "dist/sync.h"
#include "engine/operators.h"
#include "expr/evaluator.h"
#include "storage/hash_index.h"
#include "storage/serializer.h"

namespace skalla {

TreeTopology TreeTopology::Build(int num_sites, int fan_in) {
  SKALLA_CHECK(num_sites >= 1);
  SKALLA_CHECK(fan_in >= 2);
  TreeTopology tree;
  std::vector<int> current_level;
  for (int s = 0; s < num_sites; ++s) {
    Node leaf;
    leaf.id = static_cast<int>(tree.nodes.size());
    leaf.site_index = s;
    leaf.level = 0;
    current_level.push_back(leaf.id);
    tree.nodes.push_back(std::move(leaf));
  }
  int level = 0;
  while (current_level.size() > 1) {
    ++level;
    std::vector<int> next_level;
    for (size_t i = 0; i < current_level.size();
         i += static_cast<size_t>(fan_in)) {
      Node parent;
      parent.id = static_cast<int>(tree.nodes.size());
      parent.level = level;
      const size_t end =
          std::min(current_level.size(), i + static_cast<size_t>(fan_in));
      for (size_t c = i; c < end; ++c) {
        parent.children.push_back(current_level[c]);
        tree.nodes[static_cast<size_t>(current_level[c])].parent = parent.id;
      }
      next_level.push_back(parent.id);
      tree.nodes.push_back(std::move(parent));
    }
    current_level = std::move(next_level);
  }
  tree.root = current_level[0];
  tree.num_levels = level + 1;
  return tree;
}

std::vector<int> TreeTopology::NodesAtLevel(int level) const {
  std::vector<int> out;
  for (const Node& node : nodes) {
    if (node.level == level) out.push_back(node.id);
  }
  return out;
}

std::string TreeTopology::ToString() const {
  std::ostringstream os;
  os << "tree with " << num_levels << " level(s), root " << root << "\n";
  for (const Node& node : nodes) {
    if (node.children.empty()) continue;
    os << "  node " << node.id << " (level " << node.level << ") <- [";
    for (size_t i = 0; i < node.children.size(); ++i) {
      if (i) os << ", ";
      os << node.children[i];
    }
    os << "]\n";
  }
  return os.str();
}

TreeCoordinator::TreeCoordinator(std::vector<Site*> sites, int fan_in,
                                 NetworkConfig config)
    : sites_(std::move(sites)),
      topology_(TreeTopology::Build(
          std::max<int>(1, static_cast<int>(sites_.size())), fan_in)),
      config_(config) {}

namespace {

/// Result of propagating relations up one subtree level: per-node table.
struct LevelState {
  std::vector<Table> tables;  // indexed by node id (sparse; empty elsewhere)
};

}  // namespace

Result<Table> TreeCoordinator::Execute(const DistributedPlan& plan,
                                       ExecutionMetrics* metrics) {
  if (sites_.empty()) {
    return Status::InvalidArgument("tree coordinator has no sites");
  }
  if (!plan.base_sites.empty()) {
    return Status::NotImplemented(
        "tree coordinator requires full site participation");
  }
  for (const PlanRound& round : plan.rounds) {
    if (!round.participating_sites.empty()) {
      return Status::NotImplemented(
          "tree coordinator requires full site participation");
    }
  }
  ExecutionMetrics local_metrics;

  // Schema map via a throwaway flat coordinator helper.
  Coordinator schema_helper(sites_, config_);
  SKALLA_ASSIGN_OR_RETURN(SchemaMap schemas,
                          schema_helper.CollectSchemas(plan));
  const GmdjExpr expr = plan.ToExpr();
  SKALLA_RETURN_NOT_OK(ValidateGmdjExpr(expr, schemas));

  const int num_key = static_cast<int>(plan.key_attrs.size());
  std::vector<int> key_cols(static_cast<size_t>(num_key));
  std::iota(key_cols.begin(), key_cols.end(), 0);

  SKALLA_ASSIGN_OR_RETURN(SchemaPtr x_schema,
                          BaseResultSchema(expr, schemas, 0));
  Table x(x_schema);

  // Propagates per-leaf tables up the tree, combining at each internal
  // node, and returns the root's table. Charges hop transfer times (per
  // level: max over parents of the serialized inbound volume) and merge
  // CPU into the round metrics.
  auto propagate_up =
      [&](std::vector<Table> leaf_tables, RoundMetrics* rm,
          const std::function<Result<Table>(
              const std::vector<const Table*>&)>& combine) -> Result<Table> {
    std::vector<Table> by_node(topology_.nodes.size());
    for (const TreeTopology::Node& node : topology_.nodes) {
      if (node.site_index >= 0) {
        by_node[static_cast<size_t>(node.id)] =
            std::move(leaf_tables[static_cast<size_t>(node.site_index)]);
      }
    }
    for (int level = 1; level < topology_.num_levels; ++level) {
      double level_comm = 0;
      double level_merge_cpu = 0;
      for (int node_id : topology_.NodesAtLevel(level)) {
        const TreeTopology::Node& node =
            topology_.nodes[static_cast<size_t>(node_id)];
        double inbound = 0;
        std::vector<Table> received;
        for (int child : node.children) {
          const Table& child_table = by_node[static_cast<size_t>(child)];
          const std::string payload =
              Serializer::SerializeTable(child_table);
          inbound += config_.TransferSeconds(payload.size());
          rm->bytes_to_coord += payload.size();
          rm->groups_to_coord += child_table.num_rows();
          SKALLA_ASSIGN_OR_RETURN(Table decoded,
                                  Serializer::DeserializeTable(payload));
          received.push_back(std::move(decoded));
        }
        Stopwatch merge_sw;
        std::vector<const Table*> ptrs;
        ptrs.reserve(received.size());
        for (const Table& t : received) ptrs.push_back(&t);
        SKALLA_ASSIGN_OR_RETURN(Table combined, combine(ptrs));
        by_node[static_cast<size_t>(node_id)] = std::move(combined);
        level_merge_cpu = std::max(level_merge_cpu, merge_sw.ElapsedSeconds());
        level_comm = std::max(level_comm, inbound);
      }
      rm->comm_sec += level_comm;
      rm->coord_cpu_sec += level_merge_cpu;
    }
    return std::move(by_node[static_cast<size_t>(topology_.root)]);
  };

  // Sends `table` from the root to every leaf, charging per-level hop
  // costs (each node's outbound link serializes over its children).
  auto broadcast_down = [&](const Table& table, RoundMetrics* rm) {
    const std::string payload = Serializer::SerializeTable(table);
    for (int level = topology_.num_levels - 1; level >= 1; --level) {
      double level_comm = 0;
      for (int node_id : topology_.NodesAtLevel(level)) {
        const TreeTopology::Node& node =
            topology_.nodes[static_cast<size_t>(node_id)];
        double outbound = 0;
        for (int child : node.children) {
          (void)child;
          outbound += config_.TransferSeconds(payload.size());
          rm->bytes_to_sites += payload.size();
          rm->groups_to_sites += table.num_rows();
        }
        level_comm = std::max(level_comm, outbound);
      }
      rm->comm_sec += level_comm;
    }
  };

  // ---- Base round. ----
  if (!plan.fuse_base) {
    RoundMetrics rm;
    rm.label = "base query (tree)";
    rm.streaming = config_.streaming_sync;
    rm.sites = static_cast<int>(sites_.size());
    // The plan itself travels down the tree (control message per edge).
    for (const TreeTopology::Node& node : topology_.nodes) {
      if (node.parent >= 0) {
        rm.bytes_to_sites += kQueryPlanBytes;
      }
    }
    std::vector<Table> leaf_results(sites_.size());
    for (size_t s = 0; s < sites_.size(); ++s) {
      double cpu = 0;
      SKALLA_ASSIGN_OR_RETURN(leaf_results[s],
                              sites_[s]->EvalBase(plan.base, &cpu));
      rm.site_cpu_max_sec = std::max(rm.site_cpu_max_sec, cpu);
      rm.site_cpu_sum_sec += cpu;
    }
    SKALLA_ASSIGN_OR_RETURN(
        Table merged,
        propagate_up(std::move(leaf_results), &rm, DistinctUnion));
    Stopwatch apply_sw;
    x = Table(x_schema);
    for (const Row& row : merged.rows()) x.AddRow(row);
    rm.coord_cpu_sec += apply_sw.ElapsedSeconds();
    local_metrics.rounds.push_back(std::move(rm));
  }

  // ---- GMDJ rounds. ----
  for (size_t r = 0; r < plan.rounds.size(); ++r) {
    const PlanRound& round = plan.rounds[r];
    const bool fused_base_round = plan.fuse_base && r == 0;
    RoundMetrics rm;
    rm.label = "gmdj round " + std::to_string(r + 1) + " (tree)";
    rm.streaming = config_.streaming_sync;
    rm.sites = static_cast<int>(sites_.size());

    int sub_width = 0;
    SKALLA_ASSIGN_OR_RETURN(std::vector<SubSlot> slots,
                            BuildSubSlots(round.ops, schemas, &sub_width));

    // Column pruning: the leaves only need the key attributes plus the θ
    // references; the same narrowed relation travels every hop.
    Table shipped_x;
    const Table* x_for_leaves = &x;
    if (!fused_base_round) {
      if (!round.ship_cols.empty() &&
          static_cast<int>(round.ship_cols.size()) < x.schema().num_fields()) {
        SKALLA_ASSIGN_OR_RETURN(shipped_x, Project(x, round.ship_cols));
        x_for_leaves = &shipped_x;
      }
      broadcast_down(*x_for_leaves, &rm);
    } else {
      // The fused plan itself travels down the tree (one control message
      // per edge), mirroring the flat coordinator's accounting.
      for (const TreeTopology::Node& node : topology_.nodes) {
        if (node.parent >= 0) rm.bytes_to_sites += kQueryPlanBytes;
      }
    }

    std::vector<Table> leaf_results(sites_.size());
    {
      std::vector<Result<Table>> outcomes(
          sites_.size(), Result<Table>(Status::Internal("not evaluated")));
      std::vector<double> cpus(sites_.size(), 0.0);
      auto eval_one = [&](size_t s) {
        SiteRoundInput input;
        input.x = fused_base_round ? nullptr : x_for_leaves;
        input.base = fused_base_round ? &plan.base : nullptr;
        input.ops = &round.ops;
        input.key_attrs = &plan.key_attrs;
        input.touched_only = round.flags.independent_group_reduction;
        outcomes[s] = sites_[s]->EvalRound(input, &cpus[s]);
      };
      if (parallel_sites_ && sites_.size() > 1) {
        std::vector<std::future<void>> futures;
        futures.reserve(sites_.size());
        for (size_t s = 0; s < sites_.size(); ++s) {
          futures.push_back(std::async(std::launch::async, eval_one, s));
        }
        for (std::future<void>& f : futures) f.get();
      } else {
        for (size_t s = 0; s < sites_.size(); ++s) eval_one(s);
      }
      for (size_t s = 0; s < sites_.size(); ++s) {
        SKALLA_ASSIGN_OR_RETURN(leaf_results[s], std::move(outcomes[s]));
        rm.site_cpu_max_sec = std::max(rm.site_cpu_max_sec, cpus[s]);
        rm.site_cpu_sum_sec += cpus[s];
      }
    }

    SKALLA_ASSIGN_OR_RETURN(
        Table h, propagate_up(
                     std::move(leaf_results), &rm,
                     [&](const std::vector<const Table*>& inputs) {
                       return CombineSubResults(inputs, num_key, slots);
                     }));

    // ---- Apply the combined sub-results to X at the root. ----
    Stopwatch apply_sw;
    std::vector<Field> new_fields = x.schema().fields();
    for (const SubSlot& slot : slots) new_fields.push_back(slot.final_field);
    Table new_x(MakeSchema(std::move(new_fields)));

    HashIndex h_index;
    h_index.Build(h, key_cols);
    auto finalize_from = [&](const Row* h_row, Row* out_row) {
      for (const SubSlot& slot : slots) {
        if (h_row == nullptr) {
          std::vector<Value> init(static_cast<size_t>(slot.arity));
          InitSubValues(slot.func, init.data());
          out_row->push_back(FinalizeSubValues(slot.func, init.data()));
        } else {
          out_row->push_back(FinalizeSubValues(
              slot.func,
              &(*h_row)[static_cast<size_t>(num_key + slot.offset)]));
        }
      }
    };
    if (fused_base_round) {
      // X is assembled from the combined H itself.
      new_x.Reserve(h.num_rows());
      for (const Row& h_row : h.rows()) {
        Row row(h_row.begin(), h_row.begin() + num_key);
        finalize_from(&h_row, &row);
        new_x.AddRow(std::move(row));
      }
    } else {
      new_x.Reserve(x.num_rows());
      for (int64_t i = 0; i < x.num_rows(); ++i) {
        Row row = x.row(i);
        const std::vector<int64_t>* match = h_index.Lookup(row, key_cols);
        finalize_from(match == nullptr ? nullptr : &h.row(match->front()),
                      &row);
        new_x.AddRow(std::move(row));
      }
    }
    x = std::move(new_x);
    rm.coord_cpu_sec += apply_sw.ElapsedSeconds();
    local_metrics.rounds.push_back(std::move(rm));
  }


  // ---- HAVING: final coordinator-side filter over the finished X. ----
  if (plan.having != nullptr) {
    Stopwatch having_sw;
    SKALLA_ASSIGN_OR_RETURN(
        CompiledExpr having,
        CompiledExpr::Compile(plan.having, &x.schema(), nullptr));
    Table filtered(x.schema_ptr());
    for (const Row& row : x.rows()) {
      if (having.EvalBool(&row, nullptr)) filtered.AddRow(row);
    }
    x = std::move(filtered);
    if (!local_metrics.rounds.empty()) {
      local_metrics.rounds.back().coord_cpu_sec += having_sw.ElapsedSeconds();
    }
  }

  // ---- Presentation: ORDER BY / LIMIT on the finished relation. ----
  if (!plan.order_by.empty()) {
    SKALLA_ASSIGN_OR_RETURN(x, SortedByKeys(x, plan.order_by));
  }
  if (plan.limit >= 0) {
    x = Limit(x, plan.limit);
  }

  if (metrics != nullptr) *metrics = std::move(local_metrics);
  return x;
}

}  // namespace skalla

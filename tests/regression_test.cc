// Regression tests for optimizer soundness bugs originally caught by the
// randomized property tests (fuzz_property_test.cc). Each case pins the
// exact interaction so it no longer depends on fuzz seeds.

#include <gtest/gtest.h>

#include "expr/parser.h"
#include "skalla/warehouse.h"
#include "test_util.h"
#include "tpc/partitioner.h"

namespace skalla {
namespace {

ExprPtr MustParse(const std::string& text) {
  auto result = ParseExpr(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return *result;
}

/// A 2-group table where group 5's rows all fail a v-filter at site 0 but
/// exist at site 1 (and vice versa for group 6).
Table SplitFilterTable() {
  Table t(MakeSchema({{"g", ValueType::kInt64},
                      {"v", ValueType::kInt64},
                      {"x", ValueType::kInt64}}));
  // Site assignment below is round-robin: even row index → site 0.
  t.AddRow({Value(5), Value(1), Value(10)});   // site 0: g=5 fails v>=3
  t.AddRow({Value(5), Value(4), Value(20)});   // site 1: g=5 passes
  t.AddRow({Value(6), Value(4), Value(30)});   // site 0: g=6 passes
  t.AddRow({Value(6), Value(1), Value(40)});   // site 1: g=6 fails
  t.AddRow({Value(5), Value(1), Value(50)});   // site 0: more g=5 data
  t.AddRow({Value(6), Value(1), Value(60)});   // site 1: more g=6 data
  return t;
}

GmdjExpr FilteredBaseQuery() {
  GmdjExpr expr;
  expr.base.source_table = "T";
  expr.base.project_cols = {"g"};
  expr.base.filter = MustParse("v >= 3");  // non-key attribute!
  GmdjOp op;
  op.detail_table = "T";
  GmdjBlock block;
  block.aggs = {AggSpec::Count("cnt"), AggSpec::Sum("x", "sx")};
  block.theta = MustParse("B.g = R.g");
  op.blocks.push_back(block);
  expr.ops.push_back(op);
  return expr;
}

TEST(RegressionTest, Prop2MustNotFuseBaseWithNonKeyFilter) {
  // A site holding detail tuples of a group whose base derivation fails
  // locally must still contribute those tuples: fusing the base (Prop. 2)
  // under a non-key filter would drop them.
  Warehouse wh(2);
  ASSERT_OK_AND_ASSIGN(PartitionedData parts,
                       PartitionRoundRobin(SplitFilterTable(), 2));
  ASSERT_OK(wh.LoadPartitioned("T", std::move(parts)));

  const GmdjExpr query = FilteredBaseQuery();

  // The planner must refuse to fuse.
  OptimizerOptions options;
  options.sync_reduction = true;
  ASSERT_OK_AND_ASSIGN(DistributedPlan plan, wh.Plan(query, options));
  EXPECT_FALSE(plan.fuse_base);

  // And the executed result must match the centralized evaluation: both
  // groups present, each counting ALL 3 of its tuples.
  ASSERT_OK_AND_ASSIGN(Table expected, wh.ExecuteCentralized(query));
  ASSERT_OK_AND_ASSIGN(QueryResult result, wh.Execute(query, options));
  ExpectSameRows(result.table, expected);
  EXPECT_EQ(expected.num_rows(), 2);
  for (const Row& row : expected.rows()) {
    EXPECT_EQ(row[1], Value(3));
  }
}

TEST(RegressionTest, Prop2FusesWhenFilterIsOnKeyAttributes) {
  // The same query with the filter rewritten over the key attribute is
  // fusable — any matching detail tuple derives the group at its site.
  Warehouse wh(2);
  ASSERT_OK_AND_ASSIGN(PartitionedData parts,
                       PartitionRoundRobin(SplitFilterTable(), 2));
  ASSERT_OK(wh.LoadPartitioned("T", std::move(parts)));

  GmdjExpr query = FilteredBaseQuery();
  query.base.filter = MustParse("g >= 6");

  OptimizerOptions options;
  options.sync_reduction = true;
  ASSERT_OK_AND_ASSIGN(DistributedPlan plan, wh.Plan(query, options));
  EXPECT_TRUE(plan.fuse_base);

  ASSERT_OK_AND_ASSIGN(Table expected, wh.ExecuteCentralized(query));
  ASSERT_OK_AND_ASSIGN(QueryResult result, wh.Execute(query, options));
  ExpectSameRows(result.table, expected);
  EXPECT_EQ(expected.num_rows(), 1);  // only g=6
}

TEST(RegressionTest, GroupReductionMustNotDropGroupsInFusedBaseRound) {
  // θ matches nothing, so every group is "untouched". With the base fused
  // (Prop. 2) and independent group reduction requested, the groups must
  // still appear in the result with identity aggregates (COUNT 0), as in
  // the centralized evaluation.
  Warehouse wh(2);
  Table t(MakeSchema({{"g", ValueType::kInt64}, {"v", ValueType::kInt64}}));
  t.AddRow({Value(1), Value(10)});
  t.AddRow({Value(2), Value(20)});
  t.AddRow({Value(3), Value(30)});
  ASSERT_OK_AND_ASSIGN(PartitionedData parts, PartitionRoundRobin(t, 2));
  ASSERT_OK(wh.LoadPartitioned("T", std::move(parts)));

  GmdjExpr query;
  query.base.source_table = "T";
  query.base.project_cols = {"g"};
  GmdjOp op;
  op.detail_table = "T";
  GmdjBlock block;
  block.aggs = {AggSpec::Count("cnt"), AggSpec::Sum("v", "sv")};
  block.theta = MustParse("B.g = R.g && R.v < 0");  // never true
  op.blocks.push_back(block);
  query.ops.push_back(op);

  OptimizerOptions options;
  options.sync_reduction = true;                // fuses the base
  options.independent_group_reduction = true;   // must be suppressed
  ASSERT_OK_AND_ASSIGN(DistributedPlan plan, wh.Plan(query, options));
  ASSERT_TRUE(plan.fuse_base);

  ASSERT_OK_AND_ASSIGN(QueryResult result, wh.Execute(query, options));
  ASSERT_OK_AND_ASSIGN(Table expected, wh.ExecuteCentralized(query));
  ExpectSameRows(result.table, expected);
  EXPECT_EQ(result.table.num_rows(), 3);
  for (const Row& row : result.table.rows()) {
    EXPECT_EQ(row[1], Value(int64_t{0}));
    EXPECT_TRUE(row[2].is_null());
  }
}

TEST(RegressionTest, GroupReductionStillFiresInSynchronizedRounds) {
  // Sanity: outside fused-base rounds, the reduction does drop untouched
  // groups from the *shipped* H (traffic shrinks) without changing the
  // result.
  Warehouse wh(2);
  Table t(MakeSchema({{"g", ValueType::kInt64}, {"v", ValueType::kInt64}}));
  for (int64_t i = 0; i < 40; ++i) {
    t.AddRow({Value(i % 10), Value(i)});
  }
  ASSERT_OK(wh.LoadByRange("T", t, "g", 0, 9, {"g"}));

  GmdjExpr query;
  query.base.source_table = "T";
  query.base.project_cols = {"g"};
  GmdjOp op;
  op.detail_table = "T";
  GmdjBlock block;
  block.aggs = {AggSpec::Count("cnt")};
  block.theta = MustParse("B.g = R.g");
  op.blocks.push_back(block);
  query.ops.push_back(op);

  OptimizerOptions reduced;
  reduced.independent_group_reduction = true;
  ASSERT_OK_AND_ASSIGN(QueryResult with, wh.Execute(query, reduced));
  ASSERT_OK_AND_ASSIGN(QueryResult without,
                       wh.Execute(query, OptimizerOptions::None()));
  ExpectSameRows(with.table, without.table);
  EXPECT_LT(with.metrics.GroupsToCoord(), without.metrics.GroupsToCoord());
}

}  // namespace
}  // namespace skalla

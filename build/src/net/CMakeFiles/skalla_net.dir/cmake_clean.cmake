file(REMOVE_RECURSE
  "CMakeFiles/skalla_net.dir/fault_injector.cc.o"
  "CMakeFiles/skalla_net.dir/fault_injector.cc.o.d"
  "CMakeFiles/skalla_net.dir/sim_network.cc.o"
  "CMakeFiles/skalla_net.dir/sim_network.cc.o.d"
  "libskalla_net.a"
  "libskalla_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skalla_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/expr/analyzer.cc" "src/expr/CMakeFiles/skalla_expr.dir/analyzer.cc.o" "gcc" "src/expr/CMakeFiles/skalla_expr.dir/analyzer.cc.o.d"
  "/root/repo/src/expr/evaluator.cc" "src/expr/CMakeFiles/skalla_expr.dir/evaluator.cc.o" "gcc" "src/expr/CMakeFiles/skalla_expr.dir/evaluator.cc.o.d"
  "/root/repo/src/expr/expr.cc" "src/expr/CMakeFiles/skalla_expr.dir/expr.cc.o" "gcc" "src/expr/CMakeFiles/skalla_expr.dir/expr.cc.o.d"
  "/root/repo/src/expr/interval.cc" "src/expr/CMakeFiles/skalla_expr.dir/interval.cc.o" "gcc" "src/expr/CMakeFiles/skalla_expr.dir/interval.cc.o.d"
  "/root/repo/src/expr/parser.cc" "src/expr/CMakeFiles/skalla_expr.dir/parser.cc.o" "gcc" "src/expr/CMakeFiles/skalla_expr.dir/parser.cc.o.d"
  "/root/repo/src/expr/rewriter.cc" "src/expr/CMakeFiles/skalla_expr.dir/rewriter.cc.o" "gcc" "src/expr/CMakeFiles/skalla_expr.dir/rewriter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/skalla_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/skalla_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

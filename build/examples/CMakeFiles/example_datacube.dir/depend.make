# Empty dependencies file for example_datacube.
# This may be replaced when dependencies are built.

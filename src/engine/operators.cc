#include "engine/operators.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "expr/evaluator.h"
#include "storage/columnar.h"
#include "storage/hash_index.h"

namespace skalla {

namespace {

Result<std::vector<int>> ResolveColumns(const Schema& schema,
                                        const std::vector<std::string>& cols) {
  std::vector<int> indices;
  indices.reserve(cols.size());
  for (const std::string& name : cols) {
    SKALLA_ASSIGN_OR_RETURN(int idx, schema.MustIndexOf(name));
    indices.push_back(idx);
  }
  return indices;
}

SchemaPtr ProjectSchema(const Schema& schema, const std::vector<int>& indices) {
  std::vector<Field> fields;
  fields.reserve(indices.size());
  for (int idx : indices) fields.push_back(schema.field(idx));
  return MakeSchema(std::move(fields));
}

struct RowHasher {
  const std::vector<int>* cols;
  size_t operator()(const Row* row) const {
    return static_cast<size_t>(RowKeyHash(*row, *cols));
  }
};

struct RowEq {
  const std::vector<int>* cols;
  bool operator()(const Row* a, const Row* b) const {
    return RowKeyEquals(*a, *cols, *b, *cols);
  }
};

}  // namespace

Result<Table> Project(const Table& input,
                      const std::vector<std::string>& cols) {
  SKALLA_ASSIGN_OR_RETURN(std::vector<int> indices,
                          ResolveColumns(input.schema(), cols));
  Table out(ProjectSchema(input.schema(), indices));
  out.Reserve(input.num_rows());
  for (const Row& row : input.rows()) {
    Row projected;
    projected.reserve(indices.size());
    for (int idx : indices) projected.push_back(row[static_cast<size_t>(idx)]);
    out.AddRow(std::move(projected));
  }
  return out;
}

Result<Table> Filter(const Table& input, const ExprPtr& pred) {
  SKALLA_ASSIGN_OR_RETURN(
      CompiledExpr compiled,
      CompiledExpr::Compile(pred, /*base_schema=*/nullptr, &input.schema()));
  Table out(input.schema_ptr());
  for (const Row& row : input.rows()) {
    if (compiled.EvalBool(nullptr, &row)) out.AddRow(row);
  }
  return out;
}

Table Distinct(const Table& input) {
  std::vector<int> all_cols(static_cast<size_t>(input.schema().num_fields()));
  for (size_t i = 0; i < all_cols.size(); ++i) all_cols[i] = static_cast<int>(i);
  RowHasher hasher{&all_cols};
  RowEq eq{&all_cols};
  std::unordered_set<const Row*, RowHasher, RowEq> seen(16, hasher, eq);
  Table out(input.schema_ptr());
  for (const Row& row : input.rows()) {
    if (seen.insert(&row).second) out.AddRow(row);
  }
  return out;
}

Result<Table> DistinctProject(const Table& input,
                              const std::vector<std::string>& cols) {
  SKALLA_ASSIGN_OR_RETURN(std::vector<int> indices,
                          ResolveColumns(input.schema(), cols));
  RowHasher hasher{&indices};
  RowEq eq{&indices};
  std::unordered_set<const Row*, RowHasher, RowEq> seen(16, hasher, eq);
  Table out(ProjectSchema(input.schema(), indices));
  for (const Row& row : input.rows()) {
    if (seen.insert(&row).second) {
      Row projected;
      projected.reserve(indices.size());
      for (int idx : indices) {
        projected.push_back(row[static_cast<size_t>(idx)]);
      }
      out.AddRow(std::move(projected));
    }
  }
  return out;
}

Result<Table> UnionAll(const std::vector<const Table*>& inputs) {
  if (inputs.empty()) return Table();
  const Table* first = inputs[0];
  Table out(first->schema_ptr());
  for (const Table* t : inputs) {
    if (t->schema().num_fields() != first->schema().num_fields()) {
      return Status::InvalidArgument(
          "union of incompatible schemas: [" + first->schema().ToString() +
          "] vs [" + t->schema().ToString() + "]");
    }
    out.Append(*t);
  }
  return out;
}

Result<Table> SortedBy(const Table& input,
                       const std::vector<std::string>& cols) {
  SKALLA_ASSIGN_OR_RETURN(std::vector<int> indices,
                          ResolveColumns(input.schema(), cols));
  Table out = input;
  out.SortBy(indices);
  return out;
}

Result<Table> SortedByKeys(const Table& input,
                           const std::vector<SortKey>& keys) {
  std::vector<std::pair<int, bool>> resolved;
  resolved.reserve(keys.size());
  for (const SortKey& key : keys) {
    SKALLA_ASSIGN_OR_RETURN(int idx, input.schema().MustIndexOf(key.column));
    resolved.emplace_back(idx, key.descending);
  }
  std::vector<Row> rows = input.rows();
  std::sort(rows.begin(), rows.end(), [&](const Row& a, const Row& b) {
    for (const auto& [idx, desc] : resolved) {
      const int cmp = a[static_cast<size_t>(idx)].Compare(
          b[static_cast<size_t>(idx)]);
      if (cmp != 0) return desc ? cmp > 0 : cmp < 0;
    }
    // Deterministic tie-break over the full row.
    for (size_t c = 0; c < a.size(); ++c) {
      const int cmp = a[c].Compare(b[c]);
      if (cmp != 0) return cmp < 0;
    }
    return false;
  });
  return Table(input.schema_ptr(), std::move(rows));
}

Result<Table> HashGroupBy(const Table& input,
                          const std::vector<std::string>& group_cols,
                          const std::vector<AggSpec>& aggs) {
  SKALLA_ASSIGN_OR_RETURN(std::vector<int> group_indices,
                          ResolveColumns(input.schema(), group_cols));

  std::vector<int> agg_inputs;
  std::vector<Field> out_fields;
  for (int idx : group_indices) out_fields.push_back(input.schema().field(idx));
  for (const AggSpec& spec : aggs) {
    SKALLA_ASSIGN_OR_RETURN(Field f, FinalFieldFor(spec, input.schema()));
    out_fields.push_back(std::move(f));
    if (spec.is_count_star()) {
      agg_inputs.push_back(-1);
    } else {
      SKALLA_ASSIGN_OR_RETURN(int idx, input.schema().MustIndexOf(spec.input));
      agg_inputs.push_back(idx);
    }
  }

  struct Group {
    Row key;
    std::vector<AggState> states;
    // Ascending row ids of the group's members — the selection vector fed
    // to the typed batch aggregate kernels in the second pass.
    std::vector<int64_t> sel;
  };
  RowHasher hasher{&group_indices};
  RowEq eq{&group_indices};
  std::unordered_map<const Row*, size_t, RowHasher, RowEq> index(16, hasher,
                                                                 eq);
  std::vector<Group> groups;

  // Pass 1: group discovery in first-appearance order, collecting each
  // group's member rows. Pass 2 folds aggregate inputs group-at-a-time
  // through the columnar snapshot's typed arrays (UpdateBatchInt64/Double
  // fold values[sel[k]] in ascending k — the same per-group update order
  // as the row-at-a-time loop, so the output is byte-identical). Unusable
  // columns and string/declared-NULL inputs keep boxed updates.
  for (int64_t r = 0; r < input.num_rows(); ++r) {
    const Row& row = input.row(r);
    auto [it, inserted] = index.emplace(&row, groups.size());
    if (inserted) {
      Group g;
      g.key.reserve(group_indices.size());
      for (int idx : group_indices) g.key.push_back(row[static_cast<size_t>(idx)]);
      g.states.reserve(aggs.size());
      for (const AggSpec& spec : aggs) g.states.emplace_back(spec.func);
      groups.push_back(std::move(g));
    }
    groups[it->second].sel.push_back(r);
  }

  const std::shared_ptr<const ColumnarTable> view =
      input.num_rows() > 0 ? input.columnar() : nullptr;
  for (size_t a = 0; a < aggs.size(); ++a) {
    const int in = agg_inputs[a];
    if (in < 0) {
      // COUNT(*): n times Update(kOne).
      for (Group& g : groups) g.states[a].UpdateBatchCountStar(g.sel.size());
      continue;
    }
    const ColumnarTable::Column* col =
        view != nullptr ? &view->column(in) : nullptr;
    if (col != nullptr && col->usable && col->type == ValueType::kInt64) {
      for (Group& g : groups) {
        g.states[a].UpdateBatchInt64(col->ints.data(), col->valid_words(),
                                     g.sel.data(), g.sel.size());
      }
    } else if (col != nullptr && col->usable &&
               col->type == ValueType::kDouble) {
      for (Group& g : groups) {
        g.states[a].UpdateBatchDouble(col->doubles.data(), col->valid_words(),
                                      g.sel.data(), g.sel.size());
      }
    } else {
      for (Group& g : groups) {
        for (const int64_t r : g.sel) {
          g.states[a].Update(input.row(r)[static_cast<size_t>(in)]);
        }
      }
    }
  }

  Table out(MakeSchema(std::move(out_fields)));
  out.Reserve(static_cast<int64_t>(groups.size()));
  for (const Group& g : groups) {
    Row row = g.key;
    for (const AggState& state : g.states) row.push_back(state.Final());
    out.AddRow(std::move(row));
  }
  return out;
}

Result<Table> Extend(const Table& input, const std::string& name,
                     const ExprPtr& expr) {
  SKALLA_ASSIGN_OR_RETURN(
      CompiledExpr compiled,
      CompiledExpr::Compile(expr, /*base_schema=*/nullptr, &input.schema()));
  std::vector<Field> fields = input.schema().fields();
  fields.push_back(Field{name, compiled.result_type()});
  Table out(MakeSchema(std::move(fields)));
  out.Reserve(input.num_rows());
  for (const Row& row : input.rows()) {
    Row extended = row;
    extended.push_back(compiled.Eval(nullptr, &row));
    out.AddRow(std::move(extended));
  }
  return out;
}

Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::vector<std::string>& left_keys,
                       const std::vector<std::string>& right_keys,
                       const std::string& right_prefix) {
  if (left_keys.empty() || left_keys.size() != right_keys.size()) {
    return Status::InvalidArgument("join key lists must be non-empty and "
                                   "of equal length");
  }
  SKALLA_ASSIGN_OR_RETURN(std::vector<int> left_key_idx,
                          ResolveColumns(left.schema(), left_keys));
  SKALLA_ASSIGN_OR_RETURN(std::vector<int> right_key_idx,
                          ResolveColumns(right.schema(), right_keys));

  std::vector<Field> fields = left.schema().fields();
  for (const Field& f : right.schema().fields()) {
    if (left.schema().Contains(f.name)) {
      if (right_prefix.empty()) {
        return Status::InvalidArgument(
            "join output column '" + f.name +
            "' collides and no right_prefix was given");
      }
      fields.push_back(Field{right_prefix + f.name, f.type});
    } else {
      fields.push_back(f);
    }
  }

  HashIndex index;
  index.Build(right, right_key_idx);

  Table out(MakeSchema(std::move(fields)));
  for (const Row& left_row : left.rows()) {
    // SQL: NULL keys never join.
    bool has_null_key = false;
    for (int idx : left_key_idx) {
      if (left_row[static_cast<size_t>(idx)].is_null()) has_null_key = true;
    }
    if (has_null_key) continue;
    const std::vector<int64_t>* matches =
        index.Lookup(left_row, left_key_idx);
    if (matches == nullptr) continue;
    for (int64_t right_id : *matches) {
      const Row& right_row = right.row(right_id);
      bool right_null_key = false;
      for (int idx : right_key_idx) {
        if (right_row[static_cast<size_t>(idx)].is_null()) {
          right_null_key = true;
        }
      }
      if (right_null_key) continue;
      Row joined = left_row;
      joined.insert(joined.end(), right_row.begin(), right_row.end());
      out.AddRow(std::move(joined));
    }
  }
  return out;
}

Result<Table> Unpivot(const Table& input,
                      const std::vector<std::string>& measure_cols,
                      const std::string& name_col,
                      const std::string& value_col) {
  if (measure_cols.empty()) {
    return Status::InvalidArgument("unpivot needs at least one measure");
  }
  SKALLA_ASSIGN_OR_RETURN(std::vector<int> measure_indices,
                          ResolveColumns(input.schema(), measure_cols));
  ValueType value_type = ValueType::kNull;
  for (size_t i = 0; i < measure_indices.size(); ++i) {
    const ValueType t =
        input.schema().field(measure_indices[i]).type;
    if (value_type == ValueType::kNull) value_type = t;
    if (t != value_type) {
      return Status::TypeError(
          "unpivot measures must share one type; '" + measure_cols[i] +
          "' differs");
    }
  }

  std::vector<bool> is_measure(static_cast<size_t>(input.schema().num_fields()),
                               false);
  for (int idx : measure_indices) is_measure[static_cast<size_t>(idx)] = true;
  std::vector<Field> fields;
  std::vector<int> kept;
  for (int c = 0; c < input.schema().num_fields(); ++c) {
    if (!is_measure[static_cast<size_t>(c)]) {
      fields.push_back(input.schema().field(c));
      kept.push_back(c);
    }
  }
  fields.push_back(Field{name_col, ValueType::kString});
  fields.push_back(Field{value_col, value_type});

  Table out(MakeSchema(std::move(fields)));
  out.Reserve(input.num_rows() * static_cast<int64_t>(measure_cols.size()));
  for (const Row& row : input.rows()) {
    for (size_t m = 0; m < measure_indices.size(); ++m) {
      const Value& v = row[static_cast<size_t>(measure_indices[m])];
      if (v.is_null()) continue;
      Row unpivoted;
      unpivoted.reserve(kept.size() + 2);
      for (int c : kept) unpivoted.push_back(row[static_cast<size_t>(c)]);
      unpivoted.push_back(Value(measure_cols[m]));
      unpivoted.push_back(v);
      out.AddRow(std::move(unpivoted));
    }
  }
  return out;
}

Table Limit(const Table& input, int64_t n) {
  Table out(input.schema_ptr());
  const int64_t keep = std::min(n, input.num_rows());
  out.Reserve(keep);
  for (int64_t i = 0; i < keep; ++i) out.AddRow(input.row(i));
  return out;
}

}  // namespace skalla

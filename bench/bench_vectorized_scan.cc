// Vectorized-vs-scalar benchmark of the GMDJ detail scan
// (src/gmdj/local_eval.cc, docs/vectorized-execution.md): the same query
// is evaluated twice per configuration — once with options.vectorize = 0
// (the row-at-a-time Value path) and once with options.vectorize = 1 (the
// columnar batch path) — on an int64-heavy synthetic detail table. Besides
// the rows/s series it checks the byte-identity guarantee (both runs must
// serialize to the same SKL1 bytes) and that the toggle actually took
// effect (via the process-wide ScanCounters), then writes the series to
// BENCH_vectorized_scan.json.
//
//   ./bench_vectorized_scan
//
// Custom main (not google-benchmark): the interesting output is one
// scalar/vectorized wall-clock pair per join path on a fixed large input,
// plus the byte-equality check, which the series table and JSON report
// carry directly.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "expr/parser.h"
#include "gmdj/local_eval.h"
#include "storage/serializer.h"
#include "storage/table.h"

namespace {

using namespace skalla;

constexpr int64_t kDetailRows = 1 << 20;  // 1M-row int64-heavy detail
constexpr int kRepetitions = 3;           // best-of wall time per config

ExprPtr MustParse(const std::string& text) {
  auto result = ParseExpr(text);
  if (!result.ok()) std::abort();
  return *result;
}

Table MustEval(const Table& base, const Table& detail, const GmdjOp& op,
               const LocalGmdjOptions& options) {
  auto result = EvalGmdjOp(base, detail, op, options);
  if (!result.ok()) {
    std::fprintf(stderr, "EvalGmdjOp failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).ValueUnsafe();
}

/// All-int64 detail relation: a 1024-ary grouping key and two measure
/// columns. No strings and no NULLs, so every scan morsel runs on the
/// typed fast path and the benchmark isolates the batching win itself.
Table MakeDetail() {
  Table detail(MakeSchema({{"k", ValueType::kInt64},
                           {"v", ValueType::kInt64},
                           {"w", ValueType::kInt64}}));
  Rng rng(7);
  for (int64_t r = 0; r < kDetailRows; ++r) {
    detail.AddRow({Value(rng.Uniform(0, 1023)), Value(rng.Uniform(0, 9999)),
                   Value(rng.Uniform(-5000, 5000))});
  }
  return detail;
}

struct Config {
  const char* name;
  JoinStrategy join;
  const char* theta;
  bool key_base;  ///< base = distinct k values; else 16 threshold rows
};

}  // namespace

int main() {
  std::printf("generating %lld-row int64 detail ...\n",
              static_cast<long long>(kDetailRows));
  const Table detail = MakeDetail();

  Table key_base(MakeSchema({{"k", ValueType::kInt64}}));
  for (int64_t k = 0; k < 1024; ++k) key_base.AddRow({Value(k)});
  // Overlapping thresholds — the nested-loop shape GROUP BY cannot express.
  Table threshold_base(MakeSchema({{"threshold", ValueType::kInt64}}));
  for (int64_t t = 0; t < 16; ++t) threshold_base.AddRow({Value(t * 500)});

  // The headline "nested_int64" configuration is the acceptance gate: a
  // batch-evaluated int64 predicate over every (base, detail) pair, where
  // the scalar path pays the full per-row Value boxing cost.
  const std::vector<Config> configs = {
      {"nested_int64", JoinStrategy::kHash,
       "R.v >= B.threshold && R.w < 2500", false},
      {"hash_residual", JoinStrategy::kHash,
       "B.k = R.k && R.v >= 2500", true},
      {"sort_merge_residual", JoinStrategy::kSortMerge,
       "B.k = R.k && R.v >= 2500", true},
  };

  skalla::bench::JsonReport report("vectorized_scan");
  bool all_identical = true;
  bool toggles_took_effect = true;
  double headline_ratio = 0;
  std::printf("\nvectorized vs scalar GMDJ detail scan, |R| = %lld\n%s\n",
              static_cast<long long>(kDetailRows),
              "config                scalar_ms  vector_ms   Mrows/s(v)"
              "   speedup   identical");
  for (const Config& cfg : configs) {
    const Table& base = cfg.key_base ? key_base : threshold_base;
    // Every base row drives one pass over the detail in the nested shape;
    // keyed shapes scan the detail once.
    const int64_t scanned =
        cfg.key_base ? kDetailRows : kDetailRows * threshold_base.num_rows();
    GmdjOp op;
    op.detail_table = "R";
    op.blocks.push_back(GmdjBlock{
        {AggSpec::Count("cnt"), AggSpec::Sum("v", "sum_v"),
         AggSpec::Min("w", "min_w")},
        MustParse(cfg.theta)});
    double ms[2] = {0, 0};
    std::string bytes[2];
    for (int vectorize = 0; vectorize <= 1; ++vectorize) {
      LocalGmdjOptions options;
      options.join = cfg.join;
      options.num_threads = 1;  // isolate the batching win from parallelism
      options.vectorize = vectorize;
      Table out;
      double best_ms = 0;
      const ScanCounters before = ScanCountersSnapshot();
      for (int rep = 0; rep < kRepetitions; ++rep) {
        Stopwatch watch;
        out = MustEval(base, detail, op, options);
        const double elapsed = watch.ElapsedSeconds() * 1e3;
        if (rep == 0 || elapsed < best_ms) best_ms = elapsed;
      }
      const ScanCounters after = ScanCountersSnapshot();
      const int64_t vec_morsels =
          after.morsels_vectorized - before.morsels_vectorized;
      toggles_took_effect =
          toggles_took_effect && ((vec_morsels > 0) == (vectorize == 1));
      ms[vectorize] = best_ms;
      bytes[vectorize] = Serializer::SerializeTable(out);
      report.Add(std::string(cfg.name) + (vectorize ? "/vectorized"
                                                    : "/scalar"),
                 {{"vectorize", static_cast<double>(vectorize)},
                  {"rows", static_cast<double>(kDetailRows)},
                  {"rows_scanned", static_cast<double>(scanned)},
                  {"base_rows", static_cast<double>(base.num_rows())}},
                 best_ms);
    }
    const bool identical = bytes[0] == bytes[1];
    all_identical = all_identical && identical;
    const double ratio = ms[1] > 0 ? ms[0] / ms[1] : 0;
    if (std::string(cfg.name) == "nested_int64") headline_ratio = ratio;
    std::printf("%-22s %9.1f %10.1f %12.2f %8.2fx   %s\n", cfg.name, ms[0],
                ms[1], static_cast<double>(scanned) / (ms[1] * 1e3),
                ratio, identical ? "yes" : "NO");
  }
  report.Write();
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: vectorized result differs from scalar result\n");
    return 1;
  }
  if (!toggles_took_effect) {
    std::fprintf(stderr,
                 "FAIL: options.vectorize did not switch the scan path\n");
    return 1;
  }
  std::printf("\nheadline nested_int64 speedup: %.2fx %s\n", headline_ratio,
              headline_ratio >= 2.0 ? "(meets the >= 2x target)"
                                    : "(below the 2x target)");
  return 0;
}

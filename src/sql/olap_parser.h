#ifndef SKALLA_SQL_OLAP_PARSER_H_
#define SKALLA_SQL_OLAP_PARSER_H_

#include <set>
#include <string>
#include <string_view>

#include "common/result.h"
#include "gmdj/gmdj.h"

namespace skalla {

/// \brief The textual OLAP query dialect of the Skalla query generator.
///
/// The paper's front end accepts OLAP queries and has Egil translate them
/// into GMDJ expressions (Sect. 3.2). This module implements that surface:
/// a small correlated-aggregate dialect that compiles directly to a GMDJ
/// chain.
///
/// Grammar:
///
///   query   := SELECT items FROM ident [WHERE expr]
///              GROUP BY cols extend*
///   extend  := EXTEND aggs [WHERE expr]
///   items   := (col | agg) ("," (col | agg))*
///   agg     := FUNC "(" ("*" | ident) ")" AS ident
///   FUNC    := COUNT | SUM | MIN | MAX | AVG
///
/// Semantics:
///  - the GROUP BY columns become the base-values projection (the key K);
///  - the SELECT aggregates form the first GMDJ operator with
///    θ = equality on every key attribute;
///  - each EXTEND clause adds one more GMDJ operator whose θ is the key
///    equality conjoined with the clause's WHERE condition;
///  - inside an EXTEND WHERE, an identifier naming a GROUP BY column or a
///    previously computed aggregate binds to the base-values relation
///    (B side); any other identifier binds to the detail relation (R side).
///    The query-level WHERE (before GROUP BY) filters the base query's
///    source rows.
///
/// Example — the paper's Example 1:
///
///   SELECT SourceAS, DestAS, COUNT(*) AS cnt1, SUM(NumBytes) AS sum1
///   FROM Flow
///   GROUP BY SourceAS, DestAS
///   EXTEND COUNT(*) AS cnt2 WHERE NumBytes >= sum1 / cnt1
Result<GmdjExpr> ParseOlapQuery(std::string_view text);

/// Rebinds bare (detail-side) column references whose name appears in
/// `base_names` to the base side. Used by the translator to resolve EXTEND
/// conditions; exposed for tests and other front ends.
ExprPtr RebindToBase(const ExprPtr& expr,
                     const std::set<std::string>& base_names);

}  // namespace skalla

#endif  // SKALLA_SQL_OLAP_PARSER_H_

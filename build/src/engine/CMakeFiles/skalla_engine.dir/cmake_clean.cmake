file(REMOVE_RECURSE
  "CMakeFiles/skalla_engine.dir/operators.cc.o"
  "CMakeFiles/skalla_engine.dir/operators.cc.o.d"
  "libskalla_engine.a"
  "libskalla_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skalla_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#ifndef SKALLA_SERVER_PROTOCOL_H_
#define SKALLA_SERVER_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/result.h"

namespace skalla {
namespace server {

/// \brief The Skalla wire protocol: length-prefixed text frames.
///
/// A frame is a 4-byte big-endian unsigned payload length followed by that
/// many bytes of text. Requests carry one command per frame; the server
/// answers every request frame with exactly one response frame, in request
/// order per connection. See docs/server.md for the full grammar.
///
/// Commands (keywords are case-insensitive; arguments are not):
///
///   QUERY [PRIORITY low|normal|high] [DEADLINE <sec>] [THREADS <n>]
///         [NOCACHE] <olap query text>
///   PROFILE <same options and text as QUERY>
///   LOAD tpcr|flow <rows>
///   MUTATE <table> APPEND <csv row>
///   STATS
///   METRICS [JSON]
///   CANCEL <id> | CANCEL ALL
///
/// Responses: "OK\n<payload>" or "ERR <code>\n<message>", where <code> is a
/// single-token status-code name (WireStatusCodeName). A QUERY payload is
/// the result relation CSV-encoded — and byte-identical for a given query
/// no matter the concurrency, thread count, or cache configuration
/// (DESIGN.md invariant 10).

/// Hard cap on a frame's payload; a length prefix beyond it is a protocol
/// violation (the connection is poisoned, not the process).
inline constexpr size_t kMaxFrameBytes = size_t{16} << 20;

/// Bytes of the big-endian length prefix.
inline constexpr size_t kFramePrefixBytes = 4;

/// Wraps a payload in a length-prefixed frame. Aborts (DCHECK-style
/// InvalidArgument at the call sites that can receive untrusted sizes) —
/// callers never produce payloads near kMaxFrameBytes.
std::string EncodeFrame(std::string_view payload);

/// Pops one complete frame off the front of `buffer`.
///  - A complete, well-formed frame: returns its payload and erases it.
///  - No complete frame yet (truncated prefix or payload): returns nullopt
///    and leaves the buffer untouched — feed more bytes and retry.
///  - A malformed frame (length prefix > kMaxFrameBytes): returns a typed
///    kInvalidArgument status; the stream cannot be resynchronized and the
///    connection must be torn down.
Result<std::optional<std::string>> DecodeFrame(std::string* buffer);

/// The kinds of request the server understands.
enum class CommandType {
  kQuery,
  kProfile,  ///< QUERY + an EXPLAIN-ANALYZE-style profile payload
  kLoad,
  kMutate,
  kStats,
  kMetrics,  ///< metrics-registry exposition (obs/metrics.h)
  kCancel,
};

/// Admission priority of a query (higher preempts the queue, never a
/// running query).
enum class QueryPriority : int {
  kLow = 0,
  kNormal = 1,
  kHigh = 2,
};

/// One parsed request. Only the fields of the matching CommandType are
/// meaningful.
struct Command {
  CommandType type = CommandType::kStats;

  // QUERY / PROFILE
  std::string query_text;  ///< the OLAP dialect text (sql/olap_parser.h)
  QueryPriority priority = QueryPriority::kNormal;
  double deadline_sec = -1.0;  ///< per-attempt deadline; < 0 = server default
  int threads = -1;            ///< morsel-lane quota; < 0 = server default
  bool no_cache = false;       ///< bypass (and do not populate) the caches

  // LOAD
  std::string load_kind;  ///< "tpcr" or "flow"
  int64_t load_rows = 0;

  // MUTATE
  std::string mutate_table;
  std::string mutate_row_csv;  ///< one CSV row in the table's column order

  // METRICS
  bool metrics_json = false;  ///< JSONL snapshot instead of text exposition

  // CANCEL
  uint64_t cancel_id = 0;
  bool cancel_all = false;
};

/// Parses one request payload into a Command. Typed errors, never crashes:
/// embedded NUL bytes, unknown commands, malformed numbers, and missing
/// arguments all yield kInvalidArgument with a message naming the problem
/// (the malformed-input corpus in tests/server_protocol_test.cc pins this).
Result<Command> ParseCommand(std::string_view text);

/// Single-token wire name of a status code ("invalid_argument", ...).
const char* WireStatusCodeName(StatusCode code);

/// Inverse of WireStatusCodeName; nullopt for an unknown token.
std::optional<StatusCode> WireStatusCodeFromName(std::string_view name);

/// Builds the "OK\n<payload>" success response.
std::string OkResponse(std::string_view payload);

/// Builds the "ERR <code>\n<message>" response for a non-OK status.
std::string ErrResponse(const Status& status);

/// Client-side: splits a response payload back into the OK payload or the
/// typed error status it encodes.
Result<std::string> ParseResponse(std::string_view response);

}  // namespace server
}  // namespace skalla

#endif  // SKALLA_SERVER_PROTOCOL_H_

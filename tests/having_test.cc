// HAVING: coordinator-side filtering of the finished base-result structure.

#include <gtest/gtest.h>

#include "expr/parser.h"
#include "skalla/queries.h"
#include "skalla/warehouse.h"
#include "sql/olap_parser.h"
#include "sql/olap_printer.h"
#include "test_util.h"
#include "tpc/dbgen.h"

namespace skalla {
namespace {

class HavingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TpcConfig config;
    config.num_rows = 3000;
    config.num_customers = 250;
    warehouse_ = std::make_unique<Warehouse>(4);
    Table tpcr = GenerateTpcr(config);
    ASSERT_OK(warehouse_->LoadByRange("TPCR", tpcr, "NationKey", 0, 24,
                                      {"CustKey"}));
  }
  std::unique_ptr<Warehouse> warehouse_;
};

TEST_F(HavingTest, FiltersFinishedGroups) {
  GmdjExpr query = queries::GroupReductionQuery("CustKey");
  auto having = ParseExpr("B.cnt1 >= 20");
  ASSERT_TRUE(having.ok());
  query.having = *having;

  ASSERT_OK_AND_ASSIGN(Table expected, warehouse_->ExecuteCentralized(query));
  for (const Row& row : expected.rows()) {
    EXPECT_GE(row[1].AsInt64(), 20);
  }
  GmdjExpr unfiltered = query;
  unfiltered.having = nullptr;
  ASSERT_OK_AND_ASSIGN(Table all, warehouse_->ExecuteCentralized(unfiltered));
  EXPECT_LT(expected.num_rows(), all.num_rows());
  EXPECT_GT(expected.num_rows(), 0);

  for (const auto& options :
       {OptimizerOptions::None(), OptimizerOptions::All()}) {
    ASSERT_OK_AND_ASSIGN(QueryResult result,
                         warehouse_->Execute(query, options));
    ExpectSameRows(result.table, expected);
  }
  // Tree coordinator too.
  ASSERT_OK_AND_ASSIGN(DistributedPlan plan,
                       warehouse_->Plan(query, OptimizerOptions::None()));
  ASSERT_OK_AND_ASSIGN(QueryResult tree, warehouse_->ExecutePlanTree(plan, 2));
  ExpectSameRows(tree.table, expected);
}

TEST_F(HavingTest, DialectParsesAndPrintsHaving) {
  ASSERT_OK_AND_ASSIGN(
      GmdjExpr query,
      ParseOlapQuery("SELECT NationKey, COUNT(*) AS n, AVG(Quantity) AS aq "
                     "FROM TPCR GROUP BY NationKey "
                     "EXTEND COUNT(*) AS big WHERE Quantity > aq "
                     "HAVING n >= 50 && aq < 30"));
  ASSERT_NE(query.having, nullptr);
  EXPECT_EQ(query.having->ToString(), "((B.n >= 50) && (B.aq < 30))");

  ASSERT_OK_AND_ASSIGN(std::string text, OlapQueryToString(query));
  ASSERT_OK_AND_ASSIGN(GmdjExpr reparsed, ParseOlapQuery(text));
  ASSERT_NE(reparsed.having, nullptr);
  EXPECT_TRUE(reparsed.having->Equals(*query.having));

  ASSERT_OK_AND_ASSIGN(Table expected, warehouse_->ExecuteCentralized(query));
  ASSERT_OK_AND_ASSIGN(QueryResult result,
                       warehouse_->Execute(query, OptimizerOptions::All()));
  ExpectSameRows(result.table, expected);
}

TEST_F(HavingTest, ValidationErrors) {
  // Unknown name in HAVING.
  EXPECT_FALSE(ParseOlapQuery("SELECT NationKey, COUNT(*) AS n FROM TPCR "
                              "GROUP BY NationKey HAVING nope > 1")
                   .ok());
  // Empty HAVING expression.
  EXPECT_FALSE(ParseOlapQuery("SELECT NationKey, COUNT(*) AS n FROM TPCR "
                              "GROUP BY NationKey HAVING")
                   .ok());
  // Detail-side reference rejected by the algebra validator.
  GmdjExpr query = queries::GroupReductionQuery("CustKey");
  auto bad = ParseExpr("R.Quantity > 1");
  ASSERT_TRUE(bad.ok());
  query.having = *bad;
  auto result = warehouse_->Execute(query, OptimizerOptions::None());
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("HAVING"), std::string::npos);
}

TEST_F(HavingTest, HavingThatDropsEverything) {
  GmdjExpr query = queries::CoalescingQuery("ClerkKey");
  auto having = ParseExpr("B.cnt1 < 0");
  ASSERT_TRUE(having.ok());
  query.having = *having;
  ASSERT_OK_AND_ASSIGN(QueryResult result,
                       warehouse_->Execute(query, OptimizerOptions::All()));
  EXPECT_EQ(result.table.num_rows(), 0);
}

}  // namespace
}  // namespace skalla

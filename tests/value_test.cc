#include "storage/value.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace skalla {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, Int64Basics) {
  Value v(int64_t{42});
  EXPECT_TRUE(v.is_int64());
  EXPECT_TRUE(v.is_numeric());
  EXPECT_EQ(v.AsInt64(), 42);
  EXPECT_DOUBLE_EQ(v.ToDouble(), 42.0);
  EXPECT_EQ(v.ToString(), "42");
}

TEST(ValueTest, IntLiteralConstructor) {
  Value v(7);
  EXPECT_TRUE(v.is_int64());
  EXPECT_EQ(v.AsInt64(), 7);
}

TEST(ValueTest, DoubleBasics) {
  Value v(2.5);
  EXPECT_TRUE(v.is_double());
  EXPECT_DOUBLE_EQ(v.AsDouble(), 2.5);
}

TEST(ValueTest, StringBasics) {
  Value v("hello");
  EXPECT_TRUE(v.is_string());
  EXPECT_EQ(v.AsString(), "hello");
  EXPECT_EQ(v.ToString(), "hello");
}

TEST(ValueTest, CrossTypeNumericEquality) {
  EXPECT_EQ(Value(int64_t{5}), Value(5.0));
  EXPECT_EQ(Value(5.0), Value(int64_t{5}));
  EXPECT_NE(Value(int64_t{5}), Value(5.5));
}

TEST(ValueTest, NullEquality) {
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_NE(Value::Null(), Value(int64_t{0}));
  EXPECT_NE(Value(""), Value::Null());
}

TEST(ValueTest, CrossTypeHashConsistentWithEquality) {
  EXPECT_EQ(Value(int64_t{5}).Hash(), Value(5.0).Hash());
  EXPECT_EQ(Value(int64_t{-3}).Hash(), Value(-3.0).Hash());
  EXPECT_EQ(Value("x").Hash(), Value(std::string("x")).Hash());
}

TEST(ValueTest, CompareTotalOrder) {
  // NULL < numeric < string.
  EXPECT_LT(Value::Null().Compare(Value(int64_t{0})), 0);
  EXPECT_LT(Value(int64_t{7}).Compare(Value("a")), 0);
  EXPECT_GT(Value("b").Compare(Value("a")), 0);
  EXPECT_EQ(Value(int64_t{3}).Compare(Value(3.0)), 0);
  EXPECT_LT(Value(2.5).Compare(Value(int64_t{3})), 0);
}

TEST(ValueTest, CompareLargeInt64Exact) {
  // Values distinguishable in int64 but not in double must compare exactly.
  const int64_t a = (int64_t{1} << 62) + 1;
  const int64_t b = (int64_t{1} << 62) + 2;
  EXPECT_LT(Value(a).Compare(Value(b)), 0);
  EXPECT_NE(Value(a), Value(b));
}

TEST(ValueTest, SerializedSize) {
  EXPECT_EQ(Value::Null().SerializedSize(), 1u);
  EXPECT_EQ(Value(int64_t{1}).SerializedSize(), 9u);
  EXPECT_EQ(Value(1.0).SerializedSize(), 9u);
  EXPECT_EQ(Value("abc").SerializedSize(), 1u + 4u + 3u);
}

TEST(ValueTest, NegativeZeroNormalizedInHash) {
  EXPECT_EQ(Value(0.0).Hash(), Value(-0.0).Hash());
  EXPECT_EQ(Value(0.0), Value(-0.0));
}

}  // namespace
}  // namespace skalla

# Empty compiler generated dependencies file for skalla_agg.
# This may be replaced when dependencies are built.

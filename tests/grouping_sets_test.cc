#include <gtest/gtest.h>

#include "cube/cube.h"
#include "engine/operators.h"
#include "test_util.h"
#include "tpc/dbgen.h"

namespace skalla {
namespace {

CubeSpec TinySpec() {
  CubeSpec spec;
  spec.table = "T";
  spec.dims = {"g", "h"};
  spec.aggs = {AggSpec::Count("cnt"), AggSpec::Avg("v", "av")};
  return spec;
}

TEST(MaskHelpersTest, RollupAndCubeMasks) {
  EXPECT_EQ(RollupMasks(3),
            (std::vector<uint32_t>{0, 1, 3, 7}));
  EXPECT_EQ(CubeMasks(2), (std::vector<uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(RollupMasks(0), std::vector<uint32_t>{0});
}

TEST(GroupingSetsTest, CentralizedSelectsExactlyRequestedSets) {
  const Table source = MakeTinyTable();
  // Only {g} and {g,h}: 3 + 7 rows.
  ASSERT_OK_AND_ASSIGN(
      Table result, GroupingSetsCentralized(TinySpec(), source, {1, 3}));
  EXPECT_EQ(result.num_rows(), 10);
  // No grand-total row.
  for (const Row& row : result.rows()) {
    EXPECT_FALSE(row[0].is_null());
  }
}

TEST(GroupingSetsTest, RollupMasksGiveHierarchy) {
  const Table source = MakeTinyTable();
  ASSERT_OK_AND_ASSIGN(
      Table rollup,
      GroupingSetsCentralized(TinySpec(), source, RollupMasks(2)));
  // (), (g), (g,h): 1 + 3 + 7 rows.
  EXPECT_EQ(rollup.num_rows(), 11);
}

TEST(GroupingSetsTest, CubeViaMasksEqualsCubeCentralized) {
  const Table source = MakeTinyTable();
  ASSERT_OK_AND_ASSIGN(Table a, CubeCentralized(TinySpec(), source));
  ASSERT_OK_AND_ASSIGN(
      Table b, GroupingSetsCentralized(TinySpec(), source, CubeMasks(2)));
  ExpectSameRows(a, b);
}

TEST(GroupingSetsTest, InvalidMasks) {
  const Table source = MakeTinyTable();
  EXPECT_FALSE(GroupingSetsCentralized(TinySpec(), source, {}).ok());
  EXPECT_FALSE(GroupingSetsCentralized(TinySpec(), source, {4}).ok());
  EXPECT_FALSE(GroupingSetsCentralized(TinySpec(), source, {1, 1}).ok());
}

class GroupingSetsDistributedTest
    : public ::testing::TestWithParam<CubeStrategy> {
 protected:
  void SetUp() override {
    TpcConfig config;
    config.num_rows = 2000;
    config.num_customers = 100;
    config.num_clerks = 6;
    warehouse_ = std::make_unique<Warehouse>(3);
    Table tpcr = GenerateTpcr(config);
    ASSERT_OK(warehouse_->LoadByRange("TPCR", tpcr, "NationKey", 0, 24,
                                      {"CustKey", "ClerkKey"}));
    spec_.table = "TPCR";
    spec_.dims = {"RegionKey", "MktSegment", "ClerkKey"};
    spec_.aggs = {AggSpec::Count("cnt"), AggSpec::Avg("Quantity", "aq"),
                  AggSpec::Min("ShipDate", "first")};
  }
  std::unique_ptr<Warehouse> warehouse_;
  CubeSpec spec_;
};

TEST_P(GroupingSetsDistributedTest, RollupHierarchyMatchesCentralized) {
  const std::vector<uint32_t> masks = RollupMasks(3);
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<const Table> full,
                       warehouse_->central_catalog().GetTable("TPCR"));
  ASSERT_OK_AND_ASSIGN(Table expected,
                       GroupingSetsCentralized(spec_, *full, masks));
  ASSERT_OK_AND_ASSIGN(
      CubeExecution execution,
      GroupingSetsDistributed(*warehouse_, spec_, masks, GetParam(),
                              OptimizerOptions::All()));
  ExpectSameRows(execution.table, expected);
}

TEST_P(GroupingSetsDistributedTest, SparseSetsMatchCentralized) {
  // Just {RegionKey} and {MktSegment, ClerkKey} — no hierarchy relation.
  const std::vector<uint32_t> masks = {1, 6};
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<const Table> full,
                       warehouse_->central_catalog().GetTable("TPCR"));
  ASSERT_OK_AND_ASSIGN(Table expected,
                       GroupingSetsCentralized(spec_, *full, masks));
  ASSERT_OK_AND_ASSIGN(
      CubeExecution execution,
      GroupingSetsDistributed(*warehouse_, spec_, masks, GetParam(),
                              OptimizerOptions::All()));
  ExpectSameRows(execution.table, expected);
}

TEST_P(GroupingSetsDistributedTest, GrandTotalOnly) {
  const std::vector<uint32_t> masks = {0};
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<const Table> full,
                       warehouse_->central_catalog().GetTable("TPCR"));
  ASSERT_OK_AND_ASSIGN(Table expected,
                       GroupingSetsCentralized(spec_, *full, masks));
  ASSERT_OK_AND_ASSIGN(
      CubeExecution execution,
      GroupingSetsDistributed(*warehouse_, spec_, masks, GetParam(),
                              OptimizerOptions::All()));
  ExpectSameRows(execution.table, expected);
  EXPECT_EQ(execution.table.num_rows(), 1);
}

INSTANTIATE_TEST_SUITE_P(
    BothStrategies, GroupingSetsDistributedTest,
    ::testing::Values(CubeStrategy::kPerGroupingSet,
                      CubeStrategy::kRollupFromFinest),
    [](const ::testing::TestParamInfo<CubeStrategy>& info) {
      return info.param == CubeStrategy::kPerGroupingSet ? "PerGroupingSet"
                                                         : "RollupFromFinest";
    });

}  // namespace
}  // namespace skalla

#include "expr/interval.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/string_util.h"
#include "expr/analyzer.h"

namespace skalla {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

Interval Interval::All() { return Interval{-kInf, kInf}; }

Interval Interval::Negate() const { return Interval{-hi, -lo}; }

Interval Interval::Add(const Interval& other) const {
  return Interval{lo + other.lo, hi + other.hi};
}

Interval Interval::Sub(const Interval& other) const {
  return Interval{lo - other.hi, hi - other.lo};
}

Interval Interval::Mul(const Interval& other) const {
  const double candidates[] = {lo * other.lo, lo * other.hi, hi * other.lo,
                               hi * other.hi};
  double out_lo = kInf;
  double out_hi = -kInf;
  for (double c : candidates) {
    if (std::isnan(c)) {
      // 0 * inf; treat conservatively as unbounded.
      return All();
    }
    out_lo = std::min(out_lo, c);
    out_hi = std::max(out_hi, c);
  }
  return Interval{out_lo, out_hi};
}

Interval Interval::Div(const Interval& other) const {
  if (other.Contains(0.0)) return All();
  const double candidates[] = {lo / other.lo, lo / other.hi, hi / other.lo,
                               hi / other.hi};
  double out_lo = kInf;
  double out_hi = -kInf;
  for (double c : candidates) {
    if (std::isnan(c)) return All();
    out_lo = std::min(out_lo, c);
    out_hi = std::max(out_hi, c);
  }
  return Interval{out_lo, out_hi};
}

std::string Interval::ToString() const {
  return StrFormat("[%g, %g]", lo, hi);
}

std::optional<Interval> DetailInterval(const ExprPtr& expr,
                                       const PartitionInfo& site) {
  switch (expr->kind()) {
    case ExprKind::kColumn: {
      const auto& col = static_cast<const ColumnExpr&>(*expr);
      if (col.side() != Side::kDetail) return std::nullopt;
      double lo = 0;
      double hi = 0;
      if (!site.Domain(col.name()).NumericBounds(&lo, &hi)) {
        return std::nullopt;
      }
      return Interval{lo, hi};
    }
    case ExprKind::kLiteral: {
      const auto& lit = static_cast<const LiteralExpr&>(*expr);
      if (!lit.value().is_numeric()) return std::nullopt;
      return Interval::Point(lit.value().ToDouble());
    }
    case ExprKind::kUnary: {
      const auto& un = static_cast<const UnaryExpr&>(*expr);
      if (un.op() != UnaryOp::kNeg) return std::nullopt;
      auto operand = DetailInterval(un.operand(), site);
      if (!operand) return std::nullopt;
      return operand->Negate();
    }
    case ExprKind::kBinary: {
      const auto& bin = static_cast<const BinaryExpr&>(*expr);
      if (!IsArithmetic(bin.op())) return std::nullopt;
      auto l = DetailInterval(bin.left(), site);
      auto r = DetailInterval(bin.right(), site);
      if (!l || !r) return std::nullopt;
      switch (bin.op()) {
        case BinaryOp::kAdd:
          return l->Add(*r);
        case BinaryOp::kSub:
          return l->Sub(*r);
        case BinaryOp::kMul:
          return l->Mul(*r);
        case BinaryOp::kDiv:
          return l->Div(*r);
        default:
          return std::nullopt;  // kMod: no interval rule implemented
      }
    }
  }
  return std::nullopt;
}

namespace {

/// Finite interval endpoints become literals; infinite sides are dropped by
/// the caller.
ExprPtr NumLit(double v) {
  if (v == std::floor(v) && std::abs(v) < 9.0e15) {
    return Lit(Value(static_cast<int64_t>(v)));
  }
  return Lit(Value(v));
}

bool PureSide(const ExprPtr& expr, Side side) {
  const Side other = side == Side::kBase ? Side::kDetail : Side::kBase;
  return ReferencesSide(expr, side) && !ReferencesSide(expr, other);
}

/// Maximum value-set size expanded into an explicit membership disjunction
/// (beyond this, the range relaxation is used).
constexpr size_t kMaxInlineSet = 16;

/// Relaxes an atom cmp(base_expr, detail_interval) into a base-only bound.
ExprPtr RelaxComparison(BinaryOp op, const ExprPtr& base_expr,
                        const Interval& iv) {
  std::vector<ExprPtr> bounds;
  switch (op) {
    case BinaryOp::kEq:
      if (iv.lo != -kInf) bounds.push_back(Ge(base_expr, NumLit(iv.lo)));
      if (iv.hi != kInf) bounds.push_back(Le(base_expr, NumLit(iv.hi)));
      break;
    case BinaryOp::kLt:
      if (iv.hi != kInf) bounds.push_back(Lt(base_expr, NumLit(iv.hi)));
      break;
    case BinaryOp::kLe:
      if (iv.hi != kInf) bounds.push_back(Le(base_expr, NumLit(iv.hi)));
      break;
    case BinaryOp::kGt:
      if (iv.lo != -kInf) bounds.push_back(Gt(base_expr, NumLit(iv.lo)));
      break;
    case BinaryOp::kGe:
      if (iv.lo != -kInf) bounds.push_back(Ge(base_expr, NumLit(iv.lo)));
      break;
    case BinaryOp::kNe:
    default:
      break;
  }
  return AndAll(bounds);
}

BinaryOp FlipComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
      return BinaryOp::kGt;
    case BinaryOp::kLe:
      return BinaryOp::kGe;
    case BinaryOp::kGt:
      return BinaryOp::kLt;
    case BinaryOp::kGe:
      return BinaryOp::kLe;
    default:
      return op;  // kEq / kNe symmetric
  }
}

/// True if the pure-detail comparison atom is refutable under φ: no detail
/// tuple at the site can satisfy it.
bool RefutablePureDetail(BinaryOp op, const Interval& l, const Interval& r) {
  switch (op) {
    case BinaryOp::kEq:
      return l.hi < r.lo || r.hi < l.lo;
    case BinaryOp::kLt:
      return l.lo >= r.hi;
    case BinaryOp::kLe:
      return l.lo > r.hi;
    case BinaryOp::kGt:
      return l.hi <= r.lo;
    case BinaryOp::kGe:
      return l.hi < r.lo;
    default:
      return false;
  }
}

class Relaxer {
 public:
  explicit Relaxer(const PartitionInfo& site) : site_(site) {}

  /// Returns a base-only over-approximation of ∃r(φ ∧ expr(b, r)).
  ExprPtr Relax(const ExprPtr& expr) {
    if (expr->kind() == ExprKind::kBinary) {
      const auto& bin = static_cast<const BinaryExpr&>(*expr);
      if (bin.op() == BinaryOp::kAnd) {
        return And(Relax(bin.left()), Relax(bin.right()));
      }
      if (bin.op() == BinaryOp::kOr) {
        return Or(Relax(bin.left()), Relax(bin.right()));
      }
      if (IsComparison(bin.op())) {
        return RelaxAtom(bin);
      }
    }
    // Pure-base subformulas pass through unchanged.
    if (!ReferencesSide(expr, Side::kDetail)) return expr;
    return True();
  }

 private:
  ExprPtr RelaxAtom(const BinaryExpr& atom) {
    const ExprPtr& l = atom.left();
    const ExprPtr& r = atom.right();
    const bool l_has_detail = ReferencesSide(l, Side::kDetail);
    const bool r_has_detail = ReferencesSide(r, Side::kDetail);

    // Pure-base atom: keep.
    if (!l_has_detail && !r_has_detail) {
      return std::make_shared<BinaryExpr>(atom.op(), l, r);
    }

    // Pure-detail atom: refute if possible, else unconstrained.
    const bool l_has_base = ReferencesSide(l, Side::kBase);
    const bool r_has_base = ReferencesSide(r, Side::kBase);
    if (!l_has_base && !r_has_base) {
      auto li = DetailInterval(l, site_);
      auto ri = DetailInterval(r, site_);
      if (li && ri && RefutablePureDetail(atom.op(), *li, *ri)) {
        return False();
      }
      return True();
    }

    // Mixed sides within one operand: give up on this atom.
    if ((l_has_base && l_has_detail) || (r_has_base && r_has_detail)) {
      return True();
    }

    // Exactly one operand is pure-base, the other pure-detail.
    const ExprPtr& base_expr = l_has_detail ? r : l;
    const ExprPtr& detail_expr = l_has_detail ? l : r;
    const BinaryOp op =
        l_has_detail ? FlipComparison(atom.op()) : atom.op();

    // Special case: `B.x = R.y` against a small finite value set becomes an
    // exact membership disjunction (tighter than the range hull).
    if (op == BinaryOp::kEq &&
        detail_expr->kind() == ExprKind::kColumn) {
      const auto& col = static_cast<const ColumnExpr&>(*detail_expr);
      const AttrDomain& domain = site_.Domain(col.name());
      if (domain.kind == AttrDomain::Kind::kValueSet &&
          domain.values.size() <= kMaxInlineSet) {
        std::vector<ExprPtr> members;
        members.reserve(domain.values.size());
        for (const Value& v : domain.values) {
          members.push_back(Eq(base_expr, Lit(v)));
        }
        return OrAll(members);
      }
    }

    auto iv = DetailInterval(detail_expr, site_);
    if (!iv) return True();
    return RelaxComparison(op, base_expr, *iv);
  }

  const PartitionInfo& site_;
};

}  // namespace

ExprPtr DeriveShipPredicate(const std::vector<ExprPtr>& thetas,
                            const PartitionInfo& site) {
  Relaxer relaxer(site);
  std::vector<ExprPtr> relaxed;
  relaxed.reserve(thetas.size());
  for (const ExprPtr& theta : thetas) {
    relaxed.push_back(relaxer.Relax(theta));
  }
  return OrAll(relaxed);
}

}  // namespace skalla

file(REMOVE_RECURSE
  "libskalla_dist.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/skalla_gmdj.dir/central_eval.cc.o"
  "CMakeFiles/skalla_gmdj.dir/central_eval.cc.o.d"
  "CMakeFiles/skalla_gmdj.dir/gmdj.cc.o"
  "CMakeFiles/skalla_gmdj.dir/gmdj.cc.o.d"
  "CMakeFiles/skalla_gmdj.dir/local_eval.cc.o"
  "CMakeFiles/skalla_gmdj.dir/local_eval.cc.o.d"
  "libskalla_gmdj.a"
  "libskalla_gmdj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skalla_gmdj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for example_skalla_shell.
# This may be replaced when dependencies are built.

#ifndef SKALLA_STORAGE_ROW_H_
#define SKALLA_STORAGE_ROW_H_

#include <cstdint>
#include <vector>

#include "common/hash_util.h"
#include "storage/value.h"

namespace skalla {

/// A tuple: one Value per schema column, in schema order.
using Row = std::vector<Value>;

/// Hash of the projection of `row` onto the given column indices;
/// consistent with RowKeyEquals.
inline uint64_t RowKeyHash(const Row& row, const std::vector<int>& cols) {
  uint64_t h = 0x524f574bULL;  // "ROWK"
  for (int c : cols) {
    h = HashCombine(h, row[static_cast<size_t>(c)].Hash());
  }
  return h;
}

/// True if the two rows agree on their respective key columns.
inline bool RowKeyEquals(const Row& a, const std::vector<int>& a_cols,
                         const Row& b, const std::vector<int>& b_cols) {
  if (a_cols.size() != b_cols.size()) return false;
  for (size_t i = 0; i < a_cols.size(); ++i) {
    if (!(a[static_cast<size_t>(a_cols[i])] ==
          b[static_cast<size_t>(b_cols[i])])) {
      return false;
    }
  }
  return true;
}

}  // namespace skalla

#endif  // SKALLA_STORAGE_ROW_H_

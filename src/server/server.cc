#include "server/server.h"

#include <chrono>
#include <sstream>
#include <utility>
#include <vector>

#include "flow/flowgen.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "skalla/report.h"
#include "sql/olap_parser.h"
#include "storage/csv.h"
#include "tpc/dbgen.h"

namespace skalla {
namespace server {

namespace {

/// Releases an admission slot on every exit path of HandleQuery.
class SlotGuard {
 public:
  explicit SlotGuard(AdmissionController* admission) : admission_(admission) {}
  ~SlotGuard() {
    if (admission_ != nullptr) admission_->Release();
  }
  SlotGuard(const SlotGuard&) = delete;
  SlotGuard& operator=(const SlotGuard&) = delete;

 private:
  AdmissionController* admission_;
};

/// Per-lane latency instruments (lane = admission priority: low/normal/
/// high), registered once on first use. Label values never change once
/// shipped — docs/observability.md.
obs::Histogram& QueueWaitHistogram(int priority) {
  static obs::Histogram* lanes[3] = {
      &obs::GetHistogram("skalla_server_queue_wait_seconds{lane=\"low\"}",
                         obs::HistogramLayout::LatencySeconds()),
      &obs::GetHistogram("skalla_server_queue_wait_seconds{lane=\"normal\"}",
                         obs::HistogramLayout::LatencySeconds()),
      &obs::GetHistogram("skalla_server_queue_wait_seconds{lane=\"high\"}",
                         obs::HistogramLayout::LatencySeconds())};
  return *lanes[priority >= 0 && priority <= 2 ? priority : 1];
}

obs::Histogram& QueryLatencyHistogram(int priority) {
  static obs::Histogram* lanes[3] = {
      &obs::GetHistogram("skalla_server_query_seconds{lane=\"low\"}",
                         obs::HistogramLayout::LatencySeconds()),
      &obs::GetHistogram("skalla_server_query_seconds{lane=\"normal\"}",
                         obs::HistogramLayout::LatencySeconds()),
      &obs::GetHistogram("skalla_server_query_seconds{lane=\"high\"}",
                         obs::HistogramLayout::LatencySeconds())};
  return *lanes[priority >= 0 && priority <= 2 ? priority : 1];
}

double ElapsedSeconds(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       since)
      .count();
}

}  // namespace

Server::Server(std::unique_ptr<Warehouse> warehouse, ServerOptions options)
    : warehouse_(std::move(warehouse)),
      options_(options),
      admission_(options.admission),
      cache_(options.cache_max_entries) {}

Server::Server(int num_sites, ServerOptions options)
    : Server(std::make_unique<Warehouse>(num_sites), options) {}

std::string Server::HandleCommand(const std::string& text) {
  Result<Command> cmd = ParseCommand(text);
  if (!cmd.ok()) return ErrResponse(cmd.status());
  Result<std::string> payload = Dispatch(*cmd);
  if (!payload.ok()) return ErrResponse(payload.status());
  return OkResponse(*payload);
}

Result<std::string> Server::Dispatch(const Command& cmd) {
  switch (cmd.type) {
    case CommandType::kQuery:
      return HandleQuery(cmd);
    case CommandType::kProfile:
      return HandleProfile(cmd);
    case CommandType::kLoad:
      return HandleLoad(cmd);
    case CommandType::kMutate:
      return HandleMutate(cmd);
    case CommandType::kStats:
      return HandleStats();
    case CommandType::kMetrics:
      return HandleMetrics(cmd);
    case CommandType::kCancel:
      return HandleCancel(cmd);
  }
  return Status::Internal("unhandled command type");
}

VersionMap Server::SnapshotVersions(const GmdjExpr& expr) {
  std::lock_guard<std::mutex> lock(versions_mu_);
  VersionMap snapshot;
  auto stamp = [&](const std::string& table) {
    auto it = versions_.find(table);
    snapshot[table] = it == versions_.end() ? 0 : it->second;
  };
  stamp(expr.base.source_table);
  for (const GmdjOp& op : expr.ops) stamp(op.detail_table);
  return snapshot;
}

void Server::BumpVersion(const std::string& table) {
  {
    std::lock_guard<std::mutex> lock(versions_mu_);
    ++versions_[table];
  }
  cache_.InvalidateTable(table);
  // Mutated site data can change what a round ships, so the shared
  // delta-base mirror must be rebuilt from scratch. Callers hold the
  // exclusive warehouse lock, so no query is borrowing the cache here.
  {
    std::lock_guard<std::mutex> lock(ship_cache_mu_);
    ship_cache_.clear();
  }
}

Result<std::string> Server::HandleQuery(const Command& cmd) {
  return ExecuteQueryCommand(cmd, nullptr);
}

Result<std::string> Server::HandleProfile(const Command& cmd) {
  // Per-query metrics scope: snapshot the registry around the execution
  // and render the diff. Concurrent queries would bleed into the scope's
  // per-site section, which is why the skew section is labelled as a
  // process-level window; the round/total numbers come from the query's
  // own ExecutionMetrics and are exact regardless of concurrency.
  std::vector<obs::MetricValue> before = obs::SnapshotMetrics();
  ProfileCapture capture;
  Result<std::string> payload = ExecuteQueryCommand(cmd, &capture);
  if (!payload.ok()) return payload.status();

  QueryProfileInfo info;
  info.result_cache_hit = capture.result_cache_hit;
  info.resumed_rounds = capture.resumed_rounds;
  info.registry_delta = obs::DiffMetrics(before, obs::SnapshotMetrics());
  const QueryResult* result =
      capture.result.has_value() ? &*capture.result : nullptr;
  return FormatQueryProfile(result, info);
}

Result<std::string> Server::HandleMetrics(const Command& cmd) {
  return cmd.metrics_json ? obs::MetricsJsonl() : obs::ExposeMetrics();
}

Result<std::string> Server::ExecuteQueryCommand(const Command& cmd,
                                                ProfileCapture* capture) {
  const auto started = std::chrono::steady_clock::now();
  queries_submitted_.fetch_add(1, std::memory_order_relaxed);
  static obs::Counter& submitted_total =
      obs::GetCounter("skalla_server_queries_submitted_total");
  submitted_total.Increment();

  // Parse before admission: a malformed query never occupies a slot.
  Result<GmdjExpr> expr = ParseOlapQuery(cmd.query_text);
  if (!expr.ok()) {
    queries_failed_.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter& failed_total =
        obs::GetCounter("skalla_server_queries_failed_total");
    failed_total.Increment();
    return expr.status();
  }

  auto active = std::make_shared<ActiveQuery>();
  active->id = next_query_id_.fetch_add(1, std::memory_order_relaxed);
  active->priority = static_cast<int>(cmd.priority);
  {
    std::lock_guard<std::mutex> lock(active_mu_);
    active_[active->id] = active;
  }
  // Unregister on every exit path.
  auto unregister = [this, &active, started](const Status& status) {
    {
      std::lock_guard<std::mutex> lock(active_mu_);
      active_.erase(active->id);
    }
    if (status.ok()) {
      queries_completed_.fetch_add(1, std::memory_order_relaxed);
      static obs::Counter& completed_total =
          obs::GetCounter("skalla_server_queries_completed_total");
      completed_total.Increment();
    } else if (status.code() == StatusCode::kCancelled) {
      queries_cancelled_.fetch_add(1, std::memory_order_relaxed);
      static obs::Counter& cancelled_total =
          obs::GetCounter("skalla_server_queries_cancelled_total");
      cancelled_total.Increment();
    } else if (status.code() == StatusCode::kUnavailable ||
               status.code() == StatusCode::kDeadlineExceeded) {
      queries_shed_.fetch_add(1, std::memory_order_relaxed);
      static obs::Counter& shed_total =
          obs::GetCounter("skalla_server_queries_shed_total");
      shed_total.Increment();
    } else {
      queries_failed_.fetch_add(1, std::memory_order_relaxed);
      static obs::Counter& failed_total =
          obs::GetCounter("skalla_server_queries_failed_total");
      failed_total.Increment();
    }
    QueryLatencyHistogram(active->priority).Observe(ElapsedSeconds(started));
  };

  obs::ScopedSpan span("server.query", obs::kTrackCoordinator);
  if (span.armed()) {
    span.set_detail("id=" + std::to_string(active->id) +
                    " prio=" + std::to_string(active->priority));
  }

  // Cost-weighted admission: price the query with the calibrated model
  // before queuing, so within a priority cheap queries overtake expensive
  // ones and cost-aware shedding has a number to judge. An estimate
  // failure (e.g. a relation without statistics) degrades to 0 — pure
  // arrival order, the pre-cost behavior.
  double estimated_cost = 0.0;
  {
    std::shared_lock<std::shared_mutex> read_lock(warehouse_mu_);
    const OptimizerOptions estimate_opt = options_.optimize
                                              ? OptimizerOptions::All()
                                              : OptimizerOptions::None();
    Result<DistributedPlan> priced = warehouse_->Plan(*expr, estimate_opt);
    if (priced.ok()) {
      std::lock_guard<std::mutex> stats_lock(estimate_mu_);
      Result<CostBreakdown> cost = warehouse_->EstimateCost(*priced);
      if (cost.ok()) estimated_cost = cost->TotalSeconds();
    }
  }

  // CANCEL may land before Acquire even queues us; honor it here so the
  // client's cancel is never lost to that race.
  Status admitted;
  if (active->cancel.load(std::memory_order_relaxed)) {
    admitted = Status::Cancelled("query cancelled before admission");
  } else {
    obs::ScopedSpan wait_span("server.admit", obs::kTrackCoordinator);
    const auto wait_started = std::chrono::steady_clock::now();
    admitted = admission_.Acquire(active->id, active->priority,
                                  cmd.deadline_sec, estimated_cost);
    QueueWaitHistogram(active->priority)
        .Observe(ElapsedSeconds(wait_started));
  }
  if (!admitted.ok()) {
    unregister(admitted);
    return admitted;
  }

  Result<std::string> payload = [&]() -> Result<std::string> {
    // The slot is released when this scope exits — strictly before the
    // outcome counter bumps in unregister(), so a stats() snapshot never
    // counts one query as both running and completed (ServerStats doc).
    SlotGuard slot(&admission_);
    active->running.store(true, std::memory_order_relaxed);

    // Shared lock: mutations (exclusive) cannot interleave with this
    // query, so the version snapshot, cache probes, and execution all see
    // one consistent warehouse state.
    std::shared_lock<std::shared_mutex> read_lock(warehouse_mu_);

    const bool use_cache = options_.enable_result_cache && !cmd.no_cache;
    const bool use_prefix = options_.enable_prefix_reuse && !cmd.no_cache;
    const VersionMap versions = SnapshotVersions(*expr);
    const std::string key = CanonicalQueryKey(*expr);

    if (use_cache) {
      std::optional<std::string> hit = cache_.Lookup(key, versions);
      if (hit.has_value()) {
        if (capture != nullptr) capture->result_cache_hit = true;
        return *std::move(hit);
      }
    }

    const OptimizerOptions opt =
        options_.optimize ? OptimizerOptions::All() : OptimizerOptions::None();
    Result<DistributedPlan> plan = warehouse_->Plan(*expr, opt);
    if (!plan.ok()) return plan.status();

    std::vector<std::string> prefix_keys;
    std::optional<PrefixMatch> resume;
    if (use_prefix) {
      prefix_keys = PlanPrefixKeys(*plan);
      resume = cache_.LookupPrefix(prefix_keys, versions);
    }

    ExecHooks hooks;
    hooks.local_threads =
        cmd.threads >= 0 ? cmd.threads : options_.default_local_threads;
    hooks.deadline_sec = cmd.deadline_sec >= 0 ? cmd.deadline_sec
                         : options_.default_deadline_sec > 0
                             ? options_.default_deadline_sec
                             : -1.0;
    hooks.cancel = &active->cancel;
    if (resume.has_value()) {
      hooks.resume_x = &resume->x;
      hooks.resume_rounds = resume->rounds;
      if (capture != nullptr) capture->resumed_rounds = resume->rounds;
    }
    // Capture X after each executed round for the prefix cache. The i-th
    // callback finishes round start+i, whose key is prefix_keys[start+i].
    std::vector<std::pair<size_t, Table>> captured;
    if (use_prefix) {
      hooks.round_observer = [&captured](size_t ops_done, const Table& x) {
        captured.emplace_back(ops_done, x);
      };
    }

    // Borrow the shared delta-base cache when no other query holds it;
    // on contention this query simply runs with a private per-query
    // cache (identical responses either way — invariant 10).
    std::unique_lock<std::mutex> ship_lock(ship_cache_mu_, std::try_to_lock);
    if (ship_lock.owns_lock()) hooks.ship_cache = &ship_cache_;

    Result<QueryResult> result = warehouse_->ExecutePlan(*plan, hooks);
    if (!result.ok()) return result.status();

    std::string csv = CsvToString(result->table);
    if (use_prefix) {
      const size_t start = resume.has_value() ? resume->rounds : 0;
      for (size_t i = 0; i < captured.size(); ++i) {
        const size_t round_index = start + i;
        if (round_index >= prefix_keys.size()) break;
        cache_.StorePrefix(prefix_keys[round_index], round_index + 1,
                           captured[i].first, captured[i].second, versions);
      }
    }
    if (use_cache) cache_.Store(key, csv, versions);
    if (capture != nullptr) capture->result = *std::move(result);
    return csv;
  }();

  unregister(payload.status());
  return payload;
}

Result<std::string> Server::HandleLoad(const Command& cmd) {
  obs::ScopedSpan span("server.load", obs::kTrackCoordinator);
  if (span.armed()) {
    span.set_detail(cmd.load_kind + " rows=" +
                    std::to_string(cmd.load_rows));
  }
  std::unique_lock<std::shared_mutex> write_lock(warehouse_mu_);
  std::string table;
  Status status;
  if (cmd.load_kind == "tpcr") {
    table = "TPCR";
    TpcConfig config;
    config.num_rows = cmd.load_rows;
    config.num_customers = std::max<int64_t>(1, cmd.load_rows / 12);
    status = warehouse_->LoadByRange(table, GenerateTpcr(config), "NationKey",
                                     0, config.num_nations - 1,
                                     {"CustKey", "ClerkKey"});
  } else {
    table = "Flow";
    FlowConfig config;
    config.num_rows = cmd.load_rows;
    config.num_routers = warehouse_->num_sites();
    status = warehouse_->LoadByRange(table, GenerateFlows(config), "SourceAS",
                                     0, config.num_as - 1,
                                     {"SourceAS", "RouterId"});
  }
  if (!status.ok()) return status;
  BumpVersion(table);
  loads_.fetch_add(1, std::memory_order_relaxed);
  return "loaded " + table + " " + std::to_string(cmd.load_rows);
}

Result<std::string> Server::HandleMutate(const Command& cmd) {
  obs::ScopedSpan span("server.mutate", obs::kTrackCoordinator);
  if (span.armed()) span.set_detail(cmd.mutate_table);
  std::unique_lock<std::shared_mutex> write_lock(warehouse_mu_);

  Result<std::shared_ptr<const Table>> table =
      warehouse_->central_catalog().GetTable(cmd.mutate_table);
  if (!table.ok()) return table.status();

  // Reuse the CSV reader for value parsing/quoting: one header line (the
  // table's own column order) plus the client's row.
  std::ostringstream header;
  const std::vector<std::string> names = (*table)->schema().FieldNames();
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) header << ",";
    header << names[i];
  }
  Result<Table> parsed = CsvFromString(
      header.str() + "\n" + cmd.mutate_row_csv + "\n", (*table)->schema_ptr());
  if (!parsed.ok()) return parsed.status();
  if (parsed->num_rows() != 1) {
    return Status::InvalidArgument(
        "MUTATE APPEND expects exactly one CSV row, got " +
        std::to_string(parsed->num_rows()));
  }

  Status appended = warehouse_->AppendRow(cmd.mutate_table, parsed->row(0));
  if (!appended.ok()) return appended;
  BumpVersion(cmd.mutate_table);
  mutations_.fetch_add(1, std::memory_order_relaxed);
  return "appended 1 row to " + cmd.mutate_table;
}

Result<std::string> Server::HandleStats() {
  const ServerStats stats = this->stats();
  std::ostringstream out;
  out << "queries_submitted " << stats.queries_submitted << "\n"
      << "queries_completed " << stats.queries_completed << "\n"
      << "queries_failed " << stats.queries_failed << "\n"
      << "queries_cancelled " << stats.queries_cancelled << "\n"
      << "queries_shed " << stats.queries_shed << "\n"
      << "mutations " << stats.mutations << "\n"
      << "loads " << stats.loads << "\n"
      << "running " << stats.running << "\n"
      << "queued " << stats.queued << "\n"
      << "cache_hits " << stats.cache.hits << "\n"
      << "cache_misses " << stats.cache.misses << "\n"
      << "cache_prefix_hits " << stats.cache.prefix_hits << "\n"
      << "cache_stores " << stats.cache.stores << "\n"
      << "cache_invalidations " << stats.cache.invalidations << "\n"
      << "cache_evictions " << stats.cache.evictions << "\n"
      << "cache_result_entries " << stats.cache_result_entries << "\n"
      << "cache_prefix_entries " << stats.cache_prefix_entries << "\n";
  {
    std::lock_guard<std::mutex> lock(active_mu_);
    for (const auto& [id, query] : active_) {
      out << "active " << id << " "
          << (query->running.load(std::memory_order_relaxed) ? "running"
                                                             : "queued")
          << " " << query->priority << "\n";
    }
  }
  // Registry metrics, strictly additive behind the existing keys (the
  // `metric.` prefix cannot collide with a bare stats key — docs/server.md
  // pins this contract). Counters and gauges are one line each; histograms
  // expand to count/sum/quantile lines.
  for (const obs::MetricValue& v : obs::SnapshotMetrics()) {
    switch (v.kind) {
      case obs::MetricKind::kCounter:
        out << "metric." << v.name << " " << v.counter_value << "\n";
        break;
      case obs::MetricKind::kGauge:
        out << "metric." << v.name << " " << v.gauge_value << "\n";
        break;
      case obs::MetricKind::kHistogram:
        out << "metric." << v.name << ".count " << v.hist_count << "\n"
            << "metric." << v.name << ".sum " << v.hist_sum << "\n"
            << "metric." << v.name << ".p50 " << v.Quantile(0.50) << "\n"
            << "metric." << v.name << ".p95 " << v.Quantile(0.95) << "\n"
            << "metric." << v.name << ".p99 " << v.Quantile(0.99) << "\n";
        break;
    }
  }
  return out.str();
}

Result<std::string> Server::HandleCancel(const Command& cmd) {
  std::vector<std::shared_ptr<ActiveQuery>> targets;
  {
    std::lock_guard<std::mutex> lock(active_mu_);
    if (cmd.cancel_all) {
      for (const auto& [id, query] : active_) targets.push_back(query);
    } else {
      auto it = active_.find(cmd.cancel_id);
      if (it == active_.end()) {
        return Status::NotFound("no active query with id " +
                                std::to_string(cmd.cancel_id));
      }
      targets.push_back(it->second);
    }
  }
  for (const auto& query : targets) {
    query->cancel.store(true, std::memory_order_relaxed);
    admission_.CancelQueued(query->id);
  }
  return "cancelled " + std::to_string(targets.size());
}

ServerStats Server::stats() const {
  // Read order matters for snapshot consistency (see the ServerStats doc):
  // outcome counters first, then the admission state in one snapshot(),
  // and queries_submitted_ last. A query moves submitted -> (queued ->)
  // running -> outcome, so reading its terminal states before its entry
  // state can only undercount the left-hand side of
  //   completed + failed + cancelled + shed + running + queued <= submitted.
  ServerStats stats;
  stats.queries_completed = queries_completed_.load(std::memory_order_seq_cst);
  stats.queries_failed = queries_failed_.load(std::memory_order_seq_cst);
  stats.queries_cancelled = queries_cancelled_.load(std::memory_order_seq_cst);
  stats.queries_shed = queries_shed_.load(std::memory_order_seq_cst);
  const AdmissionController::Snapshot admission = admission_.snapshot();
  stats.running = admission.running;
  stats.queued = admission.queued;
  stats.queries_submitted = queries_submitted_.load(std::memory_order_seq_cst);
  stats.mutations = mutations_.load(std::memory_order_relaxed);
  stats.loads = loads_.load(std::memory_order_relaxed);
  stats.cache = cache_.stats();
  stats.cache_result_entries = cache_.result_entries();
  stats.cache_prefix_entries = cache_.prefix_entries();
  return stats;
}

Status Connection::Feed(std::string_view bytes, std::string* out) {
  if (broken_) {
    return Status::InvalidArgument(
        "connection is broken by an earlier framing error");
  }
  buffer_.append(bytes.data(), bytes.size());
  while (true) {
    Result<std::optional<std::string>> frame = DecodeFrame(&buffer_);
    if (!frame.ok()) {
      broken_ = true;
      out->append(EncodeFrame(ErrResponse(frame.status())));
      return frame.status();
    }
    if (!frame->has_value()) return Status::OK();
    out->append(EncodeFrame(server_->HandleCommand(**frame)));
  }
}

Result<std::string> Client::Call(const std::string& command) {
  std::string out;
  Status fed = connection_.Feed(EncodeFrame(command), &out);
  pending_.append(out);
  if (!fed.ok()) return fed;
  Result<std::optional<std::string>> frame = DecodeFrame(&pending_);
  if (!frame.ok()) return frame.status();
  if (!frame->has_value()) {
    return Status::Internal("server produced no response frame");
  }
  return ParseResponse(**frame);
}

}  // namespace server
}  // namespace skalla

file(REMOVE_RECURSE
  "libskalla_sql.a"
)

#ifndef SKALLA_NET_SIM_NETWORK_H_
#define SKALLA_NET_SIM_NETWORK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/cost_model.h"

namespace skalla {

/// Endpoint id of the coordinator in transfer records.
inline constexpr int kCoordinatorId = -1;

/// One recorded message on the simulated network.
struct TransferRecord {
  int from = kCoordinatorId;
  int to = kCoordinatorId;
  size_t bytes = 0;
  int64_t rows = 0;       ///< relation rows carried (0 for control messages)
  int round = -1;
  std::string label;
  double seconds = 0.0;   ///< simulated transfer time charged
};

/// \brief In-process stand-in for the warehouse's WAN.
///
/// Every relation shipped between the coordinator and a site is first
/// binary-serialized (storage/serializer.h), so byte counts are exact; the
/// cost model then converts bytes to simulated seconds. The network never
/// loses or reorders messages — Skalla's evaluation algorithm is
/// synchronous by construction (rounds).
class SimNetwork {
 public:
  explicit SimNetwork(NetworkConfig config = NetworkConfig())
      : config_(config) {}

  const NetworkConfig& config() const { return config_; }

  /// Starts a new accounting round with a human-readable label.
  void BeginRound(std::string label);

  /// Records one message and returns the simulated seconds it took.
  double Transfer(int from, int to, size_t bytes, int64_t rows,
                  std::string label);

  const std::vector<TransferRecord>& transfers() const { return transfers_; }

  size_t TotalBytes() const;
  size_t BytesToCoordinator() const;
  size_t BytesFromCoordinator() const;
  int64_t RowsToCoordinator() const;
  int64_t RowsFromCoordinator() const;

  /// Clears all recorded traffic (metrics for a fresh query).
  void Reset();

  /// A per-round traffic summary for debugging.
  std::string Report() const;

 private:
  NetworkConfig config_;
  std::vector<TransferRecord> transfers_;
  std::vector<std::string> round_labels_;
  int current_round_ = -1;
};

}  // namespace skalla

#endif  // SKALLA_NET_SIM_NETWORK_H_

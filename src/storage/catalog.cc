#include "storage/catalog.h"

namespace skalla {

Status Catalog::AddTable(const std::string& name,
                         std::shared_ptr<const Table> table) {
  auto [it, inserted] = tables_.emplace(name, std::move(table));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("table '" + name + "' already registered");
  }
  return Status::OK();
}

void Catalog::PutTable(const std::string& name,
                       std::shared_ptr<const Table> table) {
  tables_[name] = std::move(table);
}

Result<std::shared_ptr<const Table>> Catalog::GetTable(
    const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return it->second;
}

bool Catalog::DropTable(const std::string& name) {
  return tables_.erase(name) > 0;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) {
    (void)table;
    names.push_back(name);
  }
  return names;
}

}  // namespace skalla

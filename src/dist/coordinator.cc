#include "dist/coordinator.h"

#include <algorithm>
#include <numeric>
#include <optional>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "dist/fault_tolerance.h"
#include "dist/sync.h"
#include "engine/operators.h"
#include "expr/evaluator.h"
#include "obs/journal.h"
#include "obs/trace.h"
#include "storage/hash_index.h"
#include "storage/serializer.h"
#include "storage/wire_format.h"

namespace skalla {

namespace {

std::vector<int> AllSiteIds(const std::vector<Site*>& sites) {
  std::vector<int> ids(sites.size());
  std::iota(ids.begin(), ids.end(), 0);
  return ids;
}

}  // namespace

Status Coordinator::CheckCancelled() const {
  if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
    return Status::Cancelled("query cancelled by client");
  }
  return Status::OK();
}

Result<SchemaPtr> Coordinator::FindSchema(const std::string& table_name) const {
  for (const Site* site : sites_) {
    if (site->catalog().HasTable(table_name)) {
      SKALLA_ASSIGN_OR_RETURN(std::shared_ptr<const Table> t,
                              site->catalog().GetTable(table_name));
      return t->schema_ptr();
    }
  }
  return Status::NotFound("no site holds a partition of '" + table_name + "'");
}

Result<SchemaMap> Coordinator::CollectSchemas(
    const DistributedPlan& plan) const {
  SchemaMap schemas;
  SKALLA_ASSIGN_OR_RETURN(SchemaPtr base_schema,
                          FindSchema(plan.base.source_table));
  schemas[plan.base.source_table] = base_schema;
  for (const PlanRound& round : plan.rounds) {
    for (const GmdjOp& op : round.ops) {
      if (schemas.count(op.detail_table)) continue;
      SKALLA_ASSIGN_OR_RETURN(SchemaPtr s, FindSchema(op.detail_table));
      schemas[op.detail_table] = s;
    }
  }
  return schemas;
}

Result<Table> Coordinator::Execute(const DistributedPlan& plan,
                                   ExecutionMetrics* metrics) {
  if (sites_.empty()) {
    return Status::InvalidArgument("coordinator has no sites");
  }
  obs::ScopedSpan query_span("query.execute", obs::kTrackCoordinator);
  if (query_span.armed()) {
    query_span.set_detail(std::to_string(plan.rounds.size()) +
                          " gmdj round(s), " + std::to_string(sites_.size()) +
                          " site(s)");
  }
  network_.Reset();
  ExecutionMetrics local_metrics;
  // Which physical site serves each slot; failover swaps are sticky for
  // the rest of the query.
  SiteRoster roster(sites_, replicas_);
  const RetryPolicy& retry = network_.config().retry;
  const WireFormat wire_format = network_.config().wire_format;
  // Delta shipping needs the columnar codec for its sections; with SKL1
  // selected every ship is a full payload.
  const bool delta_enabled = network_.config().delta_shipping &&
                             wire_format == WireFormat::kSkl2;
  // What each site slot last received of X (fused rounds ship only a plan
  // and leave the cache untouched). Deltas in later rounds are encoded
  // against this, mirroring the site's cached copy. With an attached
  // external cache the mirror survives the query, so the next query's
  // first ship can already go out as a delta.
  std::vector<std::optional<Table>> private_ship_cache;
  if (external_ship_cache_ != nullptr) {
    external_ship_cache_->resize(sites_.size());
  } else {
    private_ship_cache.resize(sites_.size());
  }
  std::vector<std::optional<Table>>& ship_cache =
      external_ship_cache_ != nullptr ? *external_ship_cache_
                                      : private_ship_cache;

  SKALLA_ASSIGN_OR_RETURN(SchemaMap schemas, CollectSchemas(plan));
  const GmdjExpr expr = plan.ToExpr();
  SKALLA_RETURN_NOT_OK(ValidateGmdjExpr(expr, schemas));

  const int num_key = static_cast<int>(plan.key_attrs.size());
  std::vector<int> key_cols(static_cast<size_t>(num_key));
  std::iota(key_cols.begin(), key_cols.end(), 0);

  SKALLA_RETURN_NOT_OK(CheckCancelled());

  // Resuming from a cached prefix: the first `resume_rounds_` plan rounds
  // (and the base round) are skipped and X is seeded from the cached
  // structure, after validating it against the schema a fresh execution
  // would hold at that point.
  const bool resuming = resume_x_ != nullptr && resume_rounds_ >= 1;
  size_t ops_done = 0;
  if (resuming) {
    if (resume_rounds_ > plan.rounds.size()) {
      return Status::InvalidArgument(
          "resume point beyond the plan's round count");
    }
    for (size_t r = 0; r < resume_rounds_; ++r) {
      ops_done += plan.rounds[r].ops.size();
    }
    SKALLA_ASSIGN_OR_RETURN(SchemaPtr resume_schema,
                            BaseResultSchema(expr, schemas, ops_done));
    if (resume_x_->schema().FieldNames() != resume_schema->FieldNames()) {
      return Status::InvalidArgument(
          "resume structure schema does not match the plan prefix");
    }
  }

  // The base-result structure X (visible/finalized form) plus its key index.
  SKALLA_ASSIGN_OR_RETURN(SchemaPtr x_schema,
                          BaseResultSchema(expr, schemas, ops_done));
  Table x(x_schema);
  if (resuming) x = *resume_x_;
  HashIndex x_index;
  x_index.Build(x, key_cols);

  // ---- Round 0: base-values query (unless fused per Prop. 2). ----
  if (!plan.fuse_base && !resuming) {
    network_.BeginRound("base");
    obs::ScopedSpan round_span("round.base", obs::kTrackCoordinator);
    RoundMetrics rm;
    rm.label = "base query";
    rm.streaming = network_.config().streaming_sync;
    const std::vector<int> base_sites =
        plan.base_sites.empty() ? AllSiteIds(sites_) : plan.base_sites;
    rm.sites = static_cast<int>(base_sites.size());
    const std::vector<DownMessage> down(
        base_sites.size(),
        DownMessage{kCoordinatorId, kQueryPlanBytes, 0, "base query plan"});
    const std::vector<int> reply_to(base_sites.size(), kCoordinatorId);
    auto eval = [&plan](int /*p*/, Site* site, double* cpu) {
      return site->EvalBase(plan.base, cpu);
    };
    SKALLA_ASSIGN_OR_RETURN(
        std::vector<std::string> replies,
        DriveRoundWithRetries(&network_, retry, &rm, &roster, base_sites,
                              down, reply_to, "B_i", eval, parallel_sites_,
                              LinkModel::kSharedLink, wire_format));
    double coord_cpu = 0;
    for (size_t p = 0; p < replies.size(); ++p) {
      const std::string& payload = replies[p];
      Stopwatch sw;
      SKALLA_ASSIGN_OR_RETURN(Table received,
                              Serializer::DeserializeTable(payload));
      // Incremental distinct union into X.
      for (const Row& row : received.rows()) {
        if (x_index.Lookup(row, key_cols) == nullptr) {
          x.AddRow(row);
          x_index.Insert(x, x.num_rows() - 1);
        }
      }
      const double merge_sec = sw.ElapsedSeconds();
      coord_cpu += merge_sec;
      if (obs::JournalEnabled()) {
        obs::JournalRecord jr;
        jr.event = obs::JournalEvent::kSyncMerge;
        jr.round = network_.current_round();
        jr.site = base_sites[p];
        jr.rows = received.num_rows();
        jr.seconds = merge_sec;
        obs::JournalAppend(std::move(jr));
      }
    }
    rm.coord_cpu_sec = coord_cpu;
    local_metrics.rounds.push_back(std::move(rm));
  }

  // ---- GMDJ rounds. ----
  for (size_t r = resuming ? resume_rounds_ : 0; r < plan.rounds.size();
       ++r) {
    const PlanRound& round = plan.rounds[r];
    SKALLA_RETURN_NOT_OK(CheckCancelled());
    network_.BeginRound("gmdj round " + std::to_string(r + 1));
    obs::ScopedSpan round_span("round.gmdj", obs::kTrackCoordinator);
    if (round_span.armed()) {
      round_span.set_detail("round " + std::to_string(r + 1));
    }
    RoundMetrics rm;
    rm.streaming = network_.config().streaming_sync;
    rm.label = round.ops.size() == 1
                   ? "gmdj round " + std::to_string(r + 1)
                   : "gmdj round " + std::to_string(r + 1) + " (chain of " +
                         std::to_string(round.ops.size()) + ")";
    const std::vector<int> participants = round.participating_sites.empty()
                                              ? AllSiteIds(sites_)
                                              : round.participating_sites;
    rm.sites = static_cast<int>(participants.size());
    const bool fused_base_round = plan.fuse_base && r == 0;

    // Sub-aggregate layout of this round's H relations.
    int sub_width = 0;
    SKALLA_ASSIGN_OR_RETURN(std::vector<SubSlot> slots,
                            BuildSubSlots(round.ops, schemas, &sub_width));

    // Per-X-row sub-aggregate accumulators, initialized to the identities.
    std::vector<std::vector<Value>> acc(static_cast<size_t>(x.num_rows()));
    auto init_acc_row = [&slots, sub_width]() {
      std::vector<Value> row(static_cast<size_t>(sub_width));
      for (const SubSlot& slot : slots) {
        InitSubValues(slot.func, &row[static_cast<size_t>(slot.offset)]);
      }
      return row;
    };
    for (auto& row : acc) row = init_acc_row();

    // Compile per-site ship predicates when aware group reduction is on.
    std::vector<std::optional<CompiledExpr>> ship(sites_.size());
    if (round.flags.aware_group_reduction && r < plan.ship_predicates.size()) {
      for (size_t s = 0;
           s < plan.ship_predicates[r].size() && s < sites_.size(); ++s) {
        const ExprPtr& pred = plan.ship_predicates[r][s];
        if (pred == nullptr) continue;
        SKALLA_ASSIGN_OR_RETURN(
            CompiledExpr compiled,
            CompiledExpr::Compile(pred, &x.schema(), nullptr));
        ship[s] = std::move(compiled);
      }
    }

    double coord_cpu = 0;

    // ---- Phase A (coordinator): reduce, prune, and serialize each site's
    //      view of X. Shipping — and any re-shipping under faults — is the
    //      retry driver's job; a retried attempt re-sends the identical
    //      fragment, which is what makes rounds idempotent. ----
    std::optional<obs::ScopedSpan> prepare_span;
    if (!fused_base_round) {
      prepare_span.emplace("round.prepare", obs::kTrackCoordinator);
    }
    std::vector<Table> site_views(participants.size());
    std::vector<DownMessage> down(participants.size());
    for (size_t p = 0; p < participants.size(); ++p) {
      const int sid = participants[p];
      if (fused_base_round) {
        down[p] = DownMessage{kCoordinatorId, kQueryPlanBytes, 0,
                              "fused plan"};
        continue;
      }
      // Coordinator-side group reduction (row filtering per Theorem 4)
      // and column pruning.
      Stopwatch filter_sw;
      const Table* to_ship = &x;
      Table reduced;
      if (ship[static_cast<size_t>(sid)].has_value()) {
        const CompiledExpr& pred = *ship[static_cast<size_t>(sid)];
        reduced = Table(x.schema_ptr());
        for (const Row& row : x.rows()) {
          if (pred.EvalBool(&row, nullptr)) reduced.AddRow(row);
        }
        to_ship = &reduced;
        if (obs::JournalEnabled()) {
          obs::JournalRecord jr;
          jr.event = obs::JournalEvent::kReduction;
          jr.round = network_.current_round();
          jr.site = sid;
          jr.rows_before = x.num_rows();
          jr.rows = reduced.num_rows();
          obs::JournalAppend(std::move(jr));
        }
      }
      Table pruned;
      if (!round.ship_cols.empty() &&
          static_cast<int>(round.ship_cols.size()) < x.schema().num_fields()) {
        SKALLA_ASSIGN_OR_RETURN(pruned, Project(*to_ship, round.ship_cols));
        to_ship = &pruned;
      }
      const int64_t shipped_rows = to_ship->num_rows();
      std::string full_payload =
          Serializer::SerializeTable(*to_ship, wire_format);
      const size_t baseline =
          Serializer::WireSize(*to_ship, WireFormat::kSkl1);
      std::optional<Table>& cached = ship_cache[static_cast<size_t>(sid)];
      // Ship an SKLD delta against what the site already holds whenever it
      // is strictly smaller; the full payload stays attached as the
      // fallback the retry driver sends on re-ship (docs/wire-format.md).
      std::string payload;
      size_t fallback = 0;
      std::string label = "X fragment";
      if (delta_enabled && cached.has_value()) {
        std::string delta = Serializer::SerializeDelta(*cached, *to_ship);
        if (delta.size() < full_payload.size()) {
          payload = std::move(delta);
          fallback = full_payload.size();
          label = "X delta";
        }
      }
      if (fallback == 0) payload = std::move(full_payload);
      if (obs::JournalEnabled()) {
        obs::JournalRecord jr;
        jr.event = obs::JournalEvent::kBaseShipped;
        jr.round = network_.current_round();
        jr.site = sid;
        jr.bytes = payload.size();
        jr.rows = shipped_rows;
        jr.label = fallback > 0 ? "SKLD" : WireFormatName(wire_format);
        obs::JournalAppend(std::move(jr));
      }
      down[p] = DownMessage{kCoordinatorId, payload.size(), shipped_rows,
                            std::move(label), fallback, baseline};
      // The site's view is what the shipped bytes decode to — against its
      // cache for a delta, standalone otherwise.
      SKALLA_ASSIGN_OR_RETURN(
          site_views[p],
          Serializer::DecodeShipment(cached ? &*cached : nullptr, payload));
      cached = site_views[p];
      coord_cpu += filter_sw.ElapsedSeconds();
    }
    if (prepare_span.has_value()) {
      if (prepare_span->armed()) {
        prepare_span->set_detail(std::to_string(participants.size()) +
                                 " fragment(s)");
      }
      prepare_span.reset();
    }

    // ---- Skew rebalancing (docs/skew.md): when the detector predicts a
    //      straggler for this round and its φ-twin replica is available,
    //      the replica joins the wave as a helper slot evaluating the
    //      straggler's upper detail fragment. The split is legal for
    //      single-operator, non-fused rounds only: the two H fragments are
    //      disjoint scan covers of the same detail relation, so merging
    //      both through the Theorem 1 fold below is byte-identical to the
    //      unsplit round (DESIGN.md invariant 12). ----
    std::vector<int> drive_participants = participants;
    // Per-slot detail scan windows ([0, -1) = everything) and assigned row
    // counts (for the detector's per-row feedback normalization).
    std::vector<std::pair<int64_t, int64_t>> ranges(participants.size(),
                                                    {0, -1});
    std::vector<int64_t> assigned_rows(participants.size(), 0);
    const bool splittable = skew_detector_ != nullptr && !fused_base_round &&
                            round.ops.size() == 1;
    if (splittable) {
      std::vector<int64_t> rows(participants.size(), 0);
      for (size_t p = 0; p < participants.size(); ++p) {
        Result<std::shared_ptr<const Table>> detail =
            roster.active(participants[p])
                ->catalog()
                .GetTable(round.ops[0].detail_table);
        if (detail.ok()) rows[p] = (*detail)->num_rows();
      }
      assigned_rows = rows;
      const RebalanceDecision decision =
          skew_detector_->PlanRound(participants, rows);
      const auto hot_at = decision.split()
                              ? std::find(participants.begin(),
                                          participants.end(),
                                          decision.hot_slot) -
                                    participants.begin()
                              : static_cast<std::ptrdiff_t>(0);
      auto replica_it = replicas_.end();
      if (decision.split() &&
          hot_at < static_cast<std::ptrdiff_t>(participants.size()) &&
          !roster.failed_over(decision.hot_slot)) {
        replica_it = replicas_.find(decision.hot_slot);
      }
      if (replica_it != replicas_.end() &&
          CoversPartition(replica_it->second->partition_info(),
                          roster.active(decision.hot_slot)
                              ->partition_info())) {
        const size_t p_hot = static_cast<size_t>(hot_at);
        const int helper_sid = roster.AddHelperSlot(
            replica_it->second, roster.active(decision.hot_slot));
        drive_participants.push_back(helper_sid);
        // The helper gets its own full (never delta — it holds no cached
        // X) copy of the straggler's fragment, flagged so its traffic
        // lands in the rebalance surcharge counters.
        std::string helper_payload =
            Serializer::SerializeTable(site_views[p_hot], wire_format);
        DownMessage helper_msg{
            kCoordinatorId, helper_payload.size(),
            site_views[p_hot].num_rows(), "X fragment (rebalance)", 0,
            Serializer::WireSize(site_views[p_hot], WireFormat::kSkl1)};
        helper_msg.rebalance = true;
        down.push_back(std::move(helper_msg));
        site_views.push_back(site_views[p_hot]);
        ranges[p_hot] = {0, decision.split_at};
        ranges.push_back({decision.split_at, -1});
        assigned_rows[p_hot] = decision.split_at;
        assigned_rows.push_back(decision.rows - decision.split_at);
        rm.rebalance_splits++;
        if (obs::JournalEnabled()) {
          obs::JournalRecord jr;
          jr.event = obs::JournalEvent::kReduction;
          jr.round = network_.current_round();
          jr.site = decision.hot_slot;
          jr.rows_before = decision.rows;
          jr.rows = decision.split_at;
          jr.label = "rebalance split";
          obs::JournalAppend(std::move(jr));
        }
      }
    }

    // ---- Phase B: fault-tolerant per-site exchange (ship, evaluate in
    //      parallel when enabled, reply), retried per RetryPolicy. ----
    const std::vector<int> reply_to(drive_participants.size(),
                                    kCoordinatorId);
    auto eval = [&](int p, Site* site, double* cpu) {
      SiteRoundInput input;
      input.x = fused_base_round ? nullptr
                                 : &site_views[static_cast<size_t>(p)];
      input.base = fused_base_round ? &plan.base : nullptr;
      input.ops = &round.ops;
      input.key_attrs = &plan.key_attrs;
      input.touched_only = round.flags.independent_group_reduction;
      input.num_threads = local_threads_;
      input.detail_lo = ranges[static_cast<size_t>(p)].first;
      input.detail_hi = ranges[static_cast<size_t>(p)].second;
      return site->EvalRound(input, cpu);
    };
    SKALLA_ASSIGN_OR_RETURN(
        std::vector<std::string> replies,
        DriveRoundWithRetries(&network_, retry, &rm, &roster,
                              drive_participants, down, reply_to, "H_i",
                              eval, parallel_sites_, LinkModel::kSharedLink,
                              wire_format));

    // Feed the measured per-slot wall times back to the detector (primary
    // slots only — a helper's timing belongs to the replica's hardware,
    // not the straggler being modelled).
    if (splittable) {
      for (size_t p = 0; p < participants.size(); ++p) {
        if (p < rm.site_seconds.size()) {
          skew_detector_->ObserveRound(participants[p], rm.site_seconds[p],
                                       assigned_rows[p]);
        }
      }
    }

    // ---- Phase C (coordinator): synchronize (Theorem 1) in
    //      deterministic site order. ----
    std::optional<obs::ScopedSpan> sync_span;
    sync_span.emplace("round.sync", obs::kTrackCoordinator);
    for (size_t p = 0; p < drive_participants.size(); ++p) {
      const int sid = drive_participants[p];
      Stopwatch merge_sw;
      SKALLA_ASSIGN_OR_RETURN(Table h,
                              Serializer::DeserializeTable(replies[p]));
      for (const Row& h_row : h.rows()) {
        const std::vector<int64_t>* match = x_index.Lookup(h_row, key_cols);
        int64_t row_id;
        if (match == nullptr) {
          if (!fused_base_round) {
            return Status::Internal(
                "site " + std::to_string(sid) +
                " returned a group missing from the base-result structure");
          }
          Row key_row(h_row.begin(), h_row.begin() + num_key);
          x.AddRow(std::move(key_row));
          row_id = x.num_rows() - 1;
          x_index.Insert(x, row_id);
          acc.push_back(init_acc_row());
        } else {
          row_id = match->front();
        }
        std::vector<Value>& acc_row = acc[static_cast<size_t>(row_id)];
        for (const SubSlot& slot : slots) {
          MergeSubValues(
              slot.func,
              &h_row[static_cast<size_t>(num_key + slot.offset)],
              &acc_row[static_cast<size_t>(slot.offset)]);
        }
      }
      const double merge_sec = merge_sw.ElapsedSeconds();
      coord_cpu += merge_sec;
      if (obs::JournalEnabled()) {
        obs::JournalRecord jr;
        jr.event = obs::JournalEvent::kSyncMerge;
        jr.round = network_.current_round();
        jr.site = sid;
        jr.rows = h.num_rows();
        jr.seconds = merge_sec;
        obs::JournalAppend(std::move(jr));
      }
    }
    sync_span.reset();

    // ---- Finalize this round's aggregates into new X columns. ----
    obs::ScopedSpan finalize_span("round.finalize", obs::kTrackCoordinator);
    Stopwatch finalize_sw;
    std::vector<Field> new_fields = x.schema().fields();
    for (const SubSlot& slot : slots) new_fields.push_back(slot.final_field);
    Table new_x(MakeSchema(std::move(new_fields)));
    new_x.Reserve(x.num_rows());
    for (int64_t i = 0; i < x.num_rows(); ++i) {
      Row row = x.row(i);
      const std::vector<Value>& acc_row = acc[static_cast<size_t>(i)];
      for (const SubSlot& slot : slots) {
        row.push_back(FinalizeSubValues(
            slot.func, &acc_row[static_cast<size_t>(slot.offset)]));
      }
      new_x.AddRow(std::move(row));
    }
    x = std::move(new_x);
    x_index.Build(x, key_cols);
    coord_cpu += finalize_sw.ElapsedSeconds();

    rm.coord_cpu_sec = coord_cpu;
    local_metrics.rounds.push_back(std::move(rm));

    ops_done += round.ops.size();
    if (round_observer_) round_observer_(ops_done, x);
  }


  // ---- HAVING: final coordinator-side filter over the finished X. ----
  if (plan.having != nullptr) {
    Stopwatch having_sw;
    SKALLA_ASSIGN_OR_RETURN(
        CompiledExpr having,
        CompiledExpr::Compile(plan.having, &x.schema(), nullptr));
    Table filtered(x.schema_ptr());
    for (const Row& row : x.rows()) {
      if (having.EvalBool(&row, nullptr)) filtered.AddRow(row);
    }
    x = std::move(filtered);
    if (!local_metrics.rounds.empty()) {
      local_metrics.rounds.back().coord_cpu_sec += having_sw.ElapsedSeconds();
    }
  }

  // ---- Presentation: ORDER BY / LIMIT on the finished relation. ----
  if (!plan.order_by.empty()) {
    SKALLA_ASSIGN_OR_RETURN(x, SortedByKeys(x, plan.order_by));
  }
  if (plan.limit >= 0) {
    x = Limit(x, plan.limit);
  }

  if (metrics != nullptr) *metrics = std::move(local_metrics);
  return x;
}

int64_t TheoremTwoGroupBound(const DistributedPlan& plan, int num_sites,
                             int64_t q_rows) {
  const int64_t s0 = plan.base_sites.empty()
                         ? num_sites
                         : static_cast<int64_t>(plan.base_sites.size());
  int64_t bound = plan.fuse_base ? 0 : s0 * q_rows;
  for (const PlanRound& round : plan.rounds) {
    const int64_t si = round.participating_sites.empty()
                           ? num_sites
                           : static_cast<int64_t>(
                                 round.participating_sites.size());
    // Each operator in the round costs at most one X shipment out and one
    // H shipment back per site; a k-op chain still ships once, so charging
    // per round keeps the bound valid (and tight for 1-op rounds).
    bound += 2 * si * q_rows;
  }
  return bound;
}

}  // namespace skalla

# Empty dependencies file for skalla_dist.
# This may be replaced when dependencies are built.

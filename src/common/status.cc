#include "common/status.h"

namespace skalla {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kAlreadyExists:
      return "already exists";
    case StatusCode::kOutOfRange:
      return "out of range";
    case StatusCode::kTypeError:
      return "type error";
    case StatusCode::kIoError:
      return "io error";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kNotImplemented:
      return "not implemented";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kDeadlineExceeded:
      return "deadline exceeded";
    case StatusCode::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace skalla

// The paper's TPC(R)-based experimental workload run end to end: the four
// canonical queries (group reduction, coalescing, synchronization
// reduction, combined) over a NationKey-partitioned warehouse, each
// executed unoptimized and fully optimized, with cost metrics compared and
// results verified against the centralized reference evaluator.
//
//   ./example_tpcr_olap

#include <cstdio>
#include <iostream>

#include "common/string_util.h"
#include "skalla/queries.h"
#include "skalla/warehouse.h"
#include "tpc/dbgen.h"

namespace {

using namespace skalla;

struct NamedQuery {
  const char* name;
  GmdjExpr expr;
};

int Run() {
  TpcConfig config;
  config.num_rows = 120000;
  config.num_customers = 8000;
  config.num_clerks = 500;
  Table tpcr = GenerateTpcr(config);
  std::cout << "Generated TPCR: " << tpcr.num_rows() << " tuples, "
            << HumanBytes(static_cast<double>(tpcr.SerializedSize()))
            << " of payload\n\n";

  Warehouse warehouse(8);
  Status load =
      warehouse.LoadByRange("TPCR", tpcr, "NationKey", 0,
                            config.num_nations - 1, {"CustKey", "ClerkKey"});
  if (!load.ok()) {
    std::cerr << load << "\n";
    return 1;
  }

  const NamedQuery queries[] = {
      {"group reduction (CustKey)", queries::GroupReductionQuery("CustKey")},
      {"coalescing (ClerkKey)", queries::CoalescingQuery("ClerkKey")},
      {"sync reduction (CustKey)", queries::SyncReductionQuery("CustKey")},
      {"combined (CustKey)", queries::CombinedQuery("CustKey")},
  };

  for (const NamedQuery& q : queries) {
    std::cout << "=== " << q.name << " ===\n";
    auto naive = warehouse.Execute(q.expr, OptimizerOptions::None());
    if (!naive.ok()) {
      std::cerr << naive.status() << "\n";
      return 1;
    }
    auto optimized = warehouse.Execute(q.expr, OptimizerOptions::All());
    if (!optimized.ok()) {
      std::cerr << optimized.status() << "\n";
      return 1;
    }
    auto reference = warehouse.ExecuteCentralized(q.expr);
    if (!reference.ok()) {
      std::cerr << reference.status() << "\n";
      return 1;
    }
    const bool naive_ok = naive->table.SameRowMultiset(*reference);
    const bool optimized_ok = optimized->table.SameRowMultiset(*reference);

    std::printf("  groups: %lld   correct: naive=%s optimized=%s\n",
                static_cast<long long>(reference->num_rows()),
                naive_ok ? "yes" : "NO", optimized_ok ? "yes" : "NO");
    std::printf("  naive     : %d rounds, %8.3fs response, %s traffic\n",
                naive->metrics.NumRounds(), naive->metrics.ResponseSeconds(),
                HumanBytes(static_cast<double>(naive->metrics.TotalBytes()))
                    .c_str());
    std::printf("  optimized : %d rounds, %8.3fs response, %s traffic\n",
                optimized->metrics.NumRounds(),
                optimized->metrics.ResponseSeconds(),
                HumanBytes(
                    static_cast<double>(optimized->metrics.TotalBytes()))
                    .c_str());
    std::printf("  speedup   : %.2fx time, %.2fx traffic\n\n",
                naive->metrics.ResponseSeconds() /
                    optimized->metrics.ResponseSeconds(),
                static_cast<double>(naive->metrics.TotalBytes()) /
                    static_cast<double>(optimized->metrics.TotalBytes()));
    if (!naive_ok || !optimized_ok) return 1;
  }
  return 0;
}

}  // namespace

int main() { return Run(); }

#include "agg/aggregate.h"

#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace skalla {

namespace {

/// Double addition with a pinned NaN rule: a naked `a + b` leaves the
/// result's NaN payload/sign to the hardware's operand order, which the
/// compiler may commute differently at different inlining sites (x86
/// addsd keeps the *destination* operand's NaN). That breaks byte
/// identity between the boxed accumulation and the batch kernels when a
/// generated NaN (inf + -inf → negative quiet NaN) later meets an input
/// NaN. Resolving NaNs explicitly — accumulator first — makes every
/// call site agree bit-for-bit.
inline double AddDoubles(double a, double b) {
  if (std::isnan(a)) return a;
  if (std::isnan(b)) return b;
  return a + b;
}

/// Null-aware numeric addition with int64 → double promotion.
Value AddValues(const Value& a, const Value& b) {
  if (a.is_null()) return b;
  if (b.is_null()) return a;
  if (a.is_int64() && b.is_int64()) return Value(a.AsInt64() + b.AsInt64());
  return Value(AddDoubles(a.ToDouble(), b.ToDouble()));
}

Value MinValue(const Value& a, const Value& b) {
  if (a.is_null()) return b;
  if (b.is_null()) return a;
  return a.Compare(b) <= 0 ? a : b;
}

Value MaxValue(const Value& a, const Value& b) {
  if (a.is_null()) return b;
  if (b.is_null()) return a;
  return a.Compare(b) >= 0 ? a : b;
}

}  // namespace

const char* AggFuncToString(AggFunc func) {
  switch (func) {
    case AggFunc::kCount:
      return "count";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kAvg:
      return "avg";
    case AggFunc::kVar:
      return "var";
    case AggFunc::kStdDev:
      return "stddev";
  }
  return "?";
}

Result<AggFunc> AggFuncFromString(const std::string& name) {
  const std::string lower = ToLower(name);
  if (lower == "count" || lower == "cnt") return AggFunc::kCount;
  if (lower == "sum") return AggFunc::kSum;
  if (lower == "min") return AggFunc::kMin;
  if (lower == "max") return AggFunc::kMax;
  if (lower == "avg" || lower == "average") return AggFunc::kAvg;
  if (lower == "var" || lower == "variance") return AggFunc::kVar;
  if (lower == "stddev" || lower == "std") return AggFunc::kStdDev;
  return Status::InvalidArgument("unknown aggregate function '" + name + "'");
}

std::string AggSpec::ToString() const {
  return StrFormat("%s(%s) -> %s", AggFuncToString(func), input.c_str(),
                   output.c_str());
}

int SubArity(AggFunc func) {
  switch (func) {
    case AggFunc::kAvg:
      return 2;
    case AggFunc::kVar:
    case AggFunc::kStdDev:
      return 3;
    default:
      return 1;
  }
}

namespace {

Result<ValueType> InputType(const AggSpec& spec, const Schema& detail) {
  if (spec.is_count_star()) return ValueType::kInt64;
  SKALLA_ASSIGN_OR_RETURN(int idx, detail.MustIndexOf(spec.input));
  return detail.field(idx).type;
}

}  // namespace

Result<Field> FinalFieldFor(const AggSpec& spec, const Schema& detail) {
  SKALLA_ASSIGN_OR_RETURN(ValueType input_type, InputType(spec, detail));
  switch (spec.func) {
    case AggFunc::kCount:
      return Field{spec.output, ValueType::kInt64};
    case AggFunc::kSum:
    case AggFunc::kAvg:
    case AggFunc::kVar:
    case AggFunc::kStdDev:
      if (input_type == ValueType::kString) {
        return Status::TypeError(StrFormat("%s over string column '%s'",
                                           AggFuncToString(spec.func),
                                           spec.input.c_str()));
      }
      return Field{spec.output, spec.func == AggFunc::kSum
                                    ? input_type
                                    : ValueType::kDouble};
    case AggFunc::kMin:
    case AggFunc::kMax:
      return Field{spec.output, input_type};
  }
  return Status::Internal("unreachable agg func");
}

Result<std::vector<Field>> SubFieldsFor(const AggSpec& spec,
                                        const Schema& detail) {
  if (spec.func == AggFunc::kAvg || spec.func == AggFunc::kVar ||
      spec.func == AggFunc::kStdDev) {
    SKALLA_ASSIGN_OR_RETURN(ValueType input_type, InputType(spec, detail));
    if (input_type == ValueType::kString) {
      return Status::TypeError(StrFormat("%s over string column '%s'",
                                         AggFuncToString(spec.func),
                                         spec.input.c_str()));
    }
    std::vector<Field> fields{Field{spec.output + "__sum", input_type}};
    if (spec.func != AggFunc::kAvg) {
      fields.push_back(Field{spec.output + "__sumsq", input_type});
    }
    fields.push_back(Field{spec.output + "__cnt", ValueType::kInt64});
    return fields;
  }
  SKALLA_ASSIGN_OR_RETURN(Field f, FinalFieldFor(spec, detail));
  return std::vector<Field>{std::move(f)};
}

void InitSubValues(AggFunc func, Value* out) {
  switch (func) {
    case AggFunc::kCount:
      out[0] = Value(int64_t{0});
      return;
    case AggFunc::kSum:
    case AggFunc::kMin:
    case AggFunc::kMax:
      out[0] = Value::Null();
      return;
    case AggFunc::kAvg:
      out[0] = Value::Null();
      out[1] = Value(int64_t{0});
      return;
    case AggFunc::kVar:
    case AggFunc::kStdDev:
      out[0] = Value::Null();
      out[1] = Value::Null();
      out[2] = Value(int64_t{0});
      return;
  }
}

void MergeSubValues(AggFunc func, const Value* sub, Value* acc) {
  switch (func) {
    case AggFunc::kCount:
    case AggFunc::kSum:
      acc[0] = AddValues(acc[0], sub[0]);
      return;
    case AggFunc::kMin:
      acc[0] = MinValue(acc[0], sub[0]);
      return;
    case AggFunc::kMax:
      acc[0] = MaxValue(acc[0], sub[0]);
      return;
    case AggFunc::kAvg:
      acc[0] = AddValues(acc[0], sub[0]);
      acc[1] = AddValues(acc[1], sub[1]);
      return;
    case AggFunc::kVar:
    case AggFunc::kStdDev:
      acc[0] = AddValues(acc[0], sub[0]);
      acc[1] = AddValues(acc[1], sub[1]);
      acc[2] = AddValues(acc[2], sub[2]);
      return;
  }
}

Value FinalizeSubValues(AggFunc func, const Value* acc) {
  switch (func) {
    case AggFunc::kCount:
      return acc[0].is_null() ? Value(int64_t{0}) : acc[0];
    case AggFunc::kSum:
    case AggFunc::kMin:
    case AggFunc::kMax:
      return acc[0];
    case AggFunc::kAvg: {
      const int64_t cnt = acc[1].is_null() ? 0 : acc[1].AsInt64();
      if (cnt == 0 || acc[0].is_null()) return Value::Null();
      return Value(acc[0].ToDouble() / static_cast<double>(cnt));
    }
    case AggFunc::kVar:
    case AggFunc::kStdDev: {
      const int64_t cnt = acc[2].is_null() ? 0 : acc[2].AsInt64();
      if (cnt == 0 || acc[0].is_null() || acc[1].is_null()) {
        return Value::Null();
      }
      const double n = static_cast<double>(cnt);
      const double mean = acc[0].ToDouble() / n;
      double variance = acc[1].ToDouble() / n - mean * mean;
      if (variance < 0) variance = 0;  // numeric noise guard
      return Value(func == AggFunc::kVar ? variance
                                         : std::sqrt(variance));
    }
  }
  return Value::Null();
}

void AggState::Update(const Value& v) {
  if (v.is_null()) return;
  switch (func_) {
    case AggFunc::kCount:
      ++count_;
      return;
    case AggFunc::kSum:
    case AggFunc::kAvg:
      acc_ = AddValues(acc_, v);
      ++count_;
      return;
    case AggFunc::kVar:
    case AggFunc::kStdDev: {
      acc_ = AddValues(acc_, v);
      const Value square = v.is_int64()
                               ? Value(v.AsInt64() * v.AsInt64())
                               : Value(v.ToDouble() * v.ToDouble());
      acc_sq_ = AddValues(acc_sq_, square);
      ++count_;
      return;
    }
    case AggFunc::kMin:
      acc_ = MinValue(acc_, v);
      ++count_;
      return;
    case AggFunc::kMax:
      acc_ = MaxValue(acc_, v);
      ++count_;
      return;
  }
}

void AggState::UpdateInt64(int64_t v) {
  switch (func_) {
    case AggFunc::kCount:
      ++count_;
      return;
    case AggFunc::kSum:
    case AggFunc::kAvg:
      // AddValues: NULL adopts v; int64 accumulators stay int64; a double
      // accumulator (mixed-type history) promotes v.
      if (acc_.is_null()) {
        acc_ = Value(v);
      } else if (acc_.is_int64()) {
        acc_ = Value(acc_.AsInt64() + v);
      } else {
        acc_ = Value(acc_.ToDouble() + static_cast<double>(v));
      }
      ++count_;
      return;
    case AggFunc::kVar:
    case AggFunc::kStdDev:
      // Both carriers int64 (or fresh): exact arithmetic, same ops as the
      // scalar Update — sum, then the same v*v square, then the count.
      if ((acc_.is_null() || acc_.is_int64()) &&
          (acc_sq_.is_null() || acc_sq_.is_int64())) {
        acc_ = Value(acc_.is_null() ? v : acc_.AsInt64() + v);
        const int64_t square = v * v;
        acc_sq_ = Value(acc_sq_.is_null() ? square
                                          : acc_sq_.AsInt64() + square);
        ++count_;
        return;
      }
      Update(Value(v));  // type-deviant carrier: keep one code path
      return;
    case AggFunc::kMin:
      // MinValue keeps the accumulator on ties and replaces only on a
      // strictly greater accumulator.
      if (acc_.is_null()) {
        acc_ = Value(v);
      } else if (acc_.is_int64()) {
        if (acc_.AsInt64() > v) acc_ = Value(v);
      } else if (acc_.is_double()) {
        // Compare(double, int64) order: NaN accumulators compare "equal"
        // to everything, so they are kept — same as the scalar path.
        if (acc_.AsDouble() > static_cast<double>(v)) acc_ = Value(v);
      } else {
        acc_ = MinValue(acc_, Value(v));
      }
      ++count_;
      return;
    case AggFunc::kMax:
      if (acc_.is_null()) {
        acc_ = Value(v);
      } else if (acc_.is_int64()) {
        if (acc_.AsInt64() < v) acc_ = Value(v);
      } else if (acc_.is_double()) {
        if (acc_.AsDouble() < static_cast<double>(v)) acc_ = Value(v);
      } else {
        acc_ = MaxValue(acc_, Value(v));
      }
      ++count_;
      return;
  }
}

void AggState::UpdateDouble(double v) {
  switch (func_) {
    case AggFunc::kCount:
      ++count_;
      return;
    case AggFunc::kSum:
    case AggFunc::kAvg:
      if (acc_.is_null()) {
        acc_ = Value(v);  // adopt v, never seed 0.0 (preserves -0.0)
      } else if (acc_.is_numeric()) {
        acc_ = Value(AddDoubles(acc_.ToDouble(), v));
      } else {
        acc_ = AddValues(acc_, Value(v));
      }
      ++count_;
      return;
    case AggFunc::kVar:
    case AggFunc::kStdDev:
      // Each double carrier adopts its first value (AddValues(NULL, v)
      // returns v itself — preserves -0.0); the square is the scalar's
      // v*v product, fed in the same order.
      if ((acc_.is_null() || acc_.is_double()) &&
          (acc_sq_.is_null() || acc_sq_.is_double())) {
        acc_ = Value(acc_.is_null() ? v : AddDoubles(acc_.AsDouble(), v));
        const double square = v * v;
        acc_sq_ =
            Value(acc_sq_.is_null() ? square
                                    : AddDoubles(acc_sq_.AsDouble(), square));
        ++count_;
        return;
      }
      Update(Value(v));
      return;
    case AggFunc::kMin:
      if (acc_.is_null()) {
        acc_ = Value(v);
      } else if (acc_.is_numeric()) {
        // acc > v is false under NaN on either side: NaN inputs never
        // displace the accumulator and a NaN accumulator is never
        // displaced — exactly Value::Compare's incomparable-NaN behavior.
        if (acc_.ToDouble() > v) acc_ = Value(v);
      } else {
        acc_ = MinValue(acc_, Value(v));
      }
      ++count_;
      return;
    case AggFunc::kMax:
      if (acc_.is_null()) {
        acc_ = Value(v);
      } else if (acc_.is_numeric()) {
        if (acc_.ToDouble() < v) acc_ = Value(v);
      } else {
        acc_ = MaxValue(acc_, Value(v));
      }
      ++count_;
      return;
  }
}

namespace {

inline bool BitmapValid(const uint64_t* valid, int64_t i) {
  return valid == nullptr ||
         ((valid[static_cast<size_t>(i) >> 6] >> (i & 63)) & 1) != 0;
}

}  // namespace

void AggState::UpdateBatchInt64(const int64_t* values, const uint64_t* valid,
                                const int64_t* sel, size_t n) {
  switch (func_) {
    case AggFunc::kCount: {
      int64_t c = 0;
      for (size_t k = 0; k < n; ++k) c += BitmapValid(valid, sel[k]) ? 1 : 0;
      count_ += c;
      return;
    }
    case AggFunc::kSum:
    case AggFunc::kAvg: {
      if (acc_.is_null() || acc_.is_int64()) {
        // int64 addition is exact (mod 2^64), so seeding 0 is safe here —
        // unlike the double kernel below.
        int64_t s = acc_.is_null() ? 0 : acc_.AsInt64();
        int64_t c = 0;
        for (size_t k = 0; k < n; ++k) {
          const int64_t i = sel[k];
          if (!BitmapValid(valid, i)) continue;
          s += values[i];
          ++c;
        }
        if (c > 0) {
          acc_ = Value(s);
          count_ += c;
        }
        return;
      }
      break;  // type-deviant accumulator: boxed fallback
    }
    case AggFunc::kVar:
    case AggFunc::kStdDev: {
      // Three carriers (sum, sum of squares, count), each folded with the
      // exact scalar op sequence: int64 arithmetic is exact, so seeding 0
      // is safe, and the square is the same int64 product the scalar
      // Update computes before AddValues.
      if ((acc_.is_null() || acc_.is_int64()) &&
          (acc_sq_.is_null() || acc_sq_.is_int64())) {
        int64_t s = acc_.is_null() ? 0 : acc_.AsInt64();
        int64_t sq = acc_sq_.is_null() ? 0 : acc_sq_.AsInt64();
        int64_t c = 0;
        for (size_t k = 0; k < n; ++k) {
          const int64_t i = sel[k];
          if (!BitmapValid(valid, i)) continue;
          const int64_t v = values[i];
          s += v;
          sq += v * v;
          ++c;
        }
        if (c > 0) {
          acc_ = Value(s);
          acc_sq_ = Value(sq);
          count_ += c;
        }
        return;
      }
      break;  // type-deviant carrier: boxed fallback
    }
    case AggFunc::kMin: {
      if (acc_.is_null() || acc_.is_int64()) {
        bool have = !acc_.is_null();
        int64_t cur = have ? acc_.AsInt64() : 0;
        int64_t c = 0;
        for (size_t k = 0; k < n; ++k) {
          const int64_t i = sel[k];
          if (!BitmapValid(valid, i)) continue;
          const int64_t v = values[i];
          if (!have) {
            cur = v;
            have = true;
          } else if (cur > v) {
            cur = v;
          }
          ++c;
        }
        if (c > 0) {
          acc_ = Value(cur);
          count_ += c;
        }
        return;
      }
      break;
    }
    case AggFunc::kMax: {
      if (acc_.is_null() || acc_.is_int64()) {
        bool have = !acc_.is_null();
        int64_t cur = have ? acc_.AsInt64() : 0;
        int64_t c = 0;
        for (size_t k = 0; k < n; ++k) {
          const int64_t i = sel[k];
          if (!BitmapValid(valid, i)) continue;
          const int64_t v = values[i];
          if (!have) {
            cur = v;
            have = true;
          } else if (cur < v) {
            cur = v;
          }
          ++c;
        }
        if (c > 0) {
          acc_ = Value(cur);
          count_ += c;
        }
        return;
      }
      break;
    }
  }
  for (size_t k = 0; k < n; ++k) {
    if (BitmapValid(valid, sel[k])) UpdateInt64(values[sel[k]]);
  }
}

void AggState::UpdateBatchDouble(const double* values, const uint64_t* valid,
                                 const int64_t* sel, size_t n) {
  switch (func_) {
    case AggFunc::kCount: {
      int64_t c = 0;
      for (size_t k = 0; k < n; ++k) c += BitmapValid(valid, sel[k]) ? 1 : 0;
      count_ += c;
      return;
    }
    case AggFunc::kSum:
    case AggFunc::kAvg: {
      if (acc_.is_null() || acc_.is_double()) {
        // Unbox once, add in selection order, rebox once. A NULL
        // accumulator adopts the first value (AddValues(NULL, v) returns v
        // itself) instead of computing 0.0 + v, which would lose -0.0 and
        // reassociate nothing else.
        bool have = !acc_.is_null();
        double s = have ? acc_.AsDouble() : 0.0;
        int64_t c = 0;
        for (size_t k = 0; k < n; ++k) {
          const int64_t i = sel[k];
          if (!BitmapValid(valid, i)) continue;
          const double v = values[i];
          if (!have) {
            s = v;
            have = true;
          } else {
            s = AddDoubles(s, v);
          }
          ++c;
        }
        if (c > 0) {
          acc_ = Value(s);
          count_ += c;
        }
        return;
      }
      break;
    }
    case AggFunc::kVar:
    case AggFunc::kStdDev: {
      // Three carriers; each double carrier adopts its first value instead
      // of computing 0.0 + v (AddValues(NULL, v) returns v — preserves
      // -0.0), and the square is the same v*v product the scalar Update
      // feeds AddValues, in the same per-element order.
      if ((acc_.is_null() || acc_.is_double()) &&
          (acc_sq_.is_null() || acc_sq_.is_double())) {
        bool have_s = !acc_.is_null();
        double s = have_s ? acc_.AsDouble() : 0.0;
        bool have_sq = !acc_sq_.is_null();
        double sq = have_sq ? acc_sq_.AsDouble() : 0.0;
        int64_t c = 0;
        for (size_t k = 0; k < n; ++k) {
          const int64_t i = sel[k];
          if (!BitmapValid(valid, i)) continue;
          const double v = values[i];
          if (!have_s) {
            s = v;
            have_s = true;
          } else {
            s = AddDoubles(s, v);
          }
          const double square = v * v;
          if (!have_sq) {
            sq = square;
            have_sq = true;
          } else {
            sq = AddDoubles(sq, square);
          }
          ++c;
        }
        if (c > 0) {
          acc_ = Value(s);
          acc_sq_ = Value(sq);
          count_ += c;
        }
        return;
      }
      break;  // type-deviant carrier: boxed fallback
    }
    case AggFunc::kMin: {
      if (acc_.is_null() || acc_.is_double()) {
        bool have = !acc_.is_null();
        double cur = have ? acc_.AsDouble() : 0.0;
        int64_t c = 0;
        for (size_t k = 0; k < n; ++k) {
          const int64_t i = sel[k];
          if (!BitmapValid(valid, i)) continue;
          const double v = values[i];
          if (!have) {
            cur = v;
            have = true;
          } else if (cur > v) {  // false under NaN: keeps the accumulator
            cur = v;
          }
          ++c;
        }
        if (c > 0) {
          acc_ = Value(cur);
          count_ += c;
        }
        return;
      }
      break;
    }
    case AggFunc::kMax: {
      if (acc_.is_null() || acc_.is_double()) {
        bool have = !acc_.is_null();
        double cur = have ? acc_.AsDouble() : 0.0;
        int64_t c = 0;
        for (size_t k = 0; k < n; ++k) {
          const int64_t i = sel[k];
          if (!BitmapValid(valid, i)) continue;
          const double v = values[i];
          if (!have) {
            cur = v;
            have = true;
          } else if (cur < v) {
            cur = v;
          }
          ++c;
        }
        if (c > 0) {
          acc_ = Value(cur);
          count_ += c;
        }
        return;
      }
      break;
    }
  }
  for (size_t k = 0; k < n; ++k) {
    if (BitmapValid(valid, sel[k])) UpdateDouble(values[sel[k]]);
  }
}

void AggState::Merge(const AggState& other) {
  count_ += other.count_;
  switch (func_) {
    case AggFunc::kCount:
      return;
    case AggFunc::kSum:
    case AggFunc::kAvg:
      acc_ = AddValues(acc_, other.acc_);
      return;
    case AggFunc::kVar:
    case AggFunc::kStdDev:
      acc_ = AddValues(acc_, other.acc_);
      acc_sq_ = AddValues(acc_sq_, other.acc_sq_);
      return;
    case AggFunc::kMin:
      acc_ = MinValue(acc_, other.acc_);
      return;
    case AggFunc::kMax:
      acc_ = MaxValue(acc_, other.acc_);
      return;
  }
}

void AggState::EmitSub(std::vector<Value>* out) const {
  switch (func_) {
    case AggFunc::kCount:
      out->push_back(Value(count_));
      return;
    case AggFunc::kSum:
    case AggFunc::kMin:
    case AggFunc::kMax:
      out->push_back(acc_);
      return;
    case AggFunc::kAvg:
      out->push_back(acc_);
      out->push_back(Value(count_));
      return;
    case AggFunc::kVar:
    case AggFunc::kStdDev:
      out->push_back(acc_);
      out->push_back(acc_sq_);
      out->push_back(Value(count_));
      return;
  }
}

Value AggState::Final() const {
  switch (func_) {
    case AggFunc::kCount:
      return Value(count_);
    case AggFunc::kSum:
    case AggFunc::kMin:
    case AggFunc::kMax:
      return acc_;
    case AggFunc::kAvg:
      if (count_ == 0) return Value::Null();
      return Value(acc_.ToDouble() / static_cast<double>(count_));
    case AggFunc::kVar:
    case AggFunc::kStdDev: {
      if (count_ == 0) return Value::Null();
      Value sub[3] = {acc_, acc_sq_, Value(count_)};
      return FinalizeSubValues(func_, sub);
    }
  }
  return Value::Null();
}

}  // namespace skalla

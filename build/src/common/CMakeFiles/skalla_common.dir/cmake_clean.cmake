file(REMOVE_RECURSE
  "CMakeFiles/skalla_common.dir/logging.cc.o"
  "CMakeFiles/skalla_common.dir/logging.cc.o.d"
  "CMakeFiles/skalla_common.dir/random.cc.o"
  "CMakeFiles/skalla_common.dir/random.cc.o.d"
  "CMakeFiles/skalla_common.dir/status.cc.o"
  "CMakeFiles/skalla_common.dir/status.cc.o.d"
  "CMakeFiles/skalla_common.dir/string_util.cc.o"
  "CMakeFiles/skalla_common.dir/string_util.cc.o.d"
  "libskalla_common.a"
  "libskalla_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skalla_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

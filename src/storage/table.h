#ifndef SKALLA_STORAGE_TABLE_H_
#define SKALLA_STORAGE_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/row.h"
#include "storage/schema.h"
#include "storage/wire_format.h"

namespace skalla {

class ColumnarTable;

/// \brief An in-memory row-store relation: a schema plus a vector of rows.
///
/// Table is the unit of data exchanged between Skalla sites and the
/// coordinator (after binary serialization, see serializer.h) and the unit
/// operated on by the local engine (engine/operators.h).
class Table {
 public:
  Table() : schema_(MakeSchema({})) {}
  explicit Table(SchemaPtr schema) : schema_(std::move(schema)) {}
  Table(SchemaPtr schema, std::vector<Row> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  const Schema& schema() const { return *schema_; }
  const SchemaPtr& schema_ptr() const { return schema_; }

  int64_t num_rows() const { return static_cast<int64_t>(rows_.size()); }
  bool empty() const { return rows_.empty(); }

  const Row& row(int64_t i) const { return rows_[static_cast<size_t>(i)]; }
  Row& mutable_row(int64_t i) {
    columnar_cache_.reset();
    return rows_[static_cast<size_t>(i)];
  }
  const std::vector<Row>& rows() const { return rows_; }

  const Value& Get(int64_t row, int col) const {
    return rows_[static_cast<size_t>(row)][static_cast<size_t>(col)];
  }

  /// Appends a row; the caller must supply exactly one value per column.
  void AddRow(Row row);

  /// Appends all rows of `other`; schemas must be field-count compatible.
  void Append(const Table& other);

  void Reserve(int64_t n) { rows_.reserve(static_cast<size_t>(n)); }
  void Clear() {
    rows_.clear();
    columnar_cache_.reset();
  }

  /// The lazily built, cached columnar snapshot of this table
  /// (storage/columnar.h). Thread-safe once: concurrent readers of a
  /// non-mutating table share one snapshot; every mutator drops the cache.
  /// Defined in columnar.cc.
  std::shared_ptr<const ColumnarTable> columnar() const;

  /// Stable sort by the given columns ascending (Value::Compare order).
  void SortBy(const std::vector<int>& cols);

  /// Sort by all columns; used to compare relations as multisets in tests.
  void SortAllColumns();

  /// Payload bytes of the table under the given wire format (exact: the
  /// serializer's output minus its fixed magic/schema/nrows header). With
  /// no argument, reports the process-default format. Zero when empty.
  size_t SerializedSize(WireFormat format = DefaultWireFormat()) const;

  /// Renders the first `max_rows` rows as an aligned ASCII table.
  std::string ToString(int64_t max_rows = 20) const;

  /// True if both tables contain the same multiset of rows (schema
  /// field-count must match; compares after sorting copies).
  bool SameRowMultiset(const Table& other) const;

 private:
  SchemaPtr schema_;
  std::vector<Row> rows_;
  /// Copies share the (immutable) snapshot; mutation resets only the
  /// mutated table's pointer.
  mutable std::shared_ptr<const ColumnarTable> columnar_cache_;
};

}  // namespace skalla

#endif  // SKALLA_STORAGE_TABLE_H_

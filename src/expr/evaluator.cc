#include "expr/evaluator.h"

#include <cmath>

#include "common/logging.h"

namespace skalla {

bool ValueIsTrue(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return false;
    case ValueType::kInt64:
      return v.AsInt64() != 0;
    case ValueType::kDouble:
      return v.AsDouble() != 0.0;
    case ValueType::kString:
      return !v.AsString().empty();
  }
  return false;
}

namespace {

/// Three-valued truth for Kleene logic.
enum class Truth { kFalse, kTrue, kUnknown };

Truth ToTruth(const Value& v) {
  if (v.is_null()) return Truth::kUnknown;
  return ValueIsTrue(v) ? Truth::kTrue : Truth::kFalse;
}

Value FromTruth(Truth t) {
  switch (t) {
    case Truth::kFalse:
      return Value(int64_t{0});
    case Truth::kTrue:
      return Value(int64_t{1});
    case Truth::kUnknown:
      return Value::Null();
  }
  return Value::Null();
}

Value EvalArithmetic(BinaryOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  // Division always happens in double precision: GMDJ conditions such as
  // `R.NumBytes >= B.sum1 / B.cnt1` (Example 1 of the paper) expect real
  // averages, not integer division.
  if (op == BinaryOp::kDiv) {
    const double denom = r.ToDouble();
    if (denom == 0.0) return Value::Null();
    return Value(l.ToDouble() / denom);
  }
  if (op == BinaryOp::kMod) {
    if (!l.is_int64() || !r.is_int64() || r.AsInt64() == 0) {
      return Value::Null();
    }
    return Value(l.AsInt64() % r.AsInt64());
  }
  if (l.is_int64() && r.is_int64()) {
    const int64_t a = l.AsInt64();
    const int64_t b = r.AsInt64();
    switch (op) {
      case BinaryOp::kAdd:
        return Value(a + b);
      case BinaryOp::kSub:
        return Value(a - b);
      case BinaryOp::kMul:
        return Value(a * b);
      default:
        break;
    }
  }
  const double a = l.ToDouble();
  const double b = r.ToDouble();
  switch (op) {
    case BinaryOp::kAdd:
      return Value(a + b);
    case BinaryOp::kSub:
      return Value(a - b);
    case BinaryOp::kMul:
      return Value(a * b);
    default:
      break;
  }
  return Value::Null();
}

Value EvalComparison(BinaryOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  const int cmp = l.Compare(r);
  bool out = false;
  switch (op) {
    case BinaryOp::kEq:
      out = (cmp == 0);
      break;
    case BinaryOp::kNe:
      out = (cmp != 0);
      break;
    case BinaryOp::kLt:
      out = (cmp < 0);
      break;
    case BinaryOp::kLe:
      out = (cmp <= 0);
      break;
    case BinaryOp::kGt:
      out = (cmp > 0);
      break;
    case BinaryOp::kGe:
      out = (cmp >= 0);
      break;
    default:
      break;
  }
  return Value(int64_t{out ? 1 : 0});
}

}  // namespace

Result<CompiledExpr> CompiledExpr::Compile(const ExprPtr& expr,
                                           const Schema* base_schema,
                                           const Schema* detail_schema) {
  CompiledExpr compiled;

  // Recursive lowering returning (node id, static type).
  struct Lowerer {
    CompiledExpr* out;
    const Schema* base_schema;
    const Schema* detail_schema;

    Result<std::pair<int, ValueType>> Lower(const Expr& e) {
      switch (e.kind()) {
        case ExprKind::kColumn: {
          const auto& col = static_cast<const ColumnExpr&>(e);
          const Schema* schema =
              col.side() == Side::kBase ? base_schema : detail_schema;
          if (schema == nullptr) {
            return Status::InvalidArgument(
                std::string("no ") +
                (col.side() == Side::kBase ? "base" : "detail") +
                " schema bound for column reference " + col.ToString());
          }
          SKALLA_ASSIGN_OR_RETURN(int idx, schema->MustIndexOf(col.name()));
          Node node;
          node.kind = ExprKind::kColumn;
          node.side = col.side();
          node.col_index = idx;
          out->nodes_.push_back(std::move(node));
          return std::make_pair(static_cast<int>(out->nodes_.size()) - 1,
                                schema->field(idx).type);
        }
        case ExprKind::kLiteral: {
          const auto& lit = static_cast<const LiteralExpr&>(e);
          Node node;
          node.kind = ExprKind::kLiteral;
          node.literal = lit.value();
          out->nodes_.push_back(std::move(node));
          return std::make_pair(static_cast<int>(out->nodes_.size()) - 1,
                                lit.value().type());
        }
        case ExprKind::kUnary: {
          const auto& un = static_cast<const UnaryExpr&>(e);
          SKALLA_ASSIGN_OR_RETURN(auto operand, Lower(*un.operand()));
          if (un.op() == UnaryOp::kNeg &&
              operand.second == ValueType::kString) {
            return Status::TypeError("cannot negate a string: " +
                                     e.ToString());
          }
          Node node;
          node.kind = ExprKind::kUnary;
          node.unary_op = un.op();
          node.left = operand.first;
          out->nodes_.push_back(std::move(node));
          const ValueType type = un.op() == UnaryOp::kNeg
                                     ? operand.second
                                     : ValueType::kInt64;
          return std::make_pair(static_cast<int>(out->nodes_.size()) - 1,
                                type);
        }
        case ExprKind::kBinary: {
          const auto& bin = static_cast<const BinaryExpr&>(e);
          SKALLA_ASSIGN_OR_RETURN(auto left, Lower(*bin.left()));
          SKALLA_ASSIGN_OR_RETURN(auto right, Lower(*bin.right()));
          SKALLA_ASSIGN_OR_RETURN(
              ValueType type,
              CheckTypes(bin.op(), left.second, right.second, e));
          Node node;
          node.kind = ExprKind::kBinary;
          node.binary_op = bin.op();
          node.left = left.first;
          node.right = right.first;
          out->nodes_.push_back(std::move(node));
          return std::make_pair(static_cast<int>(out->nodes_.size()) - 1,
                                type);
        }
      }
      return Status::Internal("unreachable expr kind");
    }

    Result<ValueType> CheckTypes(BinaryOp op, ValueType l, ValueType r,
                                 const Expr& e) {
      auto numeric = [](ValueType t) {
        return t == ValueType::kInt64 || t == ValueType::kDouble ||
               t == ValueType::kNull;
      };
      if (IsArithmetic(op)) {
        if (!numeric(l) || !numeric(r)) {
          return Status::TypeError("arithmetic on non-numeric operands: " +
                                   e.ToString());
        }
        if (op == BinaryOp::kDiv) return ValueType::kDouble;
        if (op == BinaryOp::kMod) return ValueType::kInt64;
        return (l == ValueType::kDouble || r == ValueType::kDouble)
                   ? ValueType::kDouble
                   : ValueType::kInt64;
      }
      if (IsComparison(op)) {
        const bool l_str = l == ValueType::kString;
        const bool r_str = r == ValueType::kString;
        if (l_str != r_str && l != ValueType::kNull && r != ValueType::kNull) {
          return Status::TypeError("comparison of string and numeric: " +
                                   e.ToString());
        }
        return ValueType::kInt64;
      }
      // AND / OR accept anything truth-convertible.
      return ValueType::kInt64;
    }
  };

  Lowerer lowerer{&compiled, base_schema, detail_schema};
  SKALLA_ASSIGN_OR_RETURN(auto root, lowerer.Lower(*expr));
  compiled.root_ = root.first;
  compiled.result_type_ = root.second;
  return compiled;
}

Value CompiledExpr::EvalNode(int node_id, const Row* base_row,
                             const Row* detail_row) const {
  const Node& node = nodes_[static_cast<size_t>(node_id)];
  switch (node.kind) {
    case ExprKind::kColumn: {
      const Row* row = node.side == Side::kBase ? base_row : detail_row;
      SKALLA_DCHECK(row != nullptr);
      return (*row)[static_cast<size_t>(node.col_index)];
    }
    case ExprKind::kLiteral:
      return node.literal;
    case ExprKind::kUnary: {
      const Value operand = EvalNode(node.left, base_row, detail_row);
      if (node.unary_op == UnaryOp::kIsNull) {
        return Value(int64_t{operand.is_null() ? 1 : 0});
      }
      if (node.unary_op == UnaryOp::kNot) {
        const Truth t = ToTruth(operand);
        if (t == Truth::kUnknown) return Value::Null();
        return Value(int64_t{t == Truth::kTrue ? 0 : 1});
      }
      if (operand.is_null()) return Value::Null();
      if (operand.is_int64()) return Value(-operand.AsInt64());
      return Value(-operand.ToDouble());
    }
    case ExprKind::kBinary: {
      if (node.binary_op == BinaryOp::kAnd) {
        const Truth l = ToTruth(EvalNode(node.left, base_row, detail_row));
        if (l == Truth::kFalse) return Value(int64_t{0});
        const Truth r = ToTruth(EvalNode(node.right, base_row, detail_row));
        if (r == Truth::kFalse) return Value(int64_t{0});
        if (l == Truth::kUnknown || r == Truth::kUnknown) return Value::Null();
        return Value(int64_t{1});
      }
      if (node.binary_op == BinaryOp::kOr) {
        const Truth l = ToTruth(EvalNode(node.left, base_row, detail_row));
        if (l == Truth::kTrue) return Value(int64_t{1});
        const Truth r = ToTruth(EvalNode(node.right, base_row, detail_row));
        if (r == Truth::kTrue) return Value(int64_t{1});
        if (l == Truth::kUnknown || r == Truth::kUnknown) return Value::Null();
        return Value(int64_t{0});
      }
      const Value l = EvalNode(node.left, base_row, detail_row);
      const Value r = EvalNode(node.right, base_row, detail_row);
      if (IsArithmetic(node.binary_op)) {
        return EvalArithmetic(node.binary_op, l, r);
      }
      return EvalComparison(node.binary_op, l, r);
    }
  }
  return Value::Null();
}

Value CompiledExpr::Eval(const Row* base_row, const Row* detail_row) const {
  return EvalNode(root_, base_row, detail_row);
}

bool CompiledExpr::EvalBool(const Row* base_row, const Row* detail_row) const {
  return ValueIsTrue(Eval(base_row, detail_row));
}

}  // namespace skalla

#ifndef SKALLA_COMMON_STOPWATCH_H_
#define SKALLA_COMMON_STOPWATCH_H_

#include <chrono>

namespace skalla {

/// \brief Wall-clock stopwatch used to attribute CPU time to plan phases.
///
/// Skalla simulates a multi-site warehouse in one process; per-site compute
/// time is measured with this class and combined with the simulated network
/// cost model (see net/cost_model.h) into a modelled response time.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace skalla

#endif  // SKALLA_COMMON_STOPWATCH_H_

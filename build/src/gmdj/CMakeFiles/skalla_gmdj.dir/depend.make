# Empty dependencies file for skalla_gmdj.
# This may be replaced when dependencies are built.

#include "net/sim_network.h"

#include <sstream>

#include "common/string_util.h"
#include "obs/journal.h"
#include "obs/trace.h"

namespace skalla {

void SimNetwork::BeginRound(std::string label) {
  round_labels_.push_back(std::move(label));
  current_round_ = static_cast<int>(round_labels_.size()) - 1;
}

TransferOutcome SimNetwork::Transfer(int from, int to, size_t bytes,
                                     int64_t rows, std::string label,
                                     int attempt,
                                     std::optional<TransferDirection> dir) {
  TransferRecord record;
  record.from = from;
  record.to = to;
  record.bytes = bytes;
  record.rows = rows;
  record.round = current_round_;
  record.label = std::move(label);
  record.dir = dir.has_value() ? *dir
                               : (from == kCoordinatorId
                                      ? TransferDirection::kToSite
                                      : TransferDirection::kToCoordinator);
  record.attempt = attempt;
  record.seconds = config_.TransferSeconds(bytes);

  // Messages with a site endpoint are subject to injected faults;
  // aggregator-internal hops are assumed reliable.
  const int site = from >= 0 ? from : to;
  if (injector_ != nullptr && site >= 0) {
    const TransferFate fate = injector_->Decide(
        site, current_round_, record.dir, attempt, record.seconds,
        record.label);
    record.delivered = fate.delivered;
    if (fate.delivered) record.seconds += fate.extra_delay_sec;
  }

  TransferOutcome outcome{record.delivered, record.seconds};
  if (obs::JournalEnabled()) {
    // Every byte ExecutionMetrics accounts for flows through here exactly
    // once, so kMessage records sum to TotalBytes() by construction.
    obs::JournalRecord jr;
    jr.event = obs::JournalEvent::kMessage;
    jr.round = current_round_;
    jr.from = from;
    jr.to = to;
    jr.site = site;
    jr.attempt = attempt;
    jr.bytes = bytes;
    jr.rows = rows;
    jr.seconds = record.seconds;
    jr.delivered = record.delivered;
    jr.label = record.label;
    obs::JournalAppend(std::move(jr));
  }
  transfers_.push_back(std::move(record));
  return outcome;
}

size_t SimNetwork::TotalBytes() const {
  size_t total = 0;
  for (const TransferRecord& t : transfers_) total += t.bytes;
  return total;
}

size_t SimNetwork::BytesToCoordinator() const {
  size_t total = 0;
  for (const TransferRecord& t : transfers_) {
    if (t.dir == TransferDirection::kToCoordinator) total += t.bytes;
  }
  return total;
}

size_t SimNetwork::BytesFromCoordinator() const {
  size_t total = 0;
  for (const TransferRecord& t : transfers_) {
    if (t.dir == TransferDirection::kToSite) total += t.bytes;
  }
  return total;
}

int64_t SimNetwork::RowsToCoordinator() const {
  int64_t total = 0;
  for (const TransferRecord& t : transfers_) {
    if (t.dir == TransferDirection::kToCoordinator) total += t.rows;
  }
  return total;
}

int64_t SimNetwork::RowsFromCoordinator() const {
  int64_t total = 0;
  for (const TransferRecord& t : transfers_) {
    if (t.dir == TransferDirection::kToSite) total += t.rows;
  }
  return total;
}

size_t SimNetwork::RetransmittedBytes() const {
  size_t total = 0;
  for (const TransferRecord& t : transfers_) {
    if (t.attempt > 0) total += t.bytes;
  }
  return total;
}

int SimNetwork::DroppedCount() const {
  int total = 0;
  for (const TransferRecord& t : transfers_) {
    if (!t.delivered) ++total;
  }
  return total;
}

void SimNetwork::Reset() {
  transfers_.clear();
  round_labels_.clear();
  current_round_ = -1;
  if (injector_ != nullptr) injector_->ClearEvents();
}

std::string SimNetwork::Report() const {
  std::ostringstream os;
  for (size_t r = 0; r < round_labels_.size(); ++r) {
    size_t to_sites = 0;
    size_t to_coord = 0;
    size_t resent = 0;
    int dropped = 0;
    for (const TransferRecord& t : transfers_) {
      if (t.round != static_cast<int>(r)) continue;
      if (t.dir == TransferDirection::kToSite) to_sites += t.bytes;
      if (t.dir == TransferDirection::kToCoordinator) to_coord += t.bytes;
      if (t.attempt > 0) resent += t.bytes;
      if (!t.delivered) ++dropped;
    }
    os << StrFormat("round %zu (%s): coord->sites %s, sites->coord %s", r,
                    round_labels_[r].c_str(),
                    HumanBytes(static_cast<double>(to_sites)).c_str(),
                    HumanBytes(static_cast<double>(to_coord)).c_str());
    if (resent > 0 || dropped > 0) {
      os << StrFormat(", retransmitted %s, dropped %d msg(s)",
                      HumanBytes(static_cast<double>(resent)).c_str(),
                      dropped);
    }
    os << "\n";
  }
  os << "total: " << HumanBytes(static_cast<double>(TotalBytes()));
  if (RetransmittedBytes() > 0) {
    os << " (incl. "
       << HumanBytes(static_cast<double>(RetransmittedBytes()))
       << " retransmitted)";
  }
  if (injector_ != nullptr && !injector_->events().empty()) {
    os << "\n" << injector_->Summary();
  }
  return os.str();
}

}  // namespace skalla

#include "storage/table.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"
#include "storage/serializer.h"

namespace skalla {

namespace {

bool RowLess(const Row& a, const Row& b) {
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    const int c = a[i].Compare(b[i]);
    if (c != 0) return c < 0;
  }
  return a.size() < b.size();
}

}  // namespace

void Table::AddRow(Row row) {
  SKALLA_DCHECK(static_cast<int>(row.size()) == schema_->num_fields())
      << "row arity " << row.size() << " vs schema " << schema_->num_fields();
  columnar_cache_.reset();
  rows_.push_back(std::move(row));
}

void Table::Append(const Table& other) {
  SKALLA_DCHECK(other.schema().num_fields() == schema_->num_fields());
  columnar_cache_.reset();
  rows_.insert(rows_.end(), other.rows_.begin(), other.rows_.end());
}

void Table::SortBy(const std::vector<int>& cols) {
  columnar_cache_.reset();
  std::stable_sort(rows_.begin(), rows_.end(),
                   [&cols](const Row& a, const Row& b) {
                     for (int c : cols) {
                       const int cmp = a[static_cast<size_t>(c)].Compare(
                           b[static_cast<size_t>(c)]);
                       if (cmp != 0) return cmp < 0;
                     }
                     return false;
                   });
}

void Table::SortAllColumns() {
  columnar_cache_.reset();
  std::sort(rows_.begin(), rows_.end(), RowLess);
}

size_t Table::SerializedSize(WireFormat format) const {
  return Serializer::TablePayloadSize(*this, format);
}

std::string Table::ToString(int64_t max_rows) const {
  std::ostringstream os;
  // Compute column widths over header + shown rows.
  const int ncols = schema_->num_fields();
  const int64_t shown = std::min<int64_t>(max_rows, num_rows());
  std::vector<size_t> width(static_cast<size_t>(ncols));
  for (int c = 0; c < ncols; ++c) {
    width[static_cast<size_t>(c)] = schema_->field(c).name.size();
  }
  std::vector<std::vector<std::string>> cells(static_cast<size_t>(shown));
  for (int64_t r = 0; r < shown; ++r) {
    auto& line = cells[static_cast<size_t>(r)];
    line.reserve(static_cast<size_t>(ncols));
    for (int c = 0; c < ncols; ++c) {
      line.push_back(Get(r, c).ToString());
      width[static_cast<size_t>(c)] =
          std::max(width[static_cast<size_t>(c)], line.back().size());
    }
  }
  for (int c = 0; c < ncols; ++c) {
    os << (c ? " | " : "");
    const std::string& name = schema_->field(c).name;
    os << name << std::string(width[static_cast<size_t>(c)] - name.size(), ' ');
  }
  os << "\n";
  for (int64_t r = 0; r < shown; ++r) {
    for (int c = 0; c < ncols; ++c) {
      os << (c ? " | " : "");
      const std::string& cell = cells[static_cast<size_t>(r)][static_cast<size_t>(c)];
      os << cell << std::string(width[static_cast<size_t>(c)] - cell.size(), ' ');
    }
    os << "\n";
  }
  if (shown < num_rows()) {
    os << "... (" << (num_rows() - shown) << " more rows)\n";
  }
  return os.str();
}

bool Table::SameRowMultiset(const Table& other) const {
  if (num_rows() != other.num_rows()) return false;
  if (schema().num_fields() != other.schema().num_fields()) return false;
  std::vector<Row> a = rows_;
  std::vector<Row> b = other.rows_;
  std::sort(a.begin(), a.end(), RowLess);
  std::sort(b.begin(), b.end(), RowLess);
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return false;
    for (size_t j = 0; j < a[i].size(); ++j) {
      if (!(a[i][j] == b[i][j])) return false;
    }
  }
  return true;
}

}  // namespace skalla

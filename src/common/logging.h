#ifndef SKALLA_COMMON_LOGGING_H_
#define SKALLA_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace skalla {

/// Severity levels for the lightweight logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// \brief Process-wide minimum level; messages below it are dropped.
///
/// Defaults to kWarning so that library code is quiet in tests and
/// benchmarks. Examples raise it to kInfo for narration.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// One log statement; streams into an internal buffer and emits on
/// destruction. kFatal aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace skalla

#define SKALLA_LOG(level)                                             \
  ::skalla::internal::LogMessage(::skalla::LogLevel::k##level,        \
                                 __FILE__, __LINE__)

/// Checks an invariant in all build modes; aborts with a message on failure.
#define SKALLA_CHECK(cond)                                            \
  if (!(cond))                                                        \
  SKALLA_LOG(Fatal) << "check failed: " #cond << " "

/// Debug-only invariant check: aliases SKALLA_CHECK in debug builds and
/// compiles out under NDEBUG. The condition stays type-checked (so it can't
/// rot) but is never evaluated — it must be side-effect-free.
#ifdef NDEBUG
#define SKALLA_DCHECK(cond) \
  while (false && (cond)) SKALLA_LOG(Fatal)
#else
#define SKALLA_DCHECK(cond) SKALLA_CHECK(cond)
#endif

#endif  // SKALLA_COMMON_LOGGING_H_

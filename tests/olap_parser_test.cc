#include "sql/olap_parser.h"

#include <gtest/gtest.h>

#include "engine/operators.h"
#include "expr/parser.h"
#include "gmdj/central_eval.h"
#include "skalla/queries.h"
#include "skalla/warehouse.h"
#include "storage/catalog.h"
#include "test_util.h"
#include "tpc/dbgen.h"

namespace skalla {
namespace {

TEST(OlapParserTest, SimpleGroupByQuery) {
  ASSERT_OK_AND_ASSIGN(
      GmdjExpr expr,
      ParseOlapQuery("SELECT g, COUNT(*) AS cnt, SUM(v) AS sv FROM T "
                     "GROUP BY g"));
  EXPECT_EQ(expr.base.source_table, "T");
  EXPECT_EQ(expr.base.project_cols, std::vector<std::string>{"g"});
  ASSERT_EQ(expr.ops.size(), 1u);
  ASSERT_EQ(expr.ops[0].blocks.size(), 1u);
  const GmdjBlock& block = expr.ops[0].blocks[0];
  ASSERT_EQ(block.aggs.size(), 2u);
  EXPECT_EQ(block.aggs[0].output, "cnt");
  EXPECT_EQ(block.aggs[1].output, "sv");
  EXPECT_EQ(block.theta->ToString(), "(B.g = R.g)");
}

TEST(OlapParserTest, PaperExample1Translation) {
  ASSERT_OK_AND_ASSIGN(
      GmdjExpr expr,
      ParseOlapQuery(
          "SELECT SourceAS, DestAS, COUNT(*) AS cnt1, "
          "SUM(NumBytes) AS sum1 "
          "FROM Flow GROUP BY SourceAS, DestAS "
          "EXTEND COUNT(*) AS cnt2 WHERE NumBytes >= sum1 / cnt1"));
  ASSERT_EQ(expr.ops.size(), 2u);
  // The EXTEND condition must bind sum1/cnt1 to the base side and
  // NumBytes to the detail side.
  EXPECT_EQ(expr.ops[1].blocks[0].theta->ToString(),
            "(((B.SourceAS = R.SourceAS) && (B.DestAS = R.DestAS)) && "
            "(R.NumBytes >= (B.sum1 / B.cnt1)))");

  // Structurally equal to the hand-built canonical query.
  const GmdjExpr canonical = queries::FlowExample1();
  ASSERT_EQ(expr.ops.size(), canonical.ops.size());
  for (size_t i = 0; i < expr.ops.size(); ++i) {
    EXPECT_TRUE(expr.ops[i].blocks[0].theta->Equals(
        *canonical.ops[i].blocks[0].theta))
        << i;
  }
}

TEST(OlapParserTest, QueryLevelWhereBecomesBaseFilter) {
  ASSERT_OK_AND_ASSIGN(
      GmdjExpr expr,
      ParseOlapQuery("SELECT g, COUNT(*) AS c FROM T WHERE v >= 7 "
                     "GROUP BY g"));
  ASSERT_NE(expr.base.filter, nullptr);
  EXPECT_EQ(expr.base.filter->ToString(), "(R.v >= 7)");
}

TEST(OlapParserTest, MultipleExtends) {
  ASSERT_OK_AND_ASSIGN(
      GmdjExpr expr,
      ParseOlapQuery("SELECT g, AVG(v) AS a1 FROM T GROUP BY g "
                     "EXTEND COUNT(*) AS c2 WHERE v > a1 "
                     "EXTEND COUNT(*) AS c3 WHERE v > a1 && v > c2"));
  ASSERT_EQ(expr.ops.size(), 3u);
  EXPECT_NE(expr.ops[2].blocks[0].theta->ToString().find("B.c2"),
            std::string::npos);
}

TEST(OlapParserTest, ExtendWithoutWhereIsKeyEqualityOnly) {
  ASSERT_OK_AND_ASSIGN(
      GmdjExpr expr,
      ParseOlapQuery("SELECT g, COUNT(*) AS c FROM T GROUP BY g "
                     "EXTEND MIN(v) AS lo, MAX(v) AS hi"));
  ASSERT_EQ(expr.ops.size(), 2u);
  EXPECT_EQ(expr.ops[1].blocks[0].theta->ToString(), "(B.g = R.g)");
  EXPECT_EQ(expr.ops[1].blocks[0].aggs.size(), 2u);
}

TEST(OlapParserTest, CaseInsensitiveKeywords) {
  ASSERT_OK_AND_ASSIGN(
      GmdjExpr expr,
      ParseOlapQuery("select g, count(*) as c from T group by g"));
  EXPECT_EQ(expr.ops.size(), 1u);
  // Identifier case is preserved.
  EXPECT_EQ(expr.base.source_table, "T");
  EXPECT_EQ(expr.ops[0].blocks[0].aggs[0].output, "c");
}

TEST(OlapParserTest, Errors) {
  // Missing GROUP BY.
  EXPECT_FALSE(ParseOlapQuery("SELECT COUNT(*) AS c FROM T").ok());
  // Selected column not grouped.
  EXPECT_FALSE(
      ParseOlapQuery("SELECT h, COUNT(*) AS c FROM T GROUP BY g").ok());
  // No aggregates at all.
  EXPECT_FALSE(ParseOlapQuery("SELECT g FROM T GROUP BY g").ok());
  // Aggregate without alias.
  EXPECT_FALSE(
      ParseOlapQuery("SELECT g, COUNT(*) FROM T GROUP BY g").ok());
  // Unknown aggregate function.
  EXPECT_FALSE(
      ParseOlapQuery("SELECT g, MEDIAN(v) AS m FROM T GROUP BY g").ok());
  // Bare column in EXTEND.
  EXPECT_FALSE(
      ParseOlapQuery("SELECT g, COUNT(*) AS c FROM T GROUP BY g EXTEND h")
          .ok());
  // Trailing garbage.
  EXPECT_FALSE(
      ParseOlapQuery("SELECT g, COUNT(*) AS c FROM T GROUP BY g garbage ;")
          .ok());
  // Empty WHERE expression.
  EXPECT_FALSE(
      ParseOlapQuery("SELECT g, COUNT(*) AS c FROM T WHERE GROUP BY g")
          .ok());
}

TEST(OlapParserTest, ParsedQueryEvaluatesLikeHandBuilt) {
  Catalog catalog;
  catalog.PutTable("T", std::make_shared<const Table>(MakeTinyTable()));
  ASSERT_OK_AND_ASSIGN(
      GmdjExpr parsed,
      ParseOlapQuery("SELECT g, COUNT(*) AS cnt1, SUM(v) AS sum1 FROM T "
                     "GROUP BY g EXTEND COUNT(*) AS cnt2 "
                     "WHERE v >= sum1 / cnt1"));
  ASSERT_OK_AND_ASSIGN(Table result, EvalGmdjExprCentralized(parsed, catalog));
  ASSERT_OK_AND_ASSIGN(Table sorted, SortedBy(result, {"g"}));
  ASSERT_EQ(sorted.num_rows(), 3);
  EXPECT_EQ(sorted.Get(0, 3), Value(2));
  EXPECT_EQ(sorted.Get(1, 3), Value(2));
  EXPECT_EQ(sorted.Get(2, 3), Value(3));
}

TEST(OlapParserTest, EndToEndDistributedExecution) {
  Warehouse wh(4);
  TpcConfig config;
  config.num_rows = 3000;
  config.num_customers = 200;
  Table tpcr = GenerateTpcr(config);
  ASSERT_OK(wh.LoadByRange("TPCR", tpcr, "NationKey", 0, 24, {"CustKey"}));

  ASSERT_OK_AND_ASSIGN(
      GmdjExpr query,
      ParseOlapQuery(
          "SELECT CustKey, COUNT(*) AS orders, AVG(Quantity) AS avg_qty "
          "FROM TPCR GROUP BY CustKey "
          "EXTEND COUNT(*) AS big_orders WHERE Quantity > avg_qty"));
  ASSERT_OK_AND_ASSIGN(Table expected, wh.ExecuteCentralized(query));
  ASSERT_OK_AND_ASSIGN(QueryResult result,
                       wh.Execute(query, OptimizerOptions::All()));
  ExpectSameRows(result.table, expected);
}

TEST(RebindToBaseTest, OnlyNamedDetailColumnsRebound) {
  auto parsed = ParseExpr("R.a + R.b > B.c");
  ASSERT_TRUE(parsed.ok());
  const ExprPtr rebound = RebindToBase(*parsed, {"a", "c"});
  EXPECT_EQ(rebound->ToString(), "((B.a + R.b) > B.c)");
}

TEST(RebindToBaseTest, NoMatchesReturnsSameTree) {
  auto parsed = ParseExpr("R.x > 1");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(RebindToBase(*parsed, {"a"}), *parsed);
}

}  // namespace
}  // namespace skalla

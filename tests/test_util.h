#ifndef SKALLA_TESTS_TEST_UTIL_H_
#define SKALLA_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>

#include "common/result.h"
#include "gmdj/gmdj.h"
#include "storage/table.h"

namespace skalla {

/// gtest helpers for Status / Result.
#define ASSERT_OK(expr)                                        \
  do {                                                         \
    const ::skalla::Status _st = (expr);                       \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                   \
  } while (false)

#define EXPECT_OK(expr)                                        \
  do {                                                         \
    const ::skalla::Status _st = (expr);                       \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                   \
  } while (false)

#define ASSERT_OK_AND_ASSIGN(lhs, expr)                        \
  ASSERT_OK_AND_ASSIGN_IMPL_(                                  \
      SKALLA_CONCAT_(_test_result_, __LINE__), lhs, expr)

#define ASSERT_OK_AND_ASSIGN_IMPL_(tmp, lhs, expr)             \
  auto tmp = (expr);                                           \
  ASSERT_TRUE(tmp.ok()) << tmp.status().ToString();            \
  lhs = std::move(tmp).ValueUnsafe();

/// Asserts two tables hold the same multiset of rows (order-insensitive),
/// printing both on mismatch.
inline void ExpectSameRows(const Table& actual, const Table& expected) {
  EXPECT_TRUE(actual.SameRowMultiset(expected))
      << "actual:\n"
      << actual.ToString(50) << "expected:\n"
      << expected.ToString(50);
}

/// A tiny deterministic detail relation used across unit tests:
/// T(g:int, h:int, v:int, w:double, s:string), 12 rows, groups g∈{1,2,3}.
Table MakeTinyTable();

}  // namespace skalla

#endif  // SKALLA_TESTS_TEST_UTIL_H_

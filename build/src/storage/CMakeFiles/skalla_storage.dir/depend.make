# Empty dependencies file for skalla_storage.
# This may be replaced when dependencies are built.

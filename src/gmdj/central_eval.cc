#include "gmdj/central_eval.h"

#include "engine/operators.h"
#include "expr/evaluator.h"
#include "gmdj/local_eval.h"

namespace skalla {

Result<Table> EvalBaseQuery(const BaseQuery& base, const Table& source) {
  const Table* input = &source;
  Table filtered;
  if (base.filter != nullptr) {
    SKALLA_ASSIGN_OR_RETURN(filtered, Filter(source, base.filter));
    input = &filtered;
  }
  if (base.distinct) {
    return DistinctProject(*input, base.project_cols);
  }
  return Project(*input, base.project_cols);
}

Result<Table> EvalGmdjExprCentralized(const GmdjExpr& expr,
                                      const Catalog& catalog,
                                      int num_threads) {
  SKALLA_ASSIGN_OR_RETURN(std::shared_ptr<const Table> source,
                          catalog.GetTable(expr.base.source_table));
  SKALLA_ASSIGN_OR_RETURN(Table x, EvalBaseQuery(expr.base, *source));
  for (const GmdjOp& op : expr.ops) {
    SKALLA_ASSIGN_OR_RETURN(std::shared_ptr<const Table> detail,
                            catalog.GetTable(op.detail_table));
    LocalGmdjOptions options;
    options.mode = AggMode::kFinal;
    options.num_threads = num_threads;
    SKALLA_ASSIGN_OR_RETURN(x, EvalGmdjOp(x, *detail, op, options));
  }
  if (expr.having != nullptr) {
    SKALLA_ASSIGN_OR_RETURN(
        CompiledExpr having,
        CompiledExpr::Compile(expr.having, &x.schema(), nullptr));
    Table filtered(x.schema_ptr());
    for (const Row& row : x.rows()) {
      if (having.EvalBool(&row, nullptr)) filtered.AddRow(row);
    }
    x = std::move(filtered);
  }
  if (!expr.order_by.empty()) {
    SKALLA_ASSIGN_OR_RETURN(x, SortedByKeys(x, expr.order_by));
  }
  if (expr.limit >= 0) {
    x = Limit(x, expr.limit);
  }
  return x;
}

}  // namespace skalla

#ifndef SKALLA_GMDJ_CENTRAL_EVAL_H_
#define SKALLA_GMDJ_CENTRAL_EVAL_H_

#include "common/result.h"
#include "gmdj/gmdj.h"
#include "storage/catalog.h"

namespace skalla {

/// \brief Evaluates the base query B₀ over a single relation instance.
Result<Table> EvalBaseQuery(const BaseQuery& base, const Table& source);

/// \brief Centralized reference evaluation of a complex GMDJ expression.
///
/// Evaluates the chain against the full relations in `catalog` (i.e. as if
/// all data lived in one warehouse). This is the correctness oracle for the
/// distributed evaluator: by Theorems 1, 3, 4, 5 every distributed plan
/// must produce exactly this result.
///
/// `num_threads` is forwarded to the morsel-driven local evaluator
/// (LocalGmdjOptions::num_threads; 0 = the SKALLA_THREADS default, 1 =
/// sequential).
Result<Table> EvalGmdjExprCentralized(const GmdjExpr& expr,
                                      const Catalog& catalog,
                                      int num_threads = 0);

}  // namespace skalla

#endif  // SKALLA_GMDJ_CENTRAL_EVAL_H_

// Microbenchmarks of the substrate hot paths: the local GMDJ evaluator
// (hash-probe vs nested-loop), the conventional hash GROUP BY it
// generalizes, the Theorem-1 synchronization merge, and the wire
// serializer that defines the byte-exact traffic accounting.
//
//   ./bench_gmdj_local

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "engine/operators.h"
#include "expr/parser.h"
#include "gmdj/local_eval.h"
#include "storage/hash_index.h"
#include "storage/serializer.h"
#include "tpc/dbgen.h"

namespace {

using namespace skalla;

ExprPtr MustParse(const std::string& text) {
  auto result = ParseExpr(text);
  if (!result.ok()) std::abort();
  return *result;
}

const Table& TpcrTable(int64_t rows) {
  static std::map<int64_t, Table>& cache = *new std::map<int64_t, Table>();
  auto it = cache.find(rows);
  if (it == cache.end()) {
    TpcConfig config;
    config.num_rows = rows;
    config.num_customers = rows / 20;
    it = cache.emplace(rows, GenerateTpcr(config)).first;
  }
  return it->second;
}

Table BaseFor(const Table& detail, const std::string& attr) {
  auto base = DistinctProject(detail, {attr});
  if (!base.ok()) std::abort();
  return std::move(base).ValueUnsafe();
}

void BM_GmdjHashPath(benchmark::State& state) {
  const Table& detail = TpcrTable(state.range(0));
  const Table base = BaseFor(detail, "CustKey");
  GmdjOp op;
  op.detail_table = "TPCR";
  op.blocks.push_back(GmdjBlock{
      {AggSpec::Count("cnt"), AggSpec::Avg("Quantity", "avg")},
      MustParse("B.CustKey = R.CustKey")});
  LocalGmdjOptions options;
  for (auto _ : state) {
    auto result = EvalGmdjOp(base, detail, op, options);
    if (!result.ok()) std::abort();
    benchmark::DoNotOptimize(result->num_rows());
  }
  state.SetItemsProcessed(state.iterations() * detail.num_rows());
}
BENCHMARK(BM_GmdjHashPath)->Arg(10000)->Arg(50000)->Arg(200000);

void BM_GmdjHashPathWithResidual(benchmark::State& state) {
  const Table& detail = TpcrTable(state.range(0));
  const Table base = BaseFor(detail, "CustKey");
  GmdjOp op;
  op.detail_table = "TPCR";
  op.blocks.push_back(
      GmdjBlock{{AggSpec::Count("cnt")},
                MustParse("B.CustKey = R.CustKey && R.Quantity >= 25")});
  LocalGmdjOptions options;
  for (auto _ : state) {
    auto result = EvalGmdjOp(base, detail, op, options);
    if (!result.ok()) std::abort();
    benchmark::DoNotOptimize(result->num_rows());
  }
  state.SetItemsProcessed(state.iterations() * detail.num_rows());
}
BENCHMARK(BM_GmdjHashPathWithResidual)->Arg(10000)->Arg(50000);

void BM_GmdjSortMergePath(benchmark::State& state) {
  const Table& detail = TpcrTable(state.range(0));
  const Table base = BaseFor(detail, "CustKey");
  GmdjOp op;
  op.detail_table = "TPCR";
  op.blocks.push_back(GmdjBlock{
      {AggSpec::Count("cnt"), AggSpec::Avg("Quantity", "avg")},
      MustParse("B.CustKey = R.CustKey")});
  LocalGmdjOptions options;
  options.join = JoinStrategy::kSortMerge;
  for (auto _ : state) {
    auto result = EvalGmdjOp(base, detail, op, options);
    if (!result.ok()) std::abort();
    benchmark::DoNotOptimize(result->num_rows());
  }
  state.SetItemsProcessed(state.iterations() * detail.num_rows());
}
BENCHMARK(BM_GmdjSortMergePath)->Arg(10000)->Arg(50000)->Arg(200000);

void BM_GmdjNestedLoop(benchmark::State& state) {
  const Table& detail = TpcrTable(state.range(0));
  // 32 overlapping quantity thresholds — inexpressible as GROUP BY.
  Table base(MakeSchema({{"threshold", ValueType::kInt64}}));
  for (int64_t t = 0; t < 32; ++t) base.AddRow({Value(t * 2)});
  GmdjOp op;
  op.detail_table = "TPCR";
  op.blocks.push_back(GmdjBlock{{AggSpec::Count("cnt")},
                                MustParse("R.Quantity >= B.threshold")});
  LocalGmdjOptions options;
  for (auto _ : state) {
    auto result = EvalGmdjOp(base, detail, op, options);
    if (!result.ok()) std::abort();
    benchmark::DoNotOptimize(result->num_rows());
  }
  state.SetItemsProcessed(state.iterations() * detail.num_rows() * 32);
}
BENCHMARK(BM_GmdjNestedLoop)->Arg(2000)->Arg(10000);

void BM_HashGroupByReference(benchmark::State& state) {
  const Table& detail = TpcrTable(state.range(0));
  for (auto _ : state) {
    auto result = HashGroupBy(
        detail, {"CustKey"},
        {AggSpec::Count("cnt"), AggSpec::Avg("Quantity", "avg")});
    if (!result.ok()) std::abort();
    benchmark::DoNotOptimize(result->num_rows());
  }
  state.SetItemsProcessed(state.iterations() * detail.num_rows());
}
BENCHMARK(BM_HashGroupByReference)->Arg(10000)->Arg(50000)->Arg(200000);

void BM_SerializeTable(benchmark::State& state) {
  const Table& table = TpcrTable(state.range(0));
  for (auto _ : state) {
    const std::string bytes = Serializer::SerializeTable(table);
    benchmark::DoNotOptimize(bytes.size());
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(Serializer::WireSize(table)));
}
BENCHMARK(BM_SerializeTable)->Arg(10000)->Arg(50000);

void BM_DeserializeTable(benchmark::State& state) {
  const std::string bytes =
      Serializer::SerializeTable(TpcrTable(state.range(0)));
  for (auto _ : state) {
    auto table = Serializer::DeserializeTable(bytes);
    if (!table.ok()) std::abort();
    benchmark::DoNotOptimize(table->num_rows());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes.size()));
}
BENCHMARK(BM_DeserializeTable)->Arg(10000)->Arg(50000);

void BM_HashIndexBuild(benchmark::State& state) {
  const Table& table = TpcrTable(state.range(0));
  const std::vector<int> key = {
      *table.schema().IndexOf("CustKey")};
  for (auto _ : state) {
    HashIndex index;
    index.Build(table, key);
    benchmark::DoNotOptimize(index.num_entries());
  }
  state.SetItemsProcessed(state.iterations() * table.num_rows());
}
BENCHMARK(BM_HashIndexBuild)->Arg(10000)->Arg(50000);

// Mirrors every measured configuration into BENCH_gmdj_local.json via the
// shared JsonReport, on top of the normal console table.
class JsonForwardingReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonForwardingReporter(skalla::bench::JsonReport* report)
      : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      std::vector<std::pair<std::string, double>> params = {
          {"iterations", iters}};
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        params.emplace_back("items_per_second",
                            static_cast<double>(items->second));
      }
      const auto bytes = run.counters.find("bytes_per_second");
      if (bytes != run.counters.end()) {
        params.emplace_back("bytes_per_second",
                            static_cast<double>(bytes->second));
      }
      report_->Add(run.benchmark_name(), std::move(params),
                   run.real_accumulated_time * 1e3 / iters);
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  skalla::bench::JsonReport* report_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  skalla::bench::JsonReport report("gmdj_local");
  JsonForwardingReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  report.Write();
  return 0;
}

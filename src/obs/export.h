#ifndef SKALLA_OBS_EXPORT_H_
#define SKALLA_OBS_EXPORT_H_

#include <iosfwd>
#include <vector>

#include "obs/journal.h"
#include "obs/trace.h"

namespace skalla {
namespace obs {

/// Writes spans (+ journal instants for retries/timeouts/failovers) as
/// Chrome trace-event JSON, loadable in Perfetto / chrome://tracing. One
/// timeline track per site plus the coordinator, pool-lane, and aggregator
/// tracks (named via ph:"M" thread_name metadata).
void ExportChromeTrace(const std::vector<TraceSpan>& spans,
                       const std::vector<JournalRecord>& journal,
                       std::ostream& out);

/// Writes a plain-text per-track timeline (start/duration/indent by
/// nesting) for terminals without a trace viewer.
void ExportTextTimeline(const std::vector<TraceSpan>& spans,
                        std::ostream& out);

/// Writes the journal as JSONL, one record per line, replayable by
/// external tools (fields with zero defaults are omitted).
void ExportJournalJsonl(const std::vector<JournalRecord>& journal,
                        std::ostream& out);

/// Writes whatever destinations the current TraceConfig names
/// (chrome_path / text_path / journal_path; text "-" = stderr). Registered
/// via atexit when SKALLA_TRACE requests file output. Returns false if any
/// destination could not be opened.
bool WriteConfiguredTraceOutputs();

/// JSON string-escapes `value` (quotes not included).
std::string JsonEscape(const std::string& value);

}  // namespace obs
}  // namespace skalla

#endif  // SKALLA_OBS_EXPORT_H_

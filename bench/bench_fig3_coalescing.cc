// Figure 3 of the paper: the *coalescing query* speed-up experiment.
//
// Two GMDJ operators whose second condition is independent of the first
// operator's outputs. Non-coalesced evaluation needs two synchronized
// rounds (plus the base round); coalescing folds both operators into one
// operator evaluated in a single round.
//
// Left panel: high-cardinality grouping (CustName, groups grow with
// sites) — non-coalesced is quadratic in the number of sites, coalesced is
// linear. Right panel: low-cardinality grouping (ClerkKey, 2000–4000
// uniques) — the paper reports a ~30% win, mostly from saved local
// computation rather than traffic.
//
//   ./bench_fig3_coalescing

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_util.h"

namespace {

using namespace skalla;
using bench::GetWarehouse;
using bench::MustExecute;
using bench::WarehouseSpec;

WarehouseSpec SpecForSites(int sites) {
  WarehouseSpec spec;
  spec.sites = sites;
  spec.rows_per_site = 20000;
  spec.groups_per_site = 1200;  // CustName cardinality per site
  spec.clerks = 3000;           // low-cardinality attribute (fixed total)
  return spec;
}

OptimizerOptions Coalesced() {
  OptimizerOptions options;
  options.coalesce = true;
  // After coalescing, the single remaining operator's θs entail key
  // equality, so Prop. 2 lets the sites derive their base locally — the
  // paper's coalesced execution has "only one evaluation round, at the end
  // of which the sites send their results to the coordinator".
  options.sync_reduction = true;
  return options;
}

void BM_Coalescing(benchmark::State& state) {
  const int sites = static_cast<int>(state.range(0));
  const bool high_card = state.range(1) != 0;
  const bool coalesced = state.range(2) != 0;
  Warehouse& warehouse = GetWarehouse(SpecForSites(sites));
  const GmdjExpr query =
      queries::CoalescingQuery(high_card ? "CustName" : "ClerkKey");
  const OptimizerOptions options =
      coalesced ? Coalesced() : OptimizerOptions::None();
  for (auto _ : state) {
    QueryResult result = MustExecute(warehouse, query, options);
    state.SetIterationTime(result.metrics.ResponseSeconds());
    state.counters["bytes"] =
        static_cast<double>(result.metrics.TotalBytes());
    state.counters["rounds"] = result.metrics.NumRounds();
  }
  state.SetLabel(std::string(high_card ? "high-card" : "low-card") +
                 (coalesced ? "/coalesced" : "/non-coalesced"));
}
BENCHMARK(BM_Coalescing)
    ->ArgsProduct({{1, 2, 3, 4, 6, 8}, {0, 1}, {0, 1}})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void PrintPaperFigure() {
  const std::vector<int> site_counts = {1, 2, 3, 4, 6, 8};
  for (const bool high_card : {true, false}) {
    std::printf("\n=== Figure 3 (%s): %s-cardinality coalescing query, "
                "evaluation time [s] ===\n",
                high_card ? "left" : "right", high_card ? "high" : "low");
    std::printf("%-6s %14s %12s %10s\n", "sites", "non-coalesced",
                "coalesced", "speedup");
    const GmdjExpr query =
        queries::CoalescingQuery(high_card ? "CustName" : "ClerkKey");
    for (int sites : site_counts) {
      Warehouse& warehouse = GetWarehouse(SpecForSites(sites));
      QueryResult plain =
          MustExecute(warehouse, query, OptimizerOptions::None());
      QueryResult merged = MustExecute(warehouse, query, Coalesced());
      std::printf("%-6d %14.3f %12.3f %9.2fx\n", sites,
                  plain.metrics.ResponseSeconds(),
                  merged.metrics.ResponseSeconds(),
                  plain.metrics.ResponseSeconds() /
                      merged.metrics.ResponseSeconds());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintPaperFigure();
  return 0;
}

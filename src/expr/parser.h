#ifndef SKALLA_EXPR_PARSER_H_
#define SKALLA_EXPR_PARSER_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "expr/expr.h"

namespace skalla {

/// Options controlling how column references in the surface syntax bind.
struct ParserOptions {
  /// Qualifier naming the base-values relation ("B" in `B.SourceAS`).
  std::string base_alias = "B";
  /// Qualifier naming the detail relation ("R" in `R.NumBytes`).
  std::string detail_alias = "R";
  /// Which side an unqualified identifier binds to.
  Side default_side = Side::kDetail;
};

/// \brief Parses the textual condition syntax into an expression tree.
///
/// Grammar (usual precedence, lowest first):
///
///   expr    := or
///   or      := and  ( ("||" | "or")  and )*
///   and     := cmp  ( ("&&" | "and") cmp )*
///   cmp     := sum  ( ("=" | "==" | "!=" | "<>" | "<" | "<=" | ">" | ">=") sum
///                   | ["not"] "in" "(" sum ("," sum)* ")"
///                   | ["not"] "between" sum "and" sum )?
///   sum     := term ( ("+" | "-") term )*
///   term    := unary ( ("*" | "/" | "%") unary )*
///   unary   := ("-" | "!" | "not") unary | primary
///   primary := NUMBER | 'string' | QUALIFIER "." IDENT | IDENT | "(" expr ")"
///             | "true" | "false" | "null"
///
/// Example: `B.SourceAS = R.SourceAS && R.NumBytes >= B.sum1 / B.cnt1`.
Result<ExprPtr> ParseExpr(std::string_view text,
                          const ParserOptions& options = ParserOptions());

}  // namespace skalla

#endif  // SKALLA_EXPR_PARSER_H_

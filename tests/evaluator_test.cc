#include "expr/evaluator.h"

#include <gtest/gtest.h>

#include "expr/parser.h"
#include "test_util.h"

namespace skalla {
namespace {

class EvaluatorTest : public ::testing::Test {
 protected:
  EvaluatorTest()
      : base_schema_({{"g", ValueType::kInt64},
                      {"sum1", ValueType::kInt64},
                      {"cnt1", ValueType::kInt64}}),
        detail_schema_({{"g", ValueType::kInt64},
                        {"v", ValueType::kInt64},
                        {"w", ValueType::kDouble},
                        {"s", ValueType::kString}}) {}

  Value Eval(const std::string& text, const Row& base, const Row& detail) {
    auto parsed = ParseExpr(text);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    auto compiled =
        CompiledExpr::Compile(*parsed, &base_schema_, &detail_schema_);
    EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
    return compiled->Eval(&base, &detail);
  }

  bool EvalB(const std::string& text, const Row& base, const Row& detail) {
    auto parsed = ParseExpr(text);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    auto compiled =
        CompiledExpr::Compile(*parsed, &base_schema_, &detail_schema_);
    EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
    return compiled->EvalBool(&base, &detail);
  }

  Schema base_schema_;
  Schema detail_schema_;
};

TEST_F(EvaluatorTest, ColumnLookupBothSides) {
  const Row base = {Value(7), Value(100), Value(4)};
  const Row detail = {Value(7), Value(30), Value(1.5), Value("x")};
  EXPECT_EQ(Eval("B.g", base, detail), Value(7));
  EXPECT_EQ(Eval("R.v", base, detail), Value(30));
}

TEST_F(EvaluatorTest, ArithmeticIntAndDouble) {
  const Row base = {Value(7), Value(100), Value(4)};
  const Row detail = {Value(7), Value(30), Value(1.5), Value("x")};
  EXPECT_EQ(Eval("R.v + 2", base, detail), Value(32));
  EXPECT_EQ(Eval("R.v * R.v", base, detail), Value(900));
  EXPECT_EQ(Eval("R.w + 1", base, detail), Value(2.5));
  EXPECT_EQ(Eval("R.v % 7", base, detail), Value(2));
}

TEST_F(EvaluatorTest, DivisionIsAlwaysReal) {
  const Row base = {Value(7), Value(100), Value(4)};
  const Row detail = {Value(7), Value(30), Value(1.5), Value("x")};
  // Example 1 relies on sum1/cnt1 being a real average.
  EXPECT_EQ(Eval("B.sum1 / B.cnt1", base, detail), Value(25.0));
  EXPECT_EQ(Eval("7 / 2", base, detail), Value(3.5));
}

TEST_F(EvaluatorTest, DivisionByZeroIsNull) {
  const Row base = {Value(7), Value(100), Value(0)};
  const Row detail = {Value(7), Value(30), Value(1.5), Value("x")};
  EXPECT_TRUE(Eval("B.sum1 / B.cnt1", base, detail).is_null());
  EXPECT_FALSE(EvalB("R.v >= B.sum1 / B.cnt1", base, detail));
}

TEST_F(EvaluatorTest, NullPropagatesThroughArithmetic) {
  const Row base = {Value(7), Value::Null(), Value(4)};
  const Row detail = {Value(7), Value(30), Value(1.5), Value("x")};
  EXPECT_TRUE(Eval("B.sum1 + 1", base, detail).is_null());
  EXPECT_TRUE(Eval("-B.sum1", base, detail).is_null());
}

TEST_F(EvaluatorTest, ComparisonWithNullIsUnknownAndFalseAsPredicate) {
  const Row base = {Value(7), Value::Null(), Value(4)};
  const Row detail = {Value(7), Value(30), Value(1.5), Value("x")};
  EXPECT_TRUE(Eval("B.sum1 > 0", base, detail).is_null());
  EXPECT_FALSE(EvalB("B.sum1 > 0", base, detail));
  EXPECT_FALSE(EvalB("B.sum1 = B.sum1", base, detail));
}

TEST_F(EvaluatorTest, KleeneAndOr) {
  const Row base = {Value(7), Value::Null(), Value(4)};
  const Row detail = {Value(7), Value(30), Value(1.5), Value("x")};
  // FALSE && UNKNOWN = FALSE (short-circuits soundly).
  EXPECT_EQ(Eval("R.v < 0 && B.sum1 > 0", base, detail), Value(0));
  // TRUE || UNKNOWN = TRUE.
  EXPECT_EQ(Eval("R.v > 0 || B.sum1 > 0", base, detail), Value(1));
  // TRUE && UNKNOWN = UNKNOWN.
  EXPECT_TRUE(Eval("R.v > 0 && B.sum1 > 0", base, detail).is_null());
  // FALSE || UNKNOWN = UNKNOWN.
  EXPECT_TRUE(Eval("R.v < 0 || B.sum1 > 0", base, detail).is_null());
}

TEST_F(EvaluatorTest, NotOfUnknownIsUnknown) {
  const Row base = {Value(7), Value::Null(), Value(4)};
  const Row detail = {Value(7), Value(30), Value(1.5), Value("x")};
  EXPECT_TRUE(Eval("!(B.sum1 > 0)", base, detail).is_null());
}

TEST_F(EvaluatorTest, IsNullSemantics) {
  const Row base = {Value(7), Value::Null(), Value(4)};
  const Row detail = {Value(7), Value(30), Value(1.5), Value("x")};
  // IS NULL is two-valued: TRUE/FALSE, never unknown.
  EXPECT_EQ(Eval("B.sum1 IS NULL", base, detail), Value(1));
  EXPECT_EQ(Eval("R.v IS NULL", base, detail), Value(int64_t{0}));
  EXPECT_EQ(Eval("B.sum1 IS NOT NULL", base, detail), Value(int64_t{0}));
  // Contrast with = NULL, which is unknown (→ false as a predicate).
  EXPECT_FALSE(EvalB("B.sum1 = null", base, detail));
  EXPECT_TRUE(EvalB("B.sum1 IS NULL", base, detail));
  // Expressions: NULL-propagating arithmetic detected.
  EXPECT_TRUE(EvalB("(B.sum1 + 1) IS NULL", base, detail));
}

TEST_F(EvaluatorTest, StringComparison) {
  const Row base = {Value(7), Value(100), Value(4)};
  const Row detail = {Value(7), Value(30), Value(1.5), Value("abc")};
  EXPECT_TRUE(EvalB("R.s = 'abc'", base, detail));
  EXPECT_TRUE(EvalB("R.s < 'abd'", base, detail));
  EXPECT_FALSE(EvalB("R.s != 'abc'", base, detail));
}

TEST_F(EvaluatorTest, CrossTypeNumericComparison) {
  const Row base = {Value(7), Value(100), Value(4)};
  const Row detail = {Value(7), Value(30), Value(30.0), Value("x")};
  EXPECT_TRUE(EvalB("R.v = R.w", base, detail));
  EXPECT_TRUE(EvalB("R.v >= R.w", base, detail));
}

TEST_F(EvaluatorTest, CompileErrors) {
  auto missing_col = ParseExpr("R.nope = 1");
  ASSERT_TRUE(missing_col.ok());
  EXPECT_FALSE(
      CompiledExpr::Compile(*missing_col, &base_schema_, &detail_schema_)
          .ok());

  auto string_arith = ParseExpr("R.s + 1");
  ASSERT_TRUE(string_arith.ok());
  auto result =
      CompiledExpr::Compile(*string_arith, &base_schema_, &detail_schema_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTypeError);

  auto string_vs_num = ParseExpr("R.s < 1");
  ASSERT_TRUE(string_vs_num.ok());
  EXPECT_FALSE(
      CompiledExpr::Compile(*string_vs_num, &base_schema_, &detail_schema_)
          .ok());
}

TEST_F(EvaluatorTest, BaseReferenceWithoutBaseSchemaFails) {
  auto parsed = ParseExpr("B.g = 1");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(CompiledExpr::Compile(*parsed, nullptr, &detail_schema_).ok());
}

TEST_F(EvaluatorTest, ResultTypeInference) {
  auto check = [&](const std::string& text, ValueType want) {
    auto parsed = ParseExpr(text);
    ASSERT_TRUE(parsed.ok());
    auto compiled =
        CompiledExpr::Compile(*parsed, &base_schema_, &detail_schema_);
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    EXPECT_EQ(compiled->result_type(), want) << text;
  };
  check("R.v + 1", ValueType::kInt64);
  check("R.v + R.w", ValueType::kDouble);
  check("R.v / 2", ValueType::kDouble);
  check("R.v > 1", ValueType::kInt64);
  check("R.s", ValueType::kString);
}

TEST(ValueIsTrueTest, Semantics) {
  EXPECT_FALSE(ValueIsTrue(Value::Null()));
  EXPECT_FALSE(ValueIsTrue(Value(0)));
  EXPECT_TRUE(ValueIsTrue(Value(2)));
  EXPECT_FALSE(ValueIsTrue(Value(0.0)));
  EXPECT_TRUE(ValueIsTrue(Value(0.5)));
  EXPECT_FALSE(ValueIsTrue(Value("")));
  EXPECT_TRUE(ValueIsTrue(Value("x")));
}

}  // namespace
}  // namespace skalla

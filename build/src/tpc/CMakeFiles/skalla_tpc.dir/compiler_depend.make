# Empty compiler generated dependencies file for skalla_tpc.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_gmdj_local.
# This may be replaced when dependencies are built.

#ifndef SKALLA_DIST_PLAN_H_
#define SKALLA_DIST_PLAN_H_

#include <string>
#include <vector>

#include "gmdj/gmdj.h"

namespace skalla {

/// Per-round optimization switches.
struct RoundFlags {
  /// Distribution-independent group reduction (Proposition 1): each site
  /// returns only groups with |RNG| > 0 over the round's θ-disjunction.
  bool independent_group_reduction = false;

  /// Distribution-aware group reduction (Theorem 4): the coordinator ships
  /// to site i only σ_{¬ψ_i}(X); the ¬ψ_i predicates live in
  /// DistributedPlan::ship_predicates.
  bool aware_group_reduction = false;
};

/// \brief One synchronization round of Alg. GMDJDistribEval.
///
/// Normally a round evaluates one GMDJ operator. Under synchronization
/// reduction (Theorem 5 / Corollary 1) a round carries several consecutive
/// operators that the sites chain locally, shipping sub-aggregates for all
/// of them in a single message.
struct PlanRound {
  std::vector<GmdjOp> ops;
  RoundFlags flags;
  /// Sites participating in this round (S_MDk); empty means all sites.
  std::vector<int> participating_sites;
  /// Column pruning: the only X columns this round's sites need — the key
  /// attributes plus every base-side column referenced by the round's θs.
  /// Empty means "ship the full structure". Populated by the optimizer
  /// when column pruning is enabled; coordinators project X onto these
  /// columns (after any ship-predicate filtering) before shipping.
  std::vector<std::string> ship_cols;
};

/// \brief A distributed evaluation plan for a GMDJ expression.
struct DistributedPlan {
  BaseQuery base;
  /// Key attributes K of the base-result structure (the base projection).
  std::vector<std::string> key_attrs;

  /// Proposition 2: when true, the base query is not synchronized as its
  /// own round — each site derives its local B_i and immediately evaluates
  /// the first round's operators on it. New keys are inserted into the
  /// base-result structure during the first round's merge.
  bool fuse_base = false;

  std::vector<PlanRound> rounds;

  /// Optional HAVING predicate over the finalized base-result structure,
  /// applied by the coordinator after the last round.
  ExprPtr having;

  /// Presentation (ORDER BY / LIMIT) applied after HAVING.
  std::vector<SortKey> order_by;
  int64_t limit = -1;

  /// ship_predicates[round][site]: the ¬ψ_i base-side predicate used to
  /// filter X before shipping to that site (null → ship everything). Only
  /// consulted when the round's aware_group_reduction flag is set.
  std::vector<std::vector<ExprPtr>> ship_predicates;

  /// Sites participating in the base-query computation (S_B); empty → all.
  std::vector<int> base_sites;

  /// Total number of GMDJ operators across rounds.
  size_t NumOps() const;

  /// Reconstructs the (coalesced) GMDJ expression this plan evaluates;
  /// useful for schema computation and for correctness cross-checks.
  GmdjExpr ToExpr() const;

  /// Human-readable plan rendering (rounds, flags, ship predicates).
  std::string Explain() const;
};

/// Builds the unoptimized plan: one round per GMDJ operator, a synchronized
/// base round, no reductions (the paper's baseline Alg. GMDJDistribEval).
DistributedPlan MakeNaivePlan(const GmdjExpr& expr);

}  // namespace skalla

#endif  // SKALLA_DIST_PLAN_H_

#ifndef SKALLA_DIST_FAULT_TOLERANCE_H_
#define SKALLA_DIST_FAULT_TOLERANCE_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "dist/metrics.h"
#include "dist/site.h"
#include "net/sim_network.h"

namespace skalla {

/// \brief Per-query view of which physical site serves each site slot.
///
/// Slot `sid` starts out served by the primary site; when the primary is
/// declared dead (its retry budget is exhausted) the coordinator may fail
/// the slot over to a registered replica — validated against φ coverage
/// (CoversPartition) so a replica that could silently lose groups is
/// refused. A slot fails over at most once; the swap is sticky for the
/// rest of the query.
class SiteRoster {
 public:
  SiteRoster(const std::vector<Site*>& primaries,
             const std::map<int, Site*>& replicas)
      : active_(primaries),
        replicas_(replicas),
        failed_over_(primaries.size(), false) {}

  Site* active(int sid) const { return active_[static_cast<size_t>(sid)]; }
  bool failed_over(int sid) const {
    return failed_over_[static_cast<size_t>(sid)];
  }

  /// Swaps slot `sid` to its replica when one is registered, unused, and
  /// φ-covering; returns the replica or null (with an explanation in *why).
  Site* Failover(int sid, std::string* why);

  /// Appends a helper slot served by `site` (skew rebalancing: the φ-twin
  /// replica evaluating a straggler's upper detail fragment) and returns
  /// its slot id. `failover_to` — typically the straggler primary, whose φ
  /// equals the helper's — becomes the new slot's failover target, so a
  /// helper that is also flaky re-routes its fragment through the normal
  /// failover machinery instead of failing the round.
  int AddHelperSlot(Site* site, Site* failover_to);

 private:
  std::vector<Site*> active_;
  std::map<int, Site*> replicas_;
  std::vector<bool> failed_over_;
};

/// The constant downstream half of one slot's per-round exchange.
struct DownMessage {
  int from = kCoordinatorId;  ///< sender endpoint (coordinator/aggregator)
  size_t bytes = 0;
  int64_t rows = 0;
  std::string label;

  /// When > 0, the downstream payload of `bytes` is a delta against state
  /// the receiver may no longer hold after a failed exchange, so every
  /// retry (attempt > 0) ships this full standalone payload size instead —
  /// which also covers a replica's first contact after failover.
  size_t fallback_bytes = 0;

  /// SKL1 full-ship equivalent of the payload, for compression-ratio
  /// accounting (RoundMetrics::bytes_baseline_skl1). 0 means the message
  /// is a control message counted at face value.
  size_t baseline_bytes = 0;

  /// This slot exists only because of a skew-rebalancing split (the helper
  /// evaluating a straggler's upper detail fragment). Its first-attempt
  /// traffic is mirrored into RoundMetrics' rebalance surcharge counters
  /// so Theorem-2 bound checks can subtract it, exactly as retries are.
  bool rebalance = false;
};

/// Local evaluation callback: slot index, the site serving it (primary or
/// replica), and an out-parameter for the site's CPU seconds.
using SiteEvalFn =
    std::function<Result<Table>(int p, Site* site, double* cpu_sec)>;

/// How per-slot communication time composes into round time.
enum class LinkModel {
  /// Every exchange serializes on the coordinator's shared access link
  /// (the flat coordinator): a wave costs the sum over slots.
  kSharedLink,
  /// Slots talking to the same parent endpoint share that parent's link;
  /// distinct parents transfer in parallel (aggregation tree): a wave
  /// costs the max over parents of the per-parent sum.
  kPerParentLinks,
};

/// \brief Drives one round's per-site exchanges under faults.
///
/// For each participant slot, repeatedly performs the full idempotent
/// exchange — downstream transfer, local evaluation, upstream reply — until
/// it succeeds, retrying with exponential backoff on message loss, site
/// outage, or deadline overrun, and failing over to a replica when the
/// retry budget is exhausted. Returns the serialized successful reply per
/// slot. Unrecoverable slots produce a typed kUnavailable or
/// kDeadlineExceeded status — never a partial answer.
///
/// All transfers happen on the calling thread in deterministic slot order
/// (wave by wave); only local evaluation is parallelized when `parallel`
/// is set, so the network transfer/event logs are identical either way.
///
/// `reply_to[p]` is the endpoint the reply travels to (the coordinator, or
/// an aggregation-tree parent). Retry, timeout, drop, failover, and
/// retransmission counters are accumulated into `rm`; retransmitted bytes
/// and groups are also counted as real traffic in the round totals.
/// Replies travel in `reply_format`; their SKL1-equivalent size is folded
/// into the round's bytes_baseline_skl1 alongside each DownMessage's
/// baseline_bytes.
Result<std::vector<std::string>> DriveRoundWithRetries(
    SimNetwork* net, const RetryPolicy& retry, RoundMetrics* rm,
    SiteRoster* roster, const std::vector<int>& participants,
    const std::vector<DownMessage>& down, const std::vector<int>& reply_to,
    const std::string& reply_label, const SiteEvalFn& eval, bool parallel,
    LinkModel link_model = LinkModel::kSharedLink,
    WireFormat reply_format = DefaultWireFormat());

}  // namespace skalla

#endif  // SKALLA_DIST_FAULT_TOLERANCE_H_

#ifndef SKALLA_DIST_REBALANCE_H_
#define SKALLA_DIST_REBALANCE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace skalla {

/// Knobs of the skew-aware adaptive round execution (docs/skew.md).
struct RebalanceConfig {
  /// Master switch: when false the detector still observes (so the signal
  /// is warm if rebalancing is enabled mid-stream) but PlanRound never
  /// proposes a split.
  bool enabled = false;

  /// A round is considered skewed when the predicted max-over-sites load
  /// exceeds the mean by this factor (the paper's cost model charges the
  /// max, so anything above 1 is lost response time; below ~1.5 the split
  /// overhead of an extra slot tends to outweigh the win).
  double max_over_mean_threshold = 1.5;

  /// Never split a detail scan smaller than this — the per-slot exchange
  /// overhead dominates tiny fragments.
  int64_t min_rows_to_split = 4096;

  /// Offload fractions: below the minimum a split is not worth an extra
  /// exchange; above the maximum the "helper" would become the new
  /// straggler (it runs the same hardware unless the replica is faster).
  double min_offload_fraction = 0.05;
  double max_offload_fraction = 0.75;

  /// EWMA smoothing for observed per-row cost rates: new = alpha * sample
  /// + (1 - alpha) * old. 1.0 = always trust the latest round.
  double ewma_alpha = 0.5;
};

/// One proposed work split for the upcoming round: the straggler keeps
/// detail-scan positions [0, split_at) and the helper evaluates
/// [split_at, rows) against the same shipped X — legal because the
/// sub-aggregates of any disjoint scan cover merge to the same result
/// (Theorem 1 associativity; DESIGN.md invariant 12).
struct RebalanceDecision {
  int hot_slot = -1;            ///< slot to split; -1 = round is balanced
  int64_t rows = 0;             ///< hot slot's detail rows this round
  int64_t split_at = 0;         ///< first position the helper takes over
  double max_over_mean = 1.0;   ///< predicted skew that triggered the split
  std::string why;              ///< human-readable trigger/veto explanation

  bool split() const { return hot_slot >= 0 && split_at < rows; }
};

/// \brief Per-site straggler detector fed by round timings.
///
/// Maintains an EWMA of each site slot's cost per scanned detail row,
/// seeded statically from partition row counts (data skew is visible
/// before the first round runs) and/or from a DiffMetrics window over the
/// wave driver's `skalla_dist_site_round_seconds{site="N"}` histograms,
/// then refined every round from the driver's per-slot wall timings. The
/// detector is intentionally coordinator-side state: it survives across
/// rounds (and across queries when owned by the Warehouse) so repeat
/// offenders — slow hardware, heavy-hitter partitions — are caught from
/// their first round of the next query. Rate state is internally
/// synchronized (the serving layer runs concurrent queries against one
/// warehouse-owned detector); the config is not — set it before serving.
class SkewDetector {
 public:
  explicit SkewDetector(RebalanceConfig config = RebalanceConfig())
      : config_(config) {}

  const RebalanceConfig& config() const { return config_; }
  RebalanceConfig& mutable_config() { return config_; }

  /// Number of slots the detector currently tracks.
  int num_slots() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int>(rate_.size());
  }

  /// Current cost-per-row estimate of a slot (1.0 until observed).
  double CostPerRow(int slot) const;

  /// Static prior from per-slot detail row counts: pure data skew (a hot
  /// partition) shows up as load = rows * rate even with all rates equal,
  /// so seeding just declares the slots. Also resets stale slots when the
  /// topology changed.
  void SeedRows(size_t num_slots);

  /// Seeds relative per-row rates from a registry window (DiffMetrics of
  /// SnapshotMetrics taken around earlier queries): each
  /// `skalla_dist_site_round_seconds{site="N"}` histogram's mean
  /// observation, normalized by the across-site mean, becomes slot N's
  /// initial rate. Slots absent from the window keep their current rate.
  void SeedFromMetricsWindow(const std::vector<obs::MetricValue>& window);

  /// Folds one round's observation for a slot: `seconds` of site wall time
  /// over `rows` scanned detail rows.
  void ObserveRound(int slot, double seconds, int64_t rows);

  /// Plans the upcoming round over the participating slots and their
  /// detail row counts (parallel vectors): predicts load_i = rows_i *
  /// rate_i, and when the max exceeds the mean by the configured threshold
  /// proposes splitting the hot slot so that it keeps the larger of half
  /// its scan and a mean-sized share (the single helper must not become
  /// the new straggler). Returns a no-split decision (with `why`) when
  /// balanced,
  /// disabled, or the split would be out of bounds.
  RebalanceDecision PlanRound(const std::vector<int>& slots,
                              const std::vector<int64_t>& rows) const;

 private:
  /// Rate lookup without the lock (callers hold mu_).
  double RateAt(int slot) const;

  mutable std::mutex mu_;
  RebalanceConfig config_;
  std::vector<double> rate_;      ///< EWMA seconds per detail row (scaled)
  std::vector<bool> observed_;    ///< rate_[i] backed by a real sample?
};

}  // namespace skalla

#endif  // SKALLA_DIST_REBALANCE_H_


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tpc/dbgen.cc" "src/tpc/CMakeFiles/skalla_tpc.dir/dbgen.cc.o" "gcc" "src/tpc/CMakeFiles/skalla_tpc.dir/dbgen.cc.o.d"
  "/root/repo/src/tpc/partitioner.cc" "src/tpc/CMakeFiles/skalla_tpc.dir/partitioner.cc.o" "gcc" "src/tpc/CMakeFiles/skalla_tpc.dir/partitioner.cc.o.d"
  "/root/repo/src/tpc/star.cc" "src/tpc/CMakeFiles/skalla_tpc.dir/star.cc.o" "gcc" "src/tpc/CMakeFiles/skalla_tpc.dir/star.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/skalla_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/skalla_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/skalla_common.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/skalla_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/agg/CMakeFiles/skalla_agg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

#include "server/protocol.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "common/string_util.h"

namespace skalla {
namespace server {

namespace {

/// Pops the next whitespace-delimited token off `*rest` (which is trimmed
/// of leading whitespace first). Empty result means end of input.
std::string_view NextToken(std::string_view* rest) {
  size_t start = 0;
  while (start < rest->size() &&
         std::isspace(static_cast<unsigned char>((*rest)[start]))) {
    ++start;
  }
  size_t end = start;
  while (end < rest->size() &&
         !std::isspace(static_cast<unsigned char>((*rest)[end]))) {
    ++end;
  }
  std::string_view token = rest->substr(start, end - start);
  rest->remove_prefix(end);
  return token;
}

Result<int64_t> ParseInt(std::string_view token, const char* what) {
  const std::string s(token);
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (s.empty() || end != s.c_str() + s.size() || errno == ERANGE) {
    return Status::InvalidArgument(std::string(what) + " expects an integer, got '" + s + "'");
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(std::string_view token, const char* what) {
  const std::string s(token);
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str(), &end);
  if (s.empty() || end != s.c_str() + s.size() || errno == ERANGE) {
    return Status::InvalidArgument(std::string(what) + " expects a number, got '" + s + "'");
  }
  return v;
}

}  // namespace

std::string EncodeFrame(std::string_view payload) {
  const uint32_t n = static_cast<uint32_t>(payload.size());
  std::string frame;
  frame.reserve(kFramePrefixBytes + payload.size());
  frame.push_back(static_cast<char>((n >> 24) & 0xff));
  frame.push_back(static_cast<char>((n >> 16) & 0xff));
  frame.push_back(static_cast<char>((n >> 8) & 0xff));
  frame.push_back(static_cast<char>(n & 0xff));
  frame.append(payload);
  return frame;
}

Result<std::optional<std::string>> DecodeFrame(std::string* buffer) {
  if (buffer->size() < kFramePrefixBytes) return std::optional<std::string>();
  const auto* b = reinterpret_cast<const unsigned char*>(buffer->data());
  const uint64_t n = (uint64_t{b[0]} << 24) | (uint64_t{b[1]} << 16) |
                     (uint64_t{b[2]} << 8) | uint64_t{b[3]};
  if (n > kMaxFrameBytes) {
    return Status::InvalidArgument(
        "frame length " + std::to_string(n) + " exceeds the " +
        std::to_string(kMaxFrameBytes) + "-byte cap");
  }
  if (buffer->size() < kFramePrefixBytes + n) {
    return std::optional<std::string>();
  }
  std::string payload = buffer->substr(kFramePrefixBytes, n);
  buffer->erase(0, kFramePrefixBytes + n);
  return std::optional<std::string>(std::move(payload));
}

Result<Command> ParseCommand(std::string_view text) {
  if (text.find('\0') != std::string_view::npos) {
    return Status::InvalidArgument("command contains an embedded NUL byte");
  }
  std::string_view rest = text;
  const std::string word = ToLower(NextToken(&rest));
  if (word.empty()) {
    return Status::InvalidArgument("empty command");
  }

  Command cmd;
  if (word == "stats") {
    cmd.type = CommandType::kStats;
    if (!NextToken(&rest).empty()) {
      return Status::InvalidArgument("STATS takes no arguments");
    }
    return cmd;
  }

  if (word == "metrics") {
    cmd.type = CommandType::kMetrics;
    const std::string arg = ToLower(NextToken(&rest));
    if (arg == "json") {
      cmd.metrics_json = true;
    } else if (!arg.empty()) {
      return Status::InvalidArgument("METRICS takes JSON or no argument");
    }
    if (!NextToken(&rest).empty()) {
      return Status::InvalidArgument("METRICS takes at most one argument");
    }
    return cmd;
  }

  if (word == "cancel") {
    cmd.type = CommandType::kCancel;
    const std::string_view arg = NextToken(&rest);
    if (arg.empty()) {
      return Status::InvalidArgument("CANCEL expects a query id or ALL");
    }
    if (ToLower(arg) == "all") {
      cmd.cancel_all = true;
    } else {
      SKALLA_ASSIGN_OR_RETURN(int64_t id, ParseInt(arg, "CANCEL"));
      if (id < 0) return Status::InvalidArgument("CANCEL id must be >= 0");
      cmd.cancel_id = static_cast<uint64_t>(id);
    }
    if (!NextToken(&rest).empty()) {
      return Status::InvalidArgument("CANCEL takes a single argument");
    }
    return cmd;
  }

  if (word == "load") {
    cmd.type = CommandType::kLoad;
    cmd.load_kind = ToLower(NextToken(&rest));
    if (cmd.load_kind != "tpcr" && cmd.load_kind != "flow") {
      return Status::InvalidArgument(
          "LOAD expects a dataset kind (tpcr or flow)");
    }
    SKALLA_ASSIGN_OR_RETURN(cmd.load_rows,
                            ParseInt(NextToken(&rest), "LOAD rows"));
    if (cmd.load_rows <= 0) {
      return Status::InvalidArgument("LOAD rows must be positive");
    }
    if (!NextToken(&rest).empty()) {
      return Status::InvalidArgument("LOAD takes kind and rows only");
    }
    return cmd;
  }

  if (word == "mutate") {
    cmd.type = CommandType::kMutate;
    cmd.mutate_table = std::string(NextToken(&rest));
    if (cmd.mutate_table.empty()) {
      return Status::InvalidArgument("MUTATE expects a table name");
    }
    const std::string verb = ToLower(NextToken(&rest));
    if (verb != "append") {
      return Status::InvalidArgument("MUTATE supports APPEND only, got '" +
                                     verb + "'");
    }
    cmd.mutate_row_csv = std::string(StripWhitespace(rest));
    if (cmd.mutate_row_csv.empty()) {
      return Status::InvalidArgument("MUTATE APPEND expects a CSV row");
    }
    return cmd;
  }

  if (word == "query" || word == "profile") {
    cmd.type =
        word == "query" ? CommandType::kQuery : CommandType::kProfile;
    // Options come before the query text; the first token that is not an
    // option keyword starts the OLAP dialect text.
    while (true) {
      std::string_view peek = rest;
      const std::string_view raw = NextToken(&peek);
      const std::string option = ToLower(raw);
      if (option == "priority") {
        rest = peek;
        const std::string level = ToLower(NextToken(&rest));
        if (level == "low") {
          cmd.priority = QueryPriority::kLow;
        } else if (level == "normal") {
          cmd.priority = QueryPriority::kNormal;
        } else if (level == "high") {
          cmd.priority = QueryPriority::kHigh;
        } else {
          return Status::InvalidArgument(
              "PRIORITY expects low, normal, or high");
        }
      } else if (option == "deadline") {
        rest = peek;
        SKALLA_ASSIGN_OR_RETURN(cmd.deadline_sec,
                                ParseDouble(NextToken(&rest), "DEADLINE"));
        if (cmd.deadline_sec < 0) {
          return Status::InvalidArgument("DEADLINE must be >= 0");
        }
      } else if (option == "threads") {
        rest = peek;
        SKALLA_ASSIGN_OR_RETURN(int64_t n,
                                ParseInt(NextToken(&rest), "THREADS"));
        if (n < 0 || n > 1024) {
          return Status::InvalidArgument("THREADS must be in [0, 1024]");
        }
        cmd.threads = static_cast<int>(n);
      } else if (option == "nocache") {
        rest = peek;
        cmd.no_cache = true;
      } else {
        break;
      }
    }
    cmd.query_text = std::string(StripWhitespace(rest));
    if (cmd.query_text.empty()) {
      return Status::InvalidArgument(
          (cmd.type == CommandType::kQuery ? std::string("QUERY")
                                           : std::string("PROFILE")) +
          " expects query text");
    }
    return cmd;
  }

  return Status::InvalidArgument("unknown command '" + word + "'");
}

const char* WireStatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kTypeError:
      return "type_error";
    case StatusCode::kIoError:
      return "io_error";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kNotImplemented:
      return "not_implemented";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kCancelled:
      return "cancelled";
  }
  return "internal";
}

std::optional<StatusCode> WireStatusCodeFromName(std::string_view name) {
  static constexpr StatusCode kAll[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kNotFound,     StatusCode::kAlreadyExists,
      StatusCode::kOutOfRange,   StatusCode::kTypeError,
      StatusCode::kIoError,      StatusCode::kInternal,
      StatusCode::kNotImplemented, StatusCode::kUnavailable,
      StatusCode::kDeadlineExceeded, StatusCode::kCancelled,
  };
  for (StatusCode code : kAll) {
    if (name == WireStatusCodeName(code)) return code;
  }
  return std::nullopt;
}

std::string OkResponse(std::string_view payload) {
  std::string out = "OK\n";
  out.append(payload);
  return out;
}

std::string ErrResponse(const Status& status) {
  std::string out = "ERR ";
  out += WireStatusCodeName(status.code());
  out += '\n';
  out += status.message();
  return out;
}

Result<std::string> ParseResponse(std::string_view response) {
  if (response.rfind("OK\n", 0) == 0) {
    return std::string(response.substr(3));
  }
  if (response.rfind("ERR ", 0) == 0) {
    const size_t nl = response.find('\n');
    const std::string_view code_name =
        response.substr(4, (nl == std::string_view::npos ? response.size()
                                                         : nl) -
                               4);
    const std::string message(
        nl == std::string_view::npos ? "" : response.substr(nl + 1));
    const std::optional<StatusCode> code = WireStatusCodeFromName(code_name);
    if (!code.has_value() || *code == StatusCode::kOk) {
      return Status::IoError("response carries unknown error code '" +
                             std::string(code_name) + "'");
    }
    return Status(*code, message);
  }
  return Status::IoError("response is neither OK nor ERR");
}

}  // namespace server
}  // namespace skalla

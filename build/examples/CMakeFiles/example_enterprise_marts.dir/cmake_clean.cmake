file(REMOVE_RECURSE
  "CMakeFiles/example_enterprise_marts.dir/enterprise_marts.cc.o"
  "CMakeFiles/example_enterprise_marts.dir/enterprise_marts.cc.o.d"
  "example_enterprise_marts"
  "example_enterprise_marts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_enterprise_marts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/skalla_cube.dir/cube.cc.o"
  "CMakeFiles/skalla_cube.dir/cube.cc.o.d"
  "libskalla_cube.a"
  "libskalla_cube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skalla_cube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Network-management analyses from the paper's introduction, run as GMDJ
// queries over a distributed warehouse of router flow data:
//
//  (a) "On an hourly basis, what fraction of the total number of flows is
//       due to Web traffic?"
//  (b) Per source AS: total flows/bytes and the number of "elephant" flows
//      whose byte count exceeds the AS's average (correlated aggregate).
//
//   ./example_netflow_analysis

#include <cstdio>
#include <iostream>

#include "engine/operators.h"
#include "expr/parser.h"
#include "flow/flowgen.h"
#include "skalla/warehouse.h"

namespace {

using namespace skalla;

ExprPtr MustParse(const std::string& text) {
  auto result = ParseExpr(text);
  if (!result.ok()) {
    std::cerr << "parse error: " << result.status() << "\n";
    std::abort();
  }
  return *result;
}

int Run() {
  FlowConfig config;
  config.num_rows = 40000;
  config.num_routers = 8;
  config.num_as = 128;
  config.num_hours = 12;
  Table flows = GenerateFlows(config);

  // Derive the grouping attribute Hour before loading. Division is real
  // division in the expression language, so round down via the modulo:
  // (StartTime - StartTime % 3600) / 3600 is integral-valued.
  auto with_hour = Extend(
      flows, "Hour", MustParse("(StartTime - StartTime % 3600) / 3600"));
  if (!with_hour.ok()) {
    std::cerr << with_hour.status() << "\n";
    return 1;
  }

  Warehouse warehouse(8);
  Status load = warehouse.LoadByRange("Flow", *with_hour, "SourceAS", 0,
                                      config.num_as - 1, {"SourceAS"});
  if (!load.ok()) {
    std::cerr << load << "\n";
    return 1;
  }

  // ---- (a) Hourly web-traffic fraction: one GMDJ operator with two
  //      blocks — total flows, and flows on ports 80/443. ----
  GmdjExpr hourly;
  hourly.base.source_table = "Flow";
  hourly.base.project_cols = {"Hour"};
  {
    GmdjOp op;
    op.detail_table = "Flow";
    GmdjBlock total;
    total.aggs = {AggSpec::Count("total_flows"),
                  AggSpec::Sum("NumBytes", "total_bytes")};
    total.theta = MustParse("B.Hour = R.Hour");
    GmdjBlock web;
    web.aggs = {AggSpec::Count("web_flows")};
    web.theta = MustParse(
        "B.Hour = R.Hour && (R.DestPort = 80 || R.DestPort = 443)");
    op.blocks = {total, web};
    hourly.ops.push_back(op);
  }

  auto hourly_result = warehouse.Execute(hourly, OptimizerOptions::All());
  if (!hourly_result.ok()) {
    std::cerr << hourly_result.status() << "\n";
    return 1;
  }
  auto sorted = SortedBy(hourly_result->table, {"Hour"});
  if (!sorted.ok()) {
    std::cerr << sorted.status() << "\n";
    return 1;
  }
  std::cout << "Hourly web-traffic fraction:\n";
  std::cout << "  hour  total_flows  web_flows  web_share\n";
  for (int64_t r = 0; r < sorted->num_rows(); ++r) {
    const int64_t hour = static_cast<int64_t>(sorted->Get(r, 0).ToDouble());
    const int64_t total = sorted->Get(r, 1).AsInt64();
    const int64_t web = sorted->Get(r, 3).AsInt64();
    std::printf("  %4lld  %11lld  %9lld  %8.1f%%\n",
                static_cast<long long>(hour), static_cast<long long>(total),
                static_cast<long long>(web),
                total ? 100.0 * static_cast<double>(web) /
                            static_cast<double>(total)
                      : 0.0);
  }
  std::cout << "\nmetrics: " << hourly_result->metrics.ToString() << "\n";

  // ---- (b) Correlated aggregate per source AS: elephants above the AS's
  //      average flow size. SourceAS is the partition attribute, so the
  //      optimizer evaluates the whole chain locally (single round). ----
  GmdjExpr elephants;
  elephants.base.source_table = "Flow";
  elephants.base.project_cols = {"SourceAS"};
  {
    GmdjOp md1;
    md1.detail_table = "Flow";
    GmdjBlock stats;
    stats.aggs = {AggSpec::Count("flows"), AggSpec::Sum("NumBytes", "bytes"),
                  AggSpec::Avg("NumBytes", "avg_bytes")};
    stats.theta = MustParse("B.SourceAS = R.SourceAS");
    md1.blocks = {stats};
    elephants.ops.push_back(md1);

    GmdjOp md2;
    md2.detail_table = "Flow";
    GmdjBlock above;
    above.aggs = {AggSpec::Count("elephant_flows")};
    above.theta =
        MustParse("B.SourceAS = R.SourceAS && R.NumBytes > B.avg_bytes");
    md2.blocks = {above};
    elephants.ops.push_back(md2);
  }

  auto ele_result = warehouse.Execute(elephants, OptimizerOptions::All());
  if (!ele_result.ok()) {
    std::cerr << ele_result.status() << "\n";
    return 1;
  }
  std::cout << "Elephant-flow analysis (top 10 AS by flows):\n";
  auto by_flows = SortedBy(ele_result->table, {"flows"});
  if (!by_flows.ok()) {
    std::cerr << by_flows.status() << "\n";
    return 1;
  }
  // Print the 10 busiest AS (sorted ascending → take from the end).
  std::cout << "  AS    flows     bytes          avg_bytes    elephants\n";
  for (int64_t i = by_flows->num_rows() - 1;
       i >= 0 && i >= by_flows->num_rows() - 10; --i) {
    std::printf("  %-5lld %-9lld %-14lld %-12.0f %lld\n",
                static_cast<long long>(by_flows->Get(i, 0).AsInt64()),
                static_cast<long long>(by_flows->Get(i, 1).AsInt64()),
                static_cast<long long>(by_flows->Get(i, 2).AsInt64()),
                by_flows->Get(i, 3).AsDouble(),
                static_cast<long long>(by_flows->Get(i, 4).AsInt64()));
  }
  std::cout << "\nplan:\n" << ele_result->plan.Explain();
  std::cout << "metrics: " << ele_result->metrics.ToString() << "\n";
  return 0;
}

}  // namespace

int main() { return Run(); }

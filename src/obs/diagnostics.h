#ifndef SKALLA_OBS_DIAGNOSTICS_H_
#define SKALLA_OBS_DIAGNOSTICS_H_

#include <string>
#include <vector>

#include "obs/journal.h"
#include "obs/metrics.h"

namespace skalla {
namespace obs {

/// Per-site load aggregated from the event journal.
struct SiteLoad {
  int site = -1;
  double cpu_sec = 0;      ///< sum of attempt CPU (finish + timeout records)
  size_t bytes_in = 0;     ///< bytes shipped coordinator->site
  size_t bytes_out = 0;    ///< bytes shipped site->coordinator
  int64_t groups_in = 0;   ///< groups (rows) received
  int64_t groups_out = 0;  ///< groups (rows) produced
  int attempts = 0;
  int retries = 0;
  int timeouts = 0;
  int drops = 0;  ///< messages lost in flight (either direction)
  int failovers = 0;
};

/// Straggler/skew summary across sites: how unevenly CPU and bytes are
/// distributed, and which site is the bottleneck (cf. Beame/Koutris/Suciu,
/// "Skew in Parallel Query Processing": per-worker imbalance, not totals,
/// bounds parallel cost).
struct StragglerReport {
  std::vector<SiteLoad> sites;  ///< sorted by site id
  double cpu_skew = 1.0;        ///< max site CPU / mean site CPU
  double bytes_skew = 1.0;      ///< max site bytes / mean site bytes
  int slowest_site = -1;        ///< site with the most CPU (-1: none)

  /// Multi-line human-readable rendering (used by skalla/report).
  std::string ToString() const;
};

/// Builds the per-site distribution and skew factors from journal records
/// (site-scoped events plus kMessage records involving site endpoints).
StragglerReport ComputeStragglerReport(
    const std::vector<JournalRecord>& journal);

/// Builds the same report from the always-on metrics registry instead of a
/// post-hoc journal scan: `skalla_dist_site_round_seconds{site=...}` gives
/// per-site CPU and attempts, `skalla_dist_site_bytes_total{dir=...,
/// site=...}` gives per-site traffic. Pass SnapshotMetrics() for lifetime
/// totals or DiffMetrics(before, after) for a scoped window (the PROFILE
/// verb scopes one query this way). Per-site retry/timeout breakdowns are
/// journal-only; the registry keeps process-level totals of those.
StragglerReport ComputeStragglerReportFromMetrics(
    const std::vector<MetricValue>& values);

}  // namespace obs
}  // namespace skalla

#endif  // SKALLA_OBS_DIAGNOSTICS_H_

#include <gtest/gtest.h>

#include "skalla/queries.h"
#include "skalla/warehouse.h"
#include "test_util.h"
#include "tpc/dbgen.h"

namespace skalla {
namespace {

TEST(ExecuteAutoTest, ProducesCorrectResultsAndReportsChoice) {
  Warehouse wh(8);
  TpcConfig config;
  config.num_rows = 8000;
  config.num_customers = 800;
  Table tpcr = GenerateTpcr(config);
  ASSERT_OK(wh.LoadByRange("TPCR", tpcr, "NationKey", 0, 24, {"CustKey"}));

  for (const auto& [name, query] :
       std::vector<std::pair<std::string, GmdjExpr>>{
           {"group", queries::GroupReductionQuery("CustKey")},
           {"combined", queries::CombinedQuery("CustKey")},
           {"multifeature", queries::MultiFeatureQuery("NationKey")}}) {
    SCOPED_TRACE(name);
    ASSERT_OK_AND_ASSIGN(Table expected, wh.ExecuteCentralized(query));
    int fan_in = -1;
    ASSERT_OK_AND_ASSIGN(QueryResult result, wh.ExecuteAuto(query, &fan_in));
    ExpectSameRows(result.table, expected);
    EXPECT_TRUE(fan_in == 0 || fan_in == 2 || fan_in == 4) << fan_in;
  }
}

TEST(ExecuteAutoTest, PicksTreeOnBandwidthBoundNetworkAtScale) {
  Warehouse wh(16);
  TpcConfig config;
  config.num_rows = 16000;
  config.num_customers = 3200;
  config.num_nations = 16;
  Table tpcr = GenerateTpcr(config);
  ASSERT_OK(wh.LoadByRange("TPCR", tpcr, "NationKey", 0, 15, {"CustKey"}));

  // On the naive plan the flat root link is the bottleneck; but ExecuteAuto
  // always optimizes fully, so the plan may collapse to one fused round
  // where flat and tree are close. Force the interesting case via a query
  // whose grouping attribute carries no distribution knowledge.
  NetworkConfig slow;
  slow.bandwidth_bytes_per_sec = 128.0 * 1024;
  slow.latency_sec = 0.0001;
  wh.set_network_config(slow);

  const GmdjExpr query = queries::GroupReductionQuery("CustName");
  ASSERT_OK_AND_ASSIGN(Table expected, wh.ExecuteCentralized(query));
  int fan_in = -1;
  ASSERT_OK_AND_ASSIGN(QueryResult result, wh.ExecuteAuto(query, &fan_in));
  ExpectSameRows(result.table, expected);
  // CustName is not provably a partition attribute, so the structure is
  // broadcast every round: the tree must win on this network.
  EXPECT_NE(fan_in, 0);
}

TEST(ExecuteAutoTest, StatsAreCachedAcrossQueries) {
  Warehouse wh(4);
  TpcConfig config;
  config.num_rows = 1000;
  config.num_customers = 100;
  Table tpcr = GenerateTpcr(config);
  ASSERT_OK(wh.LoadByRange("TPCR", tpcr, "NationKey", 0, 24, {"CustKey"}));
  const GmdjExpr query = queries::CoalescingQuery("ClerkKey");
  ASSERT_OK_AND_ASSIGN(QueryResult first, wh.ExecuteAuto(query));
  ASSERT_OK_AND_ASSIGN(QueryResult second, wh.ExecuteAuto(query));
  ExpectSameRows(first.table, second.table);
}

}  // namespace
}  // namespace skalla

#ifndef SKALLA_DIST_TREE_COORDINATOR_H_
#define SKALLA_DIST_TREE_COORDINATOR_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "dist/metrics.h"
#include "dist/plan.h"
#include "dist/rebalance.h"
#include "dist/site.h"
#include "net/cost_model.h"
#include "net/sim_network.h"

namespace skalla {

/// \brief A k-ary aggregation tree over the warehouse sites.
///
/// The paper's conclusions name "multi-tiered coordinator architectures or
/// spanning-tree networks" as future work; this topology realizes it.
/// Leaves are the Skalla sites; internal nodes are aggregator instances
/// that merge their children's sub-results (Theorem 1 composes, so merging
/// is correct at any level) before forwarding a single combined relation
/// upward. Each node has its own network link, so sibling subtrees
/// transfer in parallel — trading extra hops (latency) for a root link
/// that carries one relation per child instead of one per site.
struct TreeTopology {
  struct Node {
    int id = -1;
    int parent = -1;
    std::vector<int> children;  ///< empty for leaves
    int site_index = -1;        ///< leaf only: index into the site vector
    int level = 0;              ///< 0 = leaves, increasing upward
  };

  std::vector<Node> nodes;
  int root = -1;
  int num_levels = 0;  ///< levels of nodes (1 = degenerate single node)

  /// Builds a bottom-up k-ary tree over `num_sites` leaves.
  /// Requires num_sites >= 1 and fan_in >= 2.
  static TreeTopology Build(int num_sites, int fan_in);

  /// Nodes at a level, bottom-up.
  std::vector<int> NodesAtLevel(int level) const;

  std::string ToString() const;
};

/// \brief Executes distributed plans over a multi-tier aggregation tree.
///
/// Supports the same plans as the flat Coordinator except per-site
/// distribution-aware ship predicates (an aggregator would need the union
/// of its subtree's predicates; rounds with aware_group_reduction are
/// executed without it). Results are identical to the flat coordinator;
/// only the cost profile differs.
class TreeCoordinator {
 public:
  TreeCoordinator(std::vector<Site*> sites, int fan_in,
                  NetworkConfig config = NetworkConfig());

  /// Executes the plan, filling `metrics` when non-null.
  Result<Table> Execute(const DistributedPlan& plan,
                        ExecutionMetrics* metrics);

  const TreeTopology& topology() const { return topology_; }

  /// The simulated network all tree traffic is recorded on. Leaf edges
  /// (site endpoints) are subject to an attached FaultInjector and retried
  /// per NetworkConfig::retry; aggregator-internal hops are assumed
  /// reliable (they are encoded with EncodeAggregatorId endpoints).
  SimNetwork& network() { return network_; }

  /// Registers a failover replica for leaf site `site_id`; see
  /// Coordinator::AddReplica.
  void AddReplica(int site_id, Site* replica) {
    replicas_[site_id] = replica;
  }

  /// Evaluates the leaves of each round on real threads (identical results,
  /// faster simulation wall-clock); see Coordinator::set_parallel_sites.
  void set_parallel_sites(bool parallel) { parallel_sites_ = parallel; }

  /// Lanes per leaf's morsel-driven local evaluation; see
  /// Coordinator::set_local_threads.
  void set_local_threads(int num_threads) { local_threads_ = num_threads; }

  /// Attaches a skew detector; see Coordinator::set_skew_detector. A split
  /// straggler's helper replies to the straggler's own tree parent, and
  /// the two H fragments are pre-combined (CombineSubResults) before the
  /// upward propagation, so aggregators above see exactly one table per
  /// leaf — byte-identical to the unsplit round.
  void set_skew_detector(SkewDetector* detector) { skew_detector_ = detector; }

 private:
  std::vector<Site*> sites_;
  std::map<int, Site*> replicas_;
  TreeTopology topology_;
  SimNetwork network_;
  bool parallel_sites_ = false;
  int local_threads_ = 0;
  SkewDetector* skew_detector_ = nullptr;
};

}  // namespace skalla

#endif  // SKALLA_DIST_TREE_COORDINATOR_H_

file(REMOVE_RECURSE
  "CMakeFiles/example_datacube.dir/datacube.cc.o"
  "CMakeFiles/example_datacube.dir/datacube.cc.o.d"
  "example_datacube"
  "example_datacube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_datacube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#ifndef SKALLA_DIST_COORDINATOR_H_
#define SKALLA_DIST_COORDINATOR_H_

#include <map>
#include <memory>
#include <vector>

#include "common/result.h"
#include "dist/metrics.h"
#include "dist/plan.h"
#include "dist/site.h"
#include "net/sim_network.h"

namespace skalla {

/// Nominal wire size of a shipped query plan (control message).
inline constexpr size_t kQueryPlanBytes = 512;

/// \brief The Skalla coordinator: drives Alg. GMDJDistribEval.
///
/// The coordinator owns the simulated network and the base-result structure
/// X. For each round it ships X (possibly per-site reduced) to the
/// participating sites, receives their sub-aggregate relations H_i, and
/// synchronizes them into X via the super-aggregates (Theorem 1). The merge
/// is O(|H|) thanks to a hash index on the key attributes K.
///
/// Sites are borrowed, not owned; they must outlive the coordinator.
class Coordinator {
 public:
  Coordinator(std::vector<Site*> sites, NetworkConfig config = NetworkConfig())
      : sites_(std::move(sites)), network_(config) {}

  /// Executes a distributed plan and returns the finalized base-result
  /// structure (= the query answer). Fills `metrics` when non-null.
  Result<Table> Execute(const DistributedPlan& plan,
                        ExecutionMetrics* metrics);

  SimNetwork& network() { return network_; }
  const std::vector<Site*>& sites() const { return sites_; }

  /// Registers `replica` as the failover target for primary slot
  /// `site_id`. When the primary exhausts its retry budget during a query,
  /// the slot fails over (at most once) to the replica — provided the
  /// replica's partition predicate covers the primary's (see
  /// CoversPartition); otherwise the query returns kUnavailable. The
  /// replica is borrowed and must outlive the coordinator.
  void AddReplica(int site_id, Site* replica) {
    replicas_[site_id] = replica;
  }
  const std::map<int, Site*>& replicas() const { return replicas_; }

  /// Evaluates the sites of each round on real threads (one per site)
  /// instead of sequentially. Results are identical — synchronization
  /// happens in deterministic site order either way — only the wall-clock
  /// time of the simulation changes (the *modelled* response time already
  /// treats sites as parallel).
  void set_parallel_sites(bool parallel) { parallel_sites_ = parallel; }
  bool parallel_sites() const { return parallel_sites_; }

  /// Lanes each site may use for its morsel-driven local GMDJ evaluation
  /// (SiteRoundInput::num_threads): 0 = the SKALLA_THREADS default, 1 =
  /// sequential local scans. Orthogonal to set_parallel_sites — both feed
  /// the same shared pool (common/thread_pool.h).
  void set_local_threads(int num_threads) { local_threads_ = num_threads; }
  int local_threads() const { return local_threads_; }

  /// Looks up a relation schema from the first site that holds a partition
  /// of it (all sites share global relation schemas).
  Result<SchemaPtr> FindSchema(const std::string& table_name) const;

  /// Builds the schema map for a plan's relations (base source + details).
  Result<SchemaMap> CollectSchemas(const DistributedPlan& plan) const;

 private:
  std::vector<Site*> sites_;
  std::map<int, Site*> replicas_;
  SimNetwork network_;
  bool parallel_sites_ = false;
  int local_threads_ = 0;
};

/// Theorem 2's bound on groups transferred by Alg. GMDJDistribEval:
/// Σ_rounds (2 · s_i · |Q|) + s_0 · |Q|, with |Q| = `q_rows` result rows.
/// Any execution's GroupsToSites()+GroupsToCoord() must not exceed it.
int64_t TheoremTwoGroupBound(const DistributedPlan& plan, int num_sites,
                             int64_t q_rows);

}  // namespace skalla

#endif  // SKALLA_DIST_COORDINATOR_H_

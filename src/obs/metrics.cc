#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>

#include "obs/trace.h"

namespace skalla {
namespace obs {

namespace internal {
std::atomic<bool> g_metrics_enabled{true};
}  // namespace internal

namespace {

// One registry per process. Leaked on purpose (same rationale as the
// tracer's State()): instrumented code may still update counters during
// static destruction.
struct RegistryState {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
};

RegistryState& State() {
  static RegistryState* state = new RegistryState();
  return *state;
}

// Reads SKALLA_METRICS once at process start; the registry defaults on.
const bool g_env_initialized = [] {
  const char* env = std::getenv("SKALLA_METRICS");
  if (env != nullptr && (std::strcmp(env, "0") == 0 ||
                         std::strcmp(env, "off") == 0 ||
                         std::strcmp(env, "false") == 0)) {
    internal::g_metrics_enabled.store(false, std::memory_order_relaxed);
  }
  return true;
}();

void AtomicAddDouble(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

// Shortest %g-style formatting, stable across platforms for the values the
// registry produces (bucket bounds are products of small powers, counts are
// integers). Used by the exposition and JSONL writers.
std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return std::string(buf);
}

// Quantile from bucket counts shared by Histogram and MetricValue.
double QuantileFromBuckets(const std::vector<double>& bounds,
                           const std::vector<uint64_t>& buckets,
                           uint64_t count, double q) {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    const uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += in_bucket;
    if (static_cast<double>(cumulative) < target) continue;
    if (i >= bounds.size()) return bounds.empty() ? 0.0 : bounds.back();
    const double lower = i == 0 ? 0.0 : bounds[i - 1];
    const double upper = bounds[i];
    const double fraction =
        std::clamp((target - before) / static_cast<double>(in_bucket), 0.0, 1.0);
    return lower + (upper - lower) * fraction;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

std::string JsonEscapeLocal(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 8);
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void EnableMetrics(bool enabled) {
  internal::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

uint32_t MetricThreadShard() {
  return CurrentThreadIndex() & (kMetricShards - 1);
}

// ---- Counter ---------------------------------------------------------------

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (auto& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

// ---- Gauge -----------------------------------------------------------------

int64_t Gauge::Value() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Gauge::Reset() {
  for (auto& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

// ---- Histogram -------------------------------------------------------------

Histogram::Histogram(const HistogramLayout& layout) {
  const int buckets = std::max(1, layout.buckets);
  bounds_.reserve(buckets);
  double bound = layout.start;
  for (int i = 0; i < buckets; ++i) {
    bounds_.push_back(bound);
    bound *= layout.growth;
  }
  stride_ = bounds_.size() + 1;
  counts_.reset(new std::atomic<uint64_t>[stride_ * kMetricShards]);
  for (size_t i = 0; i < stride_ * kMetricShards; ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double value) {
  if (!MetricsEnabled()) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const size_t bucket = static_cast<size_t>(it - bounds_.begin());
  const size_t shard = MetricThreadShard();
  counts_[shard * stride_ + bucket].fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sums_[shard].value, value);
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (size_t i = 0; i < stride_ * kMetricShards; ++i) {
    total += counts_[i].load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Sum() const {
  double total = 0;
  for (const auto& shard : sums_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> totals(stride_, 0);
  for (int shard = 0; shard < kMetricShards; ++shard) {
    for (size_t b = 0; b < stride_; ++b) {
      totals[b] += counts_[shard * stride_ + b].load(std::memory_order_relaxed);
    }
  }
  return totals;
}

double Histogram::Quantile(double q) const {
  const std::vector<uint64_t> buckets = BucketCounts();
  uint64_t count = 0;
  for (uint64_t b : buckets) count += b;
  return QuantileFromBuckets(bounds_, buckets, count, q);
}

void Histogram::Reset() {
  for (size_t i = 0; i < stride_ * kMetricShards; ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  for (auto& shard : sums_) {
    shard.value.store(0.0, std::memory_order_relaxed);
  }
}

ScopedHistogramTimer::ScopedHistogramTimer(Histogram* histogram) {
  if (histogram == nullptr || !MetricsEnabled()) return;
  histogram_ = histogram;
  start_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now().time_since_epoch())
                  .count();
}

ScopedHistogramTimer::~ScopedHistogramTimer() {
  if (histogram_ == nullptr) return;
  const int64_t end_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now().time_since_epoch())
                             .count();
  histogram_->Observe(static_cast<double>(end_ns - start_ns_) * 1e-9);
}

// ---- Registry --------------------------------------------------------------

Counter& GetCounter(std::string_view name) {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.counters.find(name);
  if (it == state.counters.end()) {
    it = state.counters
             .emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& GetGauge(std::string_view name) {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.gauges.find(name);
  if (it == state.gauges.end()) {
    it = state.gauges.emplace(std::string(name), std::make_unique<Gauge>())
             .first;
  }
  return *it->second;
}

Histogram& GetHistogram(std::string_view name, const HistogramLayout& layout) {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.histograms.find(name);
  if (it == state.histograms.end()) {
    it = state.histograms
             .emplace(std::string(name), std::make_unique<Histogram>(layout))
             .first;
  }
  return *it->second;
}

void ResetMetrics() {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  for (auto& [name, counter] : state.counters) counter->Reset();
  for (auto& [name, gauge] : state.gauges) gauge->Reset();
  for (auto& [name, histogram] : state.histograms) histogram->Reset();
}

double MetricValue::Quantile(double q) const {
  return QuantileFromBuckets(bounds, buckets, hist_count, q);
}

std::vector<MetricValue> SnapshotMetrics() {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  std::vector<MetricValue> values;
  values.reserve(state.counters.size() + state.gauges.size() +
                 state.histograms.size());
  for (const auto& [name, counter] : state.counters) {
    MetricValue v;
    v.name = name;
    v.kind = MetricKind::kCounter;
    v.counter_value = counter->Value();
    values.push_back(std::move(v));
  }
  for (const auto& [name, gauge] : state.gauges) {
    MetricValue v;
    v.name = name;
    v.kind = MetricKind::kGauge;
    v.gauge_value = gauge->Value();
    values.push_back(std::move(v));
  }
  for (const auto& [name, histogram] : state.histograms) {
    MetricValue v;
    v.name = name;
    v.kind = MetricKind::kHistogram;
    v.bounds = histogram->bounds();
    v.buckets = histogram->BucketCounts();
    v.hist_sum = histogram->Sum();
    for (uint64_t b : v.buckets) v.hist_count += b;
    values.push_back(std::move(v));
  }
  std::sort(values.begin(), values.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return a.name < b.name;
            });
  return values;
}

std::vector<MetricValue> DiffMetrics(const std::vector<MetricValue>& before,
                                     const std::vector<MetricValue>& after) {
  std::map<std::string, const MetricValue*> base;
  for (const MetricValue& v : before) base[v.name] = &v;
  std::vector<MetricValue> out;
  out.reserve(after.size());
  for (const MetricValue& v : after) {
    MetricValue d = v;
    const auto it = base.find(v.name);
    if (it != base.end() && it->second->kind == v.kind) {
      const MetricValue& b = *it->second;
      switch (v.kind) {
        case MetricKind::kCounter:
          d.counter_value = v.counter_value - b.counter_value;
          break;
        case MetricKind::kGauge:
          break;  // a gauge is a level, not a flow: keep `after`
        case MetricKind::kHistogram:
          d.hist_count = v.hist_count - b.hist_count;
          d.hist_sum = v.hist_sum - b.hist_sum;
          for (size_t i = 0; i < d.buckets.size() && i < b.buckets.size();
               ++i) {
            d.buckets[i] = v.buckets[i] - b.buckets[i];
          }
          break;
      }
    }
    out.push_back(std::move(d));
  }
  return out;
}

void SplitMetricName(const std::string& name, std::string* base,
                     std::string* labels) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') {
    *base = name;
    labels->clear();
    return;
  }
  *base = name.substr(0, brace);
  *labels = name.substr(brace + 1, name.size() - brace - 2);
}

std::string ExposeMetrics(const std::vector<MetricValue>& values) {
  std::string out;
  std::string last_typed;
  for (const MetricValue& v : values) {
    std::string base;
    std::string labels;
    SplitMetricName(v.name, &base, &labels);
    if (base != last_typed) {
      out += "# TYPE " + base + " ";
      switch (v.kind) {
        case MetricKind::kCounter:
          out += "counter";
          break;
        case MetricKind::kGauge:
          out += "gauge";
          break;
        case MetricKind::kHistogram:
          out += "histogram";
          break;
      }
      out += "\n";
      last_typed = base;
    }
    switch (v.kind) {
      case MetricKind::kCounter:
        out += v.name + " " + std::to_string(v.counter_value) + "\n";
        break;
      case MetricKind::kGauge:
        out += v.name + " " + std::to_string(v.gauge_value) + "\n";
        break;
      case MetricKind::kHistogram: {
        const std::string prefix = labels.empty() ? "" : labels + ",";
        uint64_t cumulative = 0;
        for (size_t i = 0; i < v.buckets.size(); ++i) {
          cumulative += v.buckets[i];
          const std::string le =
              i < v.bounds.size() ? FormatDouble(v.bounds[i]) : "+Inf";
          out += base + "_bucket{" + prefix + "le=\"" + le + "\"} " +
                 std::to_string(cumulative) + "\n";
        }
        const std::string suffix =
            labels.empty() ? "" : "{" + labels + "}";
        out += base + "_sum" + suffix + " " + FormatDouble(v.hist_sum) + "\n";
        out += base + "_count" + suffix + " " + std::to_string(cumulative) +
               "\n";
        break;
      }
    }
  }
  return out;
}

std::string ExposeMetrics() { return ExposeMetrics(SnapshotMetrics()); }

std::string MetricsJsonl(const std::vector<MetricValue>& values) {
  std::string out;
  for (const MetricValue& v : values) {
    out += "{\"name\":\"" + JsonEscapeLocal(v.name) + "\"";
    switch (v.kind) {
      case MetricKind::kCounter:
        out += ",\"kind\":\"counter\",\"value\":" +
               std::to_string(v.counter_value);
        break;
      case MetricKind::kGauge:
        out +=
            ",\"kind\":\"gauge\",\"value\":" + std::to_string(v.gauge_value);
        break;
      case MetricKind::kHistogram: {
        out += ",\"kind\":\"histogram\",\"count\":" +
               std::to_string(v.hist_count) +
               ",\"sum\":" + FormatDouble(v.hist_sum);
        out += ",\"p50\":" + FormatDouble(v.Quantile(0.50)) +
               ",\"p95\":" + FormatDouble(v.Quantile(0.95)) +
               ",\"p99\":" + FormatDouble(v.Quantile(0.99));
        out += ",\"bounds\":[";
        for (size_t i = 0; i < v.bounds.size(); ++i) {
          if (i > 0) out += ",";
          out += FormatDouble(v.bounds[i]);
        }
        out += "],\"buckets\":[";
        for (size_t i = 0; i < v.buckets.size(); ++i) {
          if (i > 0) out += ",";
          out += std::to_string(v.buckets[i]);
        }
        out += "]";
        break;
      }
    }
    out += "}\n";
  }
  return out;
}

std::string MetricsJsonl() { return MetricsJsonl(SnapshotMetrics()); }

}  // namespace obs
}  // namespace skalla

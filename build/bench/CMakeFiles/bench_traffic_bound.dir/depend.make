# Empty dependencies file for bench_traffic_bound.
# This may be replaced when dependencies are built.

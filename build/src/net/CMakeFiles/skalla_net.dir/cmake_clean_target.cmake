file(REMOVE_RECURSE
  "libskalla_net.a"
)

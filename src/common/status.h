#ifndef SKALLA_COMMON_STATUS_H_
#define SKALLA_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace skalla {

/// \brief Machine-readable category of a Status.
///
/// Skalla does not use C++ exceptions; every fallible operation returns a
/// Status (or a Result<T>, see result.h). The codes mirror the small set of
/// failure classes that occur in the system.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller supplied malformed input (bad query, schema).
  kNotFound,          ///< Named table, column, or site does not exist.
  kAlreadyExists,     ///< Attempt to register a duplicate name.
  kOutOfRange,        ///< Index or value outside the permitted domain.
  kTypeError,         ///< Expression or aggregate applied to a wrong type.
  kIoError,           ///< File or (simulated) network transfer failed.
  kInternal,          ///< Invariant violation inside Skalla itself.
  kNotImplemented,    ///< Feature intentionally unsupported.
  kUnavailable,       ///< A site stayed unreachable after retries/failover.
  kDeadlineExceeded,  ///< A round's work exceeded its deadline after retries.
  kCancelled,         ///< The caller withdrew the operation (server CANCEL).
};

/// \brief Returns the canonical lower-case name of a status code.
const char* StatusCodeToString(StatusCode code);

/// \brief Result of a fallible operation that produces no value.
///
/// A Status is cheap to copy in the OK case (no allocation) and carries a
/// human-readable message otherwise. Use the factory helpers
/// (Status::InvalidArgument(...) etc.) to construct errors.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "ok" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace skalla

/// Propagates a non-OK Status out of the enclosing function.
#define SKALLA_RETURN_NOT_OK(expr)                   \
  do {                                               \
    ::skalla::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                       \
  } while (false)

/// Evaluates a Result<T> expression, propagating errors, and binds the
/// unwrapped value to `lhs` on success.
#define SKALLA_ASSIGN_OR_RETURN(lhs, expr)           \
  SKALLA_ASSIGN_OR_RETURN_IMPL_(                     \
      SKALLA_CONCAT_(_skalla_result_, __LINE__), lhs, expr)

#define SKALLA_CONCAT_INNER_(x, y) x##y
#define SKALLA_CONCAT_(x, y) SKALLA_CONCAT_INNER_(x, y)

#define SKALLA_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).ValueUnsafe();

#endif  // SKALLA_COMMON_STATUS_H_

#include "gmdj/local_eval.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <numeric>
#include <utility>

#include "common/hash_util.h"
#include "common/thread_pool.h"
#include "expr/analyzer.h"
#include "expr/evaluator.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/columnar.h"
#include "storage/hash_index.h"

namespace skalla {

namespace {

// Process-wide scan counters (ScanCounters in the header). Relaxed is
// enough: they are statistics, never synchronization.
std::atomic<int64_t> g_rows_scanned{0};
std::atomic<int64_t> g_rows_matched{0};
std::atomic<int64_t> g_morsels_vectorized{0};
std::atomic<int64_t> g_morsels_scalar{0};
std::atomic<int64_t> g_batch_fallback_chunks{0};

/// How one aggregate consumes matched detail rows on the vectorized path.
/// Chosen per (block, aggregate) from the columnar view: typed kernels need
/// a usable column of the matching type; everything else — unusable
/// columns, string inputs, mixed-type columns — keeps the boxed Update,
/// which is the scalar path and therefore trivially identical to it.
struct AggKernel {
  enum class Kind : uint8_t { kCountStar, kInt64, kDouble, kBoxed };
  Kind kind = Kind::kBoxed;
  int col = -1;  ///< detail column index; -1 for COUNT(*)
};

/// Per-block execution artifacts prepared before the detail scan.
struct BlockPlan {
  // Hash path: base/probe key column indices (empty → nested loop).
  std::vector<int> base_key_cols;
  std::vector<int> detail_key_cols;
  // Residual predicate (hash path) or the full θ (nested-loop path);
  // nullopt when the hash keys fully cover θ.
  std::optional<CompiledExpr> predicate;
  // Detail column index per aggregate; -1 for COUNT(*).
  std::vector<int> agg_inputs;
};

/// Where one scan lane accumulates matches: |B| × |aggs| states (one
/// block's layout) plus the touched bitmap. Either the shared result
/// arrays (sequential path) or a morsel-private partial (parallel path).
struct ScanTarget {
  AggState* states = nullptr;
  char* touched = nullptr;
};

/// What one scan_range invocation (one morsel, or the whole relation on
/// the sequential path) did — flushed into the process-wide counters and,
/// when the lane span is armed, into its detail string.
struct MorselStats {
  int64_t rows = 0;     ///< detail positions visited (hi − lo)
  int64_t matched = 0;  ///< (base, detail) pairs folded
  bool vectorized = false;
};

/// Upper bound on per-morsel accumulator memory: the morsel count is
/// clamped so that Σ morsel partials ≤ this many AggStates per block. A
/// function of the relation sizes only — never of the lane count — so the
/// morsel grid (and with it the merge order) is reproducible.
constexpr int64_t kPartialStateBudget = int64_t{1} << 20;

/// Base rows per task of the parallel partial fold. Like the morsel grid,
/// a function of |B| only, so the fold decomposition is reproducible.
constexpr int64_t kMergeChunkRows = 4096;

/// Matched (base, detail) pairs buffered by the vectorized hash path are
/// flushed once this many accumulate, bounding the buffer while
/// amortizing the per-aggregate dispatch (longer per-base runs mean
/// fewer batch-kernel calls per pair).
constexpr size_t kHashPairFlush = 32768;

/// The vectorized hash path keeps one selection vector per base row (so
/// flushes run through the per-base batch kernels) while |B| is at most
/// this; larger bases fall back to a flat pair buffer, whose footprint
/// does not scale with |B|.
constexpr int64_t kMaxGroupedFlushBases = 65536;

/// Probe hashes are computed in chunks of this many detail rows, one key
/// column at a time over the typed arrays (the batched hash-path probe;
/// docs/vectorized-execution.md).
constexpr int64_t kProbeHashChunk = 1024;

/// Typed replication of Value::Hash for one cell of a usable columnar
/// key column, combined into hashes[0..n) for detail positions
/// [lo, lo + n). Bit-for-bit the boxed RowKeyHash contribution: NULL
/// hashes to the "null" constant, int64 goes through its double
/// representation when exact, -0.0 normalizes to +0.0, and strings hash
/// once per dictionary code (code_hashes).
void CombineProbeHashes(const ColumnarTable::Column& col,
                        const std::vector<uint64_t>& code_hashes, int64_t lo,
                        size_t n, uint64_t* hashes) {
  constexpr uint64_t kNullHash = 0x6e756c6cULL;  // Value::Hash of NULL
  switch (col.type) {
    case ValueType::kInt64:
      for (size_t k = 0; k < n; ++k) {
        const int64_t i = lo + static_cast<int64_t>(k);
        uint64_t vh = kNullHash;
        if (col.IsValid(i)) {
          const int64_t v = col.ints[static_cast<size_t>(i)];
          const double d = static_cast<double>(v);
          uint64_t bits = static_cast<uint64_t>(v);
          if (static_cast<int64_t>(d) == v) {
            std::memcpy(&bits, &d, sizeof(bits));
          }
          vh = HashInt64(bits);
        }
        hashes[k] = HashCombine(hashes[k], vh);
      }
      return;
    case ValueType::kDouble:
      for (size_t k = 0; k < n; ++k) {
        const int64_t i = lo + static_cast<int64_t>(k);
        uint64_t vh = kNullHash;
        if (col.IsValid(i)) {
          double d = col.doubles[static_cast<size_t>(i)];
          if (d == 0.0) d = 0.0;  // normalize -0.0, as Value::Hash does
          uint64_t bits;
          std::memcpy(&bits, &d, sizeof(bits));
          vh = HashInt64(bits);
        }
        hashes[k] = HashCombine(hashes[k], vh);
      }
      return;
    case ValueType::kString:
      for (size_t k = 0; k < n; ++k) {
        const int64_t i = lo + static_cast<int64_t>(k);
        const int32_t code = col.codes[static_cast<size_t>(i)];
        const uint64_t vh =
            code < 0 ? kNullHash : code_hashes[static_cast<size_t>(code)];
        hashes[k] = HashCombine(hashes[k], vh);
      }
      return;
    case ValueType::kNull:
      // A usable declared-NULL column is all NULL.
      for (size_t k = 0; k < n; ++k) {
        hashes[k] = HashCombine(hashes[k], kNullHash);
      }
      return;
  }
}

/// Typed replication of Value::operator== for one cell of a usable
/// columnar key column against a boxed (base-side) key value: NULL only
/// equals NULL, int64-vs-int64 compares exactly, mixed numerics compare
/// through the same double promotion, strings compare bytes, and
/// cross-kind comparisons are false.
bool CellEqualsValue(const ColumnarTable::Column& col, int64_t d,
                     const Value& v) {
  if (!col.IsValid(d)) return v.is_null();
  if (v.is_null()) return false;
  switch (col.type) {
    case ValueType::kInt64: {
      if (!v.is_numeric()) return false;
      const int64_t c = col.ints[static_cast<size_t>(d)];
      if (v.is_int64()) return c == v.AsInt64();
      return static_cast<double>(c) == v.ToDouble();
    }
    case ValueType::kDouble:
      return v.is_numeric() &&
             col.doubles[static_cast<size_t>(d)] == v.ToDouble();
    case ValueType::kString:
      return v.is_string() &&
             col.dict[static_cast<size_t>(col.codes[static_cast<size_t>(d)])] ==
                 v.AsString();
    case ValueType::kNull:
      return false;  // IsValid above already handled the all-NULL column
  }
  return false;
}

/// Value::Compare of two cells of one usable columnar column, without
/// boxing: NULL sorts first, int64 compares exactly, doubles use the
/// <;> pair (a NaN on either side yields 0, Value::Compare's
/// incomparable-NaN behavior), and strings compare by dictionary order
/// rank. A usable column holds a single runtime type, so the mixed-type
/// branches of Value::Compare cannot be reached.
int CompareTypedCells(const ColumnarTable::Column& col, int64_t a, int64_t b) {
  const bool va = col.IsValid(a);
  const bool vb = col.IsValid(b);
  if (!va || !vb) return va == vb ? 0 : (va ? 1 : -1);
  switch (col.type) {
    case ValueType::kInt64: {
      const int64_t x = col.ints[static_cast<size_t>(a)];
      const int64_t y = col.ints[static_cast<size_t>(b)];
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case ValueType::kDouble: {
      const double x = col.doubles[static_cast<size_t>(a)];
      const double y = col.doubles[static_cast<size_t>(b)];
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case ValueType::kString: {
      const int32_t x = col.order_rank[static_cast<size_t>(
          col.codes[static_cast<size_t>(a)])];
      const int32_t y = col.order_rank[static_cast<size_t>(
          col.codes[static_cast<size_t>(b)])];
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case ValueType::kNull:
      return 0;  // all cells NULL
  }
  return 0;
}

}  // namespace

bool VectorizeEnabledFromEnv() {
  // Read per call (unlike e.g. DefaultWireFormat's static cache) so tests
  // can flip SKALLA_VECTORIZE between evaluations within one process.
  const char* value = std::getenv("SKALLA_VECTORIZE");
  if (value == nullptr || *value == '\0') return true;
  std::string lowered(value);
  for (char& c : lowered) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return lowered != "0" && lowered != "off" && lowered != "false";
}

ScanCounters ScanCountersSnapshot() {
  ScanCounters s;
  s.rows_scanned = g_rows_scanned.load(std::memory_order_relaxed);
  s.rows_matched = g_rows_matched.load(std::memory_order_relaxed);
  s.morsels_vectorized = g_morsels_vectorized.load(std::memory_order_relaxed);
  s.morsels_scalar = g_morsels_scalar.load(std::memory_order_relaxed);
  s.batch_fallback_chunks =
      g_batch_fallback_chunks.load(std::memory_order_relaxed);
  return s;
}

Result<Table> EvalGmdjOp(const Table& base, const Table& detail,
                         const GmdjOp& op, const LocalGmdjOptions& options) {
  obs::ScopedSpan eval_span("gmdj.local_eval");
  if (eval_span.armed()) {
    eval_span.set_detail("base " + std::to_string(base.num_rows()) +
                         " x detail " + std::to_string(detail.num_rows()));
  }
  const Schema& base_schema = base.schema();
  const Schema& detail_schema = detail.schema();

  // Resolve carry columns.
  std::vector<int> carry_indices;
  std::vector<Field> out_fields;
  if (options.carry_cols.empty()) {
    carry_indices.resize(static_cast<size_t>(base_schema.num_fields()));
    for (size_t i = 0; i < carry_indices.size(); ++i) {
      carry_indices[i] = static_cast<int>(i);
      out_fields.push_back(base_schema.field(static_cast<int>(i)));
    }
  } else {
    for (const std::string& name : options.carry_cols) {
      SKALLA_ASSIGN_OR_RETURN(int idx, base_schema.MustIndexOf(name));
      carry_indices.push_back(idx);
      out_fields.push_back(base_schema.field(idx));
    }
  }

  // Prepare per-block plans and output schema.
  std::vector<BlockPlan> plans;
  plans.reserve(op.blocks.size());
  for (const GmdjBlock& block : op.blocks) {
    BlockPlan plan;
    ThetaDecomposition decomposition = DecomposeTheta(block.theta);
    if (!decomposition.pairs.empty()) {
      for (const EquiPair& pair : decomposition.pairs) {
        SKALLA_ASSIGN_OR_RETURN(int b_idx,
                                base_schema.MustIndexOf(pair.base_col));
        SKALLA_ASSIGN_OR_RETURN(int d_idx,
                                detail_schema.MustIndexOf(pair.detail_col));
        plan.base_key_cols.push_back(b_idx);
        plan.detail_key_cols.push_back(d_idx);
      }
      if (decomposition.residual != nullptr) {
        SKALLA_ASSIGN_OR_RETURN(
            CompiledExpr compiled,
            CompiledExpr::Compile(decomposition.residual, &base_schema,
                                  &detail_schema));
        plan.predicate = std::move(compiled);
      }
    } else {
      SKALLA_ASSIGN_OR_RETURN(
          CompiledExpr compiled,
          CompiledExpr::Compile(block.theta, &base_schema, &detail_schema));
      plan.predicate = std::move(compiled);
    }
    for (const AggSpec& spec : block.aggs) {
      if (spec.is_count_star()) {
        plan.agg_inputs.push_back(-1);
      } else {
        SKALLA_ASSIGN_OR_RETURN(int idx,
                                detail_schema.MustIndexOf(spec.input));
        plan.agg_inputs.push_back(idx);
      }
      if (options.mode == AggMode::kFinal) {
        SKALLA_ASSIGN_OR_RETURN(Field f, FinalFieldFor(spec, detail_schema));
        out_fields.push_back(std::move(f));
      } else {
        SKALLA_ASSIGN_OR_RETURN(std::vector<Field> fs,
                                SubFieldsFor(spec, detail_schema));
        out_fields.insert(out_fields.end(), fs.begin(), fs.end());
      }
    }
    plans.push_back(std::move(plan));
  }

  // Aggregate states: per block, |B| × |aggs| accumulators.
  const size_t num_base = static_cast<size_t>(base.num_rows());
  std::vector<std::vector<AggState>> states(op.blocks.size());
  for (size_t blk = 0; blk < op.blocks.size(); ++blk) {
    const auto& aggs = op.blocks[blk].aggs;
    states[blk].reserve(num_base * aggs.size());
    for (size_t r = 0; r < num_base; ++r) {
      for (const AggSpec& spec : aggs) {
        states[blk].emplace_back(spec.func);
      }
    }
  }
  std::vector<char> touched(num_base, 0);

  static const Value kOne(int64_t{1});

  // Compares the projections of two rows onto (possibly different) key
  // column lists; used by the sort-merge path.
  auto compare_keys = [](const Row& a, const std::vector<int>& a_cols,
                         const Row& b, const std::vector<int>& b_cols) {
    for (size_t i = 0; i < a_cols.size(); ++i) {
      const int c = a[static_cast<size_t>(a_cols[i])].Compare(
          b[static_cast<size_t>(b_cols[i])]);
      if (c != 0) return c;
    }
    return 0;
  };

  // The lane count: 1 runs the exact sequential pre-pool scan; more lanes
  // split the detail scan into morsels evaluated on the shared pool.
  int lanes = options.num_threads > 0 ? options.num_threads
                                      : ThreadPool::DefaultThreadCount();

  // Vectorized-scan resolution: explicit option wins, else the
  // SKALLA_VECTORIZE knob. The columnar view is built lazily once per Table
  // and cached (storage/columnar.h), so repeated rounds over a persistent
  // detail partition fetch it for free.
  const bool vectorize_on = options.vectorize >= 0
                                ? options.vectorize != 0
                                : VectorizeEnabledFromEnv();
  std::shared_ptr<const ColumnarTable> columnar;
  if (vectorize_on) columnar = detail.columnar();

  // Blocks typically share the same equi-key over B (key equality appears
  // in every θ), so per-key-column-set artifacts — the hash index and the
  // sort-merge orderings of both sides — are built once and reused across
  // blocks. With vectorization on and every key column usable, the sort
  // runs on a typed comparator (CompareTypedCells: string ordering is an
  // integer compare on dictionary order ranks). The comparator implements
  // exactly Value::Compare's relation, and std::sort's output permutation
  // is a function of the comparison outcomes alone, so the ordering — and
  // with it every downstream byte — is identical to the boxed sort.
  std::map<std::vector<int>, HashIndex> index_cache;
  std::map<std::vector<int>, std::vector<int64_t>> base_order_cache;
  std::map<std::vector<int>, std::vector<int64_t>> detail_order_cache;
  auto sorted_ids = [&compare_keys, vectorize_on](
                        std::map<std::vector<int>, std::vector<int64_t>>* cache,
                        const Table& table, const std::vector<int>& cols)
      -> const std::vector<int64_t>& {
    auto [it, inserted] = cache->try_emplace(cols);
    if (inserted) {
      it->second.resize(static_cast<size_t>(table.num_rows()));
      std::iota(it->second.begin(), it->second.end(), 0);
      std::shared_ptr<const ColumnarTable> view;
      bool typed = vectorize_on;
      if (typed) {
        view = table.columnar();
        for (int c : cols) {
          if (!view->column(c).usable) {
            typed = false;
            break;
          }
        }
      }
      if (typed) {
        std::sort(it->second.begin(), it->second.end(),
                  [&view, &cols](int64_t a, int64_t b) {
                    for (int c : cols) {
                      const int cmp =
                          CompareTypedCells(view->column(c), a, b);
                      if (cmp != 0) return cmp < 0;
                    }
                    return false;
                  });
      } else {
        std::sort(it->second.begin(), it->second.end(),
                  [&](int64_t a, int64_t b) {
                    return compare_keys(table.row(a), cols, table.row(b),
                                        cols) < 0;
                  });
      }
    }
    return it->second;
  };

  // One detail scan per block, morsel-parallel when lanes > 1.
  for (size_t blk = 0; blk < op.blocks.size(); ++blk) {
    const BlockPlan& plan = plans[blk];
    const size_t num_aggs = op.blocks[blk].aggs.size();

    // Vectorized-path planning: one kernel per aggregate (typed columns
    // get the batch/point kernels, everything else keeps the boxed Update)
    // and a static batch plan for the predicate. Decided per block from
    // the columnar view alone, never per row.
    std::vector<AggKernel> kernels(num_aggs);
    bool predicate_batch = false;
    if (vectorize_on) {
      for (size_t a = 0; a < num_aggs; ++a) {
        const int in = plan.agg_inputs[a];
        AggKernel& kernel = kernels[a];
        kernel.col = in;
        if (in < 0) {
          kernel.kind = AggKernel::Kind::kCountStar;
        } else {
          const ColumnarTable::Column& col = columnar->column(in);
          if (col.usable && col.type == ValueType::kInt64) {
            kernel.kind = AggKernel::Kind::kInt64;
          } else if (col.usable && col.type == ValueType::kDouble) {
            kernel.kind = AggKernel::Kind::kDouble;
          } else {
            kernel.kind = AggKernel::Kind::kBoxed;
          }
        }
      }
      predicate_batch = plan.predicate.has_value() &&
                        plan.predicate->SupportsBatchEval(*columnar);
    }

    // Path-specific shared read-only structures, built once per block.
    const bool sort_merge_path = !plan.base_key_cols.empty() &&
                                 options.join == JoinStrategy::kSortMerge;
    const bool hash_path =
        !plan.base_key_cols.empty() && !sort_merge_path;
    const std::vector<int64_t>* base_ids = nullptr;
    const std::vector<int64_t>* detail_ids = nullptr;
    const HashIndex* index = nullptr;
    HashIndex* index_mut = nullptr;
    if (sort_merge_path) {
      base_ids = &sorted_ids(&base_order_cache, base, plan.base_key_cols);
      detail_ids =
          &sorted_ids(&detail_order_cache, detail, plan.detail_key_cols);
    } else if (hash_path) {
      auto [it, inserted] = index_cache.try_emplace(plan.base_key_cols);
      if (inserted) it->second.Build(base, plan.base_key_cols);
      index_mut = &it->second;
      index = index_mut;
    }

    // Per-path vectorization: the nested loop needs a batch-evaluable
    // predicate (it is nothing but the predicate); sort-merge batches the
    // equal-key runs when the residual is batch-evaluable or absent; the
    // hash path keeps its scalar probe and residual but batches the
    // aggregate folds, so it vectorizes whenever the scan does.
    const bool vec_nested =
        vectorize_on && plan.base_key_cols.empty() && predicate_batch;
    const bool vec_sort_merge =
        vectorize_on && sort_merge_path &&
        (!plan.predicate.has_value() || predicate_batch);
    const bool vec_hash = vectorize_on && hash_path;

    // Batched-probe plan: when every detail key column is usable, probe
    // hashes come chunk-at-a-time from the typed arrays
    // (CombineProbeHashes replicates RowKeyHash bit-for-bit) and feed
    // HashIndex::LookupHashed; equality verification against the bucket
    // representative stays boxed, so collisions resolve exactly as the
    // scalar probe does. Any unusable key column keeps the scalar probe.
    bool vec_probe = vec_hash;
    std::vector<std::vector<uint64_t>> probe_code_hashes;
    if (vec_hash) {
      for (int c : plan.detail_key_cols) {
        if (!columnar->column(c).usable) {
          vec_probe = false;
          break;
        }
      }
      if (vec_probe) {
        probe_code_hashes.resize(plan.detail_key_cols.size());
        for (size_t i = 0; i < plan.detail_key_cols.size(); ++i) {
          const ColumnarTable::Column& col =
              columnar->column(plan.detail_key_cols[i]);
          if (col.type == ValueType::kString) {
            std::vector<uint64_t>& hs = probe_code_hashes[i];
            hs.reserve(col.dict.size());
            for (const std::string& s : col.dict) hs.push_back(HashBytes(s));
          }
        }
        // Same answers, flat layout: probes become one predictable slot
        // access each, and the chunk loop prefetches slots ahead.
        index_mut->BuildFlatProbe();
      }
    }

    // Scans detail positions [lo, hi) into `target`. Positions index the
    // raw detail rows (hash / nested-loop paths) or the sorted detail
    // ordering (sort-merge path). Match sets are position-independent, so
    // any disjoint cover of [0, |R|) visits each match exactly once.
    //
    // Both modes produce byte-identical accumulators: every path feeds any
    // given (base row, aggregate) state its matching detail rows in the
    // same ascending scan order as the scalar loops, and the typed kernels
    // replicate AggState::Update's arithmetic exactly (agg/aggregate.h).
    auto scan_range = [&](int64_t lo, int64_t hi,
                          const ScanTarget& target) -> MorselStats {
      MorselStats stats;
      stats.rows = hi - lo;
      stats.vectorized = vec_nested || vec_sort_merge || vec_hash;

      // Folds one matching (base row, detail row) pair into `target`
      // (scalar mode).
      auto update_match = [&](int64_t base_row_id, const Row& detail_row) {
        ++stats.matched;
        target.touched[static_cast<size_t>(base_row_id)] = 1;
        AggState* row_states =
            &target.states[static_cast<size_t>(base_row_id) * num_aggs];
        for (size_t a = 0; a < num_aggs; ++a) {
          const int in = plan.agg_inputs[a];
          row_states[a].Update(in < 0 ? kOne
                                      : detail_row[static_cast<size_t>(in)]);
        }
      };

      // Folds a selection vector of detail positions (in scan order) into
      // one base row's states through the per-aggregate kernels
      // (vectorized mode).
      auto update_selected = [&](int64_t base_row_id, const int64_t* sel_pos,
                                 size_t n) {
        if (n == 0) return;
        stats.matched += static_cast<int64_t>(n);
        target.touched[static_cast<size_t>(base_row_id)] = 1;
        AggState* row_states =
            &target.states[static_cast<size_t>(base_row_id) * num_aggs];
        for (size_t a = 0; a < num_aggs; ++a) {
          const AggKernel& kernel = kernels[a];
          switch (kernel.kind) {
            case AggKernel::Kind::kCountStar:
              row_states[a].UpdateBatchCountStar(n);
              break;
            case AggKernel::Kind::kInt64: {
              const ColumnarTable::Column& col = columnar->column(kernel.col);
              row_states[a].UpdateBatchInt64(col.ints.data(),
                                             col.valid_words(), sel_pos, n);
              break;
            }
            case AggKernel::Kind::kDouble: {
              const ColumnarTable::Column& col = columnar->column(kernel.col);
              row_states[a].UpdateBatchDouble(col.doubles.data(),
                                              col.valid_words(), sel_pos, n);
              break;
            }
            case AggKernel::Kind::kBoxed:
              for (size_t k = 0; k < n; ++k) {
                row_states[a].Update(
                    detail.row(sel_pos[k])[static_cast<size_t>(kernel.col)]);
              }
              break;
          }
        }
      };

      // Per-lane batch-evaluator buffers; local to the morsel so lanes
      // never share them.
      BatchScratch scratch;
      std::vector<int64_t> sel;

      if (sort_merge_path) {
        // Merge the (fully sorted) base ordering against the detail run
        // [lo, hi). Starting mid-run is fine: the two-pointer advances the
        // base cursor by key comparisons only.
        size_t b_pos = 0;
        size_t d_pos = static_cast<size_t>(lo);
        const size_t d_limit = static_cast<size_t>(hi);
        while (b_pos < base_ids->size() && d_pos < d_limit) {
          const int cmp = compare_keys(
              base.row((*base_ids)[b_pos]), plan.base_key_cols,
              detail.row((*detail_ids)[d_pos]), plan.detail_key_cols);
          if (cmp < 0) {
            ++b_pos;
            continue;
          }
          if (cmp > 0) {
            ++d_pos;
            continue;
          }
          // Runs of equal keys on both sides (the detail run is clipped to
          // the morsel; the rest of it belongs to the next morsel).
          size_t b_end = b_pos + 1;
          while (b_end < base_ids->size() &&
                 compare_keys(base.row((*base_ids)[b_end]),
                              plan.base_key_cols,
                              base.row((*base_ids)[b_pos]),
                              plan.base_key_cols) == 0) {
            ++b_end;
          }
          size_t d_end = d_pos + 1;
          while (d_end < d_limit &&
                 compare_keys(detail.row((*detail_ids)[d_end]),
                              plan.detail_key_cols,
                              detail.row((*detail_ids)[d_pos]),
                              plan.detail_key_cols) == 0) {
            ++d_end;
          }
          if (vec_sort_merge) {
            // The run's detail positions, in the sorted (scalar-visit)
            // order: a contiguous slice of the detail ordering. Each base
            // row of the run filters/fold them as one batch; per-state
            // update order is the run order either way.
            const int64_t* run = detail_ids->data() + d_pos;
            const size_t run_len = d_end - d_pos;
            for (size_t b = b_pos; b < b_end; ++b) {
              const int64_t base_row_id = (*base_ids)[b];
              if (!plan.predicate.has_value()) {
                update_selected(base_row_id, run, run_len);
              } else {
                sel.clear();
                plan.predicate->EvalBoolBatch(&base.row(base_row_id), detail,
                                              *columnar, run, run_len,
                                              &scratch, &sel);
                update_selected(base_row_id, sel.data(), sel.size());
              }
            }
          } else {
            for (size_t d = d_pos; d < d_end; ++d) {
              const Row& detail_row = detail.row((*detail_ids)[d]);
              for (size_t b = b_pos; b < b_end; ++b) {
                const int64_t base_row_id = (*base_ids)[b];
                if (plan.predicate.has_value() &&
                    !plan.predicate->EvalBool(&base.row(base_row_id),
                                              &detail_row)) {
                  continue;
                }
                update_match(base_row_id, detail_row);
              }
            }
          }
          b_pos = b_end;
          d_pos = d_end;
        }
      } else if (hash_path) {
        if (vec_hash) {
          // The residual stays scalar (matches arrive one detail row at a
          // time), but the aggregate folds batch up. Preferred shape: one
          // selection vector per matched base row (affordable while |B|
          // fits the morsel budget), flushed through the same per-base
          // batch kernels as the nested path. Each base row's details are
          // appended in ascending probe order, so every state still sees
          // the exact scalar update sequence. Oversized bases fall back to
          // a flat (base, detail) pair buffer flushed aggregate-at-a-time
          // through the typed point kernels.
          const bool grouped = base.num_rows() <= kMaxGroupedFlushBases;
          // A batch-evaluable residual is applied at flush time over each
          // base row's candidate list (EvalBoolBatch's list mode, exactly
          // the sort-merge discipline), so the probe loop touches no boxed
          // detail row; non-batchable residuals filter per pair instead.
          const bool residual_at_flush =
              grouped && plan.predicate.has_value() && predicate_batch;
          std::vector<std::vector<int64_t>> base_sel;
          std::vector<int64_t> flush_bases;
          size_t buffered = 0;
          if (grouped) base_sel.resize(static_cast<size_t>(base.num_rows()));
          std::vector<std::pair<int64_t, int64_t>> pairs;
          auto flush_grouped = [&]() {
            for (int64_t b : flush_bases) {
              std::vector<int64_t>& bsel = base_sel[static_cast<size_t>(b)];
              if (residual_at_flush) {
                sel.clear();
                plan.predicate->EvalBoolBatch(&base.row(b), detail, *columnar,
                                              bsel.data(), bsel.size(),
                                              &scratch, &sel);
                update_selected(b, sel.data(), sel.size());
              } else {
                update_selected(b, bsel.data(), bsel.size());
              }
              bsel.clear();
            }
            flush_bases.clear();
            buffered = 0;
          };
          auto flush = [&]() {
            for (size_t a = 0; a < num_aggs; ++a) {
              const AggKernel& kernel = kernels[a];
              switch (kernel.kind) {
                case AggKernel::Kind::kCountStar:
                  for (const auto& [b, d] : pairs) {
                    target.states[static_cast<size_t>(b) * num_aggs + a]
                        .UpdateCountStar();
                  }
                  break;
                case AggKernel::Kind::kInt64: {
                  const ColumnarTable::Column& col =
                      columnar->column(kernel.col);
                  for (const auto& [b, d] : pairs) {
                    if (!col.IsValid(d)) continue;  // NULL input: ignored
                    target.states[static_cast<size_t>(b) * num_aggs + a]
                        .UpdateInt64(col.ints[static_cast<size_t>(d)]);
                  }
                  break;
                }
                case AggKernel::Kind::kDouble: {
                  const ColumnarTable::Column& col =
                      columnar->column(kernel.col);
                  for (const auto& [b, d] : pairs) {
                    if (!col.IsValid(d)) continue;
                    target.states[static_cast<size_t>(b) * num_aggs + a]
                        .UpdateDouble(col.doubles[static_cast<size_t>(d)]);
                  }
                  break;
                }
                case AggKernel::Kind::kBoxed:
                  for (const auto& [b, d] : pairs) {
                    target.states[static_cast<size_t>(b) * num_aggs + a]
                        .Update(kernel.col < 0
                                    ? kOne
                                    : detail.row(d)[static_cast<size_t>(
                                          kernel.col)]);
                  }
                  break;
              }
            }
            pairs.clear();
          };
          // Folds one probed detail row's matches (after the residual)
          // into the flush buffer — shared by both probe modes. The boxed
          // detail row is only touched when a residual needs it, so the
          // pure equi-key probe streams the typed arrays alone.
          auto fold_matches = [&](int64_t d,
                                  const std::vector<int64_t>* matches) {
            const Row* detail_row = nullptr;
            for (int64_t base_row_id : *matches) {
              if (plan.predicate.has_value() && !residual_at_flush) {
                if (detail_row == nullptr) detail_row = &detail.row(d);
                if (!plan.predicate->EvalBool(&base.row(base_row_id),
                                              detail_row)) {
                  continue;
                }
              }
              if (grouped) {
                std::vector<int64_t>& bsel =
                    base_sel[static_cast<size_t>(base_row_id)];
                if (bsel.empty()) flush_bases.push_back(base_row_id);
                bsel.push_back(d);
                if (++buffered >= kHashPairFlush) flush_grouped();
              } else {
                ++stats.matched;
                target.touched[static_cast<size_t>(base_row_id)] = 1;
                pairs.emplace_back(base_row_id, d);
                if (pairs.size() >= kHashPairFlush) flush();
              }
            }
          };
          const ColumnarTable::Column* int64_probe_col = nullptr;
          if (vec_probe && index->has_int64_probe() &&
              plan.detail_key_cols.size() == 1) {
            const ColumnarTable::Column& kcol =
                columnar->column(plan.detail_key_cols.front());
            if (kcol.usable && kcol.type == ValueType::kInt64) {
              int64_probe_col = &kcol;
            }
          }
          if (int64_probe_col != nullptr) {
            // Single-int64-key fast probe: one typed map lookup per detail
            // row — no hash replication, no chain walk, no boxed rows.
            const ColumnarTable::Column& kcol = *int64_probe_col;
            for (int64_t d = lo; d < hi; ++d) {
              const std::vector<int64_t>* matches =
                  kcol.IsValid(d)
                      ? index->LookupInt64(kcol.ints[static_cast<size_t>(d)])
                      : index->LookupNullKey();
              if (matches != nullptr) fold_matches(d, matches);
            }
          } else if (vec_probe) {
            uint64_t hashes[kProbeHashChunk];
            for (int64_t chunk = lo; chunk < hi; chunk += kProbeHashChunk) {
              const size_t n = static_cast<size_t>(
                  std::min(hi, chunk + kProbeHashChunk) - chunk);
              // RowKeyHash's seed, then one typed pass per key column.
              std::fill_n(hashes, n, uint64_t{0x524f574bULL});
              for (size_t i = 0; i < plan.detail_key_cols.size(); ++i) {
                CombineProbeHashes(
                    columnar->column(plan.detail_key_cols[i]),
                    probe_code_hashes[i], chunk, n, hashes);
              }
              constexpr size_t kProbeLookahead = 8;
              for (size_t k = 0; k < n; ++k) {
                if (k + kProbeLookahead < n) {
                  index->Prefetch(hashes[k + kProbeLookahead]);
                }
                const int64_t d = chunk + static_cast<int64_t>(k);
                const std::vector<HashIndex::Bucket>* chains =
                    index->ChainsForHash(hashes[k]);
                if (chains == nullptr) continue;
                // Collision chains resolve exactly as the scalar probe:
                // equality against each bucket's representative, but in
                // typed columnar form — no boxed detail row access.
                const std::vector<int64_t>* matches = nullptr;
                for (const HashIndex::Bucket& bucket : *chains) {
                  const Row& rep = base.row(bucket.row_ids.front());
                  bool eq = true;
                  for (size_t i = 0; i < plan.detail_key_cols.size(); ++i) {
                    if (!CellEqualsValue(
                            columnar->column(plan.detail_key_cols[i]), d,
                            rep[static_cast<size_t>(plan.base_key_cols[i])])) {
                      eq = false;
                      break;
                    }
                  }
                  if (eq) {
                    matches = &bucket.row_ids;
                    break;
                  }
                }
                if (matches != nullptr) fold_matches(d, matches);
              }
            }
          } else {
            for (int64_t d = lo; d < hi; ++d) {
              const Row& detail_row = detail.row(d);
              const std::vector<int64_t>* matches =
                  index->Lookup(detail_row, plan.detail_key_cols);
              if (matches != nullptr) fold_matches(d, matches);
            }
          }
          if (grouped) {
            flush_grouped();
          } else {
            flush();
          }
        } else {
          for (int64_t d = lo; d < hi; ++d) {
            const Row& detail_row = detail.row(d);
            const std::vector<int64_t>* matches =
                index->Lookup(detail_row, plan.detail_key_cols);
            if (matches == nullptr) continue;
            for (int64_t base_row_id : *matches) {
              if (plan.predicate.has_value() &&
                  !plan.predicate->EvalBool(&base.row(base_row_id),
                                            &detail_row)) {
                continue;
              }
              update_match(base_row_id, detail_row);
            }
          }
        }
      } else {
        if (vec_nested) {
          // Base-outer: each base row filters the whole morsel as one
          // batch. The scalar loop is detail-outer, but any one state's
          // updates arrive in ascending detail order either way.
          for (int64_t base_row_id = 0; base_row_id < base.num_rows();
               ++base_row_id) {
            sel.clear();
            plan.predicate->EvalBoolBatch(&base.row(base_row_id), detail,
                                          *columnar, lo, hi, &scratch, &sel);
            update_selected(base_row_id, sel.data(), sel.size());
          }
        } else {
          for (int64_t d = lo; d < hi; ++d) {
            const Row& detail_row = detail.row(d);
            for (int64_t base_row_id = 0; base_row_id < base.num_rows();
                 ++base_row_id) {
              if (!plan.predicate->EvalBool(&base.row(base_row_id),
                                            &detail_row)) {
                continue;
              }
              update_match(base_row_id, detail_row);
            }
          }
        }
      }
      if (scratch.fallback_chunks > 0) {
        g_batch_fallback_chunks.fetch_add(scratch.fallback_chunks,
                                          std::memory_order_relaxed);
        static obs::Counter& fallback_chunks =
            obs::GetCounter("skalla_gmdj_batch_fallback_chunks_total");
        fallback_chunks.Add(static_cast<uint64_t>(scratch.fallback_chunks));
      }
      return stats;
    };

    // The morsel grid depends only on the relation sizes and the
    // morsel_rows option — not on the lane count — so the merge below
    // always folds the same partials in the same order. A scan_lo/scan_hi
    // window (skew rebalancing, docs/skew.md) restricts the grid to its
    // fragment; byte-identity across fragmentations holds because the
    // partial fold is associative, not because grids line up.
    const int64_t total_rows = detail.num_rows();
    const int64_t scan_lo =
        std::min(std::max<int64_t>(0, options.scan_lo), total_rows);
    const int64_t scan_end =
        options.scan_hi < 0 ? total_rows
                            : std::min(options.scan_hi, total_rows);
    const int64_t scan_rows = std::max<int64_t>(0, scan_end - scan_lo);
    int64_t morsel =
        options.morsel_rows > 0 ? options.morsel_rows : kDefaultMorselRows;
    const int64_t states_per_morsel =
        std::max<int64_t>(1, static_cast<int64_t>(num_base * num_aggs));
    const int64_t max_morsels =
        std::max<int64_t>(1, kPartialStateBudget / states_per_morsel);
    int64_t num_morsels = (scan_rows + morsel - 1) / std::max<int64_t>(1,
                                                                       morsel);
    if (num_morsels > max_morsels) {
      num_morsels = max_morsels;
      morsel = (scan_rows + num_morsels - 1) / num_morsels;
      num_morsels = (scan_rows + morsel - 1) / morsel;
    }

    // Flushes one scan's statistics into the process-wide counters (and
    // their registry mirrors; per-morsel, so well off the per-row path).
    auto flush_stats = [](const MorselStats& s) {
      g_rows_scanned.fetch_add(s.rows, std::memory_order_relaxed);
      g_rows_matched.fetch_add(s.matched, std::memory_order_relaxed);
      (s.vectorized ? g_morsels_vectorized : g_morsels_scalar)
          .fetch_add(1, std::memory_order_relaxed);
      if (obs::MetricsEnabled()) {
        static obs::Counter& rows_scanned =
            obs::GetCounter("skalla_gmdj_rows_scanned_total");
        static obs::Counter& rows_matched =
            obs::GetCounter("skalla_gmdj_rows_matched_total");
        rows_scanned.Add(static_cast<uint64_t>(s.rows));
        rows_matched.Add(static_cast<uint64_t>(s.matched));
        if (s.rows > 0) {
          static obs::Histogram& selectivity =
              obs::GetHistogram("skalla_gmdj_morsel_selectivity",
                                obs::HistogramLayout::Ratio());
          selectivity.Observe(static_cast<double>(s.matched) /
                              static_cast<double>(s.rows));
        }
      }
    };

    ScanTarget shared_target{states[blk].data(), touched.data()};
    if (lanes <= 1 || num_morsels <= 1) {
      // Sequential: one scan straight into the shared arrays, visiting
      // detail rows in exactly the pre-pool order.
      flush_stats(scan_range(scan_lo, scan_lo + scan_rows, shared_target));
      continue;
    }

    // Parallel: every morsel accumulates into private states + touched,
    // then the partials are folded into the shared arrays in ascending
    // morsel order (deterministic; see docs/parallelism.md).
    struct Partial {
      std::vector<AggState> states;
      std::vector<char> touched;
    };
    std::vector<Partial> partials(static_cast<size_t>(num_morsels));
    const auto& aggs = op.blocks[blk].aggs;
    const int morsel_sample = obs::MorselSampleEvery();
    ThreadPool::Shared().ParallelFor(
        num_morsels,
        [&](int64_t m) {
          // Lane-level span, sampled (every Nth morsel) so large scans do
          // not flood the span buffer; nulled name = disarmed.
          obs::ScopedSpan morsel_span(
              morsel_sample > 0 && m % morsel_sample == 0 ? "morsel"
                                                          : nullptr);
          const int64_t t0 = morsel_span.armed() ? obs::TraceNowNs() : 0;
          Partial& partial = partials[static_cast<size_t>(m)];
          partial.states.reserve(num_base * num_aggs);
          for (size_t r = 0; r < num_base; ++r) {
            for (const AggSpec& spec : aggs) {
              partial.states.emplace_back(spec.func);
            }
          }
          partial.touched.assign(num_base, 0);
          ScanTarget target{partial.states.data(), partial.touched.data()};
          const MorselStats s = scan_range(
              scan_lo + m * morsel,
              scan_lo + std::min(scan_rows, (m + 1) * morsel), target);
          flush_stats(s);
          if (morsel_span.armed()) {
            // Straggler diagnostics: selectivity and throughput of this
            // lane's slice, next to its wall time on the timeline.
            const double secs =
                static_cast<double>(obs::TraceNowNs() - t0) * 1e-9;
            const double sel_pct =
                s.rows > 0 ? 100.0 * static_cast<double>(s.matched) /
                                 static_cast<double>(s.rows)
                           : 0.0;
            const double rows_per_sec =
                secs > 0 ? static_cast<double>(s.rows) / secs : 0.0;
            char buf[160];
            std::snprintf(buf, sizeof(buf),
                          "morsel %lld/%lld (%s): %lld rows, %lld matched "
                          "(%.1f%%), %.2f Mrows/s",
                          static_cast<long long>(m),
                          static_cast<long long>(num_morsels),
                          s.vectorized ? "vectorized" : "scalar",
                          static_cast<long long>(s.rows),
                          static_cast<long long>(s.matched), sel_pct,
                          rows_per_sec * 1e-6);
            morsel_span.set_detail(buf);
          }
        },
        lanes);
    // Fold the partials into the shared arrays. Every base row folds its
    // morsels in ascending order no matter how chunks land on lanes, and
    // distinct chunks write disjoint state ranges, so the fold itself can
    // run on the pool without perturbing the result.
    obs::ScopedSpan fold_span("morsel.fold");
    const int64_t num_chunks =
        (static_cast<int64_t>(num_base) + kMergeChunkRows - 1) /
        kMergeChunkRows;
    ThreadPool::Shared().ParallelFor(
        num_chunks,
        [&](int64_t c) {
          const size_t r_lo = static_cast<size_t>(c * kMergeChunkRows);
          const size_t r_hi =
              std::min(num_base, r_lo + static_cast<size_t>(kMergeChunkRows));
          for (const Partial& partial : partials) {
            for (size_t r = r_lo; r < r_hi; ++r) {
              if (!partial.touched[r]) continue;
              touched[r] = 1;
              AggState* dst = &states[blk][r * num_aggs];
              const AggState* src = &partial.states[r * num_aggs];
              for (size_t a = 0; a < num_aggs; ++a) dst[a].Merge(src[a]);
            }
          }
        },
        lanes);
    std::vector<Partial>().swap(partials);
  }

  // Emit output rows.
  Table out(MakeSchema(std::move(out_fields)));
  out.Reserve(base.num_rows());
  for (int64_t r = 0; r < base.num_rows(); ++r) {
    if (options.touched_only && !touched[static_cast<size_t>(r)]) continue;
    Row row;
    row.reserve(carry_indices.size() + 4);
    const Row& base_row = base.row(r);
    for (int idx : carry_indices) {
      row.push_back(base_row[static_cast<size_t>(idx)]);
    }
    for (size_t blk = 0; blk < op.blocks.size(); ++blk) {
      const size_t num_aggs = op.blocks[blk].aggs.size();
      const AggState* row_states =
          &states[blk][static_cast<size_t>(r) * num_aggs];
      for (size_t a = 0; a < num_aggs; ++a) {
        if (options.mode == AggMode::kFinal) {
          row.push_back(row_states[a].Final());
        } else {
          row_states[a].EmitSub(&row);
        }
      }
    }
    out.AddRow(std::move(row));
  }
  return out;
}

}  // namespace skalla

#include "skalla/report.h"

#include <sstream>

#include "common/string_util.h"
#include "obs/diagnostics.h"
#include "obs/journal.h"
#include "obs/trace.h"

namespace skalla {

std::string FormatExecutionReport(const QueryResult& result) {
  std::ostringstream os;
  os << "=== plan ===\n" << result.plan.Explain();
  os << "=== execution ===\n";
  os << StrFormat("%-30s %6s %12s %12s %10s %10s %10s\n", "round", "sites",
                  "out", "in", "site[s]", "coord[s]", "comm[s]");
  for (const RoundMetrics& rm : result.metrics.rounds) {
    os << StrFormat(
        "%-30s %6d %12s %12s %10.4f %10.4f %10.4f\n", rm.label.c_str(),
        rm.sites, HumanBytes(static_cast<double>(rm.bytes_to_sites)).c_str(),
        HumanBytes(static_cast<double>(rm.bytes_to_coord)).c_str(),
        rm.site_cpu_max_sec, rm.coord_cpu_sec, rm.comm_sec);
  }
  os << "=== summary ===\n";
  os << StrFormat(
      "result rows: %lld\n"
      "rounds:      %d\n"
      "traffic:     %s to sites, %s to coordinator\n"
      "groups:      %lld shipped out, %lld shipped in\n"
      "response:    %.4f s  (site %.4f + coord %.4f + comm %.4f)\n",
      static_cast<long long>(result.table.num_rows()),
      result.metrics.NumRounds(),
      HumanBytes(static_cast<double>(result.metrics.BytesToSites())).c_str(),
      HumanBytes(static_cast<double>(result.metrics.BytesToCoord())).c_str(),
      static_cast<long long>(result.metrics.GroupsToSites()),
      static_cast<long long>(result.metrics.GroupsToCoord()),
      result.metrics.ResponseSeconds(), result.metrics.SiteCpuSeconds(),
      result.metrics.CoordCpuSeconds(), result.metrics.CommSeconds());
  if (result.metrics.BytesSavedByDelta() > 0 ||
      result.metrics.CompressionRatio() > 1.0) {
    os << StrFormat(
        "wire:        %s saved by delta shipping, %.2fx vs SKL1 full-ship\n",
        HumanBytes(static_cast<double>(result.metrics.BytesSavedByDelta()))
            .c_str(),
        result.metrics.CompressionRatio());
  }
  // With tracing on, the event journal carries per-site load — surface the
  // straggler/skew diagnostic computed from it.
  if (obs::TraceEnabled() && obs::JournalSize() > 0) {
    os << "=== straggler diagnostic ===\n";
    os << obs::ComputeStragglerReport(obs::JournalSnapshot()).ToString();
  }
  return os.str();
}

}  // namespace skalla

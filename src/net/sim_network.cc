#include "net/sim_network.h"

#include <sstream>

#include "common/string_util.h"

namespace skalla {

void SimNetwork::BeginRound(std::string label) {
  round_labels_.push_back(std::move(label));
  current_round_ = static_cast<int>(round_labels_.size()) - 1;
}

double SimNetwork::Transfer(int from, int to, size_t bytes, int64_t rows,
                            std::string label) {
  TransferRecord record;
  record.from = from;
  record.to = to;
  record.bytes = bytes;
  record.rows = rows;
  record.round = current_round_;
  record.label = std::move(label);
  record.seconds = config_.TransferSeconds(bytes);
  transfers_.push_back(record);
  return record.seconds;
}

size_t SimNetwork::TotalBytes() const {
  size_t total = 0;
  for (const TransferRecord& t : transfers_) total += t.bytes;
  return total;
}

size_t SimNetwork::BytesToCoordinator() const {
  size_t total = 0;
  for (const TransferRecord& t : transfers_) {
    if (t.to == kCoordinatorId) total += t.bytes;
  }
  return total;
}

size_t SimNetwork::BytesFromCoordinator() const {
  size_t total = 0;
  for (const TransferRecord& t : transfers_) {
    if (t.from == kCoordinatorId) total += t.bytes;
  }
  return total;
}

int64_t SimNetwork::RowsToCoordinator() const {
  int64_t total = 0;
  for (const TransferRecord& t : transfers_) {
    if (t.to == kCoordinatorId) total += t.rows;
  }
  return total;
}

int64_t SimNetwork::RowsFromCoordinator() const {
  int64_t total = 0;
  for (const TransferRecord& t : transfers_) {
    if (t.from == kCoordinatorId) total += t.rows;
  }
  return total;
}

void SimNetwork::Reset() {
  transfers_.clear();
  round_labels_.clear();
  current_round_ = -1;
}

std::string SimNetwork::Report() const {
  std::ostringstream os;
  for (size_t r = 0; r < round_labels_.size(); ++r) {
    size_t to_sites = 0;
    size_t to_coord = 0;
    for (const TransferRecord& t : transfers_) {
      if (t.round != static_cast<int>(r)) continue;
      if (t.from == kCoordinatorId) to_sites += t.bytes;
      if (t.to == kCoordinatorId) to_coord += t.bytes;
    }
    os << StrFormat("round %zu (%s): coord->sites %s, sites->coord %s\n", r,
                    round_labels_[r].c_str(), HumanBytes(static_cast<double>(to_sites)).c_str(),
                    HumanBytes(static_cast<double>(to_coord)).c_str());
  }
  os << "total: " << HumanBytes(static_cast<double>(TotalBytes()));
  return os.str();
}

}  // namespace skalla

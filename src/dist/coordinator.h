#ifndef SKALLA_DIST_COORDINATOR_H_
#define SKALLA_DIST_COORDINATOR_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/result.h"
#include "dist/metrics.h"
#include "dist/plan.h"
#include "dist/rebalance.h"
#include "dist/site.h"
#include "net/sim_network.h"

namespace skalla {

/// Nominal wire size of a shipped query plan (control message).
inline constexpr size_t kQueryPlanBytes = 512;

/// \brief The Skalla coordinator: drives Alg. GMDJDistribEval.
///
/// The coordinator owns the simulated network and the base-result structure
/// X. For each round it ships X (possibly per-site reduced) to the
/// participating sites, receives their sub-aggregate relations H_i, and
/// synchronizes them into X via the super-aggregates (Theorem 1). The merge
/// is O(|H|) thanks to a hash index on the key attributes K.
///
/// Sites are borrowed, not owned; they must outlive the coordinator.
class Coordinator {
 public:
  Coordinator(std::vector<Site*> sites, NetworkConfig config = NetworkConfig())
      : sites_(std::move(sites)), network_(config) {}

  /// Executes a distributed plan and returns the finalized base-result
  /// structure (= the query answer). Fills `metrics` when non-null.
  Result<Table> Execute(const DistributedPlan& plan,
                        ExecutionMetrics* metrics);

  SimNetwork& network() { return network_; }
  const std::vector<Site*>& sites() const { return sites_; }

  /// Registers `replica` as the failover target for primary slot
  /// `site_id`. When the primary exhausts its retry budget during a query,
  /// the slot fails over (at most once) to the replica — provided the
  /// replica's partition predicate covers the primary's (see
  /// CoversPartition); otherwise the query returns kUnavailable. The
  /// replica is borrowed and must outlive the coordinator.
  void AddReplica(int site_id, Site* replica) {
    replicas_[site_id] = replica;
  }
  const std::map<int, Site*>& replicas() const { return replicas_; }

  /// Evaluates the sites of each round on real threads (one per site)
  /// instead of sequentially. Results are identical — synchronization
  /// happens in deterministic site order either way — only the wall-clock
  /// time of the simulation changes (the *modelled* response time already
  /// treats sites as parallel).
  void set_parallel_sites(bool parallel) { parallel_sites_ = parallel; }
  bool parallel_sites() const { return parallel_sites_; }

  /// Lanes each site may use for its morsel-driven local GMDJ evaluation
  /// (SiteRoundInput::num_threads): 0 = the SKALLA_THREADS default, 1 =
  /// sequential local scans. Orthogonal to set_parallel_sites — both feed
  /// the same shared pool (common/thread_pool.h).
  void set_local_threads(int num_threads) { local_threads_ = num_threads; }
  int local_threads() const { return local_threads_; }

  /// Cooperative per-query cancellation (borrowed flag, may be null): the
  /// coordinator polls it at round boundaries and aborts the query with a
  /// typed kCancelled status when it is set. In-flight site work of the
  /// current round is never interrupted — rounds stay atomic, so a
  /// cancelled query leaves no partial state anywhere.
  void set_cancel_flag(const std::atomic<bool>* cancel) { cancel_ = cancel; }

  /// Observer invoked after each GMDJ round finalizes, with the number of
  /// *operators* evaluated so far and the base-result structure X at that
  /// point (before HAVING / presentation). The server's cross-query cache
  /// uses this to capture prefix results (src/server/result_cache.h).
  /// Called on the coordinator thread; must not mutate the table.
  using RoundObserver = std::function<void(size_t ops_done, const Table& x)>;
  void set_round_observer(RoundObserver observer) {
    round_observer_ = std::move(observer);
  }

  /// Resumes evaluation from a cached base-result structure instead of
  /// computing the base query and the first `rounds_done` plan rounds:
  /// `x` (borrowed; must outlive Execute) is exactly the X a fresh
  /// execution of this plan would hold after those rounds. Because every
  /// round is a deterministic function of the incoming X and the site
  /// partitions, the resumed execution is byte-identical to a full one
  /// (docs/server.md). The X schema is validated against the plan before
  /// use. Pass nullptr / 0 to clear.
  void set_resume(const Table* x, size_t rounds_done) {
    resume_x_ = x;
    resume_rounds_ = rounds_done;
  }

  /// Shares the SKLD delta-base cache across queries (borrowed; may be
  /// null to keep the default per-query cache). The cache mirrors what
  /// each site slot last received of X; with delta shipping enabled,
  /// consecutive queries over slowly-changing base structures then ship
  /// deltas from the first round instead of re-priming per query. Query
  /// *results* are unaffected — the decoded site view always equals the
  /// shipped fragment, delta or full (DESIGN.md invariant 10) — only
  /// bytes on the wire change. The caller owns synchronization: the cache
  /// must not be used by two executions at once, and must be cleared when
  /// site data mutates under a different coordinator.
  void set_ship_cache(std::vector<std::optional<Table>>* cache) {
    external_ship_cache_ = cache;
  }

  /// Attaches a skew detector (borrowed, may be null to disable): before
  /// each eligible GMDJ round the coordinator asks it to plan a
  /// rebalancing split over the per-slot detail row counts, and after each
  /// round feeds back the measured per-slot wall timings. When the
  /// detector proposes a split and the hot slot has a φ-covering replica
  /// registered (AddReplica), the replica joins the round as a helper slot
  /// evaluating the straggler's upper detail fragment; the two H
  /// fragments merge through the same Theorem 1 fold, byte-identical to
  /// the unsplit round (DESIGN.md invariant 12, docs/skew.md). Only
  /// single-operator, non-fused rounds are split.
  void set_skew_detector(SkewDetector* detector) { skew_detector_ = detector; }
  SkewDetector* skew_detector() const { return skew_detector_; }

  /// Looks up a relation schema from the first site that holds a partition
  /// of it (all sites share global relation schemas).
  Result<SchemaPtr> FindSchema(const std::string& table_name) const;

  /// Builds the schema map for a plan's relations (base source + details).
  Result<SchemaMap> CollectSchemas(const DistributedPlan& plan) const;

 private:
  /// kCancelled when the attached cancel flag is set.
  Status CheckCancelled() const;

  std::vector<Site*> sites_;
  std::map<int, Site*> replicas_;
  SimNetwork network_;
  bool parallel_sites_ = false;
  int local_threads_ = 0;
  const std::atomic<bool>* cancel_ = nullptr;
  RoundObserver round_observer_;
  const Table* resume_x_ = nullptr;
  size_t resume_rounds_ = 0;
  std::vector<std::optional<Table>>* external_ship_cache_ = nullptr;
  SkewDetector* skew_detector_ = nullptr;
};

/// Theorem 2's bound on groups transferred by Alg. GMDJDistribEval:
/// Σ_rounds (2 · s_i · |Q|) + s_0 · |Q|, with |Q| = `q_rows` result rows.
/// Any execution's GroupsToSites()+GroupsToCoord() must not exceed it.
int64_t TheoremTwoGroupBound(const DistributedPlan& plan, int num_sites,
                             int64_t q_rows);

}  // namespace skalla

#endif  // SKALLA_DIST_COORDINATOR_H_

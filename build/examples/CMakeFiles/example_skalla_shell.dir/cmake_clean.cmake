file(REMOVE_RECURSE
  "CMakeFiles/example_skalla_shell.dir/skalla_shell.cc.o"
  "CMakeFiles/example_skalla_shell.dir/skalla_shell.cc.o.d"
  "example_skalla_shell"
  "example_skalla_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_skalla_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

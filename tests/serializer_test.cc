#include "storage/serializer.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "storage/csv.h"
#include "test_util.h"

namespace skalla {
namespace {

TEST(SerializerTest, RoundTripTinyTable) {
  const Table original = MakeTinyTable();
  const std::string bytes = Serializer::SerializeTable(original);
  ASSERT_OK_AND_ASSIGN(Table decoded, Serializer::DeserializeTable(bytes));
  EXPECT_TRUE(decoded.schema().Equals(original.schema()));
  ExpectSameRows(decoded, original);
}

TEST(SerializerTest, RoundTripEmptyTable) {
  Table original(MakeSchema({{"a", ValueType::kInt64}}));
  const std::string bytes = Serializer::SerializeTable(original);
  ASSERT_OK_AND_ASSIGN(Table decoded, Serializer::DeserializeTable(bytes));
  EXPECT_EQ(decoded.num_rows(), 0);
  EXPECT_TRUE(decoded.schema().Equals(original.schema()));
}

TEST(SerializerTest, RoundTripNulls) {
  Table original(MakeSchema(
      {{"a", ValueType::kInt64}, {"b", ValueType::kString}}));
  original.AddRow({Value::Null(), Value::Null()});
  original.AddRow({Value(1), Value("x")});
  const std::string bytes = Serializer::SerializeTable(original);
  ASSERT_OK_AND_ASSIGN(Table decoded, Serializer::DeserializeTable(bytes));
  EXPECT_TRUE(decoded.Get(0, 0).is_null());
  EXPECT_TRUE(decoded.Get(0, 1).is_null());
  EXPECT_EQ(decoded.Get(1, 1), Value("x"));
}

TEST(SerializerTest, WireSizeMatchesActualBytes) {
  const Table t = MakeTinyTable();
  EXPECT_EQ(Serializer::WireSize(t), Serializer::SerializeTable(t).size());
}

TEST(SerializerTest, WireSizeMatchesForEmptyTable) {
  Table t(MakeSchema({{"long_column_name", ValueType::kString}}));
  EXPECT_EQ(Serializer::WireSize(t), Serializer::SerializeTable(t).size());
}

TEST(SerializerTest, RejectsBadMagic) {
  std::string bytes = Serializer::SerializeTable(MakeTinyTable());
  bytes[0] = 'X';
  auto result = Serializer::DeserializeTable(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(SerializerTest, RejectsTruncation) {
  const std::string bytes = Serializer::SerializeTable(MakeTinyTable());
  for (size_t cut : {bytes.size() - 1, bytes.size() / 2, size_t{5}}) {
    auto result =
        Serializer::DeserializeTable(std::string_view(bytes).substr(0, cut));
    EXPECT_FALSE(result.ok()) << "cut at " << cut;
  }
}

TEST(SerializerTest, RejectsTrailingGarbage) {
  std::string bytes = Serializer::SerializeTable(MakeTinyTable());
  bytes += "junk";
  auto result = Serializer::DeserializeTable(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("trailing"), std::string::npos);
}

TEST(SerializerTest, RandomizedRoundTripProperty) {
  Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    const int ncols = static_cast<int>(rng.Uniform(1, 6));
    std::vector<Field> fields;
    for (int c = 0; c < ncols; ++c) {
      const int type = static_cast<int>(rng.Uniform(1, 3));
      fields.push_back(Field{"c" + std::to_string(c),
                             static_cast<ValueType>(type)});
    }
    Table t(MakeSchema(fields));
    const int64_t nrows = rng.Uniform(0, 40);
    for (int64_t r = 0; r < nrows; ++r) {
      Row row;
      for (int c = 0; c < ncols; ++c) {
        if (rng.Chance(0.1)) {
          row.push_back(Value::Null());
          continue;
        }
        switch (fields[static_cast<size_t>(c)].type) {
          case ValueType::kInt64:
            row.push_back(Value(rng.Uniform(-1000000, 1000000)));
            break;
          case ValueType::kDouble:
            row.push_back(Value(rng.UniformDouble(-10, 10)));
            break;
          default:
            row.push_back(Value(rng.AlphaString(
                static_cast<int>(rng.Uniform(0, 12)))));
        }
      }
      t.AddRow(std::move(row));
    }
    const std::string bytes = Serializer::SerializeTable(t);
    EXPECT_EQ(bytes.size(), Serializer::WireSize(t));
    ASSERT_OK_AND_ASSIGN(Table decoded, Serializer::DeserializeTable(bytes));
    ExpectSameRows(decoded, t);
  }
}

TEST(SerializerTest, BothFormatsRoundTripExplicitly) {
  const Table t = MakeTinyTable();
  for (const WireFormat format : {WireFormat::kSkl1, WireFormat::kSkl2}) {
    SCOPED_TRACE(WireFormatName(format));
    const std::string bytes = Serializer::SerializeTable(t, format);
    EXPECT_EQ(bytes.size(), Serializer::WireSize(t, format));
    ASSERT_OK_AND_ASSIGN(Table decoded, Serializer::DeserializeTable(bytes));
    ExpectSameRows(decoded, t);
  }
}

// ---------------------------------------------------------------------------
// Malformed-input corpus: every corruption must surface as a clean IoError,
// never a crash, hang, or silently wrong table. (Prime target for
// -DSKALLA_SANITIZE=address on the "wire" label.)
// ---------------------------------------------------------------------------

/// One int64 column "a": SKL2 header is magic(4) + nfields(4) +
/// field(1 + 4 + 1) + nrows(8) = 22 bytes, then the column codec tag.
constexpr size_t kSkl2OneColHeader = 22;

void ExpectIoError(const Result<Table>& result, const char* substring) {
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  EXPECT_NE(result.status().message().find(substring), std::string::npos)
      << result.status().ToString();
}

TEST(SerializerMalformedTest, BadMagicBothFormats) {
  for (const WireFormat format : {WireFormat::kSkl1, WireFormat::kSkl2}) {
    std::string bytes = Serializer::SerializeTable(MakeTinyTable(), format);
    bytes[0] = 'X';
    ExpectIoError(Serializer::DeserializeTable(bytes), "magic");
  }
}

TEST(SerializerMalformedTest, TruncatedNullBitmap) {
  Table t(MakeSchema({{"a", ValueType::kInt64}}));
  for (int64_t i = 0; i < 16; ++i) t.AddRow({Value(i)});
  const std::string bytes = Serializer::SerializeTable(t, WireFormat::kSkl2);
  // Cut inside the 2-byte bitmap that follows the column tag.
  const std::string_view cut =
      std::string_view(bytes).substr(0, kSkl2OneColHeader + 2);
  ExpectIoError(Serializer::DeserializeTable(cut), "bitmap");
}

TEST(SerializerMalformedTest, OverflowingVarint) {
  Table t(MakeSchema({{"a", ValueType::kInt64}}));
  t.AddRow({Value(int64_t{5})});
  std::string bytes = Serializer::SerializeTable(t, WireFormat::kSkl2);
  // Replace the single-byte varint delta with ten 0xff continuation bytes:
  // more than 64 bits of payload must be rejected, not wrapped.
  bytes.resize(kSkl2OneColHeader + 2);  // keep tag + 1-byte bitmap
  bytes.append(10, '\xff');
  ExpectIoError(Serializer::DeserializeTable(bytes), "varint");
}

TEST(SerializerMalformedTest, TruncatedVarint) {
  Table t(MakeSchema({{"a", ValueType::kInt64}}));
  t.AddRow({Value(int64_t{5})});
  std::string bytes = Serializer::SerializeTable(t, WireFormat::kSkl2);
  bytes.resize(kSkl2OneColHeader + 2);
  bytes.push_back('\x80');  // continuation bit set, then EOF
  ExpectIoError(Serializer::DeserializeTable(bytes), "varint");
}

TEST(SerializerMalformedTest, OutOfRangeDictionaryCode) {
  Table t(MakeSchema({{"s", ValueType::kString}}));
  t.AddRow({Value("x")});
  t.AddRow({Value("y")});
  std::string bytes = Serializer::SerializeTable(t, WireFormat::kSkl2);
  // The last byte is row 2's dictionary code; the dictionary has 2 entries.
  bytes.back() = '\x07';
  ExpectIoError(Serializer::DeserializeTable(bytes), "dictionary");
}

TEST(SerializerMalformedTest, UnknownColumnCodec) {
  Table t(MakeSchema({{"a", ValueType::kInt64}}));
  t.AddRow({Value(int64_t{5})});
  std::string bytes = Serializer::SerializeTable(t, WireFormat::kSkl2);
  bytes[kSkl2OneColHeader] = '\x63';
  ExpectIoError(Serializer::DeserializeTable(bytes), "codec");
}

TEST(SerializerMalformedTest, AbsurdRowCountRejectedBeforeAllocating) {
  // Corrupting the u64 row count to an astronomical value must fail with a
  // clean IoError, not an allocation failure: the decoder validates the
  // claimed count against the remaining payload before reserving.
  Table t(MakeSchema({{"a", ValueType::kInt64}}));
  t.AddRow({Value(int64_t{5})});
  for (const WireFormat format : {WireFormat::kSkl1, WireFormat::kSkl2}) {
    SCOPED_TRACE(WireFormatName(format));
    std::string bytes = Serializer::SerializeTable(t, format);
    for (size_t i = kSkl2OneColHeader - 8; i < kSkl2OneColHeader; ++i) {
      bytes[i] = '\xff';
    }
    auto result = Serializer::DeserializeTable(bytes);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  }
}

TEST(SerializerMalformedTest, EveryTruncationRejectedCleanlyBothFormats) {
  const Table zoo = [] {
    Table t(MakeSchema({{"a", ValueType::kInt64},
                        {"d", ValueType::kDouble},
                        {"s", ValueType::kString}}));
    t.AddRow({Value(int64_t{1}), Value(1.5), Value("hello")});
    t.AddRow({Value::Null(), Value::Null(), Value::Null()});
    t.AddRow({Value(int64_t{-9}), Value(-0.0), Value("hello")});
    return t;
  }();
  for (const WireFormat format : {WireFormat::kSkl1, WireFormat::kSkl2}) {
    const std::string bytes = Serializer::SerializeTable(zoo, format);
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
      auto result =
          Serializer::DeserializeTable(std::string_view(bytes).substr(0, cut));
      ASSERT_FALSE(result.ok())
          << WireFormatName(format) << " cut at " << cut;
      EXPECT_EQ(result.status().code(), StatusCode::kIoError);
    }
  }
}

TEST(SerializerMalformedTest, DeltaTruncationsRejectedCleanly) {
  Table base(MakeSchema({{"k", ValueType::kInt64}}));
  Table next(MakeSchema({{"k", ValueType::kInt64},
                         {"o", ValueType::kInt64}}));
  for (int64_t i = 0; i < 10; ++i) {
    base.AddRow({Value(i)});
    next.AddRow({Value(i), Value(i * i)});
  }
  const std::string delta = Serializer::SerializeDelta(base, next);
  for (size_t cut = 0; cut < delta.size(); ++cut) {
    auto result = Serializer::DecodeShipment(
        &base, std::string_view(delta).substr(0, cut));
    ASSERT_FALSE(result.ok()) << "cut at " << cut;
    EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  }
  // And trailing garbage after a valid delta.
  auto result = Serializer::DecodeShipment(&base, delta + "zz");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(CsvTest, RoundTripThroughString) {
  const Table original = MakeTinyTable();
  const std::string csv = CsvToString(original);
  ASSERT_OK_AND_ASSIGN(Table decoded,
                       CsvFromString(csv, original.schema_ptr()));
  ExpectSameRows(decoded, original);
}

TEST(CsvTest, QuotingSpecialCharacters) {
  Table t(MakeSchema({{"s", ValueType::kString}}));
  t.AddRow({Value("plain")});
  t.AddRow({Value("with,comma")});
  t.AddRow({Value("with\"quote")});
  const std::string csv = CsvToString(t);
  ASSERT_OK_AND_ASSIGN(Table decoded, CsvFromString(csv, t.schema_ptr()));
  ExpectSameRows(decoded, t);
}

TEST(CsvTest, EmptyFieldIsNull) {
  auto schema = MakeSchema({{"a", ValueType::kInt64}, {"b", ValueType::kString}});
  ASSERT_OK_AND_ASSIGN(Table t, CsvFromString("a,b\n,x\n1,\n", schema));
  EXPECT_TRUE(t.Get(0, 0).is_null());
  EXPECT_EQ(t.Get(0, 1), Value("x"));
  EXPECT_EQ(t.Get(1, 0), Value(1));
  EXPECT_TRUE(t.Get(1, 1).is_null());
}

TEST(CsvTest, HeaderMismatchRejected) {
  auto schema = MakeSchema({{"a", ValueType::kInt64}});
  auto result = CsvFromString("wrong\n1\n", schema);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, BadIntegerRejectedWithLineInfo) {
  auto schema = MakeSchema({{"a", ValueType::kInt64}});
  auto result = CsvFromString("a\n1\nnot_a_number\n", schema);
  ASSERT_FALSE(result.ok());
}

TEST(CsvTest, FileRoundTrip) {
  const Table original = MakeTinyTable();
  const std::string path = ::testing::TempDir() + "/skalla_csv_test.csv";
  ASSERT_OK(WriteCsv(original, path));
  ASSERT_OK_AND_ASSIGN(Table decoded, ReadCsv(path, original.schema_ptr()));
  ExpectSameRows(decoded, original);
}

}  // namespace
}  // namespace skalla

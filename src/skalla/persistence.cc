#include "skalla/persistence.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "storage/serializer.h"

namespace skalla {

namespace {

namespace fs = std::filesystem;

constexpr const char* kMagicLine = "skalla-warehouse 1";

// ---- Value tokens: n | i<int> | d<double> | x<hex> (string) ----

std::string EncodeValue(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return "n";
    case ValueType::kInt64:
      return StrFormat("i%lld", static_cast<long long>(v.AsInt64()));
    case ValueType::kDouble:
      return StrFormat("d%.17g", v.AsDouble());
    case ValueType::kString: {
      std::string out = "x";
      for (unsigned char c : v.AsString()) {
        out += StrFormat("%02x", c);
      }
      return out;
    }
  }
  return "n";
}

Result<Value> DecodeValue(const std::string& token) {
  if (token.empty()) return Status::IoError("empty value token");
  const std::string payload = token.substr(1);
  switch (token[0]) {
    case 'n':
      return Value::Null();
    case 'i': {
      char* end = nullptr;
      const long long v = std::strtoll(payload.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') {
        return Status::IoError("bad int token '" + token + "'");
      }
      return Value(static_cast<int64_t>(v));
    }
    case 'd': {
      char* end = nullptr;
      const double v = std::strtod(payload.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        return Status::IoError("bad double token '" + token + "'");
      }
      return Value(v);
    }
    case 'x': {
      if (payload.size() % 2 != 0) {
        return Status::IoError("bad hex token '" + token + "'");
      }
      std::string out;
      out.reserve(payload.size() / 2);
      for (size_t i = 0; i < payload.size(); i += 2) {
        const std::string byte = payload.substr(i, 2);
        char* end = nullptr;
        const long v = std::strtol(byte.c_str(), &end, 16);
        if (end == nullptr || *end != '\0') {
          return Status::IoError("bad hex byte '" + byte + "'");
        }
        out.push_back(static_cast<char>(v));
      }
      return Value(std::move(out));
    }
    default:
      return Status::IoError("unknown value token '" + token + "'");
  }
}

Status WriteFile(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open '" + path.string() + "'");
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) return Status::IoError("write failed for '" + path.string() + "'");
  return Status::OK();
}

Result<std::string> ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path.string() + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

Status SaveWarehouse(const Warehouse& warehouse, const std::string& dir) {
  const fs::path root(dir);
  std::error_code ec;
  fs::create_directories(root, ec);
  if (ec) {
    return Status::IoError("cannot create directory '" + dir + "': " +
                           ec.message());
  }

  std::ostringstream manifest;
  manifest << kMagicLine << "\n";
  manifest << "sites " << warehouse.num_sites() << "\n";

  // All tables (every site holds a fragment of every loaded relation).
  const std::vector<std::string> tables =
      warehouse.num_sites() > 0 ? warehouse.site(0).catalog().TableNames()
                                : std::vector<std::string>{};
  for (const std::string& table : tables) {
    manifest << "table " << table << "\n";
  }

  for (int s = 0; s < warehouse.num_sites(); ++s) {
    const Site& site = warehouse.site(s);
    const fs::path site_dir = root / ("site" + std::to_string(s));
    fs::create_directories(site_dir, ec);
    if (ec) {
      return Status::IoError("cannot create '" + site_dir.string() + "'");
    }
    manifest << "site " << s << "\n";
    for (const auto& [attr, domain] : site.partition_info().domains()) {
      switch (domain.kind) {
        case AttrDomain::Kind::kAny:
          break;
        case AttrDomain::Kind::kRange:
          manifest << "domain " << attr << " range "
                   << EncodeValue(domain.lo) << " " << EncodeValue(domain.hi)
                   << "\n";
          break;
        case AttrDomain::Kind::kValueSet: {
          manifest << "domain " << attr << " set " << domain.values.size();
          for (const Value& v : domain.values) {
            manifest << " " << EncodeValue(v);
          }
          manifest << "\n";
          break;
        }
      }
    }
    for (const std::string& table : tables) {
      SKALLA_ASSIGN_OR_RETURN(std::shared_ptr<const Table> fragment,
                              site.catalog().GetTable(table));
      SKALLA_RETURN_NOT_OK(
          WriteFile(site_dir / (table + ".skl"),
                    Serializer::SerializeTable(*fragment)));
    }
  }
  return WriteFile(root / "MANIFEST", manifest.str());
}

Result<std::unique_ptr<Warehouse>> LoadWarehouse(const std::string& dir) {
  const fs::path root(dir);
  SKALLA_ASSIGN_OR_RETURN(std::string manifest_text,
                          ReadFile(root / "MANIFEST"));
  std::istringstream manifest(manifest_text);
  std::string line;
  if (!std::getline(manifest, line) || line != kMagicLine) {
    return Status::IoError("bad warehouse manifest magic");
  }

  int num_sites = -1;
  std::vector<std::string> tables;
  std::vector<PartitionInfo> infos;
  int current_site = -1;

  while (std::getline(manifest, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string keyword;
    fields >> keyword;
    if (keyword == "sites") {
      fields >> num_sites;
      if (num_sites < 0 || !fields) {
        return Status::IoError("bad sites line '" + line + "'");
      }
      infos.resize(static_cast<size_t>(num_sites));
    } else if (keyword == "table") {
      std::string name;
      fields >> name;
      tables.push_back(name);
    } else if (keyword == "site") {
      fields >> current_site;
      if (!fields || current_site < 0 || current_site >= num_sites) {
        return Status::IoError("bad site line '" + line + "'");
      }
    } else if (keyword == "domain") {
      if (current_site < 0) {
        return Status::IoError("domain line before any site line");
      }
      std::string attr;
      std::string kind;
      fields >> attr >> kind;
      PartitionInfo& info = infos[static_cast<size_t>(current_site)];
      if (kind == "range") {
        std::string lo_tok;
        std::string hi_tok;
        fields >> lo_tok >> hi_tok;
        SKALLA_ASSIGN_OR_RETURN(Value lo, DecodeValue(lo_tok));
        SKALLA_ASSIGN_OR_RETURN(Value hi, DecodeValue(hi_tok));
        info.SetDomain(attr, AttrDomain::Range(std::move(lo), std::move(hi)));
      } else if (kind == "set") {
        size_t count = 0;
        fields >> count;
        std::vector<Value> values;
        values.reserve(count);
        for (size_t i = 0; i < count; ++i) {
          std::string tok;
          fields >> tok;
          SKALLA_ASSIGN_OR_RETURN(Value v, DecodeValue(tok));
          values.push_back(std::move(v));
        }
        info.SetDomain(attr, AttrDomain::Set(std::move(values)));
      } else {
        return Status::IoError("unknown domain kind '" + kind + "'");
      }
    } else {
      return Status::IoError("unknown manifest keyword '" + keyword + "'");
    }
  }
  if (num_sites < 0) {
    return Status::IoError("manifest missing sites line");
  }

  auto warehouse = std::make_unique<Warehouse>(num_sites);
  for (const std::string& table : tables) {
    PartitionedData data;
    for (int s = 0; s < num_sites; ++s) {
      const fs::path path =
          root / ("site" + std::to_string(s)) / (table + ".skl");
      SKALLA_ASSIGN_OR_RETURN(std::string bytes, ReadFile(path));
      SKALLA_ASSIGN_OR_RETURN(Table fragment,
                              Serializer::DeserializeTable(bytes));
      data.fragments.push_back(
          std::make_shared<const Table>(std::move(fragment)));
    }
    data.infos.resize(static_cast<size_t>(num_sites));
    SKALLA_RETURN_NOT_OK(warehouse->LoadPartitioned(table, std::move(data)));
  }
  for (int s = 0; s < num_sites; ++s) {
    for (const auto& [attr, domain] : infos[static_cast<size_t>(s)].domains()) {
      warehouse->site(s).mutable_partition_info().SetDomain(attr, domain);
    }
  }
  return warehouse;
}

}  // namespace skalla

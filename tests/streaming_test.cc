#include <gtest/gtest.h>

#include "skalla/queries.h"
#include "skalla/warehouse.h"
#include "test_util.h"
#include "tpc/dbgen.h"

namespace skalla {
namespace {

TEST(StreamingSyncTest, OverlapNeverSlowsARoundDown) {
  RoundMetrics rm;
  rm.site_cpu_max_sec = 0.1;
  rm.coord_cpu_sec = 0.3;
  rm.comm_sec = 0.5;
  EXPECT_DOUBLE_EQ(rm.ResponseSeconds(), 0.9);
  rm.streaming = true;
  EXPECT_DOUBLE_EQ(rm.ResponseSeconds(), 0.6);  // 0.1 + max(0.3, 0.5)
}

TEST(StreamingSyncTest, SameResultLowerResponse) {
  TpcConfig config;
  config.num_rows = 6000;
  config.num_customers = 600;
  Table tpcr = GenerateTpcr(config);

  Warehouse plain(4);
  ASSERT_OK(plain.LoadByRange("TPCR", tpcr, "NationKey", 0, 24,
                              {"CustKey"}));
  Warehouse streaming(4);
  ASSERT_OK(streaming.LoadByRange("TPCR", tpcr, "NationKey", 0, 24,
                                  {"CustKey"}));
  NetworkConfig net = streaming.network_config();
  net.streaming_sync = true;
  streaming.set_network_config(net);

  const GmdjExpr query = queries::GroupReductionQuery("CustKey");
  ASSERT_OK_AND_ASSIGN(QueryResult a,
                       plain.Execute(query, OptimizerOptions::None()));
  ASSERT_OK_AND_ASSIGN(QueryResult b,
                       streaming.Execute(query, OptimizerOptions::None()));

  ExpectSameRows(b.table, a.table);
  // Identical traffic; streaming only overlaps merge with receive.
  EXPECT_EQ(a.metrics.TotalBytes(), b.metrics.TotalBytes());
  // Within the streaming run, every round pays max(coord, comm) instead of
  // the sum — compare against the non-overlapped cost of the SAME round
  // (cross-run wall-clock comparisons are load-dependent and flaky).
  for (const RoundMetrics& rm : b.metrics.rounds) {
    EXPECT_TRUE(rm.streaming);
    EXPECT_LE(rm.ResponseSeconds(), rm.site_cpu_max_sec + rm.coord_cpu_sec +
                                        rm.comm_sec + 1e-12);
  }
}

TEST(StreamingSyncTest, TreeCoordinatorHonorsFlag) {
  TpcConfig config;
  config.num_rows = 2000;
  config.num_customers = 200;
  Table tpcr = GenerateTpcr(config);
  Warehouse wh(4);
  ASSERT_OK(wh.LoadByRange("TPCR", tpcr, "NationKey", 0, 24, {"CustKey"}));
  NetworkConfig net = wh.network_config();
  net.streaming_sync = true;
  wh.set_network_config(net);

  ASSERT_OK_AND_ASSIGN(
      DistributedPlan plan,
      wh.Plan(queries::GroupReductionQuery("CustKey"),
              OptimizerOptions::None()));
  ASSERT_OK_AND_ASSIGN(QueryResult tree, wh.ExecutePlanTree(plan, 2));
  for (const RoundMetrics& rm : tree.metrics.rounds) {
    EXPECT_TRUE(rm.streaming);
  }
}

}  // namespace
}  // namespace skalla

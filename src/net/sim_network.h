#ifndef SKALLA_NET_SIM_NETWORK_H_
#define SKALLA_NET_SIM_NETWORK_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/cost_model.h"
#include "net/fault_injector.h"

namespace skalla {

/// Endpoint id of the coordinator in transfer records.
inline constexpr int kCoordinatorId = -1;

/// Aggregation-tree internal nodes are encoded as endpoint ids
/// kAggregatorIdBase - node_id, keeping them distinct from the coordinator
/// (-1) and from site ids (>= 0).
inline constexpr int kAggregatorIdBase = -2;

inline int EncodeAggregatorId(int node_id) {
  return kAggregatorIdBase - node_id;
}

/// One recorded message on the simulated network.
struct TransferRecord {
  int from = kCoordinatorId;
  int to = kCoordinatorId;
  size_t bytes = 0;
  int64_t rows = 0;       ///< relation rows carried (0 for control messages)
  int round = -1;
  std::string label;
  double seconds = 0.0;   ///< simulated transfer time charged
  TransferDirection dir = TransferDirection::kToSite;
  int attempt = 0;        ///< 0 = first transmission, >0 = retransmission
  bool delivered = true;  ///< false when the fault injector lost it
};

/// Outcome of one Transfer call.
struct TransferOutcome {
  bool delivered = true;
  double seconds = 0.0;  ///< modelled time incl. any injected delay
};

/// \brief In-process stand-in for the warehouse's WAN.
///
/// Every relation shipped between the coordinator and a site is first
/// binary-serialized (storage/serializer.h), so byte counts are exact; the
/// cost model then converts bytes to simulated seconds. By default the
/// network never loses or reorders messages — Skalla's evaluation
/// algorithm is synchronous by construction (rounds). Attaching a
/// FaultInjector makes transfers fallible: messages with a site endpoint
/// may be dropped, delayed, or slowed, and the coordinators recover with
/// retries (net/cost_model.h RetryPolicy). Lost messages are still
/// recorded — the bytes really crossed the wire — with delivered = false.
class SimNetwork {
 public:
  explicit SimNetwork(NetworkConfig config = NetworkConfig())
      : config_(config) {}

  const NetworkConfig& config() const { return config_; }

  /// Attaches a fault injector (borrowed, may be null). The injector is
  /// consulted for every transfer with a site endpoint; aggregator-to-
  /// aggregator hops of a tree are assumed reliable.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() const { return injector_; }

  /// Starts a new accounting round with a human-readable label.
  void BeginRound(std::string label);

  /// The index of the round currently being recorded (-1 before the first
  /// BeginRound) — also the round number fault schedules key on.
  int current_round() const { return current_round_; }

  /// Records one message and returns whether it was delivered plus the
  /// simulated seconds it took. `attempt` is the coordinator's retry
  /// counter for the exchange this message belongs to. `dir` defaults to
  /// the direction implied by the endpoints (from == coordinator →
  /// kToSite); tree coordinators pass it explicitly for aggregator hops.
  TransferOutcome Transfer(int from, int to, size_t bytes, int64_t rows,
                           std::string label, int attempt = 0,
                           std::optional<TransferDirection> dir = std::nullopt);

  const std::vector<TransferRecord>& transfers() const { return transfers_; }

  size_t TotalBytes() const;
  size_t BytesToCoordinator() const;    ///< upstream bytes (record dir)
  size_t BytesFromCoordinator() const;  ///< downstream bytes (record dir)
  int64_t RowsToCoordinator() const;
  int64_t RowsFromCoordinator() const;

  /// Bytes of retransmissions (records with attempt > 0).
  size_t RetransmittedBytes() const;
  /// Number of messages the injector lost.
  int DroppedCount() const;

  /// Clears all recorded traffic (metrics for a fresh query) and, when an
  /// injector is attached, its event log (its schedule is kept).
  void Reset();

  /// A per-round traffic summary for debugging, including retransmissions
  /// and the injected-fault summary when faults occurred.
  std::string Report() const;

 private:
  NetworkConfig config_;
  FaultInjector* injector_ = nullptr;
  std::vector<TransferRecord> transfers_;
  std::vector<std::string> round_labels_;
  int current_round_ = -1;
};

}  // namespace skalla

#endif  // SKALLA_NET_SIM_NETWORK_H_

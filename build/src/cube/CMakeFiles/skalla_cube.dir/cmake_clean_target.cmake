file(REMOVE_RECURSE
  "libskalla_cube.a"
)

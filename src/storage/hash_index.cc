#include "storage/hash_index.h"

#include "common/logging.h"

namespace skalla {

void HashIndex::Build(const Table& table, std::vector<int> key_cols) {
  table_ = &table;
  key_cols_ = std::move(key_cols);
  buckets_.clear();
  num_entries_ = 0;
  buckets_.reserve(static_cast<size_t>(table.num_rows()) * 2 + 16);
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    Insert(table, r);
  }
}

void HashIndex::Insert(const Table& table, int64_t row_id) {
  SKALLA_DCHECK(table_ == nullptr || table_ == &table);
  table_ = &table;
  const Row& row = table.row(row_id);
  const uint64_t h = RowKeyHash(row, key_cols_);
  auto& chains = buckets_[h];
  for (Bucket& bucket : chains) {
    const Row& rep = table.row(bucket.row_ids.front());
    if (RowKeyEquals(rep, key_cols_, row, key_cols_)) {
      bucket.row_ids.push_back(row_id);
      ++num_entries_;
      return;
    }
  }
  chains.push_back(Bucket{{row_id}});
  ++num_entries_;
}

const std::vector<int64_t>* HashIndex::Lookup(
    const Row& probe, const std::vector<int>& probe_cols) const {
  if (table_ == nullptr) return nullptr;
  SKALLA_DCHECK(probe_cols.size() == key_cols_.size());
  const uint64_t h = RowKeyHash(probe, probe_cols);
  auto it = buckets_.find(h);
  if (it == buckets_.end()) return nullptr;
  for (const Bucket& bucket : it->second) {
    const Row& rep = table_->row(bucket.row_ids.front());
    if (RowKeyEquals(rep, key_cols_, probe, probe_cols)) {
      return &bucket.row_ids;
    }
  }
  return nullptr;
}

}  // namespace skalla

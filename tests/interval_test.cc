#include "expr/interval.h"

#include <gtest/gtest.h>

#include <limits>

#include "expr/evaluator.h"
#include "expr/parser.h"
#include "expr/rewriter.h"
#include "test_util.h"

namespace skalla {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

ExprPtr MustParse(const std::string& text) {
  auto result = ParseExpr(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return *result;
}

TEST(IntervalTest, Arithmetic) {
  const Interval a{1, 3};
  const Interval b{-2, 4};
  EXPECT_EQ(a.Add(b).lo, -1);
  EXPECT_EQ(a.Add(b).hi, 7);
  EXPECT_EQ(a.Sub(b).lo, -3);
  EXPECT_EQ(a.Sub(b).hi, 5);
  EXPECT_EQ(a.Mul(b).lo, -6);
  EXPECT_EQ(a.Mul(b).hi, 12);
  EXPECT_EQ(a.Negate().lo, -3);
  EXPECT_EQ(a.Negate().hi, -1);
}

TEST(IntervalTest, DivisionAvoidingZero) {
  const Interval a{2, 6};
  const Interval b{1, 2};
  EXPECT_EQ(a.Div(b).lo, 1);
  EXPECT_EQ(a.Div(b).hi, 6);
}

TEST(IntervalTest, DivisionThroughZeroIsUnbounded) {
  const Interval a{2, 6};
  const Interval b{-1, 1};
  EXPECT_EQ(a.Div(b).lo, -kInf);
  EXPECT_EQ(a.Div(b).hi, kInf);
}

TEST(IntervalTest, MulWithInfinityStaysSound) {
  const Interval a{0, 0};
  const Interval b = Interval::All();
  const Interval product = a.Mul(b);
  EXPECT_LE(product.lo, 0);
  EXPECT_GE(product.hi, 0);
}

class DetailIntervalTest : public ::testing::Test {
 protected:
  DetailIntervalTest() {
    site_.SetDomain("SourceAS", AttrDomain::Range(Value(1), Value(25)));
    site_.SetDomain("Small", AttrDomain::Set({Value(2), Value(4), Value(6)}));
  }
  PartitionInfo site_;
};

TEST_F(DetailIntervalTest, ColumnFromRange) {
  auto iv = DetailInterval(MustParse("R.SourceAS"), site_);
  ASSERT_TRUE(iv.has_value());
  EXPECT_EQ(iv->lo, 1);
  EXPECT_EQ(iv->hi, 25);
}

TEST_F(DetailIntervalTest, ColumnFromValueSet) {
  auto iv = DetailInterval(MustParse("R.Small"), site_);
  ASSERT_TRUE(iv.has_value());
  EXPECT_EQ(iv->lo, 2);
  EXPECT_EQ(iv->hi, 6);
}

TEST_F(DetailIntervalTest, ArithmeticOverDomain) {
  // The paper's example: Flow.SourceAS * 2 with SourceAS in [1, 25].
  auto iv = DetailInterval(MustParse("R.SourceAS * 2"), site_);
  ASSERT_TRUE(iv.has_value());
  EXPECT_EQ(iv->lo, 2);
  EXPECT_EQ(iv->hi, 50);
}

TEST_F(DetailIntervalTest, UnknownColumnHasNoInterval) {
  EXPECT_FALSE(DetailInterval(MustParse("R.Unknown"), site_).has_value());
}

TEST_F(DetailIntervalTest, BaseColumnHasNoInterval) {
  EXPECT_FALSE(DetailInterval(MustParse("B.SourceAS"), site_).has_value());
}

// ---------------------------------------------------------------------------
// DeriveShipPredicate: the ¬ψ_i derivation of Theorem 4.
// ---------------------------------------------------------------------------

class ShipPredicateTest : public ::testing::Test {
 protected:
  ShipPredicateTest() {
    site_.SetDomain("SourceAS", AttrDomain::Range(Value(1), Value(25)));
  }

  /// Evaluates a derived base-only predicate against one base row with the
  /// given SourceAS/DestAS values.
  bool Matches(const ExprPtr& pred, int64_t source_as, int64_t dest_as) {
    const Schema base({{"SourceAS", ValueType::kInt64},
                       {"DestAS", ValueType::kInt64}});
    auto compiled = CompiledExpr::Compile(pred, &base, nullptr);
    EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
    const Row row = {Value(source_as), Value(dest_as)};
    return compiled->EvalBool(&row, nullptr);
  }

  PartitionInfo site_;
};

TEST_F(ShipPredicateTest, PaperExample2EqualityRange) {
  // θ contains Flow.SourceAS = B.SourceAS and site 1 handles SourceAS in
  // [1, 25]; ¬ψ must keep exactly b.SourceAS ∈ [1, 25].
  const ExprPtr theta = MustParse("B.SourceAS = R.SourceAS");
  const ExprPtr pred = SimplifyConstants(DeriveShipPredicate({theta}, site_));
  EXPECT_TRUE(Matches(pred, 1, 0));
  EXPECT_TRUE(Matches(pred, 25, 0));
  EXPECT_FALSE(Matches(pred, 0, 0));
  EXPECT_FALSE(Matches(pred, 26, 0));
}

TEST_F(ShipPredicateTest, PaperLinearArithmeticExample) {
  // Revised θ of Sect. 4.1: B.DestAS + B.SourceAS < Flow.SourceAS * 2
  // with SourceAS ≤ 25 at the site relaxes to DestAS + SourceAS < 50.
  const ExprPtr theta = MustParse("B.DestAS + B.SourceAS < R.SourceAS * 2");
  const ExprPtr pred = SimplifyConstants(DeriveShipPredicate({theta}, site_));
  EXPECT_TRUE(Matches(pred, 20, 29));   // 49 < 50
  EXPECT_FALSE(Matches(pred, 20, 30));  // 50 not < 50
}

TEST_F(ShipPredicateTest, ValueSetBecomesMembership) {
  PartitionInfo site;
  site.SetDomain("g", AttrDomain::Set({Value(3), Value(9)}));
  const ExprPtr theta = MustParse("B.SourceAS = R.g");
  const ExprPtr pred = SimplifyConstants(DeriveShipPredicate({theta}, site));
  EXPECT_TRUE(Matches(pred, 3, 0));
  EXPECT_TRUE(Matches(pred, 9, 0));
  // Exact membership, not just the [3, 9] hull.
  EXPECT_FALSE(Matches(pred, 5, 0));
}

TEST_F(ShipPredicateTest, DisjunctionOfThetasIsUnionOfMatches) {
  const ExprPtr theta1 = MustParse("B.SourceAS = R.SourceAS");
  const ExprPtr theta2 = MustParse("B.DestAS < R.SourceAS");
  const ExprPtr pred =
      SimplifyConstants(DeriveShipPredicate({theta1, theta2}, site_));
  // Matches θ1's relaxation...
  EXPECT_TRUE(Matches(pred, 10, 999));
  // ...or θ2's (DestAS < 25).
  EXPECT_TRUE(Matches(pred, 999, 10));
  EXPECT_FALSE(Matches(pred, 999, 999));
}

TEST_F(ShipPredicateTest, UnknownDomainRelaxesToTrue) {
  PartitionInfo empty_site;
  const ExprPtr theta = MustParse("B.SourceAS = R.SourceAS");
  const ExprPtr pred =
      SimplifyConstants(DeriveShipPredicate({theta}, empty_site));
  EXPECT_TRUE(IsLiteralTrue(pred));
}

TEST_F(ShipPredicateTest, InequalityRelaxations) {
  // B.x < R.SourceAS with SourceAS ≤ 25 → B.x < 25.
  const ExprPtr lt = SimplifyConstants(
      DeriveShipPredicate({MustParse("B.SourceAS < R.SourceAS")}, site_));
  EXPECT_TRUE(Matches(lt, 24, 0));
  EXPECT_FALSE(Matches(lt, 25, 0));

  // B.x > R.SourceAS with SourceAS ≥ 1 → B.x > 1.
  const ExprPtr gt = SimplifyConstants(
      DeriveShipPredicate({MustParse("B.SourceAS > R.SourceAS")}, site_));
  EXPECT_TRUE(Matches(gt, 2, 0));
  EXPECT_FALSE(Matches(gt, 1, 0));
}

TEST_F(ShipPredicateTest, FlippedOperandOrder) {
  // R.SourceAS >= B.SourceAS ⇔ B.SourceAS <= R.SourceAS → B.SourceAS ≤ 25.
  const ExprPtr pred = SimplifyConstants(
      DeriveShipPredicate({MustParse("R.SourceAS >= B.SourceAS")}, site_));
  EXPECT_TRUE(Matches(pred, 25, 0));
  EXPECT_FALSE(Matches(pred, 26, 0));
}

TEST_F(ShipPredicateTest, PureDetailAtomRefutation) {
  // θ = (R.SourceAS > 30 && B.DestAS = R.SourceAS): the site's range makes
  // the pure-detail conjunct unsatisfiable, so nothing ships.
  const ExprPtr theta =
      MustParse("R.SourceAS > 30 && B.DestAS = R.SourceAS");
  const ExprPtr pred = SimplifyConstants(DeriveShipPredicate({theta}, site_));
  EXPECT_TRUE(IsLiteralFalse(pred));
}

TEST_F(ShipPredicateTest, NotEqualsGivesNoReduction) {
  const ExprPtr pred = SimplifyConstants(
      DeriveShipPredicate({MustParse("B.SourceAS != R.SourceAS")}, site_));
  EXPECT_TRUE(IsLiteralTrue(pred));
}

TEST_F(ShipPredicateTest, PureBaseConjunctsKept) {
  const ExprPtr theta =
      MustParse("B.DestAS > 100 && B.SourceAS = R.SourceAS");
  const ExprPtr pred = SimplifyConstants(DeriveShipPredicate({theta}, site_));
  EXPECT_TRUE(Matches(pred, 10, 101));
  EXPECT_FALSE(Matches(pred, 10, 100));  // fails the pure-base conjunct
  EXPECT_FALSE(Matches(pred, 30, 101));  // fails the relaxed range
}

}  // namespace
}  // namespace skalla

# Empty compiler generated dependencies file for bench_fig2_group_reduction.
# This may be replaced when dependencies are built.

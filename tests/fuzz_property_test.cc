// Randomized end-to-end property test: for arbitrary GMDJ chains over
// arbitrary partitionings, every optimizer configuration and both
// coordinator architectures must reproduce the centralized evaluation
// exactly (Theorems 1, 3, 4, 5; Propositions 1, 2).
//
// All numeric data is integer-valued (including the double column) so that
// distributed merge order cannot perturb results through floating-point
// rounding — any mismatch is a real bug.

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "common/random.h"
#include "gmdj/local_eval.h"
#include "skalla/warehouse.h"
#include "storage/serializer.h"
#include "test_util.h"
#include "tpc/partitioner.h"

namespace skalla {
namespace {

SchemaPtr FuzzSchema() {
  return MakeSchema({{"g1", ValueType::kInt64},
                     {"g2", ValueType::kInt64},
                     {"s", ValueType::kString},
                     {"v1", ValueType::kInt64},
                     {"v2", ValueType::kInt64},
                     {"w", ValueType::kDouble}});
}

Table RandomTable(Rng* rng, int64_t rows) {
  Table t(FuzzSchema());
  static const char* kStrings[] = {"alpha", "beta", "gamma", "delta"};
  for (int64_t i = 0; i < rows; ++i) {
    Row row;
    row.push_back(Value(rng->Uniform(0, 7)));
    row.push_back(Value(rng->Uniform(0, 3)));
    row.push_back(Value(kStrings[rng->Uniform(0, 3)]));
    row.push_back(rng->Chance(0.08) ? Value::Null()
                                    : Value(rng->Uniform(-20, 20)));
    row.push_back(Value(rng->Uniform(0, 100)));
    row.push_back(Value(static_cast<double>(rng->Uniform(-50, 50))));
    t.AddRow(std::move(row));
  }
  return t;
}

/// Columns usable as aggregate inputs (numeric) and as θ operands.
const std::vector<std::string>& NumericCols() {
  static const std::vector<std::string> cols = {"v1", "v2", "w"};
  return cols;
}

struct FuzzQuery {
  GmdjExpr expr;
  /// Numeric aggregate outputs available for residual references.
  std::vector<std::string> numeric_outputs;
};

AggSpec RandomAgg(Rng* rng, int* counter,
                  std::vector<std::string>* numeric_outputs) {
  const std::string output = "o" + std::to_string((*counter)++);
  const int kind = static_cast<int>(rng->Uniform(0, 6));
  AggSpec spec;
  switch (kind) {
    case 0:
      spec = AggSpec::Count(output);
      break;
    case 1:
      spec = AggSpec::Sum(rng->Pick(NumericCols()), output);
      break;
    case 2:
      spec = AggSpec::Avg(rng->Pick(NumericCols()), output);
      break;
    case 3:
      spec = AggSpec::Min(rng->Pick(NumericCols()), output);
      break;
    case 4:
      spec = AggSpec::Var(rng->Pick(NumericCols()), output);
      break;
    case 5:
      spec = AggSpec::StdDev(rng->Pick(NumericCols()), output);
      break;
    default:
      spec = AggSpec::Max(rng->Pick(NumericCols()), output);
      break;
  }
  numeric_outputs->push_back(output);
  return spec;
}

/// A residual condition over base and detail columns; may reference
/// earlier aggregate outputs (all numeric).
ExprPtr RandomResidual(Rng* rng,
                       const std::vector<std::string>& numeric_outputs) {
  const int kind = static_cast<int>(rng->Uniform(0, 3));
  const BinaryOp cmps[] = {BinaryOp::kLt, BinaryOp::kLe, BinaryOp::kGt,
                           BinaryOp::kGe, BinaryOp::kEq, BinaryOp::kNe};
  const BinaryOp cmp = cmps[rng->Uniform(0, 5)];
  ExprPtr lhs = RCol(rng->Pick(NumericCols()));
  ExprPtr rhs;
  switch (kind) {
    case 0:
      rhs = Lit(Value(rng->Uniform(-30, 30)));
      break;
    case 1:
      if (numeric_outputs.empty()) {
        rhs = Lit(Value(rng->Uniform(-10, 10)));
      } else {
        rhs = Add(BCol(rng->Pick(numeric_outputs)),
                  Lit(Value(rng->Uniform(-5, 5))));
      }
      break;
    default:
      rhs = Mul(RCol(rng->Pick(NumericCols())), Lit(Value(rng->Uniform(0, 2))));
      break;
  }
  return std::make_shared<BinaryExpr>(cmp, std::move(lhs), std::move(rhs));
}

FuzzQuery RandomQuery(Rng* rng) {
  FuzzQuery q;
  q.expr.base.source_table = "T";

  // Random non-empty key subset.
  const std::vector<std::string> candidates = {"g1", "g2", "s"};
  for (const std::string& col : candidates) {
    if (rng->Chance(0.5)) q.expr.base.project_cols.push_back(col);
  }
  if (q.expr.base.project_cols.empty()) {
    q.expr.base.project_cols.push_back(rng->Pick(candidates));
  }
  if (rng->Chance(0.3)) {
    q.expr.base.filter = Ge(RCol("v2"), Lit(Value(rng->Uniform(0, 40))));
  }

  int counter = 0;
  const int num_ops = static_cast<int>(rng->Uniform(1, 3));
  for (int op_idx = 0; op_idx < num_ops; ++op_idx) {
    GmdjOp op;
    op.detail_table = "T";
    // θ conditions may reference only outputs of *earlier* operators —
    // never outputs of any block of this same operator.
    const std::vector<std::string> visible = q.numeric_outputs;
    const int num_blocks = static_cast<int>(rng->Uniform(1, 2));
    for (int b = 0; b < num_blocks; ++b) {
      GmdjBlock block;
      const int num_aggs = static_cast<int>(rng->Uniform(1, 3));
      for (int a = 0; a < num_aggs; ++a) {
        block.aggs.push_back(RandomAgg(rng, &counter, &q.numeric_outputs));
      }
      // θ: usually key equality (+ optional residual); sometimes a pure
      // inequality condition exercising the nested-loop path.
      std::vector<ExprPtr> conjuncts;
      if (rng->Chance(0.85)) {
        for (const std::string& key : q.expr.base.project_cols) {
          conjuncts.push_back(Eq(BCol(key), RCol(key)));
        }
      } else {
        // Pure-inequality θ exercising the nested-loop path. The base
        // operand must be numeric: prefer an integer key column, else an
        // overlapping-range comparison against a literal.
        ExprPtr base_operand;
        for (const std::string& key : q.expr.base.project_cols) {
          if (key != "s") {
            base_operand = BCol(key);
            break;
          }
        }
        if (base_operand == nullptr) {
          base_operand = Lit(Value(rng->Uniform(20, 120)));
        } else {
          base_operand =
              Add(base_operand, Lit(Value(rng->Uniform(20, 120))));
        }
        conjuncts.push_back(Le(RCol("v2"), std::move(base_operand)));
      }
      if (rng->Chance(0.6)) {
        conjuncts.push_back(RandomResidual(rng, visible));
      }
      block.theta = AndAll(conjuncts);
      op.blocks.push_back(std::move(block));
    }
    q.expr.ops.push_back(std::move(op));
  }
  return q;
}

class FuzzPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzPropertyTest, DistributedMatchesCentralizedEverywhere) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);

  const int num_sites = static_cast<int>(rng.Uniform(1, 5));
  const int64_t rows = rng.Uniform(0, 600);
  Table data = RandomTable(&rng, rows);

  Warehouse wh(num_sites);
  const int partitioning = static_cast<int>(rng.Uniform(0, 2));
  if (partitioning == 0) {
    ASSERT_OK(wh.LoadByRange("T", data, "g1", 0, 7, {"g1", "g2", "v2"}));
  } else if (partitioning == 1) {
    ASSERT_OK(wh.LoadByHash("T", data, "g2"));
  } else {
    ASSERT_OK_AND_ASSIGN(PartitionedData parts,
                         PartitionRoundRobin(data, num_sites));
    ASSERT_OK(wh.LoadPartitioned("T", std::move(parts)));
  }

  const FuzzQuery q = RandomQuery(&rng);
  SCOPED_TRACE(GmdjExprToString(q.expr));

  ASSERT_OK_AND_ASSIGN(Table expected, wh.ExecuteCentralized(q.expr));

  // Random optimizer subset + the two extremes.
  OptimizerOptions random_options;
  random_options.coalesce = rng.Chance(0.5);
  random_options.independent_group_reduction = rng.Chance(0.5);
  random_options.aware_group_reduction = rng.Chance(0.5);
  random_options.sync_reduction = rng.Chance(0.5);

  for (const OptimizerOptions& options :
       {OptimizerOptions::None(), random_options, OptimizerOptions::All()}) {
    ASSERT_OK_AND_ASSIGN(QueryResult result, wh.Execute(q.expr, options));
    ExpectSameRows(result.table, expected);

    // Theorem 2's transfer bound must hold for every plan.
    const int64_t bound = TheoremTwoGroupBound(result.plan, num_sites,
                                               result.table.num_rows());
    EXPECT_LE(result.metrics.GroupsToSites() + result.metrics.GroupsToCoord(),
              bound);
  }

  // Tree coordinator spot check (it requires full participation, which
  // site exclusion may have removed).
  ASSERT_OK_AND_ASSIGN(DistributedPlan plan,
                       wh.Plan(q.expr, random_options));
  bool full_participation = plan.base_sites.empty();
  for (const PlanRound& round : plan.rounds) {
    if (!round.participating_sites.empty()) full_participation = false;
  }
  if (full_participation) {
    const int fan_in = static_cast<int>(rng.Uniform(2, 4));
    ASSERT_OK_AND_ASSIGN(QueryResult tree, wh.ExecutePlanTree(plan, fan_in));
    ExpectSameRows(tree.table, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPropertyTest, ::testing::Range(0, 72));

/// Fault-randomized variant: under an arbitrary *recoverable* fault
/// schedule (random message loss bounded below the retry budget, plus a
/// random straggler), every optimizer configuration must still reproduce
/// the centralized evaluation exactly — faults may only change the cost
/// metrics. Theorem 2's transfer bound is checked against the *logical*
/// traffic, i.e. total groups minus the retry surcharge, because
/// retransmissions are real wire traffic the theorem does not model.
class FuzzFaultPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzFaultPropertyTest, FaultsNeverChangeAnswers) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 7);

  const int num_sites = static_cast<int>(rng.Uniform(1, 5));
  const int64_t rows = rng.Uniform(0, 400);
  Table data = RandomTable(&rng, rows);

  NetworkConfig net;
  net.retry.max_attempts = 4;
  Warehouse wh(num_sites, net);
  if (rng.Chance(0.5)) {
    ASSERT_OK(wh.LoadByRange("T", data, "g1", 0, 7, {"g1", "g2", "v2"}));
  } else {
    ASSERT_OK(wh.LoadByHash("T", data, "g2"));
  }

  const FuzzQuery q = RandomQuery(&rng);
  SCOPED_TRACE(GmdjExprToString(q.expr));

  ASSERT_OK_AND_ASSIGN(Table expected, wh.ExecuteCentralized(q.expr));

  // Messages drop with up to 40% probability on the first two attempts of
  // an exchange; attempts >= 2 always deliver, so a four-attempt policy
  // always recovers. One random site is a straggler (no deadlines are
  // configured, so it is merely slow).
  FaultInjector injector(static_cast<uint64_t>(GetParam()) * 31 + 5);
  injector.set_random_drop(0.1 + 0.3 * rng.Chance(0.5), /*max_attempt=*/2);
  injector.SlowSite(static_cast<int>(rng.Uniform(0, num_sites - 1)),
                    /*factor=*/1.0 + rng.Uniform(0, 9));
  wh.set_fault_injector(&injector);
  wh.set_parallel_site_execution(rng.Chance(0.5));

  for (const OptimizerOptions& options :
       {OptimizerOptions::None(), OptimizerOptions::All()}) {
    ASSERT_OK_AND_ASSIGN(QueryResult result, wh.Execute(q.expr, options));
    ExpectSameRows(result.table, expected);

    // Theorem 2 bounds the logical traffic; subtract the retry surcharge.
    const int64_t bound = TheoremTwoGroupBound(result.plan, num_sites,
                                               result.table.num_rows());
    EXPECT_LE(result.metrics.GroupsToSites() + result.metrics.GroupsToCoord() -
                  result.metrics.RetryGroupsToSites() -
                  result.metrics.RetryGroupsToCoord(),
              bound);
  }

  // Tree spot check under the same schedule.
  ASSERT_OK_AND_ASSIGN(DistributedPlan plan,
                       wh.Plan(q.expr, OptimizerOptions::None()));
  bool full_participation = plan.base_sites.empty();
  for (const PlanRound& round : plan.rounds) {
    if (!round.participating_sites.empty()) full_participation = false;
  }
  if (full_participation) {
    ASSERT_OK_AND_ASSIGN(QueryResult tree, wh.ExecutePlanTree(plan, 2));
    ExpectSameRows(tree.table, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzFaultPropertyTest, ::testing::Range(0, 24));

// ---------------------------------------------------------------------------
// Vectorized-vs-scalar byte identity: for arbitrary single-operator GMDJ
// evaluations — including extreme doubles (NaN, ±inf, -0.0) and INT64
// extremes, which the theorem fuzz above deliberately avoids — the
// vectorized scan (SKALLA_VECTORIZE=1) must reproduce the scalar scan
// (SKALLA_VECTORIZE=0) bit-for-bit on the SKL1 wire image, for every join
// strategy, thread count, and morsel size.
// ---------------------------------------------------------------------------

Table RandomVectorizeBase(Rng* rng, int64_t rows) {
  Table t(MakeSchema({{"k", ValueType::kInt64},
                      {"ks", ValueType::kString},
                      {"lim", ValueType::kInt64}}));
  static const char* kStrings[] = {"alpha", "beta", "gamma", "delta"};
  for (int64_t i = 0; i < rows; ++i) {
    Row row;
    row.push_back(Value(rng->Uniform(0, 7)));
    row.push_back(Value(kStrings[rng->Uniform(0, 3)]));
    row.push_back(rng->Chance(0.05) ? Value::Null()
                                    : Value(rng->Uniform(-40, 40)));
    t.AddRow(std::move(row));
  }
  return t;
}

Table RandomVectorizeDetail(Rng* rng, int64_t rows) {
  Table t(MakeSchema({{"k", ValueType::kInt64},
                      {"ks", ValueType::kString},
                      {"v", ValueType::kInt64},
                      {"w", ValueType::kDouble}}));
  static const char* kStrings[] = {"alpha", "beta", "gamma", "delta"};
  for (int64_t i = 0; i < rows; ++i) {
    Row row;
    row.push_back(Value(rng->Uniform(0, 7)));
    row.push_back(rng->Chance(0.05) ? Value::Null()
                                    : Value(kStrings[rng->Uniform(0, 3)]));
    if (rng->Chance(0.06)) {
      row.push_back(Value::Null());
    } else if (rng->Chance(0.05)) {
      row.push_back(rng->Chance(0.5)
                        ? Value(std::numeric_limits<int64_t>::min())
                        : Value(std::numeric_limits<int64_t>::max()));
    } else {
      row.push_back(Value(rng->Uniform(-50, 50)));
    }
    if (rng->Chance(0.06)) {
      row.push_back(Value::Null());
    } else if (rng->Chance(0.1)) {
      const double extremes[] = {std::numeric_limits<double>::quiet_NaN(),
                                 std::numeric_limits<double>::infinity(),
                                 -std::numeric_limits<double>::infinity(),
                                 -0.0};
      row.push_back(Value(extremes[rng->Uniform(0, 3)]));
    } else {
      row.push_back(Value(rng->UniformDouble(-100.0, 100.0)));
    }
    t.AddRow(std::move(row));
  }
  return t;
}

GmdjOp RandomVectorizeOp(Rng* rng) {
  GmdjOp op;
  op.detail_table = "T";
  const std::vector<std::string> inputs = {"v", "w"};
  const int num_blocks = static_cast<int>(rng->Uniform(1, 2));
  int counter = 0;
  for (int b = 0; b < num_blocks; ++b) {
    GmdjBlock block;
    const int num_aggs = static_cast<int>(rng->Uniform(1, 4));
    for (int a = 0; a < num_aggs; ++a) {
      const std::string output = "o" + std::to_string(counter++);
      switch (static_cast<int>(rng->Uniform(0, 7))) {
        case 0:
          block.aggs.push_back(AggSpec::Count(output));
          break;
        case 1:
          block.aggs.push_back(AggSpec::Sum(rng->Pick(inputs), output));
          break;
        case 2:
          block.aggs.push_back(AggSpec::Avg(rng->Pick(inputs), output));
          break;
        case 3:
          block.aggs.push_back(AggSpec::Min(rng->Pick(inputs), output));
          break;
        case 4:
          block.aggs.push_back(AggSpec::Var(rng->Pick(inputs), output));
          break;
        case 5:
          block.aggs.push_back(AggSpec::StdDev(rng->Pick(inputs), output));
          break;
        default:
          block.aggs.push_back(AggSpec::Max(rng->Pick(inputs), output));
          break;
      }
    }
    std::vector<ExprPtr> conjuncts;
    switch (static_cast<int>(rng->Uniform(0, 3))) {
      case 0:  // equi-key θ (hash / sort-merge paths); sometimes a string
               // key, exercising the dictionary-hash batched probe
        if (rng->Chance(0.3)) {
          conjuncts.push_back(Eq(BCol("ks"), RCol("ks")));
        } else {
          conjuncts.push_back(Eq(BCol("k"), RCol("k")));
        }
        break;
      case 1:  // pure inequality θ (nested-loop path)
        conjuncts.push_back(
            Le(RCol("v"), Add(BCol("lim"), Lit(Value(rng->Uniform(0, 60))))));
        break;
      default:  // equi-key plus a residual with doubles and strings
        conjuncts.push_back(Eq(BCol("k"), RCol("k")));
        if (rng->Chance(0.5)) {
          conjuncts.push_back(
              Gt(RCol("w"), Lit(Value(rng->UniformDouble(-60.0, 60.0)))));
        } else {
          conjuncts.push_back(Eq(RCol("ks"), Lit(Value("beta"))));
        }
        break;
    }
    if (rng->Chance(0.4)) {
      conjuncts.push_back(
          Ge(Mul(RCol("v"), Lit(Value(rng->Uniform(0, 2)))),
             Lit(Value(rng->Uniform(-20, 20)))));
    }
    // String ordering against a literal: batch-supported via the
    // per-dictionary order index (rank compares, not string compares).
    if (rng->Chance(0.2)) {
      static const char* kPivots[] = {"", "alpha", "bet", "beta", "gamma",
                                      "zz"};
      const std::string pivot = kPivots[rng->Uniform(0, 5)];
      switch (static_cast<int>(rng->Uniform(0, 3))) {
        case 0:
          conjuncts.push_back(Lt(RCol("ks"), Lit(Value(pivot))));
          break;
        case 1:
          conjuncts.push_back(Ge(RCol("ks"), Lit(Value(pivot))));
          break;
        default:  // constant on the left: the compare direction flips
          conjuncts.push_back(Le(Lit(Value(pivot)), RCol("ks")));
          break;
      }
    }
    // String ordering against a *runtime* constant (the base row's string,
    // unknowable statically): also order-index batched now, including the
    // NULL-constant and numeric-vs-string cases the base side can produce.
    if (rng->Chance(0.15)) {
      conjuncts.push_back(Lt(RCol("ks"), BCol("ks")));
    }
    block.theta = AndAll(conjuncts);
    op.blocks.push_back(std::move(block));
  }
  return op;
}

class FuzzVectorizeTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzVectorizeTest, VectorizedScanIsByteIdenticalToScalar) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 50021 + 3);

  Table base = RandomVectorizeBase(&rng, rng.Uniform(0, 24));
  Table detail = RandomVectorizeDetail(&rng, rng.Uniform(0, 500));
  const GmdjOp op = RandomVectorizeOp(&rng);

  for (const AggMode mode : {AggMode::kFinal, AggMode::kSub}) {
    LocalGmdjOptions options;
    options.mode = mode;
    options.touched_only = rng.Chance(0.5);
    options.carry_cols = {"k"};

    for (const JoinStrategy join :
         {JoinStrategy::kHash, JoinStrategy::kSortMerge}) {
      options.join = join;
      // The byte-identity contract is per configuration: flipping ONLY the
      // vectorize bit must change nothing, for any join strategy, thread
      // count, and morsel grid. (Different join strategies — and, with
      // non-integral doubles, different morsel grids — may legitimately
      // differ from each other through FP accumulation order; that is the
      // documented determinism model, not a vectorization property.)
      for (const int threads : {1, 2, 4}) {
        options.num_threads = threads;
        options.morsel_rows = threads == 1 ? 0 : rng.Uniform(16, 128);
        options.vectorize = 0;
        ASSERT_OK_AND_ASSIGN(Table scalar,
                             EvalGmdjOp(base, detail, op, options));
        options.vectorize = 1;
        ASSERT_OK_AND_ASSIGN(Table vectorized,
                             EvalGmdjOp(base, detail, op, options));
        EXPECT_EQ(Serializer::SerializeTable(vectorized, WireFormat::kSkl1),
                  Serializer::SerializeTable(scalar, WireFormat::kSkl1))
            << "join=" << (join == JoinStrategy::kHash ? "hash" : "sortmerge")
            << " threads=" << threads << " mode="
            << (mode == AggMode::kFinal ? "final" : "sub");
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzVectorizeTest, ::testing::Range(0, 48));

// ---------------------------------------------------------------------------
// Wire-format round-trip properties: arbitrary tables — including NaN/±inf
// doubles, -0.0, empty and multi-KB strings, and all-null columns — must
// survive both SKL1 and SKL2 bit-exactly, and an SKLD delta against an
// arbitrary row-prefix base must always decode back to the original.
// Bit-exactness is asserted on the canonical SKL1 byte string (Value
// equality would treat NaN as unequal to itself).
// ---------------------------------------------------------------------------

Value ExtremeValue(Rng* rng, ValueType type) {
  switch (type) {
    case ValueType::kInt64:
      switch (static_cast<int>(rng->Uniform(0, 3))) {
        case 0:
          return Value(std::numeric_limits<int64_t>::min());
        case 1:
          return Value(std::numeric_limits<int64_t>::max());
        default:
          return Value(rng->Uniform(-1000000000, 1000000000));
      }
    case ValueType::kDouble:
      switch (static_cast<int>(rng->Uniform(0, 5))) {
        case 0:
          return Value(std::numeric_limits<double>::quiet_NaN());
        case 1:
          return Value(std::numeric_limits<double>::infinity());
        case 2:
          return Value(-std::numeric_limits<double>::infinity());
        case 3:
          return Value(-0.0);
        default:
          return Value(rng->UniformDouble(-1e18, 1e18));
      }
    default:
      switch (static_cast<int>(rng->Uniform(0, 3))) {
        case 0:
          return Value(std::string());
        case 1:  // multi-KB payload
          return Value(rng->AlphaString(
              static_cast<int>(rng->Uniform(2048, 4096))));
        default:
          return Value(
              rng->AlphaString(static_cast<int>(rng->Uniform(0, 12))));
      }
  }
}

class WireFormatFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(WireFormatFuzzTest, BothFormatsRoundTripBitExactly) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 2654435761ull + 17);

  const int ncols = static_cast<int>(rng.Uniform(1, 4));
  std::vector<Field> fields;
  std::vector<bool> all_null;
  for (int c = 0; c < ncols; ++c) {
    fields.push_back(Field{"c" + std::to_string(c),
                           static_cast<ValueType>(rng.Uniform(1, 3))});
    all_null.push_back(rng.Chance(0.15));
  }
  Table t(MakeSchema(fields));
  const int64_t rows = rng.Uniform(0, 60);
  for (int64_t r = 0; r < rows; ++r) {
    Row row;
    for (int c = 0; c < ncols; ++c) {
      if (all_null[static_cast<size_t>(c)] || rng.Chance(0.1)) {
        row.push_back(Value::Null());
      } else {
        row.push_back(
            ExtremeValue(&rng, fields[static_cast<size_t>(c)].type));
      }
    }
    t.AddRow(std::move(row));
  }

  const std::string canonical =
      Serializer::SerializeTable(t, WireFormat::kSkl1);
  const uint64_t hash = Serializer::ContentHash(t);

  for (const WireFormat format : {WireFormat::kSkl1, WireFormat::kSkl2}) {
    SCOPED_TRACE(WireFormatName(format));
    const std::string bytes = Serializer::SerializeTable(t, format);
    EXPECT_EQ(bytes.size(), Serializer::WireSize(t, format));
    ASSERT_OK_AND_ASSIGN(Table decoded, Serializer::DeserializeTable(bytes));
    EXPECT_EQ(Serializer::SerializeTable(decoded, WireFormat::kSkl1),
              canonical);
    EXPECT_EQ(Serializer::ContentHash(decoded), hash);
  }

  // Delta against a random row-prefix of itself (the coordinator's cache
  // shape) always reproduces the full table.
  Table base(t.schema_ptr());
  const int64_t keep = rng.Uniform(0, rows);
  for (int64_t r = 0; r < keep; ++r) {
    Row row;
    for (int c = 0; c < ncols; ++c) row.push_back(t.Get(r, c));
    base.AddRow(std::move(row));
  }
  const std::string delta = Serializer::SerializeDelta(base, t);
  ASSERT_OK_AND_ASSIGN(Table patched,
                       Serializer::DecodeShipment(&base, delta));
  EXPECT_EQ(Serializer::SerializeTable(patched, WireFormat::kSkl1),
            canonical);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFormatFuzzTest, ::testing::Range(0, 40));

}  // namespace
}  // namespace skalla

file(REMOVE_RECURSE
  "CMakeFiles/skalla_opt.dir/cost_model.cc.o"
  "CMakeFiles/skalla_opt.dir/cost_model.cc.o.d"
  "CMakeFiles/skalla_opt.dir/optimizer.cc.o"
  "CMakeFiles/skalla_opt.dir/optimizer.cc.o.d"
  "libskalla_opt.a"
  "libskalla_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skalla_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dist/coordinator.cc" "src/dist/CMakeFiles/skalla_dist.dir/coordinator.cc.o" "gcc" "src/dist/CMakeFiles/skalla_dist.dir/coordinator.cc.o.d"
  "/root/repo/src/dist/fault_tolerance.cc" "src/dist/CMakeFiles/skalla_dist.dir/fault_tolerance.cc.o" "gcc" "src/dist/CMakeFiles/skalla_dist.dir/fault_tolerance.cc.o.d"
  "/root/repo/src/dist/metrics.cc" "src/dist/CMakeFiles/skalla_dist.dir/metrics.cc.o" "gcc" "src/dist/CMakeFiles/skalla_dist.dir/metrics.cc.o.d"
  "/root/repo/src/dist/plan.cc" "src/dist/CMakeFiles/skalla_dist.dir/plan.cc.o" "gcc" "src/dist/CMakeFiles/skalla_dist.dir/plan.cc.o.d"
  "/root/repo/src/dist/site.cc" "src/dist/CMakeFiles/skalla_dist.dir/site.cc.o" "gcc" "src/dist/CMakeFiles/skalla_dist.dir/site.cc.o.d"
  "/root/repo/src/dist/sync.cc" "src/dist/CMakeFiles/skalla_dist.dir/sync.cc.o" "gcc" "src/dist/CMakeFiles/skalla_dist.dir/sync.cc.o.d"
  "/root/repo/src/dist/tree_coordinator.cc" "src/dist/CMakeFiles/skalla_dist.dir/tree_coordinator.cc.o" "gcc" "src/dist/CMakeFiles/skalla_dist.dir/tree_coordinator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gmdj/CMakeFiles/skalla_gmdj.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/skalla_net.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/skalla_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/skalla_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/agg/CMakeFiles/skalla_agg.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/skalla_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/skalla_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

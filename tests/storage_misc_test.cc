#include <gtest/gtest.h>

#include "storage/catalog.h"
#include "storage/hash_index.h"
#include "storage/partition_info.h"
#include "test_util.h"

namespace skalla {
namespace {

TEST(HashIndexTest, SingleColumnLookup) {
  const Table t = MakeTinyTable();
  HashIndex index;
  index.Build(t, {0});  // key on g

  Row probe = {Value(2)};
  const std::vector<int64_t>* matches = index.Lookup(probe, {0});
  ASSERT_NE(matches, nullptr);
  EXPECT_EQ(matches->size(), 4u);
  for (int64_t row_id : *matches) {
    EXPECT_EQ(t.Get(row_id, 0), Value(2));
  }
}

TEST(HashIndexTest, CompositeKeyLookup) {
  const Table t = MakeTinyTable();
  HashIndex index;
  index.Build(t, {0, 1});  // (g, h)

  Row probe = {Value(3), Value(30)};
  const std::vector<int64_t>* matches = index.Lookup(probe, {0, 1});
  ASSERT_NE(matches, nullptr);
  EXPECT_EQ(matches->size(), 3u);
}

TEST(HashIndexTest, MissReturnsNull) {
  const Table t = MakeTinyTable();
  HashIndex index;
  index.Build(t, {0});
  Row probe = {Value(42)};
  EXPECT_EQ(index.Lookup(probe, {0}), nullptr);
}

TEST(HashIndexTest, ProbeColumnsMayDifferFromKeyColumns) {
  const Table t = MakeTinyTable();
  HashIndex index;
  index.Build(t, {0});
  // Probe row where the key lives in column 2.
  Row probe = {Value("pad"), Value("pad"), Value(1)};
  const std::vector<int64_t>* matches = index.Lookup(probe, {2});
  ASSERT_NE(matches, nullptr);
  EXPECT_EQ(matches->size(), 3u);
}

TEST(HashIndexTest, IncrementalInsert) {
  Table t(MakeSchema({{"k", ValueType::kInt64}}));
  HashIndex index;
  index.Build(t, {0});
  EXPECT_EQ(index.num_entries(), 0);
  t.AddRow({Value(1)});
  index.Insert(t, 0);
  t.AddRow({Value(1)});
  index.Insert(t, 1);
  Row probe = {Value(1)};
  const std::vector<int64_t>* matches = index.Lookup(probe, {0});
  ASSERT_NE(matches, nullptr);
  EXPECT_EQ(matches->size(), 2u);
}

TEST(HashIndexTest, CrossTypeNumericKeysUnify) {
  Table t(MakeSchema({{"k", ValueType::kDouble}}));
  t.AddRow({Value(5.0)});
  HashIndex index;
  index.Build(t, {0});
  Row probe = {Value(int64_t{5})};
  EXPECT_NE(index.Lookup(probe, {0}), nullptr);
}

TEST(HashIndexTest, FlatProbeMirrorsBoxedLookup) {
  const Table t = MakeTinyTable();
  HashIndex index;
  index.Build(t, {0});
  HashIndex mirrored;
  mirrored.Build(t, {0});
  mirrored.BuildFlatProbe();
  for (int64_t k = -2; k <= 8; ++k) {
    Row probe = {Value(k)};
    const std::vector<int64_t>* boxed = index.Lookup(probe, {0});
    const std::vector<int64_t>* flat = mirrored.Lookup(probe, {0});
    if (boxed == nullptr) {
      EXPECT_EQ(flat, nullptr) << "k=" << k;
    } else {
      ASSERT_NE(flat, nullptr) << "k=" << k;
      EXPECT_EQ(*flat, *boxed) << "k=" << k;
    }
  }
}

TEST(HashIndexTest, Int64FastProbeMatchesBoxedLookup) {
  Table t(MakeSchema({{"k", ValueType::kInt64}}));
  t.AddRow({Value(int64_t{7})});
  t.AddRow({Value::Null()});
  t.AddRow({Value(int64_t{7})});
  t.AddRow({Value(int64_t{-3})});
  HashIndex index;
  index.Build(t, {0});
  index.BuildFlatProbe();
  ASSERT_TRUE(index.has_int64_probe());

  const std::vector<int64_t>* seven = index.LookupInt64(7);
  ASSERT_NE(seven, nullptr);
  EXPECT_EQ(*seven, (std::vector<int64_t>{0, 2}));
  const std::vector<int64_t>* neg = index.LookupInt64(-3);
  ASSERT_NE(neg, nullptr);
  EXPECT_EQ(*neg, (std::vector<int64_t>{3}));
  EXPECT_EQ(index.LookupInt64(8), nullptr);
  // Scalar probing matches NULL keys to NULL; the fast probe agrees.
  const std::vector<int64_t>* nulls = index.LookupNullKey();
  ASSERT_NE(nulls, nullptr);
  EXPECT_EQ(*nulls, (std::vector<int64_t>{1}));
}

TEST(HashIndexTest, Int64FastProbeDeclinesMixedAndCompositeKeys) {
  // A double among the keys makes exact-int64 probing unsound.
  Table mixed(MakeSchema({{"k", ValueType::kDouble}}));
  mixed.AddRow({Value(5.0)});
  mixed.AddRow({Value(int64_t{6})});
  HashIndex index;
  index.Build(mixed, {0});
  index.BuildFlatProbe();
  EXPECT_FALSE(index.has_int64_probe());

  const Table t = MakeTinyTable();
  HashIndex composite;
  composite.Build(t, {0, 1});
  composite.BuildFlatProbe();
  EXPECT_FALSE(composite.has_int64_probe());
}

TEST(HashIndexTest, InsertInvalidatesProbeMirrors) {
  Table t(MakeSchema({{"k", ValueType::kInt64}}));
  t.AddRow({Value(int64_t{1})});
  HashIndex index;
  index.Build(t, {0});
  index.BuildFlatProbe();
  ASSERT_TRUE(index.has_int64_probe());
  t.AddRow({Value(int64_t{2})});
  index.Insert(t, 1);
  EXPECT_FALSE(index.has_int64_probe());
  // The boxed path serves the new key; rebuilding restores the mirror.
  Row probe = {Value(int64_t{2})};
  EXPECT_NE(index.Lookup(probe, {0}), nullptr);
  index.BuildFlatProbe();
  ASSERT_TRUE(index.has_int64_probe());
  EXPECT_NE(index.LookupInt64(2), nullptr);
}

TEST(AttrDomainTest, RangeMayContain) {
  const AttrDomain d = AttrDomain::Range(Value(1), Value(25));
  EXPECT_TRUE(d.MayContain(Value(1)));
  EXPECT_TRUE(d.MayContain(Value(25)));
  EXPECT_FALSE(d.MayContain(Value(0)));
  EXPECT_FALSE(d.MayContain(Value(26)));
}

TEST(AttrDomainTest, HalfOpenRange) {
  const AttrDomain d = AttrDomain::Range(Value(10), Value::Null());
  EXPECT_TRUE(d.MayContain(Value(1000000)));
  EXPECT_FALSE(d.MayContain(Value(9)));
  double lo = 0;
  double hi = 0;
  EXPECT_FALSE(d.NumericBounds(&lo, &hi));  // unbounded above
}

TEST(AttrDomainTest, ValueSet) {
  const AttrDomain d = AttrDomain::Set({Value(2), Value(4)});
  EXPECT_TRUE(d.MayContain(Value(2)));
  EXPECT_FALSE(d.MayContain(Value(3)));
  double lo = 0;
  double hi = 0;
  ASSERT_TRUE(d.NumericBounds(&lo, &hi));
  EXPECT_EQ(lo, 2);
  EXPECT_EQ(hi, 4);
}

TEST(AttrDomainTest, EmptySetContainsNothing) {
  const AttrDomain d = AttrDomain::Set({});
  EXPECT_FALSE(d.MayContain(Value(1)));
}

TEST(AttrDomainTest, AnyContainsEverything) {
  const AttrDomain d = AttrDomain::Any();
  EXPECT_TRUE(d.MayContain(Value(1)));
  EXPECT_TRUE(d.MayContain(Value("x")));
}

TEST(PartitionInfoTest, DomainsAndToString) {
  PartitionInfo info;
  info.SetDomain("NationKey", AttrDomain::Range(Value(0), Value(2)));
  EXPECT_TRUE(info.HasDomain("NationKey"));
  EXPECT_FALSE(info.HasDomain("Other"));
  EXPECT_EQ(info.Domain("Other").kind, AttrDomain::Kind::kAny);
  EXPECT_NE(info.ToString().find("NationKey in [0, 2]"), std::string::npos);
}

TEST(PartitionAttributeTest, DisjointRanges) {
  std::vector<PartitionInfo> sites(3);
  sites[0].SetDomain("a", AttrDomain::Range(Value(0), Value(9)));
  sites[1].SetDomain("a", AttrDomain::Range(Value(10), Value(19)));
  sites[2].SetDomain("a", AttrDomain::Range(Value(20), Value(29)));
  EXPECT_TRUE(IsPartitionAttribute("a", sites));
}

TEST(PartitionAttributeTest, OverlappingRangesRejected) {
  std::vector<PartitionInfo> sites(2);
  sites[0].SetDomain("a", AttrDomain::Range(Value(0), Value(10)));
  sites[1].SetDomain("a", AttrDomain::Range(Value(10), Value(20)));
  EXPECT_FALSE(IsPartitionAttribute("a", sites));
}

TEST(PartitionAttributeTest, MissingDomainRejected) {
  std::vector<PartitionInfo> sites(2);
  sites[0].SetDomain("a", AttrDomain::Range(Value(0), Value(9)));
  EXPECT_FALSE(IsPartitionAttribute("a", sites));
}

TEST(PartitionAttributeTest, DisjointValueSets) {
  std::vector<PartitionInfo> sites(2);
  sites[0].SetDomain("a", AttrDomain::Set({Value(1), Value(3)}));
  sites[1].SetDomain("a", AttrDomain::Set({Value(2), Value(4)}));
  EXPECT_TRUE(IsPartitionAttribute("a", sites));
}

TEST(PartitionAttributeTest, SetVersusRange) {
  std::vector<PartitionInfo> sites(2);
  sites[0].SetDomain("a", AttrDomain::Set({Value(1), Value(3)}));
  sites[1].SetDomain("a", AttrDomain::Range(Value(5), Value(9)));
  EXPECT_TRUE(IsPartitionAttribute("a", sites));
  sites[1].SetDomain("a", AttrDomain::Range(Value(3), Value(9)));
  EXPECT_FALSE(IsPartitionAttribute("a", sites));
}

TEST(PartitionAttributeTest, SingleSiteIsTriviallyPartitioned) {
  std::vector<PartitionInfo> sites(1);
  EXPECT_TRUE(IsPartitionAttribute("anything", sites));
}

TEST(PartitionAttributeTest, UnboundedRangesUnprovable) {
  std::vector<PartitionInfo> sites(2);
  sites[0].SetDomain("a", AttrDomain::Range(Value::Null(), Value(9)));
  sites[1].SetDomain("a", AttrDomain::Range(Value::Null(), Value(20)));
  EXPECT_FALSE(IsPartitionAttribute("a", sites));
}

TEST(CatalogTest, AddGetDrop) {
  Catalog catalog;
  auto table = std::make_shared<const Table>(MakeTinyTable());
  ASSERT_OK(catalog.AddTable("t", table));
  EXPECT_TRUE(catalog.HasTable("t"));
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<const Table> got,
                       catalog.GetTable("t"));
  EXPECT_EQ(got.get(), table.get());
  EXPECT_TRUE(catalog.DropTable("t"));
  EXPECT_FALSE(catalog.DropTable("t"));
  EXPECT_FALSE(catalog.GetTable("t").ok());
}

TEST(CatalogTest, DuplicateAddRejectedButPutReplaces) {
  Catalog catalog;
  auto table = std::make_shared<const Table>(MakeTinyTable());
  ASSERT_OK(catalog.AddTable("t", table));
  EXPECT_EQ(catalog.AddTable("t", table).code(), StatusCode::kAlreadyExists);
  catalog.PutTable("t", table);  // no error
  EXPECT_EQ(catalog.TableNames(), std::vector<std::string>{"t"});
}

}  // namespace
}  // namespace skalla

#include "skalla/persistence.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "skalla/queries.h"
#include "test_util.h"
#include "tpc/dbgen.h"

namespace skalla {
namespace {

std::string TempDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(PersistenceTest, SaveLoadRoundTripPreservesQueries) {
  Warehouse original(4);
  TpcConfig config;
  config.num_rows = 2500;
  config.num_customers = 200;
  Table tpcr = GenerateTpcr(config);
  ASSERT_OK(original.LoadByRange("TPCR", tpcr, "NationKey", 0, 24,
                                 {"CustKey", "ClerkKey"}));

  const std::string dir = TempDir("skalla_wh_roundtrip");
  ASSERT_OK(SaveWarehouse(original, dir));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Warehouse> restored,
                       LoadWarehouse(dir));

  ASSERT_EQ(restored->num_sites(), 4);
  // Fragments identical.
  for (int s = 0; s < 4; ++s) {
    ASSERT_OK_AND_ASSIGN(std::shared_ptr<const Table> a,
                         original.site(s).catalog().GetTable("TPCR"));
    ASSERT_OK_AND_ASSIGN(std::shared_ptr<const Table> b,
                         restored->site(s).catalog().GetTable("TPCR"));
    ExpectSameRows(*b, *a);
  }

  // Partition metadata restored → the optimizer reaches the same plan and
  // the same results under full optimization.
  const GmdjExpr query = queries::SyncReductionQuery("CustKey");
  ASSERT_OK_AND_ASSIGN(DistributedPlan original_plan,
                       original.Plan(query, OptimizerOptions::All()));
  ASSERT_OK_AND_ASSIGN(DistributedPlan restored_plan,
                       restored->Plan(query, OptimizerOptions::All()));
  EXPECT_EQ(original_plan.fuse_base, restored_plan.fuse_base);
  EXPECT_EQ(original_plan.rounds.size(), restored_plan.rounds.size());

  ASSERT_OK_AND_ASSIGN(QueryResult original_result,
                       original.Execute(query, OptimizerOptions::All()));
  ASSERT_OK_AND_ASSIGN(QueryResult restored_result,
                       restored->Execute(query, OptimizerOptions::All()));
  ExpectSameRows(restored_result.table, original_result.table);
}

TEST(PersistenceTest, RoundTripsValueSetAndStringDomains) {
  Warehouse original(2);
  Table t(MakeSchema({{"g", ValueType::kInt64}, {"s", ValueType::kString}}));
  t.AddRow({Value(1), Value("hello world")});  // space must survive hex
  t.AddRow({Value(2), Value("x,\"y\n")});
  ASSERT_OK(original.LoadByHash("T", t, "g"));
  original.site(0).mutable_partition_info().SetDomain(
      "g", AttrDomain::Set({Value(1), Value(3)}));
  original.site(0).mutable_partition_info().SetDomain(
      "s", AttrDomain::Range(Value("a b"), Value::Null()));
  original.site(1).mutable_partition_info().SetDomain(
      "w", AttrDomain::Range(Value(0.5), Value(2.5)));

  const std::string dir = TempDir("skalla_wh_domains");
  ASSERT_OK(SaveWarehouse(original, dir));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Warehouse> restored,
                       LoadWarehouse(dir));

  const AttrDomain& g_dom = restored->site(0).partition_info().Domain("g");
  ASSERT_EQ(g_dom.kind, AttrDomain::Kind::kValueSet);
  ASSERT_EQ(g_dom.values.size(), 2u);
  EXPECT_EQ(g_dom.values[0], Value(1));
  EXPECT_EQ(g_dom.values[1], Value(3));

  const AttrDomain& s_dom = restored->site(0).partition_info().Domain("s");
  ASSERT_EQ(s_dom.kind, AttrDomain::Kind::kRange);
  EXPECT_EQ(s_dom.lo, Value("a b"));
  EXPECT_TRUE(s_dom.hi.is_null());

  const AttrDomain& w_dom = restored->site(1).partition_info().Domain("w");
  EXPECT_EQ(w_dom.lo, Value(0.5));
  EXPECT_EQ(w_dom.hi, Value(2.5));

  // Data with embedded quotes/newlines survives the binary format.
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<const Table> full,
                       restored->central_catalog().GetTable("T"));
  EXPECT_EQ(full->num_rows(), 2);
}

TEST(PersistenceTest, MultipleTables) {
  Warehouse original(3);
  TpcConfig config;
  config.num_rows = 600;
  Table tpcr = GenerateTpcr(config);
  ASSERT_OK(original.LoadByRange("TPCR", tpcr, "NationKey", 0, 24));
  ASSERT_OK(original.LoadByHash("Copy", tpcr, "OrderKey"));

  const std::string dir = TempDir("skalla_wh_multi");
  ASSERT_OK(SaveWarehouse(original, dir));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Warehouse> restored,
                       LoadWarehouse(dir));
  EXPECT_TRUE(restored->central_catalog().HasTable("TPCR"));
  EXPECT_TRUE(restored->central_catalog().HasTable("Copy"));
}

TEST(PersistenceTest, LoadErrors) {
  EXPECT_FALSE(LoadWarehouse("/nonexistent/skalla").ok());

  const std::string dir = TempDir("skalla_wh_badmagic");
  {
    std::ofstream out(dir + "/MANIFEST");
    out << "not a manifest\n";
  }
  auto result = LoadWarehouse(dir);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace skalla

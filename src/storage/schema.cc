#include "storage/schema.h"

#include <algorithm>

#include "common/string_util.h"

namespace skalla {

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  sorted_names_.reserve(fields_.size());
  for (size_t i = 0; i < fields_.size(); ++i) {
    sorted_names_.emplace_back(fields_[i].name, static_cast<int>(i));
  }
  std::sort(sorted_names_.begin(), sorted_names_.end());
}

std::optional<int> Schema::IndexOf(const std::string& name) const {
  auto it = std::lower_bound(
      sorted_names_.begin(), sorted_names_.end(), name,
      [](const auto& entry, const std::string& key) { return entry.first < key; });
  if (it != sorted_names_.end() && it->first == name) return it->second;
  return std::nullopt;
}

Result<int> Schema::MustIndexOf(const std::string& name) const {
  auto idx = IndexOf(name);
  if (!idx.has_value()) {
    return Status::NotFound("no column named '" + name + "' in schema [" +
                            ToString() + "]");
  }
  return *idx;
}

std::vector<std::string> Schema::FieldNames() const {
  std::vector<std::string> names;
  names.reserve(fields_.size());
  for (const Field& f : fields_) names.push_back(f.name);
  return names;
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(fields_.size());
  for (const Field& f : fields_) {
    parts.push_back(f.name + ":" + ValueTypeToString(f.type));
  }
  return Join(parts, ", ");
}

}  // namespace skalla

# Empty compiler generated dependencies file for example_netflow_analysis.
# This may be replaced when dependencies are built.

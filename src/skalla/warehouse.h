#ifndef SKALLA_SKALLA_WAREHOUSE_H_
#define SKALLA_SKALLA_WAREHOUSE_H_

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "dist/coordinator.h"
#include "dist/rebalance.h"
#include "dist/tree_coordinator.h"
#include "dist/metrics.h"
#include "dist/plan.h"
#include "dist/site.h"
#include "gmdj/gmdj.h"
#include "net/cost_model.h"
#include "net/fault_injector.h"
#include "opt/cost_model.h"
#include "opt/optimizer.h"
#include "tpc/partitioner.h"

namespace skalla {

/// Result of one distributed query execution.
struct QueryResult {
  Table table;               ///< the finalized base-result structure
  ExecutionMetrics metrics;  ///< cost accounting of the execution
  DistributedPlan plan;      ///< the plan that was executed
};

/// \brief Per-query execution hooks for the concurrent serving layer
/// (src/server/). Every field is optional; default-constructed hooks make
/// ExecutePlan behave exactly like the hook-less overload.
struct ExecHooks {
  /// Morsel-lane quota for this query's local GMDJ evaluation; -1 keeps
  /// the warehouse default (set_local_threads). The quota bounds how many
  /// shared-pool lanes one query may occupy, so concurrent queries share
  /// the pool instead of each grabbing every worker.
  int local_threads = -1;

  /// Per-attempt deadline in simulated seconds for every round exchange,
  /// reusing the wave driver's deadline machinery (RetryPolicy); < 0 keeps
  /// the warehouse NetworkConfig, 0 disables deadlines for this query.
  double deadline_sec = -1.0;

  /// Cooperative cancellation flag (borrowed, may be null), polled at
  /// round boundaries; see Coordinator::set_cancel_flag.
  const std::atomic<bool>* cancel = nullptr;

  /// Per-round base-result-structure observer for cross-query prefix
  /// caching; see Coordinator::set_round_observer.
  Coordinator::RoundObserver round_observer;

  /// Resume evaluation from a cached prefix structure; see
  /// Coordinator::set_resume. `resume_x` is borrowed and must outlive the
  /// call.
  const Table* resume_x = nullptr;
  size_t resume_rounds = 0;

  /// Cross-query SKLD delta-base cache (borrowed, may be null); see
  /// Coordinator::set_ship_cache. The caller serializes access and clears
  /// the cache when site data mutates.
  std::vector<std::optional<Table>>* ship_cache = nullptr;
};

/// \brief The Skalla distributed data warehouse facade.
///
/// A Warehouse bundles N Skalla sites, their partition metadata, a
/// coordinator and the Egil optimizer behind one convenient API:
///
/// \code
///   Warehouse wh(8);
///   wh.LoadPartitioned("TPCR", std::move(parts));       // fragments + φ_i
///   GmdjExpr query = ...;                               // gmdj/gmdj.h
///   auto result = wh.Execute(query, OptimizerOptions::All());
///   std::cout << result->table.ToString() << result->metrics.ToString();
/// \endcode
///
/// The warehouse also keeps the union of every loaded relation in a central
/// catalog so that any query can be cross-checked against the centralized
/// reference evaluator (ExecuteCentralized).
class Warehouse {
 public:
  explicit Warehouse(int num_sites, NetworkConfig net = NetworkConfig());

  int num_sites() const { return static_cast<int>(sites_.size()); }
  Site& site(int i) { return *sites_[static_cast<size_t>(i)]; }
  const Site& site(int i) const { return *sites_[static_cast<size_t>(i)]; }

  /// Registers a pre-partitioned relation: fragment i goes to site i, whose
  /// partition metadata is extended with the fragment's PartitionInfo.
  /// The central catalog receives the union of the fragments.
  Status LoadPartitioned(const std::string& name, PartitionedData data);

  /// Partitions `table` by contiguous ranges of `attr` (making it a
  /// partition attribute) and loads it. `profile_attrs` lists additional
  /// attributes whose observed per-site ranges are recorded as distribution
  /// knowledge (e.g. CustKey under a NationKey partitioning).
  Status LoadByRange(const std::string& name, const Table& table,
                     const std::string& attr, int64_t attr_min,
                     int64_t attr_max,
                     const std::vector<std::string>& profile_attrs = {});

  /// Skew-aware variant of LoadByRange: boundaries are placed by actual
  /// per-key row counts (PartitionByRangeWeighted), so Zipf-skewed keys
  /// still produce near-equal fragment sizes while every φ_i stays a
  /// contiguous range. Afterwards a FreqSketch over `attr` finds heavy
  /// hitters — single keys holding more than `replicate_share` of one
  /// site's fair share of rows, which no contiguous boundary can split —
  /// and auto-registers a replica
  /// of each such key's site so the skew rebalancer has a helper ready
  /// (docs/skew.md).
  Status LoadByRangeWeighted(const std::string& name, const Table& table,
                             const std::string& attr, int64_t attr_min,
                             int64_t attr_max,
                             const std::vector<std::string>& profile_attrs = {},
                             double replicate_share = 0.5);

  /// Hash-partitions `table` on `attr` and loads it (no distribution
  /// knowledge recorded).
  Status LoadByHash(const std::string& name, const Table& table,
                    const std::string& attr);

  /// Builds (but does not run) the distributed plan for a query.
  Result<DistributedPlan> Plan(const GmdjExpr& expr,
                               const OptimizerOptions& options) const;

  /// Optimizes and executes a query over the distributed warehouse.
  Result<QueryResult> Execute(const GmdjExpr& expr,
                              const OptimizerOptions& options);

  /// Executes a pre-built plan.
  Result<QueryResult> ExecutePlan(const DistributedPlan& plan);

  /// Executes a pre-built plan with per-query hooks (morsel quota,
  /// deadline, cancellation, prefix capture/resume) — the entry point of
  /// the concurrent serving layer (src/server/server.h).
  Result<QueryResult> ExecutePlan(const DistributedPlan& plan,
                                  const ExecHooks& hooks);

  /// Executes a pre-built plan over a multi-tier aggregation tree with the
  /// given fan-in (dist/tree_coordinator.h; the paper's future-work
  /// architecture). Produces the same relation as ExecutePlan with a
  /// different cost profile.
  Result<QueryResult> ExecutePlanTree(const DistributedPlan& plan,
                                      int fan_in);

  /// Fully automatic execution: optimizes with every optimization enabled,
  /// profiles relation statistics (cached per relation), and lets the cost
  /// model (opt/cost_model.h) choose between the flat coordinator and a
  /// multi-tier tree before executing. `chosen_fan_in`, when non-null,
  /// receives 0 (flat) or the winning fan-in.
  Result<QueryResult> ExecuteAuto(const GmdjExpr& expr,
                                  int* chosen_fan_in = nullptr);

  /// Centralized reference evaluation over the unioned relations.
  Result<Table> ExecuteCentralized(const GmdjExpr& expr) const;

  /// Appends one row to a loaded relation, routing it to the unique site
  /// whose partition predicate φ_i may contain it (every attribute with a
  /// declared domain at that site must admit the row's value — rejecting
  /// rows no φ covers keeps the Sect.-4 optimizations sound). The site
  /// fragment, any registered replica of that site, and the central
  /// catalog are all updated copy-on-write: in-flight readers holding the
  /// old shared_ptr keep a consistent snapshot, and the fresh Table starts
  /// with an empty columnar cache (the columnar view's invalidation
  /// contract). The relation's ExecuteAuto statistics cache is dropped.
  ///
  /// NOT internally synchronized against concurrent Execute* calls — the
  /// serving layer serializes mutations behind an exclusive lock
  /// (docs/server.md).
  Status AppendRow(const std::string& table, const Row& row);

  /// The union catalog (for reference evaluation and inspection).
  const Catalog& central_catalog() const { return central_; }

  /// Partition metadata of every site (φ_1 … φ_n).
  std::vector<PartitionInfo> SiteInfos() const;

  const NetworkConfig& network_config() const { return net_; }
  void set_network_config(NetworkConfig net) { net_ = net; }

  /// Attaches a deterministic fault injector (borrowed, may be null) that
  /// every subsequent ExecutePlan / ExecutePlanTree wires into its
  /// simulated network. Recoverable schedules change only the metrics
  /// (retries, retransmissions); results stay byte-identical to the
  /// fault-free run. See docs/fault-model.md.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() const { return injector_; }

  /// Creates a failover replica of `site_id`: a fresh site holding a copy
  /// of every local partition and of φ_i, with its own site id
  /// (num_sites + k, so fault schedules against the primary do not follow
  /// the replica). Returns the replica so tests can perturb it; the
  /// warehouse keeps ownership. At most one replica per primary.
  Result<Site*> AddReplica(int site_id);

  /// Runs each round's site evaluations on real threads (see
  /// Coordinator::set_parallel_sites). Identical results, faster
  /// simulation wall-clock on multi-core machines.
  void set_parallel_site_execution(bool parallel) {
    parallel_sites_ = parallel;
  }

  /// Lanes each site may use for its morsel-driven local GMDJ evaluation
  /// (see Coordinator::set_local_threads): 0 = the SKALLA_THREADS default
  /// (hardware concurrency), 1 = sequential local scans. Results are
  /// byte-identical for every setting (docs/parallelism.md).
  void set_local_threads(int num_threads) { local_threads_ = num_threads; }
  int local_threads() const { return local_threads_; }

  /// Skew-aware adaptive execution (docs/skew.md): the warehouse owns one
  /// persistent SkewDetector wired into every coordinator it builds, so
  /// straggler rates learned by one query seed the next. The detector
  /// always observes; splits only happen while `config.enabled` is true
  /// and the straggler has a replica (AddReplica / LoadByRangeWeighted).
  void set_rebalance_config(const RebalanceConfig& config) {
    skew_detector_.mutable_config() = config;
  }
  const RebalanceConfig& rebalance_config() const {
    return skew_detector_.config();
  }
  SkewDetector& skew_detector() { return skew_detector_; }

  /// Prices `plan` with the calibrated cost model over cached relation
  /// statistics (profiling the base relation on first use, as ExecuteAuto
  /// does). The serving layer weighs admission order by this estimate.
  Result<CostBreakdown> EstimateCost(const DistributedPlan& plan);

 private:
  /// The profiled statistics of `plan`'s base relation (cached).
  Result<const RelationStats*> BaseStats(const DistributedPlan& plan);
  std::vector<std::unique_ptr<Site>> sites_;
  /// Failover replicas keyed by primary site id (owned here, registered
  /// with each coordinator at execution time).
  std::map<int, std::unique_ptr<Site>> replicas_;
  Catalog central_;
  NetworkConfig net_;
  FaultInjector* injector_ = nullptr;
  bool parallel_sites_ = false;
  int local_threads_ = 0;
  /// Relation statistics cache for ExecuteAuto (profiled on first use).
  std::map<std::string, RelationStats> stats_cache_;
  /// Persistent straggler detector shared by every coordinator this
  /// warehouse builds (internally synchronized; see dist/rebalance.h).
  SkewDetector skew_detector_;
};

}  // namespace skalla

#endif  // SKALLA_SKALLA_WAREHOUSE_H_

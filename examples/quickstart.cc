// Quickstart: build a 4-site distributed data warehouse of IP-flow data,
// run the paper's Example 1 query, and inspect the result and the cost
// metrics.
//
//   ./example_quickstart

#include <cstdio>
#include <iostream>

#include "flow/flowgen.h"
#include "skalla/queries.h"
#include "skalla/warehouse.h"

int main() {
  using namespace skalla;

  // 1. Generate synthetic NetFlow-style data. Each router handles a block
  //    of source autonomous systems, mirroring the paper's Sect. 2.1 setup.
  FlowConfig config;
  config.num_rows = 20000;
  config.num_routers = 4;
  config.num_as = 64;
  Table flows = GenerateFlows(config);

  // 2. Create a warehouse with one Skalla site per router and load the
  //    Flow relation partitioned on SourceAS (with profiled distribution
  //    knowledge so the optimizer can prove SourceAS a partition attribute).
  Warehouse warehouse(4);
  Status load = warehouse.LoadByRange("Flow", flows, "SourceAS", 0,
                                      config.num_as - 1,
                                      {"SourceAS", "RouterId"});
  if (!load.ok()) {
    std::cerr << "load failed: " << load << "\n";
    return 1;
  }

  // 3. The query of Example 1: per (SourceAS, DestAS), the total number of
  //    flows and the number of flows whose NumBytes exceeds the average.
  const GmdjExpr query = queries::FlowExample1();
  std::cout << "GMDJ expression:\n" << GmdjExprToString(query) << "\n\n";

  // 4. Plan and execute with all Section-4 optimizations enabled.
  auto result = warehouse.Execute(query, OptimizerOptions::All());
  if (!result.ok()) {
    std::cerr << "query failed: " << result.status() << "\n";
    return 1;
  }

  std::cout << "Distributed plan:\n" << result->plan.Explain() << "\n";
  std::cout << "First rows of the result ("
            << result->table.num_rows() << " groups):\n"
            << result->table.ToString(10) << "\n";
  std::cout << "Execution metrics:\n" << result->metrics.ToString() << "\n";

  // 5. Cross-check against the centralized reference evaluation.
  auto reference = warehouse.ExecuteCentralized(query);
  if (!reference.ok()) {
    std::cerr << "centralized evaluation failed: " << reference.status()
              << "\n";
    return 1;
  }
  std::cout << (result->table.SameRowMultiset(*reference)
                    ? "Distributed result matches centralized evaluation.\n"
                    : "MISMATCH against centralized evaluation!\n");
  return 0;
}

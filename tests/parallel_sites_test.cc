#include <gtest/gtest.h>

#include "skalla/queries.h"
#include "skalla/warehouse.h"
#include "test_util.h"
#include "tpc/dbgen.h"

namespace skalla {
namespace {

TEST(ParallelSitesTest, IdenticalResultsAndTraffic) {
  TpcConfig config;
  config.num_rows = 8000;
  config.num_customers = 700;
  Table tpcr = GenerateTpcr(config);

  Warehouse sequential(8);
  ASSERT_OK(sequential.LoadByRange("TPCR", tpcr, "NationKey", 0, 24,
                                   {"CustKey"}));
  Warehouse parallel(8);
  ASSERT_OK(parallel.LoadByRange("TPCR", tpcr, "NationKey", 0, 24,
                                 {"CustKey"}));
  parallel.set_parallel_site_execution(true);

  for (const auto& [name, query] :
       std::vector<std::pair<std::string, GmdjExpr>>{
           {"group", queries::GroupReductionQuery("CustKey")},
           {"combined", queries::CombinedQuery("CustKey")}}) {
    SCOPED_TRACE(name);
    for (const auto& options :
         {OptimizerOptions::None(), OptimizerOptions::All()}) {
      ASSERT_OK_AND_ASSIGN(QueryResult a, sequential.Execute(query, options));
      ASSERT_OK_AND_ASSIGN(QueryResult b, parallel.Execute(query, options));
      ExpectSameRows(b.table, a.table);
      EXPECT_EQ(a.metrics.TotalBytes(), b.metrics.TotalBytes());
      EXPECT_EQ(a.metrics.GroupsToCoord(), b.metrics.GroupsToCoord());
    }
  }
}

TEST(ParallelSitesTest, ErrorsPropagateFromWorkerThreads) {
  Warehouse wh(3);
  TpcConfig config;
  config.num_rows = 400;
  Table tpcr = GenerateTpcr(config);
  ASSERT_OK(wh.LoadByRange("TPCR", tpcr, "NationKey", 0, 24));
  wh.set_parallel_site_execution(true);
  // Drop the relation from one site after loading: that site's round must
  // fail and the failure must surface through the parallel path.
  wh.site(1).catalog().DropTable("TPCR");
  auto result = wh.Execute(queries::GroupReductionQuery("CustKey"),
                           OptimizerOptions::None());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ParallelSitesTest, SingleSiteUsesSequentialPath) {
  Warehouse wh(1);
  TpcConfig config;
  config.num_rows = 300;
  Table tpcr = GenerateTpcr(config);
  ASSERT_OK(wh.LoadByRange("TPCR", tpcr, "NationKey", 0, 24));
  wh.set_parallel_site_execution(true);
  ASSERT_OK_AND_ASSIGN(QueryResult result,
                       wh.Execute(queries::CoalescingQuery("ClerkKey"),
                                  OptimizerOptions::All()));
  ASSERT_OK_AND_ASSIGN(
      Table expected,
      wh.ExecuteCentralized(queries::CoalescingQuery("ClerkKey")));
  ExpectSameRows(result.table, expected);
}

}  // namespace
}  // namespace skalla

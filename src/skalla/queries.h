#ifndef SKALLA_SKALLA_QUERIES_H_
#define SKALLA_SKALLA_QUERIES_H_

#include <string>

#include "gmdj/gmdj.h"

namespace skalla {
namespace queries {

/// \brief Example 1 of the paper, over the Flow relation:
///
///   MD( MD(π_{SAS,DAS}(Flow) → B₀, Flow,
///          ((cnt(*)→cnt1, sum(NB)→sum1)),
///          (F.SAS = B.SAS && F.DAS = B.DAS)) → B₁,
///       Flow, ((cnt(*)→cnt2)),
///       (F.SAS = B.SAS && F.DAS = B.DAS && F.NB ≥ sum1/cnt1))
///
/// "the total number of flows, and the number of flows whose NumBytes
/// exceeds the average, per (SourceAS, DestAS)".
GmdjExpr FlowExample1();

/// \brief The *group reduction query* of Fig. 2: two correlated GMDJ
/// operators grouped on `group_attr` (each computing COUNT and AVG, per the
/// paper's setup). The second θ references the first operator's AVG, so
/// coalescing cannot fire; the query isolates the effect of group
/// reduction.
GmdjExpr GroupReductionQuery(const std::string& group_attr);

/// \brief The *coalescing query* of Fig. 3: two GMDJ operators whose second
/// condition is independent of the first operator's outputs (it adds only a
/// detail-side selection), so the pair coalesces into a single operator /
/// single round.
GmdjExpr CoalescingQuery(const std::string& group_attr);

/// \brief The *synchronization reduction query* of Fig. 4: two correlated
/// GMDJ operators (not coalescable) whose conditions all entail equality on
/// `group_attr`; when `group_attr` is a partition attribute the whole query
/// evaluates locally with a single synchronization (Prop. 2 + Cor. 1).
GmdjExpr SyncReductionQuery(const std::string& group_attr);

/// \brief The *combined reductions query* of Fig. 5: three GMDJ operators —
/// the second coalescable into the first, the third correlated — so that
/// coalescing, both group reductions, and synchronization reduction all
/// have something to do.
GmdjExpr CombinedQuery(const std::string& group_attr);

/// \brief A multi-feature query (Ross, Srivastava & Chatziantoniou, cited
/// by the paper as one of the OLAP classes GMDJ captures): per group, the
/// minimum ship date, then — among the tuples AT that minimum ship date —
/// their count and average extended price. The second operator's condition
/// equates a detail attribute with a previously computed aggregate
/// (`R.ShipDate = B.first_ship`), the defining shape of multi-feature
/// queries.
GmdjExpr MultiFeatureQuery(const std::string& group_attr);

}  // namespace queries
}  // namespace skalla

#endif  // SKALLA_SKALLA_QUERIES_H_

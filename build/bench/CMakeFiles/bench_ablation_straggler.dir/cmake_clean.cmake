file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_straggler.dir/bench_ablation_straggler.cc.o"
  "CMakeFiles/bench_ablation_straggler.dir/bench_ablation_straggler.cc.o.d"
  "bench_ablation_straggler"
  "bench_ablation_straggler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_straggler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

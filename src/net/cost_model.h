#ifndef SKALLA_NET_COST_MODEL_H_
#define SKALLA_NET_COST_MODEL_H_

#include <cstddef>
#include <string>

#include "storage/wire_format.h"

namespace skalla {

/// \brief Retry behavior of the coordinators when a site misses a round.
///
/// A WAN loses messages and sites go down; Alg. GMDJDistribEval is
/// naturally retry-friendly because every round is idempotent from the
/// shipped base-result structure X (docs/fault-model.md). One *attempt* is
/// the full per-site exchange of a round — ship X (or the plan), local
/// evaluation, and the sub-result reply; a failed attempt is re-driven
/// from scratch after an exponential backoff.
struct RetryPolicy {
  /// Attempts per site per round (counting the first); when exhausted the
  /// coordinator fails over to a registered replica or returns a typed
  /// kUnavailable / kDeadlineExceeded status.
  int max_attempts = 3;

  /// Per-attempt deadline in simulated seconds covering the whole exchange
  /// (ship + site compute + reply). 0 disables deadlines: the coordinator
  /// waits forever and only message loss triggers retries.
  double timeout_sec = 0.0;

  /// The deadline grows by this factor on every retry, so a straggler that
  /// merely exceeds the base deadline still completes eventually.
  double timeout_escalation = 2.0;

  /// Simulated idle wait before retry k (k >= 1): backoff_base_sec·2^(k-1).
  double backoff_base_sec = 0.01;

  /// Backoff charged before attempt `attempt` (0 for the first attempt).
  double BackoffSeconds(int attempt) const {
    if (attempt <= 0) return 0.0;
    double backoff = backoff_base_sec;
    for (int i = 1; i < attempt; ++i) backoff *= 2.0;
    return backoff;
  }

  /// Deadline for attempt `attempt`, or 0 when deadlines are disabled.
  double DeadlineSeconds(int attempt) const {
    if (timeout_sec <= 0.0) return 0.0;
    double deadline = timeout_sec;
    for (int i = 0; i < attempt; ++i) deadline *= timeout_escalation;
    return deadline;
  }

  bool deadline_enabled() const { return timeout_sec > 0.0; }
};

/// \brief Parameters of the simulated wide-area network between the
/// coordinator and the Skalla sites.
///
/// The paper's distributed data warehouse runs over a WAN where
/// "communication is assumed to be very cheap" does NOT hold (its explicit
/// contrast with parallel DBs, Sect. 1.2). The defaults model a modest
/// year-2002 WAN link; benchmarks vary them to study comm/compute ratios.
///
/// The coordinator's access link is shared: transfers to/from distinct
/// sites serialize on it, which is what makes per-round traffic of
/// n·|X| groups cost Θ(n) time and total evaluation of n rounds of such
/// traffic Θ(n²) — the effect Figures 2–4 of the paper demonstrate.
struct NetworkConfig {
  /// Payload bandwidth of the coordinator link in bytes/second.
  double bandwidth_bytes_per_sec = 4.0 * 1024 * 1024;
  /// One-way message latency in seconds, charged once per message.
  double latency_sec = 0.005;

  /// Streaming synchronization (paper Sect. 3.2): the base-result
  /// structure is horizontally partitionable, so the coordinator can merge
  /// already-received blocks of H while slower sites are still
  /// transmitting. When enabled, a round's coordinator CPU overlaps its
  /// communication time instead of adding to it (see
  /// RoundMetrics::ResponseSeconds); traffic is unchanged.
  bool streaming_sync = false;

  /// How the coordinators retry per-site round work under faults.
  RetryPolicy retry;

  /// Wire format for every relation payload (storage/wire_format.h).
  /// Defaults to env SKALLA_WIRE_FORMAT, else SKL2 (columnar).
  WireFormat wire_format = DefaultWireFormat();

  /// Cross-round delta shipping of the base-result structure X: the
  /// coordinator caches what each site last received and ships only
  /// appended rows/columns (SKLD payloads, docs/wire-format.md). Only
  /// engages with the SKL2 format; retried waves always fall back to a
  /// full payload because a failed exchange leaves the receiver's cache
  /// state unknowable.
  bool delta_shipping = true;

  /// Simulated seconds for one message of `bytes` payload.
  double TransferSeconds(size_t bytes) const {
    return latency_sec + static_cast<double>(bytes) / bandwidth_bytes_per_sec;
  }
};

}  // namespace skalla

#endif  // SKALLA_NET_COST_MODEL_H_

# Empty dependencies file for bench_fig3_coalescing.
# This may be replaced when dependencies are built.

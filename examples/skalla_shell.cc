// An interactive shell over the full Skalla stack: load generated data
// into a distributed warehouse, type OLAP queries in the textual dialect
// (sql/olap_parser.h), inspect plans and cost metrics.
//
//   ./example_skalla_shell            # interactive
//   ./example_skalla_shell < script   # batch
//
// Commands:
//   \load tpcr <rows> <sites>    generate + load TPCR (NationKey-partitioned)
//   \load flow <rows> <sites>    generate + load Flow (SourceAS-partitioned)
//   \opt all|none                toggle the optimizer
//   \explain <query>             show the distributed plan only
//   \analyze <query>             run and show the full execution report
//   \profile <query>             run and show the per-round profile tree
//   \tables                      list loaded relations
//   \save <dir>                  persist the warehouse to a directory
//   \open <dir>                  restore a persisted warehouse
//   \quit
//   anything else: an OLAP query, e.g.
//     SELECT CustKey, COUNT(*) AS n, AVG(Quantity) AS aq
//     FROM TPCR GROUP BY CustKey
//     EXTEND COUNT(*) AS big WHERE Quantity > aq

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "engine/operators.h"
#include "flow/flowgen.h"
#include "obs/metrics.h"
#include "skalla/persistence.h"
#include "skalla/report.h"
#include "skalla/warehouse.h"
#include "sql/olap_parser.h"
#include "tpc/dbgen.h"

namespace {

using namespace skalla;

class Shell {
 public:
  int Run() {
    std::cout << "skalla shell — \\load tpcr 50000 8 to begin, \\quit to "
                 "exit\n";
    std::string line;
    std::string pending;
    while (true) {
      std::cout << (pending.empty() ? "skalla> " : "   ...> ")
                << std::flush;
      if (!std::getline(std::cin, line)) break;
      const std::string trimmed{StripWhitespace(line)};
      if (trimmed.empty()) continue;
      if (trimmed[0] == '\\') {
        if (!pending.empty()) {
          std::cout << "(discarded incomplete query)\n";
          pending.clear();
        }
        if (!Command(trimmed)) break;
        continue;
      }
      pending += (pending.empty() ? "" : " ") + trimmed;
      // A query is submitted once the line ends with ';' (or the dialect's
      // single-line form is complete — we just use ';').
      if (pending.back() == ';') {
        pending.pop_back();
        Query(pending, /*explain_only=*/false);
        pending.clear();
      }
    }
    return 0;
  }

 private:
  bool Command(const std::string& cmd) {
    std::istringstream in(cmd);
    std::string word;
    in >> word;
    if (word == "\\quit" || word == "\\q") return false;
    if (word == "\\tables") {
      if (warehouse_ == nullptr) {
        std::cout << "no warehouse loaded\n";
        return true;
      }
      for (const std::string& name :
           warehouse_->central_catalog().TableNames()) {
        auto table = warehouse_->central_catalog().GetTable(name);
        std::cout << "  " << name << " (" << (*table)->num_rows()
                  << " rows, " << warehouse_->num_sites() << " fragments)\n";
      }
      return true;
    }
    if (word == "\\opt") {
      std::string mode;
      in >> mode;
      optimize_ = (mode != "none");
      std::cout << "optimizer: " << (optimize_ ? "all" : "none") << "\n";
      return true;
    }
    if (word == "\\explain") {
      std::string rest;
      std::getline(in, rest);
      Query(rest, /*explain_only=*/true);
      return true;
    }
    if (word == "\\analyze") {
      std::string rest;
      std::getline(in, rest);
      Analyze(rest, /*profile=*/false);
      return true;
    }
    if (word == "\\profile") {
      std::string rest;
      std::getline(in, rest);
      Analyze(rest, /*profile=*/true);
      return true;
    }
    if (word == "\\save") {
      std::string dir;
      in >> dir;
      if (warehouse_ == nullptr || dir.empty()) {
        std::cout << "usage (with a loaded warehouse): \\save <dir>\n";
        return true;
      }
      const Status status = SaveWarehouse(*warehouse_, dir);
      std::cout << (status.ok() ? "saved to " + dir : status.ToString())
                << "\n";
      return true;
    }
    if (word == "\\open") {
      std::string dir;
      in >> dir;
      auto restored = LoadWarehouse(dir);
      if (!restored.ok()) {
        std::cout << restored.status() << "\n";
        return true;
      }
      warehouse_ = std::move(restored).ValueUnsafe();
      std::cout << "restored warehouse with " << warehouse_->num_sites()
                << " sites\n";
      return true;
    }
    if (word == "\\load") {
      std::string kind;
      int64_t rows = 50000;
      int sites = 8;
      in >> kind >> rows >> sites;
      if (sites <= 0 || rows < 0) {
        std::cout << "usage: \\load tpcr|flow <rows> <sites>\n";
        return true;
      }
      warehouse_ = std::make_unique<Warehouse>(sites);
      Status status;
      if (kind == "tpcr") {
        TpcConfig config;
        config.num_rows = rows;
        config.num_customers = std::max<int64_t>(1, rows / 12);
        status = warehouse_->LoadByRange("TPCR", GenerateTpcr(config),
                                         "NationKey", 0,
                                         config.num_nations - 1,
                                         {"CustKey", "ClerkKey"});
      } else if (kind == "flow") {
        FlowConfig config;
        config.num_rows = rows;
        config.num_routers = sites;
        status = warehouse_->LoadByRange("Flow", GenerateFlows(config),
                                         "SourceAS", 0, config.num_as - 1,
                                         {"SourceAS", "RouterId"});
      } else {
        std::cout << "unknown dataset '" << kind << "'\n";
        return true;
      }
      if (!status.ok()) {
        std::cout << status << "\n";
        warehouse_.reset();
        return true;
      }
      std::cout << "loaded " << rows << " rows across " << sites
                << " sites\n";
      return true;
    }
    std::cout << "unknown command " << word << "\n";
    return true;
  }

  void Analyze(const std::string& text, bool profile) {
    if (warehouse_ == nullptr) {
      std::cout << "load a dataset first (\\load tpcr 50000 8)\n";
      return;
    }
    auto parsed = ParseOlapQuery(text);
    if (!parsed.ok()) {
      std::cout << "parse error: " << parsed.status() << "\n";
      return;
    }
    // \profile scopes the metrics registry around the execution so the
    // per-site load section reflects just this query.
    std::vector<obs::MetricValue> before;
    if (profile) before = obs::SnapshotMetrics();
    auto result = warehouse_->Execute(
        *parsed, optimize_ ? OptimizerOptions::All() : OptimizerOptions::None());
    if (!result.ok()) {
      std::cout << "error: " << result.status() << "\n";
      return;
    }
    if (profile) {
      QueryProfileInfo info;
      info.registry_delta = obs::DiffMetrics(before, obs::SnapshotMetrics());
      std::cout << FormatQueryProfile(&*result, info);
    } else {
      std::cout << FormatExecutionReport(*result);
    }
  }

  void Query(const std::string& text, bool explain_only) {
    if (warehouse_ == nullptr) {
      std::cout << "load a dataset first (\\load tpcr 50000 8)\n";
      return;
    }
    auto parsed = ParseOlapQuery(text);
    if (!parsed.ok()) {
      std::cout << "parse error: " << parsed.status() << "\n";
      return;
    }
    const OptimizerOptions options =
        optimize_ ? OptimizerOptions::All() : OptimizerOptions::None();
    if (explain_only) {
      auto plan = warehouse_->Plan(*parsed, options);
      if (!plan.ok()) {
        std::cout << plan.status() << "\n";
        return;
      }
      std::cout << plan->Explain();
      return;
    }
    auto result = warehouse_->Execute(*parsed, options);
    if (!result.ok()) {
      std::cout << "error: " << result.status() << "\n";
      return;
    }
    std::cout << result->table.ToString(20);
    std::cout << result->metrics.ToString();
  }

  std::unique_ptr<Warehouse> warehouse_;
  bool optimize_ = true;
};

}  // namespace

int main() { return Shell().Run(); }

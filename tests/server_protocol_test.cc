// Malformed-input corpus for the wire protocol (ISSUE 6): every corrupt,
// truncated, oversized, or hostile input must produce a typed error
// status — never a crash, never an untyped failure — and framing errors
// must poison only the one connection.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "server/protocol.h"
#include "server/server.h"
#include "test_util.h"

namespace skalla {
namespace server {
namespace {

// ---- Framing ---------------------------------------------------------------

TEST(FramingTest, RoundTrip) {
  const std::string payload = "STATS";
  std::string buffer = EncodeFrame(payload);
  ASSERT_EQ(buffer.size(), kFramePrefixBytes + payload.size());
  ASSERT_OK_AND_ASSIGN(auto frame, DecodeFrame(&buffer));
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(*frame, payload);
  EXPECT_TRUE(buffer.empty());
}

TEST(FramingTest, EmptyPayloadRoundTrips) {
  std::string buffer = EncodeFrame("");
  ASSERT_OK_AND_ASSIGN(auto frame, DecodeFrame(&buffer));
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(*frame, "");
}

TEST(FramingTest, TruncatedPrefixNeedsMoreBytes) {
  std::string buffer("\x00\x00\x01", 3);  // 3 of 4 prefix bytes
  ASSERT_OK_AND_ASSIGN(auto frame, DecodeFrame(&buffer));
  EXPECT_FALSE(frame.has_value());
  EXPECT_EQ(buffer.size(), 3u);  // untouched
}

TEST(FramingTest, TruncatedPayloadNeedsMoreBytes) {
  std::string buffer = EncodeFrame("STATS");
  buffer.resize(buffer.size() - 2);
  ASSERT_OK_AND_ASSIGN(auto frame, DecodeFrame(&buffer));
  EXPECT_FALSE(frame.has_value());
}

TEST(FramingTest, ByteAtATimeDelivery) {
  const std::string wire = EncodeFrame("STATS") + EncodeFrame("CANCEL ALL");
  std::string buffer;
  std::vector<std::string> frames;
  for (char byte : wire) {
    buffer.push_back(byte);
    while (true) {
      ASSERT_OK_AND_ASSIGN(auto frame, DecodeFrame(&buffer));
      if (!frame.has_value()) break;
      frames.push_back(*frame);
    }
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0], "STATS");
  EXPECT_EQ(frames[1], "CANCEL ALL");
}

TEST(FramingTest, OversizedLengthPrefixIsTyped) {
  std::string buffer("\xFF\xFF\xFF\xFF", 4);  // 4 GiB claimed
  auto frame = DecodeFrame(&buffer);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
}

TEST(FramingTest, PrefixJustOverTheCapIsTyped) {
  const uint32_t length = static_cast<uint32_t>(kMaxFrameBytes) + 1;
  std::string buffer;
  for (int shift = 24; shift >= 0; shift -= 8) {
    buffer.push_back(static_cast<char>((length >> shift) & 0xFF));
  }
  auto frame = DecodeFrame(&buffer);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
}

TEST(FramingTest, ErrorPoisonsTheConnectionNotTheServer) {
  Server srv(2);
  Connection bad(&srv);
  std::string out;
  Status fed = bad.Feed(std::string("\xFF\xFF\xFF\xFF", 4), &out);
  EXPECT_EQ(fed.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(bad.broken());
  // The poisoned connection sent an ERR frame before dying.
  ASSERT_OK_AND_ASSIGN(auto err_frame, DecodeFrame(&out));
  ASSERT_TRUE(err_frame.has_value());
  auto parsed = ParseResponse(*err_frame);
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  // Further bytes are refused.
  EXPECT_FALSE(bad.Feed("x", &out).ok());
  // A fresh connection to the same server still works.
  Client good(&srv);
  ASSERT_OK_AND_ASSIGN(std::string stats, good.Call("STATS"));
  EXPECT_NE(stats.find("queries_submitted"), std::string::npos);
}

// ---- Command parsing -------------------------------------------------------

Status ParseError(const std::string& text) {
  auto cmd = ParseCommand(text);
  EXPECT_FALSE(cmd.ok()) << "parsed unexpectedly: " << text;
  return cmd.status();
}

TEST(ParseCommandTest, MalformedCorpusYieldsTypedErrors) {
  const std::string corpus[] = {
      "",                               // empty frame
      "   ",                            // only whitespace
      "FROB 1",                         // unknown command
      "QUERY",                          // missing query text
      "QUERY PRIORITY",                 // dangling option
      "QUERY PRIORITY urgent SELECT",   // bad priority token
      "QUERY DEADLINE SELECT",          // non-numeric deadline
      "QUERY DEADLINE -3 SELECT",       // negative deadline
      "QUERY DEADLINE 1e999 SELECT",    // out-of-range double
      "QUERY THREADS many SELECT",      // non-numeric threads
      "QUERY THREADS -1 SELECT",        // negative threads
      "QUERY THREADS 99999 SELECT",     // absurd threads
      "LOAD",                           // missing kind
      "LOAD tpcr",                      // missing rows
      "LOAD tpcr ten",                  // non-numeric rows
      "LOAD tpcr -5",                   // negative rows
      "LOAD parquet 100",               // unknown dataset
      "MUTATE",                         // missing table
      "MUTATE TPCR",                    // missing verb
      "MUTATE TPCR DELETE 1",           // unsupported verb
      "MUTATE TPCR APPEND",             // missing row
      "CANCEL",                         // missing id
      "CANCEL abc",                     // non-numeric id
      "CANCEL -4",                      // negative id
      std::string("QUERY SELECT\0 x", 14),  // embedded NUL
  };
  for (const std::string& text : corpus) {
    EXPECT_EQ(ParseError(text).code(), StatusCode::kInvalidArgument)
        << "input: " << text;
  }
}

TEST(ParseCommandTest, QueryOptionsParse) {
  ASSERT_OK_AND_ASSIGN(
      Command cmd,
      ParseCommand("QUERY PRIORITY high DEADLINE 2.5 THREADS 3 NOCACHE "
                   "SELECT CustKey, COUNT(*) AS c FROM TPCR GROUP BY CustKey"));
  EXPECT_EQ(cmd.type, CommandType::kQuery);
  EXPECT_EQ(cmd.priority, QueryPriority::kHigh);
  EXPECT_DOUBLE_EQ(cmd.deadline_sec, 2.5);
  EXPECT_EQ(cmd.threads, 3);
  EXPECT_TRUE(cmd.no_cache);
  EXPECT_EQ(cmd.query_text,
            "SELECT CustKey, COUNT(*) AS c FROM TPCR GROUP BY CustKey");
}

TEST(ParseCommandTest, OtherCommandsParse) {
  ASSERT_OK_AND_ASSIGN(Command load, ParseCommand("LOAD flow 1000"));
  EXPECT_EQ(load.type, CommandType::kLoad);
  EXPECT_EQ(load.load_kind, "flow");
  EXPECT_EQ(load.load_rows, 1000);

  ASSERT_OK_AND_ASSIGN(Command mut,
                       ParseCommand("MUTATE TPCR APPEND 1,2,3"));
  EXPECT_EQ(mut.type, CommandType::kMutate);
  EXPECT_EQ(mut.mutate_table, "TPCR");
  EXPECT_EQ(mut.mutate_row_csv, "1,2,3");

  ASSERT_OK_AND_ASSIGN(Command stats, ParseCommand("STATS"));
  EXPECT_EQ(stats.type, CommandType::kStats);

  ASSERT_OK_AND_ASSIGN(Command one, ParseCommand("CANCEL 17"));
  EXPECT_EQ(one.type, CommandType::kCancel);
  EXPECT_EQ(one.cancel_id, 17u);
  EXPECT_FALSE(one.cancel_all);

  ASSERT_OK_AND_ASSIGN(Command all, ParseCommand("CANCEL ALL"));
  EXPECT_TRUE(all.cancel_all);
}

// ---- Responses -------------------------------------------------------------

TEST(ResponseTest, OkRoundTrip) {
  ASSERT_OK_AND_ASSIGN(std::string payload,
                       ParseResponse(OkResponse("a,b\n1,2\n")));
  EXPECT_EQ(payload, "a,b\n1,2\n");
}

TEST(ResponseTest, ErrRoundTripsEveryCode) {
  const StatusCode codes[] = {
      StatusCode::kInvalidArgument, StatusCode::kNotFound,
      StatusCode::kAlreadyExists,   StatusCode::kOutOfRange,
      StatusCode::kTypeError,       StatusCode::kIoError,
      StatusCode::kInternal,        StatusCode::kNotImplemented,
      StatusCode::kUnavailable,     StatusCode::kDeadlineExceeded,
      StatusCode::kCancelled,
  };
  for (StatusCode code : codes) {
    const Status status(code, "the reason");
    auto parsed = ParseResponse(ErrResponse(status));
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.status().code(), code)
        << "code name: " << WireStatusCodeName(code);
    EXPECT_EQ(parsed.status().message(), "the reason");
    // The wire name itself round-trips too.
    auto back = WireStatusCodeFromName(WireStatusCodeName(code));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, code);
  }
  EXPECT_FALSE(WireStatusCodeFromName("no_such_code").has_value());
}

TEST(ResponseTest, MalformedResponsesAreTyped) {
  for (const char* text : {"", "YES\npayload", "ERR", "ERR bogus\nmsg"}) {
    auto parsed = ParseResponse(text);
    EXPECT_FALSE(parsed.ok()) << "input: " << text;
  }
}

// ---- End-to-end hostile input ----------------------------------------------

TEST(ServerHostileInputTest, UnknownCommandsGetErrResponses) {
  Server srv(2);
  Client client(&srv);
  auto reply = client.Call("FROB 42");
  EXPECT_EQ(reply.status().code(), StatusCode::kInvalidArgument);
  // The connection survives a bad command (unlike a framing error).
  ASSERT_OK_AND_ASSIGN(std::string stats, client.Call("STATS"));
  EXPECT_NE(stats.find("queries_submitted"), std::string::npos);
}

TEST(ServerHostileInputTest, QueryOnEmptyWarehouseIsTyped) {
  Server srv(2);
  Client client(&srv);
  auto reply =
      client.Call("QUERY SELECT CustKey, COUNT(*) AS c FROM TPCR "
                  "GROUP BY CustKey");
  EXPECT_FALSE(reply.ok());
  EXPECT_NE(reply.status().code(), StatusCode::kInternal);
}

TEST(ServerHostileInputTest, RandomBytesNeverCrashTheServer) {
  Server srv(2);
  Rng rng(0xBADF00D);
  for (int round = 0; round < 64; ++round) {
    Connection conn(&srv);
    std::string out;
    // Random garbage, sometimes framed, sometimes raw.
    std::string bytes;
    const int64_t len = rng.Uniform(0, 64);
    for (int64_t i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng.Uniform(0, 255)));
    }
    if (rng.Chance(0.5)) bytes = EncodeFrame(bytes);
    // Feed in random fragments; every outcome must be a Status, responses
    // must be well-formed frames, and only this connection may break.
    size_t offset = 0;
    while (offset < bytes.size()) {
      const size_t chunk = static_cast<size_t>(
          rng.Uniform(1, static_cast<int64_t>(bytes.size() - offset)));
      Status fed =
          conn.Feed(std::string_view(bytes).substr(offset, chunk), &out);
      if (!fed.ok()) break;
      offset += chunk;
    }
    while (!out.empty()) {
      auto frame = DecodeFrame(&out);
      ASSERT_TRUE(frame.ok());
      if (!frame->has_value()) break;
      // Every response parses as OK or a typed error.
      ParseResponse(**frame).status();
    }
  }
  // The server survived 64 hostile connections.
  Client client(&srv);
  ASSERT_OK_AND_ASSIGN(std::string stats, client.Call("STATS"));
  EXPECT_NE(stats.find("queries_submitted"), std::string::npos);
}

}  // namespace
}  // namespace server
}  // namespace skalla

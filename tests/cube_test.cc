#include "cube/cube.h"

#include <gtest/gtest.h>

#include "engine/operators.h"
#include "test_util.h"
#include "tpc/dbgen.h"

namespace skalla {
namespace {

CubeSpec TinySpec() {
  CubeSpec spec;
  spec.table = "T";
  spec.dims = {"g", "h"};
  spec.aggs = {AggSpec::Count("cnt"), AggSpec::Sum("v", "sv"),
               AggSpec::Avg("v", "av"), AggSpec::Min("v", "lo"),
               AggSpec::Max("v", "hi")};
  return spec;
}

TEST(CubeCentralizedTest, RowCountIsSumOfGroupingSets) {
  const Table source = MakeTinyTable();
  ASSERT_OK_AND_ASSIGN(Table cube, CubeCentralized(TinySpec(), source));
  // Grouping sets of (g, h): {} → 1, {g} → 3, {h} → 3, {g,h} → 7.
  EXPECT_EQ(cube.num_rows(), 1 + 3 + 3 + 7);
}

TEST(CubeCentralizedTest, GrandTotalRow) {
  const Table source = MakeTinyTable();
  ASSERT_OK_AND_ASSIGN(Table cube, CubeCentralized(TinySpec(), source));
  int found = 0;
  for (const Row& row : cube.rows()) {
    if (row[0].is_null() && row[1].is_null()) {
      ++found;
      EXPECT_EQ(row[2], Value(12));          // count
      EXPECT_EQ(row[3], Value(66));          // sum of v
      EXPECT_DOUBLE_EQ(row[4].AsDouble(), 66.0 / 12.0);
      EXPECT_EQ(row[5], Value(1));           // min
      EXPECT_EQ(row[6], Value(9));           // max
    }
  }
  EXPECT_EQ(found, 1);
}

TEST(CubeCentralizedTest, SingleDimSliceMatchesGroupBy) {
  const Table source = MakeTinyTable();
  ASSERT_OK_AND_ASSIGN(Table cube, CubeCentralized(TinySpec(), source));
  ASSERT_OK_AND_ASSIGN(
      Table by_g, HashGroupBy(source, {"g"},
                              {AggSpec::Count("cnt"), AggSpec::Sum("v", "sv"),
                               AggSpec::Avg("v", "av"),
                               AggSpec::Min("v", "lo"),
                               AggSpec::Max("v", "hi")}));
  // Extract the {g} slice: g non-null, h null.
  Table slice(cube.schema_ptr());
  for (const Row& row : cube.rows()) {
    if (!row[0].is_null() && row[1].is_null()) slice.AddRow(row);
  }
  ASSERT_EQ(slice.num_rows(), by_g.num_rows());
  // Compare modulo the h column.
  ASSERT_OK_AND_ASSIGN(
      Table slice_no_h,
      Project(slice, {"g", "cnt", "sv", "av", "lo", "hi"}));
  ExpectSameRows(slice_no_h, by_g);
}

TEST(CubeCentralizedTest, EmptySourceGivesEmptyCube) {
  Table source(MakeTinyTable().schema_ptr());
  ASSERT_OK_AND_ASSIGN(Table cube, CubeCentralized(TinySpec(), source));
  EXPECT_EQ(cube.num_rows(), 0);
}

TEST(CubeCentralizedTest, InvalidSpecs) {
  const Table source = MakeTinyTable();
  CubeSpec no_dims = TinySpec();
  no_dims.dims.clear();
  EXPECT_FALSE(CubeCentralized(no_dims, source).ok());
  CubeSpec no_aggs = TinySpec();
  no_aggs.aggs.clear();
  EXPECT_FALSE(CubeCentralized(no_aggs, source).ok());
  CubeSpec bad_col = TinySpec();
  bad_col.dims = {"nope"};
  EXPECT_FALSE(CubeCentralized(bad_col, source).ok());
}

class CubeDistributedTest
    : public ::testing::TestWithParam<CubeStrategy> {};

TEST_P(CubeDistributedTest, MatchesCentralizedOnTpcr) {
  Warehouse wh(4);
  TpcConfig config;
  config.num_rows = 3000;
  config.num_customers = 120;
  config.num_clerks = 8;
  Table tpcr = GenerateTpcr(config);
  ASSERT_OK(wh.LoadByRange("TPCR", tpcr, "NationKey", 0, 24,
                           {"CustKey", "ClerkKey"}));

  CubeSpec spec;
  spec.table = "TPCR";
  spec.dims = {"NationKey", "ClerkKey", "OrderPriority"};
  spec.aggs = {AggSpec::Count("cnt"), AggSpec::Sum("Quantity", "qty"),
               AggSpec::Avg("ExtendedPrice", "avg_price")};

  ASSERT_OK_AND_ASSIGN(std::shared_ptr<const Table> full,
                       wh.central_catalog().GetTable("TPCR"));
  ASSERT_OK_AND_ASSIGN(Table expected, CubeCentralized(spec, *full));
  ASSERT_OK_AND_ASSIGN(
      CubeExecution execution,
      CubeDistributed(wh, spec, GetParam(), OptimizerOptions::All()));
  ExpectSameRows(execution.table, expected);
}

TEST_P(CubeDistributedTest, MatchesCentralizedUnderNoOptimizations) {
  Warehouse wh(3);
  TpcConfig config;
  config.num_rows = 1200;
  config.num_customers = 50;
  Table tpcr = GenerateTpcr(config);
  ASSERT_OK(wh.LoadByHash("TPCR", tpcr, "OrderKey"));

  CubeSpec spec;
  spec.table = "TPCR";
  spec.dims = {"NationKey", "MktSegment"};
  spec.aggs = {AggSpec::Count("cnt"), AggSpec::Avg("Quantity", "aq")};

  ASSERT_OK_AND_ASSIGN(std::shared_ptr<const Table> full,
                       wh.central_catalog().GetTable("TPCR"));
  ASSERT_OK_AND_ASSIGN(Table expected, CubeCentralized(spec, *full));
  ASSERT_OK_AND_ASSIGN(
      CubeExecution execution,
      CubeDistributed(wh, spec, GetParam(), OptimizerOptions::None()));
  ExpectSameRows(execution.table, expected);
}

INSTANTIATE_TEST_SUITE_P(
    BothStrategies, CubeDistributedTest,
    ::testing::Values(CubeStrategy::kPerGroupingSet,
                      CubeStrategy::kRollupFromFinest),
    [](const ::testing::TestParamInfo<CubeStrategy>& info) {
      return info.param == CubeStrategy::kPerGroupingSet ? "PerGroupingSet"
                                                         : "RollupFromFinest";
    });

TEST(CubeStrategyTest, RollupShipsLessForMultiDimCubes) {
  Warehouse wh(4);
  TpcConfig config;
  config.num_rows = 4000;
  config.num_customers = 150;
  config.num_clerks = 10;
  Table tpcr = GenerateTpcr(config);
  ASSERT_OK(wh.LoadByRange("TPCR", tpcr, "NationKey", 0, 24,
                           {"CustKey", "ClerkKey"}));

  CubeSpec spec;
  spec.table = "TPCR";
  spec.dims = {"NationKey", "ClerkKey", "MktSegment"};
  spec.aggs = {AggSpec::Count("cnt"), AggSpec::Avg("Quantity", "aq")};

  ASSERT_OK_AND_ASSIGN(
      CubeExecution per_set,
      CubeDistributed(wh, spec, CubeStrategy::kPerGroupingSet,
                      OptimizerOptions::All()));
  ASSERT_OK_AND_ASSIGN(
      CubeExecution rollup,
      CubeDistributed(wh, spec, CubeStrategy::kRollupFromFinest,
                      OptimizerOptions::All()));
  EXPECT_EQ(rollup.distributed_queries, 1);
  EXPECT_EQ(per_set.distributed_queries, 7);
  EXPECT_LT(rollup.total_bytes, per_set.total_bytes);
  ExpectSameRows(rollup.table, per_set.table);
}

}  // namespace
}  // namespace skalla

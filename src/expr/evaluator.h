#ifndef SKALLA_EXPR_EVALUATOR_H_
#define SKALLA_EXPR_EVALUATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "expr/expr.h"
#include "storage/row.h"
#include "storage/schema.h"

namespace skalla {

class ColumnarTable;
class Table;

/// \brief Reusable buffers for CompiledExpr::EvalBoolBatch.
///
/// One scratch per scan lane (they are not thread-safe); the batch
/// evaluator acquires per-node chunk buffers from these pools and reuses
/// them across chunks, base rows, and calls, so the steady state performs
/// no allocation. Treat the members as opaque.
struct BatchScratch {
  std::vector<std::vector<int64_t>> i64;
  std::vector<std::vector<double>> f64;
  std::vector<std::vector<int32_t>> i32;
  std::vector<std::vector<uint8_t>> u8;
  size_t i64_used = 0;
  size_t f64_used = 0;
  size_t i32_used = 0;
  size_t u8_used = 0;
  /// Chunks redone through scalar EvalBool because a runtime value shape
  /// was not mirrored by the batch kernels. Monotonic across calls; callers
  /// that want per-scan numbers snapshot-diff it.
  int64_t fallback_chunks = 0;
};

/// \brief An expression compiled against concrete schemas.
///
/// Compilation resolves every column reference to a (side, index) pair and
/// type-checks the tree, so that evaluation in the GMDJ inner loop does no
/// name lookups and cannot fail. SQL NULL semantics:
///  - arithmetic with a NULL operand yields NULL;
///  - comparisons with a NULL operand yield NULL;
///  - AND/OR use Kleene three-valued logic;
///  - EvalBool maps NULL to false (a θ condition with unknown truth does not
///    select the detail tuple).
class CompiledExpr {
 public:
  /// Compiles `expr` against the two schemas. `base_schema` may be null for
  /// single-relation expressions (any kBase reference then fails to compile).
  static Result<CompiledExpr> Compile(const ExprPtr& expr,
                                      const Schema* base_schema,
                                      const Schema* detail_schema);

  CompiledExpr(CompiledExpr&&) noexcept = default;
  CompiledExpr& operator=(CompiledExpr&&) noexcept = default;
  CompiledExpr(const CompiledExpr&) = default;
  CompiledExpr& operator=(const CompiledExpr&) = default;

  /// Evaluates against a pair of rows; a null row pointer is only legal if
  /// the expression has no reference to that side.
  Value Eval(const Row* base_row, const Row* detail_row) const;

  /// Evaluates as a predicate: NULL and non-true become false.
  bool EvalBool(const Row* base_row, const Row* detail_row) const;

  /// True iff EvalBoolBatch can evaluate this expression against the given
  /// columnar detail view: every referenced detail column must be usable
  /// (type-conformant, see ColumnarTable::Column::usable), and detail
  /// string columns may only feed =/!= against a non-string-column operand,
  /// IS NULL, and truth conversion. Shape-independent of the base row.
  bool SupportsBatchEval(const ColumnarTable& detail) const;

  /// \brief Batch EvalBool over detail positions [lo, hi) against one
  /// fixed base row.
  ///
  /// Appends, in ascending position order, every position p in [lo, hi)
  /// with EvalBool(base_row, &detail.row(p)) true to *sel. Bit-exact with
  /// the scalar path by construction: unsupported runtime value shapes make
  /// the evaluator redo the affected chunk through scalar EvalBool. Call
  /// only after SupportsBatchEval(view); `detail` must be the table `view`
  /// was built from.
  void EvalBoolBatch(const Row* base_row, const Table& detail,
                     const ColumnarTable& view, int64_t lo, int64_t hi,
                     BatchScratch* scratch, std::vector<int64_t>* sel) const;

  /// Batch EvalBool over an explicit candidate list (the sort-merge path's
  /// equal-key runs): selected candidates[k] are appended in ascending k —
  /// candidate order, which is the scalar path's visit order.
  void EvalBoolBatch(const Row* base_row, const Table& detail,
                     const ColumnarTable& view, const int64_t* candidates,
                     size_t n, BatchScratch* scratch,
                     std::vector<int64_t>* sel) const;

  /// Static type of the expression result (NULLs aside).
  ValueType result_type() const { return result_type_; }

 private:
  struct Node {
    ExprKind kind;
    /// kColumn:
    Side side = Side::kDetail;
    int col_index = -1;
    /// kLiteral:
    Value literal;
    /// kUnary / kBinary:
    UnaryOp unary_op = UnaryOp::kNeg;
    BinaryOp binary_op = BinaryOp::kAdd;
    int left = -1;   // node ids
    int right = -1;
  };

  CompiledExpr() = default;

  Value EvalNode(int node, const Row* base_row, const Row* detail_row) const;

  struct BatchVal;
  struct BatchCtx;
  BatchVal EvalNodeBatch(int node_id, BatchCtx* ctx) const;
  void EvalBoolBatchChunked(const Row* base_row, const Table& detail,
                            const ColumnarTable& view, const int64_t* cand,
                            int64_t pos0, size_t total, BatchScratch* scratch,
                            std::vector<int64_t>* sel) const;

  std::vector<Node> nodes_;
  int root_ = -1;
  ValueType result_type_ = ValueType::kNull;
};

/// Convenience: true iff the value is non-NULL and numerically non-zero
/// (or a non-empty string).
bool ValueIsTrue(const Value& v);

}  // namespace skalla

#endif  // SKALLA_EXPR_EVALUATOR_H_

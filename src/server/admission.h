#ifndef SKALLA_SERVER_ADMISSION_H_
#define SKALLA_SERVER_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <tuple>

#include "common/result.h"

namespace skalla {
namespace server {

/// Admission limits of a Server.
struct AdmissionOptions {
  /// Queries executing simultaneously; further admitted queries wait in
  /// the priority queue. Must be >= 1.
  int max_concurrent = 4;
  /// Queries allowed to wait; beyond it new queries are refused with a
  /// typed kUnavailable (load shedding, not an error of the query).
  size_t max_queue = 64;
  /// Cost-aware shedding (0 = off): once the queue is at least half full,
  /// queries whose estimated cost exceeds this threshold are refused
  /// immediately — under pressure the gate sheds the expensive work first
  /// and keeps admitting cheap queries, bounding the latency tail.
  double shed_cost_threshold = 0;
};

/// \brief Blocking priority admission gate for concurrent queries.
///
/// Each query calls Acquire() on its own (client) thread before executing
/// and Release() after; at most `max_concurrent` queries hold a slot at
/// once. Waiters are granted slots by (priority desc, estimated cost asc,
/// arrival order asc): a HIGH query admitted later overtakes queued
/// NORMAL/LOW queries but never preempts a running one, and within a
/// priority cheap queries (by the opt/cost_model estimate the server
/// passes in) run first — shortest-job-first, which minimizes mean wait.
/// The skew literature's p99 lesson (PAPERS.md) is encoded here as load
/// shedding: a bounded queue refuses work instead of growing an unbounded
/// tail, preferring to shed expensive work (shed_cost_threshold).
///
/// Why slots gate *queries* while morsels gate *lanes*: an admitted query
/// parallelizes its site scans over the shared ThreadPool under its own
/// morsel quota (ExecHooks::local_threads), so admission bounds memory and
/// coordination state while the pool stays fully multiplexed.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options);

  /// Blocks until a slot is granted. Returns:
  ///  - OK: the caller owns a slot and must Release() it;
  ///  - kUnavailable: the wait queue is full (the call never waited);
  ///  - kDeadlineExceeded: `deadline_sec` > 0 elapsed while queued;
  ///  - kCancelled: CancelQueued(ticket) was called while queued.
  /// `ticket` identifies this wait for CancelQueued; `priority` is higher
  /// = sooner. `deadline_sec` <= 0 waits forever. `estimated_cost` (any
  /// consistent unit; the server passes modelled seconds) breaks ties
  /// within a priority — cheaper first — and feeds cost-aware shedding;
  /// 0 preserves pure arrival order.
  Status Acquire(uint64_t ticket, int priority, double deadline_sec,
                 double estimated_cost = 0.0);

  /// Releases a slot obtained by a successful Acquire.
  void Release();

  /// Wakes the queued waiter with this ticket so its Acquire returns
  /// kCancelled. False when no such waiter is queued (it may already be
  /// running — cancelling running queries is the coordinator flag's job).
  bool CancelQueued(uint64_t ticket);

  /// Running + queued read under one lock acquisition. Server::stats()
  /// uses this instead of separate running()/queued() calls so the two
  /// numbers describe the same instant and accounting identities
  /// (submitted >= outcomes + running + queued) hold in tests.
  struct Snapshot {
    int running = 0;
    size_t queued = 0;
  };
  Snapshot snapshot() const;

  int running() const;
  size_t queued() const;

 private:
  struct Waiter {
    uint64_t ticket = 0;
    bool cancelled = false;
  };
  /// Queue key: (-priority, estimated cost, seq) so the map's begin() is
  /// the next grant.
  using QueueKey = std::tuple<int, double, uint64_t>;

  AdmissionOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<QueueKey, Waiter*> queue_;
  uint64_t next_seq_ = 0;
  int running_ = 0;
};

}  // namespace server
}  // namespace skalla

#endif  // SKALLA_SERVER_ADMISSION_H_

file(REMOVE_RECURSE
  "libskalla_flow.a"
)

#include "sql/olap_printer.h"

#include <set>
#include <sstream>

#include "common/string_util.h"
#include "expr/analyzer.h"

namespace skalla {

namespace {

/// Prints an expression with bare (unqualified) column names, verifying
/// that the dialect's name-based rebinding will reconstruct the sides:
/// base references must be in `base_names`, detail references must not be.
Status PrintBare(const Expr& expr, const std::set<std::string>& base_names,
                 std::ostringstream* out) {
  switch (expr.kind()) {
    case ExprKind::kColumn: {
      const auto& col = static_cast<const ColumnExpr&>(expr);
      const bool in_base_names = base_names.count(col.name()) > 0;
      if (col.side() == Side::kBase && !in_base_names) {
        return Status::InvalidArgument(
            "base reference '" + col.name() +
            "' is not a key attribute or earlier output");
      }
      if (col.side() == Side::kDetail && in_base_names) {
        return Status::InvalidArgument(
            "detail column '" + col.name() +
            "' is shadowed by a base name; not expressible in the dialect");
      }
      *out << col.name();
      return Status::OK();
    }
    case ExprKind::kLiteral:
      *out << expr.ToString();
      return Status::OK();
    case ExprKind::kUnary: {
      const auto& un = static_cast<const UnaryExpr&>(expr);
      if (un.op() == UnaryOp::kIsNull) {
        *out << "(";
        SKALLA_RETURN_NOT_OK(PrintBare(*un.operand(), base_names, out));
        *out << " IS NULL)";
        return Status::OK();
      }
      *out << (un.op() == UnaryOp::kNeg ? "-(" : "!(");
      SKALLA_RETURN_NOT_OK(PrintBare(*un.operand(), base_names, out));
      *out << ")";
      return Status::OK();
    }
    case ExprKind::kBinary: {
      const auto& bin = static_cast<const BinaryExpr&>(expr);
      *out << "(";
      SKALLA_RETURN_NOT_OK(PrintBare(*bin.left(), base_names, out));
      *out << " " << BinaryOpToString(bin.op()) << " ";
      SKALLA_RETURN_NOT_OK(PrintBare(*bin.right(), base_names, out));
      *out << ")";
      return Status::OK();
    }
  }
  return Status::Internal("unreachable expr kind");
}

/// Splits θ into the mandatory key equalities plus the residual conjuncts.
/// Fails if any key equality is missing (the dialect always emits them).
Result<std::vector<ExprPtr>> ResidualConjuncts(
    const ExprPtr& theta, const std::vector<std::string>& keys) {
  std::set<std::string> pending(keys.begin(), keys.end());
  std::vector<ExprPtr> residual;
  for (const ExprPtr& conjunct : SplitConjuncts(theta)) {
    bool is_key_eq = false;
    if (conjunct->kind() == ExprKind::kBinary) {
      const auto& bin = static_cast<const BinaryExpr&>(*conjunct);
      if (bin.op() == BinaryOp::kEq &&
          bin.left()->kind() == ExprKind::kColumn &&
          bin.right()->kind() == ExprKind::kColumn) {
        const auto& l = static_cast<const ColumnExpr&>(*bin.left());
        const auto& r = static_cast<const ColumnExpr&>(*bin.right());
        const ColumnExpr* base_col =
            l.side() == Side::kBase ? &l : (r.side() == Side::kBase ? &r : nullptr);
        const ColumnExpr* detail_col =
            l.side() == Side::kDetail ? &l
                                      : (r.side() == Side::kDetail ? &r : nullptr);
        if (base_col != nullptr && detail_col != nullptr &&
            base_col->name() == detail_col->name() &&
            pending.erase(base_col->name()) > 0) {
          is_key_eq = true;
        }
      }
    }
    if (!is_key_eq) residual.push_back(conjunct);
  }
  if (!pending.empty()) {
    return Status::InvalidArgument(
        "theta lacks the key equality on '" + *pending.begin() +
        "' required by the dialect");
  }
  return residual;
}

std::string AggToString(const AggSpec& spec) {
  std::string func = AggFuncToString(spec.func);
  for (char& c : func) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return func + "(" + (spec.is_count_star() ? "*" : spec.input) + ") AS " +
         spec.output;
}

}  // namespace

Result<std::string> OlapQueryToString(const GmdjExpr& expr) {
  if (expr.ops.empty()) {
    return Status::InvalidArgument("expression has no operators");
  }
  for (const GmdjOp& op : expr.ops) {
    if (op.blocks.size() != 1) {
      return Status::InvalidArgument(
          "multi-block operators are not expressible in the dialect");
    }
    if (op.detail_table != expr.base.source_table) {
      return Status::InvalidArgument(
          "operators over a different relation are not expressible");
    }
  }

  std::ostringstream out;
  out << "SELECT " << Join(expr.base.project_cols, ", ");
  for (const AggSpec& spec : expr.ops[0].blocks[0].aggs) {
    out << ", " << AggToString(spec);
  }
  out << " FROM " << expr.base.source_table;

  if (expr.base.filter != nullptr) {
    out << " WHERE ";
    SKALLA_RETURN_NOT_OK(PrintBare(*expr.base.filter, {}, &out));
  }
  out << " GROUP BY " << Join(expr.base.project_cols, ", ");

  std::set<std::string> base_names(expr.base.project_cols.begin(),
                                   expr.base.project_cols.end());

  for (size_t k = 0; k < expr.ops.size(); ++k) {
    const GmdjBlock& block = expr.ops[k].blocks[0];
    SKALLA_ASSIGN_OR_RETURN(
        std::vector<ExprPtr> residual,
        ResidualConjuncts(block.theta, expr.base.project_cols));
    if (k == 0) {
      if (!residual.empty()) {
        return Status::InvalidArgument(
            "the first operator's theta must be exactly the key equality");
      }
    } else {
      out << " EXTEND ";
      for (size_t a = 0; a < block.aggs.size(); ++a) {
        if (a) out << ", ";
        out << AggToString(block.aggs[a]);
      }
      if (!residual.empty()) {
        out << " WHERE ";
        const ExprPtr combined = AndAll(residual);
        SKALLA_RETURN_NOT_OK(PrintBare(*combined, base_names, &out));
      }
    }
    for (const AggSpec& spec : block.aggs) base_names.insert(spec.output);
  }
  if (expr.having != nullptr) {
    out << " HAVING ";
    SKALLA_RETURN_NOT_OK(PrintBare(*expr.having, base_names, &out));
  }
  if (!expr.order_by.empty()) {
    out << " ORDER BY ";
    for (size_t i = 0; i < expr.order_by.size(); ++i) {
      const SortKey& key = expr.order_by[i];
      if (!base_names.count(key.column)) {
        return Status::InvalidArgument("ORDER BY column '" + key.column +
                                       "' is not a key or output");
      }
      if (i) out << ", ";
      out << key.column;
      if (key.descending) out << " DESC";
    }
  }
  if (expr.limit >= 0) {
    out << " LIMIT " << expr.limit;
  }
  return out.str();
}

}  // namespace skalla

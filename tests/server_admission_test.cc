// Admission/scheduling layer (ISSUE 6): slot granting, priority order,
// queue deadlines, load shedding, cancellation — plus the coordinator
// hooks the server drives them through (cancel flag, execution deadline,
// prefix resume). Everything here is deterministic: deadlines that must
// expire do so against held slots or in simulated time.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/admission.h"
#include "server/server.h"
#include "skalla/warehouse.h"
#include "sql/olap_parser.h"
#include "storage/csv.h"
#include "test_util.h"
#include "tpc/dbgen.h"

namespace skalla {
namespace server {
namespace {

void SpinUntilQueued(const AdmissionController& admission, size_t n) {
  while (admission.queued() < n) std::this_thread::yield();
}

TEST(AdmissionControllerTest, FastPathGrantsFreeSlot) {
  AdmissionController admission(AdmissionOptions{});
  ASSERT_OK(admission.Acquire(1, /*priority=*/1, /*deadline_sec=*/0));
  EXPECT_EQ(admission.running(), 1);
  admission.Release();
  EXPECT_EQ(admission.running(), 0);
}

TEST(AdmissionControllerTest, FullQueueShedsImmediately) {
  AdmissionOptions options;
  options.max_concurrent = 1;
  options.max_queue = 0;
  AdmissionController admission(options);
  ASSERT_OK(admission.Acquire(1, 1, 0));
  Status shed = admission.Acquire(2, 1, 0);
  EXPECT_EQ(shed.code(), StatusCode::kUnavailable);
  admission.Release();
}

TEST(AdmissionControllerTest, QueueDeadlineExpires) {
  AdmissionOptions options;
  options.max_concurrent = 1;
  AdmissionController admission(options);
  ASSERT_OK(admission.Acquire(1, 1, 0));
  // The only slot is held and never released: the waiter must time out.
  Status expired = admission.Acquire(2, 1, /*deadline_sec=*/0.05);
  EXPECT_EQ(expired.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(admission.queued(), 0u);
  admission.Release();
}

TEST(AdmissionControllerTest, CancelQueuedWaiter) {
  AdmissionOptions options;
  options.max_concurrent = 1;
  AdmissionController admission(options);
  ASSERT_OK(admission.Acquire(1, 1, 0));

  Status waiter_status;
  std::thread waiter([&]() { waiter_status = admission.Acquire(2, 1, 0); });
  SpinUntilQueued(admission, 1);
  EXPECT_FALSE(admission.CancelQueued(99));  // unknown ticket
  EXPECT_TRUE(admission.CancelQueued(2));
  waiter.join();
  EXPECT_EQ(waiter_status.code(), StatusCode::kCancelled);
  EXPECT_EQ(admission.queued(), 0u);
  admission.Release();
}

TEST(AdmissionControllerTest, HigherPriorityOvertakesTheQueue) {
  AdmissionOptions options;
  options.max_concurrent = 1;
  AdmissionController admission(options);
  ASSERT_OK(admission.Acquire(1, /*priority=*/1, 0));

  std::mutex order_mu;
  std::vector<std::string> order;
  auto worker = [&](uint64_t ticket, int priority, const char* name) {
    Status granted = admission.Acquire(ticket, priority, 0);
    ASSERT_TRUE(granted.ok()) << granted.ToString();
    {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(name);
    }
    admission.Release();
  };
  // Low arrives first, high second; high must still be granted first.
  std::thread low(worker, 2, 0, "low");
  SpinUntilQueued(admission, 1);
  std::thread high(worker, 3, 2, "high");
  SpinUntilQueued(admission, 2);
  admission.Release();
  low.join();
  high.join();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "high");
  EXPECT_EQ(order[1], "low");
}

// ---- Coordinator hooks (what the server wires per query) -------------------

class CoordinatorHooksTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wh_ = std::make_unique<Warehouse>(4);
    TpcConfig config;
    config.num_rows = 2000;
    config.num_customers = 160;
    ASSERT_OK(wh_->LoadByRange("TPCR", GenerateTpcr(config), "NationKey", 0,
                               24, {"CustKey"}));
    ASSERT_OK_AND_ASSIGN(
        GmdjExpr expr,
        ParseOlapQuery(
            "SELECT CustKey, COUNT(*) AS cnt FROM TPCR GROUP BY CustKey "
            "EXTEND SUM(Quantity) AS sq WHERE Quantity >= cnt"));
    ASSERT_OK_AND_ASSIGN(plan_, wh_->Plan(expr, OptimizerOptions::None()));
  }

  std::unique_ptr<Warehouse> wh_;
  DistributedPlan plan_;
};

TEST_F(CoordinatorHooksTest, PreSetCancelFlagStopsExecution) {
  std::atomic<bool> cancel{true};
  ExecHooks hooks;
  hooks.cancel = &cancel;
  auto result = wh_->ExecutePlan(plan_, hooks);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST_F(CoordinatorHooksTest, TinySimulatedDeadlineExpires) {
  ExecHooks hooks;
  hooks.deadline_sec = 1e-9;  // simulated seconds; every exchange exceeds it
  auto result = wh_->ExecutePlan(plan_, hooks);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(CoordinatorHooksTest, ResumeFromObservedPrefixMatchesFullRun) {
  ASSERT_OK_AND_ASSIGN(QueryResult full, wh_->ExecutePlan(plan_));

  // Capture X after every round of a fresh run.
  std::vector<std::pair<size_t, Table>> captured;
  ExecHooks observe;
  observe.round_observer = [&captured](size_t ops_done, const Table& x) {
    captured.emplace_back(ops_done, x);
  };
  ASSERT_OK_AND_ASSIGN(QueryResult observed, wh_->ExecutePlan(plan_, observe));
  ASSERT_EQ(captured.size(), plan_.rounds.size());
  EXPECT_EQ(CsvToString(observed.table), CsvToString(full.table));

  // Resume after round 0: the final relation must be byte-identical.
  for (size_t rounds = 1; rounds <= captured.size(); ++rounds) {
    ExecHooks resume;
    resume.resume_x = &captured[rounds - 1].second;
    resume.resume_rounds = rounds;
    ASSERT_OK_AND_ASSIGN(QueryResult resumed,
                         wh_->ExecutePlan(plan_, resume));
    EXPECT_EQ(CsvToString(resumed.table), CsvToString(full.table))
        << "resumed after " << rounds << " round(s)";
  }
}

TEST_F(CoordinatorHooksTest, ResumeRejectsImpossiblePrefix) {
  Table bogus;
  ExecHooks hooks;
  hooks.resume_x = &bogus;
  hooks.resume_rounds = plan_.rounds.size() + 7;
  auto result = wh_->ExecutePlan(plan_, hooks);
  ASSERT_FALSE(result.ok());
}

// ---- Server-level scheduling behavior --------------------------------------

TEST(ServerSchedulingTest, CancelUnknownIdIsNotFound) {
  Server srv(2);
  Client client(&srv);
  auto reply = client.Call("CANCEL 424242");
  EXPECT_EQ(reply.status().code(), StatusCode::kNotFound);
  ASSERT_OK_AND_ASSIGN(std::string none, client.Call("CANCEL ALL"));
  EXPECT_EQ(none, "cancelled 0");
}

TEST(ServerSchedulingTest, EndToEndExecutionDeadline) {
  Server srv(4);
  Client client(&srv);
  ASSERT_OK(client.Call("LOAD tpcr 1000").status());
  auto reply = client.Call(
      "QUERY DEADLINE 0.000000001 "
      "SELECT CustKey, COUNT(*) AS cnt FROM TPCR GROUP BY CustKey");
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kDeadlineExceeded);
  const ServerStats stats = srv.stats();
  EXPECT_EQ(stats.queries_shed, 1u);
  EXPECT_EQ(stats.queries_completed, 0u);
  // The slot was released despite the failure.
  EXPECT_EQ(stats.running, 0);
}

TEST(ServerSchedulingTest, QueueFullShedsTypedOverTheWire) {
  ServerOptions opts;
  opts.admission.max_concurrent = 1;
  opts.admission.max_queue = 0;
  Server srv(2, opts);
  Client client(&srv);
  ASSERT_OK(client.Call("LOAD tpcr 600").status());

  // Two clients race the single slot with a zero-length queue: whichever
  // arrives while the other runs is shed with the typed kUnavailable —
  // any other failure on either side is a bug.
  std::atomic<bool> saw_unavailable{false};
  std::atomic<bool> done{false};
  std::string prober_error;
  std::thread prober([&]() {
    Client probe(&srv);
    while (!done.load(std::memory_order_relaxed)) {
      auto reply = probe.Call(
          "QUERY SELECT ClerkKey, COUNT(*) AS cnt FROM TPCR "
          "GROUP BY ClerkKey");
      if (reply.ok()) continue;
      if (reply.status().code() == StatusCode::kUnavailable) {
        saw_unavailable.store(true, std::memory_order_relaxed);
      } else {
        prober_error = reply.status().ToString();
        return;
      }
    }
  });
  std::string main_error;
  for (int i = 0;
       i < 200 && !saw_unavailable.load() && main_error.empty(); ++i) {
    auto reply = client.Call(
        "QUERY NOCACHE SELECT CustKey, COUNT(*) AS cnt "
        "FROM TPCR GROUP BY CustKey");
    if (!reply.ok()) {
      if (reply.status().code() == StatusCode::kUnavailable) {
        saw_unavailable.store(true, std::memory_order_relaxed);
      } else {
        main_error = reply.status().ToString();
      }
    }
  }
  done.store(true, std::memory_order_relaxed);
  prober.join();
  EXPECT_TRUE(main_error.empty()) << main_error;
  EXPECT_TRUE(prober_error.empty()) << prober_error;
  // One of the two racing clients must collide with the other's running
  // query well within 200 attempts.
  EXPECT_TRUE(saw_unavailable.load());
  EXPECT_GT(srv.stats().queries_shed, 0u);
}

TEST(ServerSchedulingTest, StatsExposeActiveAndPriorities) {
  Server srv(2);
  Client client(&srv);
  ASSERT_OK_AND_ASSIGN(std::string stats, client.Call("STATS"));
  EXPECT_NE(stats.find("queries_submitted 0"), std::string::npos);
  EXPECT_NE(stats.find("running 0"), std::string::npos);
  EXPECT_NE(stats.find("cache_hits 0"), std::string::npos);
}

}  // namespace
}  // namespace server
}  // namespace skalla

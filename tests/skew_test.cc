// Skew-aware adaptive round execution suite (ctest label "skew").
//
// Covers the straggler detector (EWMA rates, metric-window seeding, the
// PlanRound keep rule), the heavy-hitter sketch and frequency-weighted φ
// partitioning, and — the acceptance property of docs/skew.md — that a
// rebalanced execution is *byte-identical* to the unrebalanced one across
// coordinator topologies, local-thread counts, wire formats, pinned fuzz
// seeds, and fault schedules (DESIGN.md invariant 12). The rebalancer may
// only move work, never change the answer.

#include <gtest/gtest.h>

#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dist/rebalance.h"
#include "flow/flowgen.h"
#include "net/fault_injector.h"
#include "obs/metrics.h"
#include "opt/cost_model.h"
#include "server/admission.h"
#include "skalla/queries.h"
#include "skalla/warehouse.h"
#include "storage/freq_sketch.h"
#include "storage/serializer.h"
#include "test_util.h"
#include "tpc/dbgen.h"
#include "tpc/partitioner.h"

namespace skalla {
namespace {

/// Serialized wire form: byte-exact equality, including row order.
std::string TableBytes(const Table& table) {
  return Serializer::SerializeTable(table);
}

// ---------------------------------------------------------------------------
// SkewDetector unit tests.
// ---------------------------------------------------------------------------

TEST(SkewDetectorTest, UnobservedSlotsHaveNeutralRate) {
  SkewDetector detector;
  EXPECT_DOUBLE_EQ(detector.CostPerRow(0), 1.0);
  EXPECT_DOUBLE_EQ(detector.CostPerRow(99), 1.0);
  detector.SeedRows(4);
  EXPECT_EQ(detector.num_slots(), 4);
  for (int s = 0; s < 4; ++s) EXPECT_DOUBLE_EQ(detector.CostPerRow(s), 1.0);
}

TEST(SkewDetectorTest, ObserveRoundFoldsEwma) {
  RebalanceConfig config;
  config.ewma_alpha = 0.5;
  SkewDetector detector(config);
  // First sample replaces the neutral prior outright: 1 µs/row.
  detector.ObserveRound(0, /*seconds=*/1e-6, /*rows=*/1);
  EXPECT_DOUBLE_EQ(detector.CostPerRow(0), 1.0);
  // Second sample (3 µs/row) folds: 0.5 * 3 + 0.5 * 1 = 2.
  detector.ObserveRound(0, 3e-6, 1);
  EXPECT_DOUBLE_EQ(detector.CostPerRow(0), 2.0);
}

TEST(SkewDetectorTest, ObserveRoundIgnoresInvalidSamples) {
  SkewDetector detector;
  detector.SeedRows(2);
  detector.ObserveRound(-1, 1.0, 100);   // bad slot
  detector.ObserveRound(0, 1.0, 0);      // no rows scanned
  detector.ObserveRound(1, -1.0, 100);   // negative wall time
  EXPECT_DOUBLE_EQ(detector.CostPerRow(0), 1.0);
  EXPECT_DOUBLE_EQ(detector.CostPerRow(1), 1.0);
}

TEST(SkewDetectorTest, SeedFromMetricsWindowNormalizesRates) {
  obs::MetricValue slow;
  slow.name = "skalla_dist_site_round_seconds{site=\"0\"}";
  slow.kind = obs::MetricKind::kHistogram;
  slow.hist_count = 4;
  slow.hist_sum = 8.0;  // mean 2.0 s/round
  obs::MetricValue fast;
  fast.name = "skalla_dist_site_round_seconds{site=\"1\"}";
  fast.kind = obs::MetricKind::kHistogram;
  fast.hist_count = 2;
  fast.hist_sum = 2.0;  // mean 1.0 s/round
  obs::MetricValue unrelated;
  unrelated.name = "skalla_dist_rounds_total";
  unrelated.kind = obs::MetricKind::kCounter;

  SkewDetector detector;
  detector.SeedFromMetricsWindow({slow, fast, unrelated});
  // Across-site mean is 1.5: rates are each site's mean relative to it.
  EXPECT_DOUBLE_EQ(detector.CostPerRow(0), 2.0 / 1.5);
  EXPECT_DOUBLE_EQ(detector.CostPerRow(1), 1.0 / 1.5);
  // Slots absent from the window stay neutral.
  EXPECT_DOUBLE_EQ(detector.CostPerRow(2), 1.0);
}

TEST(SkewDetectorTest, SeedFromEmptyOrCountlessWindowIsANoOp) {
  obs::MetricValue empty_hist;
  empty_hist.name = "skalla_dist_site_round_seconds{site=\"0\"}";
  empty_hist.kind = obs::MetricKind::kHistogram;
  empty_hist.hist_count = 0;
  SkewDetector detector;
  detector.SeedFromMetricsWindow({});
  detector.SeedFromMetricsWindow({empty_hist});
  EXPECT_DOUBLE_EQ(detector.CostPerRow(0), 1.0);
}

TEST(SkewDetectorTest, PlanRoundVetoes) {
  RebalanceConfig config;
  config.enabled = true;
  config.min_rows_to_split = 1000;
  SkewDetector detector(config);

  // Fewer than two slots: nothing to split against.
  EXPECT_FALSE(detector.PlanRound({0}, {50000}).split());

  // Balanced loads stay below the max/mean threshold.
  RebalanceDecision balanced =
      detector.PlanRound({0, 1, 2, 3}, {5000, 5000, 5000, 5000});
  EXPECT_FALSE(balanced.split());
  EXPECT_NEAR(balanced.max_over_mean, 1.0, 1e-9);

  // Skewed but tiny: the hot slot is under min_rows_to_split.
  EXPECT_FALSE(detector.PlanRound({0, 1, 2, 3}, {900, 10, 10, 10}).split());

  // Disabled: the same skewed shape that would otherwise split is vetoed.
  SkewDetector off;  // default config has enabled = false
  RebalanceDecision disabled =
      off.PlanRound({0, 1, 2, 3}, {50000, 100, 100, 100});
  EXPECT_FALSE(disabled.split());
  EXPECT_GT(disabled.max_over_mean, 1.5);  // the skew was still measured
}

TEST(SkewDetectorTest, PlanRoundSplitsTheHotSlot) {
  RebalanceConfig config;
  config.enabled = true;
  config.min_rows_to_split = 1000;
  SkewDetector detector(config);
  RebalanceDecision d =
      detector.PlanRound({4, 5, 6, 7}, {10000, 100, 100, 100});
  ASSERT_TRUE(d.split());
  EXPECT_EQ(d.hot_slot, 4);
  EXPECT_EQ(d.rows, 10000);
  EXPECT_GT(d.max_over_mean, config.max_over_mean_threshold);
  EXPECT_GT(d.split_at, 0);
  EXPECT_LT(d.split_at, d.rows);
  // Extreme skew: mean/max is far below 1/2, so the keep rule bottoms out
  // at half — the single same-hardware helper must not become the new
  // straggler.
  EXPECT_EQ(d.split_at, 5000);
}

TEST(SkewDetectorTest, PlanRoundKeepsAMeanShareUnderModerateSkew) {
  RebalanceConfig config;
  config.enabled = true;
  config.min_rows_to_split = 100;
  config.max_over_mean_threshold = 1.2;
  SkewDetector detector(config);
  // mean = 2250, max = 3000: keep = max(0.5, 0.75) = 0.75 of the scan.
  RebalanceDecision d =
      detector.PlanRound({0, 1, 2, 3}, {3000, 2000, 2000, 2000});
  ASSERT_TRUE(d.split());
  EXPECT_EQ(d.hot_slot, 0);
  EXPECT_EQ(d.split_at, 2250);
}

TEST(SkewDetectorTest, PlanRoundWeighsObservedRates) {
  RebalanceConfig config;
  config.enabled = true;
  config.min_rows_to_split = 100;
  SkewDetector detector(config);
  // Equal row counts, but slot 1 is observed 8x slower per row: the load
  // prediction rows * rate must crown slot 1, not slot 0.
  detector.ObserveRound(0, 1e-6, 1);
  detector.ObserveRound(1, 8e-6, 1);
  detector.ObserveRound(2, 1e-6, 1);
  RebalanceDecision d = detector.PlanRound({0, 1, 2}, {4000, 4000, 4000});
  ASSERT_TRUE(d.split());
  EXPECT_EQ(d.hot_slot, 1);
}

TEST(SkewDetectorTest, ConcurrentObserversAndPlannersAreSafe) {
  RebalanceConfig config;
  config.enabled = true;
  config.min_rows_to_split = 10;
  SkewDetector detector(config);
  detector.SeedRows(8);
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&detector, t]() {
      for (int i = 0; i < 500; ++i) {
        detector.ObserveRound(t * 2, 1e-6 * (t + 1), 100);
        detector.CostPerRow(i % 8);
        detector.PlanRound({0, 1, 2, 3, 4, 5, 6, 7},
                           {9000, 100, 100, 100, 100, 100, 100, 100});
      }
    });
  }
  for (std::thread& w : workers) w.join();
  // All rates remain finite and positive.
  for (int s = 0; s < 8; ++s) EXPECT_GT(detector.CostPerRow(s), 0.0);
}

// ---------------------------------------------------------------------------
// FreqSketch (space-saving heavy hitters).
// ---------------------------------------------------------------------------

TEST(FreqSketchTest, ExactUnderCapacity) {
  FreqSketch sketch(8);
  for (int i = 0; i < 5; ++i) {
    for (int k = 0; k <= i; ++k) sketch.Add(i);
  }
  EXPECT_EQ(sketch.total(), 1 + 2 + 3 + 4 + 5);
  EXPECT_EQ(sketch.monitored(), 5u);
  for (int64_t i = 0; i < 5; ++i) EXPECT_EQ(sketch.Estimate(i), i + 1);
  const auto top = sketch.TopK(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, 4);
  EXPECT_EQ(top[1].key, 3);
  EXPECT_EQ(top[0].error, 0);
}

TEST(FreqSketchTest, SpaceSavingBoundsHold) {
  // Stream with known true counts, over capacity: key k appears
  // (100 - k) times, capacity 8 monitors only a subset.
  FreqSketch sketch(8);
  std::vector<int64_t> truth(32, 0);
  for (int64_t k = 0; k < 32; ++k) {
    for (int64_t i = 0; i < 100 - k; ++i) {
      sketch.Add(k);
      truth[static_cast<size_t>(k)]++;
    }
  }
  EXPECT_EQ(sketch.monitored(), 8u);
  // Space-saving guarantee: count is an upper bound and count - error a
  // lower bound on the true frequency of every monitored key.
  for (const auto& e : sketch.TopK(8)) {
    const int64_t true_count = truth[static_cast<size_t>(e.key)];
    EXPECT_GE(e.count, true_count) << "key " << e.key;
    EXPECT_LE(e.count - e.error, true_count) << "key " << e.key;
  }
  // Every estimate stays bounded by the stream total.
  for (const auto& e : sketch.TopK(8)) EXPECT_LE(e.count, sketch.total());
}

TEST(FreqSketchTest, GuaranteedHeavyHitterIsMonitored) {
  FreqSketch sketch(4);
  for (int i = 0; i < 600; ++i) sketch.Add(7);          // 60% of the stream
  for (int i = 0; i < 400; ++i) sketch.Add(100 + i);    // 400 singletons
  // True frequency 600 > total/capacity = 250: must be monitored, and its
  // guaranteed lower bound must clear a 25% share.
  const auto heavy = sketch.HeavyHitters(0.25);
  ASSERT_FALSE(heavy.empty());
  EXPECT_EQ(heavy[0].key, 7);
  EXPECT_GE(heavy[0].count - heavy[0].error,
            static_cast<int64_t>(0.25 * 1000));
}

TEST(FreqSketchTest, DeterministicAcrossIdenticalStreams) {
  FreqSketch a(4), b(4);
  const int64_t keys[] = {1, 2, 3, 4, 5, 1, 2, 6, 7, 1, 8, 9};
  for (int64_t k : keys) a.Add(k);
  for (int64_t k : keys) b.Add(k);
  const auto ta = a.TopK(4), tb = b.TopK(4);
  ASSERT_EQ(ta.size(), tb.size());
  for (size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].key, tb[i].key);
    EXPECT_EQ(ta[i].count, tb[i].count);
    EXPECT_EQ(ta[i].error, tb[i].error);
  }
}

// ---------------------------------------------------------------------------
// Frequency-weighted range partitioning (φ rebalancing).
// ---------------------------------------------------------------------------

TEST(WeightedPartitionTest, EqualizesZipfSkewAndStaysContiguous) {
  TpcConfig config;
  config.num_rows = 20000;
  config.num_customers = 2000;
  config.cust_zipf_s = 1.1;
  const Table tpcr = GenerateTpcr(config);

  ASSERT_OK_AND_ASSIGN(PartitionedData plain,
                       PartitionByRange(tpcr, "CustKey", 4, 0, 1999));
  ASSERT_OK_AND_ASSIGN(PartitionedData weighted,
                       PartitionByRangeWeighted(tpcr, "CustKey", 4, 0, 1999));

  auto max_rows = [](const PartitionedData& data) {
    int64_t max = 0;
    for (const auto& f : data.fragments) max = std::max(max, f->num_rows());
    return max;
  };
  int64_t total = 0;
  for (const auto& f : weighted.fragments) total += f->num_rows();
  EXPECT_EQ(total, tpcr.num_rows());

  // The naive equal-width ranges concentrate the Zipf head on site 0; the
  // weighted boundaries must do strictly better and stay near fair share.
  const double mean = static_cast<double>(total) / 4.0;
  EXPECT_LT(max_rows(weighted), max_rows(plain));
  EXPECT_LT(static_cast<double>(max_rows(weighted)), 2.0 * mean);

  // φ stays a contiguous, ascending, disjoint range per site — CustKey
  // remains a partition attribute (Definition 2).
  double prev_hi = -1;
  for (const PartitionInfo& info : weighted.infos) {
    const AttrDomain& domain = info.Domain("CustKey");
    ASSERT_EQ(domain.kind, AttrDomain::Kind::kRange);
    double lo = 0, hi = 0;
    ASSERT_TRUE(domain.NumericBounds(&lo, &hi));
    EXPECT_GT(lo, prev_hi);
    EXPECT_GE(hi, lo);
    prev_hi = hi;
  }
  EXPECT_TRUE(IsPartitionAttribute("CustKey", weighted.infos));
}

TEST(WeightedPartitionTest, HeavyKeySiteGetsAReplicaAtLoad) {
  // One customer owns ~60% of the rows: no contiguous boundary can split a
  // single key, so LoadByRangeWeighted must pre-register a replica of that
  // key's site for the rebalancer.
  TpcConfig config;
  config.num_rows = 8000;
  config.num_customers = 100;
  config.cust_zipf_s = 2.0;  // key 0 dominates
  const Table tpcr = GenerateTpcr(config);

  Warehouse wh(4);
  ASSERT_OK(wh.LoadByRangeWeighted("TPCR", tpcr, "CustKey", 0, 99));
  // Key 0 lives in site 0's range; a second AddReplica must collide with
  // the one the weighted load already registered.
  Status again = wh.AddReplica(0).status();
  EXPECT_EQ(again.code(), StatusCode::kAlreadyExists) << again.ToString();
}

// ---------------------------------------------------------------------------
// Generator skew knobs (satellite: Zipf data generation).
// ---------------------------------------------------------------------------

TEST(ZipfKnobTest, TpcrCustomerSkewIsDeterministicAndSkewed) {
  TpcConfig config;
  config.num_rows = 6000;
  config.num_customers = 500;
  config.cust_zipf_s = 1.2;
  const Table a = GenerateTpcr(config);
  const Table b = GenerateTpcr(config);
  EXPECT_EQ(TableBytes(a), TableBytes(b));

  const int cust = *a.schema().IndexOf("CustKey");
  int64_t head = 0;
  for (int64_t r = 0; r < a.num_rows(); ++r) {
    if (a.Get(r, cust).AsInt64() == 0) head++;
  }
  // Uniform share would be 12 rows; the Zipf head must far exceed it.
  EXPECT_GT(head, 10 * config.num_rows / config.num_customers);

  // The knob's zero default reproduces the uniform generator unchanged.
  TpcConfig uniform = config;
  uniform.cust_zipf_s = 0.0;
  const Table u = GenerateTpcr(uniform);
  int64_t uniform_head = 0;
  for (int64_t r = 0; r < u.num_rows(); ++r) {
    if (u.Get(r, cust).AsInt64() == 0) uniform_head++;
  }
  EXPECT_LT(uniform_head, head);
}

TEST(ZipfKnobTest, FlowAsExponentShiftsLoadAcrossRouters) {
  FlowConfig mild;
  mild.num_rows = 8000;
  mild.as_zipf_s = 0.0;  // uniform AS draw
  FlowConfig hot = mild;
  hot.as_zipf_s = 1.4;

  auto router0_rows = [](const FlowConfig& config) {
    const Table t = GenerateFlows(config);
    const int router = *t.schema().IndexOf("RouterId");
    int64_t n = 0;
    for (int64_t r = 0; r < t.num_rows(); ++r) {
      if (t.Get(r, router).AsInt64() == 0) n++;
    }
    return n;
  };
  // Cranking the AS exponent concentrates flows on the first AS block's
  // router — the straggler workload of docs/skew.md.
  EXPECT_GT(router0_rows(hot), 2 * router0_rows(mild));
}

// ---------------------------------------------------------------------------
// End-to-end byte identity: rebalanced == unrebalanced (invariant 12).
// ---------------------------------------------------------------------------

Table SkewedTpcr(uint64_t seed = 42, int64_t rows = 6000) {
  TpcConfig config;
  config.num_rows = rows;
  config.num_customers = 800;
  config.num_nations = 24;
  config.num_clerks = 40;
  config.cust_zipf_s = 1.1;
  config.seed = seed;
  return GenerateTpcr(config);
}

/// A 4-site warehouse over Zipf-skewed TPCR (site 0 hot), optionally with
/// the rebalancer armed (config + a replica of the hot site).
std::unique_ptr<Warehouse> SkewedWarehouse(const Table& tpcr,
                                           bool rebalance) {
  auto wh = std::make_unique<Warehouse>(4);
  // NationKey ranges; the CustKey Zipf head lands in nation block 0.
  EXPECT_OK(wh->LoadByRange("TPCR", tpcr, "NationKey", 0, 23, {"CustKey"}));
  if (rebalance) {
    RebalanceConfig config;
    config.enabled = true;
    config.min_rows_to_split = 256;
    wh->set_rebalance_config(config);
    EXPECT_OK(wh->AddReplica(0).status());
  }
  return wh;
}

TEST(RebalanceIdentityTest, MatrixOfTopologiesThreadsAndWireFormats) {
  const Table tpcr = SkewedTpcr();
  // ClerkKey is NOT a partition attribute, so the plan keeps a non-fused
  // shipped round the rebalancer can split (grouping on the partition
  // attribute fully fuses the query and leaves nothing to rebalance).
  const GmdjExpr query = queries::GroupReductionQuery("ClerkKey");

  // Oracle: unrebalanced flat execution plus the centralized evaluator.
  auto oracle_wh = SkewedWarehouse(tpcr, /*rebalance=*/false);
  ASSERT_OK_AND_ASSIGN(QueryResult oracle,
                       oracle_wh->Execute(query, OptimizerOptions::All()));
  EXPECT_EQ(oracle.metrics.RebalanceSplits(), 0);
  ASSERT_OK_AND_ASSIGN(Table reference, oracle_wh->ExecuteCentralized(query));
  ExpectSameRows(oracle.table, reference);
  const std::string oracle_bytes = TableBytes(oracle.table);

  int total_splits = 0;
  for (const bool tree : {false, true}) {
    for (const int threads : {1, 4}) {
      for (const WireFormat wire : {WireFormat::kSkl1, WireFormat::kSkl2}) {
        SCOPED_TRACE(std::string(tree ? "tree" : "flat") + "/threads=" +
                     std::to_string(threads) + "/" + WireFormatName(wire));
        auto wh = SkewedWarehouse(tpcr, /*rebalance=*/true);
        NetworkConfig net = wh->network_config();
        net.wire_format = wire;
        wh->set_network_config(net);
        wh->set_local_threads(threads);
        ASSERT_OK_AND_ASSIGN(DistributedPlan plan,
                             wh->Plan(query, OptimizerOptions::All()));
        for (int iter = 0; iter < 2; ++iter) {  // repeat with warm rates
          auto result = tree ? wh->ExecutePlanTree(plan, /*fan_in=*/2)
                             : wh->ExecutePlan(plan);
          ASSERT_OK(result.status());
          EXPECT_EQ(TableBytes(result->table), oracle_bytes);
          total_splits += result->metrics.RebalanceSplits();
        }
      }
    }
  }
  // The hot site holds the Zipf head: the detector must actually have
  // split rounds somewhere in the matrix, or this test proved nothing.
  EXPECT_GT(total_splits, 0);
}

TEST(RebalanceIdentityTest, FuzzPinnedSeedsFlipRebalanceBit) {
  const GmdjExpr query = queries::CombinedQuery("ClerkKey");
  for (const uint64_t seed : {7u, 19u, 101u, 555u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const Table tpcr = SkewedTpcr(seed, /*rows=*/4000);
    auto off = SkewedWarehouse(tpcr, false);
    auto on = SkewedWarehouse(tpcr, true);
    ASSERT_OK_AND_ASSIGN(QueryResult plain,
                         off->Execute(query, OptimizerOptions::All()));
    ASSERT_OK_AND_ASSIGN(QueryResult rebalanced,
                         on->Execute(query, OptimizerOptions::All()));
    EXPECT_EQ(TableBytes(rebalanced.table), TableBytes(plain.table));
    ASSERT_OK_AND_ASSIGN(Table reference, off->ExecuteCentralized(query));
    ExpectSameRows(plain.table, reference);
  }
}

TEST(RebalanceIdentityTest, DetectorStateCarriesAcrossQueries) {
  // The warehouse owns one persistent detector: rates learned by query 1
  // are visible to query 2 (docs/skew.md), and repeated runs stay
  // byte-stable.
  const Table tpcr = SkewedTpcr();
  auto wh = SkewedWarehouse(tpcr, true);
  const GmdjExpr query = queries::GroupReductionQuery("ClerkKey");
  std::string first;
  for (int i = 0; i < 3; ++i) {
    ASSERT_OK_AND_ASSIGN(QueryResult result,
                         wh->Execute(query, OptimizerOptions::All()));
    if (i == 0) {
      first = TableBytes(result.table);
    } else {
      EXPECT_EQ(TableBytes(result.table), first);
    }
  }
  // After three executions over 4 sites, every primary slot has observed
  // wall time: its rate left the neutral 1.0 prior.
  EXPECT_GE(wh->skew_detector().num_slots(), 4);
  bool any_observed = false;
  for (int s = 0; s < 4; ++s) {
    if (wh->skew_detector().CostPerRow(s) != 1.0) any_observed = true;
  }
  EXPECT_TRUE(any_observed);
}

// ---------------------------------------------------------------------------
// Fault interaction: stragglers that are also flaky.
// ---------------------------------------------------------------------------

TEST(RebalanceFaultTest, FlakyStragglerStaysByteIdentical) {
  // The hot site's exchanges each fail once before succeeding, on top of
  // being the split target: retries and the helper fragment must compose
  // without changing a byte.
  const Table tpcr = SkewedTpcr();
  const GmdjExpr query = queries::GroupReductionQuery("ClerkKey");

  auto clean = SkewedWarehouse(tpcr, true);
  ASSERT_OK_AND_ASSIGN(QueryResult expected,
                       clean->Execute(query, OptimizerOptions::All()));

  auto wh = SkewedWarehouse(tpcr, true);
  FaultInjector injector;
  injector.FailSite(/*site=*/0, /*first_round=*/0, /*last_round=*/9,
                    /*failed_attempts_per_round=*/1);
  wh->set_fault_injector(&injector);
  ASSERT_OK_AND_ASSIGN(QueryResult flaky,
                       wh->Execute(query, OptimizerOptions::All()));
  EXPECT_EQ(TableBytes(flaky.table), TableBytes(expected.table));
  EXPECT_GT(flaky.metrics.Retries(), 0);
}

TEST(RebalanceFaultTest, DeadHelperFailsOverToTheStragglerPrimary) {
  // The helper slot is served by the hot site's replica (site id 4 on a
  // 4-site warehouse). Killing the replica outright forces the helper
  // fragment through failover — whose target is the straggler primary
  // itself (AddHelperSlot) — instead of failing the round.
  const Table tpcr = SkewedTpcr();
  const GmdjExpr query = queries::GroupReductionQuery("ClerkKey");

  auto clean = SkewedWarehouse(tpcr, true);
  ASSERT_OK_AND_ASSIGN(QueryResult expected,
                       clean->Execute(query, OptimizerOptions::All()));

  auto wh = SkewedWarehouse(tpcr, true);
  FaultInjector injector;
  injector.KillSite(/*site=*/4);
  wh->set_fault_injector(&injector);
  ASSERT_OK_AND_ASSIGN(QueryResult result,
                       wh->Execute(query, OptimizerOptions::All()));
  EXPECT_EQ(TableBytes(result.table), TableBytes(expected.table));
  if (result.metrics.RebalanceSplits() > 0) {
    EXPECT_GT(result.metrics.Failovers(), 0);
  }
}

// ---------------------------------------------------------------------------
// Cost model: max-over-sites pricing of skewed rounds.
// ---------------------------------------------------------------------------

class SkewCostTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TpcConfig config;
    config.num_rows = 10000;
    config.num_customers = 800;
    warehouse_ = std::make_unique<Warehouse>(4);
    Table tpcr = GenerateTpcr(config);
    ASSERT_OK(warehouse_->LoadByRange("TPCR", tpcr, "NationKey", 0, 24,
                                      {"CustKey", "ClerkKey"}));
    ASSERT_OK_AND_ASSIGN(std::shared_ptr<const Table> full,
                         warehouse_->central_catalog().GetTable("TPCR"));
    ASSERT_OK_AND_ASSIGN(RelationStats stats,
                         ProfileRelation(*full, {"CustKey", "ClerkKey",
                                                 "NationKey"}));
    estimator_ = std::make_unique<CostEstimator>(
        4, warehouse_->network_config(), warehouse_->SiteInfos());
    estimator_->AddRelation("TPCR", std::move(stats));
    ASSERT_OK_AND_ASSIGN(
        plan_, warehouse_->Plan(queries::GroupReductionQuery("ClerkKey"),
                                OptimizerOptions::All()));
  }

  std::unique_ptr<Warehouse> warehouse_;
  std::unique_ptr<CostEstimator> estimator_;
  DistributedPlan plan_;
};

TEST_F(SkewCostTest, NoDeclaredSkewMeansNoSiteTerm) {
  ASSERT_OK_AND_ASSIGN(CostBreakdown cost, estimator_->EstimateFlat(plan_));
  EXPECT_DOUBLE_EQ(cost.site_seconds, 0.0);
  EXPECT_DOUBLE_EQ(cost.TotalSeconds(), cost.comm_seconds);
  // The report omits the site-compute clause entirely when it is zero.
  EXPECT_EQ(cost.ToString().find("site compute"), std::string::npos);
}

TEST_F(SkewCostTest, SkewedSharesArePricedAtTheMax) {
  estimator_->SetSiteLoads({0.25, 0.25, 0.25, 0.25});
  ASSERT_OK_AND_ASSIGN(CostBreakdown uniform,
                       estimator_->EstimateFlat(plan_));
  estimator_->SetSiteLoads({0.70, 0.10, 0.10, 0.10});
  ASSERT_OK_AND_ASSIGN(CostBreakdown skewed, estimator_->EstimateFlat(plan_));
  EXPECT_GT(uniform.site_seconds, 0.0);
  // Same total rows, but the response is gated by the hottest site:
  // 0.70 / 0.25 = 2.8x the balanced site term.
  EXPECT_NEAR(skewed.site_seconds, 2.8 * uniform.site_seconds, 1e-12);
  EXPECT_GT(skewed.TotalSeconds(), uniform.TotalSeconds());
  EXPECT_NE(skewed.ToString().find("site compute"), std::string::npos);
}

TEST_F(SkewCostTest, RebalanceTrimsTheSkewPremium) {
  estimator_->SetSiteLoads({0.70, 0.10, 0.10, 0.10});
  ASSERT_OK_AND_ASSIGN(CostBreakdown skewed, estimator_->EstimateFlat(plan_));
  RebalanceConfig config;
  config.enabled = true;
  estimator_->SetRebalance(config);
  ASSERT_OK_AND_ASSIGN(CostBreakdown trimmed,
                       estimator_->EstimateFlat(plan_));
  // The modelled split halves the hot site's scan (keep bottoms out at
  // 0.5), so the site term drops but never below the across-site mean.
  EXPECT_LT(trimmed.site_seconds, skewed.site_seconds);
  EXPECT_NEAR(trimmed.site_seconds, 0.5 * skewed.site_seconds, 1e-12);
  estimator_->SetSiteLoads({0.25, 0.25, 0.25, 0.25});
  ASSERT_OK_AND_ASSIGN(CostBreakdown uniform,
                       estimator_->EstimateFlat(plan_));
  EXPECT_GE(trimmed.site_seconds, uniform.site_seconds);
}

// ---------------------------------------------------------------------------
// Admission: estimated cost weighs queue order and shedding.
// ---------------------------------------------------------------------------

void SpinUntilQueued(const server::AdmissionController& admission,
                     size_t n) {
  while (admission.queued() < n) std::this_thread::yield();
}

TEST(CostAwareAdmissionTest, CheaperQueryOvertakesWithinSamePriority) {
  server::AdmissionOptions options;
  options.max_concurrent = 1;
  server::AdmissionController admission(options);
  ASSERT_OK(admission.Acquire(1, /*priority=*/1, /*deadline_sec=*/0));

  std::mutex mu;
  std::vector<uint64_t> order;
  auto wait_then_run = [&](uint64_t ticket, double cost) {
    EXPECT_OK(admission.Acquire(ticket, 1, 0, cost));
    {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(ticket);
    }
    admission.Release();
  };
  std::thread expensive([&]() { wait_then_run(2, 50.0); });
  SpinUntilQueued(admission, 1);
  std::thread cheap([&]() { wait_then_run(3, 1.0); });
  SpinUntilQueued(admission, 2);
  admission.Release();  // frees the slot: shortest job first
  expensive.join();
  cheap.join();
  EXPECT_EQ(order, (std::vector<uint64_t>{3, 2}));
}

TEST(CostAwareAdmissionTest, PriorityStillDominatesCost) {
  server::AdmissionOptions options;
  options.max_concurrent = 1;
  server::AdmissionController admission(options);
  ASSERT_OK(admission.Acquire(1, 1, 0));

  std::mutex mu;
  std::vector<uint64_t> order;
  auto wait_then_run = [&](uint64_t ticket, int priority, double cost) {
    EXPECT_OK(admission.Acquire(ticket, priority, 0, cost));
    {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(ticket);
    }
    admission.Release();
  };
  // A cheap low-priority query must not overtake an expensive
  // high-priority one.
  std::thread cheap_low([&]() { wait_then_run(2, /*priority=*/0, 1.0); });
  SpinUntilQueued(admission, 1);
  std::thread costly_high([&]() { wait_then_run(3, /*priority=*/5, 99.0); });
  SpinUntilQueued(admission, 2);
  admission.Release();
  cheap_low.join();
  costly_high.join();
  EXPECT_EQ(order, (std::vector<uint64_t>{3, 2}));
}

TEST(CostAwareAdmissionTest, ExpensiveQueriesShedUnderPressure) {
  server::AdmissionOptions options;
  options.max_concurrent = 1;
  options.max_queue = 2;
  options.shed_cost_threshold = 2.0;
  server::AdmissionController admission(options);
  // The slot is free: even an expensive query runs when there is no
  // pressure (the threshold only bites once the queue is half full).
  ASSERT_OK(admission.Acquire(1, 1, 0, /*estimated_cost=*/50.0));

  Status waiter_status;
  std::thread waiter(
      [&]() { waiter_status = admission.Acquire(2, 1, 0, 1.0); });
  SpinUntilQueued(admission, 1);
  // Queue is at half capacity: an above-threshold estimate is shed...
  Status shed = admission.Acquire(3, 1, 0, /*estimated_cost=*/5.0);
  EXPECT_EQ(shed.code(), StatusCode::kUnavailable);
  // ...while a cheap query would still be queued (not shed): prove the
  // rejection was cost-based by cancelling the cheap waiter normally.
  EXPECT_TRUE(admission.CancelQueued(2));
  waiter.join();
  EXPECT_EQ(waiter_status.code(), StatusCode::kCancelled);
  admission.Release();
}

}  // namespace
}  // namespace skalla

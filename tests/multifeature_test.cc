// Multi-feature and marginal-distribution queries: the other OLAP classes
// the paper cites (Ross et al. [18]; Graefe et al.'s unpivot [11]),
// exercised through the GMDJ machinery end to end.

#include <gtest/gtest.h>

#include "engine/operators.h"
#include "skalla/queries.h"
#include "skalla/warehouse.h"
#include "test_util.h"
#include "tpc/dbgen.h"

namespace skalla {
namespace {

TEST(MultiFeatureTest, MatchesHandComputedOracle) {
  // Oracle computed by composing plain operators: per NationKey, min
  // ShipDate; then filter tuples at that min and group again.
  Warehouse wh(4);
  TpcConfig config;
  config.num_rows = 3000;
  config.num_customers = 100;
  Table tpcr = GenerateTpcr(config);
  ASSERT_OK(wh.LoadByRange("TPCR", tpcr, "NationKey", 0, 24, {"CustKey"}));

  const GmdjExpr query = queries::MultiFeatureQuery("NationKey");
  ASSERT_OK_AND_ASSIGN(QueryResult result,
                       wh.Execute(query, OptimizerOptions::All()));
  ASSERT_OK_AND_ASSIGN(Table centralized, wh.ExecuteCentralized(query));
  ExpectSameRows(result.table, centralized);

  // Independent oracle: min per group via HashGroupBy, then per-group
  // verification of the second level.
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<const Table> full,
                       wh.central_catalog().GetTable("TPCR"));
  ASSERT_OK_AND_ASSIGN(
      Table mins,
      HashGroupBy(*full, {"NationKey"},
                  {AggSpec::Min("ShipDate", "first_ship")}));
  ASSERT_OK_AND_ASSIGN(Table sorted_result,
                       SortedBy(result.table, {"NationKey"}));
  ASSERT_OK_AND_ASSIGN(Table sorted_mins, SortedBy(mins, {"NationKey"}));
  ASSERT_EQ(sorted_result.num_rows(), sorted_mins.num_rows());

  const int nation_idx = *full->schema().IndexOf("NationKey");
  const int ship_idx = *full->schema().IndexOf("ShipDate");
  const int price_idx = *full->schema().IndexOf("ExtendedPrice");
  for (int64_t r = 0; r < sorted_result.num_rows(); ++r) {
    EXPECT_EQ(sorted_result.Get(r, 0), sorted_mins.Get(r, 0));
    const Value& min_ship = sorted_mins.Get(r, 1);
    EXPECT_EQ(sorted_result.Get(r, 1), min_ship);
    // Count and average among tuples at the minimum.
    int64_t count = 0;
    double price_sum = 0;
    for (int64_t i = 0; i < full->num_rows(); ++i) {
      if (full->Get(i, nation_idx) == sorted_result.Get(r, 0) &&
          full->Get(i, ship_idx) == min_ship) {
        ++count;
        price_sum += full->Get(i, price_idx).AsDouble();
      }
    }
    EXPECT_EQ(sorted_result.Get(r, 2), Value(count));
    ASSERT_GT(count, 0);
    EXPECT_DOUBLE_EQ(sorted_result.Get(r, 3).AsDouble(),
                     price_sum / static_cast<double>(count));
  }
}

TEST(MultiFeatureTest, AllOptimizerSubsetsAgree) {
  Warehouse wh(3);
  TpcConfig config;
  config.num_rows = 1500;
  config.num_customers = 80;
  Table tpcr = GenerateTpcr(config);
  ASSERT_OK(wh.LoadByRange("TPCR", tpcr, "NationKey", 0, 24,
                           {"CustKey", "NationKey"}));
  const GmdjExpr query = queries::MultiFeatureQuery("CustKey");
  ASSERT_OK_AND_ASSIGN(Table expected, wh.ExecuteCentralized(query));
  for (int mask = 0; mask < 16; ++mask) {
    OptimizerOptions options;
    options.coalesce = (mask & 1) != 0;
    options.independent_group_reduction = (mask & 2) != 0;
    options.aware_group_reduction = (mask & 4) != 0;
    options.sync_reduction = (mask & 8) != 0;
    ASSERT_OK_AND_ASSIGN(QueryResult result, wh.Execute(query, options));
    ExpectSameRows(result.table, expected);
  }
}

TEST(MarginalDistributionTest, UnpivotThenAggregate) {
  // Graefe et al.'s sufficient-statistics pattern: unpivot the measure
  // columns into (measure-name, value) rows, then aggregate per measure —
  // the marginal distribution of each measure in one query.
  Table t(MakeSchema({{"id", ValueType::kInt64},
                      {"m1", ValueType::kInt64},
                      {"m2", ValueType::kInt64},
                      {"m3", ValueType::kInt64}}));
  t.AddRow({Value(1), Value(10), Value(100), Value::Null()});
  t.AddRow({Value(2), Value(20), Value(200), Value(5)});
  t.AddRow({Value(3), Value(30), Value::Null(), Value(7)});

  ASSERT_OK_AND_ASSIGN(Table unpivoted,
                       Unpivot(t, {"m1", "m2", "m3"}, "measure", "value"));
  // 9 potential rows minus 2 NULLs.
  EXPECT_EQ(unpivoted.num_rows(), 7);
  EXPECT_EQ(unpivoted.schema().ToString(),
            "id:int64, measure:string, value:int64");

  ASSERT_OK_AND_ASSIGN(
      Table marginals,
      HashGroupBy(unpivoted, {"measure"},
                  {AggSpec::Count("n"), AggSpec::Avg("value", "mean"),
                   AggSpec::Min("value", "lo"), AggSpec::Max("value", "hi")}));
  ASSERT_OK_AND_ASSIGN(Table sorted, SortedBy(marginals, {"measure"}));
  ASSERT_EQ(sorted.num_rows(), 3);
  // m1: {10,20,30}.
  EXPECT_EQ(sorted.Get(0, 1), Value(3));
  EXPECT_DOUBLE_EQ(sorted.Get(0, 2).AsDouble(), 20.0);
  // m2: {100,200}.
  EXPECT_EQ(sorted.Get(1, 1), Value(2));
  EXPECT_EQ(sorted.Get(1, 4), Value(200));
  // m3: {5,7}.
  EXPECT_EQ(sorted.Get(2, 1), Value(2));
  EXPECT_EQ(sorted.Get(2, 3), Value(5));
}

TEST(MarginalDistributionTest, UnpivotErrors) {
  const Table t = MakeTinyTable();
  EXPECT_FALSE(Unpivot(t, {}, "n", "v").ok());
  EXPECT_FALSE(Unpivot(t, {"nope"}, "n", "v").ok());
  // v is int64, w is double → mixed measure types rejected.
  EXPECT_FALSE(Unpivot(t, {"v", "w"}, "n", "v2").ok());
}

TEST(MarginalDistributionTest, UnpivotDistributedRoundTrip) {
  // Unpivot at load time, then run a distributed GMDJ over the long form.
  Table t(MakeSchema({{"g", ValueType::kInt64},
                      {"m1", ValueType::kInt64},
                      {"m2", ValueType::kInt64}}));
  for (int64_t i = 0; i < 60; ++i) {
    t.AddRow({Value(i % 5), Value(i), Value(i * 2)});
  }
  ASSERT_OK_AND_ASSIGN(Table long_form,
                       Unpivot(t, {"m1", "m2"}, "measure", "value"));

  Warehouse wh(3);
  ASSERT_OK(wh.LoadByRange("M", long_form, "g", 0, 4, {"g"}));

  GmdjExpr query;
  query.base.source_table = "M";
  query.base.project_cols = {"g", "measure"};
  GmdjOp op;
  op.detail_table = "M";
  GmdjBlock block;
  block.aggs = {AggSpec::Count("n"), AggSpec::Avg("value", "mean")};
  block.theta = And(Eq(BCol("g"), RCol("g")),
                    Eq(BCol("measure"), RCol("measure")));
  op.blocks.push_back(block);
  query.ops.push_back(op);

  ASSERT_OK_AND_ASSIGN(Table expected, wh.ExecuteCentralized(query));
  ASSERT_OK_AND_ASSIGN(QueryResult result,
                       wh.Execute(query, OptimizerOptions::All()));
  ExpectSameRows(result.table, expected);
  EXPECT_EQ(result.table.num_rows(), 10);  // 5 groups × 2 measures
}

}  // namespace
}  // namespace skalla

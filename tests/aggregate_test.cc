#include "agg/aggregate.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "test_util.h"

namespace skalla {
namespace {

TEST(AggSpecTest, Factories) {
  EXPECT_TRUE(AggSpec::Count("c").is_count_star());
  EXPECT_FALSE(AggSpec::CountCol("x", "c").is_count_star());
  EXPECT_EQ(AggSpec::Sum("v", "s").ToString(), "sum(v) -> s");
  EXPECT_EQ(AggSpec::Avg("v", "a").func, AggFunc::kAvg);
}

TEST(AggSpecTest, FromString) {
  ASSERT_OK_AND_ASSIGN(AggFunc f, AggFuncFromString("AVG"));
  EXPECT_EQ(f, AggFunc::kAvg);
  EXPECT_FALSE(AggFuncFromString("median").ok());
}

TEST(AggStateTest, CountStarCountsEverything) {
  AggState state(AggFunc::kCount);
  for (int i = 0; i < 5; ++i) state.Update(Value(1));
  EXPECT_EQ(state.Final(), Value(5));
}

TEST(AggStateTest, CountColumnSkipsNulls) {
  AggState state(AggFunc::kCount);
  state.Update(Value(7));
  state.Update(Value::Null());
  state.Update(Value(9));
  EXPECT_EQ(state.Final(), Value(2));
}

TEST(AggStateTest, SumIntStaysInt) {
  AggState state(AggFunc::kSum);
  state.Update(Value(3));
  state.Update(Value(4));
  const Value v = state.Final();
  EXPECT_TRUE(v.is_int64());
  EXPECT_EQ(v, Value(7));
}

TEST(AggStateTest, SumMixedPromotesToDouble) {
  AggState state(AggFunc::kSum);
  state.Update(Value(3));
  state.Update(Value(0.5));
  EXPECT_TRUE(state.Final().is_double());
  EXPECT_DOUBLE_EQ(state.Final().AsDouble(), 3.5);
}

TEST(AggStateTest, EmptySumIsNull) {
  AggState state(AggFunc::kSum);
  EXPECT_TRUE(state.Final().is_null());
}

TEST(AggStateTest, EmptyCountIsZero) {
  AggState state(AggFunc::kCount);
  EXPECT_EQ(state.Final(), Value(int64_t{0}));
}

TEST(AggStateTest, MinMax) {
  AggState min_state(AggFunc::kMin);
  AggState max_state(AggFunc::kMax);
  for (int64_t v : {5, 2, 9, 2}) {
    min_state.Update(Value(v));
    max_state.Update(Value(v));
  }
  EXPECT_EQ(min_state.Final(), Value(2));
  EXPECT_EQ(max_state.Final(), Value(9));
}

TEST(AggStateTest, MinMaxStrings) {
  AggState min_state(AggFunc::kMin);
  AggState max_state(AggFunc::kMax);
  for (const char* s : {"pear", "apple", "plum"}) {
    min_state.Update(Value(s));
    max_state.Update(Value(s));
  }
  EXPECT_EQ(min_state.Final(), Value("apple"));
  EXPECT_EQ(max_state.Final(), Value("plum"));
}

TEST(AggStateTest, AvgIsRealValued) {
  AggState state(AggFunc::kAvg);
  state.Update(Value(1));
  state.Update(Value(2));
  EXPECT_DOUBLE_EQ(state.Final().AsDouble(), 1.5);
}

TEST(AggStateTest, EmptyAvgIsNull) {
  AggState state(AggFunc::kAvg);
  EXPECT_TRUE(state.Final().is_null());
}

TEST(SubAggregateTest, Arity) {
  EXPECT_EQ(SubArity(AggFunc::kCount), 1);
  EXPECT_EQ(SubArity(AggFunc::kSum), 1);
  EXPECT_EQ(SubArity(AggFunc::kMin), 1);
  EXPECT_EQ(SubArity(AggFunc::kMax), 1);
  EXPECT_EQ(SubArity(AggFunc::kAvg), 2);
  EXPECT_EQ(SubArity(AggFunc::kVar), 3);
  EXPECT_EQ(SubArity(AggFunc::kStdDev), 3);
}

TEST(SubAggregateTest, FieldsAndTypes) {
  const Schema detail({{"v", ValueType::kInt64},
                       {"w", ValueType::kDouble},
                       {"s", ValueType::kString}});
  ASSERT_OK_AND_ASSIGN(Field count_f,
                       FinalFieldFor(AggSpec::Count("c"), detail));
  EXPECT_EQ(count_f.type, ValueType::kInt64);
  ASSERT_OK_AND_ASSIGN(Field sum_f,
                       FinalFieldFor(AggSpec::Sum("w", "s1"), detail));
  EXPECT_EQ(sum_f.type, ValueType::kDouble);
  ASSERT_OK_AND_ASSIGN(Field avg_f,
                       FinalFieldFor(AggSpec::Avg("v", "a1"), detail));
  EXPECT_EQ(avg_f.type, ValueType::kDouble);
  ASSERT_OK_AND_ASSIGN(Field min_f,
                       FinalFieldFor(AggSpec::Min("s", "m1"), detail));
  EXPECT_EQ(min_f.type, ValueType::kString);

  ASSERT_OK_AND_ASSIGN(std::vector<Field> avg_subs,
                       SubFieldsFor(AggSpec::Avg("v", "a1"), detail));
  ASSERT_EQ(avg_subs.size(), 2u);
  EXPECT_EQ(avg_subs[0].name, "a1__sum");
  EXPECT_EQ(avg_subs[1].name, "a1__cnt");
  EXPECT_EQ(avg_subs[1].type, ValueType::kInt64);
}

TEST(SubAggregateTest, SumOverStringRejected) {
  const Schema detail({{"s", ValueType::kString}});
  EXPECT_FALSE(FinalFieldFor(AggSpec::Sum("s", "x"), detail).ok());
  EXPECT_FALSE(SubFieldsFor(AggSpec::Avg("s", "x"), detail).ok());
}

TEST(SubAggregateTest, MissingInputColumnRejected) {
  const Schema detail({{"v", ValueType::kInt64}});
  EXPECT_FALSE(FinalFieldFor(AggSpec::Sum("nope", "x"), detail).ok());
}

// ---------------------------------------------------------------------------
// The Theorem 1 decomposition property: merging any partition of the input
// through sub/super aggregates equals aggregating the whole multiset.
// ---------------------------------------------------------------------------

class DecompositionPropertyTest : public ::testing::TestWithParam<AggFunc> {};

TEST_P(DecompositionPropertyTest, MergeOfPartitionsEqualsWhole) {
  const AggFunc func = GetParam();
  Rng rng(1234 + static_cast<uint64_t>(func));
  for (int trial = 0; trial < 50; ++trial) {
    const int64_t n = rng.Uniform(0, 60);
    std::vector<Value> values;
    for (int64_t i = 0; i < n; ++i) {
      if (rng.Chance(0.15)) {
        values.push_back(Value::Null());
      } else {
        values.push_back(Value(rng.Uniform(-50, 50)));
      }
    }

    // Whole-multiset aggregation.
    AggState whole(func);
    for (const Value& v : values) whole.Update(v);

    // Random partition into up to 5 parts, each aggregated separately and
    // merged through the sub/super value interface.
    const int parts = static_cast<int>(rng.Uniform(1, 5));
    std::vector<AggState> part_states(static_cast<size_t>(parts),
                                      AggState(func));
    for (const Value& v : values) {
      part_states[static_cast<size_t>(rng.Uniform(0, parts - 1))].Update(v);
    }
    std::vector<Value> acc(static_cast<size_t>(SubArity(func)));
    InitSubValues(func, acc.data());
    for (const AggState& state : part_states) {
      std::vector<Value> sub;
      state.EmitSub(&sub);
      MergeSubValues(func, sub.data(), acc.data());
    }
    const Value merged = FinalizeSubValues(func, acc.data());
    const Value expected = whole.Final();

    if (expected.is_null()) {
      EXPECT_TRUE(merged.is_null()) << AggFuncToString(func);
    } else {
      EXPECT_EQ(merged, expected)
          << AggFuncToString(func) << " trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFunctions, DecompositionPropertyTest,
                         ::testing::Values(AggFunc::kCount, AggFunc::kSum,
                                           AggFunc::kMin, AggFunc::kMax,
                                           AggFunc::kAvg, AggFunc::kVar,
                                           AggFunc::kStdDev),
                         [](const ::testing::TestParamInfo<AggFunc>& info) {
                           return AggFuncToString(info.param);
                         });

TEST(SubAggregateTest, InitValuesAreIdentities) {
  for (AggFunc func : {AggFunc::kCount, AggFunc::kSum, AggFunc::kMin,
                       AggFunc::kMax, AggFunc::kAvg, AggFunc::kVar,
                       AggFunc::kStdDev}) {
    std::vector<Value> identity(static_cast<size_t>(SubArity(func)));
    InitSubValues(func, identity.data());
    // Merging a sub-result into the identity must reproduce it.
    AggState state(func);
    state.Update(Value(3));
    state.Update(Value(5));
    std::vector<Value> sub;
    state.EmitSub(&sub);
    std::vector<Value> acc = identity;
    MergeSubValues(func, sub.data(), acc.data());
    EXPECT_EQ(FinalizeSubValues(func, acc.data()), state.Final())
        << AggFuncToString(func);
  }
}

}  // namespace
}  // namespace skalla

#include "engine/operators.h"

#include <gtest/gtest.h>

#include "expr/parser.h"
#include "test_util.h"

namespace skalla {
namespace {

ExprPtr MustParse(const std::string& text) {
  auto result = ParseExpr(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return *result;
}

TEST(ProjectTest, KeepsColumnsInRequestedOrder) {
  const Table t = MakeTinyTable();
  ASSERT_OK_AND_ASSIGN(Table p, Project(t, {"v", "g"}));
  EXPECT_EQ(p.schema().ToString(), "v:int64, g:int64");
  EXPECT_EQ(p.num_rows(), t.num_rows());
  EXPECT_EQ(p.Get(0, 0), Value(5));
  EXPECT_EQ(p.Get(0, 1), Value(1));
}

TEST(ProjectTest, MissingColumnFails) {
  EXPECT_FALSE(Project(MakeTinyTable(), {"nope"}).ok());
}

TEST(FilterTest, KeepsMatchingRows) {
  ASSERT_OK_AND_ASSIGN(Table f, Filter(MakeTinyTable(), MustParse("v >= 7")));
  EXPECT_EQ(f.num_rows(), 5);
  for (int64_t r = 0; r < f.num_rows(); ++r) {
    EXPECT_GE(f.Get(r, 2).AsInt64(), 7);
  }
}

TEST(FilterTest, NullPredicateRowsDropped) {
  Table t(MakeSchema({{"x", ValueType::kInt64}}));
  t.AddRow({Value(1)});
  t.AddRow({Value::Null()});
  ASSERT_OK_AND_ASSIGN(Table f, Filter(t, MustParse("x > 0")));
  EXPECT_EQ(f.num_rows(), 1);
}

TEST(DistinctTest, RemovesDuplicates) {
  Table t(MakeSchema({{"a", ValueType::kInt64}, {"b", ValueType::kString}}));
  t.AddRow({Value(1), Value("x")});
  t.AddRow({Value(1), Value("x")});
  t.AddRow({Value(1), Value("y")});
  t.AddRow({Value::Null(), Value("x")});
  t.AddRow({Value::Null(), Value("x")});
  const Table d = Distinct(t);
  EXPECT_EQ(d.num_rows(), 3);  // NULLs group together for distinct
}

TEST(DistinctProjectTest, MatchesProjectThenDistinct) {
  const Table t = MakeTinyTable();
  ASSERT_OK_AND_ASSIGN(Table a, DistinctProject(t, {"g", "h"}));
  ASSERT_OK_AND_ASSIGN(Table projected, Project(t, {"g", "h"}));
  const Table b = Distinct(projected);
  ExpectSameRows(a, b);
  EXPECT_EQ(a.num_rows(), 7);
}

TEST(UnionAllTest, ConcatenatesMultisets) {
  const Table t = MakeTinyTable();
  ASSERT_OK_AND_ASSIGN(Table u, UnionAll({&t, &t, &t}));
  EXPECT_EQ(u.num_rows(), 36);
}

TEST(UnionAllTest, EmptyInputGivesEmptyTable) {
  ASSERT_OK_AND_ASSIGN(Table u, UnionAll({}));
  EXPECT_EQ(u.num_rows(), 0);
}

TEST(UnionAllTest, IncompatibleSchemasRejected) {
  const Table a = MakeTinyTable();
  Table b(MakeSchema({{"x", ValueType::kInt64}}));
  EXPECT_FALSE(UnionAll({&a, &b}).ok());
}

TEST(SortedByTest, SortsWithoutMutatingInput) {
  const Table t = MakeTinyTable();
  ASSERT_OK_AND_ASSIGN(Table sorted, SortedBy(t, {"v"}));
  EXPECT_EQ(t.Get(0, 2), Value(5));  // input unchanged
  for (int64_t i = 1; i < sorted.num_rows(); ++i) {
    EXPECT_LE(sorted.Get(i - 1, 2).Compare(sorted.Get(i, 2)), 0);
  }
}

TEST(HashGroupByTest, CountSumAvgPerGroup) {
  const Table t = MakeTinyTable();
  ASSERT_OK_AND_ASSIGN(
      Table g, HashGroupBy(t, {"g"},
                           {AggSpec::Count("cnt"), AggSpec::Sum("v", "sv"),
                            AggSpec::Avg("v", "av")}));
  ASSERT_OK_AND_ASSIGN(Table sorted, SortedBy(g, {"g"}));
  ASSERT_EQ(sorted.num_rows(), 3);
  // Group 1: v ∈ {5,7,9}.
  EXPECT_EQ(sorted.Get(0, 1), Value(3));
  EXPECT_EQ(sorted.Get(0, 2), Value(21));
  EXPECT_DOUBLE_EQ(sorted.Get(0, 3).AsDouble(), 7.0);
  // Group 2: v ∈ {4,6,8,2}.
  EXPECT_EQ(sorted.Get(1, 1), Value(4));
  EXPECT_EQ(sorted.Get(1, 2), Value(20));
  // Group 3: v ∈ {1,3,5,7,9}.
  EXPECT_EQ(sorted.Get(2, 1), Value(5));
  EXPECT_EQ(sorted.Get(2, 2), Value(25));
}

TEST(HashGroupByTest, MultiColumnGroups) {
  const Table t = MakeTinyTable();
  ASSERT_OK_AND_ASSIGN(Table g,
                       HashGroupBy(t, {"g", "h"}, {AggSpec::Count("cnt")}));
  EXPECT_EQ(g.num_rows(), 7);
}

TEST(HashGroupByTest, MinMaxOnStrings) {
  const Table t = MakeTinyTable();
  ASSERT_OK_AND_ASSIGN(
      Table g,
      HashGroupBy(t, {"g"}, {AggSpec::Min("s", "lo"), AggSpec::Max("s", "hi")}));
  ASSERT_OK_AND_ASSIGN(Table sorted, SortedBy(g, {"g"}));
  EXPECT_EQ(sorted.Get(0, 1), Value("a"));
  EXPECT_EQ(sorted.Get(0, 2), Value("b"));
}

TEST(ExtendTest, AddsComputedColumn) {
  const Table t = MakeTinyTable();
  ASSERT_OK_AND_ASSIGN(Table e, Extend(t, "v2", MustParse("v * 2")));
  EXPECT_EQ(e.schema().num_fields(), 6);
  EXPECT_EQ(e.Get(0, 5), Value(10));
}

TEST(LimitTest, TruncatesAndClamps) {
  const Table t = MakeTinyTable();
  EXPECT_EQ(Limit(t, 5).num_rows(), 5);
  EXPECT_EQ(Limit(t, 100).num_rows(), 12);
  EXPECT_EQ(Limit(t, 0).num_rows(), 0);
}

}  // namespace
}  // namespace skalla

// "Our approach and results are more generally applicable to distributed
// data warehouses ... e.g., with heterogeneous data marts distributed
// across an enterprise" (paper Sect. 1.1). This example models that
// setting: regional marts each hold their partition of two fact relations
// — Sales and SupportTickets — and a cross-relation correlated query runs
// through automatic planning (ExecuteAuto) with the full execution report.
//
//   ./example_enterprise_marts

#include <iostream>

#include "common/random.h"
#include "engine/operators.h"
#include "expr/parser.h"
#include "skalla/report.h"
#include "skalla/warehouse.h"

namespace {

using namespace skalla;

ExprPtr MustParse(const std::string& text) {
  auto result = ParseExpr(text);
  if (!result.ok()) {
    std::cerr << "parse error: " << result.status() << "\n";
    std::abort();
  }
  return *result;
}

constexpr int kRegions = 6;

Table MakeSales(Rng* rng, int64_t rows) {
  Table t(MakeSchema({{"RegionId", ValueType::kInt64},
                      {"StoreId", ValueType::kInt64},
                      {"ProductId", ValueType::kInt64},
                      {"Units", ValueType::kInt64},
                      {"Revenue", ValueType::kInt64}}));
  for (int64_t i = 0; i < rows; ++i) {
    const int64_t region = rng->Uniform(0, kRegions - 1);
    const int64_t units = rng->Uniform(1, 20);
    t.AddRow({Value(region), Value(region * 100 + rng->Uniform(0, 40)),
              Value(rng->Uniform(0, 500)), Value(units),
              Value(units * rng->Uniform(5, 120))});
  }
  return t;
}

Table MakeTickets(Rng* rng, int64_t rows) {
  Table t(MakeSchema({{"RegionId", ValueType::kInt64},
                      {"Severity", ValueType::kInt64},
                      {"HoursOpen", ValueType::kInt64}}));
  for (int64_t i = 0; i < rows; ++i) {
    t.AddRow({Value(rng->Uniform(0, kRegions - 1)),
              Value(rng->Zipf(5, 1.0) + 1), Value(rng->Uniform(1, 400))});
  }
  return t;
}

int Run() {
  Rng rng(99);
  Warehouse warehouse(kRegions);  // one mart per region
  Status s1 = warehouse.LoadByRange("Sales", MakeSales(&rng, 60000),
                                    "RegionId", 0, kRegions - 1,
                                    {"RegionId", "StoreId"});
  Status s2 = warehouse.LoadByRange("Tickets", MakeTickets(&rng, 15000),
                                    "RegionId", 0, kRegions - 1,
                                    {"RegionId"});
  if (!s1.ok() || !s2.ok()) {
    std::cerr << s1 << " / " << s2 << "\n";
    return 1;
  }

  // Per region: sales volume and revenue from the Sales mart, then — from
  // the Tickets mart — the number of severe tickets and the worst backlog,
  // restricted to regions whose revenue-per-unit is above 50.
  GmdjExpr query;
  query.base.source_table = "Sales";
  query.base.project_cols = {"RegionId"};

  GmdjOp sales;
  sales.detail_table = "Sales";
  GmdjBlock sales_block;
  sales_block.aggs = {AggSpec::Count("sales"), AggSpec::Sum("Units", "units"),
                      AggSpec::Sum("Revenue", "revenue")};
  sales_block.theta = MustParse("B.RegionId = R.RegionId");
  sales.blocks.push_back(sales_block);
  query.ops.push_back(sales);

  GmdjOp tickets;
  tickets.detail_table = "Tickets";
  GmdjBlock ticket_block;
  ticket_block.aggs = {AggSpec::Count("severe_tickets"),
                       AggSpec::Max("HoursOpen", "worst_backlog")};
  ticket_block.theta = MustParse(
      "B.RegionId = R.RegionId && R.Severity >= 4 && "
      "B.revenue / B.units > 50");
  tickets.blocks.push_back(ticket_block);
  query.ops.push_back(tickets);

  query.order_by = {{"revenue", true}};

  int fan_in = -1;
  auto result = warehouse.ExecuteAuto(query, &fan_in);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }
  std::cout << "architecture chosen by the cost model: "
            << (fan_in == 0 ? "flat coordinator"
                            : "aggregation tree, fan-in " +
                                  std::to_string(fan_in))
            << "\n\n";
  std::cout << result->table.ToString() << "\n";
  std::cout << FormatExecutionReport(*result);

  auto reference = warehouse.ExecuteCentralized(query);
  if (!reference.ok()) {
    std::cerr << reference.status() << "\n";
    return 1;
  }
  std::cout << "\nmatches centralized evaluation: "
            << (result->table.SameRowMultiset(*reference) ? "yes" : "NO")
            << "\n";
  return 0;
}

}  // namespace

int main() { return Run(); }

// Result-cache correctness (ISSUE 6): hit/miss accounting, invalidation on
// table mutation — including mutate-while-query races under TSan — and
// prefix-sharing GMDJ chain reuse, every payload cross-checked against
// uncached evaluation (DESIGN.md invariant 10: cached and uncached results
// are byte-identical).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "server/server.h"
#include "storage/csv.h"
#include "test_util.h"

namespace skalla {
namespace server {
namespace {

constexpr const char* kShortChain =
    "SELECT CustKey, COUNT(*) AS cnt FROM TPCR GROUP BY CustKey";
// The same chain extended by one correlated operator: its plan's first
// round is byte-for-byte the short chain's plan, so the prefix cache can
// seed it with the short chain's base-result structure.
constexpr const char* kLongChain =
    "SELECT CustKey, COUNT(*) AS cnt FROM TPCR GROUP BY CustKey "
    "EXTEND SUM(Quantity) AS sq WHERE Quantity >= cnt";

std::unique_ptr<Server> MakeLoadedServer(ServerOptions opts,
                                         int64_t rows = 3000) {
  auto srv = std::make_unique<Server>(4, opts);
  Client admin(srv.get());
  auto loaded = admin.Call("LOAD tpcr " + std::to_string(rows));
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
  return srv;
}

// A MUTATE row that some site's φ provably admits: a copy of the loaded
// relation's first row, CSV-encoded in column order.
std::string ValidMutateRow(Server* srv) {
  auto table = srv->warehouse().central_catalog().GetTable("TPCR");
  EXPECT_TRUE(table.ok());
  Table one((*table)->schema_ptr());
  one.AddRow((*table)->row(0));
  const std::string csv = CsvToString(one);  // header line + one row
  const size_t newline = csv.find('\n');
  std::string row = csv.substr(newline + 1);
  if (!row.empty() && row.back() == '\n') row.pop_back();
  return row;
}

TEST(ResultCacheServingTest, HitMissAccountingAndByteIdentity) {
  auto srv = MakeLoadedServer(ServerOptions{});
  Client client(srv.get());

  ASSERT_OK_AND_ASSIGN(std::string first,
                       client.Call(std::string("QUERY ") + kShortChain));
  ServerStats stats = srv->stats();
  EXPECT_EQ(stats.cache.hits, 0u);
  EXPECT_EQ(stats.cache.misses, 1u);
  EXPECT_EQ(stats.cache.stores, 1u);

  ASSERT_OK_AND_ASSIGN(std::string second,
                       client.Call(std::string("QUERY ") + kShortChain));
  stats = srv->stats();
  EXPECT_EQ(stats.cache.hits, 1u);
  EXPECT_EQ(stats.cache.misses, 1u);
  EXPECT_EQ(second, first);  // the cached payload is byte-identical

  // NOCACHE bypasses the cache in both directions — and still matches.
  ASSERT_OK_AND_ASSIGN(
      std::string uncached,
      client.Call(std::string("QUERY NOCACHE ") + kShortChain));
  stats = srv->stats();
  EXPECT_EQ(stats.cache.hits, 1u);
  EXPECT_EQ(stats.cache.misses, 1u);
  EXPECT_EQ(stats.cache.stores, 1u);
  EXPECT_EQ(uncached, first);
}

TEST(ResultCacheServingTest, TextualVariantsShareOneEntry) {
  auto srv = MakeLoadedServer(ServerOptions{});
  Client client(srv.get());
  ASSERT_OK_AND_ASSIGN(std::string first,
                       client.Call(std::string("QUERY ") + kShortChain));
  // Same query, different whitespace: the canonical key normalizes it.
  ASSERT_OK_AND_ASSIGN(
      std::string second,
      client.Call("QUERY SELECT   CustKey ,  COUNT( * ) AS cnt "
                  "FROM TPCR   GROUP BY CustKey"));
  EXPECT_EQ(second, first);
  EXPECT_EQ(srv->stats().cache.hits, 1u);
}

TEST(ResultCacheServingTest, MutationInvalidatesAndResultReflectsIt) {
  auto srv = MakeLoadedServer(ServerOptions{});
  Client client(srv.get());
  const std::string query = std::string("QUERY ") + kShortChain;

  ASSERT_OK_AND_ASSIGN(std::string before, client.Call(query));
  ASSERT_GE(srv->stats().cache_result_entries, 1u);

  const std::string row = ValidMutateRow(srv.get());
  ASSERT_OK_AND_ASSIGN(std::string mutated,
                       client.Call("MUTATE TPCR APPEND " + row));
  EXPECT_NE(mutated.find("appended"), std::string::npos);
  ServerStats stats = srv->stats();
  EXPECT_EQ(stats.mutations, 1u);
  EXPECT_GT(stats.cache.invalidations, 0u);
  EXPECT_EQ(stats.cache_result_entries, 0u);  // eagerly dropped

  // The re-executed result must differ (one group grew) and must match a
  // fresh uncached server that applied the same mutation.
  ASSERT_OK_AND_ASSIGN(std::string after, client.Call(query));
  EXPECT_NE(after, before);

  ServerOptions uncached_opts;
  uncached_opts.enable_result_cache = false;
  uncached_opts.enable_prefix_reuse = false;
  auto reference = MakeLoadedServer(uncached_opts);
  Client ref_client(reference.get());
  ASSERT_OK(ref_client.Call("MUTATE TPCR APPEND " + row).status());
  ASSERT_OK_AND_ASSIGN(std::string expected, ref_client.Call(query));
  EXPECT_EQ(after, expected);
}

TEST(ResultCacheServingTest, RejectsRowNoPartitionAdmits) {
  auto srv = MakeLoadedServer(ServerOptions{});
  Client client(srv.get());
  // NationKey 9999 is outside every site's φ range: the append must be
  // refused (silently placing it would break the Sect.-4 optimizations).
  std::string row = ValidMutateRow(srv.get());
  // NationKey is the 5th CSV field.
  size_t pos = 0;
  for (int commas = 0; commas < 4; ++commas) pos = row.find(',', pos) + 1;
  const size_t end = row.find(',', pos);
  row.replace(pos, end - pos, "9999");
  auto reply = client.Call("MUTATE TPCR APPEND " + row);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(srv->stats().mutations, 0u);
}

TEST(ResultCacheServingTest, PrefixSharingChainReuse) {
  // Optimizer off: each EXTEND is its own round, so the long chain's
  // round-0 prefix is exactly the short chain's plan.
  ServerOptions opts;
  opts.optimize = false;
  auto srv = MakeLoadedServer(opts);
  Client client(srv.get());

  ASSERT_OK(client.Call(std::string("QUERY ") + kShortChain).status());
  ServerStats stats = srv->stats();
  EXPECT_GE(stats.cache_prefix_entries, 1u);
  EXPECT_EQ(stats.cache.prefix_hits, 0u);

  ASSERT_OK_AND_ASSIGN(std::string shared,
                       client.Call(std::string("QUERY ") + kLongChain));
  stats = srv->stats();
  EXPECT_GE(stats.cache.prefix_hits, 1u);

  // Cross-check against fully uncached evaluation on an identical load.
  ServerOptions uncached_opts;
  uncached_opts.optimize = false;
  uncached_opts.enable_result_cache = false;
  uncached_opts.enable_prefix_reuse = false;
  auto reference = MakeLoadedServer(uncached_opts);
  Client ref_client(reference.get());
  ASSERT_OK_AND_ASSIGN(std::string expected,
                       ref_client.Call(std::string("QUERY ") + kLongChain));
  EXPECT_EQ(shared, expected);

  // A mutation drops the prefixes too.
  const std::string row = ValidMutateRow(srv.get());
  ASSERT_OK(client.Call("MUTATE TPCR APPEND " + row).status());
  EXPECT_EQ(srv->stats().cache_prefix_entries, 0u);
}

TEST(ResultCacheServingTest, EvictionBoundsTheCache) {
  ServerOptions opts;
  opts.cache_max_entries = 2;
  auto srv = MakeLoadedServer(opts, /*rows=*/1200);
  Client client(srv.get());
  const char* grouping[] = {"CustKey", "ClerkKey", "NationKey", "RegionKey"};
  for (const char* col : grouping) {
    std::string q = "QUERY SELECT ";
    q += col;
    q += ", COUNT(*) AS cnt FROM TPCR GROUP BY ";
    q += col;
    ASSERT_OK(client.Call(q).status());
  }
  ServerStats stats = srv->stats();
  EXPECT_LE(stats.cache_result_entries, 2u);
  EXPECT_GT(stats.cache.evictions, 0u);
}

// The TSan target: queries racing mutations through the serving layer.
// Shared-vs-exclusive locking plus copy-on-write tables must keep every
// response well-formed, and the final state must equal a serial replay.
TEST(ResultCacheServingTest, MutateWhileQueryRaces) {
  auto srv = MakeLoadedServer(ServerOptions{}, /*rows=*/1500);
  const std::string row = ValidMutateRow(srv.get());
  constexpr int kQueryThreads = 3;
  constexpr int kQueriesEach = 5;
  constexpr int kMutations = 6;

  std::vector<std::string> failures(kQueryThreads + 1);
  std::vector<std::thread> threads;
  for (int t = 0; t < kQueryThreads; ++t) {
    threads.emplace_back([&, t]() {
      Client client(srv.get());
      const std::string query =
          std::string("QUERY ") + (t % 2 == 0 ? kShortChain : kLongChain);
      for (int i = 0; i < kQueriesEach; ++i) {
        auto reply = client.Call(query);
        if (!reply.ok()) {
          failures[t] = reply.status().ToString();
          return;
        }
      }
    });
  }
  threads.emplace_back([&]() {
    Client client(srv.get());
    for (int i = 0; i < kMutations; ++i) {
      auto reply = client.Call("MUTATE TPCR APPEND " + row);
      if (!reply.ok()) {
        failures[kQueryThreads] = reply.status().ToString();
        return;
      }
      client.Call("STATS").status();  // poke the counters concurrently too
    }
  });
  for (std::thread& t : threads) t.join();
  for (const std::string& failure : failures) {
    EXPECT_TRUE(failure.empty()) << failure;
  }

  // Serial replay: same load, same kMutations appends, uncached query.
  Client client(srv.get());
  ASSERT_OK_AND_ASSIGN(
      std::string final_payload,
      client.Call(std::string("QUERY NOCACHE ") + kShortChain));
  ServerOptions uncached_opts;
  uncached_opts.enable_result_cache = false;
  uncached_opts.enable_prefix_reuse = false;
  auto reference = MakeLoadedServer(uncached_opts, /*rows=*/1500);
  Client ref_client(reference.get());
  for (int i = 0; i < kMutations; ++i) {
    ASSERT_OK(ref_client.Call("MUTATE TPCR APPEND " + row).status());
  }
  ASSERT_OK_AND_ASSIGN(std::string expected,
                       ref_client.Call(std::string("QUERY ") + kShortChain));
  EXPECT_EQ(final_payload, expected);
}

}  // namespace
}  // namespace server
}  // namespace skalla

file(REMOVE_RECURSE
  "CMakeFiles/skalla_flow.dir/flowgen.cc.o"
  "CMakeFiles/skalla_flow.dir/flowgen.cc.o.d"
  "libskalla_flow.a"
  "libskalla_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skalla_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// The paper allows the detail relation to differ across rounds ("we use
// R_k to denote the detail relation at round k ... the detail relation may
// or may not be the same across all rounds"). These tests drive GMDJ
// chains whose operators aggregate over *different* relations, plus the
// heterogeneous-site (straggler) cost model.

#include <gtest/gtest.h>

#include "common/random.h"
#include "expr/parser.h"
#include "flow/flowgen.h"
#include "skalla/queries.h"
#include "skalla/warehouse.h"
#include "test_util.h"
#include "tpc/dbgen.h"

namespace skalla {
namespace {

ExprPtr MustParse(const std::string& text) {
  auto result = ParseExpr(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return *result;
}

/// An Alerts relation keyed on RouterId, partitionable alongside Flow.
Table MakeAlerts(int64_t rows, int64_t num_routers, uint64_t seed) {
  Rng rng(seed);
  Table t(MakeSchema({{"RouterId", ValueType::kInt64},
                      {"Severity", ValueType::kInt64},
                      {"DurationSec", ValueType::kInt64}}));
  for (int64_t i = 0; i < rows; ++i) {
    t.AddRow({Value(rng.Uniform(0, num_routers - 1)),
              Value(rng.Uniform(1, 5)), Value(rng.Uniform(1, 3600))});
  }
  return t;
}

class MultiRelationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    warehouse_ = std::make_unique<Warehouse>(4);
    FlowConfig config;
    config.num_rows = 3000;
    config.num_routers = 4;
    config.num_as = 40;
    Table flows = GenerateFlows(config);
    ASSERT_OK(warehouse_->LoadByRange("Flow", flows, "RouterId", 0, 3,
                                      {"RouterId", "SourceAS"}));
    Table alerts = MakeAlerts(800, 4, 77);
    ASSERT_OK(warehouse_->LoadByRange("Alerts", alerts, "RouterId", 0, 3,
                                      {"RouterId"}));
  }

  /// Per router: traffic stats from Flow, then severe-alert stats from
  /// Alerts, correlated with the traffic average.
  GmdjExpr CrossRelationQuery() {
    GmdjExpr query;
    query.base.source_table = "Flow";
    query.base.project_cols = {"RouterId"};

    GmdjOp traffic;
    traffic.detail_table = "Flow";
    GmdjBlock t_block;
    t_block.aggs = {AggSpec::Count("flows"),
                    AggSpec::Avg("NumBytes", "avg_bytes")};
    t_block.theta = MustParse("B.RouterId = R.RouterId");
    traffic.blocks.push_back(t_block);
    query.ops.push_back(traffic);

    GmdjOp alerts;
    alerts.detail_table = "Alerts";
    GmdjBlock a_block;
    a_block.aggs = {AggSpec::Count("severe_alerts"),
                    AggSpec::Max("DurationSec", "longest_alert")};
    a_block.theta = MustParse("B.RouterId = R.RouterId && R.Severity >= 4");
    alerts.blocks.push_back(a_block);
    query.ops.push_back(alerts);
    return query;
  }

  std::unique_ptr<Warehouse> warehouse_;
};

TEST_F(MultiRelationTest, CrossRelationChainMatchesCentralized) {
  const GmdjExpr query = CrossRelationQuery();
  ASSERT_OK_AND_ASSIGN(Table expected,
                       warehouse_->ExecuteCentralized(query));
  for (int mask = 0; mask < 32; ++mask) {
    OptimizerOptions options;
    options.coalesce = (mask & 1) != 0;
    options.independent_group_reduction = (mask & 2) != 0;
    options.aware_group_reduction = (mask & 4) != 0;
    options.sync_reduction = (mask & 8) != 0;
    options.column_pruning = (mask & 16) != 0;
    SCOPED_TRACE("mask " + std::to_string(mask));
    ASSERT_OK_AND_ASSIGN(QueryResult result,
                         warehouse_->Execute(query, options));
    ExpectSameRows(result.table, expected);
  }
}

TEST_F(MultiRelationTest, SyncReductionFusesAcrossRelations) {
  // RouterId is a partition attribute of BOTH relations (declared ranges
  // per site), so Cor. 1 fuses the cross-relation chain into one round.
  OptimizerOptions options;
  options.sync_reduction = true;
  ASSERT_OK_AND_ASSIGN(DistributedPlan plan,
                       warehouse_->Plan(CrossRelationQuery(), options));
  ASSERT_EQ(plan.rounds.size(), 1u);
  EXPECT_EQ(plan.rounds[0].ops.size(), 2u);
  EXPECT_TRUE(plan.fuse_base);

  ASSERT_OK_AND_ASSIGN(QueryResult result,
                       warehouse_->ExecutePlan(plan));
  EXPECT_EQ(result.metrics.NumRounds(), 1);
  ASSERT_OK_AND_ASSIGN(Table expected,
                       warehouse_->ExecuteCentralized(CrossRelationQuery()));
  ExpectSameRows(result.table, expected);
}

TEST_F(MultiRelationTest, CoalescingDoesNotCrossRelations) {
  // Even with an uncorrelated second operator, different detail relations
  // must stay separate operators.
  GmdjExpr query = CrossRelationQuery();
  // Remove the correlation-free dependency: alerts θ without references to
  // traffic outputs (it already has none) — still must not coalesce.
  Optimizer optimizer;
  const GmdjExpr coalesced = optimizer.Coalesce(query);
  EXPECT_EQ(coalesced.ops.size(), 2u);
}

TEST_F(MultiRelationTest, MissingRelationAtSitesFails) {
  GmdjExpr query = CrossRelationQuery();
  query.ops[1].detail_table = "Nowhere";
  auto result = warehouse_->Execute(query, OptimizerOptions::None());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StragglerTest, SlowSiteGatesTheRound) {
  TpcConfig config;
  config.num_rows = 8000;
  config.num_customers = 500;
  Table tpcr = GenerateTpcr(config);

  Warehouse uniform(4);
  ASSERT_OK(uniform.LoadByRange("TPCR", tpcr, "NationKey", 0, 24));
  Warehouse skewed(4);
  ASSERT_OK(skewed.LoadByRange("TPCR", tpcr, "NationKey", 0, 24));
  skewed.site(2).set_compute_scale(0.05);  // a 20x-slower machine

  const GmdjExpr query = queries::GroupReductionQuery("CustKey");
  ASSERT_OK_AND_ASSIGN(QueryResult fast,
                       uniform.Execute(query, OptimizerOptions::None()));
  ASSERT_OK_AND_ASSIGN(QueryResult slow,
                       skewed.Execute(query, OptimizerOptions::None()));
  ExpectSameRows(slow.table, fast.table);
  // Sites run in parallel, so each round charges its slowest site. Site
  // times are scaled *wall clock*: comparing two separate executions is
  // meaningless on a loaded CI box, so compare the straggler against its
  // peers measured within the same rounds instead.
  std::vector<double> per_site(4, 0.0);
  for (const RoundMetrics& rm : slow.metrics.rounds) {
    for (size_t p = 0; p < rm.site_seconds.size() && p < 4; ++p) {
      per_site[p] += rm.site_seconds[p];
    }
  }
  double peer_max = 0;
  for (int s = 0; s < 4; ++s) {
    if (s != 2) peer_max = std::max(peer_max, per_site[s]);
  }
  ASSERT_GT(peer_max, 0.0);
  EXPECT_GT(per_site[2], 3.0 * peer_max);
  // Traffic is unaffected.
  EXPECT_EQ(slow.metrics.TotalBytes(), fast.metrics.TotalBytes());
}

}  // namespace
}  // namespace skalla

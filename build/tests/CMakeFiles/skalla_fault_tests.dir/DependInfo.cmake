
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fault_injection_test.cc" "tests/CMakeFiles/skalla_fault_tests.dir/fault_injection_test.cc.o" "gcc" "tests/CMakeFiles/skalla_fault_tests.dir/fault_injection_test.cc.o.d"
  "/root/repo/tests/test_util.cc" "tests/CMakeFiles/skalla_fault_tests.dir/test_util.cc.o" "gcc" "tests/CMakeFiles/skalla_fault_tests.dir/test_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/skalla/CMakeFiles/skalla.dir/DependInfo.cmake"
  "/root/repo/build/src/cube/CMakeFiles/skalla_cube.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/skalla_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/skalla_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/skalla_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/gmdj/CMakeFiles/skalla_gmdj.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/skalla_net.dir/DependInfo.cmake"
  "/root/repo/build/src/tpc/CMakeFiles/skalla_tpc.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/skalla_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/skalla_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/skalla_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/agg/CMakeFiles/skalla_agg.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/skalla_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/skalla_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

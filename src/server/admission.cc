#include "server/admission.h"

#include <algorithm>
#include <chrono>

namespace skalla {
namespace server {

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {
  options_.max_concurrent = std::max(1, options_.max_concurrent);
}

Status AdmissionController::Acquire(uint64_t ticket, int priority,
                                    double deadline_sec) {
  std::unique_lock<std::mutex> lock(mu_);
  // Fast path: a free slot and nobody queued ahead.
  if (running_ < options_.max_concurrent && queue_.empty()) {
    ++running_;
    return Status::OK();
  }
  if (queue_.size() >= options_.max_queue) {
    return Status::Unavailable(
        "admission queue is full (" + std::to_string(options_.max_queue) +
        " waiting queries)");
  }

  Waiter waiter;
  waiter.ticket = ticket;
  const QueueKey key{-priority, next_seq_++};
  queue_.emplace(key, &waiter);

  const bool has_deadline = deadline_sec > 0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(has_deadline ? deadline_sec : 0));

  auto ready = [this, &waiter, key]() {
    return waiter.cancelled || (running_ < options_.max_concurrent &&
                                queue_.begin()->first == key);
  };
  while (!ready()) {
    if (has_deadline) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
          !ready()) {
        queue_.erase(key);
        // Another waiter may now be at the front of a grantable queue.
        cv_.notify_all();
        return Status::DeadlineExceeded(
            "query waited in the admission queue past its deadline");
      }
    } else {
      cv_.wait(lock);
    }
  }
  queue_.erase(key);
  if (waiter.cancelled) {
    cv_.notify_all();
    return Status::Cancelled("query cancelled while queued for admission");
  }
  ++running_;
  // The next-best waiter might also fit (max_concurrent > 1).
  cv_.notify_all();
  return Status::OK();
}

void AdmissionController::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --running_;
  }
  cv_.notify_all();
}

bool AdmissionController::CancelQueued(uint64_t ticket) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, waiter] : queue_) {
    if (waiter->ticket == ticket && !waiter->cancelled) {
      waiter->cancelled = true;
      cv_.notify_all();
      return true;
    }
  }
  return false;
}

int AdmissionController::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

size_t AdmissionController::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace server
}  // namespace skalla

#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

#include "obs/trace.h"

namespace skalla {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }

void SetLogLevel(LogLevel level) { g_log_level.store(static_cast<int>(level)); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), enabled_(level >= GetLogLevel()) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level) << " t" << obs::CurrentThreadIndex()
            << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    // One mutex-guarded write per statement so site threads logging
    // concurrently can't interleave characters of a line.
    stream_ << '\n';
    const std::string line = stream_.str();
    static std::mutex* mu = new std::mutex();  // leaked: usable at exit
    std::lock_guard<std::mutex> lock(*mu);
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace skalla

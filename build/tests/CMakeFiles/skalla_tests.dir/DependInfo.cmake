
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/aggregate_test.cc" "tests/CMakeFiles/skalla_tests.dir/aggregate_test.cc.o" "gcc" "tests/CMakeFiles/skalla_tests.dir/aggregate_test.cc.o.d"
  "/root/repo/tests/analyzer_test.cc" "tests/CMakeFiles/skalla_tests.dir/analyzer_test.cc.o" "gcc" "tests/CMakeFiles/skalla_tests.dir/analyzer_test.cc.o.d"
  "/root/repo/tests/column_pruning_test.cc" "tests/CMakeFiles/skalla_tests.dir/column_pruning_test.cc.o" "gcc" "tests/CMakeFiles/skalla_tests.dir/column_pruning_test.cc.o.d"
  "/root/repo/tests/concurrent_queries_test.cc" "tests/CMakeFiles/skalla_tests.dir/concurrent_queries_test.cc.o" "gcc" "tests/CMakeFiles/skalla_tests.dir/concurrent_queries_test.cc.o.d"
  "/root/repo/tests/cost_model_test.cc" "tests/CMakeFiles/skalla_tests.dir/cost_model_test.cc.o" "gcc" "tests/CMakeFiles/skalla_tests.dir/cost_model_test.cc.o.d"
  "/root/repo/tests/cube_test.cc" "tests/CMakeFiles/skalla_tests.dir/cube_test.cc.o" "gcc" "tests/CMakeFiles/skalla_tests.dir/cube_test.cc.o.d"
  "/root/repo/tests/distributed_test.cc" "tests/CMakeFiles/skalla_tests.dir/distributed_test.cc.o" "gcc" "tests/CMakeFiles/skalla_tests.dir/distributed_test.cc.o.d"
  "/root/repo/tests/evaluator_test.cc" "tests/CMakeFiles/skalla_tests.dir/evaluator_test.cc.o" "gcc" "tests/CMakeFiles/skalla_tests.dir/evaluator_test.cc.o.d"
  "/root/repo/tests/execute_auto_test.cc" "tests/CMakeFiles/skalla_tests.dir/execute_auto_test.cc.o" "gcc" "tests/CMakeFiles/skalla_tests.dir/execute_auto_test.cc.o.d"
  "/root/repo/tests/fuzz_property_test.cc" "tests/CMakeFiles/skalla_tests.dir/fuzz_property_test.cc.o" "gcc" "tests/CMakeFiles/skalla_tests.dir/fuzz_property_test.cc.o.d"
  "/root/repo/tests/generators_test.cc" "tests/CMakeFiles/skalla_tests.dir/generators_test.cc.o" "gcc" "tests/CMakeFiles/skalla_tests.dir/generators_test.cc.o.d"
  "/root/repo/tests/gmdj_local_test.cc" "tests/CMakeFiles/skalla_tests.dir/gmdj_local_test.cc.o" "gcc" "tests/CMakeFiles/skalla_tests.dir/gmdj_local_test.cc.o.d"
  "/root/repo/tests/grouping_sets_test.cc" "tests/CMakeFiles/skalla_tests.dir/grouping_sets_test.cc.o" "gcc" "tests/CMakeFiles/skalla_tests.dir/grouping_sets_test.cc.o.d"
  "/root/repo/tests/having_test.cc" "tests/CMakeFiles/skalla_tests.dir/having_test.cc.o" "gcc" "tests/CMakeFiles/skalla_tests.dir/having_test.cc.o.d"
  "/root/repo/tests/interval_test.cc" "tests/CMakeFiles/skalla_tests.dir/interval_test.cc.o" "gcc" "tests/CMakeFiles/skalla_tests.dir/interval_test.cc.o.d"
  "/root/repo/tests/join_star_test.cc" "tests/CMakeFiles/skalla_tests.dir/join_star_test.cc.o" "gcc" "tests/CMakeFiles/skalla_tests.dir/join_star_test.cc.o.d"
  "/root/repo/tests/multi_relation_test.cc" "tests/CMakeFiles/skalla_tests.dir/multi_relation_test.cc.o" "gcc" "tests/CMakeFiles/skalla_tests.dir/multi_relation_test.cc.o.d"
  "/root/repo/tests/multifeature_test.cc" "tests/CMakeFiles/skalla_tests.dir/multifeature_test.cc.o" "gcc" "tests/CMakeFiles/skalla_tests.dir/multifeature_test.cc.o.d"
  "/root/repo/tests/net_test.cc" "tests/CMakeFiles/skalla_tests.dir/net_test.cc.o" "gcc" "tests/CMakeFiles/skalla_tests.dir/net_test.cc.o.d"
  "/root/repo/tests/olap_parser_test.cc" "tests/CMakeFiles/skalla_tests.dir/olap_parser_test.cc.o" "gcc" "tests/CMakeFiles/skalla_tests.dir/olap_parser_test.cc.o.d"
  "/root/repo/tests/olap_printer_test.cc" "tests/CMakeFiles/skalla_tests.dir/olap_printer_test.cc.o" "gcc" "tests/CMakeFiles/skalla_tests.dir/olap_printer_test.cc.o.d"
  "/root/repo/tests/operators_test.cc" "tests/CMakeFiles/skalla_tests.dir/operators_test.cc.o" "gcc" "tests/CMakeFiles/skalla_tests.dir/operators_test.cc.o.d"
  "/root/repo/tests/optimizer_test.cc" "tests/CMakeFiles/skalla_tests.dir/optimizer_test.cc.o" "gcc" "tests/CMakeFiles/skalla_tests.dir/optimizer_test.cc.o.d"
  "/root/repo/tests/parallel_sites_test.cc" "tests/CMakeFiles/skalla_tests.dir/parallel_sites_test.cc.o" "gcc" "tests/CMakeFiles/skalla_tests.dir/parallel_sites_test.cc.o.d"
  "/root/repo/tests/parser_test.cc" "tests/CMakeFiles/skalla_tests.dir/parser_test.cc.o" "gcc" "tests/CMakeFiles/skalla_tests.dir/parser_test.cc.o.d"
  "/root/repo/tests/persistence_test.cc" "tests/CMakeFiles/skalla_tests.dir/persistence_test.cc.o" "gcc" "tests/CMakeFiles/skalla_tests.dir/persistence_test.cc.o.d"
  "/root/repo/tests/presentation_test.cc" "tests/CMakeFiles/skalla_tests.dir/presentation_test.cc.o" "gcc" "tests/CMakeFiles/skalla_tests.dir/presentation_test.cc.o.d"
  "/root/repo/tests/regression_test.cc" "tests/CMakeFiles/skalla_tests.dir/regression_test.cc.o" "gcc" "tests/CMakeFiles/skalla_tests.dir/regression_test.cc.o.d"
  "/root/repo/tests/report_test.cc" "tests/CMakeFiles/skalla_tests.dir/report_test.cc.o" "gcc" "tests/CMakeFiles/skalla_tests.dir/report_test.cc.o.d"
  "/root/repo/tests/schema_table_test.cc" "tests/CMakeFiles/skalla_tests.dir/schema_table_test.cc.o" "gcc" "tests/CMakeFiles/skalla_tests.dir/schema_table_test.cc.o.d"
  "/root/repo/tests/serializer_test.cc" "tests/CMakeFiles/skalla_tests.dir/serializer_test.cc.o" "gcc" "tests/CMakeFiles/skalla_tests.dir/serializer_test.cc.o.d"
  "/root/repo/tests/site_exclusion_test.cc" "tests/CMakeFiles/skalla_tests.dir/site_exclusion_test.cc.o" "gcc" "tests/CMakeFiles/skalla_tests.dir/site_exclusion_test.cc.o.d"
  "/root/repo/tests/sort_merge_test.cc" "tests/CMakeFiles/skalla_tests.dir/sort_merge_test.cc.o" "gcc" "tests/CMakeFiles/skalla_tests.dir/sort_merge_test.cc.o.d"
  "/root/repo/tests/storage_misc_test.cc" "tests/CMakeFiles/skalla_tests.dir/storage_misc_test.cc.o" "gcc" "tests/CMakeFiles/skalla_tests.dir/storage_misc_test.cc.o.d"
  "/root/repo/tests/streaming_test.cc" "tests/CMakeFiles/skalla_tests.dir/streaming_test.cc.o" "gcc" "tests/CMakeFiles/skalla_tests.dir/streaming_test.cc.o.d"
  "/root/repo/tests/sync_test.cc" "tests/CMakeFiles/skalla_tests.dir/sync_test.cc.o" "gcc" "tests/CMakeFiles/skalla_tests.dir/sync_test.cc.o.d"
  "/root/repo/tests/test_util.cc" "tests/CMakeFiles/skalla_tests.dir/test_util.cc.o" "gcc" "tests/CMakeFiles/skalla_tests.dir/test_util.cc.o.d"
  "/root/repo/tests/tree_coordinator_test.cc" "tests/CMakeFiles/skalla_tests.dir/tree_coordinator_test.cc.o" "gcc" "tests/CMakeFiles/skalla_tests.dir/tree_coordinator_test.cc.o.d"
  "/root/repo/tests/value_test.cc" "tests/CMakeFiles/skalla_tests.dir/value_test.cc.o" "gcc" "tests/CMakeFiles/skalla_tests.dir/value_test.cc.o.d"
  "/root/repo/tests/variance_test.cc" "tests/CMakeFiles/skalla_tests.dir/variance_test.cc.o" "gcc" "tests/CMakeFiles/skalla_tests.dir/variance_test.cc.o.d"
  "/root/repo/tests/warehouse_test.cc" "tests/CMakeFiles/skalla_tests.dir/warehouse_test.cc.o" "gcc" "tests/CMakeFiles/skalla_tests.dir/warehouse_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/skalla/CMakeFiles/skalla.dir/DependInfo.cmake"
  "/root/repo/build/src/cube/CMakeFiles/skalla_cube.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/skalla_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/skalla_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/skalla_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/gmdj/CMakeFiles/skalla_gmdj.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/skalla_net.dir/DependInfo.cmake"
  "/root/repo/build/src/tpc/CMakeFiles/skalla_tpc.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/skalla_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/skalla_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/skalla_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/agg/CMakeFiles/skalla_agg.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/skalla_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/skalla_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

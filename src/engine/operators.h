#ifndef SKALLA_ENGINE_OPERATORS_H_
#define SKALLA_ENGINE_OPERATORS_H_

#include <string>
#include <vector>

#include "agg/aggregate.h"
#include "common/result.h"
#include "expr/expr.h"
#include "storage/table.h"

namespace skalla {

/// π: keeps the named columns, in the given order.
Result<Table> Project(const Table& input, const std::vector<std::string>& cols);

/// σ: keeps rows satisfying the predicate. Column references in `pred` bind
/// to the input relation on the detail side (Side::kDetail); base-side
/// references fail to compile.
Result<Table> Filter(const Table& input, const ExprPtr& pred);

/// δ: removes duplicate rows (multiset → set).
Table Distinct(const Table& input);

/// δπ: the paper's typical base-values query `B₀ = π_attrs(R)` with
/// duplicate elimination, computed in one hashing pass.
Result<Table> DistinctProject(const Table& input,
                              const std::vector<std::string>& cols);

/// ⊔: multiset union of tables with compatible schemas (the first table's
/// schema is used for the result).
Result<Table> UnionAll(const std::vector<const Table*>& inputs);

/// Ascending multi-column sort (copy).
Result<Table> SortedBy(const Table& input, const std::vector<std::string>& cols);

/// One ORDER BY key.
struct SortKey {
  std::string column;
  bool descending = false;
};

/// Multi-key sort honoring per-key direction, with a deterministic
/// full-row tie-break (so ORDER BY + LIMIT yields the same rows no matter
/// how the input rows were ordered — required for distributed ==
/// centralized under LIMIT).
Result<Table> SortedByKeys(const Table& input,
                           const std::vector<SortKey>& keys);

/// Conventional hash GROUP BY with the Skalla aggregate functions; provided
/// for examples and for cross-checking GMDJ results (a single-block GMDJ
/// whose θ is key equality is equivalent to a GROUP BY).
Result<Table> HashGroupBy(const Table& input,
                          const std::vector<std::string>& group_cols,
                          const std::vector<AggSpec>& aggs);

/// Adds a computed column `name` = expr(row) to every row.
Result<Table> Extend(const Table& input, const std::string& name,
                     const ExprPtr& expr);

/// Keeps the first n rows.
Table Limit(const Table& input, int64_t n);

/// Inner hash equi-join: probes `right` (build side) with each `left` row.
/// Output columns are all of `left`'s followed by all of `right`'s; a
/// right column whose name collides with a left column is prefixed with
/// `right_prefix` (which must then be non-empty). SQL semantics: NULL keys
/// never match. Used by the star-schema denormalizer (tpc/star.h) — the
/// paper's test database is a denormalized join of the TPC(R) tables.
Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::vector<std::string>& left_keys,
                       const std::vector<std::string>& right_keys,
                       const std::string& right_prefix = "r_");

/// Unpivot (Graefe et al., cited by the paper for extracting marginal
/// distributions): turns the named measure columns into rows. Every input
/// row produces one output row per measure column, with schema
///   [untouched columns...] + name_col:string + value_col.
/// The measure columns must share one type (which becomes value_col's
/// type); NULL measures are skipped (SQL UNPIVOT semantics).
Result<Table> Unpivot(const Table& input,
                      const std::vector<std::string>& measure_cols,
                      const std::string& name_col,
                      const std::string& value_col);

}  // namespace skalla

#endif  // SKALLA_ENGINE_OPERATORS_H_

#include "sql/olap_printer.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "skalla/queries.h"
#include "sql/olap_parser.h"
#include "test_util.h"

namespace skalla {
namespace {

/// Structural equality of two GMDJ expressions.
void ExpectSameExpr(const GmdjExpr& a, const GmdjExpr& b) {
  EXPECT_EQ(a.base.source_table, b.base.source_table);
  EXPECT_EQ(a.base.project_cols, b.base.project_cols);
  if (a.base.filter == nullptr || b.base.filter == nullptr) {
    EXPECT_EQ(a.base.filter == nullptr, b.base.filter == nullptr);
  } else {
    EXPECT_TRUE(a.base.filter->Equals(*b.base.filter))
        << a.base.filter->ToString() << " vs " << b.base.filter->ToString();
  }
  ASSERT_EQ(a.ops.size(), b.ops.size());
  for (size_t k = 0; k < a.ops.size(); ++k) {
    ASSERT_EQ(a.ops[k].blocks.size(), b.ops[k].blocks.size());
    for (size_t blk = 0; blk < a.ops[k].blocks.size(); ++blk) {
      const GmdjBlock& ba = a.ops[k].blocks[blk];
      const GmdjBlock& bb = b.ops[k].blocks[blk];
      EXPECT_TRUE(ba.theta->Equals(*bb.theta))
          << ba.theta->ToString() << " vs " << bb.theta->ToString();
      ASSERT_EQ(ba.aggs.size(), bb.aggs.size());
      for (size_t i = 0; i < ba.aggs.size(); ++i) {
        EXPECT_EQ(ba.aggs[i].func, bb.aggs[i].func);
        EXPECT_EQ(ba.aggs[i].input, bb.aggs[i].input);
        EXPECT_EQ(ba.aggs[i].output, bb.aggs[i].output);
      }
    }
  }
}

TEST(OlapPrinterTest, CanonicalQueriesRoundTrip) {
  for (const auto& [name, expr] :
       std::vector<std::pair<std::string, GmdjExpr>>{
           {"example1", queries::FlowExample1()},
           {"group", queries::GroupReductionQuery("CustKey")},
           {"sync", queries::SyncReductionQuery("CustKey")},
           {"coalesce", queries::CoalescingQuery("ClerkKey")},
           {"combined", queries::CombinedQuery("CustKey")},
           {"multifeature", queries::MultiFeatureQuery("NationKey")}}) {
    SCOPED_TRACE(name);
    ASSERT_OK_AND_ASSIGN(std::string text, OlapQueryToString(expr));
    ASSERT_OK_AND_ASSIGN(GmdjExpr reparsed, ParseOlapQuery(text));
    ExpectSameExpr(reparsed, expr);
  }
}

TEST(OlapPrinterTest, PrintsReadableText) {
  ASSERT_OK_AND_ASSIGN(std::string text,
                       OlapQueryToString(queries::FlowExample1()));
  EXPECT_NE(text.find("SELECT SourceAS, DestAS, COUNT(*) AS cnt1"),
            std::string::npos);
  EXPECT_NE(text.find("GROUP BY SourceAS, DestAS"), std::string::npos);
  EXPECT_NE(text.find("EXTEND COUNT(*) AS cnt2 WHERE"), std::string::npos);
}

TEST(OlapPrinterTest, RejectsUnshapedExpressions) {
  // Multi-block operator.
  GmdjExpr multi_block = queries::GroupReductionQuery("CustKey");
  multi_block.ops[0].blocks.push_back(multi_block.ops[0].blocks[0]);
  EXPECT_FALSE(OlapQueryToString(multi_block).ok());

  // Operator over a different relation.
  GmdjExpr cross = queries::GroupReductionQuery("CustKey");
  cross.ops[1].detail_table = "Other";
  EXPECT_FALSE(OlapQueryToString(cross).ok());

  // θ missing the key equality.
  GmdjExpr no_key = queries::GroupReductionQuery("CustKey");
  no_key.ops[0].blocks[0].theta = Ge(RCol("Quantity"), Lit(Value(1)));
  EXPECT_FALSE(OlapQueryToString(no_key).ok());

  // Empty expression.
  GmdjExpr empty;
  empty.base.source_table = "T";
  empty.base.project_cols = {"g"};
  EXPECT_FALSE(OlapQueryToString(empty).ok());
}

TEST(OlapPrinterTest, FuzzRoundTrip) {
  // Random dialect-shaped expressions must survive print → parse.
  Rng rng(2024);
  const std::vector<std::string> keys_pool = {"g1", "g2", "region"};
  const std::vector<std::string> measures = {"v1", "v2", "w"};
  for (int trial = 0; trial < 40; ++trial) {
    GmdjExpr expr;
    expr.base.source_table = "T";
    for (const std::string& key : keys_pool) {
      if (rng.Chance(0.5)) expr.base.project_cols.push_back(key);
    }
    if (expr.base.project_cols.empty()) {
      expr.base.project_cols.push_back("g1");
    }
    if (rng.Chance(0.3)) {
      expr.base.filter = Lt(RCol(rng.Pick(measures)),
                            Lit(Value(rng.Uniform(0, 50))));
    }

    std::vector<ExprPtr> key_eqs;
    for (const std::string& key : expr.base.project_cols) {
      key_eqs.push_back(Eq(BCol(key), RCol(key)));
    }

    int counter = 0;
    std::vector<std::string> outputs;
    const int num_ops = static_cast<int>(rng.Uniform(1, 3));
    for (int k = 0; k < num_ops; ++k) {
      GmdjOp op;
      op.detail_table = "T";
      GmdjBlock block;
      const int num_aggs = static_cast<int>(rng.Uniform(1, 2));
      for (int a = 0; a < num_aggs; ++a) {
        const std::string out_name = "o" + std::to_string(counter++);
        switch (rng.Uniform(0, 3)) {
          case 0:
            block.aggs.push_back(AggSpec::Count(out_name));
            break;
          case 1:
            block.aggs.push_back(AggSpec::Sum(rng.Pick(measures), out_name));
            break;
          case 2:
            block.aggs.push_back(AggSpec::Avg(rng.Pick(measures), out_name));
            break;
          default:
            block.aggs.push_back(AggSpec::Max(rng.Pick(measures), out_name));
        }
      }
      ExprPtr theta = AndAll(key_eqs);
      if (k > 0 && rng.Chance(0.7)) {
        ExprPtr rhs = outputs.empty() || rng.Chance(0.4)
                          ? Lit(Value(rng.Uniform(-5, 5)))
                          : Add(BCol(rng.Pick(outputs)),
                                Lit(Value(rng.Uniform(0, 3))));
        theta = And(theta, Ge(RCol(rng.Pick(measures)), std::move(rhs)));
      }
      block.theta = std::move(theta);
      for (const AggSpec& spec : block.aggs) outputs.push_back(spec.output);
      op.blocks.push_back(std::move(block));
      expr.ops.push_back(std::move(op));
    }

    SCOPED_TRACE(GmdjExprToString(expr));
    ASSERT_OK_AND_ASSIGN(std::string text, OlapQueryToString(expr));
    ASSERT_OK_AND_ASSIGN(GmdjExpr reparsed, ParseOlapQuery(text));
    ExpectSameExpr(reparsed, expr);
  }
}

}  // namespace
}  // namespace skalla

#ifndef SKALLA_STORAGE_PARTITION_INFO_H_
#define SKALLA_STORAGE_PARTITION_INFO_H_

#include <map>
#include <string>
#include <vector>

#include "storage/value.h"

namespace skalla {

/// \brief What is known about one attribute of a site's local partition.
///
/// This is the structured form of the paper's per-site predicate φ_i
/// (Theorem 4): a conservative description of the values attribute A can
/// take in R_i. kAny means "nothing known".
struct AttrDomain {
  enum class Kind { kAny, kValueSet, kRange };

  Kind kind = Kind::kAny;
  /// For kValueSet: the explicit set of possible values.
  std::vector<Value> values;
  /// For kRange: inclusive bounds; a NULL bound means unbounded on that side.
  Value lo;
  Value hi;

  static AttrDomain Any() { return AttrDomain{}; }
  static AttrDomain Set(std::vector<Value> vals) {
    AttrDomain d;
    d.kind = Kind::kValueSet;
    d.values = std::move(vals);
    return d;
  }
  static AttrDomain Range(Value lo, Value hi) {
    AttrDomain d;
    d.kind = Kind::kRange;
    d.lo = std::move(lo);
    d.hi = std::move(hi);
    return d;
  }

  /// True if the domain cannot rule out `v`. Conservative: kAny → true.
  bool MayContain(const Value& v) const;

  /// Numeric lower/upper bound of the domain as doubles; returns false when
  /// no finite bound is known (kAny, or non-numeric members).
  bool NumericBounds(double* lo_out, double* hi_out) const;

  std::string ToString() const;
};

/// \brief Per-site partition predicate φ_i: a conjunction of attribute
/// domains ("at this site, NationKey ∈ [0,2] and RegionKey ∈ {0}").
///
/// Used by the distribution-aware group-reduction and the
/// synchronization-reduction analyses (Sections 4.1 and 4.3 of the paper).
class PartitionInfo {
 public:
  PartitionInfo() = default;

  /// Declares a domain for an attribute, replacing any previous one.
  void SetDomain(const std::string& attr, AttrDomain domain);

  /// The domain of `attr`, or kAny when undeclared.
  const AttrDomain& Domain(const std::string& attr) const;

  /// True if a (non-kAny) domain is declared for `attr`.
  bool HasDomain(const std::string& attr) const;

  const std::map<std::string, AttrDomain>& domains() const { return domains_; }

  std::string ToString() const;

 private:
  std::map<std::string, AttrDomain> domains_;
};

/// \brief True when `outer` provably contains every value `inner` can take.
///
/// Conservative: kAny outer covers everything; a non-kAny outer never
/// covers a kAny inner (the inner side could hold anything); set/range
/// containment otherwise, defaulting to false when containment cannot be
/// established.
bool DomainCovers(const AttrDomain& outer, const AttrDomain& inner);

/// \brief True when a replica whose partition predicate is `replica` can
/// stand in for a failed primary site with predicate `primary`.
///
/// Coverage requires that the replica's declared restrictions do not
/// exclude anything the primary can hold: for every attribute the replica
/// restricts, the primary must declare a domain contained in the
/// replica's. Used by the coordinators to validate failover — a
/// non-covering replica could silently drop groups, so the coordinator
/// refuses it and returns kUnavailable instead (docs/fault-model.md).
bool CoversPartition(const PartitionInfo& replica,
                     const PartitionInfo& primary);

/// \brief Checks Definition 2 of the paper: attribute A is a *partition
/// attribute* iff the per-site declared domains for A are pairwise disjoint.
///
/// Conservative: returns false if any site lacks a declared domain for A or
/// disjointness cannot be established (e.g. unbounded ranges overlapping).
bool IsPartitionAttribute(const std::string& attr,
                          const std::vector<PartitionInfo>& sites);

}  // namespace skalla

#endif  // SKALLA_STORAGE_PARTITION_INFO_H_

// Future-work exploration (paper Sect. 6): multi-tier coordinator
// architectures. Compares the flat coordinator against k-ary aggregation
// trees for the group-reduction workload, across site counts and fan-ins,
// under a bandwidth-constrained network where the flat root link is the
// bottleneck.
//
//   ./bench_tree_coordinator

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"

namespace {

using namespace skalla;
using bench::GetWarehouse;
using bench::WarehouseSpec;

WarehouseSpec SpecForSites(int sites) {
  WarehouseSpec spec;
  spec.sites = sites;
  spec.rows_per_site = 8000;
  spec.groups_per_site = 800;
  return spec;
}

NetworkConfig ConstrainedNetwork() {
  NetworkConfig net;
  net.bandwidth_bytes_per_sec = 512.0 * 1024;
  net.latency_sec = 0.002;
  return net;
}

/// fan_in = 0 encodes the flat coordinator.
void BM_TreeVsFlat(benchmark::State& state) {
  const int sites = static_cast<int>(state.range(0));
  const int fan_in = static_cast<int>(state.range(1));
  Warehouse& warehouse = GetWarehouse(SpecForSites(sites));
  warehouse.set_network_config(ConstrainedNetwork());
  const GmdjExpr query = queries::GroupReductionQuery("CustKey");
  auto plan = warehouse.Plan(query, OptimizerOptions::None());
  if (!plan.ok()) std::abort();
  for (auto _ : state) {
    auto result = fan_in == 0 ? warehouse.ExecutePlan(*plan)
                              : warehouse.ExecutePlanTree(*plan, fan_in);
    if (!result.ok()) std::abort();
    state.SetIterationTime(result->metrics.ResponseSeconds());
    state.counters["comm_s"] = result->metrics.CommSeconds();
    state.counters["bytes"] =
        static_cast<double>(result->metrics.TotalBytes());
  }
  state.SetLabel(fan_in == 0 ? "flat" : "tree-fanin-" + std::to_string(fan_in));
}
BENCHMARK(BM_TreeVsFlat)
    ->ArgsProduct({{4, 8, 16}, {0, 2, 4}})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void PrintTable() {
  std::printf("\n=== Flat vs tree coordinator, group reduction query, "
              "modelled comm time [s] ===\n");
  std::printf("%-6s %10s %10s %10s %10s\n", "sites", "flat", "fanin-2",
              "fanin-4", "best");
  const GmdjExpr query = queries::GroupReductionQuery("CustKey");
  for (int sites : {4, 8, 16}) {
    Warehouse& warehouse = GetWarehouse(SpecForSites(sites));
    warehouse.set_network_config(ConstrainedNetwork());
    auto plan = warehouse.Plan(query, OptimizerOptions::None());
    if (!plan.ok()) std::abort();
    auto flat = warehouse.ExecutePlan(*plan);
    auto tree2 = warehouse.ExecutePlanTree(*plan, 2);
    auto tree4 = warehouse.ExecutePlanTree(*plan, 4);
    if (!flat.ok() || !tree2.ok() || !tree4.ok()) std::abort();
    const double f = flat->metrics.CommSeconds();
    const double t2 = tree2->metrics.CommSeconds();
    const double t4 = tree4->metrics.CommSeconds();
    const char* best = f <= t2 && f <= t4 ? "flat"
                       : (t2 <= t4 ? "fanin-2" : "fanin-4");
    std::printf("%-6d %10.3f %10.3f %10.3f %10s\n", sites, f, t2, t4, best);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintTable();
  return 0;
}

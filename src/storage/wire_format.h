#ifndef SKALLA_STORAGE_WIRE_FORMAT_H_
#define SKALLA_STORAGE_WIRE_FORMAT_H_

#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>

namespace skalla {

/// \brief Wire formats understood by the serializer (see docs/wire-format.md).
///
/// kSkl1 is the original row-oriented format: one type tag per value, full
/// string payloads per row. kSkl2 is columnar: one codec tag per column, a
/// null bitmap, zig-zag varint delta encoding for int64 columns, packed raw
/// doubles, and a per-column string dictionary. Both formats carry the same
/// self-describing header (magic, schema, row count), so the decoder
/// dispatches on the magic and either format can be read regardless of the
/// configured default. Header-only so that net/ can depend on it without a
/// storage link dependency.
enum class WireFormat : uint8_t {
  kSkl1 = 1,
  kSkl2 = 2,
};

inline const char* WireFormatName(WireFormat f) {
  return f == WireFormat::kSkl1 ? "SKL1" : "SKL2";
}

/// Parses "SKL1"/"skl1"/"1" and "SKL2"/"skl2"/"2"; nullopt otherwise.
inline std::optional<WireFormat> ParseWireFormat(std::string_view name) {
  if (name == "SKL1" || name == "skl1" || name == "1") return WireFormat::kSkl1;
  if (name == "SKL2" || name == "skl2" || name == "2") return WireFormat::kSkl2;
  return std::nullopt;
}

/// The process-wide default format: env SKALLA_WIRE_FORMAT if set and
/// parseable, else SKL2. Read once; NetworkConfig snapshots it.
inline WireFormat DefaultWireFormat() {
  static const WireFormat format = [] {
    const char* env = std::getenv("SKALLA_WIRE_FORMAT");
    if (env != nullptr) {
      if (auto parsed = ParseWireFormat(env)) return *parsed;
    }
    return WireFormat::kSkl2;
  }();
  return format;
}

}  // namespace skalla

#endif  // SKALLA_STORAGE_WIRE_FORMAT_H_


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gmdj/central_eval.cc" "src/gmdj/CMakeFiles/skalla_gmdj.dir/central_eval.cc.o" "gcc" "src/gmdj/CMakeFiles/skalla_gmdj.dir/central_eval.cc.o.d"
  "/root/repo/src/gmdj/gmdj.cc" "src/gmdj/CMakeFiles/skalla_gmdj.dir/gmdj.cc.o" "gcc" "src/gmdj/CMakeFiles/skalla_gmdj.dir/gmdj.cc.o.d"
  "/root/repo/src/gmdj/local_eval.cc" "src/gmdj/CMakeFiles/skalla_gmdj.dir/local_eval.cc.o" "gcc" "src/gmdj/CMakeFiles/skalla_gmdj.dir/local_eval.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/skalla_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/skalla_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/agg/CMakeFiles/skalla_agg.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/skalla_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/skalla_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

#include "flow/flowgen.h"

#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"

namespace skalla {

SchemaPtr FlowSchema() {
  return MakeSchema({
      {"RouterId", ValueType::kInt64},
      {"SourceIP", ValueType::kInt64},
      {"SourcePort", ValueType::kInt64},
      {"SourceMask", ValueType::kInt64},
      {"SourceAS", ValueType::kInt64},
      {"DestIP", ValueType::kInt64},
      {"DestPort", ValueType::kInt64},
      {"DestMask", ValueType::kInt64},
      {"DestAS", ValueType::kInt64},
      {"StartTime", ValueType::kInt64},
      {"EndTime", ValueType::kInt64},
      {"NumPackets", ValueType::kInt64},
      {"NumBytes", ValueType::kInt64},
  });
}

int64_t RouterOfSourceAs(int64_t source_as, const FlowConfig& config) {
  const int64_t block =
      (config.num_as + config.num_routers - 1) / config.num_routers;
  int64_t router = source_as / block;
  if (router >= config.num_routers) router = config.num_routers - 1;
  return router;
}

Table GenerateFlows(const FlowConfig& config) {
  SKALLA_CHECK(config.num_routers > 0);
  SKALLA_CHECK(config.num_as > 0);
  Rng rng(config.seed);
  Table table(FlowSchema());
  table.Reserve(config.num_rows);

  for (int64_t i = 0; i < config.num_rows; ++i) {
    // Zipf-skewed AS popularity: a few systems carry most traffic.
    const int64_t source_as = rng.Zipf(config.num_as, config.as_zipf_s);
    const int64_t dest_as = rng.Zipf(config.num_as, config.as_zipf_s);
    const int64_t router = RouterOfSourceAs(source_as, config);
    const int64_t source_ip =
        (source_as << 16) | rng.Uniform(0, 0xffff);
    const int64_t dest_ip = (dest_as << 16) | rng.Uniform(0, 0xffff);
    const bool is_web = rng.Chance(config.web_fraction);
    const int64_t dest_port =
        is_web ? (rng.Chance(0.8) ? 80 : 443) : rng.Uniform(1024, 65535);
    const int64_t source_port = rng.Uniform(1024, 65535);
    const int64_t start = rng.Uniform(0, config.num_hours * 3600 - 1);
    const int64_t duration = rng.Uniform(0, 600);
    const int64_t packets = 1 + rng.Zipf(10000, config.packets_zipf_s);
    const int64_t bytes = packets * rng.Uniform(40, 1500);

    Row row;
    row.reserve(13);
    row.push_back(Value(router));
    row.push_back(Value(source_ip));
    row.push_back(Value(source_port));
    row.push_back(Value(int64_t{24}));
    row.push_back(Value(source_as));
    row.push_back(Value(dest_ip));
    row.push_back(Value(dest_port));
    row.push_back(Value(int64_t{24}));
    row.push_back(Value(dest_as));
    row.push_back(Value(start));
    row.push_back(Value(start + duration));
    row.push_back(Value(packets));
    row.push_back(Value(bytes));
    table.AddRow(std::move(row));
  }
  return table;
}

}  // namespace skalla

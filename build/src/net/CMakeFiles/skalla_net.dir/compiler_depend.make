# Empty compiler generated dependencies file for skalla_net.
# This may be replaced when dependencies are built.

#ifndef SKALLA_OPT_OPTIMIZER_H_
#define SKALLA_OPT_OPTIMIZER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "dist/plan.h"
#include "gmdj/gmdj.h"
#include "storage/partition_info.h"

namespace skalla {

/// Which of the paper's Section-4 optimizations the planner may apply.
/// Each is individually toggleable so benchmarks can quantify its effect.
struct OptimizerOptions {
  /// GMDJ coalescing: fold MD₂ ∘ MD₁ into one operator when θ₂ does not
  /// reference MD₁'s outputs (Sect. 4.3, first transformation).
  bool coalesce = false;

  /// Distribution-independent group reduction (Proposition 1).
  bool independent_group_reduction = false;

  /// Distribution-aware group reduction (Theorem 4) — requires per-site
  /// partition metadata.
  bool aware_group_reduction = false;

  /// Synchronization reduction (Proposition 2, Theorem 5, Corollary 1).
  bool sync_reduction = false;

  /// Column pruning: ship to the sites only the key attributes plus the
  /// X columns each round's conditions actually reference, instead of the
  /// full (growing) base-result structure. Orthogonal to the paper's
  /// row-level group reductions; a width-level reduction.
  bool column_pruning = false;

  static OptimizerOptions None() { return OptimizerOptions{}; }
  static OptimizerOptions All() {
    return OptimizerOptions{true, true, true, true, true};
  }
};

/// Outcome of the synchronization-reduction analysis, reported in plan
/// explanations and probed by tests.
struct SyncAnalysis {
  /// Key attributes that are partition attributes (Definition 2).
  std::vector<std::string> partition_attrs;
  /// True if every θ of the first operator entails θ_K (Prop. 2 applies).
  bool base_fusable = false;
  /// For each adjacent operator pair (i, i+1), true when the pair may be
  /// evaluated without an intermediate synchronization (Thm. 5 / Cor. 1).
  std::vector<bool> pair_fusable;
};

/// \brief Egil: the Skalla GMDJ optimizer.
///
/// Translates a (validated) GMDJ expression into a distributed evaluation
/// plan, applying the enabled optimization schemes. Each scheme only fires
/// when its correctness condition — as established by the corresponding
/// theorem in the paper — is met, so the resulting plan always computes the
/// same relation as the centralized evaluation.
class Optimizer {
 public:
  /// `site_infos[i]` is site i's partition predicate φ_i; pass an empty
  /// vector when no distribution knowledge is available (then only the
  /// distribution-independent optimizations can fire).
  explicit Optimizer(std::vector<PartitionInfo> site_infos = {})
      : site_infos_(std::move(site_infos)) {}

  /// Builds a plan for `expr` under the given options.
  Result<DistributedPlan> BuildPlan(const GmdjExpr& expr,
                                    const OptimizerOptions& options) const;

  /// Applies only the coalescing transformation to the expression.
  GmdjExpr Coalesce(const GmdjExpr& expr) const;

  /// Runs the synchronization-reduction analysis on the expression.
  SyncAnalysis AnalyzeSync(const GmdjExpr& expr) const;

  /// Derives the per-site ship predicate ¬ψ_i for a set of θ conditions
  /// (simplified; null when no reduction is possible for that site).
  ExprPtr ShipPredicateForSite(const std::vector<ExprPtr>& thetas,
                               int site) const;

  const std::vector<PartitionInfo>& site_infos() const { return site_infos_; }

 private:
  std::vector<PartitionInfo> site_infos_;
};

}  // namespace skalla

#endif  // SKALLA_OPT_OPTIMIZER_H_

file(REMOVE_RECURSE
  "CMakeFiles/example_tpcr_olap.dir/tpcr_olap.cc.o"
  "CMakeFiles/example_tpcr_olap.dir/tpcr_olap.cc.o.d"
  "example_tpcr_olap"
  "example_tpcr_olap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_tpcr_olap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

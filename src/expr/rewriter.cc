#include "expr/rewriter.h"

#include "expr/evaluator.h"

namespace skalla {

bool IsLiteralTrue(const ExprPtr& expr) {
  if (expr->kind() != ExprKind::kLiteral) return false;
  const auto& lit = static_cast<const LiteralExpr&>(*expr);
  return !lit.value().is_null() && ValueIsTrue(lit.value());
}

bool IsLiteralFalse(const ExprPtr& expr) {
  if (expr->kind() != ExprKind::kLiteral) return false;
  const auto& lit = static_cast<const LiteralExpr&>(*expr);
  return lit.value().is_null() || !ValueIsTrue(lit.value());
}

ExprPtr SimplifyConstants(const ExprPtr& expr) {
  switch (expr->kind()) {
    case ExprKind::kColumn:
    case ExprKind::kLiteral:
      return expr;
    case ExprKind::kUnary: {
      const auto& un = static_cast<const UnaryExpr&>(*expr);
      ExprPtr operand = SimplifyConstants(un.operand());
      if (un.op() == UnaryOp::kNot) {
        if (IsLiteralTrue(operand)) return False();
        if (IsLiteralFalse(operand)) return True();
      }
      if (operand == un.operand()) return expr;
      return std::make_shared<UnaryExpr>(un.op(), std::move(operand));
    }
    case ExprKind::kBinary: {
      const auto& bin = static_cast<const BinaryExpr&>(*expr);
      ExprPtr left = SimplifyConstants(bin.left());
      ExprPtr right = SimplifyConstants(bin.right());
      if (bin.op() == BinaryOp::kAnd) {
        if (IsLiteralFalse(left) || IsLiteralFalse(right)) return False();
        if (IsLiteralTrue(left)) return right;
        if (IsLiteralTrue(right)) return left;
      } else if (bin.op() == BinaryOp::kOr) {
        if (IsLiteralTrue(left) || IsLiteralTrue(right)) return True();
        if (IsLiteralFalse(left)) return right;
        if (IsLiteralFalse(right)) return left;
      }
      if (left == bin.left() && right == bin.right()) return expr;
      return std::make_shared<BinaryExpr>(bin.op(), std::move(left),
                                          std::move(right));
    }
  }
  return expr;
}

}  // namespace skalla

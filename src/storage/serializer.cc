#include "storage/serializer.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/columnar.h"

namespace skalla {

namespace {

constexpr uint32_t kMagicSkl1 = 0x534b4c31;  // 'SKL1'
constexpr uint32_t kMagicSkl2 = 0x534b4c32;  // 'SKL2'
constexpr uint32_t kMagicSkld = 0x534b4c44;  // 'SKLD' (delta)

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutDouble(std::string* out, double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

/// Unsigned LEB128; at most 10 bytes for a u64.
void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

size_t VarintSize(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  bool ReadU8(uint8_t* v) {
    if (pos_ + 1 > bytes_.size()) return false;
    *v = static_cast<uint8_t>(bytes_[pos_]);
    pos_ += 1;
    return true;
  }
  bool ReadU32(uint32_t* v) {
    if (pos_ + 4 > bytes_.size()) return false;
    std::memcpy(v, bytes_.data() + pos_, 4);
    pos_ += 4;
    return true;
  }
  bool ReadU64(uint64_t* v) {
    if (pos_ + 8 > bytes_.size()) return false;
    std::memcpy(v, bytes_.data() + pos_, 8);
    pos_ += 8;
    return true;
  }
  bool ReadDouble(double* v) {
    if (pos_ + 8 > bytes_.size()) return false;
    std::memcpy(v, bytes_.data() + pos_, 8);
    pos_ += 8;
    return true;
  }
  bool ReadString(uint32_t len, std::string* v) {
    if (pos_ + len > bytes_.size()) return false;
    v->assign(bytes_.data() + pos_, len);
    pos_ += len;
    return true;
  }
  size_t remaining() const { return bytes_.size() - pos_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

Result<uint64_t> ReadVarint(Reader* reader) {
  uint64_t result = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    uint8_t byte = 0;
    if (!reader->ReadU8(&byte)) return Status::IoError("truncated varint");
    if (shift == 63 && (byte & 0xfe) != 0) {
      return Status::IoError("varint overflow");
    }
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return result;
  }
  return Status::IoError("varint overflow");
}

// ---------------------------------------------------------------------------
// SKL1 per-value codec.

void PutValue(std::string* out, const Value& v) {
  PutU8(out, static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt64:
      PutU64(out, static_cast<uint64_t>(v.AsInt64()));
      break;
    case ValueType::kDouble:
      PutDouble(out, v.AsDouble());
      break;
    case ValueType::kString:
      PutU32(out, static_cast<uint32_t>(v.AsString().size()));
      out->append(v.AsString());
      break;
  }
}

Result<Value> ReadValue(Reader* reader) {
  uint8_t tag = 0;
  if (!reader->ReadU8(&tag)) {
    return Status::IoError("truncated value tag");
  }
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kInt64: {
      uint64_t raw = 0;
      if (!reader->ReadU64(&raw)) return Status::IoError("truncated int64");
      return Value(static_cast<int64_t>(raw));
    }
    case ValueType::kDouble: {
      double d = 0;
      if (!reader->ReadDouble(&d)) return Status::IoError("truncated double");
      return Value(d);
    }
    case ValueType::kString: {
      uint32_t len = 0;
      std::string s;
      if (!reader->ReadU32(&len) || !reader->ReadString(len, &s)) {
        return Status::IoError("truncated string");
      }
      return Value(std::move(s));
    }
  }
  return Status::IoError("unknown value tag " + std::to_string(tag));
}

// ---------------------------------------------------------------------------
// SKL2 per-column codec. A column range [begin, end) over one table column
// is classified into one of five codecs; the homogeneous codecs carry a
// null bitmap (LSB-first within each byte, bit set = non-null) followed by
// the packed non-null values.

enum ColumnCodec : uint8_t {
  kColAllNull = 0,
  kColInt64 = 1,
  kColDouble = 2,
  kColString = 3,
  kColMixed = 4,  ///< heterogeneous non-null types: per-value tag + payload
};

ColumnCodec ClassifyColumn(const Table& t, int col, int64_t begin,
                           int64_t end) {
  bool seen = false;
  ValueType type = ValueType::kNull;
  for (int64_t r = begin; r < end; ++r) {
    const Value& v = t.Get(r, col);
    if (v.type() == ValueType::kNull) continue;
    if (!seen) {
      seen = true;
      type = v.type();
    } else if (v.type() != type) {
      return kColMixed;
    }
  }
  if (!seen) return kColAllNull;
  switch (type) {
    case ValueType::kInt64:
      return kColInt64;
    case ValueType::kDouble:
      return kColDouble;
    case ValueType::kString:
      return kColString;
    default:
      return kColAllNull;  // unreachable
  }
}

void PutNullBitmap(std::string* out, const Table& t, int col, int64_t begin,
                   int64_t end) {
  const int64_t n = end - begin;
  std::string bitmap(static_cast<size_t>((n + 7) / 8), '\0');
  for (int64_t r = begin; r < end; ++r) {
    if (t.Get(r, col).type() != ValueType::kNull) {
      const int64_t i = r - begin;
      bitmap[static_cast<size_t>(i / 8)] |=
          static_cast<char>(1u << (i % 8));
    }
  }
  out->append(bitmap);
}

void EncodeColumnRange(std::string* out, const Table& t, int col,
                       int64_t begin, int64_t end) {
  const ColumnCodec codec = ClassifyColumn(t, col, begin, end);
  PutU8(out, codec);
  switch (codec) {
    case kColAllNull:
      break;
    case kColInt64: {
      PutNullBitmap(out, t, col, begin, end);
      int64_t prev = 0;
      for (int64_t r = begin; r < end; ++r) {
        const Value& v = t.Get(r, col);
        if (v.type() == ValueType::kNull) continue;
        const int64_t cur = v.AsInt64();
        // Delta over the non-null subsequence; the difference wraps on
        // overflow and unwraps identically on decode (two's complement).
        PutVarint(out, ZigZagEncode(static_cast<int64_t>(
                           static_cast<uint64_t>(cur) -
                           static_cast<uint64_t>(prev))));
        prev = cur;
      }
      break;
    }
    case kColDouble: {
      PutNullBitmap(out, t, col, begin, end);
      for (int64_t r = begin; r < end; ++r) {
        const Value& v = t.Get(r, col);
        if (v.type() != ValueType::kNull) PutDouble(out, v.AsDouble());
      }
      break;
    }
    case kColString: {
      PutNullBitmap(out, t, col, begin, end);
      // First-appearance dictionary: deterministic given the row order.
      std::unordered_map<std::string_view, uint64_t> index;
      std::vector<std::string_view> dict;
      std::vector<uint64_t> codes;
      for (int64_t r = begin; r < end; ++r) {
        const Value& v = t.Get(r, col);
        if (v.type() == ValueType::kNull) continue;
        const std::string_view s = v.AsString();
        auto [it, inserted] = index.emplace(s, dict.size());
        if (inserted) dict.push_back(s);
        codes.push_back(it->second);
      }
      PutVarint(out, dict.size());
      for (std::string_view s : dict) {
        PutVarint(out, s.size());
        out->append(s);
      }
      for (uint64_t code : codes) PutVarint(out, code);
      break;
    }
    case kColMixed: {
      for (int64_t r = begin; r < end; ++r) PutValue(out, t.Get(r, col));
      break;
    }
  }
}

size_t ColumnRangeSize(const Table& t, int col, int64_t begin, int64_t end) {
  const ColumnCodec codec = ClassifyColumn(t, col, begin, end);
  size_t size = 1;  // codec tag
  const size_t bitmap = static_cast<size_t>((end - begin + 7) / 8);
  switch (codec) {
    case kColAllNull:
      break;
    case kColInt64: {
      size += bitmap;
      int64_t prev = 0;
      for (int64_t r = begin; r < end; ++r) {
        const Value& v = t.Get(r, col);
        if (v.type() == ValueType::kNull) continue;
        const int64_t cur = v.AsInt64();
        size += VarintSize(ZigZagEncode(static_cast<int64_t>(
            static_cast<uint64_t>(cur) - static_cast<uint64_t>(prev))));
        prev = cur;
      }
      break;
    }
    case kColDouble: {
      size += bitmap;
      for (int64_t r = begin; r < end; ++r) {
        if (t.Get(r, col).type() != ValueType::kNull) size += 8;
      }
      break;
    }
    case kColString: {
      size += bitmap;
      std::unordered_map<std::string_view, uint64_t> index;
      uint64_t next_code = 0;
      size_t dict_bytes = 0;
      for (int64_t r = begin; r < end; ++r) {
        const Value& v = t.Get(r, col);
        if (v.type() == ValueType::kNull) continue;
        const std::string_view s = v.AsString();
        auto [it, inserted] = index.emplace(s, next_code);
        if (inserted) {
          dict_bytes += VarintSize(s.size()) + s.size();
          ++next_code;
        }
        size += VarintSize(it->second);
      }
      size += VarintSize(next_code) + dict_bytes;
      break;
    }
    case kColMixed: {
      for (int64_t r = begin; r < end; ++r) {
        size += t.Get(r, col).SerializedSize();
      }
      break;
    }
  }
  return size;
}

// Columnar-fed SKL2 encoding (docs/wire-format.md §3): for a full-table
// range over a `usable` column, the ColumnarTable snapshot already holds
// everything the row-path codec re-derives per call — the typed value
// arrays, the validity bitmap in the same LSB-first bit order as the wire
// bitmap, and the first-appearance string dictionary, which over a full
// range coincides with the wire dictionary. Reading those arrays instead
// of boxing every cell through Table::Get yields byte-identical output;
// no-re-derivation rule in DESIGN.md §5. Sub-table ranges (SerializeDelta)
// and unusable columns keep the row path.

bool ColumnarAnyNonNull(const ColumnarTable::Column& col, int64_t n) {
  if (!col.has_nulls) return n > 0;
  for (const uint64_t w : col.valid) {
    if (w != 0) return true;
  }
  return false;
}

ColumnCodec ClassifyColumnar(const ColumnarTable::Column& col, int64_t n) {
  // A usable column has no type-deviant cells, so kColMixed is impossible.
  if (!ColumnarAnyNonNull(col, n)) return kColAllNull;
  switch (col.type) {
    case ValueType::kInt64:
      return kColInt64;
    case ValueType::kDouble:
      return kColDouble;
    case ValueType::kString:
      return kColString;
    default:
      return kColAllNull;  // unreachable: kNull columns have no non-nulls
  }
}

void PutNullBitmapColumnar(std::string* out,
                           const ColumnarTable::Column& col, int64_t n) {
  const size_t bytes = static_cast<size_t>((n + 7) / 8);
  std::string bitmap(bytes, '\0');
  if (!col.has_nulls) {
    // Every bit below n set, trailing bits clear — as the row path writes.
    for (size_t i = 0; i < bytes; ++i) bitmap[i] = static_cast<char>(0xff);
    const int rem = static_cast<int>(n % 8);
    if (rem != 0) {
      bitmap[bytes - 1] = static_cast<char>((1u << rem) - 1);
    }
  } else {
    // The snapshot bitmap is LSB-first u64 words; byte i of the wire
    // bitmap is byte (i % 8) of word (i / 8). Trailing bits are zero in
    // both representations.
    for (size_t i = 0; i < bytes; ++i) {
      bitmap[i] = static_cast<char>((col.valid[i >> 3] >> ((i & 7) * 8)) &
                                    0xff);
    }
  }
  out->append(bitmap);
}

void EncodeColumnarFull(std::string* out, const ColumnarTable::Column& col,
                        int64_t n) {
  const ColumnCodec codec = ClassifyColumnar(col, n);
  PutU8(out, codec);
  switch (codec) {
    case kColAllNull:
      break;
    case kColInt64: {
      PutNullBitmapColumnar(out, col, n);
      int64_t prev = 0;
      for (int64_t r = 0; r < n; ++r) {
        if (!col.IsValid(r)) continue;
        const int64_t cur = col.ints[static_cast<size_t>(r)];
        PutVarint(out, ZigZagEncode(static_cast<int64_t>(
                           static_cast<uint64_t>(cur) -
                           static_cast<uint64_t>(prev))));
        prev = cur;
      }
      break;
    }
    case kColDouble: {
      PutNullBitmapColumnar(out, col, n);
      for (int64_t r = 0; r < n; ++r) {
        if (col.IsValid(r)) {
          PutDouble(out, col.doubles[static_cast<size_t>(r)]);
        }
      }
      break;
    }
    case kColString: {
      PutNullBitmapColumnar(out, col, n);
      // The snapshot dictionary is first-appearance over all rows — for a
      // full-table range, exactly the wire dictionary and codes.
      PutVarint(out, col.dict.size());
      for (const std::string& s : col.dict) {
        PutVarint(out, s.size());
        out->append(s);
      }
      for (int64_t r = 0; r < n; ++r) {
        const int32_t code = col.codes[static_cast<size_t>(r)];
        if (code >= 0) PutVarint(out, static_cast<uint64_t>(code));
      }
      break;
    }
    case kColMixed:
      break;  // unreachable for usable columns
  }
}

size_t ColumnarFullSize(const ColumnarTable::Column& col, int64_t n) {
  const ColumnCodec codec = ClassifyColumnar(col, n);
  size_t size = 1;  // codec tag
  const size_t bitmap = static_cast<size_t>((n + 7) / 8);
  switch (codec) {
    case kColAllNull:
      break;
    case kColInt64: {
      size += bitmap;
      int64_t prev = 0;
      for (int64_t r = 0; r < n; ++r) {
        if (!col.IsValid(r)) continue;
        const int64_t cur = col.ints[static_cast<size_t>(r)];
        size += VarintSize(ZigZagEncode(static_cast<int64_t>(
            static_cast<uint64_t>(cur) - static_cast<uint64_t>(prev))));
        prev = cur;
      }
      break;
    }
    case kColDouble: {
      size += bitmap;
      for (int64_t r = 0; r < n; ++r) {
        if (col.IsValid(r)) size += 8;
      }
      break;
    }
    case kColString: {
      size += bitmap;
      size += VarintSize(col.dict.size());
      for (const std::string& s : col.dict) {
        size += VarintSize(s.size()) + s.size();
      }
      for (int64_t r = 0; r < n; ++r) {
        const int32_t code = col.codes[static_cast<size_t>(r)];
        if (code >= 0) size += VarintSize(static_cast<uint64_t>(code));
      }
      break;
    }
    case kColMixed:
      break;  // unreachable for usable columns
  }
  return size;
}

/// Decodes one column section of `n` values into `*out` (appended).
Status DecodeColumnRange(Reader* reader, int64_t n,
                         std::vector<Value>* out) {
  uint8_t codec = 0;
  if (!reader->ReadU8(&codec)) return Status::IoError("truncated column tag");
  if (codec > kColMixed) {
    return Status::IoError("unknown column codec " + std::to_string(codec));
  }
  if (codec == kColAllNull) {
    out->insert(out->end(), static_cast<size_t>(n), Value::Null());
    return Status::OK();
  }
  if (codec == kColMixed) {
    for (int64_t r = 0; r < n; ++r) {
      SKALLA_ASSIGN_OR_RETURN(Value v, ReadValue(reader));
      out->push_back(std::move(v));
    }
    return Status::OK();
  }
  // Homogeneous codecs: null bitmap first.
  const size_t bitmap_bytes = static_cast<size_t>((n + 7) / 8);
  std::string bitmap;
  if (!reader->ReadString(static_cast<uint32_t>(bitmap_bytes), &bitmap)) {
    return Status::IoError("truncated null bitmap");
  }
  auto non_null = [&bitmap](int64_t i) {
    return (static_cast<uint8_t>(bitmap[static_cast<size_t>(i / 8)]) >>
            (i % 8)) &
           1u;
  };
  switch (codec) {
    case kColInt64: {
      int64_t prev = 0;
      for (int64_t r = 0; r < n; ++r) {
        if (!non_null(r)) {
          out->push_back(Value::Null());
          continue;
        }
        SKALLA_ASSIGN_OR_RETURN(uint64_t raw, ReadVarint(reader));
        prev = static_cast<int64_t>(static_cast<uint64_t>(prev) +
                                    static_cast<uint64_t>(ZigZagDecode(raw)));
        out->push_back(Value(prev));
      }
      return Status::OK();
    }
    case kColDouble: {
      for (int64_t r = 0; r < n; ++r) {
        if (!non_null(r)) {
          out->push_back(Value::Null());
          continue;
        }
        double d = 0;
        if (!reader->ReadDouble(&d)) {
          return Status::IoError("truncated double column");
        }
        out->push_back(Value(d));
      }
      return Status::OK();
    }
    case kColString: {
      SKALLA_ASSIGN_OR_RETURN(uint64_t dict_count, ReadVarint(reader));
      if (dict_count > reader->remaining()) {
        // Each entry costs at least one length byte; anything larger than
        // the remaining payload is corrupt, reject before allocating.
        return Status::IoError("dictionary count out of range");
      }
      std::vector<std::string> dict;
      dict.reserve(static_cast<size_t>(dict_count));
      for (uint64_t i = 0; i < dict_count; ++i) {
        SKALLA_ASSIGN_OR_RETURN(uint64_t len, ReadVarint(reader));
        if (len > reader->remaining()) {
          return Status::IoError("truncated dictionary entry");
        }
        std::string s;
        if (!reader->ReadString(static_cast<uint32_t>(len), &s)) {
          return Status::IoError("truncated dictionary entry");
        }
        dict.push_back(std::move(s));
      }
      for (int64_t r = 0; r < n; ++r) {
        if (!non_null(r)) {
          out->push_back(Value::Null());
          continue;
        }
        SKALLA_ASSIGN_OR_RETURN(uint64_t code, ReadVarint(reader));
        if (code >= dict_count) {
          return Status::IoError("dictionary code out of range");
        }
        out->push_back(Value(dict[static_cast<size_t>(code)]));
      }
      return Status::OK();
    }
    default:
      return Status::IoError("unknown column codec");
  }
}

// ---------------------------------------------------------------------------
// Shared header helpers.

void PutSchema(std::string* out, const Schema& schema) {
  PutU32(out, static_cast<uint32_t>(schema.num_fields()));
  for (const Field& f : schema.fields()) {
    PutU8(out, static_cast<uint8_t>(f.type));
    PutU32(out, static_cast<uint32_t>(f.name.size()));
    out->append(f.name);
  }
}

Result<std::vector<Field>> ReadSchema(Reader* reader) {
  uint32_t nfields = 0;
  if (!reader->ReadU32(&nfields)) return Status::IoError("truncated schema");
  std::vector<Field> fields;
  fields.reserve(nfields);
  for (uint32_t i = 0; i < nfields; ++i) {
    uint8_t type = 0;
    uint32_t name_len = 0;
    std::string name;
    if (!reader->ReadU8(&type) || !reader->ReadU32(&name_len) ||
        !reader->ReadString(name_len, &name)) {
      return Status::IoError("truncated field");
    }
    if (type > static_cast<uint8_t>(ValueType::kString)) {
      return Status::IoError("bad field type " + std::to_string(type));
    }
    fields.push_back(Field{std::move(name), static_cast<ValueType>(type)});
  }
  return fields;
}

size_t HeaderSize(const Table& table) {
  size_t size = 4;  // magic
  size += 4;        // nfields
  for (const Field& f : table.schema().fields()) {
    size += 1 + 4 + f.name.size();
  }
  size += 8;  // nrows
  return size;
}

/// Exact type- and bit-level value equality: NaN equals the same NaN bit
/// pattern, -0.0 differs from +0.0, and 5 differs from 5.0 — the relation
/// under which a receiver's cached bytes can stand in for shipped ones.
bool WireEqual(const Value& a, const Value& b) {
  if (a.type() != b.type()) return false;
  switch (a.type()) {
    case ValueType::kNull:
      return true;
    case ValueType::kInt64:
      return a.AsInt64() == b.AsInt64();
    case ValueType::kDouble: {
      uint64_t ba = 0;
      uint64_t bb = 0;
      const double da = a.AsDouble();
      const double db = b.AsDouble();
      std::memcpy(&ba, &da, 8);
      std::memcpy(&bb, &db, 8);
      return ba == bb;
    }
    case ValueType::kString:
      return a.AsString() == b.AsString();
  }
  return false;
}

/// Cells (rows x fields) a decoder is willing to materialize from one
/// payload. SKL2's all-null column codec is a single tag byte whatever the
/// row count, so no payload-proportional bound is sound for the columnar
/// path — the guard is absolute instead.
constexpr uint64_t kMaxDecodedCells = uint64_t{1} << 32;

/// Clamp for up-front reserves so a large-but-plausible claimed row count
/// cannot throw std::bad_alloc before the payload proves it out; vectors
/// grow amortized past the clamp.
constexpr uint64_t kReserveClamp = uint64_t{1} << 16;

/// Rejects row counts the payload cannot back, before any allocation
/// proportional to the claim happens. SKL1 spends at least one tag byte
/// per value, giving a tight size-relative bound; SKL2 gets the absolute
/// cell cap (see kMaxDecodedCells).
Status CheckRowCount(uint64_t nrows, size_t nfields, size_t remaining,
                     bool columnar) {
  if (nrows == 0) return Status::OK();
  if (nfields == 0) return Status::IoError("row count out of range");
  const uint64_t limit = columnar
                             ? kMaxDecodedCells / nfields
                             : static_cast<uint64_t>(remaining) / nfields;
  if (nrows > limit) return Status::IoError("row count out of range");
  return Status::OK();
}

Result<Table> DecodeSkl1Body(Reader* reader) {
  SKALLA_ASSIGN_OR_RETURN(std::vector<Field> fields, ReadSchema(reader));
  const size_t nfields = fields.size();
  uint64_t nrows = 0;
  if (!reader->ReadU64(&nrows)) return Status::IoError("truncated row count");
  SKALLA_RETURN_NOT_OK(
      CheckRowCount(nrows, nfields, reader->remaining(), /*columnar=*/false));
  Table table(MakeSchema(std::move(fields)));
  table.Reserve(static_cast<int64_t>(nrows));
  for (uint64_t r = 0; r < nrows; ++r) {
    Row row;
    row.reserve(nfields);
    for (size_t c = 0; c < nfields; ++c) {
      SKALLA_ASSIGN_OR_RETURN(Value v, ReadValue(reader));
      row.push_back(std::move(v));
    }
    table.AddRow(std::move(row));
  }
  if (!reader->AtEnd()) return Status::IoError("trailing bytes after table");
  return table;
}

Result<Table> DecodeSkl2Body(Reader* reader) {
  SKALLA_ASSIGN_OR_RETURN(std::vector<Field> fields, ReadSchema(reader));
  const size_t nfields = fields.size();
  uint64_t nrows = 0;
  if (!reader->ReadU64(&nrows)) return Status::IoError("truncated row count");
  SKALLA_RETURN_NOT_OK(
      CheckRowCount(nrows, nfields, reader->remaining(), /*columnar=*/true));
  std::vector<std::vector<Value>> columns(nfields);
  if (nrows > 0) {
    for (size_t c = 0; c < nfields; ++c) {
      columns[c].reserve(static_cast<size_t>(std::min(nrows, kReserveClamp)));
      SKALLA_RETURN_NOT_OK(DecodeColumnRange(
          reader, static_cast<int64_t>(nrows), &columns[c]));
    }
  }
  if (!reader->AtEnd()) return Status::IoError("trailing bytes after table");
  Table table(MakeSchema(std::move(fields)));
  table.Reserve(static_cast<int64_t>(std::min(nrows, kReserveClamp)));
  for (uint64_t r = 0; r < nrows; ++r) {
    Row row;
    row.reserve(nfields);
    for (size_t c = 0; c < nfields; ++c) {
      row.push_back(std::move(columns[c][static_cast<size_t>(r)]));
    }
    table.AddRow(std::move(row));
  }
  return table;
}

Result<Table> DecodeDeltaBody(const Table* cached, Reader* reader) {
  if (cached == nullptr) {
    return Status::IoError("delta payload without a cached base table");
  }
  uint64_t base_hash = 0;
  if (!reader->ReadU64(&base_hash)) {
    return Status::IoError("truncated delta base hash");
  }
  if (base_hash != Serializer::ContentHash(*cached)) {
    return Status::IoError("delta base hash mismatch");
  }
  SKALLA_ASSIGN_OR_RETURN(std::vector<Field> fields, ReadSchema(reader));
  const size_t nfields = fields.size();
  const size_t base_cols =
      static_cast<size_t>(cached->schema().num_fields());
  // Per-column mapping into the base: 0 = new column, k = base column k-1.
  std::vector<int> mapping(nfields, -1);
  for (size_t c = 0; c < nfields; ++c) {
    SKALLA_ASSIGN_OR_RETURN(uint64_t m, ReadVarint(reader));
    if (m == 0) continue;
    if (m > base_cols) {
      return Status::IoError("delta column mapping out of range");
    }
    const int k = static_cast<int>(m - 1);
    if (cached->schema().fields()[static_cast<size_t>(k)].name !=
        fields[c].name) {
      return Status::IoError("delta column mapping name mismatch");
    }
    mapping[c] = k;
  }
  SKALLA_ASSIGN_OR_RETURN(uint64_t kept_rows, ReadVarint(reader));
  SKALLA_ASSIGN_OR_RETURN(uint64_t total_rows, ReadVarint(reader));
  if (kept_rows > static_cast<uint64_t>(cached->num_rows()) ||
      kept_rows > total_rows) {
    return Status::IoError("delta row counts out of range");
  }
  // Rows beyond kept_rows must be carried by the payload; kept rows come
  // from the cache for free, so only the appended span (and, when any
  // column is new, the full span) is bounded against the remaining bytes.
  SKALLA_RETURN_NOT_OK(CheckRowCount(total_rows - kept_rows, nfields,
                                     reader->remaining(), /*columnar=*/true));
  for (size_t c = 0; c < nfields; ++c) {
    if (mapping[c] < 0) {
      SKALLA_RETURN_NOT_OK(CheckRowCount(total_rows, nfields,
                                         reader->remaining(),
                                         /*columnar=*/true));
      break;
    }
  }
  // Column sections: new columns over all rows, mapped columns over the
  // appended suffix only.
  std::vector<std::vector<Value>> sections(nfields);
  for (size_t c = 0; c < nfields; ++c) {
    const int64_t n = static_cast<int64_t>(
        mapping[c] < 0 ? total_rows : total_rows - kept_rows);
    if (n > 0) {
      sections[c].reserve(static_cast<size_t>(
          std::min(static_cast<uint64_t>(n), kReserveClamp)));
      SKALLA_RETURN_NOT_OK(DecodeColumnRange(reader, n, &sections[c]));
    }
  }
  if (!reader->AtEnd()) return Status::IoError("trailing bytes after delta");
  Table table(MakeSchema(std::move(fields)));
  table.Reserve(static_cast<int64_t>(std::min(total_rows, kReserveClamp)));
  for (uint64_t r = 0; r < total_rows; ++r) {
    Row row;
    row.reserve(nfields);
    for (size_t c = 0; c < nfields; ++c) {
      if (mapping[c] >= 0 && r < kept_rows) {
        row.push_back(cached->Get(static_cast<int64_t>(r), mapping[c]));
      } else if (mapping[c] >= 0) {
        row.push_back(
            std::move(sections[c][static_cast<size_t>(r - kept_rows)]));
      } else {
        row.push_back(std::move(sections[c][static_cast<size_t>(r)]));
      }
    }
    table.AddRow(std::move(row));
  }
  return table;
}

}  // namespace

namespace {

/// SKL2 payload size computed through the row path only — the reference
/// encoder's reserve must not touch the columnar snapshot.
size_t RowPathPayloadSize(const Table& table, Serializer::Format format) {
  if (format == Serializer::Format::kSkl1) {
    size_t size = 0;
    for (const Row& row : table.rows()) {
      for (const Value& v : row) size += v.SerializedSize();
    }
    return size;
  }
  const int64_t nrows = table.num_rows();
  if (nrows == 0) return 0;
  size_t size = 0;
  for (int c = 0; c < table.schema().num_fields(); ++c) {
    size += ColumnRangeSize(table, c, 0, nrows);
  }
  return size;
}

std::string SerializeTableImpl(const Table& table, Serializer::Format format,
                               bool columnar_feed) {
  obs::ScopedSpan span("serialize");
  static obs::Histogram& encode_seconds = obs::GetHistogram(
      "skalla_storage_encode_seconds", obs::HistogramLayout::LatencySeconds());
  obs::ScopedHistogramTimer timer(&encode_seconds);
  std::string out;
  out.reserve(columnar_feed
                  ? Serializer::WireSize(table, format)
                  : HeaderSize(table) + RowPathPayloadSize(table, format));
  PutU32(&out, format == Serializer::Format::kSkl1 ? kMagicSkl1 : kMagicSkl2);
  PutSchema(&out, table.schema());
  const int64_t nrows = table.num_rows();
  PutU64(&out, static_cast<uint64_t>(nrows));
  if (format == Serializer::Format::kSkl1) {
    for (const Row& row : table.rows()) {
      for (const Value& v : row) PutValue(&out, v);
    }
  } else if (nrows > 0) {
    const std::shared_ptr<const ColumnarTable> view =
        columnar_feed ? table.columnar() : nullptr;
    for (int c = 0; c < table.schema().num_fields(); ++c) {
      if (view != nullptr && view->column(c).usable) {
        EncodeColumnarFull(&out, view->column(c), nrows);
      } else {
        EncodeColumnRange(&out, table, c, 0, nrows);
      }
    }
  }
  if (span.armed()) {
    span.set_detail(
        (format == Serializer::Format::kSkl1 ? "SKL1 " : "SKL2 ") +
        std::to_string(nrows) + " rows " + std::to_string(out.size()) + "B");
  }
  if (obs::MetricsEnabled()) {
    static obs::Histogram& skl1_bytes =
        obs::GetHistogram("skalla_storage_wire_bytes{format=\"SKL1\"}",
                          obs::HistogramLayout::Bytes());
    static obs::Histogram& skl2_bytes =
        obs::GetHistogram("skalla_storage_wire_bytes{format=\"SKL2\"}",
                          obs::HistogramLayout::Bytes());
    (format == Serializer::Format::kSkl1 ? skl1_bytes : skl2_bytes)
        .Observe(static_cast<double>(out.size()));
  }
  return out;
}

}  // namespace

std::string Serializer::SerializeTable(const Table& table, Format format) {
  return SerializeTableImpl(table, format, /*columnar_feed=*/true);
}

std::string Serializer::SerializeTableRowPath(const Table& table,
                                              Format format) {
  return SerializeTableImpl(table, format, /*columnar_feed=*/false);
}

Result<Table> Serializer::DeserializeTable(std::string_view bytes) {
  obs::ScopedSpan span("deserialize");
  if (span.armed()) {
    span.set_detail(std::to_string(bytes.size()) + "B");
  }
  Reader reader(bytes);
  uint32_t magic = 0;
  if (!reader.ReadU32(&magic)) return Status::IoError("bad table magic");
  switch (magic) {
    case kMagicSkl1:
      return DecodeSkl1Body(&reader);
    case kMagicSkl2:
      return DecodeSkl2Body(&reader);
    case kMagicSkld:
      return Status::IoError(
          "delta payload requires a cached base (use DecodeShipment)");
    default:
      return Status::IoError("bad table magic");
  }
}

size_t Serializer::WireSize(const Table& table, Format format) {
  return HeaderSize(table) + TablePayloadSize(table, format);
}

size_t Serializer::TablePayloadSize(const Table& table, Format format) {
  if (format == Format::kSkl1) {
    size_t size = 0;
    for (const Row& row : table.rows()) {
      for (const Value& v : row) size += v.SerializedSize();
    }
    return size;
  }
  const int64_t nrows = table.num_rows();
  if (nrows == 0) return 0;
  const std::shared_ptr<const ColumnarTable> view = table.columnar();
  size_t size = 0;
  for (int c = 0; c < table.schema().num_fields(); ++c) {
    const ColumnarTable::Column& col = view->column(c);
    size += col.usable ? ColumnarFullSize(col, nrows)
                       : ColumnRangeSize(table, c, 0, nrows);
  }
  return size;
}

std::string Serializer::SerializeDelta(const Table& base,
                                       const Table& table) {
  obs::ScopedSpan span("serialize.delta");
  static obs::Histogram& encode_seconds = obs::GetHistogram(
      "skalla_storage_encode_seconds", obs::HistogramLayout::LatencySeconds());
  obs::ScopedHistogramTimer timer(&encode_seconds);
  const size_t nfields = static_cast<size_t>(table.schema().num_fields());
  const size_t base_cols = static_cast<size_t>(base.schema().num_fields());
  // Match columns by name + declared type (first match wins; field names
  // are unique within a schema).
  std::vector<int> mapping(nfields, -1);
  for (size_t c = 0; c < nfields; ++c) {
    const Field& f = table.schema().fields()[c];
    for (size_t k = 0; k < base_cols; ++k) {
      const Field& bf = base.schema().fields()[k];
      if (bf.name == f.name && bf.type == f.type) {
        mapping[c] = static_cast<int>(k);
        break;
      }
    }
  }
  // kept_rows: longest shared prefix over which every mapped column is
  // bit-identical to the base (so the receiver's cached rows stand in).
  int64_t kept = std::min(base.num_rows(), table.num_rows());
  bool any_mapped = false;
  for (size_t c = 0; c < nfields; ++c) {
    if (mapping[c] >= 0) any_mapped = true;
  }
  if (!any_mapped) kept = 0;
  for (int64_t r = 0; r < kept; ++r) {
    for (size_t c = 0; c < nfields; ++c) {
      if (mapping[c] < 0) continue;
      if (!WireEqual(table.Get(r, static_cast<int>(c)),
                     base.Get(r, mapping[c]))) {
        kept = r;
        break;
      }
    }
  }
  const int64_t total = table.num_rows();
  std::string out;
  PutU32(&out, kMagicSkld);
  PutU64(&out, ContentHash(base));
  PutSchema(&out, table.schema());
  for (size_t c = 0; c < nfields; ++c) {
    PutVarint(&out, mapping[c] < 0 ? 0
                                   : static_cast<uint64_t>(mapping[c]) + 1);
  }
  PutVarint(&out, static_cast<uint64_t>(kept));
  PutVarint(&out, static_cast<uint64_t>(total));
  for (size_t c = 0; c < nfields; ++c) {
    const int64_t begin = mapping[c] < 0 ? 0 : kept;
    if (begin < total) {
      EncodeColumnRange(&out, table, static_cast<int>(c), begin, total);
    }
  }
  if (span.armed()) {
    span.set_detail("SKLD kept " + std::to_string(kept) + "/" +
                    std::to_string(total) + " rows " +
                    std::to_string(out.size()) + "B");
  }
  if (obs::MetricsEnabled()) {
    static obs::Histogram& skld_bytes =
        obs::GetHistogram("skalla_storage_wire_bytes{format=\"SKLD\"}",
                          obs::HistogramLayout::Bytes());
    skld_bytes.Observe(static_cast<double>(out.size()));
  }
  return out;
}

Result<Table> Serializer::DecodeShipment(const Table* cached,
                                         std::string_view bytes) {
  obs::ScopedSpan span("decode.shipment");
  if (span.armed()) {
    span.set_detail(std::to_string(bytes.size()) + "B");
  }
  Reader reader(bytes);
  uint32_t magic = 0;
  if (!reader.ReadU32(&magic)) return Status::IoError("bad table magic");
  switch (magic) {
    case kMagicSkl1:
      return DecodeSkl1Body(&reader);
    case kMagicSkl2:
      return DecodeSkl2Body(&reader);
    case kMagicSkld:
      return DecodeDeltaBody(cached, &reader);
    default:
      return Status::IoError("bad table magic");
  }
}

uint64_t Serializer::ContentHash(const Table& table) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  auto mix_bytes = [&h](const void* data, size_t n) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      h = (h ^ p[i]) * 1099511628211ull;
    }
  };
  auto mix_u64 = [&mix_bytes](uint64_t v) { mix_bytes(&v, 8); };
  mix_u64(static_cast<uint64_t>(table.schema().num_fields()));
  for (const Field& f : table.schema().fields()) {
    mix_u64(static_cast<uint64_t>(f.type));
    mix_u64(f.name.size());
    mix_bytes(f.name.data(), f.name.size());
  }
  mix_u64(static_cast<uint64_t>(table.num_rows()));
  for (const Row& row : table.rows()) {
    for (const Value& v : row) {
      mix_u64(static_cast<uint64_t>(v.type()));
      switch (v.type()) {
        case ValueType::kNull:
          break;
        case ValueType::kInt64:
          mix_u64(static_cast<uint64_t>(v.AsInt64()));
          break;
        case ValueType::kDouble: {
          uint64_t bits = 0;
          const double d = v.AsDouble();
          std::memcpy(&bits, &d, 8);
          mix_u64(bits);
          break;
        }
        case ValueType::kString:
          mix_u64(v.AsString().size());
          mix_bytes(v.AsString().data(), v.AsString().size());
          break;
      }
    }
  }
  return h;
}

}  // namespace skalla

#include "tpc/dbgen.h"

#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"

namespace skalla {

namespace {

const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD",
                           "MACHINERY"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};
const char* kShipModes[] = {"AIR", "FOB", "MAIL", "RAIL",
                            "REG AIR", "SHIP", "TRUCK"};

}  // namespace

SchemaPtr TpcrSchema() {
  return MakeSchema({
      {"OrderKey", ValueType::kInt64},
      {"LineNumber", ValueType::kInt64},
      {"CustKey", ValueType::kInt64},
      {"CustName", ValueType::kString},
      {"NationKey", ValueType::kInt64},
      {"RegionKey", ValueType::kInt64},
      {"MktSegment", ValueType::kString},
      {"PartKey", ValueType::kInt64},
      {"SuppKey", ValueType::kInt64},
      {"Clerk", ValueType::kString},
      {"ClerkKey", ValueType::kInt64},
      {"Quantity", ValueType::kInt64},
      {"ExtendedPrice", ValueType::kDouble},
      {"Discount", ValueType::kDouble},
      {"Tax", ValueType::kDouble},
      {"OrderDate", ValueType::kInt64},
      {"ShipDate", ValueType::kInt64},
      {"OrderPriority", ValueType::kString},
      {"ShipMode", ValueType::kString},
  });
}

std::string CustomerName(int64_t cust_key) {
  return StrFormat("Customer#%09lld", static_cast<long long>(cust_key));
}

int64_t NationOfCustomer(int64_t cust_key, const TpcConfig& config) {
  // Block mapping: contiguous customer-key ranges per nation, so that a
  // contiguous NationKey range owns a contiguous CustKey range.
  const int64_t block =
      (config.num_customers + config.num_nations - 1) / config.num_nations;
  int64_t nation = cust_key / block;
  if (nation >= config.num_nations) nation = config.num_nations - 1;
  return nation;
}

Table GenerateTpcr(const TpcConfig& config) {
  SKALLA_CHECK(config.num_rows >= 0);
  SKALLA_CHECK(config.num_customers > 0);
  SKALLA_CHECK(config.num_nations > 0);
  Rng rng(config.seed);
  Table table(TpcrSchema());
  table.Reserve(config.num_rows);

  int64_t order_key = 0;
  int64_t lines_left = 0;
  int64_t cust_key = 0;
  int64_t order_date = 0;
  std::string priority;

  for (int64_t i = 0; i < config.num_rows; ++i) {
    if (lines_left == 0) {
      // Start a new order with 1..7 line items.
      ++order_key;
      lines_left = rng.Uniform(1, 7);
      cust_key = config.cust_zipf_s > 0
                     ? rng.Zipf(config.num_customers, config.cust_zipf_s)
                     : rng.Uniform(0, config.num_customers - 1);
      order_date = rng.Uniform(0, 2404);  // days in [1992-01-01, 1998-08-02]
      priority = kPriorities[rng.Uniform(0, 4)];
    }
    const int64_t line_number = 8 - lines_left;
    --lines_left;

    const int64_t nation = NationOfCustomer(cust_key, config);
    const int64_t region = nation % 5;
    const int64_t part_key = rng.Uniform(0, config.num_parts - 1);
    const int64_t supp_key = rng.Uniform(0, config.num_suppliers - 1);
    const int64_t clerk_key = rng.Uniform(0, config.num_clerks - 1);
    const int64_t quantity = rng.Uniform(1, 50);
    // Integral doubles keep sums exactly representable, so distributed
    // merge order cannot perturb AVG results (prices are in whole dollars,
    // discount/tax in whole percent).
    const double price =
        static_cast<double>(quantity * rng.Uniform(900, 2100));
    const double discount = static_cast<double>(rng.Uniform(0, 10));
    const double tax = static_cast<double>(rng.Uniform(0, 8));
    const int64_t ship_date = order_date + rng.Uniform(1, 121);

    Row row;
    row.reserve(19);
    row.push_back(Value(order_key));
    row.push_back(Value(line_number));
    row.push_back(Value(cust_key));
    row.push_back(Value(CustomerName(cust_key)));
    row.push_back(Value(nation));
    row.push_back(Value(region));
    row.push_back(Value(std::string(kSegments[rng.Uniform(0, 4)])));
    row.push_back(Value(part_key));
    row.push_back(Value(supp_key));
    row.push_back(Value(StrFormat("Clerk#%06lld",
                                  static_cast<long long>(clerk_key))));
    row.push_back(Value(clerk_key));
    row.push_back(Value(quantity));
    row.push_back(Value(price));
    row.push_back(Value(discount));
    row.push_back(Value(tax));
    row.push_back(Value(order_date));
    row.push_back(Value(ship_date));
    row.push_back(Value(priority));
    row.push_back(Value(std::string(kShipModes[rng.Uniform(0, 6)])));
    table.AddRow(std::move(row));
  }
  return table;
}

}  // namespace skalla

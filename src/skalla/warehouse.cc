#include "skalla/warehouse.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "engine/operators.h"
#include "gmdj/central_eval.h"
#include "storage/freq_sketch.h"

namespace skalla {

Warehouse::Warehouse(int num_sites, NetworkConfig net) : net_(net) {
  sites_.reserve(static_cast<size_t>(num_sites));
  for (int i = 0; i < num_sites; ++i) {
    sites_.push_back(std::make_unique<Site>(i));
  }
}

Status Warehouse::LoadPartitioned(const std::string& name,
                                  PartitionedData data) {
  if (static_cast<int>(data.fragments.size()) != num_sites()) {
    return Status::InvalidArgument(
        "fragment count does not match site count");
  }
  std::vector<const Table*> fragment_ptrs;
  for (size_t i = 0; i < data.fragments.size(); ++i) {
    SKALLA_RETURN_NOT_OK(
        sites_[i]->catalog().AddTable(name, data.fragments[i]));
    if (i < data.infos.size()) {
      for (const auto& [attr, domain] : data.infos[i].domains()) {
        PartitionInfo& info = sites_[i]->mutable_partition_info();
        // φ_i is attribute-level across every relation at the site. If a
        // previously loaded relation declared a different domain for this
        // attribute, the sound combined domain is a superset of both;
        // widen to the numeric hull, or give up (kAny) when no hull
        // exists. Never silently replace — that could understate what the
        // site holds and make the Sect.-4 optimizations unsound.
        if (info.HasDomain(attr)) {
          const AttrDomain& existing = info.Domain(attr);
          double lo_a = 0, hi_a = 0, lo_b = 0, hi_b = 0;
          if (existing.NumericBounds(&lo_a, &hi_a) &&
              domain.NumericBounds(&lo_b, &hi_b)) {
            auto as_value = [](double v) {
              return v == std::floor(v) && std::abs(v) < 9.0e15
                         ? Value(static_cast<int64_t>(v))
                         : Value(v);
            };
            info.SetDomain(attr,
                           AttrDomain::Range(as_value(std::min(lo_a, lo_b)),
                                             as_value(std::max(hi_a, hi_b))));
          } else {
            info.SetDomain(attr, AttrDomain::Any());
          }
        } else {
          info.SetDomain(attr, domain);
        }
      }
    }
    fragment_ptrs.push_back(data.fragments[i].get());
  }
  SKALLA_ASSIGN_OR_RETURN(Table full, UnionAll(fragment_ptrs));
  return central_.AddTable(name,
                           std::make_shared<const Table>(std::move(full)));
}

Status Warehouse::LoadByRange(const std::string& name, const Table& table,
                              const std::string& attr, int64_t attr_min,
                              int64_t attr_max,
                              const std::vector<std::string>& profile_attrs) {
  SKALLA_ASSIGN_OR_RETURN(
      PartitionedData data,
      PartitionByRange(table, attr, num_sites(), attr_min, attr_max));
  if (!profile_attrs.empty()) {
    SKALLA_RETURN_NOT_OK(ProfileDomains(&data, profile_attrs));
  }
  return LoadPartitioned(name, std::move(data));
}

Status Warehouse::LoadByRangeWeighted(
    const std::string& name, const Table& table, const std::string& attr,
    int64_t attr_min, int64_t attr_max,
    const std::vector<std::string>& profile_attrs, double replicate_share) {
  SKALLA_ASSIGN_OR_RETURN(
      PartitionedData data,
      PartitionByRangeWeighted(table, attr, num_sites(), attr_min, attr_max));
  if (!profile_attrs.empty()) {
    SKALLA_RETURN_NOT_OK(ProfileDomains(&data, profile_attrs));
  }
  SKALLA_RETURN_NOT_OK(LoadPartitioned(name, std::move(data)));

  // Heavy-hitter mitigation: a single key holding more than
  // replicate_share of one site's fair share of rows cannot be balanced by
  // any contiguous boundary, so its site gets a standing replica — the
  // helper the skew rebalancer splits onto at query time.
  if (replicate_share <= 0 || table.num_rows() == 0) return Status::OK();
  SKALLA_ASSIGN_OR_RETURN(int idx, table.schema().MustIndexOf(attr));
  FreqSketch sketch;
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    sketch.Add(table.Get(r, idx).AsInt64());
  }
  const double min_share = replicate_share / static_cast<double>(num_sites());
  for (const FreqSketch::Entry& hh : sketch.HeavyHitters(min_share)) {
    for (int i = 0; i < num_sites(); ++i) {
      const PartitionInfo& info =
          sites_[static_cast<size_t>(i)]->partition_info();
      if (!info.HasDomain(attr) ||
          !info.Domain(attr).MayContain(Value(hh.key))) {
        continue;
      }
      Result<Site*> added = AddReplica(i);
      if (!added.ok() &&
          added.status().code() != StatusCode::kAlreadyExists) {
        return added.status();
      }
      break;  // φ ranges are disjoint: exactly one site holds the key
    }
  }
  return Status::OK();
}

Status Warehouse::LoadByHash(const std::string& name, const Table& table,
                             const std::string& attr) {
  SKALLA_ASSIGN_OR_RETURN(PartitionedData data,
                          PartitionByHash(table, attr, num_sites()));
  return LoadPartitioned(name, std::move(data));
}

std::vector<PartitionInfo> Warehouse::SiteInfos() const {
  std::vector<PartitionInfo> infos;
  infos.reserve(sites_.size());
  for (const auto& site : sites_) infos.push_back(site->partition_info());
  return infos;
}

Result<DistributedPlan> Warehouse::Plan(const GmdjExpr& expr,
                                        const OptimizerOptions& options) const {
  Optimizer optimizer(SiteInfos());
  return optimizer.BuildPlan(expr, options);
}

Result<QueryResult> Warehouse::Execute(const GmdjExpr& expr,
                                       const OptimizerOptions& options) {
  SKALLA_ASSIGN_OR_RETURN(DistributedPlan plan, Plan(expr, options));
  return ExecutePlan(plan);
}

Result<Site*> Warehouse::AddReplica(int site_id) {
  if (site_id < 0 || site_id >= num_sites()) {
    return Status::InvalidArgument("no site " + std::to_string(site_id) +
                                   " to replicate");
  }
  if (replicas_.count(site_id) > 0) {
    return Status::AlreadyExists("site " + std::to_string(site_id) +
                                 " already has a replica");
  }
  const Site& primary = *sites_[static_cast<size_t>(site_id)];
  auto replica = std::make_unique<Site>(
      num_sites() + static_cast<int>(replicas_.size()),
      primary.partition_info());
  replica->set_compute_scale(primary.compute_scale());
  for (const std::string& name : primary.catalog().TableNames()) {
    SKALLA_ASSIGN_OR_RETURN(std::shared_ptr<const Table> table,
                            primary.catalog().GetTable(name));
    replica->catalog().PutTable(name, table);
  }
  Site* out = replica.get();
  replicas_.emplace(site_id, std::move(replica));
  return out;
}

Result<QueryResult> Warehouse::ExecutePlan(const DistributedPlan& plan) {
  return ExecutePlan(plan, ExecHooks());
}

Result<QueryResult> Warehouse::ExecutePlan(const DistributedPlan& plan,
                                           const ExecHooks& hooks) {
  std::vector<Site*> site_ptrs;
  site_ptrs.reserve(sites_.size());
  for (const auto& site : sites_) site_ptrs.push_back(site.get());
  NetworkConfig net = net_;
  if (hooks.deadline_sec >= 0.0) net.retry.timeout_sec = hooks.deadline_sec;
  Coordinator coordinator(std::move(site_ptrs), net);
  coordinator.set_parallel_sites(parallel_sites_);
  coordinator.set_local_threads(
      hooks.local_threads >= 0 ? hooks.local_threads : local_threads_);
  coordinator.set_cancel_flag(hooks.cancel);
  coordinator.set_round_observer(hooks.round_observer);
  coordinator.set_resume(hooks.resume_x, hooks.resume_rounds);
  coordinator.set_ship_cache(hooks.ship_cache);
  coordinator.set_skew_detector(&skew_detector_);
  coordinator.network().set_fault_injector(injector_);
  for (const auto& [sid, replica] : replicas_) {
    coordinator.AddReplica(sid, replica.get());
  }
  QueryResult result;
  result.plan = plan;
  SKALLA_ASSIGN_OR_RETURN(result.table,
                          coordinator.Execute(plan, &result.metrics));
  return result;
}

Result<QueryResult> Warehouse::ExecutePlanTree(const DistributedPlan& plan,
                                               int fan_in) {
  std::vector<Site*> site_ptrs;
  site_ptrs.reserve(sites_.size());
  for (const auto& site : sites_) site_ptrs.push_back(site.get());
  TreeCoordinator coordinator(std::move(site_ptrs), fan_in, net_);
  coordinator.set_parallel_sites(parallel_sites_);
  coordinator.set_local_threads(local_threads_);
  coordinator.set_skew_detector(&skew_detector_);
  coordinator.network().set_fault_injector(injector_);
  for (const auto& [sid, replica] : replicas_) {
    coordinator.AddReplica(sid, replica.get());
  }
  QueryResult result;
  result.plan = plan;
  SKALLA_ASSIGN_OR_RETURN(result.table,
                          coordinator.Execute(plan, &result.metrics));
  return result;
}

Result<QueryResult> Warehouse::ExecuteAuto(const GmdjExpr& expr,
                                           int* chosen_fan_in) {
  SKALLA_ASSIGN_OR_RETURN(DistributedPlan plan,
                          Plan(expr, OptimizerOptions::All()));

  // Profile statistics for the base relation's key and θ-referenced
  // attributes (cached across queries).
  CostEstimator estimator(num_sites(), net_, SiteInfos());
  SKALLA_ASSIGN_OR_RETURN(const RelationStats* stats, BaseStats(plan));
  estimator.AddRelation(plan.base.source_table, *stats);

  int fan_in = 0;
  // Tree execution currently supports full-participation plans only.
  bool tree_eligible = plan.base_sites.empty();
  for (const PlanRound& round : plan.rounds) {
    if (!round.participating_sites.empty()) tree_eligible = false;
  }
  if (tree_eligible && num_sites() >= 4) {
    auto choice = estimator.ChooseArchitecture(plan, {2, 4});
    if (choice.ok()) fan_in = *choice;
  }
  if (chosen_fan_in != nullptr) *chosen_fan_in = fan_in;
  return fan_in == 0 ? ExecutePlan(plan) : ExecutePlanTree(plan, fan_in);
}

Result<const RelationStats*> Warehouse::BaseStats(
    const DistributedPlan& plan) {
  auto cached = stats_cache_.find(plan.base.source_table);
  if (cached == stats_cache_.end()) {
    SKALLA_ASSIGN_OR_RETURN(std::shared_ptr<const Table> full,
                            central_.GetTable(plan.base.source_table));
    // Profile every column of the base relation once; the estimator only
    // reads what a plan needs.
    SKALLA_ASSIGN_OR_RETURN(
        RelationStats stats,
        ProfileRelation(*full, full->schema().FieldNames()));
    cached = stats_cache_.emplace(plan.base.source_table, std::move(stats))
                 .first;
  }
  return &cached->second;
}

Result<CostBreakdown> Warehouse::EstimateCost(const DistributedPlan& plan) {
  SKALLA_ASSIGN_OR_RETURN(const RelationStats* stats, BaseStats(plan));
  CostEstimator estimator(num_sites(), net_, SiteInfos());
  estimator.AddRelation(plan.base.source_table, *stats);
  return estimator.EstimateFlat(plan);
}

Result<Table> Warehouse::ExecuteCentralized(const GmdjExpr& expr) const {
  return EvalGmdjExprCentralized(expr, central_, local_threads_);
}

Status Warehouse::AppendRow(const std::string& table, const Row& row) {
  SKALLA_ASSIGN_OR_RETURN(std::shared_ptr<const Table> central_table,
                          central_.GetTable(table));
  const Schema& schema = central_table->schema();
  if (static_cast<int>(row.size()) != schema.num_fields()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " values; " + table +
        " has " + std::to_string(schema.num_fields()) + " columns");
  }
  for (int c = 0; c < schema.num_fields(); ++c) {
    const Value& v = row[static_cast<size_t>(c)];
    if (!v.is_null() && v.type() != schema.field(c).type) {
      return Status::TypeError(
          "column " + schema.field(c).name + " expects " +
          ValueTypeToString(schema.field(c).type) + ", got " +
          ValueTypeToString(v.type()));
    }
  }

  // Route to the unique site whose φ_i admits every attribute value. φ
  // domains are conservative, so a site with no declared domain for an
  // attribute accepts any value of it; a row no site admits is rejected
  // rather than silently mis-placed (that would make the Sect.-4
  // optimizations unsound).
  int target = -1;
  for (int i = 0; i < num_sites(); ++i) {
    if (!sites_[static_cast<size_t>(i)]->catalog().HasTable(table)) continue;
    bool admits = true;
    for (const auto& [attr, domain] :
         sites_[static_cast<size_t>(i)]->partition_info().domains()) {
      const std::optional<int> col = schema.IndexOf(attr);
      if (!col.has_value()) continue;
      if (!domain.MayContain(row[static_cast<size_t>(*col)])) {
        admits = false;
        break;
      }
    }
    if (admits) {
      target = i;
      break;
    }
  }
  if (target < 0) {
    return Status::InvalidArgument(
        "no site's partition predicate admits the row (declared domains "
        "would be violated)");
  }

  // Copy-on-write everywhere: readers holding the old shared_ptrs keep a
  // consistent snapshot, and each fresh Table starts with an empty
  // columnar cache.
  auto append_to = [&row](const Table& old) {
    Table grown(old.schema_ptr(), old.rows());
    grown.AddRow(row);
    return std::make_shared<const Table>(std::move(grown));
  };
  Site& site = *sites_[static_cast<size_t>(target)];
  SKALLA_ASSIGN_OR_RETURN(std::shared_ptr<const Table> fragment,
                          site.catalog().GetTable(table));
  site.catalog().PutTable(table, append_to(*fragment));
  // A registered replica mirrors the primary's partitions; keep it
  // coherent so failover after a mutation cannot lose the row.
  auto replica = replicas_.find(target);
  if (replica != replicas_.end() &&
      replica->second->catalog().HasTable(table)) {
    SKALLA_ASSIGN_OR_RETURN(std::shared_ptr<const Table> replica_fragment,
                            replica->second->catalog().GetTable(table));
    replica->second->catalog().PutTable(table, append_to(*replica_fragment));
  }
  central_.PutTable(table, append_to(*central_table));
  // The relation's profiled statistics are stale now.
  stats_cache_.erase(table);
  return Status::OK();
}

}  // namespace skalla

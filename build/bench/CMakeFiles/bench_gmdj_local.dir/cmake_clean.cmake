file(REMOVE_RECURSE
  "CMakeFiles/bench_gmdj_local.dir/bench_gmdj_local.cc.o"
  "CMakeFiles/bench_gmdj_local.dir/bench_gmdj_local.cc.o.d"
  "bench_gmdj_local"
  "bench_gmdj_local.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gmdj_local.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

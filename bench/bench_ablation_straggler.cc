// Ablation: heterogeneous sites. Each synchronized round waits for its
// slowest site, so one slow local warehouse gates the whole query. Sweeps
// the straggler's relative speed and shows the effect on the combined
// query, with and without the optimizations (fewer rounds → fewer times
// the straggler is waited for), with streaming synchronization, and with
// the skew rebalancer splitting the straggler's scan onto a replica
// (docs/skew.md). Writes BENCH_ablation_straggler.json.
//
//   ./bench_ablation_straggler [--quick]
//
// --quick shrinks the relation and skips the google-benchmark pass.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>

#include "bench_util.h"

namespace {

using namespace skalla;
using bench::JsonReport;
using bench::MustExecute;

bool g_quick = false;

std::unique_ptr<Warehouse> MakeWarehouse(double straggler_scale,
                                         bool rebalance = false) {
  TpcConfig config;
  config.num_rows = g_quick ? 12000 : 60000;
  config.num_customers = 4000;
  config.num_nations = 24;
  Table tpcr = GenerateTpcr(config);
  auto warehouse = std::make_unique<Warehouse>(8);
  Status status = warehouse->LoadByRange("TPCR", tpcr, "NationKey", 0, 23,
                                         {"CustKey"});
  if (!status.ok()) std::abort();
  warehouse->site(3).set_compute_scale(straggler_scale);
  if (rebalance) {
    RebalanceConfig rc;
    rc.enabled = true;
    rc.min_rows_to_split = 512;
    warehouse->set_rebalance_config(rc);
    if (!warehouse->AddReplica(3).ok()) std::abort();
  }
  return warehouse;
}

void BM_Straggler(benchmark::State& state) {
  const double scale = 1.0 / static_cast<double>(state.range(0));
  const bool optimized = state.range(1) != 0;
  auto warehouse = MakeWarehouse(scale);
  const GmdjExpr query = queries::CombinedQuery("CustKey");
  const OptimizerOptions options =
      optimized ? OptimizerOptions::All() : OptimizerOptions::None();
  for (auto _ : state) {
    QueryResult result = MustExecute(*warehouse, query, options);
    state.SetIterationTime(result.metrics.ResponseSeconds());
    state.counters["site_max_s"] = result.metrics.SiteCpuSeconds();
  }
  state.SetLabel(std::string("slowdown-x") +
                 std::to_string(state.range(0)) +
                 (optimized ? "/optimized" : "/naive"));
}
BENCHMARK(BM_Straggler)
    ->ArgsProduct({{1, 4, 16, 64}, {0, 1}})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void PrintTable() {
  JsonReport report("ablation_straggler");
  const GmdjExpr query = queries::CombinedQuery("CustKey");
  std::printf("\n=== Straggler ablation: one of 8 sites slowed, combined "
              "query, response [s] ===\n");
  std::printf("%-12s %10s %12s %14s %12s\n", "slowdown", "naive",
              "all-reductions", "+streaming", "+rebalance");
  for (int slowdown : {1, 4, 16, 64}) {
    auto warehouse = MakeWarehouse(1.0 / slowdown);
    QueryResult naive =
        MustExecute(*warehouse, query, OptimizerOptions::None());
    QueryResult optimized =
        MustExecute(*warehouse, query, OptimizerOptions::All());
    NetworkConfig streaming_net = warehouse->network_config();
    streaming_net.streaming_sync = true;
    warehouse->set_network_config(streaming_net);
    QueryResult streaming =
        MustExecute(*warehouse, query, OptimizerOptions::All());
    // The rebalanced run uses a fresh warehouse (warm detectors and caches
    // stay per-configuration) with a replica of the slow site armed.
    auto rebalanced_wh = MakeWarehouse(1.0 / slowdown, /*rebalance=*/true);
    MustExecute(*rebalanced_wh, query, OptimizerOptions::All());  // warm-up
    QueryResult rebalanced =
        MustExecute(*rebalanced_wh, query, OptimizerOptions::All());
    std::printf("%-12s %10.3f %12.3f %14.3f %12.3f\n",
                ("x" + std::to_string(slowdown)).c_str(),
                naive.metrics.ResponseSeconds(),
                optimized.metrics.ResponseSeconds(),
                streaming.metrics.ResponseSeconds(),
                rebalanced.metrics.ResponseSeconds());
    const double x = static_cast<double>(slowdown);
    report.Add("naive/x" + std::to_string(slowdown),
               {{"slowdown", x}, {"optimized", 0}},
               naive.metrics.ResponseSeconds() * 1e3,
               static_cast<int64_t>(naive.metrics.TotalBytes()));
    report.Add("optimized/x" + std::to_string(slowdown),
               {{"slowdown", x}, {"optimized", 1}},
               optimized.metrics.ResponseSeconds() * 1e3,
               static_cast<int64_t>(optimized.metrics.TotalBytes()));
    report.Add("streaming/x" + std::to_string(slowdown),
               {{"slowdown", x}, {"optimized", 1}, {"streaming", 1}},
               streaming.metrics.ResponseSeconds() * 1e3,
               static_cast<int64_t>(streaming.metrics.TotalBytes()));
    report.Add(
        "rebalance/x" + std::to_string(slowdown),
        {{"slowdown", x},
         {"optimized", 1},
         {"splits",
          static_cast<double>(rebalanced.metrics.RebalanceSplits())}},
        rebalanced.metrics.ResponseSeconds() * 1e3,
        static_cast<int64_t>(rebalanced.metrics.TotalBytes()));
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --quick before google-benchmark sees (and rejects) it.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      g_quick = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  benchmark::Initialize(&argc, argv);
  if (!g_quick) benchmark::RunSpecifiedBenchmarks();
  PrintTable();
  return 0;
}

// Metrics-registry correctness (ISSUE 9): exact totals under concurrent
// hammering (run under TSan via the "metrics" ctest label), disabled-mode
// no-op semantics, exposition/JSONL formats, registry diffing, the STATS
// additive contract, and the PROFILE verb's round-trip equality with the
// query's own ExecutionMetrics.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "server/server.h"
#include "sql/olap_parser.h"
#include "test_util.h"
#include "tpc/dbgen.h"

namespace skalla {
namespace server {
namespace {

constexpr const char* kChain =
    "SELECT CustKey, COUNT(*) AS cnt FROM TPCR GROUP BY CustKey "
    "EXTEND SUM(Quantity) AS sq WHERE Quantity >= cnt";

/// Re-enables the registry when a test that disabled it exits.
class EnabledGuard {
 public:
  EnabledGuard() { obs::EnableMetrics(true); }
  ~EnabledGuard() { obs::EnableMetrics(true); }
};

/// Parses `\n<key> <integer>` out of a PROFILE payload's totals section.
uint64_t ProfileTotal(const std::string& profile, const std::string& key) {
  const std::string needle = "\n" + key + " ";
  const size_t pos = profile.find(needle);
  EXPECT_NE(pos, std::string::npos) << key << " missing in:\n" << profile;
  if (pos == std::string::npos) return 0;
  return std::strtoull(profile.c_str() + pos + needle.size(), nullptr, 10);
}

TEST(MetricsRegistryTest, ConcurrentCounterIsExact) {
  EnabledGuard enabled;
  obs::Counter& counter = obs::GetCounter("skalla_test_concurrent_total");
  counter.Reset();
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(MetricsRegistryTest, ConcurrentHistogramBucketSumEqualsCount) {
  EnabledGuard enabled;
  obs::Histogram& hist = obs::GetHistogram(
      "skalla_test_concurrent_seconds", obs::HistogramLayout::LatencySeconds());
  hist.Reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.Observe(1e-6 * static_cast<double>((i + t) % 1000 + 1));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const uint64_t expected = static_cast<uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(hist.Count(), expected);
  const std::vector<uint64_t> buckets = hist.BucketCounts();
  uint64_t bucket_sum = 0;
  for (uint64_t b : buckets) bucket_sum += b;
  EXPECT_EQ(bucket_sum, expected);  // no observation lost or double-binned
  EXPECT_GT(hist.Sum(), 0.0);
  // All observations lie in [1 µs, 1 ms]: the quantiles must too.
  EXPECT_GE(hist.Quantile(0.50), 1e-6);
  EXPECT_LE(hist.Quantile(0.99), 2e-3);
}

TEST(MetricsRegistryTest, ConcurrentGaugePairsToZero) {
  EnabledGuard enabled;
  obs::Gauge& gauge = obs::GetGauge("skalla_test_concurrent_depth");
  gauge.Reset();
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < 50000; ++i) {
        gauge.Add(2);
        gauge.Sub(2);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(gauge.Value(), 0);
}

TEST(MetricsRegistryTest, DisabledRegistryIsANoOp) {
  EnabledGuard enabled;
  obs::Counter& counter = obs::GetCounter("skalla_test_disabled_total");
  obs::Gauge& gauge = obs::GetGauge("skalla_test_disabled_depth");
  obs::Histogram& hist = obs::GetHistogram("skalla_test_disabled_seconds",
                                           obs::HistogramLayout::Ratio());
  counter.Reset();
  gauge.Reset();
  hist.Reset();

  obs::EnableMetrics(false);
  EXPECT_FALSE(obs::MetricsEnabled());
  counter.Add(7);
  gauge.Add(7);
  hist.Observe(0.5);
  { obs::GaugeGuard guard(&gauge); }  // not armed while disabled
  EXPECT_EQ(counter.Value(), 0u);
  EXPECT_EQ(gauge.Value(), 0);
  EXPECT_EQ(hist.Count(), 0u);

  obs::EnableMetrics(true);
  counter.Add(7);
  EXPECT_EQ(counter.Value(), 7u);
}

TEST(MetricsRegistryTest, GaugeGuardPairsAcrossAGateFlip) {
  EnabledGuard enabled;
  obs::Gauge& gauge = obs::GetGauge("skalla_test_guard_depth");
  gauge.Reset();
  {
    obs::GaugeGuard guard(&gauge);
    EXPECT_EQ(gauge.Value(), 1);
    // The gate flips off mid-flight; the armed guard must still undo its
    // own increment or the gauge would stay skewed forever.
    obs::EnableMetrics(false);
  }
  EXPECT_EQ(gauge.Value(), 0);
}

TEST(MetricsRegistryTest, DiffSubtractsFlowsAndKeepsLevels) {
  EnabledGuard enabled;
  obs::Counter& counter = obs::GetCounter("skalla_test_diff_total");
  obs::Gauge& gauge = obs::GetGauge("skalla_test_diff_depth");
  obs::Histogram& hist = obs::GetHistogram("skalla_test_diff_seconds",
                                           obs::HistogramLayout::Ratio());
  counter.Reset();
  gauge.Reset();
  hist.Reset();
  counter.Add(5);
  gauge.Add(5);
  hist.Observe(0.01);

  std::vector<obs::MetricValue> before = obs::SnapshotMetrics();
  counter.Add(3);
  gauge.Sub(2);
  hist.Observe(0.02);
  hist.Observe(0.04);
  std::vector<obs::MetricValue> diff =
      obs::DiffMetrics(before, obs::SnapshotMetrics());

  auto find = [&diff](const std::string& name) -> const obs::MetricValue* {
    for (const obs::MetricValue& v : diff) {
      if (v.name == name) return &v;
    }
    return nullptr;
  };
  const obs::MetricValue* c = find("skalla_test_diff_total");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->counter_value, 3u);  // flow: after - before
  const obs::MetricValue* g = find("skalla_test_diff_depth");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->gauge_value, 3);  // level: the after value
  const obs::MetricValue* h = find("skalla_test_diff_seconds");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->hist_count, 2u);
  EXPECT_NEAR(h->hist_sum, 0.06, 1e-12);
}

TEST(MetricsRegistryTest, ExpositionFormatGolden) {
  std::vector<obs::MetricValue> values;
  obs::MetricValue c;
  c.name = "skalla_unit_ops_total";
  c.kind = obs::MetricKind::kCounter;
  c.counter_value = 3;
  values.push_back(c);
  obs::MetricValue g;
  g.name = "skalla_unit_queue_depth";
  g.kind = obs::MetricKind::kGauge;
  g.gauge_value = -2;
  values.push_back(g);
  obs::MetricValue h;
  h.name = "skalla_unit_wait_seconds{lane=\"low\"}";
  h.kind = obs::MetricKind::kHistogram;
  h.bounds = {0.5, 1.0};
  h.buckets = {1, 2, 3};
  h.hist_count = 6;
  h.hist_sum = 4.5;
  values.push_back(h);

  EXPECT_EQ(obs::ExposeMetrics(values),
            "# TYPE skalla_unit_ops_total counter\n"
            "skalla_unit_ops_total 3\n"
            "# TYPE skalla_unit_queue_depth gauge\n"
            "skalla_unit_queue_depth -2\n"
            "# TYPE skalla_unit_wait_seconds histogram\n"
            "skalla_unit_wait_seconds_bucket{lane=\"low\",le=\"0.5\"} 1\n"
            "skalla_unit_wait_seconds_bucket{lane=\"low\",le=\"1\"} 3\n"
            "skalla_unit_wait_seconds_bucket{lane=\"low\",le=\"+Inf\"} 6\n"
            "skalla_unit_wait_seconds_sum{lane=\"low\"} 4.5\n"
            "skalla_unit_wait_seconds_count{lane=\"low\"} 6\n");

  const std::string jsonl = obs::MetricsJsonl(values);
  EXPECT_NE(jsonl.find("{\"name\":\"skalla_unit_ops_total\",\"kind\":"
                       "\"counter\",\"value\":3}"),
            std::string::npos);
  EXPECT_NE(jsonl.find("\"count\":6,\"sum\":4.5"), std::string::npos);
}

TEST(MetricsRegistryTest, SplitMetricName) {
  std::string base;
  std::string labels;
  obs::SplitMetricName("skalla_x_total", &base, &labels);
  EXPECT_EQ(base, "skalla_x_total");
  EXPECT_EQ(labels, "");
  obs::SplitMetricName("skalla_x_total{site=\"3\",dir=\"in\"}", &base,
                       &labels);
  EXPECT_EQ(base, "skalla_x_total");
  EXPECT_EQ(labels, "site=\"3\",dir=\"in\"");
}

// ---- Server integration: METRICS, STATS additivity, PROFILE ---------------

std::unique_ptr<Server> MakeLoadedServer(int64_t rows = 3000) {
  auto srv = std::make_unique<Server>(4);
  Client admin(srv.get());
  auto loaded = admin.Call("LOAD tpcr " + std::to_string(rows));
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
  return srv;
}

TEST(MetricsServingTest, MetricsVerbExposesTheRegistry) {
  EnabledGuard enabled;
  auto srv = MakeLoadedServer();
  Client client(srv.get());
  ASSERT_OK_AND_ASSIGN(std::string ignored,
                       client.Call(std::string("QUERY ") + kChain));

  ASSERT_OK_AND_ASSIGN(std::string text, client.Call("METRICS"));
  EXPECT_NE(text.find("# TYPE skalla_server_queries_submitted_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("skalla_dist_rounds_total"), std::string::npos);
  EXPECT_NE(text.find("skalla_server_query_seconds_bucket"),
            std::string::npos);

  ASSERT_OK_AND_ASSIGN(std::string jsonl, client.Call("METRICS JSON"));
  EXPECT_EQ(jsonl.compare(0, 9, "{\"name\":\""), 0);
  EXPECT_NE(jsonl.find("\"kind\":\"histogram\""), std::string::npos);
}

TEST(MetricsServingTest, StatsStaysAdditiveAndConsistent) {
  EnabledGuard enabled;
  auto srv = MakeLoadedServer();
  Client client(srv.get());
  ASSERT_OK_AND_ASSIGN(std::string ignored,
                       client.Call(std::string("QUERY ") + kChain));

  // Existing keys survive verbatim; registry lines ride behind them with
  // the reserved `metric.` prefix (docs/server.md's additive contract).
  ASSERT_OK_AND_ASSIGN(std::string stats, client.Call("STATS"));
  EXPECT_NE(stats.find("queries_submitted "), std::string::npos);
  EXPECT_NE(stats.find("cache_misses "), std::string::npos);
  EXPECT_NE(stats.find("metric.skalla_server_queries_submitted_total "),
            std::string::npos);
  EXPECT_NE(stats.find("metric.skalla_server_query_seconds"),
            std::string::npos);

  // Snapshot identity: every submitted query is accounted at most once.
  const ServerStats snapshot = srv->stats();
  EXPECT_LE(snapshot.queries_completed + snapshot.queries_failed +
                snapshot.queries_cancelled + snapshot.queries_shed +
                static_cast<uint64_t>(snapshot.running) + snapshot.queued,
            snapshot.queries_submitted);
}

TEST(MetricsServingTest, ProfileMatchesExecutionMetricsExactly) {
  EnabledGuard enabled;
  auto srv = MakeLoadedServer();
  Client client(srv.get());
  ASSERT_OK_AND_ASSIGN(std::string profile,
                       client.Call(std::string("PROFILE ") + kChain));

  // Reference: an identical warehouse (the LOAD command's own generator
  // config) executed directly. Determinism of rows/bytes is DESIGN.md
  // invariant 10; both ship caches start empty.
  Warehouse ref(4);
  TpcConfig config;
  config.num_rows = 3000;
  config.num_customers = std::max<int64_t>(1, config.num_rows / 12);
  ASSERT_TRUE(ref.LoadByRange("TPCR", GenerateTpcr(config), "NationKey", 0,
                              config.num_nations - 1, {"CustKey", "ClerkKey"})
                  .ok());
  ASSERT_OK_AND_ASSIGN(GmdjExpr expr, ParseOlapQuery(kChain));
  ASSERT_OK_AND_ASSIGN(QueryResult expected,
                       ref.Execute(expr, OptimizerOptions::All()));
  const ExecutionMetrics& m = expected.metrics;

  EXPECT_EQ(ProfileTotal(profile, "rounds"),
            static_cast<uint64_t>(m.NumRounds()));
  EXPECT_EQ(ProfileTotal(profile, "result_rows"),
            static_cast<uint64_t>(expected.table.num_rows()));
  EXPECT_EQ(ProfileTotal(profile, "bytes_to_sites"), m.BytesToSites());
  EXPECT_EQ(ProfileTotal(profile, "bytes_to_coord"), m.BytesToCoord());
  EXPECT_EQ(ProfileTotal(profile, "bytes_total"), m.TotalBytes());
  EXPECT_EQ(ProfileTotal(profile, "groups_to_sites"),
            static_cast<uint64_t>(m.GroupsToSites()));
  EXPECT_EQ(ProfileTotal(profile, "groups_to_coord"),
            static_cast<uint64_t>(m.GroupsToCoord()));
  // Internal consistency of the rendered totals.
  EXPECT_EQ(ProfileTotal(profile, "bytes_total"),
            ProfileTotal(profile, "bytes_to_sites") +
                ProfileTotal(profile, "bytes_to_coord"));
  EXPECT_NE(profile.find("=== rounds ==="), std::string::npos);
  EXPECT_NE(profile.find("=== per-site load (metrics registry) ==="),
            std::string::npos);
}

TEST(MetricsServingTest, ProfileReportsCacheHitProvenance) {
  EnabledGuard enabled;
  auto srv = MakeLoadedServer();
  Client client(srv.get());
  ASSERT_OK_AND_ASSIGN(std::string ignored,
                       client.Call(std::string("QUERY ") + kChain));
  ASSERT_OK_AND_ASSIGN(std::string profile,
                       client.Call(std::string("PROFILE ") + kChain));
  EXPECT_NE(profile.find("result cache hit"), std::string::npos);
  EXPECT_EQ(profile.find("=== rounds ==="), std::string::npos);
}

}  // namespace
}  // namespace server
}  // namespace skalla

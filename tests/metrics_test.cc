#include "dist/metrics.h"

#include <gtest/gtest.h>

namespace skalla {
namespace {

TEST(RoundMetricsTest, ResponseSecondsSumsPhasesWhenNotStreaming) {
  RoundMetrics rm;
  rm.site_cpu_max_sec = 1.0;
  rm.coord_cpu_sec = 2.0;
  rm.comm_sec = 3.0;
  rm.streaming = false;
  EXPECT_DOUBLE_EQ(rm.ResponseSeconds(), 6.0);
}

TEST(RoundMetricsTest, ResponseSecondsOverlapsCoordAndCommWhenStreaming) {
  RoundMetrics rm;
  rm.site_cpu_max_sec = 1.0;
  rm.coord_cpu_sec = 2.0;
  rm.comm_sec = 3.0;
  rm.streaming = true;
  // Streaming sync overlaps merging with receiving: max, not sum.
  EXPECT_DOUBLE_EQ(rm.ResponseSeconds(), 4.0);

  rm.coord_cpu_sec = 5.0;
  EXPECT_DOUBLE_EQ(rm.ResponseSeconds(), 6.0);
}

TEST(RoundMetricsTest, ResponseSecondsZeroByDefault) {
  RoundMetrics rm;
  EXPECT_DOUBLE_EQ(rm.ResponseSeconds(), 0.0);
  rm.streaming = true;
  EXPECT_DOUBLE_EQ(rm.ResponseSeconds(), 0.0);
}

TEST(ExecutionMetricsTest, EmptyRounds) {
  ExecutionMetrics metrics;
  EXPECT_EQ(metrics.NumRounds(), 0);
  EXPECT_EQ(metrics.TotalBytes(), 0u);
  EXPECT_EQ(metrics.GroupsToSites(), 0);
  EXPECT_EQ(metrics.GroupsToCoord(), 0);
  EXPECT_DOUBLE_EQ(metrics.ResponseSeconds(), 0.0);
  // No traffic at all: the ratio degenerates to 1.0, not a 0/0 NaN.
  EXPECT_DOUBLE_EQ(metrics.CompressionRatio(), 1.0);
}

TEST(ExecutionMetricsTest, CompressionRatioZeroActualBytes) {
  ExecutionMetrics metrics;
  RoundMetrics rm;
  rm.bytes_baseline_skl1 = 1024;  // baseline recorded, nothing shipped
  metrics.rounds.push_back(rm);
  EXPECT_DOUBLE_EQ(metrics.CompressionRatio(), 1.0);
}

TEST(ExecutionMetricsTest, CompressionRatioZeroBaseline) {
  ExecutionMetrics metrics;
  RoundMetrics rm;
  rm.bytes_to_sites = 512;  // bytes shipped but no baseline recorded
  metrics.rounds.push_back(rm);
  EXPECT_DOUBLE_EQ(metrics.CompressionRatio(), 1.0);
}

TEST(ExecutionMetricsTest, CompressionRatioBaselineOverActual) {
  ExecutionMetrics metrics;
  RoundMetrics rm;
  rm.bytes_to_sites = 300;
  rm.bytes_to_coord = 200;
  rm.bytes_baseline_skl1 = 1500;
  metrics.rounds.push_back(rm);
  EXPECT_DOUBLE_EQ(metrics.CompressionRatio(), 3.0);
}

TEST(ExecutionMetricsTest, AccessorsSumAcrossRounds) {
  ExecutionMetrics metrics;
  RoundMetrics a;
  a.bytes_to_sites = 100;
  a.bytes_to_coord = 10;
  a.groups_to_sites = 7;
  a.groups_to_coord = 3;
  a.retries = 1;
  a.timeouts = 2;
  a.drops = 3;
  a.failovers = 1;
  a.site_cpu_max_sec = 0.5;
  a.coord_cpu_sec = 0.25;
  a.comm_sec = 0.125;
  RoundMetrics b = a;
  b.streaming = true;  // second round overlaps coord and comm
  metrics.rounds.push_back(a);
  metrics.rounds.push_back(b);

  EXPECT_EQ(metrics.NumRounds(), 2);
  EXPECT_EQ(metrics.TotalBytes(), 220u);
  EXPECT_EQ(metrics.BytesToSites(), 200u);
  EXPECT_EQ(metrics.BytesToCoord(), 20u);
  EXPECT_EQ(metrics.GroupsToSites(), 14);
  EXPECT_EQ(metrics.GroupsToCoord(), 6);
  EXPECT_EQ(metrics.Retries(), 2);
  EXPECT_EQ(metrics.Timeouts(), 4);
  EXPECT_EQ(metrics.Drops(), 6);
  EXPECT_EQ(metrics.Failovers(), 2);
  // Round a: 0.5 + 0.25 + 0.125; round b: 0.5 + max(0.25, 0.125).
  EXPECT_DOUBLE_EQ(metrics.ResponseSeconds(), 0.875 + 0.75);
}

TEST(ExecutionMetricsTest, StreamingFlagChangesOnlyItsOwnRound) {
  ExecutionMetrics metrics;
  RoundMetrics rm;
  rm.coord_cpu_sec = 2.0;
  rm.comm_sec = 1.0;
  metrics.rounds.push_back(rm);
  const double plain = metrics.ResponseSeconds();
  metrics.rounds[0].streaming = true;
  EXPECT_LT(metrics.ResponseSeconds(), plain);
  EXPECT_DOUBLE_EQ(metrics.ResponseSeconds(), 2.0);
}

}  // namespace
}  // namespace skalla

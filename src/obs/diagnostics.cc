#include "obs/diagnostics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

namespace skalla {
namespace obs {

namespace {

double SkewFactor(double max_value, double sum, size_t n) {
  if (n == 0 || sum <= 0) return 1.0;
  const double mean = sum / static_cast<double>(n);
  return mean > 0 ? max_value / mean : 1.0;
}

// Finishes a by-site map into the skew summary (shared by the journal and
// registry builders).
StragglerReport FinishReport(const std::map<int, SiteLoad>& by_site) {
  StragglerReport report;
  double cpu_sum = 0, cpu_max = 0;
  double bytes_sum = 0, bytes_max = 0;
  for (const auto& entry : by_site) {
    const SiteLoad& site = entry.second;
    report.sites.push_back(site);
    cpu_sum += site.cpu_sec;
    const double site_bytes =
        static_cast<double>(site.bytes_in + site.bytes_out);
    bytes_sum += site_bytes;
    if (site.cpu_sec > cpu_max) {
      cpu_max = site.cpu_sec;
      report.slowest_site = site.site;
    }
    bytes_max = std::max(bytes_max, site_bytes);
  }
  report.cpu_skew = SkewFactor(cpu_max, cpu_sum, report.sites.size());
  report.bytes_skew = SkewFactor(bytes_max, bytes_sum, report.sites.size());
  return report;
}

// Extracts the value of `key` from a label string like `dir="in",site="3"`.
bool LabelValue(const std::string& labels, const std::string& key,
                std::string* value) {
  const std::string needle = key + "=\"";
  const size_t start = labels.find(needle);
  if (start == std::string::npos) return false;
  const size_t begin = start + needle.size();
  const size_t end = labels.find('"', begin);
  if (end == std::string::npos) return false;
  *value = labels.substr(begin, end - begin);
  return true;
}

}  // namespace

StragglerReport ComputeStragglerReport(
    const std::vector<JournalRecord>& journal) {
  std::map<int, SiteLoad> by_site;
  auto load = [&by_site](int site) -> SiteLoad& {
    SiteLoad& entry = by_site[site];
    entry.site = site;
    return entry;
  };

  for (const JournalRecord& record : journal) {
    switch (record.event) {
      case JournalEvent::kMessage:
        if (record.to >= 0) {
          SiteLoad& entry = load(record.to);
          entry.bytes_in += record.bytes;
          entry.groups_in += record.rows;
          if (!record.delivered) entry.drops++;
        }
        if (record.from >= 0) {
          SiteLoad& entry = load(record.from);
          entry.bytes_out += record.bytes;
          entry.groups_out += record.rows;
          if (!record.delivered) entry.drops++;
        }
        break;
      case JournalEvent::kAttemptStart:
        if (record.site >= 0) load(record.site).attempts++;
        break;
      case JournalEvent::kAttemptFinish:
        if (record.site >= 0) load(record.site).cpu_sec += record.seconds;
        break;
      case JournalEvent::kAttemptTimeout:
        if (record.site >= 0) {
          SiteLoad& entry = load(record.site);
          entry.timeouts++;
          entry.cpu_sec += record.seconds;
        }
        break;
      case JournalEvent::kRetry:
        if (record.site >= 0) load(record.site).retries++;
        break;
      case JournalEvent::kFailover:
        if (record.site >= 0) load(record.site).failovers++;
        break;
      default:
        break;
    }
  }

  return FinishReport(by_site);
}

StragglerReport ComputeStragglerReportFromMetrics(
    const std::vector<MetricValue>& values) {
  std::map<int, SiteLoad> by_site;
  auto load = [&by_site](int site) -> SiteLoad& {
    SiteLoad& entry = by_site[site];
    entry.site = site;
    return entry;
  };

  for (const MetricValue& v : values) {
    std::string base;
    std::string labels;
    SplitMetricName(v.name, &base, &labels);
    std::string site_label;
    if (!LabelValue(labels, "site", &site_label)) continue;
    const int site = std::atoi(site_label.c_str());
    if (base == "skalla_dist_site_round_seconds" &&
        v.kind == MetricKind::kHistogram) {
      if (v.hist_count == 0) continue;
      SiteLoad& entry = load(site);
      entry.cpu_sec += v.hist_sum;
      entry.attempts += static_cast<int>(v.hist_count);
    } else if (base == "skalla_dist_site_bytes_total" &&
               v.kind == MetricKind::kCounter) {
      if (v.counter_value == 0) continue;
      std::string dir;
      if (!LabelValue(labels, "dir", &dir)) continue;
      SiteLoad& entry = load(site);
      if (dir == "in") {
        entry.bytes_in += v.counter_value;
      } else {
        entry.bytes_out += v.counter_value;
      }
    }
  }
  return FinishReport(by_site);
}

std::string StragglerReport::ToString() const {
  std::string out;
  char line[256];
  out +=
      "  site   cpu(s)    bytes in/out       groups in/out   att  rty  tmo  "
      "drp  fov\n";
  for (const SiteLoad& site : sites) {
    std::snprintf(line, sizeof(line),
                  "  %4d %8.4f %9zu/%-9zu %8lld/%-8lld %4d %4d %4d %4d %4d\n",
                  site.site, site.cpu_sec, site.bytes_in, site.bytes_out,
                  static_cast<long long>(site.groups_in),
                  static_cast<long long>(site.groups_out), site.attempts,
                  site.retries, site.timeouts, site.drops, site.failovers);
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "  cpu skew (max/mean) %.2fx   bytes skew %.2fx", cpu_skew,
                bytes_skew);
  out += line;
  if (slowest_site >= 0) {
    std::snprintf(line, sizeof(line), "   slowest site %d", slowest_site);
    out += line;
  }
  out += "\n";
  return out;
}

}  // namespace obs
}  // namespace skalla

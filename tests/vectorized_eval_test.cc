// Vectorized-execution unit suite (ctest label "vector"): the columnar
// snapshot, the batch predicate evaluator, the typed aggregate kernels,
// and the vectorized GMDJ scan must be byte-identical to the scalar
// row-at-a-time path on every edge the kernels special-case — NULL
// bitmaps, NaN / -0.0 / infinities, INT64 extremes, empty selections, and
// expression shapes that fall back to scalar evaluation.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "agg/aggregate.h"
#include "expr/evaluator.h"
#include "expr/expr.h"
#include "gmdj/gmdj.h"
#include "gmdj/local_eval.h"
#include "storage/columnar.h"
#include "storage/serializer.h"
#include "storage/table.h"
#include "test_util.h"

namespace skalla {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr int64_t kI64Min = std::numeric_limits<int64_t>::min();
constexpr int64_t kI64Max = std::numeric_limits<int64_t>::max();

/// Bit pattern of a Value, so NaN == NaN and -0.0 != 0.0 — "byte-identical"
/// in the sense the scalar/vectorized contract promises.
std::string Bits(const Value& v) {
  if (v.is_double()) {
    const double d = v.AsDouble();
    std::string out(sizeof(double), '\0');
    std::memcpy(out.data(), &d, sizeof(double));
    return "d:" + out;
  }
  return "v:" + v.ToString();
}

std::string TableBits(const Table& t) {
  return Serializer::SerializeTable(t, WireFormat::kSkl1);
}

// ---------------------------------------------------------------------------
// ColumnarTable
// ---------------------------------------------------------------------------

TEST(ColumnarTableTest, TypedArraysBitmapsAndDictionary) {
  Table t(MakeSchema({{"i", ValueType::kInt64},
                      {"d", ValueType::kDouble},
                      {"s", ValueType::kString}}));
  t.AddRow({Value(int64_t{7}), Value(1.5), Value("a")});
  t.AddRow({Value::Null(), Value::Null(), Value::Null()});
  t.AddRow({Value(kI64Min), Value(-0.0), Value("b")});
  t.AddRow({Value(kI64Max), Value(kNaN), Value("a")});

  auto view = ColumnarTable::Build(t);
  ASSERT_EQ(view->num_rows(), 4);
  ASSERT_EQ(view->num_columns(), 3);

  const auto& ci = view->column(0);
  EXPECT_TRUE(ci.usable);
  EXPECT_TRUE(ci.has_nulls);
  EXPECT_EQ(ci.ints[0], 7);
  EXPECT_EQ(ci.ints[2], kI64Min);
  EXPECT_EQ(ci.ints[3], kI64Max);
  EXPECT_TRUE(ci.IsValid(0));
  EXPECT_FALSE(ci.IsValid(1));
  EXPECT_TRUE(ci.IsValid(2));
  ASSERT_NE(ci.valid_words(), nullptr);

  const auto& cd = view->column(1);
  EXPECT_TRUE(cd.usable);
  EXPECT_TRUE(std::signbit(cd.doubles[2]));
  EXPECT_TRUE(std::isnan(cd.doubles[3]));

  const auto& cs = view->column(2);
  EXPECT_TRUE(cs.usable);
  EXPECT_EQ(cs.codes[0], cs.codes[3]);  // both "a"
  EXPECT_NE(cs.codes[0], cs.codes[2]);
  EXPECT_EQ(cs.codes[1], -1);  // NULL
  EXPECT_EQ(cs.CodeOf("a"), cs.codes[0]);
  EXPECT_EQ(cs.CodeOf("zzz"), -1);
}

TEST(ColumnarTableTest, NoNullsMeansNoBitmap) {
  Table t(MakeSchema({{"i", ValueType::kInt64}}));
  t.AddRow({Value(int64_t{1})});
  t.AddRow({Value(int64_t{2})});
  auto view = ColumnarTable::Build(t);
  EXPECT_FALSE(view->column(0).has_nulls);
  EXPECT_EQ(view->column(0).valid_words(), nullptr);
  EXPECT_TRUE(view->column(0).IsValid(0));
}

TEST(ColumnarTableTest, TypeDeviantColumnIsUnusable) {
  Table t(MakeSchema({{"i", ValueType::kInt64}}));
  t.AddRow({Value(int64_t{1})});
  t.AddRow({Value("oops")});  // string cell in a declared-int column
  auto view = ColumnarTable::Build(t);
  EXPECT_FALSE(view->column(0).usable);
  EXPECT_TRUE(view->column(0).ints.empty());
}

TEST(ColumnarTableTest, CachedOnTableAndInvalidatedByMutation) {
  Table t(MakeSchema({{"i", ValueType::kInt64}}));
  t.AddRow({Value(int64_t{1})});
  auto v1 = t.columnar();
  auto v2 = t.columnar();
  EXPECT_EQ(v1.get(), v2.get());  // built once, shared
  t.AddRow({Value(int64_t{2})});
  auto v3 = t.columnar();
  EXPECT_NE(v1.get(), v3.get());
  EXPECT_EQ(v3->num_rows(), 2);
  EXPECT_EQ(v1->num_rows(), 1);  // old snapshot unchanged
}

// ---------------------------------------------------------------------------
// EvalBoolBatch vs scalar EvalBool
// ---------------------------------------------------------------------------

/// Asserts the batch selection over all of `detail` equals the scalar
/// selection, then the same for a strided candidate subset.
void ExpectBatchMatchesScalar(const ExprPtr& expr, const Schema* base_schema,
                              const Row* base_row, const Table& detail) {
  ASSERT_OK_AND_ASSIGN(
      CompiledExpr compiled,
      CompiledExpr::Compile(expr, base_schema, &detail.schema()));
  auto view = detail.columnar();
  ASSERT_TRUE(compiled.SupportsBatchEval(*view));

  std::vector<int64_t> expected;
  for (int64_t d = 0; d < detail.num_rows(); ++d) {
    if (compiled.EvalBool(base_row, &detail.row(d))) expected.push_back(d);
  }

  BatchScratch scratch;
  std::vector<int64_t> sel;
  compiled.EvalBoolBatch(base_row, detail, *view, 0, detail.num_rows(),
                         &scratch, &sel);
  EXPECT_EQ(sel, expected);

  // Candidate-list overload over every other row.
  std::vector<int64_t> cand;
  for (int64_t d = 0; d < detail.num_rows(); d += 2) cand.push_back(d);
  std::vector<int64_t> expected_cand;
  for (int64_t d : cand) {
    if (compiled.EvalBool(base_row, &detail.row(d))) {
      expected_cand.push_back(d);
    }
  }
  sel.clear();
  compiled.EvalBoolBatch(base_row, detail, *view, cand.data(), cand.size(),
                         &scratch, &sel);
  EXPECT_EQ(sel, expected_cand);
}

Table EdgeDetailTable() {
  Table t(MakeSchema({{"i", ValueType::kInt64},
                      {"j", ValueType::kInt64},
                      {"d", ValueType::kDouble},
                      {"s", ValueType::kString}}));
  const int64_t ints[] = {0, 1, -1, 5, kI64Min, kI64Max, 42, 7};
  const double dbls[] = {0.0, -0.0, 1.5, kNaN, kInf, -kInf, -2.25, 3.0};
  const char* strs[] = {"", "alpha", "beta", "alpha", "", "gamma", "x", "y"};
  for (int r = 0; r < 8; ++r) {
    Row row;
    row.push_back(r == 3 ? Value::Null() : Value(ints[r]));
    row.push_back(Value(int64_t{r}));
    row.push_back(r == 5 ? Value::Null() : Value(dbls[r]));
    row.push_back(r == 6 ? Value::Null() : Value(strs[r]));
    t.AddRow(std::move(row));
  }
  return t;
}

TEST(EvalBoolBatchTest, IntComparisonsWithNulls) {
  const Table t = EdgeDetailTable();
  ExpectBatchMatchesScalar(Gt(RCol("i"), Lit(Value(int64_t{0}))), nullptr,
                           nullptr, t);
  ExpectBatchMatchesScalar(Le(RCol("i"), RCol("j")), nullptr, nullptr, t);
  ExpectBatchMatchesScalar(Eq(RCol("i"), Lit(Value(kI64Max))), nullptr,
                           nullptr, t);
  ExpectBatchMatchesScalar(Ne(RCol("i"), Lit(Value::Null())), nullptr,
                           nullptr, t);
}

TEST(EvalBoolBatchTest, DoubleEdgeComparisons) {
  const Table t = EdgeDetailTable();
  // NaN compares "equal" under Value::Compare's a<b?-1:(a>b?1:0), so Le/Ge
  // against NaN select it — whatever the scalar path does, batch must too.
  ExpectBatchMatchesScalar(Lt(RCol("d"), Lit(Value(1.0))), nullptr, nullptr,
                           t);
  ExpectBatchMatchesScalar(Ge(RCol("d"), Lit(Value(kNaN))), nullptr, nullptr,
                           t);
  ExpectBatchMatchesScalar(Eq(RCol("d"), Lit(Value(0.0))), nullptr, nullptr,
                           t);  // -0.0 == 0.0
  ExpectBatchMatchesScalar(Gt(RCol("d"), Lit(Value(int64_t{-3}))), nullptr,
                           nullptr, t);  // mixed double-vs-int compare
}

TEST(EvalBoolBatchTest, ArithmeticNullsDivModZero) {
  const Table t = EdgeDetailTable();
  ExpectBatchMatchesScalar(Gt(Add(RCol("j"), Lit(Value(int64_t{2}))),
                              Lit(Value(int64_t{6}))),
                           nullptr, nullptr, t);
  // j == 0 on the first row: x / 0 and x % 0 are NULL, never selected.
  ExpectBatchMatchesScalar(Ge(Div(RCol("i"), RCol("j")), Lit(Value(1.0))),
                           nullptr, nullptr, t);
  ExpectBatchMatchesScalar(Eq(Mod(RCol("j"), Lit(Value(int64_t{3}))),
                              Lit(Value(int64_t{1}))),
                           nullptr, nullptr, t);
  ExpectBatchMatchesScalar(Lt(Mul(RCol("d"), Lit(Value(2.0))),
                              Lit(Value(3.5))),
                           nullptr, nullptr, t);
  ExpectBatchMatchesScalar(Gt(Neg(RCol("i")), Lit(Value(int64_t{0}))),
                           nullptr, nullptr, t);
}

TEST(EvalBoolBatchTest, KleeneLogicAndNullTests) {
  const Table t = EdgeDetailTable();
  const ExprPtr cmp_null = Gt(RCol("i"), Lit(Value::Null()));  // UNKNOWN
  ExpectBatchMatchesScalar(Or(cmp_null, Gt(RCol("j"), Lit(Value(int64_t{5})))),
                           nullptr, nullptr, t);
  ExpectBatchMatchesScalar(
      And(IsNull(RCol("i")), Ge(RCol("j"), Lit(Value(int64_t{0})))), nullptr,
      nullptr, t);
  ExpectBatchMatchesScalar(Not(Lt(RCol("d"), Lit(Value(0.5)))), nullptr,
                           nullptr, t);
  ExpectBatchMatchesScalar(IsNull(RCol("s")), nullptr, nullptr, t);
}

TEST(EvalBoolBatchTest, StringEqualityViaDictionary) {
  const Table t = EdgeDetailTable();
  ExpectBatchMatchesScalar(Eq(RCol("s"), Lit(Value("alpha"))), nullptr,
                           nullptr, t);
  ExpectBatchMatchesScalar(Ne(RCol("s"), Lit(Value(""))), nullptr, nullptr,
                           t);
  // Literal absent from the dictionary: nothing equals it.
  ExpectBatchMatchesScalar(Eq(RCol("s"), Lit(Value("nope"))), nullptr,
                           nullptr, t);
  ExpectBatchMatchesScalar(Eq(RCol("s"), Lit(Value::Null())), nullptr,
                           nullptr, t);
}

TEST(EvalBoolBatchTest, StringOrderingViaOrderIndex) {
  const Table t = EdgeDetailTable();
  // Pivots inside, outside, below, and above the dictionary's range, on
  // both sides of the comparison (the direction flips when the constant
  // is on the left), plus a NULL pivot: all rank compares, all matching
  // the scalar Value::Compare verdicts.
  for (const char* pivot : {"", "alpha", "alp", "m", "zzz"}) {
    ExpectBatchMatchesScalar(Lt(RCol("s"), Lit(Value(pivot))), nullptr,
                             nullptr, t);
    ExpectBatchMatchesScalar(Ge(RCol("s"), Lit(Value(pivot))), nullptr,
                             nullptr, t);
    ExpectBatchMatchesScalar(Le(Lit(Value(pivot)), RCol("s")), nullptr,
                             nullptr, t);
    ExpectBatchMatchesScalar(Gt(Lit(Value(pivot)), RCol("s")), nullptr,
                             nullptr, t);
  }
  ExpectBatchMatchesScalar(Lt(RCol("s"), Lit(Value::Null())), nullptr,
                           nullptr, t);
}

TEST(EvalBoolBatchTest, BaseRowConstantsFoldIn) {
  SchemaPtr base_schema = MakeSchema({{"k", ValueType::kInt64},
                                      {"lim", ValueType::kDouble}});
  const Table t = EdgeDetailTable();
  Row base_row = {Value(int64_t{5}), Value(2.5)};
  ExpectBatchMatchesScalar(
      And(Eq(BCol("k"), RCol("j")), Lt(RCol("d"), BCol("lim"))),
      base_schema.get(), &base_row, t);
  // NULL base operand: comparison is UNKNOWN everywhere.
  Row null_base = {Value::Null(), Value::Null()};
  ExpectBatchMatchesScalar(Gt(RCol("i"), BCol("k")), base_schema.get(),
                           &null_base, t);
}

TEST(EvalBoolBatchTest, EmptyRangeAndEmptySelection) {
  const Table t = EdgeDetailTable();
  ASSERT_OK_AND_ASSIGN(
      CompiledExpr compiled,
      CompiledExpr::Compile(Gt(RCol("j"), Lit(Value(int64_t{100}))), nullptr,
                            &t.schema()));
  auto view = t.columnar();
  BatchScratch scratch;
  std::vector<int64_t> sel;
  compiled.EvalBoolBatch(nullptr, t, *view, 3, 3, &scratch, &sel);
  EXPECT_TRUE(sel.empty());
  compiled.EvalBoolBatch(nullptr, t, *view, 0, t.num_rows(), &scratch, &sel);
  EXPECT_TRUE(sel.empty());  // predicate never true
}

TEST(EvalBoolBatchTest, UnsupportedShapesAreDeclared) {
  const Table t = EdgeDetailTable();
  auto view = t.columnar();
  auto supports = [&](const ExprPtr& e) {
    auto compiled = CompiledExpr::Compile(e, nullptr, &t.schema());
    EXPECT_TRUE(compiled.ok());
    return compiled.ok() && compiled.ValueUnsafe().SupportsBatchEval(*view);
  };
  // String-vs-string-column comparison stays scalar: the two sides carry
  // different dictionaries, so there is no shared code/rank space.
  EXPECT_FALSE(supports(Eq(RCol("s"), RCol("s"))));
  EXPECT_FALSE(supports(Lt(RCol("s"), RCol("s"))));
  // Supported shapes for contrast — including string ordering against a
  // literal, batched through the per-dictionary order index.
  EXPECT_TRUE(supports(Lt(RCol("s"), Lit(Value("m")))));
  EXPECT_TRUE(supports(Eq(RCol("s"), Lit(Value("m")))));
  EXPECT_TRUE(supports(Gt(RCol("i"), RCol("j"))));
}

TEST(EvalBoolBatchTest, TypeDeviantColumnNotSupported) {
  Table t(MakeSchema({{"i", ValueType::kInt64}}));
  t.AddRow({Value(int64_t{1})});
  t.AddRow({Value(2.5)});  // double cell in a declared-int column
  auto view = t.columnar();
  ASSERT_OK_AND_ASSIGN(
      CompiledExpr compiled,
      CompiledExpr::Compile(Gt(RCol("i"), Lit(Value(int64_t{0}))), nullptr,
                            &t.schema()));
  EXPECT_FALSE(compiled.SupportsBatchEval(*view));
}

// ---------------------------------------------------------------------------
// Typed aggregate kernels vs boxed Update
// ---------------------------------------------------------------------------

/// Applies the same value sequence through boxed Update and through the
/// batch kernel; Final() must match bit-for-bit.
void ExpectDoubleKernelMatches(AggFunc func, const std::vector<double>& vals,
                               const std::vector<bool>& null_mask) {
  AggState scalar(func);
  for (size_t i = 0; i < vals.size(); ++i) {
    scalar.Update(null_mask[i] ? Value::Null() : Value(vals[i]));
  }

  std::vector<uint64_t> bitmap((vals.size() + 63) / 64, 0);
  bool any_null = false;
  for (size_t i = 0; i < vals.size(); ++i) {
    if (null_mask[i]) {
      any_null = true;
    } else {
      bitmap[i >> 6] |= uint64_t{1} << (i & 63);
    }
  }
  std::vector<int64_t> sel(vals.size());
  for (size_t i = 0; i < vals.size(); ++i) sel[i] = static_cast<int64_t>(i);

  AggState batched(func);
  batched.UpdateBatchDouble(vals.data(), any_null ? bitmap.data() : nullptr,
                            sel.data(), sel.size());
  EXPECT_EQ(Bits(batched.Final()), Bits(scalar.Final()))
      << AggFuncToString(func);
  EXPECT_EQ(batched.count(), scalar.count());
}

TEST(AggBatchKernelTest, DoubleEdgeValues) {
  const std::vector<double> vals = {1.5, -0.0, kNaN, kInf, -kInf, 2.25, -1.0};
  const std::vector<bool> nulls = {false, true, false, false,
                                   false, false, true};
  for (AggFunc func : {AggFunc::kSum, AggFunc::kAvg, AggFunc::kMin,
                       AggFunc::kMax, AggFunc::kCount, AggFunc::kVar,
                       AggFunc::kStdDev}) {
    ExpectDoubleKernelMatches(func, vals, nulls);
  }
  // -0.0 arriving first must be preserved by SUM's adopt-first-value rule.
  ExpectDoubleKernelMatches(AggFunc::kSum, {-0.0}, {false});
  ExpectDoubleKernelMatches(AggFunc::kMin, {kNaN, 1.0, -2.0},
                            {false, false, false});
  ExpectDoubleKernelMatches(AggFunc::kMax, {1.0, kNaN, 2.0},
                            {false, false, false});
}

TEST(AggBatchKernelTest, Int64ExtremesAndNulls) {
  const std::vector<int64_t> vals = {kI64Min, kI64Max, 0, -7, 7};
  const std::vector<bool> nulls = {false, false, true, false, false};
  for (AggFunc func : {AggFunc::kMin, AggFunc::kMax, AggFunc::kCount}) {
    AggState scalar(func);
    for (size_t i = 0; i < vals.size(); ++i) {
      scalar.Update(nulls[i] ? Value::Null() : Value(vals[i]));
    }
    std::vector<uint64_t> bitmap((vals.size() + 63) / 64, 0);
    for (size_t i = 0; i < vals.size(); ++i) {
      if (!nulls[i]) bitmap[i >> 6] |= uint64_t{1} << (i & 63);
    }
    std::vector<int64_t> sel(vals.size());
    for (size_t i = 0; i < vals.size(); ++i) sel[i] = static_cast<int64_t>(i);
    AggState batched(func);
    batched.UpdateBatchInt64(vals.data(), bitmap.data(), sel.data(),
                             sel.size());
    EXPECT_EQ(Bits(batched.Final()), Bits(scalar.Final()))
        << AggFuncToString(func);
  }
}

TEST(AggBatchKernelTest, EmptySelectionIsANoOp) {
  AggState sum(AggFunc::kSum);
  const double vals[] = {1.0};
  sum.UpdateBatchDouble(vals, nullptr, nullptr, 0);
  EXPECT_TRUE(sum.Final().is_null());
  EXPECT_EQ(sum.count(), 0);
  AggState cnt(AggFunc::kCount);
  cnt.UpdateBatchCountStar(0);
  EXPECT_EQ(cnt.count(), 0);
}

TEST(AggBatchKernelTest, PointFoldsMatchBoxed) {
  for (AggFunc func : {AggFunc::kSum, AggFunc::kAvg, AggFunc::kMin,
                       AggFunc::kMax, AggFunc::kVar}) {
    AggState scalar(func);
    AggState typed(func);
    for (double v : {2.5, kNaN, -0.0, -3.0}) {
      scalar.Update(Value(v));
      typed.UpdateDouble(v);
    }
    EXPECT_EQ(Bits(typed.Final()), Bits(scalar.Final()))
        << AggFuncToString(func);
    AggState scalar_i(func);
    AggState typed_i(func);
    for (int64_t v : {int64_t{5}, kI64Max, int64_t{-5}}) {
      scalar_i.Update(Value(v));
      typed_i.UpdateInt64(v);
    }
    EXPECT_EQ(Bits(typed_i.Final()), Bits(scalar_i.Final()))
        << AggFuncToString(func);
  }
}

// ---------------------------------------------------------------------------
// EvalGmdjOp: vectorized vs scalar byte identity
// ---------------------------------------------------------------------------

Table GmdjBase() {
  Table t(MakeSchema({{"k", ValueType::kInt64}, {"lim", ValueType::kInt64}}));
  for (int64_t k = 0; k < 4; ++k) t.AddRow({Value(k), Value(k * 10)});
  return t;
}

Table GmdjDetail() {
  Table t(MakeSchema({{"k", ValueType::kInt64},
                      {"v", ValueType::kInt64},
                      {"w", ValueType::kDouble},
                      {"s", ValueType::kString}}));
  const char* strs[] = {"red", "green", "blue"};
  for (int64_t i = 0; i < 200; ++i) {
    Row row;
    row.push_back(Value(i % 5));  // k in 0..4 — key 4 matches no base row
    row.push_back(i % 11 == 0 ? Value::Null() : Value(i * 3 - 100));
    row.push_back(i % 13 == 0 ? Value(kNaN)
                              : Value(static_cast<double>(i) * 0.25 - 10));
    row.push_back(Value(strs[i % 3]));
    t.AddRow(std::move(row));
  }
  return t;
}

GmdjOp EquiKeyOp() {
  GmdjOp op;
  GmdjBlock block;
  block.theta = And(Eq(BCol("k"), RCol("k")),
                    Le(RCol("v"), Add(BCol("lim"), Lit(Value(int64_t{40})))));
  block.aggs.push_back(AggSpec::Count("cnt"));
  block.aggs.push_back(AggSpec::Sum("v", "sv"));
  block.aggs.push_back(AggSpec::Avg("w", "aw"));
  block.aggs.push_back(AggSpec::Min("w", "mw"));
  op.blocks.push_back(std::move(block));
  return op;
}

GmdjOp NestedLoopOp() {
  GmdjOp op;
  GmdjBlock block;
  block.theta = Lt(RCol("v"), BCol("lim"));
  block.aggs.push_back(AggSpec::Count("cnt"));
  block.aggs.push_back(AggSpec::Max("w", "mx"));
  op.blocks.push_back(std::move(block));
  return op;
}

void ExpectVectorizedMatchesScalar(const GmdjOp& op, JoinStrategy join,
                                   int threads, int64_t morsel_rows) {
  const Table base = GmdjBase();
  const Table detail = GmdjDetail();
  LocalGmdjOptions options;
  options.join = join;
  options.num_threads = threads;
  options.morsel_rows = morsel_rows;

  options.vectorize = 0;
  ASSERT_OK_AND_ASSIGN(Table scalar, EvalGmdjOp(base, detail, op, options));
  options.vectorize = 1;
  ASSERT_OK_AND_ASSIGN(Table vectorized,
                       EvalGmdjOp(base, detail, op, options));
  EXPECT_EQ(TableBits(vectorized), TableBits(scalar));
}

TEST(VectorizedGmdjTest, HashPathByteIdentical) {
  ExpectVectorizedMatchesScalar(EquiKeyOp(), JoinStrategy::kHash, 1, 0);
  ExpectVectorizedMatchesScalar(EquiKeyOp(), JoinStrategy::kHash, 3, 16);
}

TEST(VectorizedGmdjTest, SortMergePathByteIdentical) {
  ExpectVectorizedMatchesScalar(EquiKeyOp(), JoinStrategy::kSortMerge, 1, 0);
  ExpectVectorizedMatchesScalar(EquiKeyOp(), JoinStrategy::kSortMerge, 3, 16);
}

TEST(VectorizedGmdjTest, NestedLoopPathByteIdentical) {
  ExpectVectorizedMatchesScalar(NestedLoopOp(), JoinStrategy::kHash, 1, 0);
  ExpectVectorizedMatchesScalar(NestedLoopOp(), JoinStrategy::kHash, 3, 16);
}

TEST(VectorizedGmdjTest, EmptyRelations) {
  Table base = GmdjBase();
  Table empty_detail(GmdjDetail().schema_ptr());
  LocalGmdjOptions on;
  on.vectorize = 1;
  LocalGmdjOptions off;
  off.vectorize = 0;
  ASSERT_OK_AND_ASSIGN(Table a, EvalGmdjOp(base, empty_detail, EquiKeyOp(), on));
  ASSERT_OK_AND_ASSIGN(Table b,
                       EvalGmdjOp(base, empty_detail, EquiKeyOp(), off));
  EXPECT_EQ(TableBits(a), TableBits(b));

  Table empty_base(GmdjBase().schema_ptr());
  Table detail = GmdjDetail();
  ASSERT_OK_AND_ASSIGN(Table c, EvalGmdjOp(empty_base, detail, EquiKeyOp(), on));
  ASSERT_OK_AND_ASSIGN(Table d,
                       EvalGmdjOp(empty_base, detail, EquiKeyOp(), off));
  EXPECT_EQ(TableBits(c), TableBits(d));
  EXPECT_EQ(c.num_rows(), 0);
}

TEST(VectorizedGmdjTest, TouchedOnlyAgrees) {
  const Table base = GmdjBase();
  const Table detail = GmdjDetail();
  LocalGmdjOptions options;
  options.touched_only = true;
  options.vectorize = 1;
  ASSERT_OK_AND_ASSIGN(Table on, EvalGmdjOp(base, detail, EquiKeyOp(), options));
  options.vectorize = 0;
  ASSERT_OK_AND_ASSIGN(Table off,
                       EvalGmdjOp(base, detail, EquiKeyOp(), options));
  EXPECT_EQ(TableBits(on), TableBits(off));
}

TEST(VectorizedGmdjTest, ScanCountersAdvance) {
  const Table base = GmdjBase();
  const Table detail = GmdjDetail();
  LocalGmdjOptions options;
  options.num_threads = 1;

  const ScanCounters before = ScanCountersSnapshot();
  options.vectorize = 1;
  ASSERT_OK(EvalGmdjOp(base, detail, EquiKeyOp(), options).status());
  const ScanCounters mid = ScanCountersSnapshot();
  EXPECT_EQ(mid.rows_scanned - before.rows_scanned, detail.num_rows());
  EXPECT_GT(mid.rows_matched, before.rows_matched);
  EXPECT_EQ(mid.morsels_vectorized - before.morsels_vectorized, 1);
  EXPECT_EQ(mid.morsels_scalar, before.morsels_scalar);

  options.vectorize = 0;
  ASSERT_OK(EvalGmdjOp(base, detail, EquiKeyOp(), options).status());
  const ScanCounters after = ScanCountersSnapshot();
  EXPECT_EQ(after.morsels_scalar - mid.morsels_scalar, 1);
  EXPECT_EQ(after.morsels_vectorized, mid.morsels_vectorized);
  EXPECT_EQ(after.rows_matched - mid.rows_matched,
            mid.rows_matched - before.rows_matched);
}

TEST(VectorizedGmdjTest, EnvKnobParsing) {
  const char* saved = std::getenv("SKALLA_VECTORIZE");
  const std::string saved_copy = saved != nullptr ? saved : "";
  auto set = [](const char* v) { setenv("SKALLA_VECTORIZE", v, 1); };

  unsetenv("SKALLA_VECTORIZE");
  EXPECT_TRUE(VectorizeEnabledFromEnv());
  set("");
  EXPECT_TRUE(VectorizeEnabledFromEnv());
  set("1");
  EXPECT_TRUE(VectorizeEnabledFromEnv());
  set("on");
  EXPECT_TRUE(VectorizeEnabledFromEnv());
  set("0");
  EXPECT_FALSE(VectorizeEnabledFromEnv());
  set("off");
  EXPECT_FALSE(VectorizeEnabledFromEnv());
  set("OFF");
  EXPECT_FALSE(VectorizeEnabledFromEnv());
  set("false");
  EXPECT_FALSE(VectorizeEnabledFromEnv());

  if (saved != nullptr) {
    set(saved_copy.c_str());
  } else {
    unsetenv("SKALLA_VECTORIZE");
  }
}

}  // namespace
}  // namespace skalla

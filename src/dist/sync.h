#ifndef SKALLA_DIST_SYNC_H_
#define SKALLA_DIST_SYNC_H_

#include <vector>

#include "common/result.h"
#include "gmdj/gmdj.h"
#include "storage/table.h"

namespace skalla {

/// Sub-aggregate layout of a round's H relations: after the key columns,
/// each aggregate occupies `arity` consecutive columns starting at
/// `offset` (within the sub-column region).
struct SubSlot {
  AggFunc func;
  int offset;
  int arity;
  Field final_field;
};

/// Computes the SubSlot layout for the operators chained in one round,
/// and the total sub-column width.
Result<std::vector<SubSlot>> BuildSubSlots(const std::vector<GmdjOp>& ops,
                                           const SchemaMap& schemas,
                                           int* sub_width);

/// \brief Merges several sub-result relations H_i into one H.
///
/// Each input has the same schema: `num_key` key columns followed by the
/// slots' sub-aggregate columns. Rows with equal keys are combined with the
/// super-aggregates (Theorem 1 applies at any level of an aggregation
/// tree, which is what makes multi-tier coordinators possible). The output
/// row order is unspecified.
Result<Table> CombineSubResults(const std::vector<const Table*>& inputs,
                                int num_key,
                                const std::vector<SubSlot>& slots);

/// Duplicate-eliminating union of base-query results (round-0 merging at
/// any tree level).
Result<Table> DistinctUnion(const std::vector<const Table*>& inputs);

}  // namespace skalla

#endif  // SKALLA_DIST_SYNC_H_

// Sustained throughput of the concurrent serving layer (src/server/).
//
// An open-loop mixed workload: N in-process clients drive one Server over
// the wire protocol, each issuing its deterministic slice of a shared
// template mix (plain groupings through three-operator correlated
// chains, plus a MUTATE stream in the mixed configuration). Reported per
// configuration: sustained QPS, p50/p99 per-query latency, and the
// result-cache hit rate. The percentiles come from the serving layer's own
// per-lane latency histograms (skalla_server_query_seconds{lane="normal"}
// in the metrics registry, ISSUE 9) — the same numbers an operator reads
// off METRICS — rather than bench-side percentile math; the registry is
// reset between configurations so each reads its own window.
//
// Configurations:
//   cache_off      — every query executes (the serving floor)
//   cache_on       — repeats hit the result cache (the serving ceiling)
//   cache_mutating — caching on, but a mutation stream keeps invalidating
//
//   ./bench_server_qps [--quick]
//
// --quick shrinks the load and query counts for the CI smoke step; the
// JSON shape (BENCH_server_qps.json) is identical.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "obs/metrics.h"
#include "server/server.h"
#include "storage/csv.h"

namespace {

using namespace skalla;
using Clock = std::chrono::steady_clock;

const char* const kTemplates[] = {
    "SELECT CustKey, COUNT(*) AS cnt FROM TPCR GROUP BY CustKey",
    "SELECT ClerkKey, SUM(Quantity) AS sq FROM TPCR GROUP BY ClerkKey",
    "SELECT NationKey, COUNT(*) AS cnt, SUM(Quantity) AS sq FROM TPCR "
    "GROUP BY NationKey EXTEND COUNT(*) AS small WHERE Quantity <= sq / cnt",
    "SELECT MktSegment, COUNT(*) AS cnt FROM TPCR GROUP BY MktSegment "
    "EXTEND SUM(Quantity) AS hi WHERE Quantity >= 25 "
    "EXTEND COUNT(*) AS lo WHERE Quantity <= 5",
    "SELECT CustKey, COUNT(*) AS cnt FROM TPCR GROUP BY CustKey "
    "EXTEND SUM(Quantity) AS sq WHERE Quantity >= cnt",
};
constexpr size_t kNumTemplates = sizeof(kTemplates) / sizeof(kTemplates[0]);

struct WorkloadResult {
  double wall_sec = 0;
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double hit_rate = 0;
  uint64_t queries = 0;
};

std::unique_ptr<server::Server> MakeServer(bool caches_on, int64_t rows) {
  server::ServerOptions opts;
  opts.admission.max_concurrent = 4;
  opts.enable_result_cache = caches_on;
  opts.enable_prefix_reuse = caches_on;
  auto srv = std::make_unique<server::Server>(4, opts);
  server::Client admin(srv.get());
  auto loaded = admin.Call("LOAD tpcr " + std::to_string(rows));
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    std::abort();
  }
  return srv;
}

// A MUTATE row every site admits: the loaded relation's first row.
std::string MutateCommand(server::Server* srv) {
  auto table = srv->warehouse().central_catalog().GetTable("TPCR");
  Table one((*table)->schema_ptr());
  one.AddRow((*table)->row(0));
  std::string csv = CsvToString(one);
  std::string row = csv.substr(csv.find('\n') + 1);
  if (!row.empty() && row.back() == '\n') row.pop_back();
  return "MUTATE TPCR APPEND " + row;
}

WorkloadResult RunWorkload(bool caches_on, bool mutating, int clients,
                           int queries_per_client, int64_t rows) {
  auto srv = MakeServer(caches_on, rows);
  const std::string mutate_cmd = mutating ? MutateCommand(srv.get()) : "";

  // Each configuration reads its own latency window off the registry.
  obs::EnableMetrics(true);
  obs::ResetMetrics();

  const Clock::time_point start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c]() {
      server::Client client(srv.get());
      for (int i = 0; i < queries_per_client; ++i) {
        // Deterministic mixed schedule: client c's i-th request walks the
        // template ring with a per-client stride; in the mutating
        // configuration every 8th request of client 0 is a MUTATE.
        if (mutating && c == 0 && i % 8 == 7) {
          auto reply = client.Call(mutate_cmd);
          if (!reply.ok()) {
            std::fprintf(stderr, "mutate failed: %s\n",
                         reply.status().ToString().c_str());
            std::abort();
          }
          continue;
        }
        const size_t t = (static_cast<size_t>(c) * 3 +
                          static_cast<size_t>(i)) %
                         kNumTemplates;
        auto reply = client.Call(std::string("QUERY ") + kTemplates[t]);
        if (!reply.ok()) {
          std::fprintf(stderr, "query failed: %s\n",
                       reply.status().ToString().c_str());
          std::abort();
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  WorkloadResult out;
  out.wall_sec = std::chrono::duration<double>(Clock::now() - start).count();
  // All bench queries run at the default priority, i.e. the normal lane;
  // the server observed every end-to-end latency into this histogram.
  obs::Histogram& lane = obs::GetHistogram(
      "skalla_server_query_seconds{lane=\"normal\"}",
      obs::HistogramLayout::LatencySeconds());
  out.queries = lane.Count();
  out.qps = static_cast<double>(out.queries) / out.wall_sec;
  out.p50_ms = lane.Quantile(0.50) * 1e3;
  out.p99_ms = lane.Quantile(0.99) * 1e3;
  const server::ServerStats stats = srv->stats();
  const uint64_t probes = stats.cache.hits + stats.cache.misses;
  out.hit_rate = probes == 0
                     ? 0.0
                     : static_cast<double>(stats.cache.hits) /
                           static_cast<double>(probes);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const int clients = quick ? 4 : 8;
  const int queries_per_client = quick ? 12 : 60;
  const int64_t rows = quick ? 4000 : 20000;

  bench::JsonReport report("server_qps");
  bench::PrintSeriesHeader(
      "Serving-layer sustained throughput",
      "config            qps      p50 ms   p99 ms   hit rate");

  struct Config {
    const char* name;
    bool caches_on;
    bool mutating;
  };
  const Config configs[] = {
      {"cache_off", false, false},
      {"cache_on", true, false},
      {"cache_mutating", true, true},
  };
  for (const Config& config : configs) {
    const WorkloadResult r = RunWorkload(config.caches_on, config.mutating,
                                         clients, queries_per_client, rows);
    std::printf("%-16s %8.1f %8.2f %8.2f %9.2f\n", config.name, r.qps,
                r.p50_ms, r.p99_ms, r.hit_rate);
    report.Add(config.name,
               {{"clients", static_cast<double>(clients)},
                {"queries", static_cast<double>(r.queries)},
                {"rows", static_cast<double>(rows)},
                {"qps", r.qps},
                {"p50_ms", r.p50_ms},
                {"p99_ms", r.p99_ms},
                {"hit_rate", r.hit_rate}},
               r.wall_sec * 1000.0);
  }
  return 0;
}

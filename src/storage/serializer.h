#ifndef SKALLA_STORAGE_SERIALIZER_H_
#define SKALLA_STORAGE_SERIALIZER_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "storage/table.h"

namespace skalla {

/// \brief Byte-exact binary relation format.
///
/// Every relation shipped over the simulated network (net/sim_network.h) is
/// encoded with this serializer; the length of the produced string is the
/// byte count charged by the cost model. Layout (little-endian):
///
///   magic  u32 'SKL1'
///   schema u32 nfields; per field: u8 type, u32 name_len, name bytes
///   rows   u64 nrows; per value: u8 type tag, payload
///          (int64/double: 8 bytes; string: u32 len + bytes; null: none)
class Serializer {
 public:
  /// Encodes a table to its wire form.
  static std::string SerializeTable(const Table& table);

  /// Decodes a wire-form table; fails with IoError on malformed input.
  static Result<Table> DeserializeTable(std::string_view bytes);

  /// Exact wire size of `table` without materializing the bytes.
  static size_t WireSize(const Table& table);
};

}  // namespace skalla

#endif  // SKALLA_STORAGE_SERIALIZER_H_

#include "storage/hash_index.h"

#include "common/logging.h"

namespace skalla {

void HashIndex::Build(const Table& table, std::vector<int> key_cols) {
  table_ = &table;
  key_cols_ = std::move(key_cols);
  buckets_.clear();
  num_entries_ = 0;
  buckets_.reserve(static_cast<size_t>(table.num_rows()) * 2 + 16);
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    Insert(table, r);
  }
}

void HashIndex::Insert(const Table& table, int64_t row_id) {
  SKALLA_DCHECK(table_ == nullptr || table_ == &table);
  table_ = &table;
  // A new row may introduce a hash the mirror has no slot for.
  flat_.clear();
  flat_mask_ = 0;
  int64_slots_.clear();
  int64_mask_ = 0;
  null_key_rows_ = nullptr;
  const Row& row = table.row(row_id);
  const uint64_t h = RowKeyHash(row, key_cols_);
  auto& chains = buckets_[h];
  for (Bucket& bucket : chains) {
    const Row& rep = table.row(bucket.row_ids.front());
    if (RowKeyEquals(rep, key_cols_, row, key_cols_)) {
      bucket.row_ids.push_back(row_id);
      ++num_entries_;
      return;
    }
  }
  chains.push_back(Bucket{{row_id}});
  ++num_entries_;
}

const std::vector<int64_t>* HashIndex::Lookup(
    const Row& probe, const std::vector<int>& probe_cols) const {
  if (table_ == nullptr) return nullptr;
  SKALLA_DCHECK(probe_cols.size() == key_cols_.size());
  return LookupHashed(RowKeyHash(probe, probe_cols), probe, probe_cols);
}

const std::vector<int64_t>* HashIndex::LookupHashed(
    uint64_t hash, const Row& probe,
    const std::vector<int>& probe_cols) const {
  if (table_ == nullptr) return nullptr;
  SKALLA_DCHECK(hash == RowKeyHash(probe, probe_cols));
  const std::vector<Bucket>* chains = ChainsForHash(hash);
  if (chains == nullptr) return nullptr;
  for (const Bucket& bucket : *chains) {
    const Row& rep = table_->row(bucket.row_ids.front());
    if (RowKeyEquals(rep, key_cols_, probe, probe_cols)) {
      return &bucket.row_ids;
    }
  }
  return nullptr;
}

void HashIndex::BuildFlatProbe() {
  if (!flat_.empty() || buckets_.empty()) return;
  size_t slots = 16;
  while (slots < buckets_.size() * 2) slots <<= 1;
  flat_.assign(slots, FlatSlot{});
  flat_mask_ = slots - 1;
  for (const auto& [hash, chains] : buckets_) {
    size_t s = hash & flat_mask_;
    while (flat_[s].chains != nullptr) s = (s + 1) & flat_mask_;
    flat_[s] = FlatSlot{hash, &chains};
  }

  // Int64 fast probe: eligible only for a single-column key whose every
  // indexed value is int64 or NULL — then no cross-type numeric equality
  // is possible and an exact integer map answers probes.
  if (key_cols_.size() != 1) return;
  int64_t distinct = 0;
  for (const auto& [hash, chains] : buckets_) {
    for (const Bucket& bucket : chains) {
      const Value& key =
          table_->row(bucket.row_ids.front())[static_cast<size_t>(
              key_cols_.front())];
      if (!key.is_null() && !key.is_int64()) return;
      ++distinct;
    }
  }
  size_t islots = 16;
  while (islots < static_cast<size_t>(distinct) * 2) islots <<= 1;
  int64_slots_.assign(islots, Int64Slot{});
  int64_mask_ = islots - 1;
  for (const auto& [hash, chains] : buckets_) {
    for (const Bucket& bucket : chains) {
      const Value& key =
          table_->row(bucket.row_ids.front())[static_cast<size_t>(
              key_cols_.front())];
      if (key.is_null()) {
        null_key_rows_ = &bucket.row_ids;
        continue;
      }
      const int64_t k = key.AsInt64();
      size_t s = HashInt64(static_cast<uint64_t>(k)) & int64_mask_;
      while (int64_slots_[s].rows != nullptr) s = (s + 1) & int64_mask_;
      int64_slots_[s] = Int64Slot{k, &bucket.row_ids};
    }
  }
}

}  // namespace skalla

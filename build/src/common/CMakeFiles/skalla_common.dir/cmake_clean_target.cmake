file(REMOVE_RECURSE
  "libskalla_common.a"
)

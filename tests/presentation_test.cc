// ORDER BY / LIMIT presentation of query results, end to end.

#include <gtest/gtest.h>

#include "engine/operators.h"
#include "skalla/queries.h"
#include "skalla/warehouse.h"
#include "sql/olap_parser.h"
#include "sql/olap_printer.h"
#include "test_util.h"
#include "tpc/dbgen.h"

namespace skalla {
namespace {

TEST(SortedByKeysTest, DirectionsAndTieBreak) {
  const Table t = MakeTinyTable();
  ASSERT_OK_AND_ASSIGN(
      Table sorted,
      SortedByKeys(t, {{"g", true}, {"v", false}}));
  // g descending, then v ascending within g.
  EXPECT_EQ(sorted.Get(0, 0), Value(3));
  EXPECT_EQ(sorted.Get(0, 2), Value(1));
  int64_t last_g = 4;
  for (int64_t r = 0; r < sorted.num_rows(); ++r) {
    EXPECT_LE(sorted.Get(r, 0).AsInt64(), last_g);
    last_g = sorted.Get(r, 0).AsInt64();
  }
}

TEST(SortedByKeysTest, DeterministicUnderShuffledInput) {
  Table shuffled = MakeTinyTable();
  shuffled.SortAllColumns();  // a different input order
  const Table original = MakeTinyTable();
  ASSERT_OK_AND_ASSIGN(Table a, SortedByKeys(original, {{"g", false}}));
  ASSERT_OK_AND_ASSIGN(Table b, SortedByKeys(shuffled, {{"g", false}}));
  // Full-row tie-break → identical order regardless of input order.
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (int64_t r = 0; r < a.num_rows(); ++r) {
    for (int c = 0; c < a.schema().num_fields(); ++c) {
      EXPECT_EQ(a.Get(r, c), b.Get(r, c)) << r << "," << c;
    }
  }
}

TEST(SortedByKeysTest, UnknownColumnRejected) {
  EXPECT_FALSE(SortedByKeys(MakeTinyTable(), {{"nope", false}}).ok());
}

class PresentationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TpcConfig config;
    config.num_rows = 2500;
    config.num_customers = 200;
    warehouse_ = std::make_unique<Warehouse>(4);
    Table tpcr = GenerateTpcr(config);
    ASSERT_OK(warehouse_->LoadByRange("TPCR", tpcr, "NationKey", 0, 24,
                                      {"CustKey"}));
  }
  std::unique_ptr<Warehouse> warehouse_;
};

TEST_F(PresentationTest, TopKIdenticalAcrossExecutions) {
  // Top-5 customers by order count: distributed (flat + tree, any
  // optimization level) must return exactly the centralized rows, in
  // order, despite ties — the deterministic tie-break guarantees it.
  GmdjExpr query = queries::GroupReductionQuery("CustKey");
  query.order_by = {{"cnt1", true}, {"CustKey", false}};
  query.limit = 5;

  ASSERT_OK_AND_ASSIGN(Table expected, warehouse_->ExecuteCentralized(query));
  ASSERT_EQ(expected.num_rows(), 5);
  for (const auto& options :
       {OptimizerOptions::None(), OptimizerOptions::All()}) {
    ASSERT_OK_AND_ASSIGN(QueryResult result,
                         warehouse_->Execute(query, options));
    ASSERT_EQ(result.table.num_rows(), 5);
    for (int64_t r = 0; r < 5; ++r) {
      for (int c = 0; c < expected.schema().num_fields(); ++c) {
        EXPECT_EQ(result.table.Get(r, c), expected.Get(r, c));
      }
    }
  }
  ASSERT_OK_AND_ASSIGN(DistributedPlan plan,
                       warehouse_->Plan(query, OptimizerOptions::None()));
  ASSERT_OK_AND_ASSIGN(QueryResult tree, warehouse_->ExecutePlanTree(plan, 2));
  for (int64_t r = 0; r < 5; ++r) {
    EXPECT_EQ(tree.table.Get(r, 0), expected.Get(r, 0));
  }
}

TEST_F(PresentationTest, DialectOrderByLimitRoundTrip) {
  ASSERT_OK_AND_ASSIGN(
      GmdjExpr query,
      ParseOlapQuery(
          "SELECT NationKey, COUNT(*) AS n, AVG(Quantity) AS aq FROM TPCR "
          "GROUP BY NationKey HAVING n > 10 "
          "ORDER BY n DESC, NationKey LIMIT 3"));
  ASSERT_EQ(query.order_by.size(), 2u);
  EXPECT_TRUE(query.order_by[0].descending);
  EXPECT_FALSE(query.order_by[1].descending);
  EXPECT_EQ(query.limit, 3);

  ASSERT_OK_AND_ASSIGN(std::string text, OlapQueryToString(query));
  ASSERT_OK_AND_ASSIGN(GmdjExpr reparsed, ParseOlapQuery(text));
  EXPECT_EQ(reparsed.limit, 3);
  ASSERT_EQ(reparsed.order_by.size(), 2u);
  EXPECT_EQ(reparsed.order_by[0].column, "n");

  ASSERT_OK_AND_ASSIGN(QueryResult result,
                       warehouse_->Execute(query, OptimizerOptions::All()));
  ASSERT_LE(result.table.num_rows(), 3);
  // Descending by n.
  for (int64_t r = 1; r < result.table.num_rows(); ++r) {
    EXPECT_GE(result.table.Get(r - 1, 1).AsInt64(),
              result.table.Get(r, 1).AsInt64());
  }
}

TEST_F(PresentationTest, DialectErrors) {
  EXPECT_FALSE(ParseOlapQuery("SELECT g, COUNT(*) AS n FROM T GROUP BY g "
                              "ORDER BY nope")
                   .ok());
  EXPECT_FALSE(ParseOlapQuery("SELECT g, COUNT(*) AS n FROM T GROUP BY g "
                              "LIMIT x")
                   .ok());
  // ORDER BY validation in the algebra too.
  GmdjExpr query = queries::GroupReductionQuery("CustKey");
  query.order_by = {{"not_a_column", false}};
  EXPECT_FALSE(
      warehouse_->Execute(query, OptimizerOptions::None()).ok());
}

TEST_F(PresentationTest, LimitZeroAndOversized) {
  GmdjExpr query = queries::CoalescingQuery("NationKey");
  query.limit = 0;
  ASSERT_OK_AND_ASSIGN(QueryResult empty,
                       warehouse_->Execute(query, OptimizerOptions::All()));
  EXPECT_EQ(empty.table.num_rows(), 0);
  query.limit = 1000000;
  ASSERT_OK_AND_ASSIGN(QueryResult all,
                       warehouse_->Execute(query, OptimizerOptions::All()));
  EXPECT_EQ(all.table.num_rows(), 25);
}

}  // namespace
}  // namespace skalla

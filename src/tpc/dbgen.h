#ifndef SKALLA_TPC_DBGEN_H_
#define SKALLA_TPC_DBGEN_H_

#include <cstdint>
#include <memory>

#include "storage/schema.h"
#include "storage/table.h"

namespace skalla {

/// \brief Parameters of the TPC-R-like data generator.
///
/// The paper derives its test database from the TPC(R) dbgen program as a
/// *denormalized* fact relation (orders ⋈ lineitem ⋈ customer ⋈ nation
/// flattened), 6M tuples / 900MB, partitioned on NationKey across 8 sites.
/// This generator reproduces that shape at configurable scale:
///  - `CustKey` is block-correlated with `NationKey` (custkeys
///    [n·C/N, (n+1)·C/N) belong to nation n), so a NationKey partitioning
///    also partitions CustKey — exactly the property the paper states;
///  - `CustName` is the high-cardinality grouping attribute (the paper's
///    experiments use Customer.Name with 100,000 uniques);
///  - `Clerk` is the low-cardinality attribute (2000–4000 uniques).
struct TpcConfig {
  int64_t num_rows = 60000;
  int64_t num_customers = 10000;
  int64_t num_nations = 25;
  int64_t num_clerks = 3000;
  int64_t num_parts = 20000;
  int64_t num_suppliers = 1000;
  uint64_t seed = 42;
  /// Zipf exponent of the customer-key draw: 0 (default) keeps the
  /// classic uniform dbgen shape; s > 0 concentrates orders on low
  /// customer keys (s ≈ 1 is the canonical web-workload skew, 10x row
  /// imbalance across a NationKey partitioning arrives well before
  /// s = 1.5) — the skew workloads of docs/skew.md.
  double cust_zipf_s = 0.0;
};

/// The schema of the denormalized TPCR fact relation.
SchemaPtr TpcrSchema();

/// Generates the TPCR relation; deterministic in `config.seed`.
Table GenerateTpcr(const TpcConfig& config);

/// Derives the customer name string for a key ("Customer#000000042").
std::string CustomerName(int64_t cust_key);

/// The nation a customer key belongs to under the block mapping.
int64_t NationOfCustomer(int64_t cust_key, const TpcConfig& config);

}  // namespace skalla

#endif  // SKALLA_TPC_DBGEN_H_

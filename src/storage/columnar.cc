#include "storage/columnar.h"

#include <algorithm>
#include <mutex>
#include <numeric>

#include "storage/table.h"

namespace skalla {

int32_t ColumnarTable::Column::LowerBoundRank(const std::string& s) const {
  auto it = std::lower_bound(
      sorted_codes.begin(), sorted_codes.end(), s,
      [this](int32_t code, const std::string& key) {
        return dict[static_cast<size_t>(code)] < key;
      });
  return static_cast<int32_t>(it - sorted_codes.begin());
}

std::shared_ptr<const ColumnarTable> ColumnarTable::Build(const Table& table) {
  auto view = std::shared_ptr<ColumnarTable>(new ColumnarTable());
  const int64_t n = table.num_rows();
  const int num_cols = table.schema().num_fields();
  view->num_rows_ = n;
  view->columns_.resize(static_cast<size_t>(num_cols));
  const size_t words = static_cast<size_t>((n + 63) / 64);
  for (int c = 0; c < num_cols; ++c) {
    Column& col = view->columns_[static_cast<size_t>(c)];
    col.type = table.schema().field(c).type;
    col.usable = true;
    col.valid.assign(words, 0);
    switch (col.type) {
      case ValueType::kInt64:
        col.ints.assign(static_cast<size_t>(n), 0);
        break;
      case ValueType::kDouble:
        col.doubles.assign(static_cast<size_t>(n), 0.0);
        break;
      case ValueType::kString:
        col.codes.assign(static_cast<size_t>(n), -1);
        break;
      case ValueType::kNull:
        // A declared-NULL column is usable iff every cell really is NULL:
        // the batch evaluator then folds it to a constant.
        break;
    }
    for (int64_t i = 0; i < n && col.usable; ++i) {
      const Value& v = table.row(i)[static_cast<size_t>(c)];
      if (v.is_null()) {
        col.has_nulls = true;
        continue;
      }
      if (v.type() != col.type) {
        col.usable = false;
        break;
      }
      col.valid[static_cast<size_t>(i) >> 6] |= uint64_t{1} << (i & 63);
      switch (col.type) {
        case ValueType::kInt64:
          col.ints[static_cast<size_t>(i)] = v.AsInt64();
          break;
        case ValueType::kDouble:
          col.doubles[static_cast<size_t>(i)] = v.AsDouble();
          break;
        case ValueType::kString: {
          const std::string& s = v.AsString();
          auto [it, inserted] = col.dict_index.try_emplace(
              s, static_cast<int32_t>(col.dict.size()));
          if (inserted) col.dict.push_back(s);
          col.codes[static_cast<size_t>(i)] = it->second;
          break;
        }
        case ValueType::kNull:
          break;
      }
    }
    if (!col.usable || !col.has_nulls) col.valid.clear();
    col.valid.shrink_to_fit();
    if (!col.usable) {
      col.ints.clear();
      col.doubles.clear();
      col.codes.clear();
      col.dict.clear();
      col.dict_index.clear();
    }
    if (col.usable && col.type == ValueType::kString) {
      // Order index: dictionary entries are distinct, so a plain sort by
      // string yields one well-defined lexicographic rank per code.
      col.sorted_codes.resize(col.dict.size());
      std::iota(col.sorted_codes.begin(), col.sorted_codes.end(), 0);
      std::sort(col.sorted_codes.begin(), col.sorted_codes.end(),
                [&col](int32_t a, int32_t b) {
                  return col.dict[static_cast<size_t>(a)] <
                         col.dict[static_cast<size_t>(b)];
                });
      col.order_rank.resize(col.dict.size());
      for (size_t r = 0; r < col.sorted_codes.size(); ++r) {
        col.order_rank[static_cast<size_t>(col.sorted_codes[r])] =
            static_cast<int32_t>(r);
      }
    }
  }
  return view;
}

namespace {
// Guards the lazy per-Table snapshot build. Build-under-lock keeps the
// "thread-safe once" contract trivially TSan-clean; a table is built at
// most once per lifetime, so the serialization cost is negligible.
std::mutex g_columnar_mutex;
}  // namespace

std::shared_ptr<const ColumnarTable> Table::columnar() const {
  std::lock_guard<std::mutex> lock(g_columnar_mutex);
  if (columnar_cache_ == nullptr) {
    columnar_cache_ = ColumnarTable::Build(*this);
  }
  return columnar_cache_;
}

}  // namespace skalla

// The paper notes the coordinator "may consist of multiple instances,
// e.g., each client may have its own coordinator instance" (Sect. 3.1).
// Warehouse::Execute builds a fresh Coordinator per call and sites are
// read-only during evaluation, so concurrent clients are supported; these
// tests pin that property — first directly on the Warehouse, then through
// the serving layer (src/server/), where N randomized clients race mixed
// query templates against one Server and every response must be
// byte-identical to the serial single-client execution, with caching on
// or off (DESIGN.md invariant 10).

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "server/server.h"
#include "skalla/queries.h"
#include "skalla/warehouse.h"
#include "test_util.h"
#include "tpc/dbgen.h"

namespace skalla {
namespace {

TEST(ConcurrentQueriesTest, ParallelClientsGetCorrectResults) {
  Warehouse wh(4);
  TpcConfig config;
  config.num_rows = 6000;
  config.num_customers = 400;
  Table tpcr = GenerateTpcr(config);
  ASSERT_OK(wh.LoadByRange("TPCR", tpcr, "NationKey", 0, 24, {"CustKey"}));

  const std::vector<GmdjExpr> queries = {
      queries::GroupReductionQuery("CustKey"),
      queries::CoalescingQuery("ClerkKey"),
      queries::SyncReductionQuery("CustKey"),
      queries::CombinedQuery("CustKey"),
      queries::MultiFeatureQuery("NationKey"),
  };

  // Sequential oracle first.
  std::vector<Table> expected;
  for (const GmdjExpr& query : queries) {
    auto result = wh.ExecuteCentralized(query);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    expected.push_back(std::move(result).ValueUnsafe());
  }

  // Then 3 rounds of all five queries racing on the shared sites, with
  // alternating optimizer settings.
  for (int round = 0; round < 3; ++round) {
    std::vector<std::future<Result<QueryResult>>> futures;
    for (size_t q = 0; q < queries.size(); ++q) {
      const OptimizerOptions options = (round + q) % 2 == 0
                                           ? OptimizerOptions::All()
                                           : OptimizerOptions::None();
      futures.push_back(std::async(
          std::launch::async,
          [&wh, &queries, q, options]() {
            return wh.Execute(queries[q], options);
          }));
    }
    for (size_t q = 0; q < futures.size(); ++q) {
      auto result = futures[q].get();
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ExpectSameRows(result->table, expected[q]);
    }
  }
}

TEST(ConcurrentQueriesTest, MixedFlatAndTreeClients) {
  Warehouse wh(8);
  TpcConfig config;
  config.num_rows = 4000;
  config.num_customers = 300;
  Table tpcr = GenerateTpcr(config);
  ASSERT_OK(wh.LoadByRange("TPCR", tpcr, "NationKey", 0, 24, {"CustKey"}));

  const GmdjExpr query = queries::GroupReductionQuery("CustKey");
  ASSERT_OK_AND_ASSIGN(Table expected, wh.ExecuteCentralized(query));
  ASSERT_OK_AND_ASSIGN(DistributedPlan plan,
                       wh.Plan(query, OptimizerOptions::None()));

  auto flat = std::async(std::launch::async,
                         [&wh, &plan]() { return wh.ExecutePlan(plan); });
  auto tree2 = std::async(std::launch::async,
                          [&wh, &plan]() { return wh.ExecutePlanTree(plan, 2); });
  auto tree4 = std::async(std::launch::async,
                          [&wh, &plan]() { return wh.ExecutePlanTree(plan, 4); });
  for (auto* f : {&flat, &tree2, &tree4}) {
    auto result = f->get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectSameRows(result->table, expected);
  }
}

// ---- Server stress: randomized multi-client byte-identity ------------------

// Mixed workload in the OLAP dialect, from a plain grouping to a
// three-operator correlated chain.
const char* const kTemplates[] = {
    "SELECT CustKey, COUNT(*) AS cnt FROM TPCR GROUP BY CustKey",
    "SELECT ClerkKey, SUM(Quantity) AS sq FROM TPCR GROUP BY ClerkKey "
    "EXTEND COUNT(*) AS big WHERE Quantity >= 30",
    "SELECT NationKey, COUNT(*) AS cnt, SUM(Quantity) AS sq FROM TPCR "
    "GROUP BY NationKey EXTEND COUNT(*) AS small WHERE Quantity <= sq / cnt",
    "SELECT MktSegment, COUNT(*) AS cnt FROM TPCR GROUP BY MktSegment "
    "EXTEND SUM(Quantity) AS hi WHERE Quantity >= 25 "
    "EXTEND COUNT(*) AS lo WHERE Quantity <= 5",
    "SELECT RegionKey, AVG(Quantity) AS aq FROM TPCR GROUP BY RegionKey",
};
constexpr size_t kNumTemplates = sizeof(kTemplates) / sizeof(kTemplates[0]);

// A server with a deterministically generated TPCR load (the LOAD command
// recipe, so every server in the test holds identical bytes).
std::unique_ptr<server::Server> MakeLoadedServer(server::ServerOptions opts) {
  auto srv = std::make_unique<server::Server>(4, opts);
  server::Client admin(srv.get());
  auto loaded = admin.Call("LOAD tpcr 4000");
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
  return srv;
}

// Serial single-client oracle payloads, computed with caching disabled.
std::vector<std::string> OraclePayloads() {
  server::ServerOptions opts;
  opts.enable_result_cache = false;
  opts.enable_prefix_reuse = false;
  auto oracle = MakeLoadedServer(opts);
  server::Client client(oracle.get());
  std::vector<std::string> expected;
  for (const char* text : kTemplates) {
    auto payload = client.Call(std::string("QUERY ") + text);
    EXPECT_TRUE(payload.ok()) << payload.status().ToString();
    expected.push_back(payload.ok() ? *payload : "");
  }
  return expected;
}

void StressServer(bool caches_on) {
  server::ServerOptions opts;
  opts.admission.max_concurrent = 3;
  opts.enable_result_cache = caches_on;
  opts.enable_prefix_reuse = caches_on;
  auto srv = MakeLoadedServer(opts);
  const std::vector<std::string> expected = OraclePayloads();

  constexpr int kClients = 6;
  constexpr int kQueriesPerClient = 8;
  const char* const kPriorities[] = {"low", "normal", "high"};
  std::vector<std::string> failures(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c]() {
      server::Client client(srv.get());
      Rng rng(0xC0FFEE + static_cast<uint64_t>(c) * 7919);
      for (int i = 0; i < kQueriesPerClient; ++i) {
        const size_t t = static_cast<size_t>(
            rng.Uniform(0, static_cast<int64_t>(kNumTemplates) - 1));
        std::string cmd = "QUERY PRIORITY ";
        cmd += kPriorities[rng.Uniform(0, 2)];
        // Randomized per-query morsel-lane quota: the quota multiplexes
        // the shared pool and must never change a byte of the answer.
        cmd += " THREADS " + std::to_string(rng.Uniform(0, 2));
        if (rng.Chance(0.25)) cmd += " NOCACHE";
        cmd += " ";
        cmd += kTemplates[t];
        auto payload = client.Call(cmd);
        if (!payload.ok()) {
          failures[c] = payload.status().ToString();
          return;
        }
        if (*payload != expected[t]) {
          failures[c] = "template " + std::to_string(t) +
                        ": concurrent payload differs from serial oracle";
          return;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_TRUE(failures[c].empty()) << "client " << c << ": " << failures[c];
  }

  const server::ServerStats stats = srv->stats();
  EXPECT_EQ(stats.queries_submitted, kClients * kQueriesPerClient);
  EXPECT_EQ(stats.queries_completed, kClients * kQueriesPerClient);
  EXPECT_EQ(stats.running, 0);
  EXPECT_EQ(stats.queued, 0u);
  if (caches_on) {
    // 48 queries over 5 templates: repeats must hit.
    EXPECT_GT(stats.cache.hits, 0u);
  } else {
    EXPECT_EQ(stats.cache.hits, 0u);
    EXPECT_EQ(stats.cache.stores, 0u);
  }
}

TEST(ServerStressTest, RandomizedClientsMatchSerialOracleCacheOff) {
  StressServer(/*caches_on=*/false);
}

TEST(ServerStressTest, RandomizedClientsMatchSerialOracleCacheOn) {
  StressServer(/*caches_on=*/true);
}

}  // namespace
}  // namespace skalla

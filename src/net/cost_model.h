#ifndef SKALLA_NET_COST_MODEL_H_
#define SKALLA_NET_COST_MODEL_H_

#include <cstddef>
#include <string>

namespace skalla {

/// \brief Parameters of the simulated wide-area network between the
/// coordinator and the Skalla sites.
///
/// The paper's distributed data warehouse runs over a WAN where
/// "communication is assumed to be very cheap" does NOT hold (its explicit
/// contrast with parallel DBs, Sect. 1.2). The defaults model a modest
/// year-2002 WAN link; benchmarks vary them to study comm/compute ratios.
///
/// The coordinator's access link is shared: transfers to/from distinct
/// sites serialize on it, which is what makes per-round traffic of
/// n·|X| groups cost Θ(n) time and total evaluation of n rounds of such
/// traffic Θ(n²) — the effect Figures 2–4 of the paper demonstrate.
struct NetworkConfig {
  /// Payload bandwidth of the coordinator link in bytes/second.
  double bandwidth_bytes_per_sec = 4.0 * 1024 * 1024;
  /// One-way message latency in seconds, charged once per message.
  double latency_sec = 0.005;

  /// Streaming synchronization (paper Sect. 3.2): the base-result
  /// structure is horizontally partitionable, so the coordinator can merge
  /// already-received blocks of H while slower sites are still
  /// transmitting. When enabled, a round's coordinator CPU overlaps its
  /// communication time instead of adding to it (see
  /// RoundMetrics::ResponseSeconds); traffic is unchanged.
  bool streaming_sync = false;

  /// Simulated seconds for one message of `bytes` payload.
  double TransferSeconds(size_t bytes) const {
    return latency_sec + static_cast<double>(bytes) / bandwidth_bytes_per_sec;
  }
};

}  // namespace skalla

#endif  // SKALLA_NET_COST_MODEL_H_

#include "common/random.h"

#include <cmath>

#include "common/logging.h"

namespace skalla {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Reseed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next64() {
  // xoshiro256** step.
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

int64_t Rng::Uniform(int64_t lo, int64_t hi) {
  SKALLA_CHECK(lo <= hi) << "Uniform(" << lo << ", " << hi << ")";
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {
    // Full 64-bit range requested.
    return static_cast<int64_t>(Next64());
  }
  // Rejection sampling to remove modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t draw = Next64();
  while (draw >= limit) draw = Next64();
  return lo + static_cast<int64_t>(draw % span);
}

double Rng::UniformDouble() {
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Chance(double p) { return UniformDouble() < p; }

int64_t Rng::Zipf(int64_t n, double s) {
  SKALLA_CHECK(n > 0);
  if (s <= 0.0) return Uniform(0, n - 1);
  // Approximate inversion of the Zipf CDF via the continuous analogue
  // (bounded Pareto); adequate for workload skew generation.
  const double u = UniformDouble();
  if (s == 1.0) {
    const double hn = std::log(static_cast<double>(n) + 1.0);
    const double x = std::exp(u * hn) - 1.0;
    int64_t rank = static_cast<int64_t>(x);
    if (rank >= n) rank = n - 1;
    return rank;
  }
  const double one_minus_s = 1.0 - s;
  const double top = std::pow(static_cast<double>(n) + 1.0, one_minus_s);
  const double x = std::pow(u * (top - 1.0) + 1.0, 1.0 / one_minus_s) - 1.0;
  int64_t rank = static_cast<int64_t>(x);
  if (rank >= n) rank = n - 1;
  if (rank < 0) rank = 0;
  return rank;
}

std::string Rng::AlphaString(int length) {
  std::string out;
  out.reserve(static_cast<size_t>(length));
  for (int i = 0; i < length; ++i) {
    out.push_back(static_cast<char>('a' + Uniform(0, 25)));
  }
  return out;
}

}  // namespace skalla

#include "cube/cube.h"

#include <set>
#include <unordered_map>

#include "common/logging.h"
#include "engine/operators.h"
#include "storage/row.h"

namespace skalla {

namespace {

/// How one user-facing aggregate is carried through rollup: AVG travels as
/// a (SUM, COUNT) pair — the same decomposition Theorem 1 uses — everything
/// else is its own carrier. Carrier values of COUNT/SUM/MIN/MAX are merged
/// across lattice levels with their super-aggregate.
struct Carrier {
  AggSpec user_spec;
  std::vector<AggSpec> carriers;  // 1 or 2 specs
};

std::vector<Carrier> DecomposeAggs(const std::vector<AggSpec>& aggs) {
  std::vector<Carrier> out;
  out.reserve(aggs.size());
  for (const AggSpec& spec : aggs) {
    Carrier carrier;
    carrier.user_spec = spec;
    if (spec.func == AggFunc::kAvg) {
      carrier.carriers = {
          AggSpec::Sum(spec.input, spec.output + "__sum"),
          AggSpec::CountCol(spec.input, spec.output + "__cnt")};
    } else {
      carrier.carriers = {spec};
    }
    out.push_back(std::move(carrier));
  }
  return out;
}

std::vector<AggSpec> FlattenCarriers(const std::vector<Carrier>& carriers) {
  std::vector<AggSpec> out;
  for (const Carrier& c : carriers) {
    out.insert(out.end(), c.carriers.begin(), c.carriers.end());
  }
  return out;
}

/// Super-aggregate used to merge a carrier column across lattice levels.
void MergeCarrier(AggFunc func, const Value& in, Value* acc) {
  Value tmp[1] = {in};
  MergeSubValues(func == AggFunc::kCount ? AggFunc::kCount : func, tmp, acc);
}

/// Schema of the user-facing cube result, typed against the source schema.
Result<SchemaPtr> CubeSchema(const CubeSpec& spec, const Schema& source) {
  std::vector<Field> fields;
  for (const std::string& dim : spec.dims) {
    SKALLA_ASSIGN_OR_RETURN(int idx, source.MustIndexOf(dim));
    fields.push_back(source.field(idx));
  }
  for (const AggSpec& agg : spec.aggs) {
    SKALLA_ASSIGN_OR_RETURN(Field f, FinalFieldFor(agg, source));
    fields.push_back(std::move(f));
  }
  return MakeSchema(std::move(fields));
}

/// Rolls the finest-granularity carrier table up to one grouping set.
///
/// `finest` has schema [dims..., carrier cols...]; `mask` bit i keeps
/// dimension i. Emits rows with NULL in dropped dimension positions and
/// merged carrier values. Row order is unspecified.
Table RollupToMask(const Table& finest, size_t num_dims,
                   const std::vector<Carrier>& carriers, uint32_t mask) {
  std::vector<int> group_cols;
  for (size_t d = 0; d < num_dims; ++d) {
    if (mask & (1u << d)) group_cols.push_back(static_cast<int>(d));
  }

  struct GroupHasher {
    const std::vector<int>* cols;
    size_t operator()(const Row* row) const {
      return static_cast<size_t>(RowKeyHash(*row, *cols));
    }
  };
  struct GroupEq {
    const std::vector<int>* cols;
    bool operator()(const Row* a, const Row* b) const {
      return RowKeyEquals(*a, *cols, *b, *cols);
    }
  };
  GroupHasher hasher{&group_cols};
  GroupEq eq{&group_cols};
  std::unordered_map<const Row*, size_t, GroupHasher, GroupEq> index(
      16, hasher, eq);

  struct Group {
    Row dims;                 // full width, NULLs where rolled up
    std::vector<Value> acc;   // one per carrier column
  };
  std::vector<Group> groups;

  for (const Row& row : finest.rows()) {
    auto [it, inserted] = index.emplace(&row, groups.size());
    if (inserted) {
      Group g;
      g.dims.resize(num_dims);  // NULL-initialized
      for (int c : group_cols) {
        g.dims[static_cast<size_t>(c)] = row[static_cast<size_t>(c)];
      }
      size_t col = num_dims;
      for (const Carrier& carrier : carriers) {
        for (const AggSpec& sub : carrier.carriers) {
          Value init[1];
          InitSubValues(sub.func, init);
          g.acc.push_back(init[0]);
          (void)col;
          ++col;
        }
      }
      groups.push_back(std::move(g));
    }
    Group& g = groups[it->second];
    size_t col = num_dims;
    size_t acc_idx = 0;
    for (const Carrier& carrier : carriers) {
      for (const AggSpec& sub : carrier.carriers) {
        MergeCarrier(sub.func, row[col], &g.acc[acc_idx]);
        ++col;
        ++acc_idx;
      }
    }
  }

  // Emit carrier-form rows (same layout as `finest`).
  Table out(finest.schema_ptr());
  out.Reserve(static_cast<int64_t>(groups.size()));
  for (Group& g : groups) {
    Row row = std::move(g.dims);
    row.insert(row.end(), g.acc.begin(), g.acc.end());
    out.AddRow(std::move(row));
  }
  return out;
}

/// Converts a carrier-form table [dims..., carrier cols...] into the
/// user-facing form [dims..., final agg cols...].
Table FinalizeCarriers(const Table& carrier_table, size_t num_dims,
                       const std::vector<Carrier>& carriers,
                       SchemaPtr out_schema) {
  Table out(std::move(out_schema));
  out.Reserve(carrier_table.num_rows());
  for (const Row& row : carrier_table.rows()) {
    Row final_row(row.begin(), row.begin() + static_cast<int64_t>(num_dims));
    size_t col = num_dims;
    for (const Carrier& carrier : carriers) {
      if (carrier.user_spec.func == AggFunc::kAvg) {
        const Value acc[2] = {row[col], row[col + 1]};
        final_row.push_back(FinalizeSubValues(AggFunc::kAvg, acc));
        col += 2;
      } else {
        final_row.push_back(
            FinalizeSubValues(carrier.user_spec.func, &row[col]));
        col += 1;
      }
    }
    out.AddRow(std::move(final_row));
  }
  return out;
}

Status ValidateSpec(const CubeSpec& spec) {
  if (spec.dims.empty()) {
    return Status::InvalidArgument("cube needs at least one dimension");
  }
  if (spec.dims.size() > 16) {
    return Status::InvalidArgument("cube supports at most 16 dimensions");
  }
  if (spec.aggs.empty()) {
    return Status::InvalidArgument("cube needs at least one aggregate");
  }
  for (const AggSpec& agg : spec.aggs) {
    if (agg.func == AggFunc::kAvg && agg.is_count_star()) {
      return Status::InvalidArgument("avg(*) is not a valid aggregate");
    }
    if (agg.func == AggFunc::kVar || agg.func == AggFunc::kStdDev) {
      // VAR/STDDEV decompose into a sum-of-squares carrier, which is not
      // itself an aggregate over a source column; the cube's
      // carrier-based rollup cannot express it.
      return Status::InvalidArgument(
          std::string(AggFuncToString(agg.func)) +
          " is not supported in cube/grouping-sets queries");
    }
  }
  return Status::OK();
}

/// Builds the single-operator GMDJ expression computing the carrier
/// aggregates grouped on `group_dims`.
GmdjExpr FinestExpr(const CubeSpec& spec,
                    const std::vector<std::string>& group_dims,
                    const std::vector<AggSpec>& carrier_aggs) {
  GmdjExpr expr;
  expr.base.source_table = spec.table;
  expr.base.project_cols = group_dims;
  GmdjOp op;
  op.detail_table = spec.table;
  std::vector<ExprPtr> eqs;
  for (const std::string& dim : group_dims) {
    eqs.push_back(Eq(BCol(dim), RCol(dim)));
  }
  op.blocks.push_back(GmdjBlock{carrier_aggs, AndAll(eqs)});
  expr.ops.push_back(std::move(op));
  return expr;
}

/// Widens a per-grouping-set carrier result (subset dims only) to the full
/// dim width with NULLs in the dropped positions.
Table WidenToFullDims(const Table& narrow, const CubeSpec& spec,
                      uint32_t mask, SchemaPtr carrier_schema) {
  Table out(std::move(carrier_schema));
  out.Reserve(narrow.num_rows());
  const size_t num_dims = spec.dims.size();
  for (const Row& row : narrow.rows()) {
    Row wide(num_dims);  // NULLs
    size_t narrow_col = 0;
    for (size_t d = 0; d < num_dims; ++d) {
      if (mask & (1u << d)) wide[d] = row[narrow_col++];
    }
    for (size_t c = narrow_col; c < row.size(); ++c) wide.push_back(row[c]);
    out.AddRow(std::move(wide));
  }
  return out;
}

}  // namespace

std::vector<uint32_t> RollupMasks(size_t num_dims) {
  std::vector<uint32_t> masks;
  masks.reserve(num_dims + 1);
  uint32_t mask = 0;
  masks.push_back(mask);
  for (size_t d = 0; d < num_dims; ++d) {
    mask |= (1u << d);
    masks.push_back(mask);
  }
  return masks;
}

std::vector<uint32_t> CubeMasks(size_t num_dims) {
  std::vector<uint32_t> masks;
  masks.reserve(size_t{1} << num_dims);
  for (uint32_t m = 0; m < (1u << num_dims); ++m) masks.push_back(m);
  return masks;
}

namespace {

Status ValidateMasks(const CubeSpec& spec,
                     const std::vector<uint32_t>& masks) {
  if (masks.empty()) {
    return Status::InvalidArgument("no grouping sets requested");
  }
  std::set<uint32_t> seen;
  for (uint32_t mask : masks) {
    if (mask >= (1u << spec.dims.size())) {
      return Status::InvalidArgument("grouping-set mask out of range");
    }
    if (!seen.insert(mask).second) {
      return Status::InvalidArgument("duplicate grouping-set mask");
    }
  }
  return Status::OK();
}

}  // namespace

Result<Table> GroupingSetsCentralized(const CubeSpec& spec,
                                      const Table& source,
                                      const std::vector<uint32_t>& masks) {
  SKALLA_RETURN_NOT_OK(ValidateSpec(spec));
  SKALLA_RETURN_NOT_OK(ValidateMasks(spec, masks));
  SKALLA_ASSIGN_OR_RETURN(SchemaPtr out_schema,
                          CubeSchema(spec, source.schema()));
  Table out(out_schema);
  for (uint32_t mask : masks) {
    std::vector<std::string> group_cols;
    for (size_t d = 0; d < spec.dims.size(); ++d) {
      if (mask & (1u << d)) group_cols.push_back(spec.dims[d]);
    }
    SKALLA_ASSIGN_OR_RETURN(Table grouped,
                            HashGroupBy(source, group_cols, spec.aggs));
    // Pad to the full dim width.
    for (const Row& row : grouped.rows()) {
      Row wide(spec.dims.size());
      size_t narrow_col = 0;
      for (size_t d = 0; d < spec.dims.size(); ++d) {
        if (mask & (1u << d)) wide[d] = row[narrow_col++];
      }
      for (size_t c = narrow_col; c < row.size(); ++c) {
        wide.push_back(row[c]);
      }
      out.AddRow(std::move(wide));
    }
  }
  return out;
}

Result<Table> CubeCentralized(const CubeSpec& spec, const Table& source) {
  SKALLA_RETURN_NOT_OK(ValidateSpec(spec));
  return GroupingSetsCentralized(spec, source, CubeMasks(spec.dims.size()));
}

Result<CubeExecution> CubeDistributed(Warehouse& warehouse,
                                      const CubeSpec& spec,
                                      CubeStrategy strategy,
                                      const OptimizerOptions& options) {
  SKALLA_RETURN_NOT_OK(ValidateSpec(spec));
  return GroupingSetsDistributed(warehouse, spec,
                                 CubeMasks(spec.dims.size()), strategy,
                                 options);
}

Result<CubeExecution> GroupingSetsDistributed(
    Warehouse& warehouse, const CubeSpec& spec,
    const std::vector<uint32_t>& masks, CubeStrategy strategy,
    const OptimizerOptions& options) {
  SKALLA_RETURN_NOT_OK(ValidateSpec(spec));
  SKALLA_RETURN_NOT_OK(ValidateMasks(spec, masks));
  SKALLA_ASSIGN_OR_RETURN(std::shared_ptr<const Table> source,
                          warehouse.central_catalog().GetTable(spec.table));
  SKALLA_ASSIGN_OR_RETURN(SchemaPtr out_schema,
                          CubeSchema(spec, source->schema()));

  const std::vector<Carrier> carriers = DecomposeAggs(spec.aggs);
  const std::vector<AggSpec> carrier_aggs = FlattenCarriers(carriers);
  const size_t num_dims = spec.dims.size();
  const uint32_t full_mask = (1u << num_dims) - 1;

  CubeExecution execution;
  execution.table = Table(out_schema);

  auto account = [&execution](const QueryResult& result) {
    ++execution.distributed_queries;
    execution.rounds += result.metrics.NumRounds();
    execution.total_bytes += result.metrics.TotalBytes();
    execution.response_seconds += result.metrics.ResponseSeconds();
  };

  (void)full_mask;

  if (strategy == CubeStrategy::kRollupFromFinest) {
    // One distributed query at the finest granularity; every requested
    // grouping set (including the finest itself, for uniform NULL
    // semantics) is rolled up locally from the shipped carrier values.
    SKALLA_ASSIGN_OR_RETURN(
        QueryResult finest,
        warehouse.Execute(FinestExpr(spec, spec.dims, carrier_aggs),
                          options));
    account(finest);
    for (uint32_t mask : masks) {
      const Table level =
          RollupToMask(finest.table, num_dims, carriers, mask);
      execution.table.Append(
          FinalizeCarriers(level, num_dims, carriers, out_schema));
    }
    return execution;
  }

  // kPerGroupingSet: one distributed query per non-empty grouping set; the
  // grand total (empty set), if requested, is rolled up from the processed
  // set with the fewest dimensions (a GMDJ needs a non-empty base
  // projection).
  bool want_grand_total = false;
  Table grand_total_source(out_schema);
  int grand_source_dims = -1;
  for (uint32_t mask : masks) {
    if (mask == 0) {
      want_grand_total = true;
      continue;
    }
    std::vector<std::string> group_dims;
    for (size_t d = 0; d < num_dims; ++d) {
      if (mask & (1u << d)) group_dims.push_back(spec.dims[d]);
    }
    SKALLA_ASSIGN_OR_RETURN(
        QueryResult level,
        warehouse.Execute(FinestExpr(spec, group_dims, carrier_aggs),
                          options));
    account(level);
    // Widen to carrier layout [all dims, carriers...].
    std::vector<Field> carrier_fields;
    for (const std::string& dim : spec.dims) {
      SKALLA_ASSIGN_OR_RETURN(int idx,
                              source->schema().MustIndexOf(dim));
      carrier_fields.push_back(source->schema().field(idx));
    }
    for (const AggSpec& sub : carrier_aggs) {
      SKALLA_ASSIGN_OR_RETURN(Field f,
                              FinalFieldFor(sub, source->schema()));
      carrier_fields.push_back(std::move(f));
    }
    const Table wide = WidenToFullDims(level.table, spec, mask,
                                       MakeSchema(carrier_fields));
    const int dims_in_mask = __builtin_popcount(mask);
    if (grand_source_dims < 0 || dims_in_mask < grand_source_dims) {
      grand_total_source = wide;
      grand_source_dims = dims_in_mask;
    }
    execution.table.Append(
        FinalizeCarriers(wide, num_dims, carriers, out_schema));
  }
  if (want_grand_total) {
    if (grand_source_dims < 0) {
      // Only the empty set was requested: aggregate via the first
      // dimension without emitting that level.
      SKALLA_ASSIGN_OR_RETURN(
          QueryResult level,
          warehouse.Execute(
              FinestExpr(spec, {spec.dims[0]}, carrier_aggs), options));
      account(level);
      std::vector<Field> carrier_fields;
      for (const std::string& dim : spec.dims) {
        SKALLA_ASSIGN_OR_RETURN(int idx,
                                source->schema().MustIndexOf(dim));
        carrier_fields.push_back(source->schema().field(idx));
      }
      for (const AggSpec& sub : carrier_aggs) {
        SKALLA_ASSIGN_OR_RETURN(Field f,
                                FinalFieldFor(sub, source->schema()));
        carrier_fields.push_back(std::move(f));
      }
      grand_total_source = WidenToFullDims(level.table, spec, 1u,
                                           MakeSchema(carrier_fields));
    }
    const Table total =
        RollupToMask(grand_total_source, num_dims, carriers, 0);
    execution.table.Append(
        FinalizeCarriers(total, num_dims, carriers, out_schema));
  }
  return execution;
}

}  // namespace skalla

#ifndef SKALLA_COMMON_RESULT_H_
#define SKALLA_COMMON_RESULT_H_

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <utility>

#include "common/status.h"

namespace skalla {

/// \brief Either a value of type T or an error Status.
///
/// Result<T> is the return type of every fallible operation that produces a
/// value (no exceptions are used anywhere in Skalla). Typical call sites use
/// the SKALLA_ASSIGN_OR_RETURN macro from status.h:
///
/// \code
///   SKALLA_ASSIGN_OR_RETURN(Table t, catalog.GetTable("flow"));
/// \endcode
template <typename T>
class Result {
 public:
  /// Implicit from a value: enables `return my_value;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from an error Status: enables `return Status::NotFound(...)`.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return status_.ok(); }

  /// The error (or OK when a value is present).
  const Status& status() const& { return status_; }
  Status status() && { return std::move(status_); }

  /// The value; must only be called when ok().
  const T& ValueUnsafe() const& {
    assert(ok());
    return *value_;
  }
  T& ValueUnsafe() & {
    assert(ok());
    return *value_;
  }
  T ValueUnsafe() && {
    assert(ok());
    return std::move(*value_);
  }

  /// The value, aborting the process with the error message when !ok().
  /// Intended for examples, benchmarks and tests.
  T ValueOrDie() && {
    if (!ok()) {
      std::fprintf(stderr, "Result::ValueOrDie on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
    return std::move(*value_);
  }
  const T& ValueOrDie() const& {
    if (!ok()) {
      std::fprintf(stderr, "Result::ValueOrDie on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
    return *value_;
  }

  const T& operator*() const& { return ValueUnsafe(); }
  T& operator*() & { return ValueUnsafe(); }
  const T* operator->() const { return &ValueUnsafe(); }
  T* operator->() { return &ValueUnsafe(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace skalla

#endif  // SKALLA_COMMON_RESULT_H_

#include "storage/freq_sketch.h"

#include <algorithm>

namespace skalla {

void FreqSketch::Add(int64_t key, int64_t weight) {
  if (weight <= 0) return;
  total_ += weight;
  auto it = counts_.find(key);
  if (it != counts_.end()) {
    it->second.count += weight;
    return;
  }
  if (counts_.size() < capacity_) {
    counts_.emplace(key, Entry{key, weight, 0});
    return;
  }
  // Evict the minimum-count entry (smallest key on ties, for determinism
  // across hash-map iteration orders); the newcomer inherits its count as
  // the error floor — the space-saving invariant.
  auto min_it = counts_.begin();
  for (auto jt = counts_.begin(); jt != counts_.end(); ++jt) {
    if (jt->second.count < min_it->second.count ||
        (jt->second.count == min_it->second.count &&
         jt->first < min_it->first)) {
      min_it = jt;
    }
  }
  const int64_t floor = min_it->second.count;
  counts_.erase(min_it);
  counts_.emplace(key, Entry{key, floor + weight, floor});
}

namespace {

std::vector<FreqSketch::Entry> SortedEntries(
    const std::unordered_map<int64_t, FreqSketch::Entry>& counts) {
  std::vector<FreqSketch::Entry> out;
  out.reserve(counts.size());
  for (const auto& [key, entry] : counts) out.push_back(entry);
  std::sort(out.begin(), out.end(),
            [](const FreqSketch::Entry& a, const FreqSketch::Entry& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.key < b.key;
            });
  return out;
}

}  // namespace

std::vector<FreqSketch::Entry> FreqSketch::TopK(size_t k) const {
  std::vector<Entry> out = SortedEntries(counts_);
  if (out.size() > k) out.resize(k);
  return out;
}

std::vector<FreqSketch::Entry> FreqSketch::HeavyHitters(
    double min_share) const {
  std::vector<Entry> out;
  const double cutoff = min_share * static_cast<double>(total_);
  for (const Entry& e : SortedEntries(counts_)) {
    if (static_cast<double>(e.count - e.error) > cutoff) out.push_back(e);
  }
  return out;
}

int64_t FreqSketch::Estimate(int64_t key) const {
  auto it = counts_.find(key);
  return it == counts_.end() ? 0 : it->second.count;
}

}  // namespace skalla

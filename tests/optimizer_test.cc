#include "opt/optimizer.h"

#include <gtest/gtest.h>

#include "expr/parser.h"
#include "expr/rewriter.h"
#include "skalla/queries.h"
#include "test_util.h"

namespace skalla {
namespace {

ExprPtr MustParse(const std::string& text) {
  auto result = ParseExpr(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return *result;
}

std::vector<PartitionInfo> RangeSites(const std::string& attr, int n,
                                      int64_t per_site) {
  std::vector<PartitionInfo> sites(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    sites[static_cast<size_t>(i)].SetDomain(
        attr, AttrDomain::Range(Value(i * per_site),
                                Value((i + 1) * per_site - 1)));
  }
  return sites;
}

TEST(CoalesceTest, MergesWholeIndependentChain) {
  // Three ops, none referencing earlier outputs: all coalesce into one.
  GmdjExpr expr;
  expr.base.source_table = "T";
  expr.base.project_cols = {"g"};
  for (int i = 0; i < 3; ++i) {
    GmdjOp op;
    op.detail_table = "T";
    GmdjBlock block;
    block.aggs = {AggSpec::Count("c" + std::to_string(i))};
    block.theta = MustParse("B.g = R.g && R.v > " + std::to_string(i));
    op.blocks.push_back(block);
    expr.ops.push_back(op);
  }
  Optimizer optimizer;
  const GmdjExpr coalesced = optimizer.Coalesce(expr);
  ASSERT_EQ(coalesced.ops.size(), 1u);
  EXPECT_EQ(coalesced.ops[0].blocks.size(), 3u);
}

TEST(CoalesceTest, StopsAtCorrelation) {
  // op2 references op1's output; op3 is independent of op2's outputs →
  // expect [op1, op2+op3].
  GmdjExpr expr;
  expr.base.source_table = "T";
  expr.base.project_cols = {"g"};
  GmdjOp op1;
  op1.detail_table = "T";
  op1.blocks.push_back(
      GmdjBlock{{AggSpec::Avg("v", "a1")}, MustParse("B.g = R.g")});
  GmdjOp op2;
  op2.detail_table = "T";
  op2.blocks.push_back(GmdjBlock{{AggSpec::Count("c2")},
                                 MustParse("B.g = R.g && R.v > B.a1")});
  GmdjOp op3;
  op3.detail_table = "T";
  op3.blocks.push_back(
      GmdjBlock{{AggSpec::Count("c3")}, MustParse("B.g = R.g && R.v > 5")});
  expr.ops = {op1, op2, op3};

  Optimizer optimizer;
  const GmdjExpr coalesced = optimizer.Coalesce(expr);
  ASSERT_EQ(coalesced.ops.size(), 2u);
  EXPECT_EQ(coalesced.ops[0].blocks.size(), 1u);
  EXPECT_EQ(coalesced.ops[1].blocks.size(), 2u);
}

TEST(CoalesceTest, DifferentDetailTablesDoNotMerge) {
  GmdjExpr expr;
  expr.base.source_table = "T";
  expr.base.project_cols = {"g"};
  GmdjOp op1;
  op1.detail_table = "T";
  op1.blocks.push_back(
      GmdjBlock{{AggSpec::Count("c1")}, MustParse("B.g = R.g")});
  GmdjOp op2;
  op2.detail_table = "U";
  op2.blocks.push_back(
      GmdjBlock{{AggSpec::Count("c2")}, MustParse("B.g = R.g")});
  expr.ops = {op1, op2};

  Optimizer optimizer;
  EXPECT_EQ(optimizer.Coalesce(expr).ops.size(), 2u);
}

TEST(CoalesceTest, MergedLaterOutputsDoNotBlockFurtherMerges) {
  // op3 references op2's output → op2 and op3 may NOT merge even after
  // op1+op2 merged.
  GmdjExpr expr;
  expr.base.source_table = "T";
  expr.base.project_cols = {"g"};
  GmdjOp op1;
  op1.detail_table = "T";
  op1.blocks.push_back(
      GmdjBlock{{AggSpec::Count("c1")}, MustParse("B.g = R.g")});
  GmdjOp op2;
  op2.detail_table = "T";
  op2.blocks.push_back(
      GmdjBlock{{AggSpec::Avg("v", "a2")}, MustParse("B.g = R.g")});
  GmdjOp op3;
  op3.detail_table = "T";
  op3.blocks.push_back(GmdjBlock{{AggSpec::Count("c3")},
                                 MustParse("B.g = R.g && R.v > B.a2")});
  expr.ops = {op1, op2, op3};

  Optimizer optimizer;
  const GmdjExpr coalesced = optimizer.Coalesce(expr);
  ASSERT_EQ(coalesced.ops.size(), 2u);
  EXPECT_EQ(coalesced.ops[0].blocks.size(), 2u);  // op1 + op2
  EXPECT_EQ(coalesced.ops[1].blocks.size(), 1u);  // op3 alone
}

TEST(SyncAnalysisTest, DetectsPartitionAttributeAndFusibility) {
  Optimizer optimizer(RangeSites("g", 4, 100));
  const GmdjExpr expr = [] {
    GmdjExpr e;
    e.base.source_table = "T";
    e.base.project_cols = {"g"};
    GmdjOp op1;
    op1.detail_table = "T";
    op1.blocks.push_back(
        GmdjBlock{{AggSpec::Avg("v", "a1")}, MustParse("B.g = R.g")});
    GmdjOp op2;
    op2.detail_table = "T";
    op2.blocks.push_back(GmdjBlock{{AggSpec::Count("c2")},
                                   MustParse("B.g = R.g && R.v > B.a1")});
    e.ops = {op1, op2};
    return e;
  }();

  const SyncAnalysis analysis = optimizer.AnalyzeSync(expr);
  EXPECT_EQ(analysis.partition_attrs, std::vector<std::string>{"g"});
  EXPECT_TRUE(analysis.base_fusable);
  ASSERT_EQ(analysis.pair_fusable.size(), 1u);
  EXPECT_TRUE(analysis.pair_fusable[0]);
}

TEST(SyncAnalysisTest, NonKeyEqualityBlocksBaseFusion) {
  Optimizer optimizer(RangeSites("g", 4, 100));
  GmdjExpr expr;
  expr.base.source_table = "T";
  expr.base.project_cols = {"g", "h"};
  GmdjOp op;
  op.detail_table = "T";
  // Only g pinned; key is (g, h) → θ does not entail θ_K.
  op.blocks.push_back(
      GmdjBlock{{AggSpec::Count("c1")}, MustParse("B.g = R.g")});
  expr.ops = {op};
  EXPECT_FALSE(optimizer.AnalyzeSync(expr).base_fusable);
}

TEST(SyncAnalysisTest, DifferentBaseSourceBlocksBaseFusion) {
  Optimizer optimizer(RangeSites("g", 4, 100));
  GmdjExpr expr;
  expr.base.source_table = "Other";
  expr.base.project_cols = {"g"};
  GmdjOp op;
  op.detail_table = "T";
  op.blocks.push_back(
      GmdjBlock{{AggSpec::Count("c1")}, MustParse("B.g = R.g")});
  expr.ops = {op};
  EXPECT_FALSE(optimizer.AnalyzeSync(expr).base_fusable);
}

TEST(SyncAnalysisTest, NonPartitionAttributeBlocksPairFusion) {
  // Sites have knowledge about "g" but the query groups on "h".
  Optimizer optimizer(RangeSites("g", 4, 100));
  GmdjExpr expr;
  expr.base.source_table = "T";
  expr.base.project_cols = {"h"};
  GmdjOp op1;
  op1.detail_table = "T";
  op1.blocks.push_back(
      GmdjBlock{{AggSpec::Avg("v", "a1")}, MustParse("B.h = R.h")});
  GmdjOp op2;
  op2.detail_table = "T";
  op2.blocks.push_back(GmdjBlock{{AggSpec::Count("c2")},
                                 MustParse("B.h = R.h && R.v > B.a1")});
  expr.ops = {op1, op2};
  const SyncAnalysis analysis = optimizer.AnalyzeSync(expr);
  EXPECT_TRUE(analysis.partition_attrs.empty());
  ASSERT_EQ(analysis.pair_fusable.size(), 1u);
  EXPECT_FALSE(analysis.pair_fusable[0]);
}

TEST(OptShipPredicateTest, OutOfRangeSiteGivesNull) {
  Optimizer optimizer(RangeSites("g", 2, 10));
  EXPECT_EQ(optimizer.ShipPredicateForSite({MustParse("B.g = R.g")}, 5),
            nullptr);
  EXPECT_EQ(optimizer.ShipPredicateForSite({MustParse("B.g = R.g")}, -1),
            nullptr);
}

TEST(OptShipPredicateTest, NoKnowledgeGivesNull) {
  Optimizer optimizer(std::vector<PartitionInfo>(2));
  EXPECT_EQ(optimizer.ShipPredicateForSite({MustParse("B.g = R.g")}, 0),
            nullptr);
}

TEST(OptShipPredicateTest, RangeKnowledgeGivesBounds) {
  Optimizer optimizer(RangeSites("g", 2, 10));
  const ExprPtr pred =
      optimizer.ShipPredicateForSite({MustParse("B.g = R.g")}, 1);
  ASSERT_NE(pred, nullptr);
  EXPECT_EQ(pred->ToString(), "((B.g >= 10) && (B.g <= 19))");
}

TEST(BuildPlanTest, OptionFactories) {
  const OptimizerOptions none = OptimizerOptions::None();
  EXPECT_FALSE(none.coalesce || none.independent_group_reduction ||
               none.aware_group_reduction || none.sync_reduction);
  const OptimizerOptions all = OptimizerOptions::All();
  EXPECT_TRUE(all.coalesce && all.independent_group_reduction &&
              all.aware_group_reduction && all.sync_reduction);
}

TEST(BuildPlanTest, EmptyExpressionRejected) {
  Optimizer optimizer;
  GmdjExpr expr;
  expr.base.source_table = "T";
  expr.base.project_cols = {"g"};
  EXPECT_FALSE(optimizer.BuildPlan(expr, OptimizerOptions::All()).ok());
}

TEST(BuildPlanTest, CombinedQueryFullyFusesUnderAllOptimizations) {
  // With range partitioning knowledge on the grouping attribute, the
  // combined query collapses to a single fused round with no base sync
  // (Example 5 of the paper: "the entire query evaluated locally, with a
  // single synchronization at the coordinator").
  Optimizer optimizer(RangeSites("CustKey", 4, 100));
  const GmdjExpr expr = queries::CombinedQuery("CustKey");
  ASSERT_OK_AND_ASSIGN(DistributedPlan plan,
                       optimizer.BuildPlan(expr, OptimizerOptions::All()));
  ASSERT_EQ(plan.rounds.size(), 1u);
  EXPECT_EQ(plan.rounds[0].ops.size(), 2u);  // md1+md2 coalesced, md3 fused
  EXPECT_TRUE(plan.fuse_base);
  EXPECT_TRUE(plan.rounds[0].flags.independent_group_reduction);
}

TEST(BuildPlanTest, ExplainMentionsOptimizations) {
  Optimizer optimizer(RangeSites("CustKey", 2, 100));
  // Sync reduction off: with it on, the whole query fuses into one local
  // round and there is nothing left to ship-reduce.
  OptimizerOptions options;
  options.independent_group_reduction = true;
  options.aware_group_reduction = true;
  ASSERT_OK_AND_ASSIGN(
      DistributedPlan plan,
      optimizer.BuildPlan(queries::GroupReductionQuery("CustKey"), options));
  const std::string explain = plan.Explain();
  EXPECT_NE(explain.find("indep-group-reduction"), std::string::npos);
  EXPECT_NE(explain.find("ship to site"), std::string::npos);
}

TEST(BuildPlanTest, NoFuseBaseWhenFirstRoundNotKeyEquality) {
  Optimizer optimizer(RangeSites("g", 4, 100));
  GmdjExpr expr;
  expr.base.source_table = "T";
  expr.base.project_cols = {"g"};
  GmdjOp op;
  op.detail_table = "T";
  // θ is a pure inequality — never entails key equality.
  op.blocks.push_back(
      GmdjBlock{{AggSpec::Count("c1")}, MustParse("R.v <= B.g")});
  expr.ops = {op};
  ASSERT_OK_AND_ASSIGN(DistributedPlan plan,
                       optimizer.BuildPlan(expr, OptimizerOptions::All()));
  EXPECT_FALSE(plan.fuse_base);
  EXPECT_EQ(plan.rounds.size(), 1u);
}

TEST(BuildPlanTest, ToExprRoundTripsOperators) {
  Optimizer optimizer;
  const GmdjExpr expr = queries::CombinedQuery("CustKey");
  ASSERT_OK_AND_ASSIGN(DistributedPlan plan,
                       optimizer.BuildPlan(expr, OptimizerOptions::None()));
  const GmdjExpr round_trip = plan.ToExpr();
  ASSERT_EQ(round_trip.ops.size(), expr.ops.size());
  for (size_t i = 0; i < expr.ops.size(); ++i) {
    EXPECT_EQ(round_trip.ops[i].detail_table, expr.ops[i].detail_table);
    EXPECT_EQ(round_trip.ops[i].blocks.size(), expr.ops[i].blocks.size());
  }
}

}  // namespace
}  // namespace skalla

# Empty dependencies file for example_optimizer_explain.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_ablation_straggler.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libskalla.a"
)

#ifndef SKALLA_STORAGE_HASH_INDEX_H_
#define SKALLA_STORAGE_HASH_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "storage/table.h"

namespace skalla {

/// \brief A hash index from a composite column key to row positions.
///
/// Used in two hot paths: (1) the local GMDJ evaluator probes the
/// base-values relation with each detail tuple's equi-join key, and (2) the
/// coordinator's synchronizer locates the base-result row for each incoming
/// sub-aggregate row (Theorem 1 makes this an O(|H|) merge).
///
/// The index stores row ids bucketed by hash; lookups verify equality to
/// handle collisions. Duplicate keys are supported (all matching row ids
/// are returned).
class HashIndex {
 public:
  HashIndex() = default;

  /// Builds the index over `table` keyed on `key_cols`. The table must
  /// outlive the index and must not be mutated in ways that move rows.
  void Build(const Table& table, std::vector<int> key_cols);

  /// Returns row ids whose key equals the projection of `probe` onto
  /// `probe_cols` (which must have the same arity as the build key).
  /// The returned pointer is invalidated by the next Build/Insert; null
  /// when there is no match.
  const std::vector<int64_t>* Lookup(const Row& probe,
                                     const std::vector<int>& probe_cols) const;

  /// Adds one more row of the indexed table (by id) to the index.
  void Insert(const Table& table, int64_t row_id);

  int64_t num_entries() const { return num_entries_; }

 private:
  struct Bucket {
    // Representative row for equality verification plus all row ids.
    std::vector<int64_t> row_ids;
  };

  const Table* table_ = nullptr;
  std::vector<int> key_cols_;
  std::unordered_map<uint64_t, std::vector<Bucket>> buckets_;
  int64_t num_entries_ = 0;
};

}  // namespace skalla

#endif  // SKALLA_STORAGE_HASH_INDEX_H_

#ifndef SKALLA_DIST_SITE_H_
#define SKALLA_DIST_SITE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "dist/plan.h"
#include "storage/catalog.h"
#include "storage/partition_info.h"

namespace skalla {

/// Input of one round of local processing at a site.
struct SiteRoundInput {
  /// The base-result structure fragment shipped by the coordinator
  /// (finalized visible form). Null when `base` is set (fused base round).
  const Table* x = nullptr;
  /// When non-null, the site derives its local base-values relation B_i
  /// from its own partition instead of receiving X (Proposition 2).
  const BaseQuery* base = nullptr;
  /// The GMDJ operators chained locally this round (one, or several under
  /// synchronization reduction).
  const std::vector<GmdjOp>* ops = nullptr;
  /// Key attributes K of the base-result structure.
  const std::vector<std::string>* key_attrs = nullptr;
  /// Distribution-independent group reduction: emit only touched groups.
  bool touched_only = false;
  /// Lanes for the site's morsel-driven local evaluation
  /// (LocalGmdjOptions::num_threads; 0 = the SKALLA_THREADS default, 1 =
  /// sequential). All sites of a wave share one pool, so this bounds the
  /// per-site fan-out, not the process-wide thread count.
  int num_threads = 0;
  /// Detail-scan fragment [detail_lo, detail_hi) this executor evaluates
  /// (skew rebalancing, docs/skew.md): positions of the single operator's
  /// detail scan ordering; detail_hi = -1 means "to the end". Only legal
  /// for single-operator, non-fused rounds — chained rounds finalize
  /// intermediate structures locally and cannot be range-split.
  int64_t detail_lo = 0;
  int64_t detail_hi = -1;
};

/// \brief A local data warehouse adjacent to one collection point.
///
/// Holds the site's horizontal partition of each fact relation (in its
/// Catalog, registered under the global relation names) plus the partition
/// metadata φ_i describing what the partition can contain. All local
/// computation — base queries and GMDJ sub-aggregate evaluation — happens
/// here; the Site never sees other sites' data.
class Site {
 public:
  Site(int id, PartitionInfo info = PartitionInfo())
      : id_(id), info_(std::move(info)) {}

  int id() const { return id_; }
  const PartitionInfo& partition_info() const { return info_; }
  PartitionInfo& mutable_partition_info() { return info_; }

  /// Relative compute speed of this site's hardware: reported CPU times
  /// are divided by this factor (0.5 = half-speed straggler, 2.0 = a
  /// machine twice as fast). Models the heterogeneous local warehouses of
  /// a real deployment; response time takes the max across sites, so one
  /// straggler gates every synchronized round.
  double compute_scale() const { return compute_scale_; }
  void set_compute_scale(double scale) { compute_scale_ = scale; }

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  /// Evaluates the base-values query over the local partition (round 0 of
  /// Alg. GMDJDistribEval); fills `cpu_sec` with the local compute time.
  Result<Table> EvalBase(const BaseQuery& base, double* cpu_sec) const;

  /// Evaluates one round: chains the round's operators over the local
  /// partitions and returns H_i = key attributes + sub-aggregate columns
  /// for every operator in the round (Theorem 1 / Theorem 5).
  Result<Table> EvalRound(const SiteRoundInput& input, double* cpu_sec) const;

 private:
  int id_;
  PartitionInfo info_;
  Catalog catalog_;
  double compute_scale_ = 1.0;
};

}  // namespace skalla

#endif  // SKALLA_DIST_SITE_H_

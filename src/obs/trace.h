#ifndef SKALLA_OBS_TRACE_H_
#define SKALLA_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace skalla {
namespace obs {

/// \brief Runtime configuration of the query-lifecycle tracer.
///
/// Tracing is off by default and costs one relaxed atomic load per
/// instrumentation site when disabled (see ScopedSpan). It is turned on
/// either programmatically (ConfigureTracing) or via the SKALLA_TRACE
/// environment variable, parsed once at process start
/// (TraceConfigFromEnv). See docs/observability.md.
struct TraceConfig {
  bool enabled = false;
  bool spans = true;    ///< record Span intervals
  bool journal = true;  ///< record typed journal events (obs/journal.h)
  /// Record every Nth morsel-lane span of a parallel local GMDJ
  /// evaluation (gmdj/local_eval.cc); 0 disables lane spans. Sampling
  /// keeps big scans from flooding the span buffer while still showing
  /// lane activity on the timeline.
  int morsel_sample = 16;
  /// Retained-span cap; spans beyond it are counted (DroppedSpanCount)
  /// but not stored, bounding tracer memory on long sessions.
  size_t max_spans = size_t{1} << 20;
  /// Export destinations honored by WriteConfiguredTraceOutputs()
  /// (obs/export.h); empty = skip. text_path "-" means stderr.
  std::string chrome_path;
  std::string text_path;
  std::string journal_path;
};

namespace internal {
// Split out of TraceConfig so the hot-path gates are single relaxed
// atomic loads (near-zero when tracing is disabled).
extern std::atomic<bool> g_trace_enabled;
extern std::atomic<bool> g_spans_enabled;
extern std::atomic<bool> g_journal_enabled;
extern std::atomic<int> g_morsel_sample;
}  // namespace internal

/// Master gate: true when tracing is configured on.
inline bool TraceEnabled() {
  return internal::g_trace_enabled.load(std::memory_order_relaxed);
}

/// True when span recording is on (master gate && TraceConfig::spans).
inline bool SpanTracingEnabled() {
  return internal::g_spans_enabled.load(std::memory_order_relaxed);
}

/// True when journal recording is on (master gate && TraceConfig::journal).
/// Callers must guard record construction behind this so that building the
/// record (which may allocate) is skipped entirely when tracing is off.
inline bool JournalEnabled() {
  return internal::g_journal_enabled.load(std::memory_order_relaxed);
}

/// Morsel-span sampling stride (TraceConfig::morsel_sample).
inline int MorselSampleEvery() {
  return internal::g_morsel_sample.load(std::memory_order_relaxed);
}

/// Installs `config` process-wide. Existing spans/journal records are kept;
/// call ResetTracing() for a clean slate. Thread-safe, but intended to be
/// called while no query is executing.
void ConfigureTracing(const TraceConfig& config);

/// The currently installed configuration.
TraceConfig CurrentTraceConfig();

/// Clears recorded spans and journal records (configuration is kept).
void ResetTracing();

/// Parses a SKALLA_TRACE value into a TraceConfig. Grammar: a comma list of
/// "on"/"1", "chrome[:path]", "text[:path]", "journal[:path]",
/// "sample:<n>"; "" / "0" / "off" leave tracing disabled.
TraceConfig TraceConfigFromEnv(const char* value);

// ---- Track model -----------------------------------------------------------
// Every span and journal instant lives on one logical track of the
// exported timeline: the coordinator, one track per site, one per
// thread-pool lane, and one per aggregation-tree internal node.

inline constexpr int kTrackCoordinator = 0;
/// Sentinel for ScopedSpan/TrackScope: use the thread's current track.
inline constexpr int kTrackInherit = -1;

/// Maps a network endpoint id (net/sim_network.h: site >= 0, coordinator
/// -1, aggregator <= -2) to its track.
int TrackForSite(int endpoint);
/// The track of thread-pool lane `lane` (common/thread_pool.h worker index).
int TrackForLane(int lane);
/// Human name of a track ("coordinator", "site 3", "pool lane 1", ...).
std::string TrackName(int track);

/// One completed span. `name` points at static storage (string literals at
/// the instrumentation sites); dynamic context goes into `detail`.
struct TraceSpan {
  uint64_t id = 0;
  uint64_t parent = 0;  ///< 0 = root
  const char* name = "";
  std::string detail;
  int track = kTrackCoordinator;
  uint32_t thread = 0;   ///< small per-process thread index
  int64_t start_ns = 0;  ///< monotonic, relative to the trace epoch
  int64_t end_ns = 0;
};

/// Small dense index of the calling thread (assigned on first use).
uint32_t CurrentThreadIndex();
/// Monotonic nanoseconds since the trace epoch (process start).
int64_t TraceNowNs();
/// The innermost open span id on this thread (0 = none).
uint64_t CurrentSpanId();
/// The calling thread's current track (kTrackCoordinator by default).
int CurrentTrack();

/// Copies all recorded spans (completed spans only, in completion order).
std::vector<TraceSpan> SpanSnapshot();
/// Spans discarded because the max_spans cap was reached.
size_t DroppedSpanCount();

/// \brief RAII span: records [construction, destruction) when tracing is
/// enabled; a single relaxed load and no allocation when disabled.
///
/// `name` must have static storage duration (pass a string literal); pass
/// nullptr to disarm unconditionally (used for sampled spans). Dynamic
/// context is attached with set_detail(), which callers must guard behind
/// armed() so the argument string is never built when tracing is off.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, int track = kTrackInherit);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool armed() const { return armed_; }
  uint64_t id() const { return id_; }
  void set_detail(std::string detail) {
    if (armed_) detail_ = std::move(detail);
  }

 private:
  bool armed_ = false;
  const char* name_ = nullptr;
  std::string detail_;
  uint64_t id_ = 0;
  uint64_t parent_ = 0;
  int track_ = kTrackCoordinator;
  int64_t start_ns_ = 0;
};

/// \brief RAII: spans opened in this scope land on `track`.
///
/// Used to attribute work running on pool threads to the logical actor it
/// belongs to (a site's local evaluation runs on worker threads but shows
/// on that site's track). kTrackInherit makes it a no-op.
class TrackScope {
 public:
  explicit TrackScope(int track);
  ~TrackScope();

  TrackScope(const TrackScope&) = delete;
  TrackScope& operator=(const TrackScope&) = delete;

 private:
  bool armed_ = false;
  int saved_ = kTrackCoordinator;
};

/// \brief RAII: spans opened in this scope get `parent` as their parent.
///
/// Carries parent links across thread hops: ThreadPool::ParallelFor
/// captures the caller's CurrentSpanId() and helper lanes re-establish it,
/// so morsel spans nest under the scan span that spawned them. Parent 0
/// (or tracing disabled) makes it a no-op.
class ParentScope {
 public:
  explicit ParentScope(uint64_t parent);
  ~ParentScope();

  ParentScope(const ParentScope&) = delete;
  ParentScope& operator=(const ParentScope&) = delete;

 private:
  bool armed_ = false;
};

}  // namespace obs
}  // namespace skalla

#endif  // SKALLA_OBS_TRACE_H_

#include "storage/serializer.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "storage/csv.h"
#include "test_util.h"

namespace skalla {
namespace {

TEST(SerializerTest, RoundTripTinyTable) {
  const Table original = MakeTinyTable();
  const std::string bytes = Serializer::SerializeTable(original);
  ASSERT_OK_AND_ASSIGN(Table decoded, Serializer::DeserializeTable(bytes));
  EXPECT_TRUE(decoded.schema().Equals(original.schema()));
  ExpectSameRows(decoded, original);
}

TEST(SerializerTest, RoundTripEmptyTable) {
  Table original(MakeSchema({{"a", ValueType::kInt64}}));
  const std::string bytes = Serializer::SerializeTable(original);
  ASSERT_OK_AND_ASSIGN(Table decoded, Serializer::DeserializeTable(bytes));
  EXPECT_EQ(decoded.num_rows(), 0);
  EXPECT_TRUE(decoded.schema().Equals(original.schema()));
}

TEST(SerializerTest, RoundTripNulls) {
  Table original(MakeSchema(
      {{"a", ValueType::kInt64}, {"b", ValueType::kString}}));
  original.AddRow({Value::Null(), Value::Null()});
  original.AddRow({Value(1), Value("x")});
  const std::string bytes = Serializer::SerializeTable(original);
  ASSERT_OK_AND_ASSIGN(Table decoded, Serializer::DeserializeTable(bytes));
  EXPECT_TRUE(decoded.Get(0, 0).is_null());
  EXPECT_TRUE(decoded.Get(0, 1).is_null());
  EXPECT_EQ(decoded.Get(1, 1), Value("x"));
}

TEST(SerializerTest, WireSizeMatchesActualBytes) {
  const Table t = MakeTinyTable();
  EXPECT_EQ(Serializer::WireSize(t), Serializer::SerializeTable(t).size());
}

TEST(SerializerTest, WireSizeMatchesForEmptyTable) {
  Table t(MakeSchema({{"long_column_name", ValueType::kString}}));
  EXPECT_EQ(Serializer::WireSize(t), Serializer::SerializeTable(t).size());
}

TEST(SerializerTest, RejectsBadMagic) {
  std::string bytes = Serializer::SerializeTable(MakeTinyTable());
  bytes[0] = 'X';
  auto result = Serializer::DeserializeTable(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(SerializerTest, RejectsTruncation) {
  const std::string bytes = Serializer::SerializeTable(MakeTinyTable());
  for (size_t cut : {bytes.size() - 1, bytes.size() / 2, size_t{5}}) {
    auto result =
        Serializer::DeserializeTable(std::string_view(bytes).substr(0, cut));
    EXPECT_FALSE(result.ok()) << "cut at " << cut;
  }
}

TEST(SerializerTest, RejectsTrailingGarbage) {
  std::string bytes = Serializer::SerializeTable(MakeTinyTable());
  bytes += "junk";
  auto result = Serializer::DeserializeTable(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("trailing"), std::string::npos);
}

TEST(SerializerTest, RandomizedRoundTripProperty) {
  Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    const int ncols = static_cast<int>(rng.Uniform(1, 6));
    std::vector<Field> fields;
    for (int c = 0; c < ncols; ++c) {
      const int type = static_cast<int>(rng.Uniform(1, 3));
      fields.push_back(Field{"c" + std::to_string(c),
                             static_cast<ValueType>(type)});
    }
    Table t(MakeSchema(fields));
    const int64_t nrows = rng.Uniform(0, 40);
    for (int64_t r = 0; r < nrows; ++r) {
      Row row;
      for (int c = 0; c < ncols; ++c) {
        if (rng.Chance(0.1)) {
          row.push_back(Value::Null());
          continue;
        }
        switch (fields[static_cast<size_t>(c)].type) {
          case ValueType::kInt64:
            row.push_back(Value(rng.Uniform(-1000000, 1000000)));
            break;
          case ValueType::kDouble:
            row.push_back(Value(rng.UniformDouble(-10, 10)));
            break;
          default:
            row.push_back(Value(rng.AlphaString(
                static_cast<int>(rng.Uniform(0, 12)))));
        }
      }
      t.AddRow(std::move(row));
    }
    const std::string bytes = Serializer::SerializeTable(t);
    EXPECT_EQ(bytes.size(), Serializer::WireSize(t));
    ASSERT_OK_AND_ASSIGN(Table decoded, Serializer::DeserializeTable(bytes));
    ExpectSameRows(decoded, t);
  }
}

TEST(CsvTest, RoundTripThroughString) {
  const Table original = MakeTinyTable();
  const std::string csv = CsvToString(original);
  ASSERT_OK_AND_ASSIGN(Table decoded,
                       CsvFromString(csv, original.schema_ptr()));
  ExpectSameRows(decoded, original);
}

TEST(CsvTest, QuotingSpecialCharacters) {
  Table t(MakeSchema({{"s", ValueType::kString}}));
  t.AddRow({Value("plain")});
  t.AddRow({Value("with,comma")});
  t.AddRow({Value("with\"quote")});
  const std::string csv = CsvToString(t);
  ASSERT_OK_AND_ASSIGN(Table decoded, CsvFromString(csv, t.schema_ptr()));
  ExpectSameRows(decoded, t);
}

TEST(CsvTest, EmptyFieldIsNull) {
  auto schema = MakeSchema({{"a", ValueType::kInt64}, {"b", ValueType::kString}});
  ASSERT_OK_AND_ASSIGN(Table t, CsvFromString("a,b\n,x\n1,\n", schema));
  EXPECT_TRUE(t.Get(0, 0).is_null());
  EXPECT_EQ(t.Get(0, 1), Value("x"));
  EXPECT_EQ(t.Get(1, 0), Value(1));
  EXPECT_TRUE(t.Get(1, 1).is_null());
}

TEST(CsvTest, HeaderMismatchRejected) {
  auto schema = MakeSchema({{"a", ValueType::kInt64}});
  auto result = CsvFromString("wrong\n1\n", schema);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, BadIntegerRejectedWithLineInfo) {
  auto schema = MakeSchema({{"a", ValueType::kInt64}});
  auto result = CsvFromString("a\n1\nnot_a_number\n", schema);
  ASSERT_FALSE(result.ok());
}

TEST(CsvTest, FileRoundTrip) {
  const Table original = MakeTinyTable();
  const std::string path = ::testing::TempDir() + "/skalla_csv_test.csv";
  ASSERT_OK(WriteCsv(original, path));
  ASSERT_OK_AND_ASSIGN(Table decoded, ReadCsv(path, original.schema_ptr()));
  ExpectSameRows(decoded, original);
}

}  // namespace
}  // namespace skalla

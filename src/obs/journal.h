#ifndef SKALLA_OBS_JOURNAL_H_
#define SKALLA_OBS_JOURNAL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace skalla {
namespace obs {

/// Typed round-lifecycle events recorded by the structured event journal
/// (see docs/observability.md for the full record semantics).
enum class JournalEvent {
  /// One message on the simulated network (every transfer, including
  /// retransmissions, control messages, and aggregator-internal hops).
  /// Summing `bytes` over kMessage records reproduces
  /// ExecutionMetrics::TotalBytes() exactly.
  kMessage,
  /// The base-result structure X serialized for one site slot: `label` is
  /// the wire format actually shipped (SKL1/SKL2/SKLD), `bytes` the
  /// attempt-0 payload size, `rows` the shipped groups.
  kBaseShipped,
  /// One per-site exchange attempt began (site, attempt).
  kAttemptStart,
  /// The attempt ended: `label` is "ok", "lost-down", or "lost-up";
  /// `seconds` is the site CPU the attempt consumed (0 when the down
  /// message was lost before evaluation).
  kAttemptFinish,
  /// The attempt overran its deadline (`seconds` = site CPU spent anyway).
  kAttemptTimeout,
  /// The slot is being re-driven (one record per retried attempt).
  kRetry,
  /// The slot failed over to its replica.
  kFailover,
  /// Coordinator-side synchronization merged one sub-result (`rows`
  /// groups, `seconds` of merge CPU). Tree-internal combines use an
  /// aggregator endpoint id in `site` and label "tree".
  kSyncMerge,
  /// Aware group reduction filtered a site's view of X:
  /// `rows_before` -> `rows` groups kept.
  kReduction,
};

/// Canonical lowercase event name (stable; used in the JSONL export).
const char* JournalEventName(JournalEvent event);

/// One journal record. Only the fields meaningful for the event type are
/// set; the rest keep their zero defaults (and are omitted from exports
/// where possible).
struct JournalRecord {
  JournalEvent event = JournalEvent::kMessage;
  int round = -1;            ///< SimNetwork round index
  int from = 0;              ///< kMessage: sender endpoint
  int to = 0;                ///< kMessage: receiver endpoint
  int site = -1;             ///< site-scoped events: site slot / endpoint
  int attempt = 0;
  size_t bytes = 0;
  int64_t rows = 0;
  int64_t rows_before = 0;   ///< kReduction: groups before the filter
  double seconds = 0;
  bool delivered = true;     ///< kMessage: false when lost in flight
  std::string label;
  int64_t ts_ns = 0;         ///< stamped by JournalAppend (trace epoch)
};

/// Appends a record (thread-safe). Callers must guard with
/// obs::JournalEnabled() so record construction is skipped when tracing is
/// off; Append itself also drops records when the journal is disabled.
void JournalAppend(JournalRecord record);

/// Copies all recorded records in append order.
std::vector<JournalRecord> JournalSnapshot();

/// Number of records currently held.
size_t JournalSize();

/// Discards all records (used between queries / by ResetTracing()).
void ClearJournal();

}  // namespace obs
}  // namespace skalla

#endif  // SKALLA_OBS_JOURNAL_H_

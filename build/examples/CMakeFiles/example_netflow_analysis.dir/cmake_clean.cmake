file(REMOVE_RECURSE
  "CMakeFiles/example_netflow_analysis.dir/netflow_analysis.cc.o"
  "CMakeFiles/example_netflow_analysis.dir/netflow_analysis.cc.o.d"
  "example_netflow_analysis"
  "example_netflow_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_netflow_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

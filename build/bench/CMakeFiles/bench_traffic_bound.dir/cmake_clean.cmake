file(REMOVE_RECURSE
  "CMakeFiles/bench_traffic_bound.dir/bench_traffic_bound.cc.o"
  "CMakeFiles/bench_traffic_bound.dir/bench_traffic_bound.cc.o.d"
  "bench_traffic_bound"
  "bench_traffic_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_traffic_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include <gtest/gtest.h>

#include "engine/operators.h"
#include "expr/parser.h"
#include "skalla/warehouse.h"
#include "test_util.h"
#include "tpc/star.h"

namespace skalla {
namespace {

Table LeftTable() {
  Table t(MakeSchema({{"k", ValueType::kInt64}, {"a", ValueType::kString}}));
  t.AddRow({Value(1), Value("x")});
  t.AddRow({Value(2), Value("y")});
  t.AddRow({Value(2), Value("z")});
  t.AddRow({Value::Null(), Value("n")});
  t.AddRow({Value(9), Value("m")});  // no match
  return t;
}

Table RightTable() {
  Table t(MakeSchema({{"k", ValueType::kInt64}, {"b", ValueType::kInt64}}));
  t.AddRow({Value(1), Value(10)});
  t.AddRow({Value(2), Value(20)});
  t.AddRow({Value(2), Value(21)});
  t.AddRow({Value::Null(), Value(30)});
  return t;
}

TEST(HashJoinTest, InnerJoinWithDuplicates) {
  ASSERT_OK_AND_ASSIGN(Table joined,
                       HashJoin(LeftTable(), RightTable(), {"k"}, {"k"}));
  // 1×1 + 2 left dups × 2 right dups = 1 + 4 = 5 rows; NULLs and the
  // unmatched key contribute nothing.
  EXPECT_EQ(joined.num_rows(), 5);
  EXPECT_EQ(joined.schema().ToString(),
            "k:int64, a:string, r_k:int64, b:int64");
  for (const Row& row : joined.rows()) {
    EXPECT_EQ(row[0], row[2]);  // join keys agree
  }
}

TEST(HashJoinTest, NullKeysNeverMatch) {
  ASSERT_OK_AND_ASSIGN(Table joined,
                       HashJoin(LeftTable(), RightTable(), {"k"}, {"k"}));
  for (const Row& row : joined.rows()) {
    EXPECT_FALSE(row[0].is_null());
  }
}

TEST(HashJoinTest, DifferentKeyNamesNoCollision) {
  Table left(MakeSchema({{"x", ValueType::kInt64}}));
  left.AddRow({Value(1)});
  Table right(MakeSchema({{"y", ValueType::kInt64}, {"v", ValueType::kInt64}}));
  right.AddRow({Value(1), Value(7)});
  ASSERT_OK_AND_ASSIGN(Table joined, HashJoin(left, right, {"x"}, {"y"}));
  EXPECT_EQ(joined.schema().ToString(), "x:int64, y:int64, v:int64");
  EXPECT_EQ(joined.num_rows(), 1);
}

TEST(HashJoinTest, CollisionWithoutPrefixRejected) {
  EXPECT_FALSE(
      HashJoin(LeftTable(), RightTable(), {"k"}, {"k"}, "").ok());
}

TEST(HashJoinTest, CompositeKeys) {
  Table left(MakeSchema({{"a", ValueType::kInt64}, {"b", ValueType::kInt64}}));
  left.AddRow({Value(1), Value(1)});
  left.AddRow({Value(1), Value(2)});
  Table right(
      MakeSchema({{"a", ValueType::kInt64}, {"b", ValueType::kInt64},
                  {"v", ValueType::kString}}));
  right.AddRow({Value(1), Value(1), Value("match")});
  right.AddRow({Value(1), Value(3), Value("no")});
  ASSERT_OK_AND_ASSIGN(Table joined,
                       HashJoin(left, right, {"a", "b"}, {"a", "b"}));
  ASSERT_EQ(joined.num_rows(), 1);
  EXPECT_EQ(joined.Get(0, 4), Value("match"));
}

TEST(HashJoinTest, EmptyInputs) {
  Table empty_left(LeftTable().schema_ptr());
  ASSERT_OK_AND_ASSIGN(Table a,
                       HashJoin(empty_left, RightTable(), {"k"}, {"k"}));
  EXPECT_EQ(a.num_rows(), 0);
  Table empty_right(RightTable().schema_ptr());
  ASSERT_OK_AND_ASSIGN(Table b,
                       HashJoin(LeftTable(), empty_right, {"k"}, {"k"}));
  EXPECT_EQ(b.num_rows(), 0);
}

TEST(HashJoinTest, BadArguments) {
  EXPECT_FALSE(HashJoin(LeftTable(), RightTable(), {}, {}).ok());
  EXPECT_FALSE(HashJoin(LeftTable(), RightTable(), {"k"}, {"k", "b"}).ok());
  EXPECT_FALSE(HashJoin(LeftTable(), RightTable(), {"nope"}, {"k"}).ok());
}

// ---------------------------------------------------------------------------
// Star schema → denormalized fact pipeline.
// ---------------------------------------------------------------------------

class StarSchemaTest : public ::testing::Test {
 protected:
  StarSchemaTest() {
    config_.num_rows = 2000;
    config_.num_customers = 150;
    config_.num_clerks = 25;
    star_ = GenerateTpcrStar(config_);
  }
  TpcConfig config_;
  StarSchema star_;
};

TEST_F(StarSchemaTest, CardinalityInvariants) {
  EXPECT_EQ(star_.nation.num_rows(), config_.num_nations);
  EXPECT_EQ(star_.customer.num_rows(), config_.num_customers);
  EXPECT_EQ(star_.lineitem.num_rows(), config_.num_rows);
  EXPECT_GT(star_.orders.num_rows(), 0);
  EXPECT_LE(star_.orders.num_rows(), star_.lineitem.num_rows());
}

TEST_F(StarSchemaTest, DenormalizePreservesLineItemCount) {
  // Every line item has exactly one order, customer, and nation, so the
  // inner joins neither drop nor duplicate rows.
  ASSERT_OK_AND_ASSIGN(Table flat, DenormalizeStar(star_));
  EXPECT_EQ(flat.num_rows(), star_.lineitem.num_rows());
  for (const char* col :
       {"OrderKey", "LineNumber", "Quantity", "ExtendedPrice", "CustKey",
        "CustName", "NationKey", "MktSegment", "RegionKey", "NationName",
        "OrderPriority", "ClerkKey"}) {
    EXPECT_TRUE(flat.schema().Contains(col)) << col;
  }
}

TEST_F(StarSchemaTest, BlockMappingSurvivesDenormalization) {
  ASSERT_OK_AND_ASSIGN(Table flat, DenormalizeStar(star_));
  const int cust = *flat.schema().IndexOf("CustKey");
  const int nation = *flat.schema().IndexOf("NationKey");
  for (int64_t r = 0; r < flat.num_rows(); ++r) {
    EXPECT_EQ(flat.Get(r, nation).AsInt64(),
              NationOfCustomer(flat.Get(r, cust).AsInt64(), config_));
  }
}

TEST_F(StarSchemaTest, DistributedQueryOverDenormalizedStar) {
  ASSERT_OK_AND_ASSIGN(Table flat, DenormalizeStar(star_));
  Warehouse wh(4);
  ASSERT_OK(wh.LoadByRange("TPCR", flat, "NationKey", 0,
                           config_.num_nations - 1, {"CustKey"}));

  GmdjExpr query;
  query.base.source_table = "TPCR";
  query.base.project_cols = {"NationName"};
  GmdjOp op;
  op.detail_table = "TPCR";
  GmdjBlock block;
  block.aggs = {AggSpec::Count("items"), AggSpec::Avg("Quantity", "aq")};
  auto theta = ParseExpr("B.NationName = R.NationName");
  ASSERT_TRUE(theta.ok());
  block.theta = *theta;
  op.blocks.push_back(block);
  query.ops.push_back(op);

  ASSERT_OK_AND_ASSIGN(Table expected, wh.ExecuteCentralized(query));
  ASSERT_OK_AND_ASSIGN(QueryResult result,
                       wh.Execute(query, OptimizerOptions::All()));
  ExpectSameRows(result.table, expected);
  // Item counts across nations must cover every line item.
  int64_t total = 0;
  const int items_idx = *result.table.schema().IndexOf("items");
  for (const Row& row : result.table.rows()) {
    total += row[static_cast<size_t>(items_idx)].AsInt64();
  }
  EXPECT_EQ(total, star_.lineitem.num_rows());
}

}  // namespace
}  // namespace skalla

# Empty compiler generated dependencies file for skalla_common.
# This may be replaced when dependencies are built.

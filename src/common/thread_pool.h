#ifndef SKALLA_COMMON_THREAD_POOL_H_
#define SKALLA_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace skalla {

/// \brief A shared, lazily-started worker pool for intra-query parallelism.
///
/// One pool serves every parallel consumer in the process — the morsel-driven
/// local GMDJ evaluator (gmdj/local_eval.cc) and the coordinators' per-site
/// wave dispatch (dist/fault_tolerance.cc) — instead of each layer spawning
/// its own OS threads. Tasks never block on other tasks, so arbitrary
/// nesting (a site-evaluation task running a morsel ParallelFor on the same
/// pool) cannot deadlock: ParallelFor's caller claims work items itself
/// while it waits ("work-stealing-lite"), guaranteeing progress even when
/// every worker is busy elsewhere.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped to >= 0; 0 means every
  /// ParallelFor degenerates to the caller running all items inline).
  explicit ThreadPool(int num_threads);

  /// Joins all workers. Pending submitted tasks are still drained first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a fire-and-forget task. The task must not throw.
  void Submit(std::function<void()> task);

  /// Runs fn(0) … fn(num_items - 1), distributing items dynamically over
  /// `max_workers` lanes (the calling thread plus up to max_workers - 1
  /// pool workers; <= 0 means num_threads() + 1). Blocks until every item
  /// finished. Item *claiming* order is nondeterministic; callers needing
  /// deterministic results must make items independent and combine them in
  /// item order afterwards (see the morsel merge in gmdj/local_eval.cc).
  ///
  /// Safe to call from inside a pool task: the caller participates, so the
  /// loop completes even if no worker ever picks up a helper task.
  void ParallelFor(int64_t num_items, const std::function<void(int64_t)>& fn,
                   int max_workers = 0);

  /// The process-wide pool, started on first use with DefaultThreadCount()
  /// workers. Never destroyed (workers are joined at process exit by the
  /// OS), so it is safe to use from static-lifetime contexts.
  static ThreadPool& Shared();

  /// The SKALLA_THREADS environment knob, read once: >= 1 fixes the lane
  /// count (1 = fully sequential evaluation, the pre-pool behavior);
  /// unset/invalid falls back to std::thread::hardware_concurrency().
  static int DefaultThreadCount();

 private:
  void WorkerLoop(int worker_index);

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace skalla

#endif  // SKALLA_COMMON_THREAD_POOL_H_

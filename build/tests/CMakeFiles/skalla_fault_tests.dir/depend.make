# Empty dependencies file for skalla_fault_tests.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for skalla.
# This may be replaced when dependencies are built.

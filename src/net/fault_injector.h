#ifndef SKALLA_NET_FAULT_INJECTOR_H_
#define SKALLA_NET_FAULT_INJECTOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace skalla {

/// Direction of a simulated message relative to the coordinator (or, on an
/// aggregation tree, relative to the root: downstream messages travel
/// toward the sites, upstream messages toward the root).
enum class TransferDirection {
  kToSite,         ///< coordinator/aggregator -> site (X fragments, plans)
  kToCoordinator,  ///< site/aggregator -> coordinator (B_i, H_i replies)
};

const char* TransferDirectionToString(TransferDirection dir);

/// Category of one injected fault.
enum class FaultKind {
  kDrop,      ///< a single message was lost in flight
  kSiteDown,  ///< the site was unreachable (scheduled outage)
  kDelay,     ///< a single message was delayed by extra seconds
  kStraggler, ///< a slow-site multiplier stretched the transfer
};

const char* FaultKindToString(FaultKind kind);

/// One injected fault, recorded at the moment it affected a transfer.
struct FaultEvent {
  FaultKind kind = FaultKind::kDrop;
  int site = -1;
  int round = -1;
  int attempt = 0;
  TransferDirection dir = TransferDirection::kToSite;
  double delay_sec = 0.0;  ///< extra seconds injected (kDelay/kStraggler)
  std::string label;       ///< label of the affected message

  std::string ToString() const;
};

/// What the injector decided for one offered transfer.
struct TransferFate {
  bool delivered = true;
  double extra_delay_sec = 0.0;  ///< added to the modelled transfer time
};

/// \brief Deterministic, seedable fault source for the simulated WAN.
///
/// Attached to a SimNetwork, the injector is consulted for every message
/// that has a site endpoint and decides whether the message is dropped,
/// delayed, or slowed. Every decision is a *pure function* of
/// (seed, site, round, direction, attempt) plus the configured schedule —
/// never of wall-clock time or call order — so a fixed seed reproduces the
/// identical fault pattern across runs and across sequential vs
/// thread-parallel site evaluation. Every injected fault is appended to an
/// event log for assertions and reports.
///
/// Attempt numbering is supplied by the coordinator: attempt k is the k-th
/// time the coordinator re-drives the same per-site round exchange, which
/// is what makes scheduled faults expressible as "fail the first k
/// attempts" and therefore recoverable by retry.
///
/// Not thread-safe: coordinators call Decide (via SimNetwork::Transfer)
/// from the coordinating thread only.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 0) : seed_(seed) {}

  // ---- Scheduled faults. ----

  /// Drops the message matching (site, round, dir, attempt) exactly once
  /// per occurrence; later attempts of the same exchange get through.
  void DropOnce(int site, int round, TransferDirection dir, int attempt = 0);

  /// Site outage over a round range: for every round in
  /// [first_round, last_round], the site's messages (both directions) fail
  /// while attempt < failed_attempts_per_round, then recover. Keep
  /// failed_attempts_per_round below RetryPolicy::max_attempts to make the
  /// outage recoverable.
  void FailSite(int site, int first_round, int last_round,
                int failed_attempts_per_round = 1);

  /// Permanently kills the site from `from_round` on: no attempt ever
  /// succeeds again. Only replica failover (or a typed error) gets the
  /// query past this.
  void KillSite(int site, int from_round = 0);

  /// Delays the message matching (site, round, dir, attempt) by
  /// `extra_sec` simulated seconds (it is still delivered).
  void DelayOnce(int site, int round, TransferDirection dir, int attempt,
                 double extra_sec);

  /// Straggler model: every transfer to/from `site` takes `factor` times
  /// as long (factor > 1 = slower link; per-site bandwidth/latency
  /// multiplier). Recorded as a kStraggler event per affected message.
  void SlowSite(int site, double factor);

  /// Random recoverable loss: each message with attempt < max_attempt is
  /// dropped with probability `probability`, decided by a deterministic
  /// hash of (seed, site, round, dir, attempt). Attempts >= max_attempt
  /// always deliver, so any retry policy with max_attempts > max_attempt
  /// recovers.
  void set_random_drop(double probability, int max_attempt = 1);

  // ---- Decision API (called by SimNetwork::Transfer). ----

  /// Decides the fate of one offered transfer and records any injected
  /// fault. `base_seconds` is the fault-free modelled transfer time (used
  /// to compute straggler stretching).
  TransferFate Decide(int site, int round, TransferDirection dir, int attempt,
                      double base_seconds, const std::string& label);

  /// True when `site` is inside a KillSite window at `round`.
  bool SiteKilled(int site, int round) const;

  /// The straggler multiplier for `site` (1.0 when none configured).
  double SlowFactor(int site) const;

  // ---- Event log. ----

  const std::vector<FaultEvent>& events() const { return events_; }

  /// Clears the recorded events, keeping the schedule (fresh query).
  void ClearEvents() { events_.clear(); }

  /// Canonical rendering of the whole event log (determinism assertions).
  std::string EventLogToString() const;

  /// Per-kind event counts, e.g. "faults: 3 drop, 1 site-down".
  std::string Summary() const;

  uint64_t seed() const { return seed_; }

 private:
  struct OnceRule {
    int site;
    int round;
    TransferDirection dir;
    int attempt;
    bool drop;         ///< true: drop; false: delay by delay_sec
    double delay_sec;
  };
  struct OutageRule {
    int site;
    int first_round;
    int last_round;   ///< inclusive; INT_MAX for KillSite
    int attempts;     ///< attempts that fail per round; INT_MAX for KillSite
  };

  uint64_t seed_;
  std::vector<OnceRule> once_rules_;
  std::vector<OutageRule> outage_rules_;
  std::map<int, double> slow_factors_;
  double random_drop_p_ = 0.0;
  int random_drop_max_attempt_ = 1;
  std::vector<FaultEvent> events_;
};

}  // namespace skalla

#endif  // SKALLA_NET_FAULT_INJECTOR_H_

#include <gtest/gtest.h>

#include "engine/operators.h"
#include "flow/flowgen.h"
#include "gmdj/central_eval.h"
#include "skalla/queries.h"
#include "skalla/warehouse.h"
#include "test_util.h"
#include "tpc/dbgen.h"

namespace skalla {
namespace {

/// Loads a small TPCR relation partitioned on NationKey across `num_sites`,
/// with CustKey/NationKey range knowledge profiled.
void LoadTpcr(Warehouse* wh, int64_t rows = 4000, int64_t customers = 300,
              uint64_t seed = 11) {
  TpcConfig config;
  config.num_rows = rows;
  config.num_customers = customers;
  config.seed = seed;
  Table tpcr = GenerateTpcr(config);
  ASSERT_OK(wh->LoadByRange("TPCR", tpcr, "NationKey", 0,
                            config.num_nations - 1,
                            {"CustKey", "NationKey", "ClerkKey"}));
}

void LoadFlows(Warehouse* wh, int64_t rows = 3000, uint64_t seed = 5) {
  FlowConfig config;
  config.num_rows = rows;
  config.num_routers = wh->num_sites();
  config.num_as = 64;
  config.seed = seed;
  Table flows = GenerateFlows(config);
  ASSERT_OK(wh->LoadByRange("Flow", flows, "SourceAS", 0, config.num_as - 1,
                            {"SourceAS", "RouterId"}));
}

TEST(DistributedTest, Example1NaivePlanMatchesCentralized) {
  Warehouse wh(4);
  LoadFlows(&wh);
  const GmdjExpr query = queries::FlowExample1();
  ASSERT_OK_AND_ASSIGN(Table expected, wh.ExecuteCentralized(query));
  ASSERT_OK_AND_ASSIGN(QueryResult result,
                       wh.Execute(query, OptimizerOptions::None()));
  ExpectSameRows(result.table, expected);
  // m GMDJ operators → m + 1 rounds (paper, Sect. 3.2).
  EXPECT_EQ(result.metrics.NumRounds(), 3);
}

TEST(DistributedTest, Example1AllOptimizationsMatchCentralized) {
  Warehouse wh(4);
  LoadFlows(&wh);
  const GmdjExpr query = queries::FlowExample1();
  ASSERT_OK_AND_ASSIGN(Table expected, wh.ExecuteCentralized(query));
  ASSERT_OK_AND_ASSIGN(QueryResult result,
                       wh.Execute(query, OptimizerOptions::All()));
  ExpectSameRows(result.table, expected);
}

TEST(DistributedTest, SingleSiteMatchesCentralized) {
  Warehouse wh(1);
  LoadTpcr(&wh);
  const GmdjExpr query = queries::GroupReductionQuery("CustKey");
  ASSERT_OK_AND_ASSIGN(Table expected, wh.ExecuteCentralized(query));
  ASSERT_OK_AND_ASSIGN(QueryResult result,
                       wh.Execute(query, OptimizerOptions::None()));
  ExpectSameRows(result.table, expected);
}

TEST(DistributedTest, ResultHasOneRowPerGroup) {
  Warehouse wh(4);
  LoadTpcr(&wh);
  const GmdjExpr query = queries::CoalescingQuery("NationKey");
  ASSERT_OK_AND_ASSIGN(QueryResult result,
                       wh.Execute(query, OptimizerOptions::None()));
  // |Q| equals the number of distinct groups, independent of detail size.
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<const Table> full,
                       wh.central_catalog().GetTable("TPCR"));
  ASSERT_OK_AND_ASSIGN(Table groups,
                       DistinctProject(*full, {"NationKey"}));
  EXPECT_EQ(result.table.num_rows(), groups.num_rows());
}

// ---------------------------------------------------------------------------
// Property sweep: every optimization subset × every canonical query ×
// several partitionings must match the centralized evaluation exactly.
// ---------------------------------------------------------------------------

struct SweepCase {
  std::string name;
  std::string query;       // which canonical query
  std::string group_attr;
  std::string partitioning;  // "range" | "hash"
  int num_sites;
};

class OptimizationSweepTest
    : public ::testing::TestWithParam<std::tuple<SweepCase, int>> {};

GmdjExpr MakeQuery(const std::string& query, const std::string& attr) {
  if (query == "group_reduction") return queries::GroupReductionQuery(attr);
  if (query == "coalescing") return queries::CoalescingQuery(attr);
  if (query == "sync_reduction") return queries::SyncReductionQuery(attr);
  if (query == "combined") return queries::CombinedQuery(attr);
  ADD_FAILURE() << "unknown query " << query;
  return GmdjExpr();
}

TEST_P(OptimizationSweepTest, DistributedEqualsCentralized) {
  const auto& [sweep, mask] = GetParam();
  OptimizerOptions options;
  options.coalesce = (mask & 1) != 0;
  options.independent_group_reduction = (mask & 2) != 0;
  options.aware_group_reduction = (mask & 4) != 0;
  options.sync_reduction = (mask & 8) != 0;

  Warehouse wh(sweep.num_sites);
  TpcConfig config;
  config.num_rows = 2500;
  config.num_customers = 200;
  config.num_clerks = 40;
  config.seed = 17;
  Table tpcr = GenerateTpcr(config);
  if (sweep.partitioning == "range") {
    ASSERT_OK(wh.LoadByRange("TPCR", tpcr, "NationKey", 0,
                             config.num_nations - 1,
                             {"CustKey", "NationKey"}));
  } else {
    ASSERT_OK(wh.LoadByHash("TPCR", tpcr, "OrderKey"));
  }

  const GmdjExpr query = MakeQuery(sweep.query, sweep.group_attr);
  ASSERT_OK_AND_ASSIGN(Table expected, wh.ExecuteCentralized(query));
  ASSERT_OK_AND_ASSIGN(QueryResult result, wh.Execute(query, options));
  ExpectSameRows(result.table, expected);
}

std::vector<SweepCase> SweepCases() {
  return {
      {"group_custkey_range", "group_reduction", "CustKey", "range", 4},
      {"group_custname_range", "group_reduction", "CustName", "range", 3},
      {"coalesce_clerk_range", "coalescing", "ClerkKey", "range", 4},
      {"coalesce_custkey_hash", "coalescing", "CustKey", "hash", 4},
      {"sync_custkey_range", "sync_reduction", "CustKey", "range", 4},
      {"sync_custkey_hash", "sync_reduction", "CustKey", "hash", 3},
      {"combined_custkey_range", "combined", "CustKey", "range", 4},
      {"combined_nation_range", "combined", "NationKey", "range", 2},
  };
}

INSTANTIATE_TEST_SUITE_P(
    AllOptimizationSubsets, OptimizationSweepTest,
    ::testing::Combine(::testing::ValuesIn(SweepCases()),
                       ::testing::Range(0, 16)),
    [](const ::testing::TestParamInfo<std::tuple<SweepCase, int>>& info) {
      return std::get<0>(info.param).name + "_opt" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Plan-shape assertions: the optimizations must actually fire.
// ---------------------------------------------------------------------------

TEST(PlanShapeTest, CoalescingMergesIndependentOps) {
  Warehouse wh(4);
  LoadTpcr(&wh);
  OptimizerOptions options;
  options.coalesce = true;
  ASSERT_OK_AND_ASSIGN(DistributedPlan plan,
                       wh.Plan(queries::CoalescingQuery("CustName"), options));
  ASSERT_EQ(plan.rounds.size(), 1u);
  EXPECT_EQ(plan.rounds[0].ops.size(), 1u);
  EXPECT_EQ(plan.rounds[0].ops[0].blocks.size(), 2u);
}

TEST(PlanShapeTest, CoalescingDoesNotMergeCorrelatedOps) {
  Warehouse wh(4);
  LoadTpcr(&wh);
  OptimizerOptions options;
  options.coalesce = true;
  ASSERT_OK_AND_ASSIGN(
      DistributedPlan plan,
      wh.Plan(queries::GroupReductionQuery("CustName"), options));
  EXPECT_EQ(plan.rounds.size(), 2u);
}

TEST(PlanShapeTest, SyncReductionFusesOnPartitionAttribute) {
  Warehouse wh(4);
  LoadTpcr(&wh);
  OptimizerOptions options;
  options.sync_reduction = true;
  ASSERT_OK_AND_ASSIGN(DistributedPlan plan,
                       wh.Plan(queries::SyncReductionQuery("CustKey"), options));
  // One fused round evaluating both operators, base fused as well → the
  // whole query runs locally with a single synchronization (Example 5).
  ASSERT_EQ(plan.rounds.size(), 1u);
  EXPECT_EQ(plan.rounds[0].ops.size(), 2u);
  EXPECT_TRUE(plan.fuse_base);
}

TEST(PlanShapeTest, SyncReductionDoesNotFireOnHashPartitioning) {
  Warehouse wh(4);
  TpcConfig config;
  config.num_rows = 1000;
  config.num_customers = 100;
  Table tpcr = GenerateTpcr(config);
  ASSERT_OK(wh.LoadByHash("TPCR", tpcr, "OrderKey"));
  OptimizerOptions options;
  options.sync_reduction = true;
  ASSERT_OK_AND_ASSIGN(DistributedPlan plan,
                       wh.Plan(queries::SyncReductionQuery("CustKey"), options));
  // No distribution knowledge → CustKey cannot be proven a partition
  // attribute → two synchronized rounds remain.
  EXPECT_EQ(plan.rounds.size(), 2u);
  // Prop. 2 (base fusion) is distribution-independent: it only needs the
  // θs to entail key equality, which they do.
  EXPECT_TRUE(plan.fuse_base);
}

TEST(PlanShapeTest, AwareReductionProducesShipPredicates) {
  Warehouse wh(4);
  LoadTpcr(&wh);
  OptimizerOptions options;
  options.aware_group_reduction = true;
  ASSERT_OK_AND_ASSIGN(
      DistributedPlan plan,
      wh.Plan(queries::GroupReductionQuery("CustKey"), options));
  ASSERT_EQ(plan.rounds.size(), 2u);
  EXPECT_TRUE(plan.rounds[0].flags.aware_group_reduction);
  ASSERT_EQ(plan.ship_predicates[0].size(), 4u);
  for (const ExprPtr& pred : plan.ship_predicates[0]) {
    EXPECT_NE(pred, nullptr);
  }
}

TEST(PlanShapeTest, NaivePlanHasOneRoundPerOperator) {
  const GmdjExpr query = queries::CombinedQuery("CustKey");
  const DistributedPlan plan = MakeNaivePlan(query);
  EXPECT_EQ(plan.rounds.size(), 3u);
  EXPECT_FALSE(plan.fuse_base);
  for (const PlanRound& round : plan.rounds) {
    EXPECT_EQ(round.ops.size(), 1u);
    EXPECT_FALSE(round.flags.independent_group_reduction);
    EXPECT_FALSE(round.flags.aware_group_reduction);
  }
}

// ---------------------------------------------------------------------------
// Traffic properties.
// ---------------------------------------------------------------------------

TEST(TrafficTest, GroupReductionNeverIncreasesTraffic) {
  Warehouse wh(4);
  LoadTpcr(&wh);
  const GmdjExpr query = queries::GroupReductionQuery("CustKey");
  ASSERT_OK_AND_ASSIGN(QueryResult baseline,
                       wh.Execute(query, OptimizerOptions::None()));
  OptimizerOptions reduced;
  reduced.independent_group_reduction = true;
  reduced.aware_group_reduction = true;
  ASSERT_OK_AND_ASSIGN(QueryResult optimized, wh.Execute(query, reduced));
  EXPECT_LE(optimized.metrics.TotalBytes(), baseline.metrics.TotalBytes());
  EXPECT_LT(optimized.metrics.GroupsToCoord(),
            baseline.metrics.GroupsToCoord());
  EXPECT_LT(optimized.metrics.GroupsToSites(),
            baseline.metrics.GroupsToSites());
}

TEST(TrafficTest, TheoremTwoBoundHolds) {
  for (const char* attr : {"CustKey", "CustName", "ClerkKey"}) {
    Warehouse wh(4);
    LoadTpcr(&wh);
    const GmdjExpr query = queries::GroupReductionQuery(attr);
    ASSERT_OK_AND_ASSIGN(QueryResult result,
                         wh.Execute(query, OptimizerOptions::None()));
    const int64_t bound = TheoremTwoGroupBound(result.plan, wh.num_sites(),
                                               result.table.num_rows());
    EXPECT_LE(result.metrics.GroupsToSites() +
                  result.metrics.GroupsToCoord(),
              bound)
        << "attribute " << attr;
  }
}

TEST(TrafficTest, SyncReductionUsesSingleRound) {
  Warehouse wh(4);
  LoadTpcr(&wh);
  const GmdjExpr query = queries::SyncReductionQuery("CustKey");
  OptimizerOptions options;
  options.sync_reduction = true;
  ASSERT_OK_AND_ASSIGN(QueryResult result, wh.Execute(query, options));
  EXPECT_EQ(result.metrics.NumRounds(), 1);
  // Nothing but control messages flows coordinator → sites.
  EXPECT_EQ(result.metrics.GroupsToSites(), 0);
  ASSERT_OK_AND_ASSIGN(Table expected, wh.ExecuteCentralized(query));
  ExpectSameRows(result.table, expected);
}

}  // namespace
}  // namespace skalla

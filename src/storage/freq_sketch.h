#ifndef SKALLA_STORAGE_FREQ_SKETCH_H_
#define SKALLA_STORAGE_FREQ_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace skalla {

/// \brief Space-saving heavy-hitter sketch over int64 keys.
///
/// Metwally et al.'s Space-Saving algorithm: at most `capacity` monitored
/// keys; a new key evicts the minimum-count entry, inheriting its count as
/// both estimate floor and error bound. Guarantees: every key with true
/// frequency > total / capacity is monitored, and for every monitored key
/// `count - error <= true frequency <= count`. Skalla uses it at load time
/// over partition-key columns — Zipf-skewed generators concentrate rows on
/// a few keys, and any key holding more than one site's fair share of rows
/// makes contiguous range partitioning inherently unbalanceable, so those
/// keys' sites get replicas for the skew rebalancer (docs/skew.md).
class FreqSketch {
 public:
  explicit FreqSketch(size_t capacity = 256)
      : capacity_(capacity > 0 ? capacity : 1) {}

  struct Entry {
    int64_t key = 0;
    int64_t count = 0;  ///< estimate (upper bound on true frequency)
    int64_t error = 0;  ///< count - error is a guaranteed lower bound
  };

  void Add(int64_t key, int64_t weight = 1);

  int64_t total() const { return total_; }
  size_t capacity() const { return capacity_; }
  size_t monitored() const { return counts_.size(); }

  /// The top-k monitored keys, count-descending (key-ascending tiebreak,
  /// so the output is deterministic).
  std::vector<Entry> TopK(size_t k) const;

  /// Monitored keys whose *guaranteed* frequency (count - error) exceeds
  /// `min_share` of the total weight; count-descending.
  std::vector<Entry> HeavyHitters(double min_share) const;

  /// The estimated frequency of `key` (0 when unmonitored).
  int64_t Estimate(int64_t key) const;

 private:
  size_t capacity_;
  int64_t total_ = 0;
  std::unordered_map<int64_t, Entry> counts_;
};

}  // namespace skalla

#endif  // SKALLA_STORAGE_FREQ_SKETCH_H_

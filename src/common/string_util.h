#ifndef SKALLA_COMMON_STRING_UTIL_H_
#define SKALLA_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace skalla {

/// Joins the elements of `parts` with `sep` between each pair.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `text` on the (single-character) separator; keeps empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Lower-cases ASCII letters.
std::string ToLower(std::string_view text);

/// Formats a byte count as a human-readable string ("1.5 MB").
std::string HumanBytes(double bytes);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...);

}  // namespace skalla

#endif  // SKALLA_COMMON_STRING_UTIL_H_

#include "skalla/report.h"

#include <sstream>

#include "common/string_util.h"
#include "obs/diagnostics.h"
#include "obs/journal.h"
#include "obs/trace.h"

namespace skalla {

std::string FormatExecutionReport(const QueryResult& result) {
  std::ostringstream os;
  os << "=== plan ===\n" << result.plan.Explain();
  os << "=== execution ===\n";
  os << StrFormat("%-30s %6s %12s %12s %10s %10s %10s\n", "round", "sites",
                  "out", "in", "site[s]", "coord[s]", "comm[s]");
  for (const RoundMetrics& rm : result.metrics.rounds) {
    os << StrFormat(
        "%-30s %6d %12s %12s %10.4f %10.4f %10.4f\n", rm.label.c_str(),
        rm.sites, HumanBytes(static_cast<double>(rm.bytes_to_sites)).c_str(),
        HumanBytes(static_cast<double>(rm.bytes_to_coord)).c_str(),
        rm.site_cpu_max_sec, rm.coord_cpu_sec, rm.comm_sec);
  }
  os << "=== summary ===\n";
  os << StrFormat(
      "result rows: %lld\n"
      "rounds:      %d\n"
      "traffic:     %s to sites, %s to coordinator\n"
      "groups:      %lld shipped out, %lld shipped in\n"
      "response:    %.4f s  (site %.4f + coord %.4f + comm %.4f)\n",
      static_cast<long long>(result.table.num_rows()),
      result.metrics.NumRounds(),
      HumanBytes(static_cast<double>(result.metrics.BytesToSites())).c_str(),
      HumanBytes(static_cast<double>(result.metrics.BytesToCoord())).c_str(),
      static_cast<long long>(result.metrics.GroupsToSites()),
      static_cast<long long>(result.metrics.GroupsToCoord()),
      result.metrics.ResponseSeconds(), result.metrics.SiteCpuSeconds(),
      result.metrics.CoordCpuSeconds(), result.metrics.CommSeconds());
  if (result.metrics.BytesSavedByDelta() > 0 ||
      result.metrics.CompressionRatio() > 1.0) {
    os << StrFormat(
        "wire:        %s saved by delta shipping, %.2fx vs SKL1 full-ship\n",
        HumanBytes(static_cast<double>(result.metrics.BytesSavedByDelta()))
            .c_str(),
        result.metrics.CompressionRatio());
  }
  // With tracing on, the event journal carries per-site load — surface the
  // straggler/skew diagnostic computed from it.
  if (obs::TraceEnabled() && obs::JournalSize() > 0) {
    os << "=== straggler diagnostic ===\n";
    os << obs::ComputeStragglerReport(obs::JournalSnapshot()).ToString();
  }
  return os.str();
}

std::string FormatQueryProfile(const QueryResult* result,
                               const QueryProfileInfo& info) {
  std::ostringstream os;
  os << "=== profile ===\n";
  if (info.result_cache_hit) {
    os << "provenance: result cache hit (no rounds executed)\n";
    return os.str();
  }
  if (result == nullptr) {
    os << "provenance: no result captured\n";
    return os.str();
  }
  if (info.resumed_rounds > 0) {
    os << "provenance: resumed past " << info.resumed_rounds
       << " cached round(s); profiled rounds are the remainder\n";
  } else {
    os << "provenance: executed from scratch\n";
  }

  os << "=== plan ===\n" << result->plan.Explain();

  os << "=== rounds ===\n";
  os << StrFormat("%-30s %6s %14s %14s %12s %12s %26s %6s\n", "round",
                  "sites", "out[B/rows]", "in[B/rows]", "coord[s]", "comm[s]",
                  "site[min/avg/max s]", "slow");
  for (const RoundMetrics& rm : result->metrics.rounds) {
    const double avg =
        rm.sites > 0 ? rm.site_cpu_sum_sec / static_cast<double>(rm.sites)
                     : 0.0;
    std::string site_col =
        StrFormat("%8.4f/%8.4f/%8.4f", rm.site_cpu_min_sec, avg,
                  rm.site_cpu_max_sec);
    std::string slow_col =
        rm.slowest_site >= 0 ? StrFormat("s%d", rm.slowest_site) : "-";
    os << StrFormat(
        "%-30s %6d %14s %14s %12.4f %12.4f %26s %6s\n", rm.label.c_str(),
        rm.sites,
        StrFormat("%zu/%lld", rm.bytes_to_sites,
                  static_cast<long long>(rm.groups_to_sites))
            .c_str(),
        StrFormat("%zu/%lld", rm.bytes_to_coord,
                  static_cast<long long>(rm.groups_to_coord))
            .c_str(),
        rm.coord_cpu_sec, rm.comm_sec, site_col.c_str(), slow_col.c_str());
    if (rm.retries > 0 || rm.timeouts > 0 || rm.drops > 0 ||
        rm.failovers > 0) {
      os << StrFormat(
          "  ^ faults: %d retries, %d timeouts, %d drops, %d failovers, "
          "%zu B retransmitted\n",
          rm.retries, rm.timeouts, rm.drops, rm.failovers,
          rm.bytes_retransmitted);
    }
  }

  // Machine-parseable `key value` lines; tests pin these to the exact
  // ExecutionMetrics numbers of the same execution.
  const ExecutionMetrics& m = result->metrics;
  os << "=== totals ===\n";
  os << "rounds " << m.NumRounds() << "\n"
     << "result_rows " << result->table.num_rows() << "\n"
     << "bytes_to_sites " << m.BytesToSites() << "\n"
     << "bytes_to_coord " << m.BytesToCoord() << "\n"
     << "bytes_total " << m.TotalBytes() << "\n"
     << "groups_to_sites " << m.GroupsToSites() << "\n"
     << "groups_to_coord " << m.GroupsToCoord() << "\n"
     << "bytes_saved_by_delta " << m.BytesSavedByDelta() << "\n"
     << "detail_rows_scanned " << m.DetailRowsScanned() << "\n"
     << "detail_rows_matched " << m.DetailRowsMatched() << "\n"
     << StrFormat("response_seconds %.6f\n", m.ResponseSeconds())
     << StrFormat("site_cpu_seconds %.6f\n", m.SiteCpuSeconds())
     << StrFormat("coord_cpu_seconds %.6f\n", m.CoordCpuSeconds())
     << StrFormat("comm_seconds %.6f\n", m.CommSeconds());

  // Per-site load from the per-query metrics scope (registry diff), not a
  // post-hoc journal scan — works with tracing off.
  if (!info.registry_delta.empty()) {
    obs::StragglerReport skew =
        obs::ComputeStragglerReportFromMetrics(info.registry_delta);
    if (!skew.sites.empty()) {
      os << "=== per-site load (metrics registry) ===\n" << skew.ToString();
    }
  }
  return os.str();
}

}  // namespace skalla

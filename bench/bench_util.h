#ifndef SKALLA_BENCH_BENCH_UTIL_H_
#define SKALLA_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "skalla/queries.h"
#include "skalla/warehouse.h"
#include "tpc/dbgen.h"

namespace skalla {
namespace bench {

/// Parameters of a benchmark warehouse. The paper's speed-up experiments
/// hold per-site data constant and vary the number of sites (every added
/// site brings its own partition, so total data and total groups grow
/// linearly with n); the scale-up experiments hold sites constant and grow
/// the per-site data.
struct WarehouseSpec {
  int sites = 8;
  int64_t rows_per_site = 25000;
  int64_t groups_per_site = 1500;  ///< customers per site (high cardinality)
  int64_t clerks = 3000;           ///< low-cardinality attribute uniques
  uint64_t seed = 42;

  bool operator<(const WarehouseSpec& other) const {
    return std::tie(sites, rows_per_site, groups_per_site, clerks, seed) <
           std::tie(other.sites, other.rows_per_site, other.groups_per_site,
                    other.clerks, other.seed);
  }
};

/// Builds (and caches across benchmark repetitions) a TPCR warehouse with
/// `spec.sites` sites partitioned on NationKey, with CustKey/ClerkKey
/// profiled so that CustKey is a provable partition attribute.
inline Warehouse& GetWarehouse(const WarehouseSpec& spec) {
  static std::map<WarehouseSpec, std::unique_ptr<Warehouse>>& cache =
      *new std::map<WarehouseSpec, std::unique_ptr<Warehouse>>();
  auto it = cache.find(spec);
  if (it != cache.end()) return *it->second;

  TpcConfig config;
  config.num_rows = spec.rows_per_site * spec.sites;
  config.num_customers = spec.groups_per_site * spec.sites;
  config.num_clerks = spec.clerks;
  // 24 nations divide evenly for most site counts; customers are
  // block-mapped onto nations, so a NationKey range partitioning puts each
  // site's customers wholly on that site.
  config.num_nations = 24;
  config.seed = spec.seed;
  Table tpcr = GenerateTpcr(config);

  auto warehouse = std::make_unique<Warehouse>(spec.sites);
  Status status =
      warehouse->LoadByRange("TPCR", tpcr, "NationKey", 0,
                             config.num_nations - 1, {"CustKey", "ClerkKey"});
  if (!status.ok()) {
    std::fprintf(stderr, "warehouse load failed: %s\n",
                 status.ToString().c_str());
    std::abort();
  }
  auto [inserted, ok] = cache.emplace(spec, std::move(warehouse));
  (void)ok;
  return *inserted->second;
}

/// Executes and returns the result, aborting on error (benchmark context).
inline QueryResult MustExecute(Warehouse& warehouse, const GmdjExpr& query,
                               const OptimizerOptions& options) {
  auto result = warehouse.Execute(query, options);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).ValueUnsafe();
}

/// Prints one row of a paper-style series table.
inline void PrintSeriesHeader(const char* title, const char* cols) {
  std::printf("\n%s\n%s\n", title, cols);
}

/// \brief Machine-readable benchmark output: BENCH_<name>.json.
///
/// Every bench binary can attach one of these and Add() a record per
/// measured configuration; the destructor writes the collected series as a
/// single JSON document in the working directory, so experiment sweeps can
/// be diffed and plotted without scraping stdout:
///
///   {"bench": "parallel_local",
///    "results": [{"name": "hash/t4",
///                 "params": {"threads": 4, "rows": 1048576},
///                 "wall_ms": 812.4, "bytes_shipped": 0}, ...]}
///
/// `bytes_shipped` carries the simulated network volume for distributed
/// benchmarks (ExecutionMetrics::TotalBytes()) and 0 for purely local ones.
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}
  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;
  ~JsonReport() { Write(); }

  void Add(std::string name,
           std::vector<std::pair<std::string, double>> params, double wall_ms,
           int64_t bytes_shipped = 0) {
    records_.push_back(
        Record{std::move(name), std::move(params), wall_ms, bytes_shipped});
  }

  /// Writes BENCH_<bench_name>.json (idempotent; also run by ~JsonReport).
  void Write() {
    if (written_) return;
    written_ = true;
    const std::string path = "BENCH_" + bench_name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\"bench\": \"%s\",\n \"results\": [", bench_name_.c_str());
    for (size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      std::fprintf(f, "%s\n  {\"name\": \"%s\", \"params\": {",
                   i == 0 ? "" : ",", r.name.c_str());
      for (size_t p = 0; p < r.params.size(); ++p) {
        std::fprintf(f, "%s\"%s\": %g", p == 0 ? "" : ", ",
                     r.params[p].first.c_str(), r.params[p].second);
      }
      std::fprintf(f, "}, \"wall_ms\": %.3f, \"bytes_shipped\": %lld}",
                   r.wall_ms, static_cast<long long>(r.bytes_shipped));
    }
    std::fprintf(f, "\n]}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu record(s))\n", path.c_str(), records_.size());
  }

 private:
  struct Record {
    std::string name;
    std::vector<std::pair<std::string, double>> params;
    double wall_ms;
    int64_t bytes_shipped;
  };
  std::string bench_name_;
  std::vector<Record> records_;
  bool written_ = false;
};

}  // namespace bench
}  // namespace skalla

#endif  // SKALLA_BENCH_BENCH_UTIL_H_

#include "storage/value.h"

#include <cmath>
#include <cstring>

#include "common/hash_util.h"
#include "common/string_util.h"

namespace skalla {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

bool Value::operator==(const Value& other) const {
  if (is_null() || other.is_null()) return is_null() && other.is_null();
  if (is_numeric() && other.is_numeric()) {
    if (is_int64() && other.is_int64()) return AsInt64() == other.AsInt64();
    return ToDouble() == other.ToDouble();
  }
  if (is_string() && other.is_string()) return AsString() == other.AsString();
  return false;
}

int Value::Compare(const Value& other) const {
  // NULL sorts first.
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  const bool lhs_num = is_numeric();
  const bool rhs_num = other.is_numeric();
  if (lhs_num && rhs_num) {
    if (is_int64() && other.is_int64()) {
      const int64_t a = AsInt64();
      const int64_t b = other.AsInt64();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    const double a = ToDouble();
    const double b = other.ToDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (lhs_num != rhs_num) return lhs_num ? -1 : 1;  // numerics before strings
  return AsString().compare(other.AsString()) < 0
             ? -1
             : (AsString() == other.AsString() ? 0 : 1);
}

uint64_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x6e756c6cULL;  // "null"
    case ValueType::kInt64: {
      // Hash integral values through their double representation when exact,
      // so that Value(5) and Value(5.0) hash identically (they compare equal).
      const int64_t v = AsInt64();
      const double d = static_cast<double>(v);
      if (static_cast<int64_t>(d) == v) {
        uint64_t bits;
        std::memcpy(&bits, &d, sizeof(bits));
        return HashInt64(bits);
      }
      return HashInt64(static_cast<uint64_t>(v));
    }
    case ValueType::kDouble: {
      double d = AsDouble();
      if (d == 0.0) d = 0.0;  // normalize -0.0
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      return HashInt64(bits);
    }
    case ValueType::kString:
      return HashBytes(AsString());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return std::to_string(AsInt64());
    case ValueType::kDouble: {
      // Render integral doubles without trailing zeros noise.
      return StrFormat("%g", AsDouble());
    }
    case ValueType::kString:
      return AsString();
  }
  return "?";
}

size_t Value::SerializedSize() const {
  switch (type()) {
    case ValueType::kNull:
      return 1;
    case ValueType::kInt64:
    case ValueType::kDouble:
      return 1 + 8;
    case ValueType::kString:
      return 1 + 4 + AsString().size();
  }
  return 1;
}

}  // namespace skalla

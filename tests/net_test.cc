#include <gtest/gtest.h>

#include "dist/metrics.h"
#include "net/sim_network.h"
#include "test_util.h"

namespace skalla {
namespace {

TEST(CostModelTest, TransferTimeIsLatencyPlusBandwidth) {
  NetworkConfig config;
  config.bandwidth_bytes_per_sec = 1000.0;
  config.latency_sec = 0.5;
  EXPECT_DOUBLE_EQ(config.TransferSeconds(0), 0.5);
  EXPECT_DOUBLE_EQ(config.TransferSeconds(2000), 2.5);
}

TEST(SimNetworkTest, RecordsTransfersByDirection) {
  SimNetwork net;
  net.BeginRound("r0");
  net.Transfer(kCoordinatorId, 0, 100, 2, "to site 0");
  net.Transfer(kCoordinatorId, 1, 150, 3, "to site 1");
  net.Transfer(0, kCoordinatorId, 70, 1, "from site 0");

  EXPECT_EQ(net.TotalBytes(), 320u);
  EXPECT_EQ(net.BytesFromCoordinator(), 250u);
  EXPECT_EQ(net.BytesToCoordinator(), 70u);
  EXPECT_EQ(net.RowsFromCoordinator(), 5);
  EXPECT_EQ(net.RowsToCoordinator(), 1);
  ASSERT_EQ(net.transfers().size(), 3u);
  EXPECT_EQ(net.transfers()[0].round, 0);
}

TEST(SimNetworkTest, TransferReturnsModelledSeconds) {
  NetworkConfig config;
  config.bandwidth_bytes_per_sec = 100.0;
  config.latency_sec = 1.0;
  SimNetwork net(config);
  net.BeginRound("r");
  EXPECT_DOUBLE_EQ(net.Transfer(kCoordinatorId, 0, 200, 0, "x"), 3.0);
}

TEST(SimNetworkTest, ResetClearsEverything) {
  SimNetwork net;
  net.BeginRound("r");
  net.Transfer(0, kCoordinatorId, 10, 1, "x");
  net.Reset();
  EXPECT_EQ(net.TotalBytes(), 0u);
  EXPECT_TRUE(net.transfers().empty());
}

TEST(SimNetworkTest, ReportMentionsRounds) {
  SimNetwork net;
  net.BeginRound("base");
  net.Transfer(0, kCoordinatorId, 1024, 1, "x");
  const std::string report = net.Report();
  EXPECT_NE(report.find("base"), std::string::npos);
  EXPECT_NE(report.find("total"), std::string::npos);
}

TEST(MetricsTest, AggregatesAcrossRounds) {
  ExecutionMetrics m;
  RoundMetrics r1;
  r1.bytes_to_sites = 100;
  r1.bytes_to_coord = 50;
  r1.groups_to_sites = 10;
  r1.groups_to_coord = 5;
  r1.site_cpu_max_sec = 0.5;
  r1.coord_cpu_sec = 0.1;
  r1.comm_sec = 0.2;
  RoundMetrics r2 = r1;
  r2.bytes_to_sites = 200;
  m.rounds = {r1, r2};

  EXPECT_EQ(m.NumRounds(), 2);
  EXPECT_EQ(m.BytesToSites(), 300u);
  EXPECT_EQ(m.BytesToCoord(), 100u);
  EXPECT_EQ(m.TotalBytes(), 400u);
  EXPECT_EQ(m.GroupsToSites(), 20);
  EXPECT_EQ(m.GroupsToCoord(), 10);
  EXPECT_DOUBLE_EQ(m.SiteCpuSeconds(), 1.0);
  EXPECT_DOUBLE_EQ(m.CoordCpuSeconds(), 0.2);
  EXPECT_DOUBLE_EQ(m.CommSeconds(), 0.4);
  EXPECT_DOUBLE_EQ(m.ResponseSeconds(), 1.6);
  EXPECT_DOUBLE_EQ(r1.ResponseSeconds(), 0.8);
}

TEST(MetricsTest, ToStringIsReadable) {
  ExecutionMetrics m;
  RoundMetrics r;
  r.label = "gmdj round 1";
  r.sites = 4;
  m.rounds = {r};
  const std::string s = m.ToString();
  EXPECT_NE(s.find("gmdj round 1"), std::string::npos);
  EXPECT_NE(s.find("1 round"), std::string::npos);
}

}  // namespace
}  // namespace skalla

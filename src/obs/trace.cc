#include "obs/trace.h"

#include <chrono>
#include <cstdlib>
#include <mutex>

#include "obs/export.h"
#include "obs/journal.h"

namespace skalla {
namespace obs {

namespace internal {
std::atomic<bool> g_trace_enabled{false};
std::atomic<bool> g_spans_enabled{false};
std::atomic<bool> g_journal_enabled{false};
std::atomic<int> g_morsel_sample{16};
}  // namespace internal

namespace {

// Track-id layout: 0 coordinator, [1, kLaneTrackBase) sites,
// [kLaneTrackBase, kAggTrackBase) pool lanes, kAggTrackBase+ aggregators.
constexpr int kLaneTrackBase = 10000;
constexpr int kAggTrackBase = 20000;

struct TracerState {
  std::mutex mu;
  TraceConfig config;
  std::vector<TraceSpan> spans;
  std::atomic<size_t> dropped{0};
  std::atomic<uint64_t> next_span_id{1};
  std::atomic<uint32_t> next_thread_index{1};
};

TracerState& State() {
  // Leaked on purpose: instrumented code (thread-pool workers, atexit
  // exporters) may record spans during static destruction.
  static TracerState* state = new TracerState();
  return *state;
}

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

thread_local std::vector<uint64_t> tls_span_stack;
thread_local int tls_track = kTrackCoordinator;
thread_local uint32_t tls_thread_index = 0;

void RecordSpan(TraceSpan span) {
  TracerState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.spans.size() >= state.config.max_spans) {
    state.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  state.spans.push_back(std::move(span));
}

// Reads SKALLA_TRACE once at process start and, when it names export
// destinations, registers an atexit writer so examples and benches get a
// trace file with no code changes.
const bool g_env_initialized = [] {
  const char* env = std::getenv("SKALLA_TRACE");
  if (env == nullptr || *env == '\0') return true;
  const TraceConfig config = TraceConfigFromEnv(env);
  if (!config.enabled) return true;
  ConfigureTracing(config);
  if (!config.chrome_path.empty() || !config.text_path.empty() ||
      !config.journal_path.empty()) {
    std::atexit([] { WriteConfiguredTraceOutputs(); });
  }
  return true;
}();

}  // namespace

void ConfigureTracing(const TraceConfig& config) {
  TracerState& state = State();
  {
    std::lock_guard<std::mutex> lock(state.mu);
    state.config = config;
  }
  internal::g_morsel_sample.store(config.morsel_sample,
                                  std::memory_order_relaxed);
  internal::g_spans_enabled.store(config.enabled && config.spans,
                                  std::memory_order_relaxed);
  internal::g_journal_enabled.store(config.enabled && config.journal,
                                    std::memory_order_relaxed);
  internal::g_trace_enabled.store(config.enabled, std::memory_order_relaxed);
}

TraceConfig CurrentTraceConfig() {
  TracerState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.config;
}

void ResetTracing() {
  TracerState& state = State();
  {
    std::lock_guard<std::mutex> lock(state.mu);
    state.spans.clear();
    state.dropped.store(0, std::memory_order_relaxed);
  }
  ClearJournal();
}

TraceConfig TraceConfigFromEnv(const char* value) {
  TraceConfig config;
  if (value == nullptr) return config;
  const std::string v(value);
  if (v.empty() || v == "0" || v == "off") return config;
  config.enabled = true;
  size_t pos = 0;
  while (pos <= v.size()) {
    const size_t comma = v.find(',', pos);
    const std::string token =
        v.substr(pos, comma == std::string::npos ? std::string::npos
                                                 : comma - pos);
    const size_t colon = token.find(':');
    const std::string key = token.substr(0, colon);
    const std::string arg =
        colon == std::string::npos ? "" : token.substr(colon + 1);
    if (key == "chrome") {
      config.chrome_path = arg.empty() ? "skalla_trace.json" : arg;
    } else if (key == "text") {
      config.text_path = arg.empty() ? "-" : arg;
    } else if (key == "journal") {
      config.journal_path = arg.empty() ? "skalla_journal.jsonl" : arg;
    } else if (key == "sample") {
      config.morsel_sample = std::atoi(arg.c_str());
    }
    // "on"/"1"/unknown tokens just leave tracing enabled.
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return config;
}

int TrackForSite(int endpoint) {
  if (endpoint >= 0) return 1 + endpoint;
  if (endpoint == -1) return kTrackCoordinator;
  return kAggTrackBase + (-2 - endpoint);  // EncodeAggregatorId inverse
}

int TrackForLane(int lane) { return kLaneTrackBase + lane; }

std::string TrackName(int track) {
  if (track == kTrackCoordinator) return "coordinator";
  if (track >= kAggTrackBase) {
    return "aggregator " + std::to_string(track - kAggTrackBase);
  }
  if (track >= kLaneTrackBase) {
    return "pool lane " + std::to_string(track - kLaneTrackBase);
  }
  return "site " + std::to_string(track - 1);
}

uint32_t CurrentThreadIndex() {
  if (tls_thread_index == 0) {
    tls_thread_index =
        State().next_thread_index.fetch_add(1, std::memory_order_relaxed);
  }
  return tls_thread_index;
}

int64_t TraceNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - TraceEpoch())
      .count();
}

uint64_t CurrentSpanId() {
  return tls_span_stack.empty() ? 0 : tls_span_stack.back();
}

int CurrentTrack() { return tls_track; }

std::vector<TraceSpan> SpanSnapshot() {
  TracerState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.spans;
}

size_t DroppedSpanCount() {
  return State().dropped.load(std::memory_order_relaxed);
}

ScopedSpan::ScopedSpan(const char* name, int track) {
  if (name == nullptr || !SpanTracingEnabled()) return;
  armed_ = true;
  name_ = name;
  track_ = track == kTrackInherit ? tls_track : track;
  parent_ = CurrentSpanId();
  id_ = State().next_span_id.fetch_add(1, std::memory_order_relaxed);
  tls_span_stack.push_back(id_);
  start_ns_ = TraceNowNs();
}

ScopedSpan::~ScopedSpan() {
  if (!armed_) return;
  tls_span_stack.pop_back();
  TraceSpan span;
  span.id = id_;
  span.parent = parent_;
  span.name = name_;
  span.detail = std::move(detail_);
  span.track = track_;
  span.thread = CurrentThreadIndex();
  span.start_ns = start_ns_;
  span.end_ns = TraceNowNs();
  RecordSpan(std::move(span));
}

TrackScope::TrackScope(int track) {
  if (track == kTrackInherit || !SpanTracingEnabled()) return;
  armed_ = true;
  saved_ = tls_track;
  tls_track = track;
}

TrackScope::~TrackScope() {
  if (armed_) tls_track = saved_;
}

ParentScope::ParentScope(uint64_t parent) {
  if (parent == 0 || !SpanTracingEnabled()) return;
  armed_ = true;
  tls_span_stack.push_back(parent);
}

ParentScope::~ParentScope() {
  if (armed_) tls_span_stack.pop_back();
}

}  // namespace obs
}  // namespace skalla

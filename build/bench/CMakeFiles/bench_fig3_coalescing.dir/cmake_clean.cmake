file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_coalescing.dir/bench_fig3_coalescing.cc.o"
  "CMakeFiles/bench_fig3_coalescing.dir/bench_fig3_coalescing.cc.o.d"
  "bench_fig3_coalescing"
  "bench_fig3_coalescing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_coalescing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#ifndef SKALLA_SKALLA_REPORT_H_
#define SKALLA_SKALLA_REPORT_H_

#include <string>

#include "skalla/warehouse.h"

namespace skalla {

/// \brief Formats a query execution as a human-readable report: the
/// distributed plan, the per-round cost table, and the end-to-end summary
/// (an EXPLAIN ANALYZE for Skalla). Used by the interactive shell's
/// `\analyze` command and handy in tests and examples.
std::string FormatExecutionReport(const QueryResult& result);

}  // namespace skalla

#endif  // SKALLA_SKALLA_REPORT_H_

file(REMOVE_RECURSE
  "CMakeFiles/example_optimizer_explain.dir/optimizer_explain.cc.o"
  "CMakeFiles/example_optimizer_explain.dir/optimizer_explain.cc.o.d"
  "example_optimizer_explain"
  "example_optimizer_explain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_optimizer_explain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "skalla/queries.h"

namespace skalla {
namespace queries {

namespace {

/// θ conjunct `B.attr = R.attr`.
ExprPtr KeyEq(const std::string& attr) { return Eq(BCol(attr), RCol(attr)); }

}  // namespace

GmdjExpr FlowExample1() {
  GmdjExpr expr;
  expr.base.source_table = "Flow";
  expr.base.project_cols = {"SourceAS", "DestAS"};

  GmdjOp md1;
  md1.detail_table = "Flow";
  GmdjBlock b1;
  b1.aggs = {AggSpec::Count("cnt1"), AggSpec::Sum("NumBytes", "sum1")};
  b1.theta = And(KeyEq("SourceAS"), KeyEq("DestAS"));
  md1.blocks.push_back(std::move(b1));
  expr.ops.push_back(std::move(md1));

  GmdjOp md2;
  md2.detail_table = "Flow";
  GmdjBlock b2;
  b2.aggs = {AggSpec::Count("cnt2")};
  b2.theta = And(And(KeyEq("SourceAS"), KeyEq("DestAS")),
                 Ge(RCol("NumBytes"), Div(BCol("sum1"), BCol("cnt1"))));
  md2.blocks.push_back(std::move(b2));
  expr.ops.push_back(std::move(md2));
  return expr;
}

GmdjExpr GroupReductionQuery(const std::string& group_attr) {
  GmdjExpr expr;
  expr.base.source_table = "TPCR";
  expr.base.project_cols = {group_attr};

  GmdjOp md1;
  md1.detail_table = "TPCR";
  GmdjBlock b1;
  b1.aggs = {AggSpec::Count("cnt1"), AggSpec::Avg("Quantity", "avg1")};
  b1.theta = KeyEq(group_attr);
  md1.blocks.push_back(std::move(b1));
  expr.ops.push_back(std::move(md1));

  // Correlated: counts line items above the group's average quantity.
  GmdjOp md2;
  md2.detail_table = "TPCR";
  GmdjBlock b2;
  b2.aggs = {AggSpec::Count("cnt2"),
             AggSpec::Avg("ExtendedPrice", "avg2")};
  b2.theta = And(KeyEq(group_attr), Gt(RCol("Quantity"), BCol("avg1")));
  md2.blocks.push_back(std::move(b2));
  expr.ops.push_back(std::move(md2));
  return expr;
}

GmdjExpr CoalescingQuery(const std::string& group_attr) {
  GmdjExpr expr;
  expr.base.source_table = "TPCR";
  expr.base.project_cols = {group_attr};

  GmdjOp md1;
  md1.detail_table = "TPCR";
  GmdjBlock b1;
  b1.aggs = {AggSpec::Count("cnt1"), AggSpec::Avg("Quantity", "avg1")};
  b1.theta = KeyEq(group_attr);
  md1.blocks.push_back(std::move(b1));
  expr.ops.push_back(std::move(md1));

  // Independent of MD1's outputs: restricts the detail side only.
  GmdjOp md2;
  md2.detail_table = "TPCR";
  GmdjBlock b2;
  b2.aggs = {AggSpec::Count("cnt2"),
             AggSpec::Avg("ExtendedPrice", "avg2")};
  b2.theta = And(KeyEq(group_attr), Ge(RCol("Quantity"), Lit(25)));
  md2.blocks.push_back(std::move(b2));
  expr.ops.push_back(std::move(md2));
  return expr;
}

GmdjExpr SyncReductionQuery(const std::string& group_attr) {
  GmdjExpr expr;
  expr.base.source_table = "TPCR";
  expr.base.project_cols = {group_attr};

  GmdjOp md1;
  md1.detail_table = "TPCR";
  GmdjBlock b1;
  b1.aggs = {AggSpec::Count("cnt1"), AggSpec::Avg("ExtendedPrice", "avg1")};
  b1.theta = KeyEq(group_attr);
  md1.blocks.push_back(std::move(b1));
  expr.ops.push_back(std::move(md1));

  // Correlated (references avg1): coalescing cannot fire, but every θ
  // entails equality on the grouping attribute, so synchronization
  // reduction can.
  GmdjOp md2;
  md2.detail_table = "TPCR";
  GmdjBlock b2;
  b2.aggs = {AggSpec::Count("cnt2"), AggSpec::Avg("Quantity", "avg2")};
  b2.theta =
      And(KeyEq(group_attr), Ge(RCol("ExtendedPrice"), BCol("avg1")));
  md2.blocks.push_back(std::move(b2));
  expr.ops.push_back(std::move(md2));
  return expr;
}

GmdjExpr CombinedQuery(const std::string& group_attr) {
  GmdjExpr expr;
  expr.base.source_table = "TPCR";
  expr.base.project_cols = {group_attr};

  GmdjOp md1;
  md1.detail_table = "TPCR";
  GmdjBlock b1;
  b1.aggs = {AggSpec::Count("cnt1"), AggSpec::Avg("Quantity", "avg1")};
  b1.theta = KeyEq(group_attr);
  md1.blocks.push_back(std::move(b1));
  expr.ops.push_back(std::move(md1));

  // Coalescable into MD1 (independent of its outputs).
  GmdjOp md2;
  md2.detail_table = "TPCR";
  GmdjBlock b2;
  b2.aggs = {AggSpec::Count("cnt2"), AggSpec::Avg("Discount", "avg2")};
  b2.theta = And(KeyEq(group_attr), Ge(RCol("Quantity"), Lit(25)));
  md2.blocks.push_back(std::move(b2));
  expr.ops.push_back(std::move(md2));

  // Correlated with MD1: needs a later round unless sync reduction fuses.
  GmdjOp md3;
  md3.detail_table = "TPCR";
  GmdjBlock b3;
  b3.aggs = {AggSpec::Count("cnt3"), AggSpec::Avg("ExtendedPrice", "avg3")};
  b3.theta = And(KeyEq(group_attr), Gt(RCol("Quantity"), BCol("avg1")));
  md3.blocks.push_back(std::move(b3));
  expr.ops.push_back(std::move(md3));
  return expr;
}

GmdjExpr MultiFeatureQuery(const std::string& group_attr) {
  GmdjExpr expr;
  expr.base.source_table = "TPCR";
  expr.base.project_cols = {group_attr};

  GmdjOp md1;
  md1.detail_table = "TPCR";
  GmdjBlock b1;
  b1.aggs = {AggSpec::Min("ShipDate", "first_ship")};
  b1.theta = KeyEq(group_attr);
  md1.blocks.push_back(std::move(b1));
  expr.ops.push_back(std::move(md1));

  // Aggregates restricted to the tuples at the per-group minimum.
  GmdjOp md2;
  md2.detail_table = "TPCR";
  GmdjBlock b2;
  b2.aggs = {AggSpec::Count("first_ship_cnt"),
             AggSpec::Avg("ExtendedPrice", "first_ship_avg_price")};
  b2.theta =
      And(KeyEq(group_attr), Eq(RCol("ShipDate"), BCol("first_ship")));
  md2.blocks.push_back(std::move(b2));
  expr.ops.push_back(std::move(md2));
  return expr;
}

}  // namespace queries
}  // namespace skalla

file(REMOVE_RECURSE
  "libskalla_gmdj.a"
)

file(REMOVE_RECURSE
  "libskalla_tpc.a"
)

#ifndef SKALLA_STORAGE_VALUE_H_
#define SKALLA_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace skalla {

/// Runtime type of a Value.
enum class ValueType : uint8_t {
  kNull = 0,
  kInt64 = 1,
  kDouble = 2,
  kString = 3,
};

/// \brief Returns a human-readable name ("int64", "double", ...).
const char* ValueTypeToString(ValueType type);

/// \brief A dynamically-typed SQL value: NULL, INT64, DOUBLE, or STRING.
///
/// Value is the cell type of every relation in Skalla. Semantics follow SQL
/// where it matters for OLAP aggregation:
///  - numeric comparisons cross int64/double boundaries by value;
///  - NULLs compare equal to each other for grouping/ordering purposes
///    (predicate evaluation handles NULL separately, see expr/evaluator.h);
///  - Hash() is consistent with operator== across numeric types.
class Value {
 public:
  /// NULL value.
  Value() : data_(std::monostate{}) {}
  Value(int64_t v) : data_(v) {}           // NOLINT(runtime/explicit)
  Value(int v) : data_(int64_t{v}) {}      // NOLINT(runtime/explicit)
  Value(double v) : data_(v) {}            // NOLINT(runtime/explicit)
  Value(std::string v) : data_(std::move(v)) {}  // NOLINT(runtime/explicit)
  Value(const char* v) : data_(std::string(v)) {}  // NOLINT(runtime/explicit)

  static Value Null() { return Value(); }

  ValueType type() const {
    return static_cast<ValueType>(data_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }
  bool is_int64() const { return type() == ValueType::kInt64; }
  bool is_double() const { return type() == ValueType::kDouble; }
  bool is_string() const { return type() == ValueType::kString; }
  bool is_numeric() const { return is_int64() || is_double(); }

  /// The contained int64; must be is_int64().
  int64_t AsInt64() const { return std::get<int64_t>(data_); }
  /// The contained double; must be is_double().
  double AsDouble() const { return std::get<double>(data_); }
  /// The contained string; must be is_string().
  const std::string& AsString() const { return std::get<std::string>(data_); }

  /// Numeric coercion to double; must be is_numeric().
  double ToDouble() const {
    return is_int64() ? static_cast<double>(AsInt64()) : AsDouble();
  }

  /// Structural/value equality (see class comment).
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Total order: NULL < numerics (by value) < strings (lexicographic).
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Hash consistent with operator==.
  uint64_t Hash() const;

  /// SQL-style rendering; NULL renders as "NULL", strings unquoted.
  std::string ToString() const;

  /// Serialized payload size in bytes (tag byte included); used by the
  /// byte-exact network accounting.
  size_t SerializedSize() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

}  // namespace skalla

#endif  // SKALLA_STORAGE_VALUE_H_

#include <gtest/gtest.h>

#include "storage/schema.h"
#include "storage/table.h"
#include "test_util.h"

namespace skalla {
namespace {

TEST(SchemaTest, IndexOfFindsFields) {
  Schema schema({{"a", ValueType::kInt64},
                 {"b", ValueType::kString},
                 {"c", ValueType::kDouble}});
  EXPECT_EQ(schema.num_fields(), 3);
  EXPECT_EQ(schema.IndexOf("a"), 0);
  EXPECT_EQ(schema.IndexOf("b"), 1);
  EXPECT_EQ(schema.IndexOf("c"), 2);
  EXPECT_FALSE(schema.IndexOf("d").has_value());
}

TEST(SchemaTest, MustIndexOfErrorsNameTheColumn) {
  Schema schema({{"a", ValueType::kInt64}});
  auto result = schema.MustIndexOf("zz");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_NE(result.status().message().find("zz"), std::string::npos);
}

TEST(SchemaTest, DuplicateNamesResolveToSomeIndex) {
  // Aggregate renaming prevents duplicates in practice, but lookup must not
  // crash if they occur.
  Schema schema({{"x", ValueType::kInt64}, {"x", ValueType::kDouble}});
  auto idx = schema.IndexOf("x");
  ASSERT_TRUE(idx.has_value());
  EXPECT_TRUE(*idx == 0 || *idx == 1);
}

TEST(SchemaTest, ToStringListsNameAndType) {
  Schema schema({{"a", ValueType::kInt64}, {"s", ValueType::kString}});
  EXPECT_EQ(schema.ToString(), "a:int64, s:string");
}

TEST(SchemaTest, EqualsComparesFieldsInOrder) {
  Schema a({{"x", ValueType::kInt64}, {"y", ValueType::kDouble}});
  Schema b({{"x", ValueType::kInt64}, {"y", ValueType::kDouble}});
  Schema c({{"y", ValueType::kDouble}, {"x", ValueType::kInt64}});
  EXPECT_TRUE(a.Equals(b));
  EXPECT_FALSE(a.Equals(c));
}

TEST(TableTest, AddAndGet) {
  Table t = MakeTinyTable();
  EXPECT_EQ(t.num_rows(), 12);
  EXPECT_EQ(t.Get(0, 0), Value(1));
  EXPECT_EQ(t.Get(11, 4), Value("b"));
}

TEST(TableTest, AppendConcatenatesRows) {
  Table a = MakeTinyTable();
  Table b = MakeTinyTable();
  a.Append(b);
  EXPECT_EQ(a.num_rows(), 24);
}

TEST(TableTest, SortByOrdersRows) {
  Table t = MakeTinyTable();
  t.SortBy({2});  // column v
  for (int64_t i = 1; i < t.num_rows(); ++i) {
    EXPECT_LE(t.Get(i - 1, 2).Compare(t.Get(i, 2)), 0);
  }
}

TEST(TableTest, SortByIsStable) {
  Table t(MakeSchema({{"k", ValueType::kInt64}, {"tag", ValueType::kInt64}}));
  t.AddRow({Value(1), Value(0)});
  t.AddRow({Value(0), Value(1)});
  t.AddRow({Value(1), Value(2)});
  t.AddRow({Value(0), Value(3)});
  t.SortBy({0});
  EXPECT_EQ(t.Get(0, 1), Value(1));
  EXPECT_EQ(t.Get(1, 1), Value(3));
  EXPECT_EQ(t.Get(2, 1), Value(0));
  EXPECT_EQ(t.Get(3, 1), Value(2));
}

TEST(TableTest, SameRowMultisetIgnoresOrder) {
  Table a = MakeTinyTable();
  Table b = MakeTinyTable();
  b.SortBy({2});
  EXPECT_TRUE(a.SameRowMultiset(b));
}

TEST(TableTest, SameRowMultisetDetectsDifferences) {
  Table a = MakeTinyTable();
  Table b = MakeTinyTable();
  b.mutable_row(0)[2] = Value(999);
  EXPECT_FALSE(a.SameRowMultiset(b));
}

TEST(TableTest, SameRowMultisetDetectsMultiplicity) {
  Table a(MakeSchema({{"x", ValueType::kInt64}}));
  Table b(MakeSchema({{"x", ValueType::kInt64}}));
  a.AddRow({Value(1)});
  a.AddRow({Value(1)});
  a.AddRow({Value(2)});
  b.AddRow({Value(1)});
  b.AddRow({Value(2)});
  b.AddRow({Value(2)});
  EXPECT_FALSE(a.SameRowMultiset(b));
}

TEST(TableTest, ToStringTruncates) {
  Table t = MakeTinyTable();
  const std::string s = t.ToString(3);
  EXPECT_NE(s.find("more rows"), std::string::npos);
}

TEST(TableTest, EmptyTableBasics) {
  Table t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.schema().num_fields(), 0);
  EXPECT_EQ(t.SerializedSize(), 0u);
}

}  // namespace
}  // namespace skalla

file(REMOVE_RECURSE
  "libskalla_storage.a"
)

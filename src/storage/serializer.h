#ifndef SKALLA_STORAGE_SERIALIZER_H_
#define SKALLA_STORAGE_SERIALIZER_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "storage/table.h"
#include "storage/wire_format.h"

namespace skalla {

/// \brief Byte-exact binary relation formats (see docs/wire-format.md).
///
/// Every relation shipped over the simulated network (net/sim_network.h) is
/// encoded with this serializer; the length of the produced string is the
/// byte count charged by the cost model. Two self-describing formats share
/// a common header and are distinguished by magic, so the decoder accepts
/// either regardless of the configured default:
///
/// SKL1 (row-oriented, little-endian):
///   magic  u32 'SKL1'
///   schema u32 nfields; per field: u8 type, u32 name_len, name bytes
///   rows   u64 nrows; per value: u8 type tag, payload
///          (int64/double: 8 bytes; string: u32 len + bytes; null: none)
///
/// SKL2 (columnar): same magic/schema/nrows header with magic 'SKL2', then
/// for each column (only when nrows > 0): u8 codec tag, and for the
/// homogeneous codecs a null bitmap (LSB-first, bit set = non-null)
/// followed by the packed non-null values — int64 as zig-zag varint deltas,
/// double as raw 8-byte patterns (NaN/±inf bit-exact), string as a
/// first-appearance dictionary plus varint codes. Columns mixing non-null
/// types fall back to a per-value tagged codec.
///
/// SKLD (delta): ships only what changed versus a base table the receiver
/// already holds; decoded with DecodeShipment(). Layout: magic 'SKLD',
/// u64 base hash, full new schema, per-column varint mapping into the base
/// (0 = new column), varint kept_rows / total_rows, then SKL2 column
/// sections — new columns over all rows, mapped columns over the appended
/// rows only.
class Serializer {
 public:
  /// Full-table format selector; see storage/wire_format.h.
  using Format = WireFormat;

  /// Encodes a table to its wire form in the given format. SKL2 columns
  /// are fed from the table's cached columnar snapshot when the column is
  /// `usable` (Table::columnar) — same bytes, no per-cell boxing; see
  /// docs/wire-format.md.
  static std::string SerializeTable(const Table& table,
                                    Format format = DefaultWireFormat());

  /// Reference encoder that ignores the columnar snapshot and boxes every
  /// cell through Table::Get — the pre-columnar row path, kept callable so
  /// tests and benchmarks can pin SerializeTable's byte-identity (and
  /// measure the columnar feed's win). Produces identical bytes to
  /// SerializeTable for every table and format.
  static std::string SerializeTableRowPath(const Table& table,
                                           Format format = DefaultWireFormat());

  /// Decodes a wire-form table (either format, by magic); fails with
  /// IoError on malformed input. SKLD payloads are rejected here — they
  /// need a base table, use DecodeShipment().
  static Result<Table> DeserializeTable(std::string_view bytes);

  /// Exact wire size of `table` without materializing the bytes:
  /// WireSize(t, f) == SerializeTable(t, f).size() for every t and f.
  static size_t WireSize(const Table& table,
                         Format format = DefaultWireFormat());

  /// Bytes after the common header (magic + schema + nrows); this is what
  /// Table::SerializedSize(format) reports. Zero for an empty table.
  static size_t TablePayloadSize(const Table& table, Format format);

  /// Encodes `table` as a delta against `base` (SKLD). The receiver must
  /// hold a bit-exact copy of `base` (enforced via a content hash). Columns
  /// are matched by name + declared type; a matched column whose first
  /// kept_rows values are bit-identical to the base ships only its appended
  /// rows. Always decodable; not guaranteed smaller than a full payload —
  /// callers compare sizes and ship whichever is smaller.
  static std::string SerializeDelta(const Table& base, const Table& table);

  /// Decodes any shipped payload: SKL1/SKL2 full tables (cached may be
  /// null) or an SKLD delta applied to `*cached`. Fails with IoError on
  /// malformed input or when a delta's base hash does not match `*cached`.
  static Result<Table> DecodeShipment(const Table* cached,
                                      std::string_view bytes);

  /// Deterministic content hash (type- and bit-exact, including double bit
  /// patterns) used to pair SKLD payloads with their base table.
  static uint64_t ContentHash(const Table& table);
};

}  // namespace skalla

#endif  // SKALLA_STORAGE_SERIALIZER_H_

# Empty compiler generated dependencies file for bench_cube.
# This may be replaced when dependencies are built.

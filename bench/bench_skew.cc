// Skew-aware adaptive round execution (docs/skew.md): response time under
// Zipf customer-key skew, with and without the straggler rebalancer, plus
// the frequency-weighted φ partitioning ablation. Every configuration pair
// (rebalance off/on over the same data and partitioning) must produce
// byte-identical results — the bench aborts otherwise — and the headline
// criterion is that rebalancing keeps the skewed response within 1.5x of
// the balanced baseline. Writes BENCH_skew.json.
//
//   ./bench_skew [--quick]
//
// --quick shrinks the relation (CI smoke).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

using namespace skalla;
using bench::JsonReport;

bool g_quick = false;

constexpr int kSites = 8;
constexpr double kSkewZipf = 1.1;  // ~10x row imbalance across 8 sites

Table MakeTpcr(double zipf_s) {
  TpcConfig config;
  config.num_rows = g_quick ? 24000 : 120000;
  config.num_customers = 4000;
  config.num_nations = 24;
  config.cust_zipf_s = zipf_s;
  return GenerateTpcr(config);
}

std::unique_ptr<Warehouse> MakeWarehouse(const Table& tpcr, bool weighted,
                                         bool rebalance) {
  // A fast LAN keeps the simulated response dominated by per-round site
  // compute — the term data skew actually stretches — instead of the
  // shared-link transfer time, which is identical across configurations.
  NetworkConfig net;
  net.bandwidth_bytes_per_sec = 100.0 * 1024 * 1024;
  net.latency_sec = 0.0005;
  auto wh = std::make_unique<Warehouse>(kSites, net);
  // Weighted: frequency-balanced contiguous CustKey ranges (φ rebalancing,
  // auto-replicating heavy-hitter sites). Plain: the classic NationKey
  // ranges, which a CustKey Zipf concentrates onto the first site.
  Status status =
      weighted ? wh->LoadByRangeWeighted("TPCR", tpcr, "CustKey", 0, 3999)
               : wh->LoadByRange("TPCR", tpcr, "NationKey", 0, 23,
                                 {"CustKey"});
  if (!status.ok()) {
    std::fprintf(stderr, "load failed: %s\n", status.ToString().c_str());
    std::abort();
  }
  if (rebalance) {
    RebalanceConfig config;
    config.enabled = true;
    config.min_rows_to_split = 512;
    wh->set_rebalance_config(config);
    // Arm a helper replica for the site holding the most detail rows (the
    // weighted load may already have replicated it; AlreadyExists is fine).
    int hot = 0;
    int64_t hot_rows = -1;
    for (int i = 0; i < wh->num_sites(); ++i) {
      auto table = wh->site(i).catalog().GetTable("TPCR");
      const int64_t rows = table.ok() ? (*table)->num_rows() : 0;
      if (rows > hot_rows) {
        hot_rows = rows;
        hot = i;
      }
    }
    auto replica = wh->AddReplica(hot);
    if (!replica.ok() &&
        replica.status().code() != StatusCode::kAlreadyExists) {
      std::fprintf(stderr, "replica failed: %s\n",
                   replica.status().ToString().c_str());
      std::abort();
    }
  }
  return wh;
}

struct RunResult {
  double response_sec = 0;
  double site_max_sec = 0;
  int splits = 0;
  int64_t bytes = 0;
  std::string table_bytes;  // rendered result, for identity checks
};

RunResult RunQuery(Warehouse& wh) {
  const GmdjExpr query = queries::GroupReductionQuery("ClerkKey");
  // Two executions: the first warms the detector's per-site rates, the
  // second is measured (steady-state behavior; the detector also splits on
  // round one from pure row-count skew).
  RunResult out;
  for (int iter = 0; iter < 2; ++iter) {
    auto result = wh.Execute(query, OptimizerOptions::All());
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      std::abort();
    }
    out.response_sec = result->metrics.ResponseSeconds();
    out.site_max_sec = result->metrics.SiteCpuSeconds();
    out.splits = result->metrics.RebalanceSplits();
    out.bytes = static_cast<int64_t>(result->metrics.TotalBytes());
    out.table_bytes = result->table.ToString();
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) g_quick = true;
  }

  struct Config {
    const char* name;
    double zipf;
    bool weighted;
    bool rebalance;
  };
  const Config kConfigs[] = {
      {"balanced/off", 0.0, false, false},
      {"balanced/on", 0.0, false, true},
      {"skew10x/off", kSkewZipf, false, false},
      {"skew10x/on", kSkewZipf, false, true},
      {"skew10x-weighted/off", kSkewZipf, true, false},
      {"skew10x-weighted/on", kSkewZipf, true, true},
  };

  const Table balanced_tpcr = MakeTpcr(0.0);
  const Table skewed_tpcr = MakeTpcr(kSkewZipf);

  JsonReport report("skew");
  std::vector<RunResult> runs;
  std::printf("%-22s %12s %12s %8s\n", "config", "response[s]", "site-max[s]",
              "splits");
  for (const Config& config : kConfigs) {
    const Table& tpcr = config.zipf > 0 ? skewed_tpcr : balanced_tpcr;
    auto wh = MakeWarehouse(tpcr, config.weighted, config.rebalance);
    RunResult run = RunQuery(*wh);
    std::printf("%-22s %12.4f %12.4f %8d\n", config.name, run.response_sec,
                run.site_max_sec, run.splits);
    report.Add(config.name,
               {{"zipf", config.zipf},
                {"weighted", config.weighted ? 1.0 : 0.0},
                {"rebalance", config.rebalance ? 1.0 : 0.0},
                {"splits", static_cast<double>(run.splits)},
                {"site_max_ms", run.site_max_sec * 1e3}},
               run.response_sec * 1e3, run.bytes);
    runs.push_back(std::move(run));
  }

  // Byte-identity within each (data, partitioning) pair: rebalancing may
  // change who evaluates which scan positions, never the response bytes
  // (DESIGN.md invariant 12).
  const size_t num_configs = sizeof(kConfigs) / sizeof(kConfigs[0]);
  for (size_t i = 0; i + 1 < num_configs; i += 2) {
    if (runs[i].table_bytes != runs[i + 1].table_bytes) {
      std::fprintf(stderr, "BYTE MISMATCH: %s vs %s\n", kConfigs[i].name,
                   kConfigs[i + 1].name);
      return 1;
    }
    std::printf("byte-identical: %s == %s\n", kConfigs[i].name,
                kConfigs[i + 1].name);
  }
  if (runs[3].splits == 0) {
    std::fprintf(stderr,
                 "WARN: no straggler splits fired in skew10x/on — the "
                 "rebalancer never engaged\n");
  }
  const double ratio = runs[3].response_sec / runs[0].response_sec;
  std::printf("skew10x/on vs balanced/off: %.2fx (criterion <= 1.5x: %s)\n",
              ratio, ratio <= 1.5 ? "PASS" : "FAIL");
  return 0;
}

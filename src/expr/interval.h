#ifndef SKALLA_EXPR_INTERVAL_H_
#define SKALLA_EXPR_INTERVAL_H_

#include <optional>
#include <string>

#include "expr/expr.h"
#include "storage/partition_info.h"

namespace skalla {

/// \brief A closed numeric interval [lo, hi]; lo/hi may be ±infinity.
///
/// The unit of the interval-arithmetic engine behind distribution-aware
/// group reduction (Theorem 4 of the paper): detail-side sub-expressions are
/// abstracted to the interval of values they can take at a given site.
struct Interval {
  double lo;
  double hi;

  static Interval Point(double v) { return Interval{v, v}; }
  static Interval All();

  bool IsPoint() const { return lo == hi; }
  bool Contains(double v) const { return v >= lo && v <= hi; }

  Interval Negate() const;
  Interval Add(const Interval& other) const;
  Interval Sub(const Interval& other) const;
  Interval Mul(const Interval& other) const;
  /// Division; unbounded when the divisor interval contains zero.
  Interval Div(const Interval& other) const;

  std::string ToString() const;
};

/// Computes the interval of a *pure detail-side* numeric expression under a
/// site's partition predicate φ (attribute domains). Returns nullopt when
/// the expression references the base side, strings, or attributes with no
/// known bounds (the caller must then treat the atom as unconstrained).
std::optional<Interval> DetailInterval(const ExprPtr& expr,
                                       const PartitionInfo& site);

/// \brief Derives the paper's ¬ψ_i(b) predicate for one site (Theorem 4).
///
/// Given θ₁ ∨ … ∨ θ_m (passed as the list of per-block conditions) and the
/// site's φ_i, returns a *base-side only* predicate that is true for every
/// base tuple b which could match any detail tuple at the site — i.e. a
/// sound over-approximation of ∃r (φ_i(r) ∧ (θ₁∨…∨θ_m)(b, r)). The
/// coordinator ships to site i only σ_{¬ψ_i}(B).
///
/// The relaxation rules per atom `lhs ⊙ rhs`:
///  - one side pure-base, other pure-detail with interval [lo,hi]:
///      =  → lo ≤ base_expr ≤ hi        ≠ → true
///      <  → base_expr < hi             ≤ → base_expr ≤ hi
///      >  → base_expr > lo             ≥ → base_expr ≥ lo
///    (additionally, `B.x = R.y` with a finite value-set domain for y
///     becomes an explicit membership disjunction when the set is small);
///  - pure-detail atom: kept only if refutable from φ_i (then FALSE);
///  - pure-base atom: kept verbatim;
///  - anything else: TRUE (no reduction).
/// AND/OR/NOT recurse structurally (NOT conservatively relaxes to TRUE
/// unless its operand relaxes exactly).
///
/// Returns an expression whose column references are all Side::kBase.
ExprPtr DeriveShipPredicate(const std::vector<ExprPtr>& thetas,
                            const PartitionInfo& site);

}  // namespace skalla

#endif  // SKALLA_EXPR_INTERVAL_H_

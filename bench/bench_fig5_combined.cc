// Figure 5 of the paper: the *combined reductions query* scale-up
// experiment.
//
// The number of sites is fixed at four and the per-site data set grows
// ×1..×4. The combined query exercises every optimization (coalescing,
// both group reductions, synchronization reduction); it is run with all of
// them enabled and with none. The paper reports:
//  - both curves grow linearly with data size (left panel),
//  - the optimizations cut evaluation time roughly in half,
//  - the optimized run's breakdown into site computation, coordinator
//    computation, and communication grows linearly in each component
//    (right panel).
// A second series holds the number of groups constant while the data
// grows, which the paper reports behaves comparably.
//
//   ./bench_fig5_combined

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_util.h"

namespace {

using namespace skalla;
using bench::GetWarehouse;
using bench::MustExecute;
using bench::WarehouseSpec;

constexpr int kSites = 4;
constexpr int64_t kBaseRowsPerSite = 15000;
constexpr int64_t kBaseGroupsPerSite = 1000;

WarehouseSpec SpecForScale(int scale, bool growing_groups) {
  WarehouseSpec spec;
  spec.sites = kSites;
  spec.rows_per_site = kBaseRowsPerSite * scale;
  spec.groups_per_site =
      growing_groups ? kBaseGroupsPerSite * scale : kBaseGroupsPerSite;
  spec.seed = growing_groups ? 42 : 44;
  return spec;
}

void BM_CombinedScaleUp(benchmark::State& state) {
  const int scale = static_cast<int>(state.range(0));
  const bool growing_groups = state.range(1) != 0;
  const bool optimized = state.range(2) != 0;
  Warehouse& warehouse = GetWarehouse(SpecForScale(scale, growing_groups));
  const GmdjExpr query = queries::CombinedQuery("CustKey");
  const OptimizerOptions options =
      optimized ? OptimizerOptions::All() : OptimizerOptions::None();
  for (auto _ : state) {
    QueryResult result = MustExecute(warehouse, query, options);
    state.SetIterationTime(result.metrics.ResponseSeconds());
    state.counters["bytes"] =
        static_cast<double>(result.metrics.TotalBytes());
    state.counters["site_s"] = result.metrics.SiteCpuSeconds();
    state.counters["coord_s"] = result.metrics.CoordCpuSeconds();
    state.counters["comm_s"] = result.metrics.CommSeconds();
  }
  state.SetLabel(std::string(growing_groups ? "groups-grow" : "groups-const") +
                 (optimized ? "/all-reductions" : "/none"));
}
BENCHMARK(BM_CombinedScaleUp)
    ->ArgsProduct({{1, 2, 3, 4}, {0, 1}, {0, 1}})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void PrintPaperFigure() {
  const GmdjExpr query = queries::CombinedQuery("CustKey");
  for (const bool growing_groups : {true, false}) {
    std::printf("\n=== Figure 5 (left): combined reductions query, 4 sites, "
                "data x1..x4 (%s) ===\n",
                growing_groups ? "groups grow with data"
                               : "constant group count");
    std::printf("%-6s %14s %14s %10s\n", "scale", "unoptimized",
                "all-reductions", "speedup");
    std::vector<QueryResult> optimized_runs;
    for (int scale = 1; scale <= 4; ++scale) {
      Warehouse& warehouse =
          GetWarehouse(SpecForScale(scale, growing_groups));
      QueryResult plain =
          MustExecute(warehouse, query, OptimizerOptions::None());
      QueryResult optimized =
          MustExecute(warehouse, query, OptimizerOptions::All());
      std::printf("%-6d %14.3f %14.3f %9.2fx\n", scale,
                  plain.metrics.ResponseSeconds(),
                  optimized.metrics.ResponseSeconds(),
                  plain.metrics.ResponseSeconds() /
                      optimized.metrics.ResponseSeconds());
      optimized_runs.push_back(std::move(optimized));
    }
    std::printf("\n=== Figure 5 (right): optimized-run cost breakdown [s] "
                "===\n");
    std::printf("%-6s %12s %12s %12s %12s\n", "scale", "site-cpu",
                "coord-cpu", "comm", "total");
    for (int scale = 1; scale <= 4; ++scale) {
      const ExecutionMetrics& m =
          optimized_runs[static_cast<size_t>(scale - 1)].metrics;
      std::printf("%-6d %12.3f %12.3f %12.3f %12.3f\n", scale,
                  m.SiteCpuSeconds(), m.CoordCpuSeconds(), m.CommSeconds(),
                  m.ResponseSeconds());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintPaperFigure();
  return 0;
}

#include "dist/site.h"

#include "common/logging.h"
#include "common/stopwatch.h"
#include "engine/operators.h"
#include "gmdj/central_eval.h"
#include "gmdj/local_eval.h"

namespace skalla {

Result<Table> Site::EvalBase(const BaseQuery& base, double* cpu_sec) const {
  Stopwatch sw;
  SKALLA_ASSIGN_OR_RETURN(std::shared_ptr<const Table> source,
                          catalog_.GetTable(base.source_table));
  SKALLA_ASSIGN_OR_RETURN(Table result, EvalBaseQuery(base, *source));
  if (cpu_sec != nullptr) *cpu_sec = sw.ElapsedSeconds() / compute_scale_;
  return result;
}

namespace {

/// Extends `visible` with one finalized column per aggregate of `op`,
/// reading the sub-aggregate columns of `with_sub` (which carries all of
/// `visible`'s columns first, then the sub columns in AllAggs order), and
/// appends the raw sub columns to `subs`. All three tables are row-aligned.
Result<void*> FoldOpResults(const GmdjOp& op, const Schema& detail_schema,
                            const Table& with_sub, Table* visible,
                            Table* subs) {
  const int sub_start = visible->schema().num_fields();
  const std::vector<AggSpec> aggs = op.AllAggs();

  // New visible schema: old fields + finalized aggregate fields.
  std::vector<Field> visible_fields = visible->schema().fields();
  std::vector<Field> sub_fields = subs->schema().fields();
  for (const AggSpec& spec : aggs) {
    SKALLA_ASSIGN_OR_RETURN(Field f, FinalFieldFor(spec, detail_schema));
    visible_fields.push_back(std::move(f));
    SKALLA_ASSIGN_OR_RETURN(std::vector<Field> sf,
                            SubFieldsFor(spec, detail_schema));
    sub_fields.insert(sub_fields.end(), sf.begin(), sf.end());
  }

  SKALLA_CHECK(with_sub.num_rows() == visible->num_rows());
  SKALLA_CHECK(with_sub.num_rows() == subs->num_rows());

  Table new_visible(MakeSchema(std::move(visible_fields)));
  Table new_subs(MakeSchema(std::move(sub_fields)));
  new_visible.Reserve(visible->num_rows());
  new_subs.Reserve(subs->num_rows());

  for (int64_t r = 0; r < with_sub.num_rows(); ++r) {
    Row vrow = visible->row(r);
    Row srow = subs->row(r);
    const Row& wrow = with_sub.row(r);
    int col = sub_start;
    for (const AggSpec& spec : aggs) {
      const int arity = SubArity(spec.func);
      vrow.push_back(
          FinalizeSubValues(spec.func, &wrow[static_cast<size_t>(col)]));
      for (int i = 0; i < arity; ++i) {
        srow.push_back(wrow[static_cast<size_t>(col + i)]);
      }
      col += arity;
    }
    new_visible.AddRow(std::move(vrow));
    new_subs.AddRow(std::move(srow));
  }
  *visible = std::move(new_visible);
  *subs = std::move(new_subs);
  return nullptr;
}

}  // namespace

Result<Table> Site::EvalRound(const SiteRoundInput& input,
                              double* cpu_sec) const {
  Stopwatch sw;
  SKALLA_CHECK(input.ops != nullptr && !input.ops->empty());
  SKALLA_CHECK(input.key_attrs != nullptr);
  const std::vector<GmdjOp>& ops = *input.ops;
  const std::vector<std::string>& key_attrs = *input.key_attrs;

  // Local base-values relation (Prop. 2 path) or the shipped fragment.
  Table visible;
  if (input.base != nullptr) {
    SKALLA_ASSIGN_OR_RETURN(std::shared_ptr<const Table> source,
                            catalog_.GetTable(input.base->source_table));
    SKALLA_ASSIGN_OR_RETURN(visible, EvalBaseQuery(*input.base, *source));
  } else {
    SKALLA_CHECK(input.x != nullptr);
    visible = *input.x;
  }

  // Single-operator round: evaluate straight into shippable H form.
  if (ops.size() == 1) {
    SKALLA_ASSIGN_OR_RETURN(std::shared_ptr<const Table> detail,
                            catalog_.GetTable(ops[0].detail_table));
    LocalGmdjOptions options;
    options.mode = AggMode::kSub;
    // In a fused-base round (Prop. 2) the shipped H rows are the only
    // carrier of the groups themselves — dropping untouched groups
    // (Prop. 1) would silently remove them from the query result, so
    // group reduction is suppressed when this site derived its own base.
    options.touched_only = input.touched_only && input.base == nullptr;
    options.carry_cols = key_attrs;
    options.num_threads = input.num_threads;
    options.scan_lo = input.detail_lo;
    options.scan_hi = input.detail_hi;
    SKALLA_ASSIGN_OR_RETURN(Table h,
                            EvalGmdjOp(visible, *detail, ops[0], options));
    if (cpu_sec != nullptr) *cpu_sec = sw.ElapsedSeconds() / compute_scale_;
    return h;
  }

  // Synchronization-reduced chain: evaluate every operator locally,
  // finalizing each operator's aggregates for use by later θs while
  // accumulating the shippable sub-aggregate columns.
  SKALLA_ASSIGN_OR_RETURN(Table subs, Project(visible, key_attrs));
  for (const GmdjOp& op : ops) {
    SKALLA_ASSIGN_OR_RETURN(std::shared_ptr<const Table> detail,
                            catalog_.GetTable(op.detail_table));
    LocalGmdjOptions options;
    options.mode = AggMode::kSub;
    options.touched_only = false;  // alignment required for chaining
    options.num_threads = input.num_threads;
    SKALLA_ASSIGN_OR_RETURN(Table with_sub,
                            EvalGmdjOp(visible, *detail, op, options));
    SKALLA_ASSIGN_OR_RETURN(
        void* unused,
        FoldOpResults(op, detail->schema(), with_sub, &visible, &subs));
    (void)unused;
  }
  if (cpu_sec != nullptr) *cpu_sec = sw.ElapsedSeconds() / compute_scale_;
  return subs;
}

}  // namespace skalla

#ifndef SKALLA_OBS_METRICS_H_
#define SKALLA_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace skalla {
namespace obs {

/// \brief Process-wide metrics registry: monotonic counters, gauges, and
/// fixed-bucket histograms (docs/observability.md, "Metrics registry").
///
/// Unlike the tracer (obs/trace.h), the registry is **always on by
/// default** — it is the continuous signal a serving deployment watches
/// (queue depth, per-lane latency, per-site round times), not a one-shot
/// capture. The cost discipline matches the tracer's:
///
///  - an *enabled* instrument update is one relaxed atomic RMW on a
///    thread-sharded slot (plus, for histograms, one RMW on the sum);
///  - a *disabled* one is a single relaxed atomic load of the master gate.
///
/// `bench_trace_overhead` enforces both budgets. The `SKALLA_METRICS`
/// environment knob ("0" / "off" / "false" disables; anything else,
/// including unset, enables) is read once at process start; EnableMetrics
/// flips the gate at runtime. Gauges pair their +/- updates through the
/// gate, so flipping it while work is in flight can transiently skew gauge
/// values (counters and histograms are monotone and unaffected).
///
/// Naming convention: `skalla_<layer>_<name>` with the unit spelled out in
/// the name (`_seconds`, `_bytes`, `_total` for unitless counts), plus an
/// optional Prometheus-style label suffix `{key="value",...}` baked into
/// the registered name — e.g. `skalla_dist_site_round_seconds{site="3"}`.

namespace internal {
extern std::atomic<bool> g_metrics_enabled;
}  // namespace internal

/// Master gate: one relaxed load, the entire disabled-mode cost.
inline bool MetricsEnabled() {
  return internal::g_metrics_enabled.load(std::memory_order_relaxed);
}

/// Flips the master gate (also settable via SKALLA_METRICS at start).
void EnableMetrics(bool enabled);

/// Shards per instrument; updates land on shard (thread index mod this),
/// so concurrent writers on different threads rarely contend on a line.
inline constexpr int kMetricShards = 8;

/// Small dense index of the calling thread used for shard selection
/// (assigned on first use; one TLS read afterwards).
uint32_t MetricThreadShard();

namespace internal {
/// One cacheline-padded atomic slot of a sharded instrument.
struct alignas(64) Shard {
  std::atomic<uint64_t> value{0};
};
struct alignas(64) SignedShard {
  std::atomic<int64_t> value{0};
};
struct alignas(64) DoubleShard {
  std::atomic<double> value{0.0};
};
}  // namespace internal

/// \brief Monotonic counter. Add() is one relaxed RMW when the registry is
/// enabled, one relaxed load when disabled.
class Counter {
 public:
  void Add(uint64_t delta) {
    if (!MetricsEnabled()) return;
    shards_[MetricThreadShard()].value.fetch_add(delta,
                                                 std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  /// Sum over shards (relaxed; exact once writers quiesce).
  uint64_t Value() const;
  void Reset();

 private:
  internal::Shard shards_[kMetricShards];
};

/// \brief Signed gauge maintained as a sharded delta accumulator: Add()
/// and Sub() are one relaxed RMW each; Value() sums the shards.
class Gauge {
 public:
  void Add(int64_t delta) {
    if (!MetricsEnabled()) return;
    shards_[MetricThreadShard()].value.fetch_add(delta,
                                                 std::memory_order_relaxed);
  }
  void Sub(int64_t delta) { Add(-delta); }

  /// Unconditional update that bypasses the gate — used by GaugeGuard to
  /// guarantee its decrement pairs with an increment it already made.
  void ForceAdd(int64_t delta) {
    shards_[MetricThreadShard()].value.fetch_add(delta,
                                                 std::memory_order_relaxed);
  }

  int64_t Value() const;
  void Reset();

 private:
  internal::SignedShard shards_[kMetricShards];
};

/// \brief RAII pairing of a gauge increment with its decrement: the
/// destructor subtracts exactly what the constructor added (nothing when
/// the registry was disabled at construction), so a mid-flight gate flip
/// never leaves the gauge permanently skewed.
class GaugeGuard {
 public:
  explicit GaugeGuard(Gauge* gauge) : gauge_(gauge) {
    if (gauge_ != nullptr && MetricsEnabled()) {
      armed_ = true;
      gauge_->Add(1);
    }
  }
  ~GaugeGuard() {
    if (armed_) {
      // Force the matching decrement through even if the gate flipped off
      // meanwhile; Gauge::Add is gated, so go to the shard directly.
      gauge_->ForceAdd(-1);
    }
  }
  GaugeGuard(const GaugeGuard&) = delete;
  GaugeGuard& operator=(const GaugeGuard&) = delete;

 private:
  friend class Gauge;
  Gauge* gauge_;
  bool armed_ = false;
};

/// Exponential bucket layout of a Histogram: bucket i covers
/// (bound[i-1], bound[i]] with bound[i] = start * growth^i, plus one
/// implicit overflow bucket past the last bound.
struct HistogramLayout {
  double start = 1e-6;
  double growth = 2.0;
  int buckets = 36;

  /// Latencies in seconds: 1 µs .. ~68 s in 27 powers of two.
  static HistogramLayout LatencySeconds() { return {1e-6, 2.0, 27}; }
  /// Payload sizes in bytes: 64 B .. 32 GiB.
  static HistogramLayout Bytes() { return {64.0, 2.0, 30}; }
  /// Row counts: 1 .. ~10^9.
  static HistogramLayout Rows() { return {1.0, 4.0, 16}; }
  /// Ratios in [0, 1] (e.g. selectivity): 1e-4 .. 1, growth ~2.
  static HistogramLayout Ratio() { return {1e-4, 2.0, 14}; }
};

/// \brief Fixed-bucket histogram. Observe() is two relaxed RMWs when
/// enabled (bucket count + sharded sum), one relaxed load when disabled.
/// p50/p95/p99 are read back from the buckets with linear interpolation.
class Histogram {
 public:
  explicit Histogram(const HistogramLayout& layout);

  void Observe(double value);

  /// Total observations (sum over buckets).
  uint64_t Count() const;
  /// Exact sum of observed values.
  double Sum() const;
  /// Quantile estimate from the bucket counts: the value below which a
  /// fraction q of observations fall, linearly interpolated inside the
  /// covering bucket (the overflow bucket reports the last bound).
  double Quantile(double q) const;

  /// Upper bounds, one per finite bucket (the overflow bucket is +Inf).
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts, bounds().size() + 1 entries (last = overflow).
  std::vector<uint64_t> BucketCounts() const;

  void Reset();

 private:
  std::vector<double> bounds_;
  /// counts_[shard * stride + bucket]; stride = bounds_.size() + 1.
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;
  size_t stride_;
  internal::DoubleShard sums_[kMetricShards];  ///< Σ observed values
};

/// \brief RAII wall-clock timer into a histogram of seconds: records
/// [construction, destruction) when the registry was enabled at
/// construction; a single relaxed load otherwise.
class ScopedHistogramTimer {
 public:
  explicit ScopedHistogramTimer(Histogram* histogram);
  ~ScopedHistogramTimer();
  ScopedHistogramTimer(const ScopedHistogramTimer&) = delete;
  ScopedHistogramTimer& operator=(const ScopedHistogramTimer&) = delete;

 private:
  Histogram* histogram_ = nullptr;
  int64_t start_ns_ = 0;
};

// ---- Registry ------------------------------------------------------------

/// Looks up (registering on first use) the counter named `name`. The
/// returned reference is stable for the process lifetime; instrumentation
/// sites cache it in a function-local static so steady-state cost is the
/// instrument update alone. Thread-safe.
Counter& GetCounter(std::string_view name);

/// Same for gauges.
Gauge& GetGauge(std::string_view name);

/// Same for histograms; `layout` applies on first registration only (a
/// later lookup with a different layout returns the existing instrument).
Histogram& GetHistogram(std::string_view name, const HistogramLayout& layout);

/// Zeroes every registered instrument's values (instruments stay
/// registered). Not synchronized against concurrent updates — intended for
/// benches and tests between measured phases.
void ResetMetrics();

/// What kind of instrument a MetricValue snapshot row describes.
enum class MetricKind { kCounter, kGauge, kHistogram };

/// One instrument's value at snapshot time (see SnapshotMetrics).
struct MetricValue {
  std::string name;  ///< full registered name, labels included
  MetricKind kind = MetricKind::kCounter;
  uint64_t counter_value = 0;
  int64_t gauge_value = 0;
  uint64_t hist_count = 0;
  double hist_sum = 0;
  std::vector<double> bounds;
  std::vector<uint64_t> buckets;  ///< bounds.size() + 1 (last = overflow)

  /// Quantile from the snapshot's buckets (same math as Histogram).
  double Quantile(double q) const;
};

/// Values of every registered instrument, sorted by name.
std::vector<MetricValue> SnapshotMetrics();

/// `after - before`, matched by name: counters and histogram counts/sums
/// subtract; gauges keep the `after` value (a gauge is a level, not a
/// flow). Instruments registered only in `after` are kept as-is. Use to
/// scope process-wide metrics to a region — e.g. the PROFILE verb diffs
/// around one query's execution.
std::vector<MetricValue> DiffMetrics(const std::vector<MetricValue>& before,
                                     const std::vector<MetricValue>& after);

/// Splits a registered name into its base and label part:
/// `foo{a="b"}` -> ("foo", `a="b"`); no labels -> (name, "").
void SplitMetricName(const std::string& name, std::string* base,
                     std::string* labels);

/// Prometheus-style text exposition of `values` (see docs/observability.md
/// for the grammar): `# TYPE` per instrument base name, counters/gauges as
/// `name value`, histograms as cumulative `_bucket{le="..."}` series plus
/// `_sum` and `_count`.
std::string ExposeMetrics(const std::vector<MetricValue>& values);

/// Exposition of the live registry.
std::string ExposeMetrics();

/// JSONL snapshot (one instrument per line) for offline diffing.
std::string MetricsJsonl(const std::vector<MetricValue>& values);
std::string MetricsJsonl();

}  // namespace obs
}  // namespace skalla

#endif  // SKALLA_OBS_METRICS_H_
